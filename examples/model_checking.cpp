// Model-checking walkthrough: bring your own consensus protocol and let
// the §2 checker tell you how Theorem 2.1 kills it.
//
// Implements a custom candidate ("optimistic-then-follow") against the
// check::AsyncProtocol interface, explores its full computation graph, and
// prints the verdict alongside the library's built-in candidates — then
// runs the synchronous-model analyses (round lower bound + valency) for a
// small Byzantine system.
//
//   ./examples/model_checking [--n 3]
#include <iostream>

#include "check/explorer.hpp"
#include "check/round_lb.hpp"
#include "check/sync_valency.hpp"
#include "exp/harness.hpp"

using namespace amm;

namespace {

/// A plausible-looking custom candidate: publish the input; if the first
/// n-1 visible values are unanimous, decide them; otherwise follow the
/// lowest-index register ("leader") once visible.
class OptimisticThenFollow final : public check::AsyncProtocol {
 public:
  explicit OptimisticThenFollow(u32 n) : n_(n) {}
  std::string name() const override { return "optimistic-then-follow"; }

  check::Action next(u32, u8 input, u32 own_appends,
                     const check::VisibleMemory& visible) const override {
    if (own_appends == 0) return check::Action::append(input);
    u32 seen = 0;
    bool unanimous = true;
    u8 first = 2;
    for (const auto& reg : visible) {
      if (reg.empty()) continue;
      ++seen;
      if (first == 2) first = reg.front();
      unanimous &= (reg.front() == first);
    }
    if (seen < n_ - 1) return check::Action::read();
    if (unanimous) return check::Action::decide(first);
    // Fall back to the leader's value (register 0) once it is visible.
    if (!visible[0].empty()) return check::Action::decide(visible[0].front());
    return check::Action::read();
  }

 private:
  u32 n_;
};

}  // namespace

int main(int argc, char** argv) {
  exp::Harness h(argc, argv, "example: model checking your own protocol", 1);
  const u32 n = static_cast<u32>(h.args.get_int("n", 3));

  std::cout << "-- Part 1: asynchronous impossibility (Theorem 2.1) --\n";
  OptimisticThenFollow custom(n);
  const check::ExploreResult res = check::explore(custom, n);
  std::cout << "protocol:   " << res.protocol << "\n"
            << "configs:    " << res.configs_explored << "\n"
            << "bivalent:   " << (res.bivalent_initial ? "yes" : "no") << "\n"
            << "verdict:    " << res.verdict() << "\n\n"
            << "However clever the fallback, the checker always finds one of the\n"
            << "theorem's three failure modes. Try editing OptimisticThenFollow!\n\n";

  std::cout << "-- Part 2: the t+1 round bound (Lemma 3.1), n=4, t=1 --\n";
  for (u32 rounds = 1; rounds <= 2; ++rounds) {
    const check::RoundLbResult lb = check::search_round_lb(4, 1, rounds);
    std::cout << "rounds=" << rounds << ": " << lb.executions << " executions, disagreement "
              << (lb.disagreement ? "FOUND" : "impossible (complete search)") << "\n";
  }

  std::cout << "\n-- Part 3: valency of the adversary's strategy tree --\n";
  const auto val =
      check::analyze_sync_valency(4, 1, 2, {Vote::kPlus, Vote::kMinus, Vote::kMinus});
  for (const auto& rv : val.per_round) {
    std::cout << "end of round " << rv.round << ": " << rv.configurations << " configs, "
              << rv.bivalent << " bivalent, disagreement reachable: "
              << (rv.disagreement_reachable ? "yes" : "no") << "\n";
  }
  std::cout << "\nSee docs/MODEL.md for the full paper-to-API mapping.\n";
  return 0;
}
