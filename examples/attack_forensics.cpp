// Attack forensics: run a chain under the rushing adversary, then take the
// resulting append memory apart with the library's analysis tooling —
// backbone metrics, a Graphviz dump of the fork structure, and a replayable
// trace of the full execution.
//
//   ./examples/attack_forensics [--n 12] [--t 3] [--lambda 0.5] [--k 21]
//   dot -Tsvg attack.dot -o attack.svg     # render the fork structure
#include <fstream>
#include <iostream>

#include "am/trace.hpp"
#include "chain/backbone.hpp"
#include "chain/dot.hpp"
#include "exp/harness.hpp"
#include "protocols/chain_ba.hpp"
#include "sched/poisson.hpp"

using namespace amm;

int main(int argc, char** argv) {
  exp::Harness h(argc, argv, "example: attack forensics", 1);
  const u32 n = static_cast<u32>(h.args.get_int("n", 12));
  const u32 t = static_cast<u32>(h.args.get_int("t", 3));
  const u32 k = static_cast<u32>(h.args.get_int("k", 21));
  const double lambda = h.args.get_double("lambda", 0.5);

  // Re-run the attack, but this time keep the memory: the slotted runner
  // is a black box, so we reconstruct an equivalent small history through
  // the continuous runner's own substrate — here we simply simulate a
  // fresh execution against the real AppendMemory via the public API.
  proto::ChainParams params;
  params.scenario.n = n;
  params.scenario.t = t;
  params.k = k;
  params.lambda = lambda;
  params.adversary = proto::ChainAdversary::kRushExtend;

  // Drive one run manually so we own the memory: tokens from the public
  // authority, honest nodes on stale views, the rusher on the live view.
  am::AppendMemory memory(n);
  sched::TokenAuthority authority(n, lambda, 1.0, Rng(h.seed));
  Rng tie_rng(h.seed + 1);
  const auto is_byz = [&](NodeId id) { return id.index >= n - t; };

  while (true) {
    const sched::Token token = authority.next();
    const bool byz = is_byz(token.holder);
    // Byzantine: live view; correct: view stale by Δ=1.
    const am::MemoryView view = byz ? memory.read() : memory.read_at(token.time - 1.0);
    const chain::BlockGraph graph(view);
    std::vector<am::MsgId> refs;
    if (graph.block_count() > 0) {
      refs.push_back(chain::choose_longest_tip(graph, chain::TieBreak::kRandomized, tie_rng));
    }
    memory.append(token.holder, byz ? Vote::kMinus : Vote::kPlus, 0, std::move(refs),
                  token.time);
    const chain::BlockGraph now(memory.read());
    if (now.max_depth() >= k) break;
  }

  const chain::BlockGraph graph(memory.read());
  std::cout << "execution: " << memory.total_appends() << " appends, longest chain "
            << graph.max_depth() << " (target k=" << k << ")\n\n";

  // 1. Backbone metrics.
  const auto tip = graph.deepest_blocks().front();
  std::cout << "chain quality (byz share of decided chain): "
            << fmt(chain::chain_quality(graph, tip, k, is_byz), 3) << "  (token share "
            << fmt(static_cast<double>(t) / n, 3) << ")\n";
  std::cout << "wasted forked appends: " << memory.total_appends() - graph.max_depth() << "\n\n";

  // 2. Graphviz dump.
  chain::DotOptions dot_options;
  dot_options.is_adversarial = is_byz;
  std::ofstream dot_file("attack.dot");
  chain::write_dot(dot_file, graph, dot_options);
  std::cout << "wrote attack.dot (" << graph.block_count()
            << " blocks; red = Byzantine, bold = pivot)\n";

  // 3. Replayable trace.
  const am::Trace trace = am::capture(memory);
  std::ofstream trace_file("attack.trace");
  am::write_trace(trace_file, trace);
  const am::AppendMemory replayed = am::replay(trace);
  std::cout << "wrote attack.trace (" << trace.entries.size()
            << " entries; replay matches: " << std::boolalpha
            << (am::capture(replayed) == trace) << ")\n";
  return 0;
}
