// Quickstart: the append memory in five minutes.
//
//   1. Create an AppendMemory and append messages with references.
//   2. Take snapshot views and interpret them as a block graph.
//   3. Run the synchronous Byzantine agreement protocol (Algorithm 1).
//   4. Run randomized-access Byzantine agreement on a DAG (Algorithm 6).
//
// Build & run:  ./examples/quickstart
#include <iostream>

#include "adversary/sync_strategies.hpp"
#include "chain/rules.hpp"
#include "protocols/dag_ba.hpp"
#include "protocols/sync_ba.hpp"

using namespace amm;

int main() {
  std::cout << "== 1. The append memory ==\n";
  // Five nodes, one append-only register each. Appends carry a ±1 value
  // and references to earlier appends ("a previous state of the memory").
  am::AppendMemory memory(5);
  const am::MsgId genesis = memory.append(NodeId{0}, Vote::kPlus, 0, {}, /*now=*/0.1);
  const am::MsgId a = memory.append(NodeId{1}, Vote::kPlus, 0, {genesis}, 0.2);
  const am::MsgId b = memory.append(NodeId{2}, Vote::kMinus, 0, {genesis}, 0.3);  // fork!
  const am::MsgId c = memory.append(NodeId{3}, Vote::kPlus, 0, {a, b}, 0.4);      // DAG merge
  (void)c;

  // M.read() returns the complete memory; read_at() an observer's stale view.
  std::cout << "memory holds " << memory.read().size() << " messages; "
            << "an observer at t=0.25 saw only " << memory.read_at(0.25).size() << "\n";

  std::cout << "\n== 2. Views as block graphs ==\n";
  const chain::BlockGraph graph(memory.read());
  std::cout << "max depth " << graph.max_depth() << ", tips " << graph.tips().size()
            << ", GHOST pivot length "
            << chain::select_pivot(graph, chain::PivotRule::kGhost).size() << "\n";
  const auto order = chain::linearize_dag(graph, chain::PivotRule::kGhost);
  std::cout << "DAG linearization covers all " << order.size() << " messages (inclusive!)\n";

  std::cout << "\n== 3. Synchronous Byzantine agreement (Algorithm 1) ==\n";
  proto::SyncParams sync;
  sync.scenario.n = 7;
  sync.scenario.t = 3;  // t < n/2: the protocol's guarantee applies
  sync.scenario.correct_input = Vote::kPlus;
  adv::SplitVisionSync adversary(Vote::kMinus, Rng(42));
  const proto::Outcome out = proto::run_sync_ba(sync, adversary);
  std::cout << "n=7, t=3, rounds=" << out.rounds << " (= t+1), agreement="
            << (out.agreement() ? "yes" : "NO")
            << ", validity=" << (out.validity(sync.scenario) ? "yes" : "NO") << "\n";

  std::cout << "\n== 4. Byzantine agreement on a DAG (Algorithm 6) ==\n";
  proto::DagParams dag;
  dag.scenario.n = 10;
  dag.scenario.t = 4;  // 40% Byzantine — fatal for a chain at this rate
  dag.k = 101;
  dag.lambda = 1.0;
  dag.adversary = proto::DagAdversary::kRateAndWithhold;
  const proto::DagResult res = proto::run_dag_continuous(dag, Rng(7));
  std::cout << "n=10, t=4, lambda=1.0: decided after " << res.outcome.total_appends
            << " appends; byz values in the k=101 cut: " << res.outcome.byz_in_decision_set
            << " (withheld dump: " << res.dumped << ")"
            << ", validity=" << (res.outcome.validity(dag.scenario) ? "yes" : "NO") << "\n";

  std::cout << "\nNext: examples/chain_vs_dag for the paper's headline comparison.\n";
  return 0;
}
