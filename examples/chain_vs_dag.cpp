// The paper's headline, interactively: sweep the Byzantine share for a
// chain and a DAG at the same access rate and watch where each collapses.
//
//   ./examples/chain_vs_dag [--n 20] [--lambda 0.5] [--k 61] [--trials 40]
//
// Expected shape (Theorems 5.4 / 5.6): the chain fails once λ·t crosses 1;
// the DAG holds until t/n approaches 1/2, for any λ.
#include <iostream>

#include "exp/harness.hpp"
#include "exp/montecarlo.hpp"
#include "protocols/chain_ba.hpp"
#include "protocols/dag_ba.hpp"

using namespace amm;

int main(int argc, char** argv) {
  exp::Harness h(argc, argv, "example: chain vs DAG", 40);
  const u32 n = static_cast<u32>(h.args.get_int("n", 20));
  const u32 k = static_cast<u32>(h.args.get_int("k", 61));
  const double lambda = h.args.get_double("lambda", 0.5);

  Table table({"t", "t/n", "lambda*t", "chain validity", "DAG validity"});
  for (u32 t = 1; t < n / 2; t += std::max(1u, n / 10)) {
    proto::ChainParams cp;
    cp.scenario.n = n;
    cp.scenario.t = t;
    cp.k = k;
    cp.lambda = lambda;
    cp.adversary = proto::ChainAdversary::kRushExtend;

    proto::DagParams dp;
    dp.scenario.n = n;
    dp.scenario.t = t;
    dp.k = k;
    dp.lambda = lambda;
    dp.adversary = proto::DagAdversary::kRateAndWithhold;

    const auto chain_est =
        exp::estimate_rate(h.pool, h.seed ^ t, h.trials, [&](usize, Rng& rng) {
          const auto out = proto::run_chain_slotted(cp, rng);
          return out.terminated && out.validity(cp.scenario);
        });
    const auto dag_est =
        exp::estimate_rate(h.pool, h.seed ^ (t + 1000), h.trials, [&](usize, Rng& rng) {
          const auto res = proto::run_dag_continuous(dp, rng);
          return res.outcome.terminated && res.outcome.validity(dp.scenario);
        });
    table.add_row({std::to_string(t), fmt(static_cast<double>(t) / n, 2), fmt(lambda * t, 2),
                   fmt(chain_est.rate(), 2), fmt(dag_est.rate(), 2)});
  }
  h.emit(table);
  std::cout << "Chain threshold predicted at t/n = 1/(1+lambda*(n-t)) — i.e. lambda*t = 1.\n"
            << "The DAG should stay valid all the way to t/n ~ 0.5.\n";
  return 0;
}
