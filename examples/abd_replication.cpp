// Running the append memory over a real (simulated) asynchronous network:
// the §4 ABD-style simulation with crashes and an active forger.
//
//   ./examples/abd_replication [--n 7] [--crashed 2] [--ops 20]
//
// Shows: operation latencies under random message delays, liveness with a
// crashed minority, signature-based rejection of forged records, and the
// message/byte bill the append memory model abstracts away.
#include <iostream>
#include <memory>

#include "exp/harness.hpp"
#include "mp/abd.hpp"
#include "mp/network.hpp"

using namespace amm;

int main(int argc, char** argv) {
  exp::Harness h(argc, argv, "example: ABD simulation of the append memory", 1);
  const u32 n = static_cast<u32>(h.args.get_int("n", 7));
  const u32 crashed = static_cast<u32>(h.args.get_int("crashed", 2));
  const u32 ops = static_cast<u32>(h.args.get_int("ops", 20));
  if (crashed + 1 >= (n + 1) / 2 && crashed >= n / 2) {
    std::cout << "warning: crashed >= n/2 — operations will block (that's the point!)\n";
  }

  crypto::KeyRegistry keys(n, h.seed);
  mp::Network net(n, /*min_delay=*/0.05, /*max_delay=*/0.8, Rng(h.seed + 1));

  std::vector<std::unique_ptr<mp::AbdNode>> nodes;
  const u32 correct = n - crashed - 1;  // one slot for the forger
  for (u32 i = 0; i < correct; ++i) {
    nodes.push_back(std::make_unique<mp::AbdNode>(NodeId{i}, net, keys));
  }
  std::vector<std::unique_ptr<mp::CrashedNode>> dead;
  for (u32 i = correct; i < n - 1; ++i) {
    dead.push_back(std::make_unique<mp::CrashedNode>(NodeId{i}, net));
  }
  mp::ForgerNode forger(NodeId{n - 1}, /*victim=*/NodeId{0}, net, keys);

  std::cout << n << " nodes: " << correct << " correct, " << crashed << " crashed, 1 forger\n\n";

  Table table({"op", "node", "latency", "msgs", "bytes", "view size after"});
  Rng rng(h.seed + 2);
  for (u32 op = 0; op < ops; ++op) {
    const u32 who = static_cast<u32>(rng.uniform_below(correct));
    const bool do_read = op % 3 == 2;
    const SimTime t0 = net.queue().now();
    const u64 m0 = net.messages_sent(), b0 = net.bytes_sent();
    SimTime done_at = -1.0;
    if (do_read) {
      nodes[who]->begin_read(
          [&](const std::vector<mp::SignedAppend>&) { done_at = net.queue().now(); });
    } else {
      nodes[who]->begin_append(static_cast<i64>(op), [&] { done_at = net.queue().now(); });
    }
    net.queue().run();
    table.add_row({do_read ? "read" : "append", std::to_string(who),
                   done_at >= 0 ? fmt(done_at - t0, 2) : "BLOCKED",
                   std::to_string(net.messages_sent() - m0),
                   std::to_string(net.bytes_sent() - b0),
                   std::to_string(nodes[who]->local_view().size())});
  }
  h.emit(table);

  // Forgery audit: no correct view may contain a record by the victim that
  // the victim never appended.
  u64 victim_records = 0;
  for (const auto& node : nodes) {
    for (const auto& rec : node->local_view()) {
      if (rec.author == NodeId{0} && rec.seq >= nodes[0]->appends_issued()) ++victim_records;
    }
  }
  std::cout << "forged records accepted into correct views: " << victim_records
            << " (must be 0 — Lemma 4.1)\n"
            << "total network bill: " << net.messages_sent() << " messages, " << net.bytes_sent()
            << " bytes for " << ops << " operations\n";
  return 0;
}
