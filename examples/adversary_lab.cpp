// Adversary lab: plug a *custom* Byzantine strategy into the synchronous
// runner and watch what it takes to break Algorithm 1.
//
// Demonstrates the public adversary API (proto::SyncAdversary): implement
// one virtual method choosing (value, reference set, visibility subset)
// per round, then race it against the protocol at several round budgets.
//
//   ./examples/adversary_lab [--n 7] [--t 3]
#include <iostream>

#include "adversary/sync_strategies.hpp"
#include "exp/harness.hpp"
#include "protocols/sync_ba.hpp"

using namespace amm;

namespace {

/// A hand-rolled strategy: stay silent until the penultimate round, then
/// stack a private chain over the last two rounds with shrinking
/// visibility — a two-round version of the lower-bound staircase.
class TwoRoundStaircase final : public proto::SyncAdversary {
 public:
  std::optional<proto::SyncAppend> on_round(u32 round, NodeId byz,
                                            const proto::SyncContext& ctx) override {
    const proto::Scenario& s = *ctx.scenario;
    const u32 rank = byz.index - s.correct_count();
    if (round + 1 < ctx.total_rounds) return std::nullopt;

    proto::SyncAppend app;
    app.value = Vote::kMinus;
    app.visible_to.assign(s.n, false);
    for (u32 v = s.correct_count(); v < s.n; ++v) app.visible_to[v] = true;

    if (round + 1 == ctx.total_rounds) {
      // Penultimate round: half the Byzantine nodes lay a hidden chain.
      if (rank % 2 != 0) return std::nullopt;
      if (rank >= 2) app.refs.push_back(static_cast<u32>(ctx.msgs->size()) - 1);
      return app;
    }
    // Final round: the other half extends it, visible to one correct node.
    if (rank % 2 != 1) return std::nullopt;
    app.refs.push_back(static_cast<u32>(ctx.msgs->size()) - 1);
    app.visible_to[0] = true;
    return app;
  }
};

void race(const char* name, proto::SyncAdversary& adversary, u32 n, u32 t, Table& table) {
  for (u32 rounds = 1; rounds <= t + 1; ++rounds) {
    proto::SyncParams params;
    params.scenario.n = n;
    params.scenario.t = t;
    params.rounds_override = rounds;
    // Knife-edge inputs: half plus, half minus.
    params.scenario.inputs.resize(n - t);
    for (u32 v = 0; v < n - t; ++v) {
      params.scenario.inputs[v] = v % 2 == 0 ? Vote::kPlus : Vote::kMinus;
    }
    const proto::Outcome out = proto::run_sync_ba(params, adversary);
    table.add_row({name, std::to_string(rounds), std::to_string(t + 1),
                   out.agreement() ? "agreement" : "SPLIT!"});
  }
}

}  // namespace

int main(int argc, char** argv) {
  exp::Harness h(argc, argv, "example: adversary lab", 1);
  const u32 n = static_cast<u32>(h.args.get_int("n", 7));
  const u32 t = static_cast<u32>(h.args.get_int("t", 3));

  Table table({"adversary", "rounds run", "rounds needed (t+1)", "outcome"});
  adv::LastRoundSplitSync staircase(Vote::kMinus, (n - t) / 2);
  race("last-round-split (library)", staircase, n, t, table);
  TwoRoundStaircase custom;
  race("two-round-staircase (custom)", custom, n, t, table);
  adv::OppositeVoterSync polite(Vote::kMinus);
  race("opposite-voter (compliant)", polite, n, t, table);
  h.emit(table);

  std::cout << "Running fewer than t+1 rounds lets visibility-delay attacks split the\n"
            << "correct nodes; at t+1 rounds every strategy above is neutralized\n"
            << "(Lemma 3.1 / Theorem 3.2).\n";
  return 0;
}
