// On-disk framing and FileLog durability tests (DESIGN.md §10).
//
// The framing half applies the wire-codec discipline to the disk formats:
// every record-frame stream is truncated at *every* byte offset and the
// scan must yield exactly the clean record prefix, never garbage; every
// single-byte flip must cut the stream at the corrupted frame (CRC-32
// detects any burst <= 32 bits, so a byte flip can never slip through).
// The FileLog half exercises the store lifecycle against a real temp
// directory: reopen, torn-tail truncation, segment rolling and pruning,
// snapshot replacement, and a seeded crash-point fuzz.
#include "storage/file_log.hpp"

#include <dirent.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "storage/log_format.hpp"
#include "support/rng.hpp"

namespace amm::storage {
namespace {

struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/amm_store_test_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    if (made != nullptr) path = made;
  }
  ~TempDir() {
    if (path.empty()) return;
    if (DIR* d = ::opendir(path.c_str())) {
      while (dirent* e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name != "." && name != "..") ::unlink((path + "/" + name).c_str());
      }
      ::closedir(d);
    }
    ::rmdir(path.c_str());
  }
  std::string path;
};

mp::SignedAppend make_record(u32 author, u32 seq, i64 value) {
  mp::SignedAppend rec;
  rec.author = NodeId{author};
  rec.seq = seq;
  rec.value = value;
  rec.sig = crypto::Signature{NodeId{author}, 0x51A0u + static_cast<u64>(author) * 131 + seq};
  return rec;
}

std::vector<mp::SignedAppend> records(usize count) {
  std::vector<mp::SignedAppend> recs;
  for (usize i = 0; i < count; ++i) {
    recs.push_back(make_record(static_cast<u32>(i % 3), static_cast<u32>(i / 3),
                               static_cast<i64>(100 + i)));
  }
  return recs;
}

std::vector<u8> frame_all(const std::vector<mp::SignedAppend>& recs) {
  std::vector<u8> image;
  for (const mp::SignedAppend& rec : recs) append_record_frame(image, rec);
  return image;
}

std::vector<mp::SignedAppend> scan_all(std::span<const u8> image, usize* valid_bytes = nullptr) {
  std::vector<mp::SignedAppend> out;
  usize off = 0;
  mp::SignedAppend rec;
  usize consumed = 0;
  while (off < image.size() &&
         extract_record_frame(image.subspan(off), &rec, &consumed) == ScanStatus::kRecord) {
    out.push_back(rec);
    off += consumed;
  }
  if (valid_bytes != nullptr) *valid_bytes = off;
  return out;
}

void expect_prefix(const std::vector<mp::SignedAppend>& got,
                   const std::vector<mp::SignedAppend>& all, usize count) {
  ASSERT_EQ(got.size(), count);
  for (usize i = 0; i < count; ++i) {
    EXPECT_TRUE(got[i] == all[i]) << "record " << i;
    EXPECT_TRUE(got[i].sig == all[i].sig) << "record " << i;
  }
}

void append_bytes(const std::string& path, const std::vector<u8>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

void write_bytes(const std::string& path, std::span<const u8> bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

mp::Snapshot make_snapshot(u64 log_seq, u32 next_seq) {
  mp::Snapshot snap;
  snap.log_seq = log_seq;
  snap.next_seq = next_seq;
  snap.watermarks = {5, 2, 0};
  snap.checkpoint.folded_below = 2;
  snap.checkpoint.chains = {11, 22, 33};
  snap.checkpoint.folded_records = 6;
  snap.checkpoint.vote_sum = -2;
  snap.checkpoint.sig = crypto::Signature{NodeId{0}, 77};
  snap.live = records(4);
  snap.sig = crypto::Signature{NodeId{0}, 99};
  return snap;
}

// ---- framing ----

TEST(LogFormat, RecordFrameStreamRoundTrips) {
  const auto recs = records(20);
  const std::vector<u8> image = frame_all(recs);
  ASSERT_EQ(image.size(), recs.size() * kLogRecordFrameBytes);
  usize valid = 0;
  expect_prefix(scan_all(image, &valid), recs, recs.size());
  EXPECT_EQ(valid, image.size());
}

TEST(LogFormat, EveryTruncationOffsetYieldsExactRecordPrefix) {
  const auto recs = records(12);
  const std::vector<u8> image = frame_all(recs);
  for (usize cut = 0; cut <= image.size(); ++cut) {
    usize valid = 0;
    const auto got = scan_all(std::span(image.data(), cut), &valid);
    const usize whole = cut / kLogRecordFrameBytes;
    ASSERT_NO_FATAL_FAILURE(expect_prefix(got, recs, whole)) << "cut=" << cut;
    EXPECT_EQ(valid, whole * kLogRecordFrameBytes) << "cut=" << cut;
  }
}

TEST(LogFormat, EveryByteFlipCutsStreamAtCorruptedFrame) {
  const auto recs = records(8);
  const std::vector<u8> image = frame_all(recs);
  for (usize off = 0; off < image.size(); ++off) {
    std::vector<u8> mutated = image;
    mutated[off] ^= 0xFF;
    const auto got = scan_all(mutated);
    const usize intact = off / kLogRecordFrameBytes;
    ASSERT_NO_FATAL_FAILURE(expect_prefix(got, recs, intact)) << "flip at " << off;
  }
}

TEST(LogFormat, SnapshotImageRoundTrips) {
  const mp::Snapshot snap = make_snapshot(42, 9);
  const std::vector<u8> image = encode_snapshot(snap);
  const auto decoded = decode_snapshot(image);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->log_seq, snap.log_seq);
  EXPECT_EQ(decoded->next_seq, snap.next_seq);
  EXPECT_EQ(decoded->watermarks, snap.watermarks);
  EXPECT_TRUE(decoded->checkpoint == snap.checkpoint);
  ASSERT_EQ(decoded->live.size(), snap.live.size());
  for (usize i = 0; i < snap.live.size(); ++i) {
    EXPECT_TRUE(decoded->live[i] == snap.live[i]);
    EXPECT_TRUE(decoded->live[i].sig == snap.live[i].sig);
  }
  EXPECT_TRUE(decoded->sig == snap.sig);
  EXPECT_EQ(decoded->digest(), snap.digest());
}

TEST(LogFormat, SnapshotEveryTruncationExtensionAndFlipRejected) {
  const std::vector<u8> image = encode_snapshot(make_snapshot(7, 3));
  for (usize len = 0; len < image.size(); ++len) {
    EXPECT_FALSE(decode_snapshot(std::span(image.data(), len)).has_value()) << "prefix " << len;
  }
  std::vector<u8> extended = image;
  extended.push_back(0x5A);
  EXPECT_FALSE(decode_snapshot(extended).has_value()) << "trailing garbage accepted";
  for (usize off = 0; off < image.size(); ++off) {
    std::vector<u8> mutated = image;
    mutated[off] ^= 0xFF;
    EXPECT_FALSE(decode_snapshot(mutated).has_value()) << "flip at " << off;
  }
}

// ---- FileLog lifecycle ----

TEST(FileLog, AppendsSurviveReopenAndReplayFromAnyPosition) {
  TempDir tmp;
  const auto recs = records(100);
  {
    FileLog store({.dir = tmp.path, .fsync = mp::FsyncPolicy::kNever});
    ASSERT_TRUE(store.ok()) << store.error();
    for (const auto& rec : recs) ASSERT_TRUE(store.append(rec));
    EXPECT_EQ(store.log_seq(), recs.size());
    EXPECT_EQ(store.stats().log_records, recs.size());
    EXPECT_EQ(store.stats().log_bytes, recs.size() * kLogRecordFrameBytes);
  }
  FileLog store({.dir = tmp.path, .fsync = mp::FsyncPolicy::kNever});
  ASSERT_TRUE(store.ok()) << store.error();
  EXPECT_EQ(store.log_seq(), recs.size());
  EXPECT_FALSE(store.load_snapshot().has_value());

  std::vector<mp::SignedAppend> replayed;
  EXPECT_EQ(store.replay(0, [&](const mp::SignedAppend& r) { replayed.push_back(r); }),
            recs.size());
  expect_prefix(replayed, recs, recs.size());

  replayed.clear();
  EXPECT_EQ(store.replay(40, [&](const mp::SignedAppend& r) { replayed.push_back(r); }), 60u);
  for (usize i = 0; i < replayed.size(); ++i) EXPECT_TRUE(replayed[i] == recs[40 + i]);

  // records() round-robins three authors; the index must agree.
  ASSERT_EQ(store.author_index().size(), 3u);
  for (const auto& [author, entry] : store.author_index()) {
    EXPECT_EQ(entry.records, recs.size() / 3 + (author < recs.size() % 3 ? 1 : 0));
  }
}

TEST(FileLog, TornTailIsTruncatedOnReopen) {
  TempDir tmp;
  const auto recs = records(10);
  std::string segment_path;
  {
    FileLog store({.dir = tmp.path, .fsync = mp::FsyncPolicy::kAlways});
    ASSERT_TRUE(store.ok()) << store.error();
    for (const auto& rec : recs) ASSERT_TRUE(store.append(rec));
    segment_path = tmp.path + "/" + segment_file_name(0);
  }
  append_bytes(segment_path, std::vector<u8>(13, 0xAB));  // the crash artifact

  FileLog store({.dir = tmp.path, .fsync = mp::FsyncPolicy::kAlways});
  ASSERT_TRUE(store.ok()) << store.error();
  EXPECT_EQ(store.stats().torn_tail_bytes, 13u);
  EXPECT_EQ(store.log_seq(), recs.size());
  const auto image = read_file(segment_path);
  ASSERT_TRUE(image.has_value());
  EXPECT_EQ(image->size(), recs.size() * kLogRecordFrameBytes);  // tail gone on disk

  // The store stays appendable after the repair.
  ASSERT_TRUE(store.append(make_record(1, 77, -5)));
  std::vector<mp::SignedAppend> replayed;
  EXPECT_EQ(store.replay(0, [&](const mp::SignedAppend& r) { replayed.push_back(r); }), 11u);
  EXPECT_TRUE(replayed.back() == make_record(1, 77, -5));
}

TEST(FileLog, EveryCrashOffsetRecoversExactRecordPrefix) {
  TempDir tmp;
  const auto recs = records(8);
  const std::vector<u8> image = frame_all(recs);
  const std::string segment_path = tmp.path + "/" + segment_file_name(0);
  for (usize cut = 0; cut <= image.size(); ++cut) {
    write_bytes(segment_path, std::span(image.data(), cut));
    FileLog store({.dir = tmp.path, .fsync = mp::FsyncPolicy::kNever});
    ASSERT_TRUE(store.ok()) << "cut=" << cut << ": " << store.error();
    const usize whole = cut / kLogRecordFrameBytes;
    EXPECT_EQ(store.log_seq(), whole) << "cut=" << cut;
    EXPECT_EQ(store.stats().torn_tail_bytes, cut % kLogRecordFrameBytes) << "cut=" << cut;
    std::vector<mp::SignedAppend> replayed;
    store.replay(0, [&](const mp::SignedAppend& r) { replayed.push_back(r); });
    ASSERT_NO_FATAL_FAILURE(expect_prefix(replayed, recs, whole)) << "cut=" << cut;
  }
}

TEST(FileLog, SegmentsRollAndPruneUnderSnapshot) {
  TempDir tmp;
  FileLogConfig config{.dir = tmp.path, .fsync = mp::FsyncPolicy::kNever};
  config.segment_bytes = 4 * kLogRecordFrameBytes;  // roll every 4 records
  const auto recs = records(10);
  FileLog store(config);
  ASSERT_TRUE(store.ok()) << store.error();
  for (const auto& rec : recs) ASSERT_TRUE(store.append(rec));
  EXPECT_EQ(store.stats().segments, 3u);  // 4 + 4 + 2

  mp::Snapshot snap = make_snapshot(store.log_seq(), 4);
  ASSERT_TRUE(store.write_snapshot(snap));
  // Both closed segments sit entirely below log_seq 10 and must be gone;
  // the active segment (records 8..9) stays.
  EXPECT_EQ(store.stats().segments, 1u);
  EXPECT_EQ(list_store_files(tmp.path, "seg-", ".log").size(), 1u);
  EXPECT_EQ(store.stats().log_records, 2u);

  std::vector<mp::SignedAppend> replayed;
  EXPECT_EQ(store.replay(0, [&](const mp::SignedAppend& r) { replayed.push_back(r); }), 2u);
  EXPECT_TRUE(replayed[0] == recs[8]);
  EXPECT_TRUE(replayed[1] == recs[9]);

  u64 indexed = 0;
  for (const auto& [author, entry] : store.author_index()) indexed += entry.records;
  EXPECT_EQ(indexed, 2u);

  // Reopen: snapshot comes back, the log picks up where it left off.
  FileLog reopened(config);
  ASSERT_TRUE(reopened.ok()) << reopened.error();
  const auto loaded = reopened.load_snapshot();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->log_seq, 10u);
  EXPECT_EQ(loaded->digest(), snap.digest());
  EXPECT_EQ(reopened.log_seq(), 10u);
}

TEST(FileLog, NewerSnapshotReplacesOlder) {
  TempDir tmp;
  FileLog store({.dir = tmp.path, .fsync = mp::FsyncPolicy::kNever});
  ASSERT_TRUE(store.ok()) << store.error();
  for (const auto& rec : records(6)) ASSERT_TRUE(store.append(rec));
  ASSERT_TRUE(store.write_snapshot(make_snapshot(3, 1)));
  ASSERT_TRUE(store.write_snapshot(make_snapshot(6, 2)));
  EXPECT_EQ(list_store_files(tmp.path, "snap-", ".snap").size(), 1u);
  const auto loaded = store.load_snapshot();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->log_seq, 6u);
  EXPECT_EQ(store.stats().snapshot_count, 2u);
}

TEST(FileLog, CorruptSnapshotIgnoredLogStillReplays) {
  TempDir tmp;
  const auto recs = records(5);
  {
    FileLog store({.dir = tmp.path, .fsync = mp::FsyncPolicy::kNever});
    ASSERT_TRUE(store.ok()) << store.error();
    for (const auto& rec : recs) ASSERT_TRUE(store.append(rec));
    ASSERT_TRUE(store.write_snapshot(make_snapshot(5, 2)));
  }
  const std::string snap_path = tmp.path + "/" + list_store_files(tmp.path, "snap-", ".snap")[0];
  auto image = read_file(snap_path);
  ASSERT_TRUE(image.has_value());
  (*image)[image->size() / 2] ^= 0xFF;
  write_bytes(snap_path, *image);

  FileLog store({.dir = tmp.path, .fsync = mp::FsyncPolicy::kNever});
  ASSERT_TRUE(store.ok()) << store.error();
  EXPECT_FALSE(store.load_snapshot().has_value());
  // The snapshot pruned the log at write time, so only records above its
  // log_seq remain — here none. What matters: open survives, store works.
  ASSERT_TRUE(store.append(make_record(0, 50, 1)));
}

TEST(FileLog, MidLogCorruptionFailsOpen) {
  TempDir tmp;
  FileLogConfig config{.dir = tmp.path, .fsync = mp::FsyncPolicy::kNever};
  config.segment_bytes = 3 * kLogRecordFrameBytes;
  {
    FileLog store(config);
    ASSERT_TRUE(store.ok()) << store.error();
    for (const auto& rec : records(7)) ASSERT_TRUE(store.append(rec));  // 3 segments
  }
  // Garbage behind a *closed* segment is not a crash artifact — refuse.
  append_bytes(tmp.path + "/" + segment_file_name(0), std::vector<u8>(5, 0xEE));
  FileLog store(config);
  EXPECT_FALSE(store.ok());
  EXPECT_FALSE(store.append(make_record(0, 99, 1)));  // failed store refuses writes
}

TEST(FileLog, SegmentGapFailsOpen) {
  TempDir tmp;
  FileLogConfig config{.dir = tmp.path, .fsync = mp::FsyncPolicy::kNever};
  config.segment_bytes = 2 * kLogRecordFrameBytes;
  {
    FileLog store(config);
    ASSERT_TRUE(store.ok()) << store.error();
    for (const auto& rec : records(6)) ASSERT_TRUE(store.append(rec));  // seg 0, 2, 4
  }
  ASSERT_EQ(::unlink((tmp.path + "/" + segment_file_name(2)).c_str()), 0);
  FileLog store(config);
  EXPECT_FALSE(store.ok());
}

TEST(FileLog, FuzzRandomCrashPointsAlwaysYieldAPrefix) {
  Rng rng(20200715);
  for (u32 round = 0; round < 30; ++round) {
    TempDir tmp;
    FileLogConfig config{.dir = tmp.path, .fsync = mp::FsyncPolicy::kNever};
    config.segment_bytes = (3 + rng.uniform_below(4)) * kLogRecordFrameBytes;
    const auto recs = records(1 + rng.uniform_below(24));
    {
      FileLog store(config);
      ASSERT_TRUE(store.ok()) << store.error();
      for (const auto& rec : recs) ASSERT_TRUE(store.append(rec));
    }
    // Crash: chop the tail of the last segment at a random byte offset,
    // sometimes smearing random garbage over the cut instead of a clean
    // truncation.
    const auto names = list_store_files(tmp.path, "seg-", ".log");
    ASSERT_FALSE(names.empty());
    const std::string last = tmp.path + "/" + names.back();
    auto image = read_file(last);
    ASSERT_TRUE(image.has_value());
    const usize cut = rng.uniform_below(static_cast<u32>(image->size() + 1));
    image->resize(cut);
    if (rng.uniform_below(2) == 0) {
      const u64 garbage = 1 + rng.uniform_below(8);
      for (u64 i = 0; i < garbage; ++i) {
        image->push_back(static_cast<u8>(rng.uniform_below(256)));
      }
    }
    write_bytes(last, *image);

    FileLog store(config);
    ASSERT_TRUE(store.ok()) << "round=" << round << ": " << store.error();
    std::vector<mp::SignedAppend> replayed;
    store.replay(0, [&](const mp::SignedAppend& r) { replayed.push_back(r); });
    ASSERT_LE(replayed.size(), recs.size()) << "round=" << round;
    for (usize i = 0; i < replayed.size(); ++i) {
      ASSERT_TRUE(replayed[i] == recs[i]) << "round=" << round << " record " << i;
    }
    // And the store must keep working from the recovered position.
    const auto next = make_record(2, 1000 + round, 7);
    ASSERT_TRUE(store.append(next));
    std::vector<mp::SignedAppend> again;
    store.replay(0, [&](const mp::SignedAppend& r) { again.push_back(r); });
    ASSERT_EQ(again.size(), replayed.size() + 1);
    EXPECT_TRUE(again.back() == next);
  }
}

}  // namespace
}  // namespace amm::storage
