// AbdNode crash/recovery through the mp::Storage seam (DESIGN.md §10).
//
// A "restart" here is the MemStorage fixture the seam was designed around:
// destroy the AbdNode, keep the storage instance, construct a fresh node
// on the same storage and call recover_from_storage(). The properties
// pinned:
//
//   * replaying the log reproduces the pre-crash local view byte for byte
//     (records in admission order, signatures included) and preserves
//     next_seq, so a recovered author never reuses a sequence number;
//   * recovery from *any* log prefix — every possible crash point — yields
//     exactly that prefix of the pre-crash view, never a permutation or an
//     invented record;
//   * a tampered snapshot fails its self-signature and is rejected
//     wholesale (the node falls back to replaying the retained log);
//   * the same lifecycle holds for the real storage::FileLog backend
//     against a temp directory, including a torn tail from a mid-write
//     crash.
#include "mp/abd.hpp"

#include <dirent.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "mp/network.hpp"
#include "mp/storage.hpp"
#include "storage/file_log.hpp"

namespace amm::mp {
namespace {

struct Cluster {
  Cluster(u32 n, u64 seed, const AbdConfig& zero_config, const AbdConfig& rest_config = {})
      : keys(n, seed), net(n, 0.05, 0.5, Rng(seed + 1)) {
    nodes.push_back(std::make_unique<AbdNode>(NodeId{0}, net, keys, zero_config));
    for (u32 i = 1; i < n; ++i) {
      nodes.push_back(std::make_unique<AbdNode>(NodeId{i}, net, keys, rest_config));
    }
  }

  void run() { net.queue().run(); }

  /// Issues `count` appends round-robin across the nodes and drains the
  /// network — every correct node ends up admitting every record.
  void append_round_robin(u32 count, i64 base) {
    for (u32 i = 0; i < count; ++i) {
      nodes[i % nodes.size()]->begin_append(base + i, [] {});
    }
    run();
  }

  /// Like append_round_robin, but drains the network after every append —
  /// records arrive (mostly) in seq order, so watermarks and the stability
  /// cut advance as the history grows (what compaction tests need).
  void append_sequential(u32 count, i64 base) {
    for (u32 i = 0; i < count; ++i) {
      nodes[i % nodes.size()]->begin_append(base + i, [] {});
      run();
    }
  }

  /// Simulates a crash+restart of node 0: the old instance is destroyed
  /// (its storage survives it) and a fresh one recovers from storage.
  u64 restart_zero(const AbdConfig& config) {
    nodes[0].reset();
    nodes[0] = std::make_unique<AbdNode>(NodeId{0}, net, keys, config);
    return nodes[0]->recover_from_storage();
  }

  crypto::KeyRegistry keys;
  Network net;
  std::vector<std::unique_ptr<AbdNode>> nodes;
};

void expect_views_equal(const std::vector<SignedAppend>& got,
                        const std::vector<SignedAppend>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (usize i = 0; i < want.size(); ++i) {
    EXPECT_TRUE(got[i] == want[i]) << "record " << i;
    EXPECT_TRUE(got[i].sig == want[i].sig) << "record " << i;
  }
}

void expect_no_duplicate_author_seq(const std::vector<SignedAppend>& view) {
  for (usize i = 0; i < view.size(); ++i) {
    for (usize j = i + 1; j < view.size(); ++j) {
      EXPECT_FALSE(view[i].author == view[j].author && view[i].seq == view[j].seq)
          << "duplicate (author " << view[i].author.index << ", seq " << view[i].seq << ")";
    }
  }
}

TEST(Recovery, LogReplayReproducesViewAndNextSeq) {
  MemStorage store;
  AbdConfig cfg;
  cfg.storage = &store;
  cfg.snapshot_interval = 0;  // pure log replay, no snapshot involved
  Cluster c(4, 7, cfg);
  c.append_round_robin(20, 100);

  const std::vector<SignedAppend> before = c.nodes[0]->local_view();
  const u32 issued = c.nodes[0]->appends_issued();
  ASSERT_EQ(before.size(), 20u);
  ASSERT_EQ(store.log_seq(), before.size());  // every admission persisted

  const u64 replayed = c.restart_zero(cfg);
  EXPECT_EQ(replayed, before.size());
  EXPECT_EQ(c.nodes[0]->stats().recovery_replayed_records, replayed);
  expect_views_equal(c.nodes[0]->local_view(), before);
  EXPECT_EQ(c.nodes[0]->appends_issued(), issued);  // no seq reuse after restart

  // The recovered node keeps participating; nothing is double-appended.
  c.append_round_robin(8, 500);
  for (const auto& node : c.nodes) {
    EXPECT_EQ(node->local_view().size(), 28u);
    expect_no_duplicate_author_seq(node->local_view());
  }
}

TEST(Recovery, EveryCrashPointYieldsExactViewPrefix) {
  MemStorage store;
  AbdConfig cfg;
  cfg.storage = &store;
  cfg.snapshot_interval = 0;
  Cluster c(4, 11, cfg);
  c.append_round_robin(12, 100);

  std::vector<SignedAppend> log;
  store.replay(0, [&](const SignedAppend& r) { log.push_back(r); });
  // Admission order *is* the log order, so the pre-crash view and the full
  // log agree record for record.
  ASSERT_NO_FATAL_FAILURE(expect_views_equal(log, c.nodes[0]->local_view()));

  for (usize crash = 0; crash <= log.size(); ++crash) {
    MemStorage partial;
    for (usize i = 0; i < crash; ++i) ASSERT_TRUE(partial.append(log[i]));
    Network lone(4, 0.05, 0.5, Rng(99));
    AbdConfig recover_cfg = cfg;
    recover_cfg.storage = &partial;
    AbdNode node(NodeId{0}, lone, c.keys, recover_cfg);
    EXPECT_EQ(node.recover_from_storage(), crash);
    const std::vector<SignedAppend> prefix(log.begin(),
                                           log.begin() + static_cast<std::ptrdiff_t>(crash));
    ASSERT_NO_FATAL_FAILURE(expect_views_equal(node.local_view(), prefix)) << "crash=" << crash;
  }
}

TEST(Recovery, SnapshotPlusSuffixReplayMatchesFullView) {
  MemStorage store;
  AbdConfig cfg;
  cfg.storage = &store;
  cfg.snapshot_interval = 8;
  Cluster c(4, 13, cfg);
  c.append_round_robin(30, 100);

  const std::vector<SignedAppend> before = c.nodes[0]->local_view();
  ASSERT_GE(c.nodes[0]->stats().snapshots_written, 2u);
  ASSERT_TRUE(store.load_snapshot().has_value());

  const u64 replayed = c.restart_zero(cfg);
  // The snapshot absorbed a prefix; only the suffix above it replays.
  EXPECT_LT(replayed, before.size());
  expect_views_equal(c.nodes[0]->local_view(), before);

  c.append_round_robin(6, 900);
  for (const auto& node : c.nodes) {
    EXPECT_EQ(node->local_view().size(), 36u);
    expect_no_duplicate_author_seq(node->local_view());
  }
}

TEST(Recovery, TamperedSnapshotRejectedFallsBackToLogReplay) {
  MemStorage store;
  AbdConfig cfg;
  cfg.storage = &store;
  cfg.snapshot_interval = 8;
  Cluster c(4, 17, cfg);
  c.append_round_robin(20, 100);

  auto snap = store.load_snapshot();
  ASSERT_TRUE(snap.has_value());
  snap->next_seq += 1000;  // tamper; the old self-signature no longer covers it
  ASSERT_TRUE(store.write_snapshot(*snap));

  u64 retained = 0;
  store.replay(0, [&](const SignedAppend&) { ++retained; });

  const u64 replayed = c.restart_zero(cfg);
  // The snapshot is rejected wholesale: everything the node recovers
  // locally is the retained log suffix, and the forged next_seq is not
  // adopted (the counter rebuilds from the node's own replayed records).
  EXPECT_EQ(replayed, retained);
  EXPECT_EQ(c.nodes[0]->local_view().size(), retained);
  EXPECT_LT(c.nodes[0]->appends_issued(), 1000u);
}

TEST(Recovery, CheckpointAndSummaryModeSurviveRestart) {
  MemStorage store;
  AbdConfig cfg;
  cfg.storage = &store;
  cfg.snapshot_interval = 8;
  cfg.compact.enabled = true;
  cfg.compact.retain_records = false;  // summary mode: folded bodies erased
  cfg.compact.lag = 0;
  cfg.compact.quantum = 1;
  cfg.compact.auto_interval = 4;
  AbdConfig rest = cfg;
  rest.storage = nullptr;
  Cluster c(3, 19, cfg, rest);
  c.append_sequential(30, 100);

  const Checkpoint before_cp = c.nodes[0]->checkpoint();
  const std::vector<SignedAppend> before = c.nodes[0]->local_view();
  ASSERT_GT(before_cp.folded_records, 0u);
  ASSERT_LT(before.size(), 30u);  // summary mode really erased a prefix

  c.restart_zero(cfg);
  EXPECT_TRUE(c.nodes[0]->checkpoint().structurally_equal(before_cp));
  expect_views_equal(c.nodes[0]->local_view(), before);

  c.append_round_robin(6, 700);
  expect_no_duplicate_author_seq(c.nodes[0]->local_view());
}

TEST(Recovery, FileLogBackendSurvivesRestartWithTornTail) {
  char tmpl[] = "/tmp/amm_recovery_test_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);
  const std::string store_dir = dir;

  storage::FileLogConfig store_cfg{.dir = store_dir, .fsync = mp::FsyncPolicy::kAlways};
  AbdConfig cfg;
  cfg.snapshot_interval = 8;

  std::vector<SignedAppend> before;
  u32 issued = 0;
  {
    auto store = std::make_unique<storage::FileLog>(store_cfg);
    ASSERT_TRUE(store->ok()) << store->error();
    cfg.storage = store.get();
    Cluster c(3, 23, cfg);
    c.append_round_robin(20, 100);
    before = c.nodes[0]->local_view();
    issued = c.nodes[0]->appends_issued();
    c.nodes[0].reset();  // node dies before its backend
  }

  // The crash tore a partial frame onto the end of the last segment.
  const auto segments = storage::list_store_files(store_dir, "seg-", ".log");
  ASSERT_FALSE(segments.empty());
  std::FILE* f = std::fopen((store_dir + "/" + segments.back()).c_str(), "ab");
  ASSERT_NE(f, nullptr);
  const u8 torn[7] = {1, 2, 3, 4, 5, 6, 7};
  ASSERT_EQ(std::fwrite(torn, 1, sizeof torn, f), sizeof torn);
  std::fclose(f);

  auto store = std::make_unique<storage::FileLog>(store_cfg);
  ASSERT_TRUE(store->ok()) << store->error();
  EXPECT_EQ(store->stats().torn_tail_bytes, sizeof torn);
  cfg.storage = store.get();
  crypto::KeyRegistry keys(3, 23);
  Network lone(3, 0.05, 0.5, Rng(5));
  AbdNode node(NodeId{0}, lone, keys, cfg);
  const u64 replayed = node.recover_from_storage();
  // snapshot_interval=8 over 20 admissions: the newest snapshot covers log
  // position 16, so exactly the 4-record suffix replays.
  EXPECT_EQ(replayed, 4u);
  expect_views_equal(node.local_view(), before);
  EXPECT_EQ(node.appends_issued(), issued);

  store.reset();
  if (DIR* d = ::opendir(store_dir.c_str())) {
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name != "." && name != "..") ::unlink((store_dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(store_dir.c_str());
}

}  // namespace
}  // namespace amm::mp
