#include "crypto/signature.hpp"

#include <gtest/gtest.h>

namespace amm::crypto {
namespace {

TEST(KeyRegistry, SignVerifyRoundtrip) {
  KeyRegistry reg(4, /*seed=*/1);
  const u64 digest = 0xdeadbeef;
  const Signature sig = reg.sign(NodeId{2}, digest);
  EXPECT_TRUE(reg.verify(digest, sig));
}

TEST(KeyRegistry, WrongDigestFails) {
  KeyRegistry reg(4, 1);
  const Signature sig = reg.sign(NodeId{0}, 111);
  EXPECT_FALSE(reg.verify(112, sig));
}

TEST(KeyRegistry, SignerSwapFails) {
  KeyRegistry reg(4, 1);
  Signature sig = reg.sign(NodeId{0}, 42);
  sig.signer = NodeId{1};  // claim another identity, keep the tag
  EXPECT_FALSE(reg.verify(42, sig));
}

TEST(KeyRegistry, TagTamperFails) {
  KeyRegistry reg(4, 1);
  Signature sig = reg.sign(NodeId{3}, 42);
  sig.tag ^= 1;
  EXPECT_FALSE(reg.verify(42, sig));
}

TEST(KeyRegistry, UnknownSignerRejected) {
  KeyRegistry reg(4, 1);
  Signature sig;
  sig.signer = NodeId{99};
  sig.tag = 7;
  EXPECT_FALSE(reg.verify(0, sig));
}

TEST(KeyRegistry, DeterministicPerSeed) {
  KeyRegistry a(4, 5), b(4, 5);
  EXPECT_EQ(a.sign(NodeId{1}, 9).tag, b.sign(NodeId{1}, 9).tag);
}

TEST(KeyRegistry, DifferentSeedsDifferentKeys) {
  KeyRegistry a(4, 5), b(4, 6);
  EXPECT_NE(a.sign(NodeId{1}, 9).tag, b.sign(NodeId{1}, 9).tag);
}

TEST(KeyRegistry, NodesHaveDistinctKeys) {
  KeyRegistry reg(8, 7);
  EXPECT_NE(reg.sign(NodeId{0}, 5).tag, reg.sign(NodeId{1}, 5).tag);
}

TEST(SigningHandle, AllowsGrantedIdentity) {
  KeyRegistry reg(4, 1);
  SigningHandle handle(reg, {NodeId{2}});
  const Signature sig = handle.sign(NodeId{2}, 10);
  EXPECT_TRUE(handle.verify(10, sig));
}

TEST(SigningHandleDeathTest, RejectsForeignIdentity) {
  KeyRegistry reg(4, 1);
  SigningHandle handle(reg, {NodeId{2}});
  EXPECT_DEATH((void)handle.sign(NodeId{0}, 10), "precondition");
}

TEST(SigningHandle, IsAllowed) {
  KeyRegistry reg(4, 1);
  SigningHandle handle(reg, {NodeId{1}, NodeId{3}});
  EXPECT_TRUE(handle.is_allowed(NodeId{1}));
  EXPECT_FALSE(handle.is_allowed(NodeId{0}));
}

TEST(DigestBuilder, OrderSensitive) {
  const u64 a = DigestBuilder{}.add(1).add(2).finish();
  const u64 b = DigestBuilder{}.add(2).add(1).finish();
  EXPECT_NE(a, b);
}

TEST(DigestBuilder, Deterministic) {
  const u64 a = DigestBuilder{}.add(7).add(8).add(9).finish();
  const u64 b = DigestBuilder{}.add(7).add(8).add(9).finish();
  EXPECT_EQ(a, b);
}

TEST(DigestBuilder, LengthSensitive) {
  const u64 a = DigestBuilder{}.add(1).finish();
  const u64 b = DigestBuilder{}.add(1).add(0).finish();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace amm::crypto
