#include "crypto/siphash.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace amm::crypto {
namespace {

std::vector<std::byte> bytes(const std::string& s) {
  std::vector<std::byte> b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  return b;
}

/// The reference test key from the SipHash paper: k = 000102...0f.
constexpr SipKey kRefKey{0x0706050403020100ULL, 0x0f0e0d0c0b0a0908ULL};

TEST(SipHash, ReferenceVectorEmptyInput) {
  // First entry of the official SipHash-2-4 64-bit test vector table.
  EXPECT_EQ(siphash24(kRefKey, std::span<const std::byte>{}), 0x726fdb47dd0e0e31ULL);
}

TEST(SipHash, ReferenceVectorOneByte) {
  // Second entry: input 0x00.
  const std::byte in[] = {std::byte{0x00}};
  EXPECT_EQ(siphash24(kRefKey, std::span<const std::byte>(in, 1)), 0x74f839c593dc67fdULL);
}

TEST(SipHash, ReferenceVectorEightBytes) {
  // Ninth entry: input 00 01 02 ... 07 (one full compression block).
  std::byte in[8];
  for (int i = 0; i < 8; ++i) in[i] = static_cast<std::byte>(i);
  EXPECT_EQ(siphash24(kRefKey, std::span<const std::byte>(in, 8)), 0x93f5f5799a932462ULL);
}

TEST(SipHash, Deterministic) {
  const auto data = bytes("append memory");
  EXPECT_EQ(siphash24(kRefKey, data), siphash24(kRefKey, data));
}

TEST(SipHash, KeySensitivity) {
  const auto data = bytes("same message");
  const SipKey other{kRefKey.k0 ^ 1, kRefKey.k1};
  EXPECT_NE(siphash24(kRefKey, data), siphash24(other, data));
}

TEST(SipHash, MessageSensitivity) {
  EXPECT_NE(siphash24(kRefKey, bytes("msg-a")), siphash24(kRefKey, bytes("msg-b")));
}

TEST(SipHash, LengthMattersEvenWithZeroPadding) {
  // "x" vs "x\0": trailing zero bytes must change the hash (length is mixed
  // into the final block).
  const auto a = bytes(std::string("x"));
  const auto b = bytes(std::string("x\0", 2));
  EXPECT_NE(siphash24(kRefKey, a), siphash24(kRefKey, b));
}

TEST(SipHash, WordOverloadMatchesByteEncoding) {
  const u64 words[] = {0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  std::byte raw[16];
  std::memcpy(raw, words, 16);
  EXPECT_EQ(siphash24(kRefKey, std::span<const u64>(words, 2)),
            siphash24(kRefKey, std::span<const std::byte>(raw, 16)));
}

TEST(SipHash, AllInputLengthsUpTo32AreDistinct) {
  // Smoke avalanche check: prefixes of a fixed buffer hash to 33 distinct
  // values.
  std::vector<std::byte> buf(32);
  for (usize i = 0; i < buf.size(); ++i) buf[i] = static_cast<std::byte>(i * 7 + 1);
  std::vector<u64> hashes;
  for (usize len = 0; len <= 32; ++len) {
    hashes.push_back(siphash24(kRefKey, std::span(buf.data(), len)));
  }
  for (usize i = 0; i < hashes.size(); ++i) {
    for (usize j = i + 1; j < hashes.size(); ++j) EXPECT_NE(hashes[i], hashes[j]);
  }
}

}  // namespace
}  // namespace amm::crypto
