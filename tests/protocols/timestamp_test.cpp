#include "protocols/timestamp_ba.hpp"

#include <gtest/gtest.h>

namespace amm::proto {
namespace {

TimestampParams make(u32 n, u32 t, u32 k, double lambda = 1.0) {
  TimestampParams p;
  p.scenario.n = n;
  p.scenario.t = t;
  p.scenario.correct_input = Vote::kPlus;
  p.k = k;
  p.lambda = lambda;
  return p;
}

TEST(TimestampBa, NoByzantineAlwaysValid) {
  for (u64 seed = 0; seed < 20; ++seed) {
    const Outcome out = run_timestamp_ba(make(8, 0, 11), Rng(seed));
    EXPECT_TRUE(out.terminated);
    EXPECT_TRUE(out.agreement());
    EXPECT_TRUE(out.validity(make(8, 0, 11).scenario));
    EXPECT_EQ(out.byz_in_decision_set, 0u);
  }
}

TEST(TimestampBa, TerminatesWithExactlyKAppends) {
  const Outcome out = run_timestamp_ba(make(4, 1, 15), Rng(3));
  EXPECT_EQ(out.total_appends, 15u);
  EXPECT_EQ(out.decision_set_size, 15u);
}

TEST(TimestampBa, AllCorrectNodesShareDecision) {
  const auto params = make(6, 2, 9);
  const Outcome out = run_timestamp_ba(params, Rng(4));
  ASSERT_EQ(out.decisions.size(), 4u);
  EXPECT_TRUE(out.agreement());
}

TEST(TimestampBa, MinorityByzantineUsuallyValid) {
  // n=20, t=4 (gap 12/20), k=41: failure probability is tiny.
  const auto params = make(20, 4, 41);
  int valid = 0;
  for (u64 seed = 0; seed < 50; ++seed) {
    const Outcome out = run_timestamp_ba(params, Rng(seed));
    if (out.validity(params.scenario)) ++valid;
  }
  EXPECT_GE(valid, 48);
}

TEST(TimestampBa, ByzantineMajorityFlipsDecision) {
  // t > n/2: Byzantine values dominate the first k w.h.p.
  const auto params = make(10, 8, 41);
  int flipped = 0;
  for (u64 seed = 0; seed < 50; ++seed) {
    const Outcome out = run_timestamp_ba(params, Rng(seed));
    if (!out.validity(params.scenario)) ++flipped;
  }
  EXPECT_GE(flipped, 48);
}

TEST(TimestampBa, ByzantineShareOfCutMatchesRate) {
  // E[byz in cut] = k * t/n.
  const auto params = make(10, 3, 101);
  double total = 0.0;
  const int reps = 200;
  for (u64 seed = 0; seed < reps; ++seed) {
    total += static_cast<double>(run_timestamp_ba(params, Rng(seed)).byz_in_decision_set);
  }
  EXPECT_NEAR(total / reps, 101.0 * 0.3, 2.0);
}

TEST(TimestampBa, MinusInputIsSymmetric) {
  auto params = make(8, 2, 21);
  params.scenario.correct_input = Vote::kMinus;
  const Outcome out = run_timestamp_ba(params, Rng(5));
  EXPECT_TRUE(out.terminated);
  // With a large correct majority the decision follows the correct input.
  EXPECT_TRUE(out.validity(params.scenario));
}

TEST(TimestampBa, HeterogeneousInputsFollowTheMajority) {
  // Knife-edge inputs with no Byzantine nodes: the decision follows the
  // input majority of the sampled first-k tokens — and all nodes agree.
  TimestampParams params;
  params.scenario.n = 9;
  params.scenario.t = 0;
  params.scenario.inputs.assign(9, Vote::kPlus);
  for (u32 v = 0; v < 3; ++v) params.scenario.inputs[v] = Vote::kMinus;  // 6:3 majority plus
  params.k = 41;
  int plus = 0;
  for (u64 seed = 0; seed < 30; ++seed) {
    const Outcome out = run_timestamp_ba(params, Rng(seed));
    EXPECT_TRUE(out.agreement());
    plus += (*out.decisions[0] == Vote::kPlus);
  }
  EXPECT_GE(plus, 28);  // 2:1 majority over 41 draws flips almost never
}

TEST(TimestampBaDeathTest, EvenKRejected) {
  EXPECT_DEATH((void)run_timestamp_ba(make(4, 1, 10), Rng(1)), "precondition");
}

TEST(ValidityFailureBound, DecreasesInK) {
  const double p1 = timestamp_validity_failure_bound(10, 4, 11);
  const double p2 = timestamp_validity_failure_bound(10, 4, 101);
  EXPECT_GT(p1, p2);
}

TEST(ValidityFailureBound, IncreasesInT) {
  EXPECT_LT(timestamp_validity_failure_bound(10, 1, 21),
            timestamp_validity_failure_bound(10, 4, 21));
}

TEST(ValidityFailureBound, HalfIsCoinflip) {
  EXPECT_NEAR(timestamp_validity_failure_bound(10, 5, 21), 0.5, 1e-9);
}

TEST(ValidityFailureBound, MatchesMonteCarloRoughly) {
  // n=10, t=3, k=21: compare the analytic tail with simulation.
  const auto params = make(10, 3, 21);
  int failures = 0;
  const int reps = 2000;
  for (u64 seed = 0; seed < reps; ++seed) {
    if (!run_timestamp_ba(params, Rng(seed)).validity(params.scenario)) ++failures;
  }
  const double measured = static_cast<double>(failures) / reps;
  const double predicted = timestamp_validity_failure_bound(10, 3, 21);
  EXPECT_NEAR(measured, predicted, 0.05);
}

}  // namespace
}  // namespace amm::proto
