#include "protocols/nakamoto.hpp"

#include <gtest/gtest.h>

namespace amm::proto {
namespace {

NakamotoParams make(u32 n, u32 t, u32 depth) {
  NakamotoParams p;
  p.scenario.n = n;
  p.scenario.t = t;
  p.confirmation_depth = depth;
  return p;
}

TEST(Nakamoto, TerminatesAndConfirms) {
  const NakamotoResult res = run_double_spend_race(make(10, 2, 4), Rng(1));
  EXPECT_TRUE(res.terminated);
  EXPECT_GE(res.blocks_to_confirm, 4u);
  EXPECT_GT(res.time_to_confirm, 0.0);
}

TEST(Nakamoto, WeakAttackerRarelyReverses) {
  const auto params = make(20, 2, 6);  // q = 0.1, depth 6: bound ~ 1.9e-6
  int reversed = 0;
  for (u64 seed = 0; seed < 200; ++seed) {
    reversed += run_double_spend_race(params, Rng(seed)).reversed;
  }
  EXPECT_EQ(reversed, 0);
}

TEST(Nakamoto, MajorityAttackerAlwaysReverses) {
  const auto params = make(10, 6, 4);  // q = 0.6 > 1/2
  int reversed = 0;
  for (u64 seed = 0; seed < 50; ++seed) {
    reversed += run_double_spend_race(params, Rng(seed)).reversed;
  }
  EXPECT_EQ(reversed, 50);
}

TEST(Nakamoto, ReversalDecaysWithDepth) {
  const u32 n = 10, t = 3;  // q = 0.3
  auto rate = [&](u32 depth) {
    int reversed = 0;
    for (u64 seed = 0; seed < 400; ++seed) {
      reversed += run_double_spend_race(make(n, t, depth), Rng(seed)).reversed;
    }
    return static_cast<double>(reversed) / 400.0;
  };
  const double d1 = rate(1);
  const double d4 = rate(4);
  EXPECT_GT(d1, d4);
  EXPECT_GT(d1, 0.2);   // bound (3/7)^1 ~ 0.43
  EXPECT_LT(d4, 0.25);  // bound (3/7)^4 ~ 0.034 (+ race slack)
}

TEST(Nakamoto, MatchesExactClosedForm) {
  // The race must land on the negative-binomial closed form within
  // Monte-Carlo noise (the give-up deficit biases deep depths slightly
  // low).
  for (const auto& [t, depth] : std::vector<std::pair<u32, u32>>{{5, 2}, {5, 4}, {8, 2}}) {
    const auto params = make(20, t, depth);
    int reversed = 0;
    const int reps = 2000;
    for (u64 seed = 0; seed < reps; ++seed) {
      reversed += run_double_spend_race(params, Rng(seed)).reversed;
    }
    const double measured = static_cast<double>(reversed) / reps;
    const double predicted = nakamoto_reversal_probability(t / 20.0, depth);
    EXPECT_NEAR(measured, predicted, 0.25 * predicted + 0.01)
        << "t=" << t << " depth=" << depth;
  }
}

TEST(Nakamoto, OvertakeBound) {
  EXPECT_DOUBLE_EQ(nakamoto_overtake_bound(0.5, 3), 1.0);
  EXPECT_DOUBLE_EQ(nakamoto_overtake_bound(0.6, 1), 1.0);
  EXPECT_NEAR(nakamoto_overtake_bound(0.25, 2), (0.25 / 0.75) * (0.25 / 0.75), 1e-12);
  EXPECT_DOUBLE_EQ(nakamoto_overtake_bound(0.0, 5), 0.0);
}

TEST(Nakamoto, ClosedFormProperties) {
  // Depth 1 has no head start: exactly (q/p)^2.
  EXPECT_NEAR(nakamoto_reversal_probability(0.25, 1), (1.0 / 3.0) * (1.0 / 3.0), 1e-12);
  // Monotone decreasing in depth; 1.0 at the majority boundary.
  EXPECT_GT(nakamoto_reversal_probability(0.3, 2), nakamoto_reversal_probability(0.3, 6));
  EXPECT_DOUBLE_EQ(nakamoto_reversal_probability(0.5, 4), 1.0);
  EXPECT_DOUBLE_EQ(nakamoto_reversal_probability(0.0, 4), 0.0);
}

TEST(NakamotoDeathTest, NeedsAnAttacker) {
  EXPECT_DEATH((void)run_double_spend_race(make(5, 0, 3), Rng(1)), "precondition");
}

}  // namespace
}  // namespace amm::proto
