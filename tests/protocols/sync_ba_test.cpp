#include "protocols/sync_ba.hpp"

#include <gtest/gtest.h>

#include "adversary/sync_strategies.hpp"

namespace amm::proto {
namespace {

SyncParams make(u32 n, u32 t, Vote input = Vote::kPlus, u32 rounds_override = 0) {
  SyncParams p;
  p.scenario.n = n;
  p.scenario.t = t;
  p.scenario.correct_input = input;
  p.rounds_override = rounds_override;
  return p;
}

TEST(SyncBa, SilentAdversaryDecidesCorrectInput) {
  adv::SilentSync silent;
  for (const Vote input : {Vote::kPlus, Vote::kMinus}) {
    const auto params = make(5, 2, input);
    const Outcome out = run_sync_ba(params, silent);
    EXPECT_TRUE(out.terminated);
    EXPECT_TRUE(out.agreement());
    EXPECT_TRUE(out.validity(params.scenario));
    EXPECT_EQ(out.rounds, 3u);  // t+1
  }
}

TEST(SyncBa, RunsExactlyTPlusOneRoundsByDefault) {
  adv::SilentSync silent;
  for (u32 t = 0; t <= 3; ++t) {
    const Outcome out = run_sync_ba(make(8, t), silent);
    EXPECT_EQ(out.rounds, t + 1);
  }
}

TEST(SyncBa, OppositeVoterMinorityCannotFlip) {
  // t < n/2: Byzantine opposite votes are accepted but outnumbered
  // (Theorem 3.2 validity).
  adv::OppositeVoterSync opp(Vote::kMinus);
  const auto params = make(7, 3);
  const Outcome out = run_sync_ba(params, opp);
  EXPECT_TRUE(out.agreement());
  EXPECT_TRUE(out.validity(params.scenario));
}

TEST(SyncBa, OppositeVoterMajorityFlips) {
  // t > n/2: the protocol's guarantee is gone; Byzantine values dominate
  // the accepted set and validity breaks.
  adv::OppositeVoterSync opp(Vote::kMinus);
  const auto params = make(7, 4);
  const Outcome out = run_sync_ba(params, opp);
  EXPECT_TRUE(out.agreement());  // views still shared
  EXPECT_FALSE(out.validity(params.scenario));
}

TEST(SyncBa, ResilienceBoundaryAcrossN) {
  // Correct input −1, Byzantine votes +1: the tie at 2t = n resolves to +1
  // (the library's sign convention), so validity holds exactly iff 2t < n —
  // the paper's t < n/2 bound, with no tie artifact.
  adv::OppositeVoterSync opp(Vote::kPlus);
  for (u32 n = 4; n <= 9; ++n) {
    for (u32 t = 0; t < n; ++t) {
      const auto params = make(n, t, Vote::kMinus);
      const Outcome out = run_sync_ba(params, opp);
      if (2 * t < n) {
        EXPECT_TRUE(out.validity(params.scenario)) << "n=" << n << " t=" << t;
      } else {
        EXPECT_FALSE(out.validity(params.scenario)) << "n=" << n << " t=" << t;
      }
    }
  }
}

TEST(SyncBa, CrashFailuresOneRoundSuffices) {
  // §3: with crash failures (no Byzantine behaviour) a single round
  // decides — crashed nodes simply contribute nothing after crashing.
  adv::CrashSync crash(Vote::kPlus, /*crash_round=*/1);
  const auto params = make(6, 2, Vote::kPlus, /*rounds_override=*/1);
  const Outcome out = run_sync_ba(params, crash);
  EXPECT_TRUE(out.terminated);
  EXPECT_TRUE(out.agreement());
  EXPECT_TRUE(out.validity(params.scenario));
  EXPECT_EQ(out.rounds, 1u);
}

TEST(SyncBa, LateCrashStillValid) {
  adv::CrashSync crash(Vote::kPlus, /*crash_round=*/2);
  const auto params = make(6, 2);
  const Outcome out = run_sync_ba(params, crash);
  EXPECT_TRUE(out.agreement());
  EXPECT_TRUE(out.validity(params.scenario));
}

TEST(SyncBa, SplitVisionCannotBreakAgreementAtTPlusOne) {
  for (u64 seed = 0; seed < 20; ++seed) {
    adv::SplitVisionSync split(Vote::kMinus, Rng(seed));
    const auto params = make(7, 3);
    const Outcome out = run_sync_ba(params, split);
    EXPECT_TRUE(out.agreement()) << "seed=" << seed;
    EXPECT_TRUE(out.validity(params.scenario)) << "seed=" << seed;
  }
}

TEST(SyncBa, LastRoundSplitBreaksAgreementWithTooFewRounds) {
  // n=5, t=3, mixed inputs summing to 0 among correct nodes: running only
  // r ≤ t rounds lets the Byzantine chain reach half the correct nodes.
  for (u32 rounds = 1; rounds <= 3; ++rounds) {
    SyncParams params = make(5, 3, Vote::kPlus, rounds);
    params.scenario.inputs = {Vote::kPlus, Vote::kMinus};
    adv::LastRoundSplitSync attack(Vote::kMinus, /*split=*/1);
    const Outcome out = run_sync_ba(params, attack);
    EXPECT_FALSE(out.agreement()) << "rounds=" << rounds;
  }
}

TEST(SyncBa, LastRoundSplitFailsAtTPlusOneRounds) {
  // Same attack at the full t+1 rounds: the all-Byzantine chain is one
  // author short, so nobody accepts it and agreement holds (Theorem 3.2 /
  // Lemma 3.1 tightness).
  SyncParams params = make(5, 3, Vote::kPlus, 0);  // 4 rounds
  params.scenario.inputs = {Vote::kPlus, Vote::kMinus};
  adv::LastRoundSplitSync attack(Vote::kMinus, /*split=*/1);
  const Outcome out = run_sync_ba(params, attack);
  EXPECT_TRUE(out.agreement());
}

TEST(SyncAccepts, CorrectOriginAcceptedByEveryone) {
  adv::SilentSync silent;
  const auto params = make(4, 1);
  // Reconstruct messages by re-running and then probing the helper: with a
  // silent adversary, every round-1 correct append is an origin.
  const Outcome out = run_sync_ba(params, silent);
  EXPECT_TRUE(out.terminated);
  // 3 correct nodes × 2 rounds of appends.
  EXPECT_EQ(out.total_appends, 6u);
}

TEST(SyncAccepts, DirectChainCheck) {
  // Hand-built transcript: n=3, t=1, rounds=2. Origin by node 0, relayed by
  // node 1 → accepted; origin with no relay → rejected.
  Scenario s;
  s.n = 3;
  s.t = 1;
  std::vector<SyncMsg> msgs;
  SyncMsg origin;
  origin.author = NodeId{0};
  origin.round = 1;
  origin.value = Vote::kPlus;
  origin.sees_now.assign(3, true);
  msgs.push_back(origin);

  SyncMsg relay;
  relay.author = NodeId{1};
  relay.round = 2;
  relay.value = Vote::kPlus;
  relay.refs = {0};
  relay.sees_now.assign(3, true);
  msgs.push_back(relay);

  SyncMsg lone;
  lone.author = NodeId{2};
  lone.round = 1;
  lone.value = Vote::kMinus;
  lone.sees_now.assign(3, true);
  msgs.push_back(lone);

  EXPECT_TRUE(sync_accepts(msgs, s, 2, NodeId{0}, 0));
  EXPECT_TRUE(sync_accepts(msgs, s, 2, NodeId{1}, 0));
  EXPECT_FALSE(sync_accepts(msgs, s, 2, NodeId{0}, 2));  // no relay references it
}

TEST(SyncAccepts, FinalRoundDelayedInvisible) {
  Scenario s;
  s.n = 3;
  s.t = 1;
  std::vector<SyncMsg> msgs;
  SyncMsg origin;
  origin.author = NodeId{2};  // Byzantine
  origin.round = 1;           // rounds=1 protocol: the origin IS the chain
  origin.value = Vote::kMinus;
  origin.sees_now = {true, false, true};  // node 1 misses it
  msgs.push_back(origin);

  EXPECT_TRUE(sync_accepts(msgs, s, 1, NodeId{0}, 0));
  EXPECT_FALSE(sync_accepts(msgs, s, 1, NodeId{1}, 0));
}

TEST(SyncAccepts, RepeatedAuthorRejected) {
  // Chain of 3 where the same author appears twice must not be accepted.
  Scenario s;
  s.n = 4;
  s.t = 2;
  std::vector<SyncMsg> msgs;
  auto push = [&](u32 author, u32 round, std::vector<u32> refs) {
    SyncMsg m;
    m.author = NodeId{author};
    m.round = round;
    m.value = Vote::kMinus;
    m.refs = std::move(refs);
    m.sees_now.assign(4, true);
    msgs.push_back(m);
  };
  push(2, 1, {});       // origin by byz node 2
  push(3, 2, {0});      // relay by byz node 3
  push(2, 3, {1});      // node 2 again — repeated author
  EXPECT_FALSE(sync_accepts(msgs, s, 3, NodeId{0}, 0));
  // Adding a fresh correct relay at the end makes it acceptable.
  push(0, 3, {1});
  EXPECT_TRUE(sync_accepts(msgs, s, 3, NodeId{0}, 0));
}

}  // namespace
}  // namespace amm::proto
