// Randomized-adversary fuzzing of Algorithm 1 (Theorem 3.2): a Byzantine
// strategy drawing arbitrary legal behaviour — random values, random
// reference sets (honest view / private chains / arbitrary existing
// messages), random visibility subsets, random silence — must NEVER break
// agreement at t < n/2 with t+1 rounds, and never validity either.
// Hand-crafted strategies test the attacks the proofs name; this tests
// everything else.
#include <gtest/gtest.h>

#include "protocols/sync_ba.hpp"
#include "support/rng.hpp"

namespace amm::proto {
namespace {

/// Draws every choice uniformly from the legal space each round.
class ChaosAdversary final : public SyncAdversary {
 public:
  explicit ChaosAdversary(Rng rng) : rng_(rng) {}

  std::optional<SyncAppend> on_round(u32, NodeId byz, const SyncContext& ctx) override {
    const Scenario& s = *ctx.scenario;
    if (rng_.bernoulli(0.15)) return std::nullopt;  // silence

    SyncAppend app;
    app.value = rng_.bernoulli(0.5) ? Vote::kPlus : Vote::kMinus;

    // References: any subset of existing messages (possibly empty — a fake
    // "origin" — possibly the honest view, possibly garbage).
    const auto& msgs = *ctx.msgs;
    switch (rng_.uniform_below(4)) {
      case 0:
        break;  // empty refs: equivocating origin
      case 1:
        app.refs = ctx.prev_round_views->at(byz.index);  // honest
        break;
      case 2: {  // private chain: last Byzantine message
        for (u32 i = static_cast<u32>(msgs.size()); i-- > 0;) {
          if (s.is_byzantine(msgs[i].author)) {
            app.refs.push_back(i);
            break;
          }
        }
        break;
      }
      default: {  // arbitrary random subset
        for (u32 i = 0; i < msgs.size(); ++i) {
          if (rng_.bernoulli(0.3)) app.refs.push_back(i);
        }
        break;
      }
    }

    // Visibility: every correct node independently coin-flipped.
    app.visible_to.assign(s.n, false);
    for (u32 v = s.correct_count(); v < s.n; ++v) app.visible_to[v] = true;
    for (u32 v = 0; v < s.correct_count(); ++v) app.visible_to[v] = rng_.bernoulli(0.5);
    return app;
  }

 private:
  Rng rng_;
};

struct FuzzCase {
  u32 n;
  u32 t;
  u64 seeds;
};

class SyncChaos : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(SyncChaos, AgreementAndValidityHoldBelowHalf) {
  const auto [n, t, seeds] = GetParam();
  ASSERT_LT(2 * t, n) << "fuzz cases must sit inside the theorem's bound";
  for (u64 seed = 0; seed < seeds; ++seed) {
    ChaosAdversary chaos{Rng(seed)};
    SyncParams params;
    params.scenario.n = n;
    params.scenario.t = t;
    params.scenario.correct_input = seed % 2 == 0 ? Vote::kPlus : Vote::kMinus;
    const Outcome out = run_sync_ba(params, chaos);
    ASSERT_TRUE(out.terminated);
    EXPECT_TRUE(out.agreement()) << "n=" << n << " t=" << t << " seed=" << seed;
    EXPECT_TRUE(out.validity(params.scenario)) << "n=" << n << " t=" << t << " seed=" << seed;
  }
}

TEST_P(SyncChaos, AgreementHoldsEvenWithMixedInputs) {
  // Validity is undefined for heterogeneous inputs, but agreement must
  // still hold for every chaos strategy at t < n/2.
  const auto [n, t, seeds] = GetParam();
  for (u64 seed = 0; seed < seeds; ++seed) {
    ChaosAdversary chaos{Rng(seed + 77777)};
    SyncParams params;
    params.scenario.n = n;
    params.scenario.t = t;
    params.scenario.inputs.resize(n - t);
    Rng input_rng(seed);
    for (auto& in : params.scenario.inputs) {
      in = input_rng.bernoulli(0.5) ? Vote::kPlus : Vote::kMinus;
    }
    const Outcome out = run_sync_ba(params, chaos);
    EXPECT_TRUE(out.agreement()) << "n=" << n << " t=" << t << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, SyncChaos,
                         ::testing::Values(FuzzCase{4, 1, 120}, FuzzCase{5, 2, 120},
                                           FuzzCase{7, 3, 80}, FuzzCase{9, 4, 50},
                                           FuzzCase{11, 5, 30}));

}  // namespace
}  // namespace amm::proto
