#include "protocols/dag_ba.hpp"

#include <gtest/gtest.h>

namespace amm::proto {
namespace {

DagParams make(u32 n, u32 t, u32 k, double lambda,
               DagAdversary adv = DagAdversary::kHonestOpposite) {
  DagParams p;
  p.scenario.n = n;
  p.scenario.t = t;
  p.scenario.correct_input = Vote::kPlus;
  p.k = k;
  p.lambda = lambda;
  p.adversary = adv;
  return p;
}

TEST(DagBa, NoByzantineValid) {
  const auto params = make(8, 0, 21, 0.5);
  for (u64 seed = 0; seed < 10; ++seed) {
    const DagResult res = run_dag_continuous(params, Rng(seed));
    EXPECT_TRUE(res.outcome.terminated);
    EXPECT_TRUE(res.outcome.agreement());
    EXPECT_TRUE(res.outcome.validity(params.scenario));
    EXPECT_EQ(res.outcome.byz_in_decision_set, 0u);
    EXPECT_EQ(res.dumped, 0u);
  }
}

TEST(DagBa, CutAlwaysHasKValues) {
  const DagResult res = run_dag_continuous(make(6, 1, 31, 1.0), Rng(1));
  EXPECT_TRUE(res.outcome.terminated);
  EXPECT_EQ(res.outcome.decision_set_size, 31u);
}

TEST(DagBa, RateAttackerShareMatchesTokenShare) {
  // The DAG is inclusive: a protocol-following Byzantine minority holds a
  // cut share ≈ t/n regardless of λ (the heart of Theorem 5.6).
  for (const double lambda : {0.2, 1.0, 4.0}) {
    const auto params = make(10, 3, 101, lambda);
    double frac = 0.0;
    const int reps = 30;
    for (u64 seed = 0; seed < reps; ++seed) {
      const DagResult res = run_dag_continuous(params, Rng(seed));
      frac += static_cast<double>(res.outcome.byz_in_decision_set) /
              static_cast<double>(res.outcome.decision_set_size);
    }
    frac /= reps;
    EXPECT_NEAR(frac, 0.3, 0.06) << "lambda=" << lambda;
  }
}

TEST(DagBa, MinorityRateAttackKeepsValidity) {
  const auto params = make(10, 4, 101, 1.0);
  int valid = 0;
  for (u64 seed = 0; seed < 30; ++seed) {
    if (run_dag_continuous(params, Rng(seed)).outcome.validity(params.scenario)) ++valid;
  }
  EXPECT_GE(valid, 28);
}

TEST(DagBa, MajorityRateAttackKillsValidity) {
  const auto params = make(10, 7, 101, 1.0);
  int valid = 0;
  for (u64 seed = 0; seed < 30; ++seed) {
    if (run_dag_continuous(params, Rng(seed)).outcome.validity(params.scenario)) ++valid;
  }
  EXPECT_LE(valid, 2);
}

TEST(DagBa, WithholdOnlyDumpsABoundedChain) {
  // Lemma 5.5: the dump fits inside one quiet interval — small relative to k.
  const auto params = make(10, 3, 101, 1.0, DagAdversary::kWithholdOnly);
  for (u64 seed = 0; seed < 20; ++seed) {
    const DagResult res = run_dag_continuous(params, Rng(seed));
    EXPECT_TRUE(res.outcome.terminated);
    if (res.dumped > 0) {
      EXPECT_EQ(res.outcome.byz_in_decision_set, res.dumped);
      EXPECT_GT(res.final_gap, 0.0);
    }
    EXPECT_LT(res.outcome.byz_in_decision_set, 101u / 3);
  }
}

TEST(DagBa, WithholdingBeatsPureRateSlightly) {
  // Rate-and-withhold must put at least as many Byzantine values in the
  // cut (on average) as the pure rate attack.
  const int reps = 40;
  double rate_only = 0.0, with_dump = 0.0;
  for (u64 seed = 0; seed < reps; ++seed) {
    rate_only += static_cast<double>(
        run_dag_continuous(make(10, 3, 101, 1.0), Rng(seed)).outcome.byz_in_decision_set);
    with_dump += static_cast<double>(
        run_dag_continuous(make(10, 3, 101, 1.0, DagAdversary::kRateAndWithhold), Rng(seed))
            .outcome.byz_in_decision_set);
  }
  EXPECT_GE(with_dump / reps, rate_only / reps - 1.0);
}

TEST(DagBa, FullOrderingMatchesFastPathOnHonestRuns) {
  // With no Byzantine nodes the exact Algorithm-6 linearization decision
  // must agree with the bookkeeping fast path.
  for (u64 seed = 0; seed < 10; ++seed) {
    auto fast = make(6, 0, 21, 1.0);
    auto full = fast;
    full.full_ordering = true;
    const DagResult a = run_dag_continuous(fast, Rng(seed));
    const DagResult b = run_dag_continuous(full, Rng(seed));
    EXPECT_EQ(a.outcome.decisions, b.outcome.decisions);
    EXPECT_EQ(a.outcome.byz_in_decision_set, b.outcome.byz_in_decision_set);
  }
}

TEST(DagBa, FullOrderingCloseToFastPathUnderRateAttack) {
  // Under the rate attack the exact cut can differ from the fast path only
  // through final-Δ stragglers; the Byzantine count must stay close.
  for (u64 seed = 0; seed < 10; ++seed) {
    auto fast = make(8, 2, 51, 1.0);
    auto full = fast;
    full.full_ordering = true;
    const DagResult a = run_dag_continuous(fast, Rng(seed));
    const DagResult b = run_dag_continuous(full, Rng(seed));
    const auto diff =
        static_cast<i64>(a.outcome.byz_in_decision_set) - static_cast<i64>(b.outcome.byz_in_decision_set);
    EXPECT_LE(std::abs(diff), 6);
  }
}

TEST(DagBa, GhostAndLongestChainAgreeOnValidityDirection) {
  for (const chain::PivotRule rule : {chain::PivotRule::kGhost, chain::PivotRule::kLongestChain}) {
    auto params = make(10, 3, 51, 1.0);
    params.pivot_rule = rule;
    params.full_ordering = true;
    int valid = 0;
    for (u64 seed = 0; seed < 15; ++seed) {
      if (run_dag_continuous(params, Rng(seed)).outcome.validity(params.scenario)) ++valid;
    }
    EXPECT_GE(valid, 13);
  }
}

TEST(DagBaDeathTest, EvenKRejected) {
  EXPECT_DEATH((void)run_dag_continuous(make(4, 1, 10, 0.5), Rng(1)), "precondition");
}

TEST(DagBa, TemporaryAsynchronyInflatesTheDump) {
  // §5.3 closing remark: stalling correct nodes near the cut stretches the
  // adversary's quiet interval and its private chain.
  auto sync_params = make(16, 6, 101, 1.0, DagAdversary::kRateAndWithhold);
  auto async_params = sync_params;
  async_params.async_delay = 10.0;
  async_params.async_window = 51;

  double sync_dump = 0.0, async_dump = 0.0;
  const int reps = 30;
  for (u64 seed = 0; seed < reps; ++seed) {
    sync_dump += static_cast<double>(run_dag_continuous(sync_params, Rng(seed)).dumped);
    async_dump += static_cast<double>(run_dag_continuous(async_params, Rng(seed)).dumped);
  }
  EXPECT_GT(async_dump / reps, sync_dump / reps + 3.0);
}

TEST(DagBa, TemporaryAsynchronyBreaksAToleratedShare) {
  // t/n = 0.4 is fine synchronously (see MinorityRateAttackKeepsValidity);
  // under a long enough stall it is not.
  auto params = make(20, 8, 101, 1.0, DagAdversary::kRateAndWithhold);
  params.async_delay = 12.0;
  params.async_window = 51;
  int valid = 0;
  for (u64 seed = 0; seed < 25; ++seed) {
    valid += run_dag_continuous(params, Rng(seed)).outcome.validity(params.scenario);
  }
  EXPECT_LE(valid, 3);
}

TEST(DagBa, ZeroAsyncDelayIsIdentityTransform) {
  // delay = 0 must take the synchronous code path bit-for-bit.
  auto a = make(10, 3, 51, 1.0, DagAdversary::kRateAndWithhold);
  auto b = a;
  b.async_delay = 0.0;
  b.async_window = 25;
  for (u64 seed = 0; seed < 10; ++seed) {
    const DagResult ra = run_dag_continuous(a, Rng(seed));
    const DagResult rb = run_dag_continuous(b, Rng(seed));
    EXPECT_EQ(ra.outcome.decisions, rb.outcome.decisions);
    EXPECT_EQ(ra.outcome.byz_in_decision_set, rb.outcome.byz_in_decision_set);
    EXPECT_EQ(ra.dumped, rb.dumped);
  }
}

}  // namespace
}  // namespace amm::proto
