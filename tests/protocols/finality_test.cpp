#include <gtest/gtest.h>

#include "protocols/chain_ba.hpp"
#include "protocols/dag_ba.hpp"

namespace amm::proto {
namespace {

ChainParams knife_edge(u32 n, u32 k) {
  ChainParams p;
  p.scenario.n = n;
  p.scenario.t = 0;
  p.k = k;
  p.lambda = 0.5;
  p.scenario.inputs.resize(n);
  for (u32 v = 0; v < n; ++v) p.scenario.inputs[v] = v % 2 ? Vote::kMinus : Vote::kPlus;
  return p;
}

TEST(ChainFinality, SynchronousRunsAreFinalAndAgree) {
  const auto params = knife_edge(12, 21);
  int splits = 0, flips = 0;
  for (u64 seed = 0; seed < 40; ++seed) {
    const FinalityResult res = run_chain_finality(params, /*staleness=*/0.0, Rng(seed));
    ASSERT_TRUE(res.terminated);
    splits += res.split;
    flips += res.flipped;
  }
  EXPECT_EQ(splits, 0);
  EXPECT_EQ(flips, 0);
}

TEST(ChainFinality, AsynchronySplitsDecisions) {
  const auto params = knife_edge(12, 21);
  int splits = 0;
  for (u64 seed = 0; seed < 40; ++seed) {
    const FinalityResult res = run_chain_finality(params, /*staleness=*/32.0, Rng(seed));
    ASSERT_TRUE(res.terminated);
    splits += res.split;
  }
  // Partitioned groups grow private branches: splits dominate.
  EXPECT_GE(splits, 30);
}

TEST(ChainFinality, AsynchronyReplacesDecidedPrefix) {
  const auto params = knife_edge(12, 21);
  double replaced = 0.0;
  for (u64 seed = 0; seed < 40; ++seed) {
    const FinalityResult res = run_chain_finality(params, 32.0, Rng(seed));
    replaced += static_cast<double>(res.prefix_divergence);
  }
  EXPECT_GT(replaced / 40.0, 5.0);
}

TEST(ChainFinality, MonotoneInStaleness) {
  const auto params = knife_edge(10, 21);
  auto split_rate = [&](double staleness) {
    int splits = 0;
    for (u64 seed = 0; seed < 60; ++seed) {
      splits += run_chain_finality(params, staleness, Rng(seed)).split;
    }
    return splits;
  };
  const int low = split_rate(0.5);
  const int high = split_rate(64.0);
  EXPECT_LT(low, high);
}

TEST(ChainFinalityDeathTest, RequiresNoByzantine) {
  ChainParams p = knife_edge(10, 21);
  p.scenario.t = 1;
  p.scenario.inputs.resize(p.scenario.correct_count());
  EXPECT_DEATH((void)run_chain_finality(p, 1.0, Rng(1)), "precondition");
}

TEST(ChainWeights, HeavyByzantineNodeDominates) {
  // Permissionless mode: a single Byzantine node with 60% of the power
  // kills chain validity even at tiny per-node λ.
  ChainParams p;
  p.scenario.n = 10;
  p.scenario.t = 1;
  p.k = 41;
  p.lambda = 0.5;
  p.adversary = ChainAdversary::kRushExtend;
  p.weights.assign(10, 0.4 / 9.0);
  p.weights[9] = 0.6;
  int valid = 0;
  for (u64 seed = 0; seed < 20; ++seed) {
    const Outcome out = run_chain_continuous(p, Rng(seed));
    valid += out.terminated && out.validity(p.scenario);
  }
  EXPECT_LE(valid, 2);
}

TEST(DagWeights, PowerShareGovernsCut) {
  // DAG: one Byzantine node with 30% power should hold ~30% of the cut
  // (far above its 10% node share).
  proto::DagParams p;
  p.scenario.n = 10;
  p.scenario.t = 1;
  p.k = 101;
  p.lambda = 0.5;
  p.weights.assign(10, 0.7 / 9.0);
  p.weights[9] = 0.3;
  double frac = 0.0;
  const int reps = 30;
  for (u64 seed = 0; seed < reps; ++seed) {
    const DagResult res = run_dag_continuous(p, Rng(seed));
    frac += static_cast<double>(res.outcome.byz_in_decision_set) /
            static_cast<double>(res.outcome.decision_set_size);
  }
  EXPECT_NEAR(frac / reps, 0.3, 0.06);
}

}  // namespace
}  // namespace amm::proto
