#include "protocols/chain_ba.hpp"

#include <gtest/gtest.h>

namespace amm::proto {
namespace {

ChainParams make(u32 n, u32 t, u32 k, double lambda,
                 ChainAdversary adv = ChainAdversary::kHonestOpposite,
                 chain::TieBreak tie = chain::TieBreak::kRandomized) {
  ChainParams p;
  p.scenario.n = n;
  p.scenario.t = t;
  p.scenario.correct_input = Vote::kPlus;
  p.k = k;
  p.lambda = lambda;
  p.tie_break = tie;
  p.adversary = adv;
  return p;
}

double validity_rate(const ChainParams& params, int reps, bool slotted = true) {
  int valid = 0;
  for (u64 seed = 0; seed < static_cast<u64>(reps); ++seed) {
    const Outcome out =
        slotted ? run_chain_slotted(params, Rng(seed)) : run_chain_continuous(params, Rng(seed));
    if (out.terminated && out.validity(params.scenario)) ++valid;
  }
  return static_cast<double>(valid) / reps;
}

TEST(ChainSlotted, NoByzantineTerminatesValid) {
  const auto params = make(8, 0, 21, 0.2);
  for (u64 seed = 0; seed < 10; ++seed) {
    const Outcome out = run_chain_slotted(params, Rng(seed));
    EXPECT_TRUE(out.terminated);
    EXPECT_TRUE(out.agreement());
    EXPECT_TRUE(out.validity(params.scenario));
    EXPECT_EQ(out.byz_in_decision_set, 0u);
    EXPECT_EQ(out.decision_set_size, params.k);
  }
}

TEST(ChainSlotted, DecisionChainHasKBlocks) {
  const Outcome out = run_chain_slotted(make(6, 1, 11, 0.5), Rng(1));
  EXPECT_TRUE(out.terminated);
  EXPECT_EQ(out.decision_set_size, 11u);
  EXPECT_GE(out.total_appends, 11u);
}

TEST(ChainSlotted, HighRateWastesAppends) {
  // With λ(n−t) >> 1 many correct appends fork and are wasted: total
  // appends far exceed chain length k.
  const Outcome out = run_chain_slotted(make(16, 0, 21, 2.0), Rng(2));
  EXPECT_TRUE(out.terminated);
  EXPECT_GT(out.total_appends, 2 * 21u);
}

TEST(ChainSlotted, RushAdversaryBelowThresholdKeepsValidity) {
  // λ·t = 0.25 << 1: Byzantine tokens are too rare to poison the chain.
  const auto params = make(16, 2, 41, 0.125, ChainAdversary::kRushExtend);
  EXPECT_GT(validity_rate(params, 40), 0.9);
}

TEST(ChainSlotted, RushAdversaryAboveThresholdKillsValidity) {
  // λ·t = 4 >> 1: the adversary outruns the single useful correct append
  // per interval (Theorem 5.4).
  const auto params = make(16, 4, 41, 1.0, ChainAdversary::kRushExtend);
  EXPECT_LT(validity_rate(params, 40), 0.1);
}

TEST(ChainSlotted, RushPoisonsChainFraction) {
  // At λ·t ≈ 2 the Byzantine fraction of the decided chain must clearly
  // exceed the token share t/n.
  const auto params = make(16, 2, 41, 1.0, ChainAdversary::kRushExtend);
  double frac = 0.0;
  const int reps = 30;
  for (u64 seed = 0; seed < reps; ++seed) {
    const Outcome out = run_chain_slotted(params, Rng(seed));
    frac += static_cast<double>(out.byz_in_decision_set) / static_cast<double>(out.decision_set_size);
  }
  frac /= reps;
  EXPECT_GT(frac, 2.0 * 2.0 / 16.0);
}

TEST(ChainSlotted, ForkAdversaryWithAdversarialTiesAtThird) {
  // Theorem 5.3: deterministic tie-breaking in the adversary's favour at
  // t = n/3 puts ~half the chain in Byzantine hands.
  auto params = make(12, 4, 41, 0.1, ChainAdversary::kForkTieBreak,
                     chain::TieBreak::kDeterministicFirst);
  params.adversarial_ties = true;
  double frac = 0.0;
  const int reps = 30;
  for (u64 seed = 0; seed < reps; ++seed) {
    const Outcome out = run_chain_slotted(params, Rng(seed));
    frac += static_cast<double>(out.byz_in_decision_set) / static_cast<double>(out.decision_set_size);
  }
  frac /= reps;
  EXPECT_GT(frac, 0.40);
  EXPECT_LT(frac, 0.62);
}

TEST(ChainSlotted, ForkAdversaryWithRandomizedTiesOnlyThird) {
  // Same attack under randomized tie-breaking: every second Byzantine fork
  // loses the tie, leaving ~1/3 of the chain Byzantine (§5.2 discussion).
  const auto params =
      make(12, 4, 41, 0.1, ChainAdversary::kForkTieBreak, chain::TieBreak::kRandomized);
  double frac = 0.0;
  const int reps = 30;
  for (u64 seed = 0; seed < reps; ++seed) {
    const Outcome out = run_chain_slotted(params, Rng(seed));
    frac += static_cast<double>(out.byz_in_decision_set) / static_cast<double>(out.decision_set_size);
  }
  frac /= reps;
  EXPECT_LT(frac, 0.45);
}

TEST(ChainContinuous, NoByzantineTerminatesValid) {
  const auto params = make(8, 0, 21, 0.2);
  const Outcome out = run_chain_continuous(params, Rng(3));
  EXPECT_TRUE(out.terminated);
  EXPECT_TRUE(out.validity(params.scenario));
}

TEST(ChainContinuous, AgreesWithSlottedOnThresholdDirection) {
  const auto low = make(16, 2, 41, 0.125, ChainAdversary::kRushExtend);
  const auto high = make(16, 4, 41, 1.0, ChainAdversary::kRushExtend);
  EXPECT_GT(validity_rate(low, 25, /*slotted=*/false), 0.8);
  EXPECT_LT(validity_rate(high, 25, /*slotted=*/false), 0.2);
}

TEST(ChainResilienceBound, MatchesFormula) {
  EXPECT_DOUBLE_EQ(chain_resilience_bound(10, 5, 0.2), 1.0 / (1.0 + 0.2 * 5.0));
  // The paper's examples: λ(n−t)=1 → 1/2; λ(n−t)=2 → 1/3.
  EXPECT_DOUBLE_EQ(chain_resilience_bound(11, 1, 0.1), 0.5);
  EXPECT_DOUBLE_EQ(chain_resilience_bound(21, 1, 0.1), 1.0 / 3.0);
}

TEST(ChainSlottedDeathTest, EvenKRejected) {
  EXPECT_DEATH((void)run_chain_slotted(make(4, 1, 10, 0.5), Rng(1)), "precondition");
}

TEST(ChainSlottedDeathTest, WeightsRejected) {
  // Hash-power weights are a continuous-model feature; the slotted runner
  // refuses them rather than silently ignoring them.
  auto params = make(4, 1, 11, 0.5);
  params.weights.assign(4, 0.25);
  EXPECT_DEATH((void)run_chain_slotted(params, Rng(1)), "precondition");
}

TEST(ChainSlotted, NonTerminationReportedWhenBudgetTiny) {
  auto params = make(4, 0, 1001, 0.01);
  params.max_slots = 3;  // cannot possibly reach k
  const Outcome out = run_chain_slotted(params, Rng(1));
  EXPECT_FALSE(out.terminated);
  EXPECT_FALSE(out.agreement());
}

}  // namespace
}  // namespace amm::proto
