#include "chain/rules.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace amm::chain {
namespace {

using am::AppendMemory;

/// GHOST-vs-longest discriminating shape:
///
///   root -- a -- b1 -- {c1, c2, c3}   and   a -- b2 -- d -- e
///
/// The longest chain goes through b2 (depth 4 via e); GHOST prefers b1
/// (subtree weight 4 vs 3).
class GhostShapeFixture : public ::testing::Test {
 protected:
  GhostShapeFixture() : memory(6) {
    a = memory.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);
    b1 = memory.append(NodeId{1}, Vote::kPlus, 0, {a}, 2.0);
    b2 = memory.append(NodeId{2}, Vote::kMinus, 0, {a}, 3.0);
    c1 = memory.append(NodeId{3}, Vote::kPlus, 0, {b1}, 4.0);
    c2 = memory.append(NodeId{4}, Vote::kPlus, 0, {b1}, 5.0);
    c3 = memory.append(NodeId{5}, Vote::kPlus, 0, {b1}, 6.0);
    d = memory.append(NodeId{2}, Vote::kMinus, 0, {b2}, 7.0);
    e = memory.append(NodeId{2}, Vote::kMinus, 0, {d}, 8.0);
  }

  AppendMemory memory;
  MsgId a, b1, b2, c1, c2, c3, d, e;
};

TEST_F(GhostShapeFixture, LongestChainPivotFollowsDepth) {
  const BlockGraph g(memory.read());
  const auto pivot = select_pivot(g, PivotRule::kLongestChain);
  ASSERT_EQ(pivot.size(), 4u);
  EXPECT_EQ(pivot[0], a);
  EXPECT_EQ(pivot[1], b2);
  EXPECT_EQ(pivot[2], d);
  EXPECT_EQ(pivot[3], e);
}

TEST_F(GhostShapeFixture, GhostPivotFollowsWeight) {
  const BlockGraph g(memory.read());
  // weight(b1) = 4 (b1,c1,c2,c3) > weight(b2) = 3 (b2,d,e).
  const auto pivot = select_pivot(g, PivotRule::kGhost);
  ASSERT_EQ(pivot.size(), 3u);
  EXPECT_EQ(pivot[0], a);
  EXPECT_EQ(pivot[1], b1);
  EXPECT_EQ(pivot[2], c1);  // ties among c1..c3 -> earliest
}

TEST_F(GhostShapeFixture, LinearizationIsTotalAndTopological) {
  const BlockGraph g(memory.read());
  for (const PivotRule rule : {PivotRule::kLongestChain, PivotRule::kGhost}) {
    const auto order = linearize_dag(g, rule);
    EXPECT_EQ(order.size(), g.block_count());
    std::unordered_set<MsgId> seen;
    for (const MsgId id : order) {
      for (const MsgId ref : g.refs(id)) EXPECT_TRUE(seen.contains(ref));
      seen.insert(id);
    }
  }
}

TEST_F(GhostShapeFixture, FirstKOfChain) {
  const BlockGraph g(memory.read());
  const auto k2 = first_k_of_chain(g, e, 2);
  EXPECT_EQ(k2, (std::vector<MsgId>{a, b2}));
  const auto k10 = first_k_of_chain(g, e, 10);
  EXPECT_EQ(k10.size(), 4u);  // whole chain
}

TEST_F(GhostShapeFixture, VoteSum) {
  const BlockGraph g(memory.read());
  EXPECT_EQ(vote_sum(g, {a, b2, d, e}), 1 - 3);
  EXPECT_EQ(vote_sum(g, {a, b1, c1}), 3);
  EXPECT_EQ(vote_sum(g, {}), 0);
}

TEST(ChooseLongestTip, DeterministicPicksOldest) {
  AppendMemory memory(3);
  const MsgId a = memory.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);
  const MsgId t1 = memory.append(NodeId{1}, Vote::kPlus, 0, {a}, 2.0);
  const MsgId t2 = memory.append(NodeId{2}, Vote::kPlus, 0, {a}, 3.0);
  (void)t2;
  const BlockGraph g(memory.read());
  Rng rng(1);
  EXPECT_EQ(choose_longest_tip(g, TieBreak::kDeterministicFirst, rng), t1);
}

TEST(ChooseLongestTip, RandomizedCoversAllCandidates) {
  AppendMemory memory(4);
  const MsgId a = memory.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);
  std::vector<MsgId> tips;
  for (u32 i = 1; i < 4; ++i) {
    tips.push_back(memory.append(NodeId{i}, Vote::kPlus, 0, {a}, 1.0 + i));
  }
  const BlockGraph g(memory.read());
  Rng rng(2);
  std::unordered_set<MsgId> chosen;
  for (int i = 0; i < 200; ++i) {
    chosen.insert(choose_longest_tip(g, TieBreak::kRandomized, rng));
  }
  EXPECT_EQ(chosen.size(), 3u);
}

TEST(SelectPivot, EmptyGraphGivesEmptyPivot) {
  AppendMemory memory(2);
  const BlockGraph g(memory.read());
  EXPECT_TRUE(select_pivot(g, PivotRule::kGhost).empty());
  EXPECT_TRUE(linearize_dag(g, PivotRule::kGhost).empty());
}

TEST(LinearizeDag, EpochCoversReferencedForks) {
  // DAG: two root blocks a (node0), b (node1); c references both (parent a).
  // Linearization along the pivot must emit b inside c's epoch, before c.
  AppendMemory memory(3);
  const MsgId a = memory.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);
  const MsgId b = memory.append(NodeId{1}, Vote::kMinus, 0, {}, 2.0);
  const MsgId c = memory.append(NodeId{2}, Vote::kPlus, 0, {a, b}, 3.0);
  const BlockGraph g(memory.read());
  const auto order = linearize_dag(g, PivotRule::kLongestChain);
  ASSERT_EQ(order.size(), 3u);
  // a and b precede c; the inclusive DAG loses no values.
  EXPECT_EQ(order[2], c);
  EXPECT_TRUE((order[0] == a && order[1] == b) || (order[0] == b && order[1] == a));
}

TEST(LinearizeDag, UnreachableBlocksAppendedLast) {
  // A withheld side block nobody references still enters the total order.
  AppendMemory memory(3);
  const MsgId a = memory.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);
  const MsgId lone = memory.append(NodeId{1}, Vote::kMinus, 0, {}, 2.0);
  const MsgId c = memory.append(NodeId{2}, Vote::kPlus, 0, {a}, 3.0);
  (void)c;
  const BlockGraph g(memory.read());
  const auto order = linearize_dag(g, PivotRule::kGhost);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order.back(), lone);
}

}  // namespace
}  // namespace amm::chain
