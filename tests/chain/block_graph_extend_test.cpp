// Property: extending a BlockGraph along any growing sequence of views is
// bit-identical to building the graph from scratch at every step — the
// contract chain/dag protocols rely on when they carry one graph across
// rounds instead of rebuilding it (ROADMAP: incremental hot paths).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "chain/block_graph.hpp"
#include "chain/rules.hpp"
#include "support/rng.hpp"

namespace amm::chain {
namespace {

using am::AppendMemory;
using am::MemoryView;

/// Asserts every observable of `inc` (incrementally extended) equals the
/// same observable of `ref` (built from scratch on the same view).
void expect_identical(const BlockGraph& inc, const BlockGraph& ref) {
  ASSERT_EQ(inc.block_count(), ref.block_count());
  EXPECT_EQ(inc.max_depth(), ref.max_depth());
  EXPECT_EQ(inc.deepest_blocks(), ref.deepest_blocks());
  ASSERT_EQ(inc.root_children().size(), ref.root_children().size());
  for (usize i = 0; i < ref.root_children().size(); ++i) {
    EXPECT_EQ(inc.root_children()[i], ref.root_children()[i]);
  }
  EXPECT_EQ(inc.tips(), ref.tips());
  EXPECT_EQ(inc.topo_order(), ref.topo_order());
  for (const MsgId id : ref.topo_order()) {
    ASSERT_TRUE(inc.contains(id));
    EXPECT_EQ(inc.parent(id), ref.parent(id)) << "parent of (" << id.author << "," << id.seq
                                              << ")";
    EXPECT_EQ(inc.depth(id), ref.depth(id));
    EXPECT_EQ(inc.subtree_weight(id), ref.subtree_weight(id));
    ASSERT_EQ(inc.refs(id).size(), ref.refs(id).size());
    for (usize r = 0; r < ref.refs(id).size(); ++r) {
      EXPECT_EQ(inc.refs(id)[r], ref.refs(id)[r]);
    }
    ASSERT_EQ(inc.children(id).size(), ref.children(id).size());
    for (usize c = 0; c < ref.children(id).size(); ++c) {
      EXPECT_EQ(inc.children(id)[c], ref.children(id)[c]);
    }
  }
  // Decision-rule outputs — the quantities the protocols actually consume.
  for (const PivotRule rule : {PivotRule::kGhost, PivotRule::kLongestChain}) {
    EXPECT_EQ(select_pivot(inc, rule), select_pivot(ref, rule));
    EXPECT_EQ(linearize_dag(inc, rule), linearize_dag(ref, rule));
  }
}

/// A random DAG-ish trace: each append references up to 3 random earlier
/// messages (possibly none — a new root child; possibly cross-register).
std::vector<MsgId> random_trace(AppendMemory& memory, u32 n, usize appends, Rng& rng) {
  std::vector<MsgId> ids;
  SimTime now = 0.0;
  for (usize i = 0; i < appends; ++i) {
    now += 0.25 * static_cast<double>(1 + rng.uniform_below(4));
    std::vector<MsgId> refs;
    if (!ids.empty()) {
      const usize want = rng.uniform_below(4);  // 0..3 refs
      for (usize r = 0; r < want; ++r) {
        const MsgId cand = ids[rng.uniform_below(ids.size())];
        if (std::find(refs.begin(), refs.end(), cand) == refs.end()) refs.push_back(cand);
      }
    }
    const auto author = NodeId{static_cast<u32>(rng.uniform_below(n))};
    const Vote vote = rng.bernoulli(0.5) ? Vote::kPlus : Vote::kMinus;
    ids.push_back(memory.append(author, vote, /*payload=*/0, std::move(refs), now));
  }
  return ids;
}

/// Random register-wise growing lens sequence from all-zero to `full`.
/// Independent per-register increments produce views that are NOT
/// reference-closed — a register may reveal a message whose refs in other
/// registers are still hidden, exercising the pending/reparenting path.
std::vector<std::vector<u32>> growing_lens_sequence(const std::vector<u32>& full, usize steps,
                                                    Rng& rng) {
  std::vector<std::vector<u32>> seq;
  std::vector<u32> cur(full.size(), 0);
  for (usize s = 0; s + 1 < steps; ++s) {
    for (usize r = 0; r < full.size(); ++r) {
      if (cur[r] >= full[r]) continue;
      const u32 room = full[r] - cur[r];
      // Bias toward small forward jumps; sometimes stall a register so it
      // has to catch up later (the late-reveal case).
      if (rng.bernoulli(0.3)) continue;
      cur[r] += 1 + static_cast<u32>(rng.uniform_below(std::min<u32>(room, 3)));
      cur[r] = std::min(cur[r], full[r]);
    }
    seq.push_back(cur);
  }
  seq.push_back(full);  // always end at the complete view
  return seq;
}

TEST(BlockGraphExtend, MatchesFromScratchOnRandomGrowingViews) {
  Rng seed_rng(20200715);
  for (int trial = 0; trial < 20; ++trial) {
    Rng rng = Rng::for_stream(seed_rng.next(), static_cast<u64>(trial));
    const u32 n = 2 + static_cast<u32>(rng.uniform_below(6));
    AppendMemory memory(n);
    random_trace(memory, n, 40 + rng.uniform_below(80), rng);

    const std::vector<u32> full = memory.read().lens();
    const auto seq = growing_lens_sequence(full, 6 + rng.uniform_below(8), rng);

    BlockGraph inc;
    for (const std::vector<u32>& lens : seq) {
      const MemoryView view(&memory, lens);
      inc.extend(view);
      const BlockGraph ref(view);
      expect_identical(inc, ref);
      if (::testing::Test::HasFailure()) return;  // don't spam on first divergence
    }
  }
}

TEST(BlockGraphExtend, LateRevealReparents) {
  // b (register 1) references a (register 0). A view that shows b but not a
  // roots b; revealing a afterwards must reparent b under a — exactly what
  // a from-scratch build of the larger view does.
  AppendMemory memory(2);
  const MsgId a = memory.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);
  const MsgId b = memory.append(NodeId{1}, Vote::kPlus, 0, {a}, 2.0);

  BlockGraph inc;
  inc.extend(MemoryView(&memory, {0u, 1u}));  // b visible, a hidden
  EXPECT_EQ(inc.parent(b), kRootId);
  EXPECT_EQ(inc.depth(b), 1u);

  inc.extend(MemoryView(&memory, {1u, 1u}));  // a revealed
  const BlockGraph ref(MemoryView(&memory, {1u, 1u}));
  expect_identical(inc, ref);
  EXPECT_EQ(inc.parent(b), a);
  EXPECT_EQ(inc.depth(b), 2u);
  EXPECT_EQ(inc.deepest_blocks(), (std::vector<MsgId>{b}));
}

TEST(BlockGraphExtend, EmptyAndNoopExtensions) {
  AppendMemory memory(2);
  BlockGraph inc;
  inc.extend(memory.read());  // empty view
  EXPECT_EQ(inc.block_count(), 0u);

  const MsgId a = memory.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);
  inc.extend(memory.read());
  inc.extend(memory.read());  // no-op: nothing new
  EXPECT_EQ(inc.block_count(), 1u);
  EXPECT_EQ(inc.parent(a), kRootId);
  expect_identical(inc, BlockGraph(memory.read()));
}

TEST(BlockGraphExtend, PureAppendGrowthMatchesScratch) {
  // The protocol fast path: every extension only adds strictly-later
  // messages (full prefix views of a growing memory).
  Rng rng(7);
  AppendMemory memory(4);
  BlockGraph inc;
  std::vector<MsgId> ids;
  SimTime now = 0.0;
  for (int step = 0; step < 60; ++step) {
    now += 1.0;
    std::vector<MsgId> refs;
    if (!ids.empty()) refs.push_back(ids[rng.uniform_below(ids.size())]);
    ids.push_back(memory.append(NodeId{static_cast<u32>(rng.uniform_below(4))}, Vote::kPlus, 0,
                                std::move(refs), now));
    inc.extend(memory.read());
    if (step % 15 == 14) expect_identical(inc, BlockGraph(memory.read()));
  }
  expect_identical(inc, BlockGraph(memory.read()));
}

}  // namespace
}  // namespace amm::chain
