#include "chain/backbone.hpp"

#include <gtest/gtest.h>

namespace amm::chain {
namespace {

using am::AppendMemory;

/// Chain: a(n0) <- b(n1) <- c(n2) <- d(n2), with a fork e(n0) off b.
class BackboneFixture : public ::testing::Test {
 protected:
  BackboneFixture() : memory(3) {
    a = memory.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);
    b = memory.append(NodeId{1}, Vote::kPlus, 0, {a}, 2.0);
    c = memory.append(NodeId{2}, Vote::kMinus, 0, {b}, 3.0);
    d = memory.append(NodeId{2}, Vote::kMinus, 0, {c}, 4.0);
    e = memory.append(NodeId{0}, Vote::kPlus, 0, {b}, 5.0);
  }

  static bool is_byz(NodeId id) { return id.index == 2; }

  AppendMemory memory;
  MsgId a, b, c, d, e;
};

TEST_F(BackboneFixture, ChainQualityFullChain) {
  const BlockGraph g(memory.read());
  // Canonical chain a,b,c,d: two of four blocks by node 2.
  EXPECT_DOUBLE_EQ(chain_quality(g, d, 100, is_byz), 0.5);
}

TEST_F(BackboneFixture, ChainQualitySuffixOnly) {
  const BlockGraph g(memory.read());
  // Last two blocks are c,d — both byzantine-authored.
  EXPECT_DOUBLE_EQ(chain_quality(g, d, 2, is_byz), 1.0);
  // Last three: b,c,d -> 2/3.
  EXPECT_NEAR(chain_quality(g, d, 3, is_byz), 2.0 / 3.0, 1e-12);
}

TEST_F(BackboneFixture, ChainQualityHonestChain) {
  const BlockGraph g(memory.read());
  EXPECT_DOUBLE_EQ(chain_quality(g, e, 100, is_byz), 0.0);  // a,b,e
}

TEST_F(BackboneFixture, ChainGrowth) {
  const BlockGraph early(memory.read_at(2.5));  // depth 2
  const BlockGraph late(memory.read());         // depth 4
  EXPECT_DOUBLE_EQ(chain_growth(early, late, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(chain_growth(early, late, 4.0), 0.5);
}

TEST_F(BackboneFixture, CanonicalChainDeterministic) {
  const BlockGraph g(memory.read());
  const auto chain = canonical_chain(g);
  EXPECT_EQ(chain, (std::vector<MsgId>{a, b, c, d}));
}

TEST_F(BackboneFixture, CommonPrefixIdenticalViewsAgree) {
  const BlockGraph g1(memory.read());
  const BlockGraph g2(memory.read());
  EXPECT_EQ(common_prefix_divergence(g1, g2), 0u);
}

TEST_F(BackboneFixture, CommonPrefixStaleViewDiverges) {
  const BlockGraph full(memory.read());     // canonical a,b,c,d
  const BlockGraph stale(memory.read_at(3.5));  // canonical a,b,c
  // Chains agree on a,b,c; full has one extra block.
  EXPECT_EQ(common_prefix_divergence(full, stale), 1u);
}

TEST(Backbone, CommonPrefixDisjointBranches) {
  AppendMemory memory(2);
  const MsgId r = memory.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);
  const MsgId x1 = memory.append(NodeId{0}, Vote::kPlus, 0, {r}, 2.0);
  const MsgId x2 = memory.append(NodeId{0}, Vote::kPlus, 0, {x1}, 3.0);
  const MsgId y1 = memory.append(NodeId{1}, Vote::kMinus, 0, {r}, 4.0);
  const MsgId y2 = memory.append(NodeId{1}, Vote::kMinus, 0, {y1}, 5.0);
  (void)x2;
  (void)y2;
  // View A: only node 0's branch; view B: only node 1's branch (+ r).
  const am::MemoryView va(&memory, {3u, 0u});
  const am::MemoryView vb(&memory, {1u, 2u});
  const BlockGraph ga(va), gb(vb);
  // Chains: (r,x1,x2) vs (r,y1,y2): agree on r only -> divergence 2.
  EXPECT_EQ(common_prefix_divergence(ga, gb), 2u);
}

TEST(Backbone, EmptyGraphs) {
  AppendMemory memory(2);
  const BlockGraph g(memory.read());
  EXPECT_TRUE(canonical_chain(g).empty());
  EXPECT_EQ(common_prefix_divergence(g, g), 0u);
}

TEST(BackboneDeathTest, Preconditions) {
  AppendMemory memory(2);
  memory.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);
  const BlockGraph g(memory.read());
  EXPECT_DEATH((void)chain_quality(g, MsgId{0, 0}, 0, [](NodeId) { return false; }),
               "precondition");
  EXPECT_DEATH((void)chain_growth(g, g, 0.0), "precondition");
}

}  // namespace
}  // namespace amm::chain
