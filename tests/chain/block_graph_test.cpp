#include "chain/block_graph.hpp"

#include <gtest/gtest.h>

namespace amm::chain {
namespace {

using am::AppendMemory;

/// Linear chain: 0 <- 1 <- 2 (all by node 0).
class LinearChainFixture : public ::testing::Test {
 protected:
  LinearChainFixture() : memory(2) {
    a = memory.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);
    b = memory.append(NodeId{0}, Vote::kMinus, 0, {a}, 2.0);
    c = memory.append(NodeId{0}, Vote::kPlus, 0, {b}, 3.0);
  }

  AppendMemory memory;
  MsgId a, b, c;
};

TEST_F(LinearChainFixture, DepthsAlongParentEdges) {
  const BlockGraph g(memory.read());
  EXPECT_EQ(g.block_count(), 3u);
  EXPECT_EQ(g.depth(a), 1u);
  EXPECT_EQ(g.depth(b), 2u);
  EXPECT_EQ(g.depth(c), 3u);
  EXPECT_EQ(g.max_depth(), 3u);
}

TEST_F(LinearChainFixture, ParentsAndChildren) {
  const BlockGraph g(memory.read());
  EXPECT_EQ(g.parent(a), kRootId);
  EXPECT_EQ(g.parent(b), a);
  EXPECT_EQ(g.parent(c), b);
  ASSERT_EQ(g.children(a).size(), 1u);
  EXPECT_EQ(g.children(a)[0], b);
  ASSERT_EQ(g.root_children().size(), 1u);
}

TEST_F(LinearChainFixture, WeightsAreSubtreeSizes) {
  const BlockGraph g(memory.read());
  EXPECT_EQ(g.subtree_weight(a), 3u);
  EXPECT_EQ(g.subtree_weight(b), 2u);
  EXPECT_EQ(g.subtree_weight(c), 1u);
}

TEST_F(LinearChainFixture, TipsAndDeepest) {
  const BlockGraph g(memory.read());
  EXPECT_EQ(g.tips(), (std::vector<MsgId>{c}));
  EXPECT_EQ(g.deepest_blocks(), (std::vector<MsgId>{c}));
}

TEST_F(LinearChainFixture, ChainToWalksFromRoot) {
  const BlockGraph g(memory.read());
  EXPECT_EQ(g.chain_to(c), (std::vector<MsgId>{a, b, c}));
}

TEST_F(LinearChainFixture, PartialViewTruncates) {
  const BlockGraph g(memory.read_at(2.5));  // only a, b visible
  EXPECT_EQ(g.block_count(), 2u);
  EXPECT_EQ(g.max_depth(), 2u);
  EXPECT_EQ(g.tips(), (std::vector<MsgId>{b}));
}

/// Fork: root <- a; a <- b1 (node1), a <- b2 (node2); b2 <- c.
class ForkFixture : public ::testing::Test {
 protected:
  ForkFixture() : memory(3) {
    a = memory.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);
    b1 = memory.append(NodeId{1}, Vote::kPlus, 0, {a}, 2.0);
    b2 = memory.append(NodeId{2}, Vote::kMinus, 0, {a}, 3.0);
    c = memory.append(NodeId{2}, Vote::kMinus, 0, {b2}, 4.0);
  }

  AppendMemory memory;
  MsgId a, b1, b2, c;
};

TEST_F(ForkFixture, DeepestIsLongerBranch) {
  const BlockGraph g(memory.read());
  EXPECT_EQ(g.max_depth(), 3u);
  EXPECT_EQ(g.deepest_blocks(), (std::vector<MsgId>{c}));
}

TEST_F(ForkFixture, TieAtEqualDepth) {
  const BlockGraph g(memory.read_at(3.5));  // a, b1, b2
  EXPECT_EQ(g.max_depth(), 2u);
  EXPECT_EQ(g.deepest_blocks(), (std::vector<MsgId>{b1, b2}));  // append order
}

TEST_F(ForkFixture, WeightsCountBothBranches) {
  const BlockGraph g(memory.read());
  EXPECT_EQ(g.subtree_weight(a), 4u);
  EXPECT_EQ(g.subtree_weight(b1), 1u);
  EXPECT_EQ(g.subtree_weight(b2), 2u);
}

TEST_F(ForkFixture, TipsExcludeReferenced) {
  const BlockGraph g(memory.read());
  const auto tips = g.tips();
  EXPECT_EQ(tips, (std::vector<MsgId>{b1, c}));
}

TEST(BlockGraph, EmptyView) {
  AppendMemory memory(2);
  const BlockGraph g(memory.read());
  EXPECT_EQ(g.block_count(), 0u);
  EXPECT_EQ(g.max_depth(), 0u);
  EXPECT_TRUE(g.tips().empty());
  EXPECT_TRUE(g.topo_order().empty());
}

TEST(BlockGraph, MultiRefDagStructure) {
  // DAG block referencing two tips: parent = first ref.
  AppendMemory memory(3);
  const MsgId a = memory.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);
  const MsgId b = memory.append(NodeId{1}, Vote::kPlus, 0, {}, 2.0);
  const MsgId c = memory.append(NodeId{2}, Vote::kPlus, 0, {a, b}, 3.0);
  const BlockGraph g(memory.read());
  EXPECT_EQ(g.parent(c), a);
  EXPECT_EQ(g.refs(c).size(), 2u);
  EXPECT_EQ(g.depth(c), 2u);
  // b is referenced (not a tip), though it has no parent-edge children.
  EXPECT_EQ(g.tips(), (std::vector<MsgId>{c}));
  EXPECT_TRUE(g.children(b).empty());
}

TEST(BlockGraph, RefOutsideViewFallsBackToRoot) {
  AppendMemory memory(2);
  const MsgId a = memory.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);
  const MsgId b = memory.append(NodeId{1}, Vote::kPlus, 0, {a}, 2.0);
  (void)b;
  // View that contains b's register but not a's message is impossible by
  // prefix semantics (a came first in node0's register)... but a view can
  // contain b while missing a if they are in different registers and the
  // observer's register-1 prefix is ahead of register-0. Construct via
  // read_at with a manual view: here simulate by reading at 1.5 (a only)
  // and at 2.5 (both), then build a view missing a via the lens vector.
  const am::MemoryView partial(&memory, {0u, 1u});  // b visible, a not
  const BlockGraph g(partial);
  EXPECT_EQ(g.block_count(), 1u);
  EXPECT_EQ(g.parent(b), kRootId);
  EXPECT_EQ(g.depth(b), 1u);
}

TEST(BlockGraph, TopoOrderRespectsRefs) {
  AppendMemory memory(3);
  std::vector<MsgId> ids;
  ids.push_back(memory.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0));
  ids.push_back(memory.append(NodeId{1}, Vote::kPlus, 0, {ids[0]}, 2.0));
  ids.push_back(memory.append(NodeId{2}, Vote::kPlus, 0, {ids[0], ids[1]}, 3.0));
  ids.push_back(memory.append(NodeId{0}, Vote::kPlus, 0, {ids[2]}, 4.0));
  const BlockGraph g(memory.read());
  const auto& topo = g.topo_order();
  ASSERT_EQ(topo.size(), 4u);
  std::unordered_map<MsgId, usize> pos;
  for (usize i = 0; i < topo.size(); ++i) pos[topo[i]] = i;
  for (const MsgId id : ids) {
    for (const MsgId ref : g.refs(id)) EXPECT_LT(pos[ref], pos[id]);
  }
}

}  // namespace
}  // namespace amm::chain
