// Property tests over randomly generated DAGs: linearization totality,
// topological soundness, pivot consistency, GHOST weight correctness.
#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "chain/rules.hpp"
#include "support/rng.hpp"

namespace amm::chain {
namespace {

using am::AppendMemory;

struct DagCase {
  u32 nodes;
  u32 blocks;
  double multi_ref_prob;
  u64 seed;
};

class RandomDag : public ::testing::TestWithParam<DagCase> {
 protected:
  void SetUp() override {
    const auto p = GetParam();
    memory_ = std::make_unique<AppendMemory>(p.nodes);
    Rng rng(p.seed);
    std::vector<MsgId> all;
    for (u32 i = 0; i < p.blocks; ++i) {
      std::vector<MsgId> refs;
      if (!all.empty()) {
        refs.push_back(all[rng.uniform_below(all.size())]);
        for (int attempt = 0; attempt < 6 && refs.size() < 4; ++attempt) {
          if (!rng.bernoulli(p.multi_ref_prob)) break;
          const MsgId extra = all[rng.uniform_below(all.size())];
          if (std::find(refs.begin(), refs.end(), extra) == refs.end()) refs.push_back(extra);
        }
      }
      all.push_back(memory_->append(NodeId{static_cast<u32>(rng.uniform_below(p.nodes))},
                                    rng.bernoulli(0.5) ? Vote::kPlus : Vote::kMinus, i,
                                    std::move(refs), static_cast<SimTime>(i)));
    }
  }

  std::unique_ptr<AppendMemory> memory_;
};

TEST_P(RandomDag, LinearizationIsTotalPermutation) {
  const BlockGraph g(memory_->read());
  for (const PivotRule rule : {PivotRule::kLongestChain, PivotRule::kGhost}) {
    const auto order = linearize_dag(g, rule);
    EXPECT_EQ(order.size(), g.block_count());
    std::unordered_set<MsgId> unique(order.begin(), order.end());
    EXPECT_EQ(unique.size(), order.size());
  }
}

TEST_P(RandomDag, LinearizationTopologicallySound) {
  const BlockGraph g(memory_->read());
  const auto order = linearize_dag(g, PivotRule::kGhost);
  std::unordered_set<MsgId> seen;
  for (const MsgId id : order) {
    for (const MsgId ref : g.refs(id)) {
      EXPECT_TRUE(seen.contains(ref)) << "reference emitted after referrer";
    }
    seen.insert(id);
  }
}

TEST_P(RandomDag, PivotIsParentConnectedAndMaximal) {
  const BlockGraph g(memory_->read());
  for (const PivotRule rule : {PivotRule::kLongestChain, PivotRule::kGhost}) {
    const auto pivot = select_pivot(g, rule);
    if (g.block_count() == 0) {
      EXPECT_TRUE(pivot.empty());
      continue;
    }
    ASSERT_FALSE(pivot.empty());
    EXPECT_EQ(g.parent(pivot.front()), kRootId);
    for (usize i = 1; i < pivot.size(); ++i) {
      EXPECT_EQ(g.parent(pivot[i]), pivot[i - 1]);
    }
    // The pivot ends at a block with no parent-edge children.
    EXPECT_TRUE(g.children(pivot.back()).empty());
  }
}

TEST_P(RandomDag, LongestChainPivotReachesMaxDepth) {
  const BlockGraph g(memory_->read());
  const auto pivot = select_pivot(g, PivotRule::kLongestChain);
  EXPECT_EQ(pivot.size(), g.max_depth());
}

TEST_P(RandomDag, GhostWeightsEqualRecomputedSubtreeSizes) {
  const BlockGraph g(memory_->read());
  // Recompute subtree sizes naively through the children lists.
  std::unordered_map<MsgId, u32> naive;
  const auto& topo = g.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    u32 w = 1;
    for (const MsgId c : g.children(*it)) w += naive.at(c);
    naive[*it] = w;
  }
  for (const MsgId id : topo) {
    EXPECT_EQ(g.subtree_weight(id), naive.at(id));
  }
}

TEST_P(RandomDag, DepthIsParentDepthPlusOne) {
  const BlockGraph g(memory_->read());
  for (const MsgId id : g.topo_order()) {
    const MsgId p = g.parent(id);
    if (p == kRootId) {
      EXPECT_EQ(g.depth(id), 1u);
    } else {
      EXPECT_EQ(g.depth(id), g.depth(p) + 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RandomDag,
    ::testing::Values(DagCase{3, 30, 0.0, 1},    // pure chain-ish tree
                      DagCase{4, 60, 0.5, 2},    // moderate DAG
                      DagCase{8, 120, 0.8, 3},   // dense DAG
                      DagCase{2, 10, 0.3, 4},    // tiny
                      DagCase{6, 200, 0.6, 5},   // large
                      DagCase{5, 80, 1.0, 6}));  // max fan-in

}  // namespace
}  // namespace amm::chain
