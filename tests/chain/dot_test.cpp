#include "chain/dot.hpp"

#include <gtest/gtest.h>

namespace amm::chain {
namespace {

using am::AppendMemory;

TEST(Dot, EmptyGraphStillValidDot) {
  AppendMemory memory(2);
  const BlockGraph g(memory.read());
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph append_memory {"), std::string::npos);
  EXPECT_NE(dot.find("root"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(Dot, NodesAndEdgesPresent) {
  AppendMemory memory(2);
  const MsgId a = memory.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);
  memory.append(NodeId{1}, Vote::kMinus, 0, {a}, 2.0);
  const std::string dot = to_dot(BlockGraph(memory.read()));
  EXPECT_NE(dot.find("b_0_0"), std::string::npos);
  EXPECT_NE(dot.find("b_1_0"), std::string::npos);
  EXPECT_NE(dot.find("b_0_0 -> root"), std::string::npos);
  EXPECT_NE(dot.find("b_1_0 -> b_0_0"), std::string::npos);
}

TEST(Dot, ReferenceEdgesDashed) {
  AppendMemory memory(3);
  const MsgId a = memory.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);
  const MsgId b = memory.append(NodeId{1}, Vote::kPlus, 0, {}, 2.0);
  memory.append(NodeId{2}, Vote::kPlus, 0, {a, b}, 3.0);
  const std::string dot = to_dot(BlockGraph(memory.read()));
  EXPECT_NE(dot.find("b_2_0 -> b_1_0 [style=dashed]"), std::string::npos);
  // The parent edge must NOT be dashed.
  EXPECT_EQ(dot.find("b_2_0 -> b_0_0 [style=dashed]"), std::string::npos);
}

TEST(Dot, AdversarialBlocksFilled) {
  AppendMemory memory(2);
  memory.append(NodeId{1}, Vote::kMinus, 0, {}, 1.0);
  DotOptions options;
  options.is_adversarial = [](NodeId id) { return id.index == 1; };
  const std::string dot = to_dot(BlockGraph(memory.read()), options);
  EXPECT_NE(dot.find("fillcolor"), std::string::npos);
}

TEST(Dot, PivotHighlighted) {
  AppendMemory memory(2);
  const MsgId a = memory.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);
  memory.append(NodeId{0}, Vote::kPlus, 0, {a}, 2.0);
  const std::string dot = to_dot(BlockGraph(memory.read()));
  EXPECT_NE(dot.find("penwidth"), std::string::npos);
}

TEST(Dot, VoteLabelsToggle) {
  AppendMemory memory(1);
  memory.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);
  DotOptions no_votes;
  no_votes.show_votes = false;
  const std::string with_votes = to_dot(BlockGraph(memory.read()));
  const std::string without = to_dot(BlockGraph(memory.read()), no_votes);
  EXPECT_GT(with_votes.size(), without.size());
}

}  // namespace
}  // namespace amm::chain
