#include "sched/poisson.hpp"

#include <gtest/gtest.h>

namespace amm::sched {
namespace {

TEST(TokenAuthority, TimesAreStrictlyIncreasing) {
  TokenAuthority auth(4, 1.0, 1.0, Rng(1));
  SimTime last = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const Token tok = auth.next();
    EXPECT_GT(tok.time, last);
    last = tok.time;
  }
}

TEST(TokenAuthority, HoldersInRange) {
  TokenAuthority auth(5, 0.5, 1.0, Rng(2));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(auth.next().holder.index, 5u);
  }
}

TEST(TokenAuthority, MergedRateMatches) {
  // n=8 nodes at λ=0.5 per Δ=2.0 → merged 2 tokens per unit time.
  TokenAuthority auth(8, 0.5, 2.0, Rng(3));
  EXPECT_DOUBLE_EQ(auth.merged_rate(), 2.0);
  const int n = 200'000;
  SimTime last = 0.0;
  for (int i = 0; i < n; ++i) last = auth.next().time;
  EXPECT_NEAR(static_cast<double>(n) / last, 2.0, 0.05);
}

TEST(TokenAuthority, HoldersApproximatelyUniform) {
  TokenAuthority auth(4, 1.0, 1.0, Rng(4));
  std::vector<int> counts(4, 0);
  const int n = 40'000;
  for (int i = 0; i < n; ++i) ++counts[auth.next().holder.index];
  for (const int c : counts) EXPECT_NEAR(c, n / 4, n / 40);
}

TEST(TokenAuthority, DeterministicPerRng) {
  TokenAuthority a(4, 1.0, 1.0, Rng(5));
  TokenAuthority b(4, 1.0, 1.0, Rng(5));
  for (int i = 0; i < 100; ++i) {
    const Token ta = a.next();
    const Token tb = b.next();
    EXPECT_EQ(ta.time, tb.time);
    EXPECT_EQ(ta.holder, tb.holder);
  }
}

TEST(SlottedAccess, CountsMatchPoissonMean) {
  SlottedAccess acc(6, 0.8, Rng(6));
  double total = 0.0;
  const int slots = 20'000;
  for (int s = 0; s < slots; ++s) {
    const auto counts = acc.next_slot();
    EXPECT_EQ(counts.size(), 6u);
    for (const u32 c : counts) total += c;
  }
  EXPECT_NEAR(total / (slots * 6), 0.8, 0.02);
}

TEST(SlottedAccess, IndependentAcrossNodes) {
  // Crude independence check: covariance of two nodes' counts ≈ 0.
  SlottedAccess acc(2, 1.0, Rng(7));
  const int slots = 50'000;
  double s0 = 0, s1 = 0, s01 = 0;
  for (int s = 0; s < slots; ++s) {
    const auto c = acc.next_slot();
    s0 += c[0];
    s1 += c[1];
    s01 += static_cast<double>(c[0]) * c[1];
  }
  const double cov = s01 / slots - (s0 / slots) * (s1 / slots);
  EXPECT_NEAR(cov, 0.0, 0.03);
}

}  // namespace
}  // namespace amm::sched
