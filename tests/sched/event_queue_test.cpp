#include "sched/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace amm::sched {
namespace {

TEST(EventQueue, StartsAtTimeZero) {
  EventQueue q;
  EXPECT_EQ(q.now(), 0.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 3.0);
}

TEST(EventQueue, FifoAmongEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(2.0, [&] { q.schedule_in(3.0, [&] { fired_at = q.now(); }); });
  q.run();
  EXPECT_EQ(fired_at, 5.0);
}

TEST(EventQueue, RunUntilStopsAtHorizon) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(5.0, [&] { ++fired; });
  const u64 n = q.run_until(3.0);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 3.0);  // clock advances to the horizon
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunWithBudget) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 10; ++i) q.schedule_at(i, [&] { ++fired; });
  EXPECT_EQ(q.run(4), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(q.pending(), 6u);
}

TEST(EventQueue, HandlersCanScheduleMore) {
  EventQueue q;
  int chain = 0;
  std::function<void()> tick = [&] {
    if (++chain < 5) q.schedule_in(1.0, tick);
  };
  q.schedule_at(0.0, tick);
  q.run();
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(q.now(), 4.0);
  EXPECT_EQ(q.executed(), 5u);
}

TEST(EventQueueDeathTest, PastSchedulingRejected) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  q.run();
  EXPECT_DEATH(q.schedule_at(1.0, [] {}), "precondition");
}

}  // namespace
}  // namespace amm::sched
