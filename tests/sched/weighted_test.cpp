#include <gtest/gtest.h>

#include "sched/poisson.hpp"

namespace amm::sched {
namespace {

TEST(WeightedTokenAuthority, UnitWeightsMatchUniform) {
  WeightedTokenAuthority auth({1.0, 1.0, 1.0, 1.0}, 4.0, 1.0, Rng(1));
  std::vector<int> counts(4, 0);
  const int n = 40'000;
  for (int i = 0; i < n; ++i) ++counts[auth.next().holder.index];
  for (const int c : counts) EXPECT_NEAR(c, n / 4, n / 40);
}

TEST(WeightedTokenAuthority, ProportionalToWeights) {
  // Weights 1:3 → shares 25% / 75%.
  WeightedTokenAuthority auth({1.0, 3.0}, 2.0, 1.0, Rng(2));
  std::vector<int> counts(2, 0);
  const int n = 40'000;
  for (int i = 0; i < n; ++i) ++counts[auth.next().holder.index];
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.75, 0.02);
}

TEST(WeightedTokenAuthority, ZeroWeightNeverDrawn) {
  WeightedTokenAuthority auth({0.0, 1.0, 0.0}, 1.0, 1.0, Rng(3));
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(auth.next().holder.index, 1u);
  }
}

TEST(WeightedTokenAuthority, MergedRateMatches) {
  // total rate 6 per Δ=2 → 3 per unit time.
  WeightedTokenAuthority auth({2.0, 1.0}, 6.0, 2.0, Rng(4));
  EXPECT_DOUBLE_EQ(auth.merged_rate(), 3.0);
  const int n = 100'000;
  SimTime last = 0.0;
  for (int i = 0; i < n; ++i) last = auth.next().time;
  EXPECT_NEAR(static_cast<double>(n) / last, 3.0, 0.1);
}

TEST(WeightedTokenAuthority, TimesStrictlyIncreasing) {
  WeightedTokenAuthority auth({1.0, 2.0, 3.0}, 1.0, 1.0, Rng(5));
  SimTime last = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const Token tok = auth.next();
    EXPECT_GT(tok.time, last);
    last = tok.time;
  }
}

TEST(WeightedTokenAuthorityDeathTest, BadInputs) {
  EXPECT_DEATH(WeightedTokenAuthority({}, 1.0, 1.0, Rng(1)), "precondition");
  EXPECT_DEATH(WeightedTokenAuthority({0.0, 0.0}, 1.0, 1.0, Rng(1)), "precondition");
  EXPECT_DEATH(WeightedTokenAuthority({-1.0, 2.0}, 1.0, 1.0, Rng(1)), "precondition");
  EXPECT_DEATH(WeightedTokenAuthority({1.0}, 0.0, 1.0, Rng(1)), "precondition");
}

}  // namespace
}  // namespace amm::sched
