// tools/cli.hpp — the shared options API all runtime tools parse with.
//
// The properties the consolidation bought: one declaration per option,
// `--name value` and `--name=value` both accepted, typed range checking,
// enum-vocabulary validation, positional vocabularies, and — the headline
// fix over the old per-tool parsers — unknown flags are *rejected*, not
// silently ignored.
#include "tools/cli.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

namespace amm::tools {
namespace {

ParseStatus parse(OptionSet& opts, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return opts.parse(static_cast<int>(args.size()), args.data());
}

TEST(Options, TypedValuesParseInBothSpellings) {
  bool flag = false;
  std::string name = "default";
  std::string mode = "off";
  u16 port = 9500;
  u32 count = 1;
  u64 big = 0;
  i64 value = 0;
  double rate = 0.0;
  OptionSet opts("prog", "test");
  opts.add_flag("flag", &flag, "a flag");
  opts.add_string("name", &name, "a string");
  opts.add_enum("mode", &mode, {"off", "retain", "summary"}, "an enum");
  opts.add_u16("port", &port, "a u16");
  opts.add_u32("count", &count, "a u32");
  opts.add_u64("big", &big, "a u64");
  opts.add_i64("value", &value, "an i64");
  opts.add_double("rate", &rate, "a double");

  EXPECT_EQ(parse(opts, {"--flag", "--name", "alice", "--mode=summary", "--port=65535",
                         "--count", "0x10", "--big=4294967296", "--value", "-42",
                         "--rate=0.25"}),
            ParseStatus::kOk);
  EXPECT_TRUE(flag);
  EXPECT_EQ(name, "alice");
  EXPECT_EQ(mode, "summary");
  EXPECT_EQ(port, 65535u);
  EXPECT_EQ(count, 16u);  // 0x prefix accepted
  EXPECT_EQ(big, 4294967296ull);
  EXPECT_EQ(value, -42);
  EXPECT_DOUBLE_EQ(rate, 0.25);
}

TEST(Options, UnknownFlagRejected) {
  u32 n = 5;
  OptionSet opts("prog", "test");
  opts.add_u32("n", &n, "cluster size");
  EXPECT_EQ(parse(opts, {"--n", "3", "--bogus", "7"}), ParseStatus::kError);
  EXPECT_NE(opts.error().find("unknown option --bogus"), std::string::npos) << opts.error();
}

TEST(Options, MissingValueRejected) {
  std::string dir;
  OptionSet opts("prog", "test");
  opts.add_string("store-dir", &dir, "store directory");
  EXPECT_EQ(parse(opts, {"--store-dir"}), ParseStatus::kError);
  EXPECT_NE(opts.error().find("needs a value"), std::string::npos) << opts.error();
}

TEST(Options, EnumVocabularyEnforced) {
  std::string fsync = "interval";
  OptionSet opts("prog", "test");
  opts.add_enum("fsync", &fsync, {"never", "interval", "always"}, "fsync policy");
  EXPECT_EQ(parse(opts, {"--fsync", "sometimes"}), ParseStatus::kError);
  EXPECT_NE(opts.error().find("one of: never|interval|always"), std::string::npos)
      << opts.error();
  EXPECT_EQ(fsync, "interval");  // failed parse leaves the default alone
}

TEST(Options, NumericRangeAndFormatEnforced) {
  u16 port = 0;
  u32 n = 0;
  OptionSet opts("prog", "test");
  opts.add_u16("port", &port, "a u16");
  opts.add_u32("n", &n, "a u32");
  EXPECT_EQ(parse(opts, {"--port", "65536"}), ParseStatus::kError);  // u16 overflow
  EXPECT_EQ(parse(opts, {"--port", "abc"}), ParseStatus::kError);
  EXPECT_EQ(parse(opts, {"--port", "12x"}), ParseStatus::kError);  // trailing junk
  EXPECT_EQ(parse(opts, {"--n", "-1"}), ParseStatus::kError);      // unsigned, no wrap
  EXPECT_EQ(parse(opts, {"--n", ""}), ParseStatus::kError);
}

TEST(Options, FlagTakesNoValue) {
  bool flag = false;
  OptionSet opts("prog", "test");
  opts.add_flag("flag", &flag, "a flag");
  EXPECT_EQ(parse(opts, {"--flag=1"}), ParseStatus::kError);
}

TEST(Options, HelpShortCircuitsAndListsEveryOption) {
  u32 n = 5;
  std::string mode = "off";
  OptionSet opts("prog", "summary line");
  opts.add_u32("n", &n, "cluster size");
  opts.add_enum("mode", &mode, {"off", "on"}, "a mode");
  EXPECT_EQ(parse(opts, {"-h"}), ParseStatus::kHelp);
  EXPECT_EQ(parse(opts, {"--n", "3", "--help"}), ParseStatus::kHelp);

  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  opts.print_help(out);
  std::rewind(out);
  char buf[2048] = {};
  const usize got = std::fread(buf, 1, sizeof buf - 1, out);
  std::fclose(out);
  const std::string help(buf, got);
  EXPECT_NE(help.find("--n <v>"), std::string::npos) << help;
  EXPECT_NE(help.find("[default: 5]"), std::string::npos) << help;  // captured default
  EXPECT_NE(help.find("one of: off|on"), std::string::npos) << help;
  EXPECT_NE(help.find("-h, --help"), std::string::npos) << help;
}

TEST(Options, PositionalVocabularyAndOrder) {
  std::string command;
  std::string dir;
  OptionSet opts("prog", "test");
  opts.add_positional("command", &command, {"dump", "verify", "truncate"}, "what to do");
  opts.add_string("dir", &dir, "store dir");
  EXPECT_EQ(parse(opts, {"verify", "--dir", "/tmp/x"}), ParseStatus::kOk);
  EXPECT_EQ(command, "verify");
  EXPECT_EQ(dir, "/tmp/x");

  EXPECT_EQ(parse(opts, {"explode"}), ParseStatus::kError);
  EXPECT_NE(opts.error().find("invalid command"), std::string::npos) << opts.error();
  EXPECT_EQ(parse(opts, {}), ParseStatus::kError);
  EXPECT_NE(opts.error().find("missing command"), std::string::npos) << opts.error();
}

TEST(Options, UnexpectedPositionalRejected) {
  u32 n = 0;
  OptionSet opts("prog", "test");
  opts.add_u32("n", &n, "a u32");
  EXPECT_EQ(parse(opts, {"stray"}), ParseStatus::kError);
  EXPECT_NE(opts.error().find("unexpected argument 'stray'"), std::string::npos) << opts.error();
}

TEST(Options, NodeOptionsDeclareTheWholeVocabularyOnce) {
  NodeConfig cfg;
  OptionSet opts("amm_node", "test");
  add_node_options(opts, &cfg);
  EXPECT_EQ(parse(opts, {"--n", "7", "--id=3", "--backend", "epoll", "--compact", "summary",
                         "--store-dir", "/tmp/store0", "--fsync=always",
                         "--snapshot-interval", "256", "--segment-bytes", "1048576"}),
            ParseStatus::kOk);
  EXPECT_EQ(cfg.n, 7u);
  EXPECT_EQ(cfg.id, 3u);
  EXPECT_EQ(cfg.backend, "epoll");
  EXPECT_EQ(cfg.compact, "summary");
  EXPECT_EQ(cfg.store_dir, "/tmp/store0");
  EXPECT_EQ(cfg.fsync, "always");
  EXPECT_EQ(cfg.snapshot_interval, 256u);
  EXPECT_EQ(cfg.segment_bytes, 1048576u);
  // Untouched options keep their defaults.
  EXPECT_EQ(cfg.seed, 20200715u);
  EXPECT_EQ(cfg.base_port, 9500u);
  EXPECT_EQ(cfg.fsync_interval, 64u);

  // The old parsers ignored typos like this one; the shared one must not.
  EXPECT_EQ(parse(opts, {"--storedir", "/tmp/x"}), ParseStatus::kError);
}

}  // namespace
}  // namespace amm::tools
