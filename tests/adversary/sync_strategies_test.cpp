// Direct unit tests of the Byzantine strategy objects (they are otherwise
// only exercised through the protocol runner).
#include "adversary/sync_strategies.hpp"

#include <gtest/gtest.h>

namespace amm::adv {
namespace {

using proto::Scenario;
using proto::SyncContext;
using proto::SyncMsg;

struct ContextFixture {
  ContextFixture(u32 n, u32 t, u32 rounds) {
    scenario.n = n;
    scenario.t = t;
    views.assign(n, {});
    ctx.scenario = &scenario;
    ctx.total_rounds = rounds;
    ctx.msgs = &msgs;
    ctx.prev_round_views = &views;
  }

  Scenario scenario;
  std::vector<SyncMsg> msgs;
  std::vector<std::vector<u32>> views;
  SyncContext ctx;
};

TEST(SilentSync, NeverAppends) {
  SilentSync silent;
  ContextFixture f(5, 2, 3);
  for (u32 r = 1; r <= 3; ++r) {
    EXPECT_FALSE(silent.on_round(r, NodeId{3}, f.ctx).has_value());
  }
}

TEST(OppositeVoterSync, AppendsEveryRoundFullyVisible) {
  OppositeVoterSync opp(Vote::kMinus);
  ContextFixture f(4, 1, 2);
  f.views[3] = {0, 1};  // the node's honest previous-round view
  const auto app = opp.on_round(1, NodeId{3}, f.ctx);
  ASSERT_TRUE(app.has_value());
  EXPECT_EQ(app->value, Vote::kMinus);
  EXPECT_EQ(app->refs, (std::vector<u32>{0, 1}));
  EXPECT_EQ(app->visible_to, std::vector<bool>(4, true));
}

TEST(CrashSync, AppendsUntilCrashRound) {
  CrashSync crash(Vote::kPlus, /*crash_round=*/3);
  ContextFixture f(4, 1, 5);
  EXPECT_TRUE(crash.on_round(1, NodeId{3}, f.ctx).has_value());
  EXPECT_TRUE(crash.on_round(2, NodeId{3}, f.ctx).has_value());
  EXPECT_FALSE(crash.on_round(3, NodeId{3}, f.ctx).has_value());
  EXPECT_FALSE(crash.on_round(4, NodeId{3}, f.ctx).has_value());
}

TEST(CrashSync, CrashFromStartIsSilent) {
  CrashSync crash(Vote::kPlus, 1);
  ContextFixture f(3, 1, 2);
  EXPECT_FALSE(crash.on_round(1, NodeId{2}, f.ctx).has_value());
}

TEST(SplitVisionSync, ByzantineAlwaysSeeEachOther) {
  SplitVisionSync split(Vote::kMinus, Rng(3));
  ContextFixture f(6, 2, 3);
  for (int i = 0; i < 20; ++i) {
    const auto app = split.on_round(1, NodeId{4}, f.ctx);
    ASSERT_TRUE(app.has_value());
    EXPECT_TRUE(app->visible_to[4]);
    EXPECT_TRUE(app->visible_to[5]);
  }
}

TEST(SplitVisionSync, VisibilityActuallyVaries) {
  SplitVisionSync split(Vote::kMinus, Rng(4));
  ContextFixture f(10, 1, 2);
  bool saw_true = false, saw_false = false;
  for (int i = 0; i < 50; ++i) {
    const auto app = split.on_round(1, NodeId{9}, f.ctx);
    for (u32 v = 0; v < 9; ++v) {
      (app->visible_to[v] ? saw_true : saw_false) = true;
    }
  }
  EXPECT_TRUE(saw_true);
  EXPECT_TRUE(saw_false);
}

TEST(LastRoundSplitSync, OneStaircaseStepPerRound) {
  // b_i appends only in round i: rank 0 in round 1, rank 1 in round 2.
  LastRoundSplitSync attack(Vote::kMinus, 1);
  ContextFixture f(5, 2, 2);
  EXPECT_TRUE(attack.on_round(1, NodeId{3}, f.ctx).has_value());
  EXPECT_FALSE(attack.on_round(2, NodeId{3}, f.ctx).has_value());
  EXPECT_FALSE(attack.on_round(1, NodeId{4}, f.ctx).has_value());
}

TEST(LastRoundSplitSync, StaircaseStructureAndVisibility) {
  LastRoundSplitSync attack(Vote::kMinus, /*split=*/1);
  ContextFixture f(5, 2, 2);
  // Round 1, rank 0: the origin — empty refs, delayed past every correct
  // node (visible only to the Byzantine confederates).
  const auto origin = attack.on_round(1, NodeId{3}, f.ctx);
  ASSERT_TRUE(origin.has_value());
  EXPECT_TRUE(origin->refs.empty());
  EXPECT_FALSE(origin->visible_to[0]);
  EXPECT_FALSE(origin->visible_to[1]);
  EXPECT_FALSE(origin->visible_to[2]);
  EXPECT_TRUE(origin->visible_to[3]);
  EXPECT_TRUE(origin->visible_to[4]);

  // Simulate the runner having appended it, then rank 1's final-round step
  // references it and is timely only for S = {correct node 0}.
  SyncMsg m;
  m.author = NodeId{3};
  m.round = 1;
  m.sees_now = origin->visible_to;
  f.msgs.push_back(m);
  const auto final_step = attack.on_round(2, NodeId{4}, f.ctx);
  ASSERT_TRUE(final_step.has_value());
  EXPECT_EQ(final_step->refs, (std::vector<u32>{0}));
  EXPECT_TRUE(final_step->visible_to[0]);
  EXPECT_FALSE(final_step->visible_to[1]);
  EXPECT_FALSE(final_step->visible_to[2]);
}

}  // namespace
}  // namespace amm::adv
