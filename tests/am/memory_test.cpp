#include "am/memory.hpp"

#include <gtest/gtest.h>

namespace amm::am {
namespace {

TEST(AppendMemory, FreshMemoryIsEmpty) {
  AppendMemory m(3);
  EXPECT_EQ(m.node_count(), 3u);
  EXPECT_EQ(m.total_appends(), 0u);
  EXPECT_TRUE(m.read().empty());
}

TEST(AppendMemory, AppendAndRead) {
  AppendMemory m(2);
  const MsgId id = m.append(NodeId{0}, Vote::kPlus, 7, {}, 1.0);
  EXPECT_TRUE(m.exists(id));
  const MemoryView view = m.read();
  EXPECT_EQ(view.size(), 1u);
  EXPECT_TRUE(view.contains(id));
  EXPECT_EQ(view.msg(id).payload, 7u);
}

TEST(AppendMemory, ReadIsCompleteAcrossRegisters) {
  AppendMemory m(3);
  m.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);
  m.append(NodeId{1}, Vote::kMinus, 0, {}, 2.0);
  m.append(NodeId{0}, Vote::kPlus, 0, {}, 3.0);
  const MemoryView view = m.read();
  EXPECT_EQ(view.size(), 3u);
  EXPECT_EQ(view.register_len(0), 2u);
  EXPECT_EQ(view.register_len(1), 1u);
  EXPECT_EQ(view.register_len(2), 0u);
}

TEST(AppendMemory, ReadAtGivesHistoricalView) {
  AppendMemory m(2);
  m.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);
  m.append(NodeId{1}, Vote::kPlus, 0, {}, 2.0);
  m.append(NodeId{0}, Vote::kPlus, 0, {}, 3.0);
  EXPECT_EQ(m.read_at(0.0).size(), 0u);
  EXPECT_EQ(m.read_at(1.5).size(), 1u);
  EXPECT_EQ(m.read_at(2.5).size(), 2u);
  EXPECT_EQ(m.read_at(3.5).size(), 3u);
}

TEST(AppendMemory, ViewsAreMonotoneInTime) {
  AppendMemory m(2);
  for (int i = 0; i < 10; ++i) {
    m.append(NodeId{static_cast<u32>(i % 2)}, Vote::kPlus, 0, {}, static_cast<SimTime>(i));
  }
  for (double t1 = 0.0; t1 < 10.0; t1 += 1.0) {
    for (double t2 = t1; t2 < 10.0; t2 += 1.0) {
      EXPECT_TRUE(m.read_at(t1).subset_of(m.read_at(t2)));
    }
  }
}

TEST(AppendMemory, RefsToExistingMessagesAccepted) {
  AppendMemory m(2);
  const MsgId a = m.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);
  const MsgId b = m.append(NodeId{1}, Vote::kPlus, 0, {a}, 2.0);
  EXPECT_EQ(m.msg(b).refs.front(), a);
}

TEST(AppendMemoryDeathTest, DanglingRefRejected) {
  AppendMemory m(2);
  EXPECT_DEATH(m.append(NodeId{0}, Vote::kPlus, 0, {MsgId{1, 0}}, 1.0), "precondition");
}

TEST(AppendMemoryDeathTest, ForeignAuthorIndexRejected) {
  AppendMemory m(2);
  EXPECT_DEATH(m.append(NodeId{5}, Vote::kPlus, 0, {}, 1.0), "precondition");
}

TEST(AppendMemoryDeathTest, GlobalTimeMonotonicity) {
  AppendMemory m(2);
  m.append(NodeId{0}, Vote::kPlus, 0, {}, 2.0);
  EXPECT_DEATH(m.append(NodeId{1}, Vote::kPlus, 0, {}, 1.0), "precondition");
}

TEST(MemoryView, ByAppendTimeOrdersGlobally) {
  AppendMemory m(3);
  m.append(NodeId{2}, Vote::kPlus, 100, {}, 1.0);
  m.append(NodeId{0}, Vote::kPlus, 200, {}, 2.0);
  m.append(NodeId{1}, Vote::kPlus, 300, {}, 3.0);
  const auto ordered = m.read().by_append_time();
  ASSERT_EQ(ordered.size(), 3u);
  EXPECT_EQ(m.msg(ordered[0]).payload, 100u);
  EXPECT_EQ(m.msg(ordered[1]).payload, 200u);
  EXPECT_EQ(m.msg(ordered[2]).payload, 300u);
}

TEST(MemoryView, ByAppendTimeTieBrokenById) {
  AppendMemory m(3);
  m.append(NodeId{2}, Vote::kPlus, 0, {}, 1.0);
  m.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);  // same time, lower author
  const auto ordered = m.read().by_append_time();
  EXPECT_EQ(ordered[0].author, 0u);
  EXPECT_EQ(ordered[1].author, 2u);
}

TEST(MemoryView, JoinAndMeet) {
  AppendMemory m(2);
  m.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);
  m.append(NodeId{1}, Vote::kPlus, 0, {}, 2.0);
  m.append(NodeId{0}, Vote::kPlus, 0, {}, 3.0);
  const MemoryView a = m.read_at(1.5);  // {1, 0}
  const MemoryView b = m.read_at(2.5);  // {1, 1}
  const MemoryView j = a.join(b);
  const MemoryView mt = a.meet(b);
  EXPECT_EQ(j.register_len(0), 1u);
  EXPECT_EQ(j.register_len(1), 1u);
  EXPECT_EQ(mt.register_len(0), 1u);
  EXPECT_EQ(mt.register_len(1), 0u);
  EXPECT_TRUE(mt.subset_of(a));
  EXPECT_TRUE(a.subset_of(j));
  EXPECT_TRUE(b.subset_of(j));
}

TEST(MemoryView, ForEachVisitsAllVisible) {
  AppendMemory m(2);
  m.append(NodeId{0}, Vote::kPlus, 1, {}, 1.0);
  m.append(NodeId{1}, Vote::kPlus, 2, {}, 2.0);
  m.append(NodeId{0}, Vote::kPlus, 3, {}, 3.0);
  u64 payload_sum = 0;
  m.read_at(2.5).for_each([&](const Message& msg) { payload_sum += msg.payload; });
  EXPECT_EQ(payload_sum, 3u);  // messages 1 and 2
}

TEST(MemoryView, ContainsRespectsPrefix) {
  AppendMemory m(2);
  const MsgId a = m.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);
  const MsgId b = m.append(NodeId{0}, Vote::kPlus, 0, {}, 2.0);
  const MemoryView early = m.read_at(1.5);
  EXPECT_TRUE(early.contains(a));
  EXPECT_FALSE(early.contains(b));
}

TEST(MemoryViewDeathTest, MsgOutsideViewRejected) {
  AppendMemory m(2);
  m.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);
  const MemoryView empty = m.read_at(0.5);
  EXPECT_DEATH((void)empty.msg(MsgId{0, 0}), "precondition");
}

}  // namespace
}  // namespace amm::am
