// Property tests for the view lattice (DESIGN.md invariant #2): random
// append schedules, then algebraic laws over sampled views.
#include <gtest/gtest.h>

#include <vector>

#include "am/memory.hpp"
#include "support/rng.hpp"

namespace amm::am {
namespace {

struct LatticeCase {
  u32 nodes;
  u32 appends;
  u64 seed;
};

class ViewLattice : public ::testing::TestWithParam<LatticeCase> {
 protected:
  void SetUp() override {
    const auto p = GetParam();
    memory_ = std::make_unique<AppendMemory>(p.nodes);
    Rng rng(p.seed);
    SimTime now = 0.0;
    for (u32 i = 0; i < p.appends; ++i) {
      now += rng.exponential(1.0);
      const auto author = NodeId{static_cast<u32>(rng.uniform_below(p.nodes))};
      // Occasionally reference a random existing message (valid by
      // construction: it exists at append time).
      std::vector<MsgId> refs;
      if (memory_->total_appends() > 0 && rng.bernoulli(0.7)) {
        const auto view = memory_->read();
        const auto ids = view.by_append_time();
        refs.push_back(ids[rng.uniform_below(ids.size())]);
      }
      memory_->append(author, rng.bernoulli(0.5) ? Vote::kPlus : Vote::kMinus, i,
                      std::move(refs), now);
      sample_times_.push_back(now + rng.uniform());
    }
  }

  std::unique_ptr<AppendMemory> memory_;
  std::vector<SimTime> sample_times_;
};

TEST_P(ViewLattice, TimeViewsFormAChain) {
  // Views taken at increasing times are totally ordered by prefix.
  for (usize i = 0; i + 1 < sample_times_.size(); i += 3) {
    const auto a = memory_->read_at(sample_times_[i]);
    const auto b = memory_->read_at(sample_times_[i + 1]);
    if (sample_times_[i] <= sample_times_[i + 1]) {
      EXPECT_TRUE(a.subset_of(b));
    } else {
      EXPECT_TRUE(b.subset_of(a));
    }
  }
}

TEST_P(ViewLattice, JoinIsCommutativeAndAbsorbing) {
  const auto a = memory_->read_at(sample_times_[sample_times_.size() / 3]);
  const auto b = memory_->read_at(sample_times_[2 * sample_times_.size() / 3]);
  EXPECT_TRUE(a.join(b) == b.join(a));
  EXPECT_TRUE(a.meet(b) == b.meet(a));
  // Absorption: a ⊔ (a ⊓ b) = a and a ⊓ (a ⊔ b) = a.
  EXPECT_TRUE(a.join(a.meet(b)) == a);
  EXPECT_TRUE(a.meet(a.join(b)) == a);
}

TEST_P(ViewLattice, JoinIsLeastUpperBound) {
  const auto a = memory_->read_at(sample_times_.front());
  const auto b = memory_->read_at(sample_times_.back());
  const auto j = a.join(b);
  EXPECT_TRUE(a.subset_of(j));
  EXPECT_TRUE(b.subset_of(j));
  const auto full = memory_->read();
  EXPECT_TRUE(j.subset_of(full));
}

TEST_P(ViewLattice, RefsPointInsideAuthorView) {
  // DESIGN.md invariant #3: every reference of every message was already in
  // the memory when the message was appended.
  const auto full = memory_->read();
  full.for_each([&](const Message& msg) {
    const auto before = memory_->read_at(msg.appended_at);
    for (const MsgId ref : msg.refs) {
      // The referenced message must have been appended strictly earlier or
      // at the same instant with a smaller id.
      EXPECT_TRUE(before.contains(ref) ||
                  (memory_->msg(ref).appended_at == msg.appended_at));
    }
  });
}

TEST_P(ViewLattice, SizeEqualsSumOfRegisterLens) {
  const auto view = memory_->read();
  usize total = 0;
  for (u32 r = 0; r < view.register_count(); ++r) total += view.register_len(r);
  EXPECT_EQ(view.size(), total);
  EXPECT_EQ(view.size(), memory_->total_appends());
}

TEST_P(ViewLattice, ByAppendTimeIsSortedAndComplete) {
  const auto view = memory_->read();
  const auto ordered = view.by_append_time();
  EXPECT_EQ(ordered.size(), view.size());
  for (usize i = 0; i + 1 < ordered.size(); ++i) {
    EXPECT_LE(view.msg(ordered[i]).appended_at, view.msg(ordered[i + 1]).appended_at);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, ViewLattice,
    ::testing::Values(LatticeCase{2, 20, 1}, LatticeCase{3, 40, 2}, LatticeCase{5, 100, 3},
                      LatticeCase{8, 200, 4}, LatticeCase{16, 100, 5}, LatticeCase{4, 300, 6}));

}  // namespace
}  // namespace amm::am
