#include "am/access.hpp"

#include <gtest/gtest.h>

namespace amm::am {
namespace {

struct Fixture {
  Fixture() : authority(4, 1.0, 1.0, Rng(1)), memory(4, vault) {}

  sched::TokenAuthority authority;
  TokenVault vault;
  GuardedMemory memory;
};

TEST(GuardedMemory, TokenHolderMayAppend) {
  Fixture f;
  const AppendToken token = f.vault.mint(f.authority);
  const MsgId id = f.memory.append(token, Vote::kPlus, 7, {}, token.issued_at);
  EXPECT_TRUE(f.memory.read().contains(id));
  EXPECT_EQ(id.author, token.holder.index);
}

TEST(GuardedMemory, ReadsAreFree) {
  Fixture f;
  EXPECT_TRUE(f.memory.read().empty());
  EXPECT_TRUE(f.memory.read_at(100.0).empty());
}

TEST(GuardedMemory, WithholdingIsLegal) {
  // Spending a token much later than its issue time models Lemma 5.5's
  // withheld private chain.
  Fixture f;
  const AppendToken token = f.vault.mint(f.authority);
  const MsgId id = f.memory.append(token, Vote::kMinus, 0, {}, token.issued_at + 50.0);
  EXPECT_TRUE(f.memory.read().contains(id));
}

TEST(GuardedMemoryDeathTest, DoubleSpendAborts) {
  Fixture f;
  const AppendToken token = f.vault.mint(f.authority);
  f.memory.append(token, Vote::kPlus, 0, {}, token.issued_at);
  EXPECT_DEATH(f.memory.append(token, Vote::kPlus, 0, {}, token.issued_at + 1.0),
               "precondition");
}

TEST(GuardedMemoryDeathTest, ForgedTokenAborts) {
  Fixture f;
  AppendToken forged;
  forged.serial = 999;
  forged.holder = NodeId{0};
  EXPECT_DEATH(f.memory.append(forged, Vote::kPlus, 0, {}, 1.0), "precondition");
}

TEST(GuardedMemoryDeathTest, TimeTravelAborts) {
  Fixture f;
  (void)f.vault.mint(f.authority);  // advance the clock
  const AppendToken token = f.vault.mint(f.authority);
  EXPECT_DEATH(f.memory.append(token, Vote::kPlus, 0, {}, token.issued_at / 2.0),
               "precondition");
}

TEST(TokenVault, OutstandingTracksMintsAndSpends) {
  Fixture f;
  EXPECT_EQ(f.vault.outstanding(), 0u);
  const AppendToken a = f.vault.mint(f.authority);
  const AppendToken b = f.vault.mint(f.authority);
  EXPECT_EQ(f.vault.outstanding(), 2u);
  EXPECT_TRUE(f.vault.is_spendable(a));
  f.vault.spend(a);
  EXPECT_FALSE(f.vault.is_spendable(a));
  EXPECT_TRUE(f.vault.is_spendable(b));
  EXPECT_EQ(f.vault.outstanding(), 1u);
}

TEST(TokenVault, SerialsAreUnique) {
  Fixture f;
  const AppendToken a = f.vault.mint(f.authority);
  const AppendToken b = f.vault.mint(f.authority);
  EXPECT_NE(a.serial, b.serial);
}

TEST(GuardedMemory, FullProtocolLoopWorks) {
  // A miniature Algorithm-4 loop through the guarded interface.
  Fixture f;
  for (int i = 0; i < 20; ++i) {
    const AppendToken token = f.vault.mint(f.authority);
    std::vector<MsgId> refs;
    const MemoryView view = f.memory.read();
    if (!view.empty()) refs.push_back(view.by_append_time().back());
    f.memory.append(token, Vote::kPlus, 0, std::move(refs), token.issued_at);
  }
  EXPECT_EQ(f.memory.read().size(), 20u);
  EXPECT_EQ(f.vault.outstanding(), 0u);
}

}  // namespace
}  // namespace amm::am
