// Sticky bits (§1.2 contrast class): write-once semantics and the
// five-line consensus protocol that the append memory provably cannot
// imitate (see the E1 checker) — the hierarchy gap the paper points at.
#include "am/sticky.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace amm::am {
namespace {

TEST(StickyBit, StartsUnset) {
  StickyBit bit;
  EXPECT_FALSE(bit.is_set());
  EXPECT_FALSE(bit.read().has_value());
}

TEST(StickyBit, FirstWriteSticks) {
  StickyBit bit;
  EXPECT_EQ(bit.set(1), 1);
  EXPECT_TRUE(bit.is_set());
  EXPECT_EQ(bit.get(), 1);
}

TEST(StickyBit, LaterWritesLose) {
  StickyBit bit;
  bit.set(0);
  EXPECT_EQ(bit.set(1), 0);  // returns the stuck value, not the attempt
  EXPECT_EQ(bit.get(), 0);
}

TEST(StickyBitDeathTest, GetBeforeSet) {
  StickyBit bit;
  EXPECT_DEATH((void)bit.get(), "precondition");
}

TEST(StickyBitDeathTest, NonBitValueRejected) {
  StickyBit bit;
  EXPECT_DEATH((void)bit.set(2), "precondition");
}

TEST(StickyConsensus, AllProposersDecideTheWinner) {
  StickyConsensus consensus;
  EXPECT_EQ(consensus.propose(1), 1);
  EXPECT_EQ(consensus.propose(0), 1);
  EXPECT_EQ(consensus.propose(0), 1);
  EXPECT_TRUE(consensus.decided());
  EXPECT_EQ(consensus.decision(), 1);
}

TEST(StickyConsensus, ValidityOnUnanimousInputs) {
  for (const u8 b : {u8{0}, u8{1}}) {
    StickyConsensus consensus;
    for (int i = 0; i < 5; ++i) EXPECT_EQ(consensus.propose(b), b);
  }
}

TEST(StickyConsensus, AgreementUnderEveryInterleaving) {
  // Property sweep: random proposal orders with random inputs; every
  // proposer must receive the same decision, equal to the first proposal.
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    StickyConsensus consensus;
    const u8 first = rng.bernoulli(0.5) ? 1 : 0;
    const u8 decision = consensus.propose(first);
    EXPECT_EQ(decision, first);
    for (int p = 0; p < 8; ++p) {
      EXPECT_EQ(consensus.propose(rng.bernoulli(0.5) ? 1 : 0), decision);
    }
  }
}

TEST(StickyConsensus, CrashToleranceIsTrivial) {
  // A proposer "crashing" (never proposing) cannot block the others —
  // propose() is wait-free. Contrast: the E1 checker shows wait-for-all
  // style protocols on append registers are not even 1-resilient.
  StickyConsensus consensus;
  EXPECT_EQ(consensus.propose(0), 0);  // one process alone decides
}

}  // namespace
}  // namespace amm::am
