#include "am/trace.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace amm::am {
namespace {

AppendMemory sample_memory() {
  AppendMemory memory(3);
  const MsgId a = memory.append(NodeId{0}, Vote::kPlus, 7, {}, 1.0);
  const MsgId b = memory.append(NodeId{1}, Vote::kMinus, 8, {a}, 2.0);
  memory.append(NodeId{2}, Vote::kPlus, 9, {a, b}, 3.0);
  return memory;
}

TEST(Trace, CaptureReplayRoundtrip) {
  const AppendMemory original = sample_memory();
  const Trace trace = capture(original);
  EXPECT_EQ(trace.node_count, 3u);
  EXPECT_EQ(trace.entries.size(), 3u);

  const AppendMemory copy = replay(trace);
  EXPECT_EQ(copy.total_appends(), original.total_appends());
  const Trace again = capture(copy);
  EXPECT_EQ(trace, again);
}

TEST(Trace, SerializationRoundtrip) {
  const Trace trace = capture(sample_memory());
  const std::string text = to_string(trace);
  Trace parsed;
  ASSERT_TRUE(from_string(text, &parsed));
  EXPECT_EQ(parsed, trace);
}

TEST(Trace, TextFormatIsDocumentedShape) {
  const std::string text = to_string(capture(sample_memory()));
  EXPECT_NE(text.find("amm-trace 1 3"), std::string::npos);
  EXPECT_NE(text.find("append 0 +1 7 1"), std::string::npos);
  EXPECT_NE(text.find("0:0 1:0"), std::string::npos);  // the two refs of msg c
}

TEST(Trace, EmptyMemory) {
  AppendMemory memory(2);
  const Trace trace = capture(memory);
  EXPECT_TRUE(trace.entries.empty());
  Trace parsed;
  ASSERT_TRUE(from_string(to_string(trace), &parsed));
  EXPECT_EQ(parsed, trace);
  EXPECT_EQ(replay(trace).total_appends(), 0u);
}

TEST(Trace, MalformedInputsRejected) {
  Trace out;
  EXPECT_FALSE(from_string("", &out));
  EXPECT_FALSE(from_string("bogus 1 2\n", &out));
  EXPECT_FALSE(from_string("amm-trace 2 3\n", &out));  // unknown version
  EXPECT_FALSE(from_string("amm-trace 1 0\n", &out));  // zero nodes
  EXPECT_FALSE(from_string("amm-trace 1 2\nappend 5 +1 0 1.0\n", &out));  // bad author
  EXPECT_FALSE(from_string("amm-trace 1 2\nappend 0 ugh 0 1.0\n", &out));  // bad value
  EXPECT_FALSE(from_string("amm-trace 1 2\nappend 0 +1 0 1.0 zz\n", &out));  // bad ref
}

TEST(Trace, ReplayOfRandomRunMatches) {
  // Round-trip a larger random history through text and back.
  AppendMemory memory(5);
  Rng rng(11);
  SimTime now = 0.0;
  std::vector<MsgId> ids;
  for (int i = 0; i < 200; ++i) {
    now += rng.exponential(2.0);
    std::vector<MsgId> refs;
    if (!ids.empty() && rng.bernoulli(0.8)) refs.push_back(ids[rng.uniform_below(ids.size())]);
    ids.push_back(memory.append(NodeId{static_cast<u32>(rng.uniform_below(5))},
                                rng.bernoulli(0.5) ? Vote::kPlus : Vote::kMinus,
                                static_cast<u64>(i), std::move(refs), now));
  }
  Trace parsed;
  ASSERT_TRUE(from_string(to_string(capture(memory)), &parsed));
  const AppendMemory copy = replay(parsed);
  EXPECT_EQ(copy.total_appends(), 200u);
  EXPECT_EQ(capture(copy), parsed);
}

TEST(TraceDeathTest, ReplayRejectsModelViolations) {
  Trace trace;
  trace.node_count = 2;
  TraceEntry e;
  e.author = 0;
  e.time = 1.0;
  e.refs.push_back(MsgId{1, 0});  // dangling reference
  trace.entries.push_back(e);
  EXPECT_DEATH((void)replay(trace), "precondition");
}

}  // namespace
}  // namespace amm::am
