#include "am/register.hpp"

#include <gtest/gtest.h>

namespace amm::am {
namespace {

TEST(Register, StartsEmpty) {
  Register r(3);
  EXPECT_EQ(r.owner(), 3u);
  EXPECT_EQ(r.size(), 0u);
  EXPECT_TRUE(r.read().empty());
}

TEST(Register, AppendAssignsSequentialIds) {
  Register r(1);
  const MsgId a = r.append(Vote::kPlus, 0, {}, 1.0);
  const MsgId b = r.append(Vote::kMinus, 0, {}, 2.0);
  EXPECT_EQ(a, (MsgId{1, 0}));
  EXPECT_EQ(b, (MsgId{1, 1}));
  EXPECT_EQ(r.size(), 2u);
}

TEST(Register, ReadReturnsCompleteLog) {
  Register r(0);
  r.append(Vote::kPlus, 10, {}, 0.5);
  r.append(Vote::kMinus, 20, {}, 0.7);
  const auto log = r.read();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].payload, 10u);
  EXPECT_EQ(log[1].payload, 20u);
  EXPECT_EQ(log[0].value, Vote::kPlus);
  EXPECT_EQ(log[1].value, Vote::kMinus);
}

TEST(Register, AtRetrievesBySeq) {
  Register r(0);
  r.append(Vote::kPlus, 1, {}, 0.0);
  r.append(Vote::kPlus, 2, {}, 0.0);
  EXPECT_EQ(r.at(1).payload, 2u);
}

TEST(Register, RefsArePreserved) {
  Register r(2);
  r.append(Vote::kPlus, 0, {MsgId{0, 0}, MsgId{1, 5}}, 1.0);
  ASSERT_EQ(r.at(0).refs.size(), 2u);
  EXPECT_EQ(r.at(0).refs[1], (MsgId{1, 5}));
}

TEST(Register, SizeAtIsStrictlyBefore) {
  Register r(0);
  r.append(Vote::kPlus, 0, {}, 1.0);
  r.append(Vote::kPlus, 0, {}, 2.0);
  r.append(Vote::kPlus, 0, {}, 2.0);  // same instant
  r.append(Vote::kPlus, 0, {}, 3.0);
  EXPECT_EQ(r.size_at(0.5), 0u);
  EXPECT_EQ(r.size_at(1.0), 0u);  // strictly before
  EXPECT_EQ(r.size_at(1.5), 1u);
  EXPECT_EQ(r.size_at(2.0), 1u);
  EXPECT_EQ(r.size_at(2.5), 3u);
  EXPECT_EQ(r.size_at(100.0), 4u);
}

TEST(RegisterDeathTest, TimeMustBeMonotone) {
  Register r(0);
  r.append(Vote::kPlus, 0, {}, 5.0);
  EXPECT_DEATH(r.append(Vote::kPlus, 0, {}, 4.0), "precondition");
}

TEST(RegisterDeathTest, AtOutOfRange) {
  Register r(0);
  EXPECT_DEATH((void)r.at(0), "precondition");
}

}  // namespace
}  // namespace amm::am
