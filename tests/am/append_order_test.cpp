// The k-way merge behind MemoryView::by_append_time() and the incremental
// AppendOrderCursor must reproduce the old full-sort semantics *exactly*,
// including the stable by-id tie-break among equal timestamps.
#include "am/order.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "am/memory.hpp"
#include "support/rng.hpp"

namespace amm::am {
namespace {

/// Reference implementation: the pre-merge by_append_time() — collect every
/// visible id and stable-sort by (appended_at, id). Kept verbatim in the
/// test so the merge is checked against the original contract, not against
/// itself.
std::vector<MsgId> sort_reference(const MemoryView& view) {
  std::vector<MsgId> ids;
  ids.reserve(view.size());
  for (u32 r = 0; r < view.register_count(); ++r) {
    for (u32 s = 0; s < view.register_len(r); ++s) ids.push_back(MsgId{r, s});
  }
  std::stable_sort(ids.begin(), ids.end(), [&](MsgId a, MsgId b) {
    const SimTime ta = view.msg(a).appended_at;
    const SimTime tb = view.msg(b).appended_at;
    if (ta != tb) return ta < tb;
    return a < b;
  });
  return ids;
}

/// Random trace with *non-decreasing* times and deliberate repeats, so
/// equal-timestamp tie-breaks are actually exercised (the memory accepts
/// now == last_append_time()).
void random_trace(AppendMemory& memory, u32 n, usize appends, Rng& rng) {
  SimTime now = 0.0;
  for (usize i = 0; i < appends; ++i) {
    if (!rng.bernoulli(0.35)) now += 0.5;  // ~35% of appends share a timestamp
    const auto author = NodeId{static_cast<u32>(rng.uniform_below(n))};
    memory.append(author, Vote::kPlus, /*payload=*/0, /*refs=*/{}, now);
  }
}

TEST(AppendOrder, MergeMatchesSortReferenceOnRandomTraces) {
  Rng seed_rng(20200715);
  for (int trial = 0; trial < 30; ++trial) {
    Rng rng = Rng::for_stream(seed_rng.next(), static_cast<u64>(trial));
    const u32 n = 1 + static_cast<u32>(rng.uniform_below(8));
    AppendMemory memory(n);
    random_trace(memory, n, rng.uniform_below(200), rng);

    const MemoryView view = memory.read();
    EXPECT_EQ(view.by_append_time(), sort_reference(view));

    // Partial views (register-wise random truncation) must agree too.
    std::vector<u32> lens = view.lens();
    for (u32& len : lens) {
      if (len > 0) len = static_cast<u32>(rng.uniform_below(len + 1));
    }
    const MemoryView partial(&memory, lens);
    EXPECT_EQ(partial.by_append_time(), sort_reference(partial));
  }
}

TEST(AppendOrder, EqualTimestampsBreakTiesById) {
  AppendMemory memory(3);
  // Three appends at the same instant, issued in register order 2, 0, 1:
  // the order must come out by id, not by append order.
  memory.append(NodeId{2}, Vote::kPlus, 0, {}, 1.0);
  memory.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);
  memory.append(NodeId{1}, Vote::kPlus, 0, {}, 1.0);
  const auto order = memory.read().by_append_time();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], (MsgId{0, 0}));
  EXPECT_EQ(order[1], (MsgId{1, 0}));
  EXPECT_EQ(order[2], (MsgId{2, 0}));
}

TEST(AppendOrder, EmptyViewAndEmptyDelta) {
  AppendMemory memory(4);
  EXPECT_TRUE(memory.read().by_append_time().empty());
  EXPECT_TRUE(merge_append_order(memory, {}, {0, 0, 0, 0}).empty());
  memory.append(NodeId{1}, Vote::kPlus, 0, {}, 1.0);
  // from == to: empty delta.
  EXPECT_TRUE(merge_append_order(memory, {0, 1, 0, 0}, {0, 1, 0, 0}).empty());
}

TEST(AppendOrder, MergeDeltaEqualsOrderSuffix) {
  Rng rng(11);
  AppendMemory memory(5);
  random_trace(memory, 5, 120, rng);
  const MemoryView full = memory.read();
  const std::vector<MsgId> whole = full.by_append_time();

  // Splitting the registers at an arbitrary grown-view boundary: prefix
  // merge + delta merge must concatenate to the whole IF the boundary is a
  // time cut (everything in the prefix ordered before everything after).
  // Use a boundary defined by a time horizon so that holds by construction.
  const SimTime cut = 30.0;
  std::vector<u32> at_cut(full.register_count(), 0);
  for (u32 r = 0; r < full.register_count(); ++r) {
    u32 len = 0;
    while (len < full.register_len(r) && full.msg(MsgId{r, len}).appended_at < cut) ++len;
    at_cut[r] = len;
  }
  std::vector<MsgId> glued = merge_append_order(memory, {}, at_cut);
  const std::vector<MsgId> delta = merge_append_order(memory, at_cut, full.lens());
  glued.insert(glued.end(), delta.begin(), delta.end());
  EXPECT_EQ(glued, whole);
}

TEST(AppendOrderCursor, BatchConcatenationEqualsFullOrder) {
  Rng seed_rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    Rng rng = Rng::for_stream(seed_rng.next(), static_cast<u64>(trial));
    const u32 n = 1 + static_cast<u32>(rng.uniform_below(6));
    AppendMemory memory(n);
    AppendOrderCursor cursor(memory);
    std::vector<MsgId> streamed;

    const usize appends = 50 + rng.uniform_below(150);
    SimTime now = 0.0;
    for (usize i = 0; i < appends; ++i) {
      if (!rng.bernoulli(0.3)) now += 0.5;
      memory.append(NodeId{static_cast<u32>(rng.uniform_below(n))}, Vote::kPlus, 0, {}, now);
      // Drain at irregular intervals with the protocol watermark: the
      // latest append time is <= every future append time.
      if (rng.bernoulli(0.4)) {
        cursor.drain(memory.read(), memory.last_append_time(), streamed);
      }
    }
    const MemoryView view = memory.read();
    cursor.finish(view, streamed);
    EXPECT_EQ(cursor.emitted(), streamed.size());
    EXPECT_EQ(streamed, view.by_append_time());
  }
}

TEST(AppendOrderCursor, WatermarkHoldsBackTies) {
  // Messages at exactly the watermark must NOT be emitted: a later append
  // with the same timestamp but smaller id could still arrive and would
  // have to precede them.
  AppendMemory memory(2);
  memory.append(NodeId{1}, Vote::kPlus, 0, {}, 1.0);
  AppendOrderCursor cursor(memory);
  std::vector<MsgId> out;
  EXPECT_EQ(cursor.drain(memory.read(), 1.0, out), 0u);
  EXPECT_TRUE(out.empty());

  memory.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);  // same instant, smaller id
  cursor.finish(memory.read(), out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (MsgId{0, 0}));
  EXPECT_EQ(out[1], (MsgId{1, 0}));
}

TEST(AppendOrderCursor, DrainOnGrowingPartialViews) {
  // The cursor accepts any register-wise growing view sequence, not just
  // full reads — as long as each watermark lower-bounds the append times of
  // everything still hidden (the shape a stale `read_at` observer sees).
  AppendMemory memory(3);
  const SimTime times[] = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const u32 who[] = {0, 1, 2, 0, 1, 2};
  for (usize i = 0; i < 6; ++i) {
    memory.append(NodeId{who[i]}, Vote::kPlus, 0, {}, times[i]);
  }
  AppendOrderCursor cursor(memory);
  std::vector<MsgId> out;
  // Stale observer at horizon 3: sees t=1 and t=2 only.
  cursor.drain(MemoryView(&memory, {1, 1, 0}), 3.0, out);
  EXPECT_EQ(out, (std::vector<MsgId>{MsgId{0, 0}, MsgId{1, 0}}));
  // Horizon 4: t=3 becomes visible and drains.
  cursor.drain(MemoryView(&memory, {1, 1, 1}), 4.0, out);
  EXPECT_EQ(out, (std::vector<MsgId>{MsgId{0, 0}, MsgId{1, 0}, MsgId{2, 0}}));
  cursor.finish(memory.read(), out);
  EXPECT_EQ(out, memory.read().by_append_time());
  EXPECT_EQ(cursor.emitted(), 6u);
}

}  // namespace
}  // namespace amm::am
