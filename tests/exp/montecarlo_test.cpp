// The Monte-Carlo harness must be reproducible regardless of thread count
// and scheduling — the property everything in EXPERIMENTS.md rests on.
#include "exp/montecarlo.hpp"

#include <gtest/gtest.h>

namespace amm::exp {
namespace {

TEST(EstimateRate, CountsExactly) {
  ThreadPool pool(2);
  const auto est = estimate_rate(pool, 1, 1000, [](usize i, Rng&) { return i % 4 == 0; });
  EXPECT_EQ(est.trials(), 1000u);
  EXPECT_EQ(est.successes(), 250u);
}

TEST(EstimateRate, SeedReproducibleAcrossThreadCounts) {
  auto run = [](unsigned threads) {
    ThreadPool pool(threads);
    return estimate_rate(pool, 42, 2000, [](usize, Rng& rng) { return rng.bernoulli(0.3); });
  };
  const auto a = run(1);
  const auto b = run(4);
  EXPECT_EQ(a.successes(), b.successes());
  EXPECT_EQ(a.trials(), b.trials());
}

TEST(EstimateRate, DifferentSeedsDiffer) {
  ThreadPool pool(2);
  const auto a =
      estimate_rate(pool, 1, 2000, [](usize, Rng& rng) { return rng.bernoulli(0.5); });
  const auto b =
      estimate_rate(pool, 2, 2000, [](usize, Rng& rng) { return rng.bernoulli(0.5); });
  EXPECT_NE(a.successes(), b.successes());
}

TEST(EstimateRate, RateConvergesToTruth) {
  ThreadPool pool(4);
  const auto est =
      estimate_rate(pool, 3, 20'000, [](usize, Rng& rng) { return rng.bernoulli(0.7); });
  EXPECT_NEAR(est.rate(), 0.7, 0.02);
  const auto [lo, hi] = est.wilson95();
  EXPECT_LT(lo, 0.7);
  EXPECT_GT(hi, 0.7);
}

TEST(CollectStats, MeanMatchesSequential) {
  auto run = [](unsigned threads) {
    ThreadPool pool(threads);
    return collect_stats(pool, 9, 5000, [](usize, Rng& rng) { return rng.normal() * 2.0 + 1.0; });
  };
  const auto a = run(1);
  const auto b = run(3);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_NEAR(a.mean(), b.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), b.variance(), 1e-9);
}

TEST(CollectStats, ZeroTrials) {
  ThreadPool pool(2);
  const auto stats = collect_stats(pool, 1, 0, [](usize, Rng&) { return 1.0; });
  EXPECT_EQ(stats.count(), 0u);
}

TEST(CollectStats, SingleTrial) {
  ThreadPool pool(2);
  const auto stats = collect_stats(pool, 1, 1, [](usize, Rng&) { return 5.0; });
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
}

}  // namespace
}  // namespace amm::exp
