// The Monte-Carlo harness must be reproducible regardless of thread count
// and scheduling — the property everything in EXPERIMENTS.md rests on.
#include "exp/montecarlo.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace amm::exp {
namespace {

TEST(EstimateRate, CountsExactly) {
  ThreadPool pool(2);
  const auto est = estimate_rate(pool, 1, 1000, [](usize i, Rng&) { return i % 4 == 0; });
  EXPECT_EQ(est.trials(), 1000u);
  EXPECT_EQ(est.successes(), 250u);
}

TEST(EstimateRate, SeedReproducibleAcrossThreadCounts) {
  auto run = [](unsigned threads) {
    ThreadPool pool(threads);
    return estimate_rate(pool, 42, 2000, [](usize, Rng& rng) { return rng.bernoulli(0.3); });
  };
  const auto a = run(1);
  const auto b = run(4);
  EXPECT_EQ(a.successes(), b.successes());
  EXPECT_EQ(a.trials(), b.trials());
}

TEST(EstimateRate, DifferentSeedsDiffer) {
  ThreadPool pool(2);
  const auto a =
      estimate_rate(pool, 1, 2000, [](usize, Rng& rng) { return rng.bernoulli(0.5); });
  const auto b =
      estimate_rate(pool, 2, 2000, [](usize, Rng& rng) { return rng.bernoulli(0.5); });
  EXPECT_NE(a.successes(), b.successes());
}

TEST(EstimateRate, RateConvergesToTruth) {
  ThreadPool pool(4);
  const auto est =
      estimate_rate(pool, 3, 20'000, [](usize, Rng& rng) { return rng.bernoulli(0.7); });
  EXPECT_NEAR(est.rate(), 0.7, 0.02);
  const auto [lo, hi] = est.wilson95();
  EXPECT_LT(lo, 0.7);
  EXPECT_GT(hi, 0.7);
}

TEST(CollectStats, MeanMatchesSequential) {
  auto run = [](unsigned threads) {
    ThreadPool pool(threads);
    return collect_stats(pool, 9, 5000, [](usize, Rng& rng) { return rng.normal() * 2.0 + 1.0; });
  };
  const auto a = run(1);
  const auto b = run(3);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_NEAR(a.mean(), b.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), b.variance(), 1e-9);
}

// Dynamic scheduling: every trial index runs exactly once even when the
// workers race on the shared counter.
TEST(EstimateRate, EveryIndexRunsExactlyOnce) {
  constexpr usize kTrials = 4096;
  std::vector<std::atomic<u32>> hits(kTrials);
  ThreadPool pool(4);
  const auto est = estimate_rate(pool, 7, kTrials, [&](usize i, Rng&) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
    return true;
  });
  EXPECT_EQ(est.trials(), kTrials);
  for (usize i = 0; i < kTrials; ++i) {
    EXPECT_EQ(hits[i].load(), 1u) << "trial " << i;
  }
}

// Heavily skewed trial durations (one pathological straggler plus a block
// of slow trials at the front — the shape a withholding adversary produces)
// must not change counts or reproducibility. Under the old static chunking
// the slow prefix landed in one chunk; dynamic scheduling spreads it.
TEST(EstimateRate, SkewedTrialDurationsStayExact) {
  auto run = [](unsigned threads) {
    ThreadPool pool(threads);
    return estimate_rate(pool, 11, 64, [](usize i, Rng& rng) {
      if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(20));
      if (i < 8) std::this_thread::sleep_for(std::chrono::milliseconds(2));
      return rng.bernoulli(0.5);
    });
  };
  const auto a = run(1);
  const auto b = run(4);
  EXPECT_EQ(a.trials(), 64u);
  EXPECT_EQ(a.successes(), b.successes());
}

TEST(CollectStats, SkewedTrialDurationsMatchSequential) {
  auto run = [](unsigned threads) {
    ThreadPool pool(threads);
    return collect_stats(pool, 13, 64, [](usize i, Rng& rng) {
      if (i % 16 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(5));
      return rng.normal();
    });
  };
  const auto a = run(1);
  const auto b = run(3);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_NEAR(a.mean(), b.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), b.variance(), 1e-9);
}

TEST(CollectStats, ZeroTrials) {
  ThreadPool pool(2);
  const auto stats = collect_stats(pool, 1, 0, [](usize, Rng&) { return 1.0; });
  EXPECT_EQ(stats.count(), 0u);
}

TEST(CollectStats, SingleTrial) {
  ThreadPool pool(2);
  const auto stats = collect_stats(pool, 1, 1, [](usize, Rng&) { return 5.0; });
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
}

}  // namespace
}  // namespace amm::exp
