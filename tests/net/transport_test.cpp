// In-process TCP transport tests: a real loopback cluster of TcpTransports
// pumped round-robin from the test thread (the transport is a
// single-threaded reactor, so driving several of them from one thread is
// the supported composition). The same AbdNode code that the simulated
// Network drives runs here over real sockets — the transport seam's
// correctness condition.
#include "net/transport.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <memory>

#include "mp/abd.hpp"
#include "net/decision.hpp"

namespace amm::net {
namespace {

using namespace std::chrono_literals;

/// A loopback cluster on ephemeral ports, fully wired.
struct TcpCluster {
  explicit TcpCluster(u32 n, u64 seed = 1) : keys(n, seed) {
    for (u32 i = 0; i < n; ++i) {
      TransportConfig config;
      config.self = NodeId{i};
      config.peers.assign(n, Endpoint{"127.0.0.1", 0});
      config.backoff_base = 5ms;  // tests should not wait out production backoff
      config.backoff_max = 50ms;
      transports.push_back(
          std::make_unique<TcpTransport>(config, keys, Rng::for_stream(seed, i)));
      EXPECT_TRUE(transports.back()->start());
    }
    for (u32 i = 0; i < n; ++i) {
      for (u32 j = 0; j < n; ++j) {
        transports[i]->set_peer_endpoint(NodeId{j},
                                         Endpoint{"127.0.0.1", transports[j]->listen_port()});
      }
    }
    for (auto& transport : transports) transport->connect_peers();
  }

  /// Pumps every transport until `done` or the deadline; returns done().
  bool pump_until(const std::function<bool()>& done,
                  std::chrono::milliseconds budget = 5000ms) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    while (std::chrono::steady_clock::now() < deadline) {
      for (auto& transport : transports) transport->poll_once(1ms);
      if (done()) return true;
    }
    return done();
  }

  crypto::KeyRegistry keys;
  std::vector<std::unique_ptr<TcpTransport>> transports;
};

TEST(TcpTransport, AbdAppendAndReadOverRealSockets) {
  TcpCluster cluster(3);
  std::vector<std::unique_ptr<mp::AbdNode>> nodes;
  for (u32 i = 0; i < 3; ++i) {
    nodes.push_back(std::make_unique<mp::AbdNode>(NodeId{i}, *cluster.transports[i],
                                                  cluster.keys));
  }

  bool append_done = false;
  nodes[0]->begin_append(42, [&] { append_done = true; });
  ASSERT_TRUE(cluster.pump_until([&] { return append_done; }));

  std::vector<mp::SignedAppend> result;
  bool read_done = false;
  nodes[2]->begin_read([&](const std::vector<mp::SignedAppend>& view) {
    result = view;
    read_done = true;
  });
  ASSERT_TRUE(cluster.pump_until([&] { return read_done; }));
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].value, 42);
  EXPECT_EQ(result[0].author, NodeId{0});

  // §4 accounting: an append is one broadcast (n messages incl. self).
  EXPECT_GE(cluster.transports[0]->messages_sent(), 3u);
}

TEST(TcpTransport, PipelinedAppendsAndDeltaReadsOverRealSockets) {
  // Many appends issued back-to-back without waiting: the pipeline keeps
  // several in flight over the sockets and all complete; a subsequent read
  // is served from frontiers (delta mode is the default config).
  TcpCluster cluster(3);
  std::vector<std::unique_ptr<mp::AbdNode>> nodes;
  for (u32 i = 0; i < 3; ++i) {
    nodes.push_back(std::make_unique<mp::AbdNode>(NodeId{i}, *cluster.transports[i],
                                                  cluster.keys));
  }

  constexpr u32 kAppends = 48;
  u32 completed = 0;
  for (u32 v = 0; v < kAppends; ++v) {
    nodes[0]->begin_append(static_cast<i64>(v), [&] { ++completed; });
  }
  EXPECT_GT(nodes[0]->appends_in_flight(), 1u);  // actually pipelined
  EXPECT_EQ(nodes[0]->appends_in_flight() + nodes[0]->appends_queued(), kAppends);
  ASSERT_TRUE(cluster.pump_until([&] { return completed == kAppends; }));

  // Warm read syncs node 2's view; the second read's replies are deltas.
  for (int round = 0; round < 2; ++round) {
    std::vector<mp::SignedAppend> result;
    bool read_done = false;
    nodes[2]->begin_read([&](const std::vector<mp::SignedAppend>& view) {
      result = view;
      read_done = true;
    });
    ASSERT_TRUE(cluster.pump_until([&] { return read_done; }));
    ASSERT_EQ(result.size(), kAppends);
    // Submission order is preserved per author (the §1.1 register order).
    for (const mp::SignedAppend& rec : result) {
      EXPECT_EQ(static_cast<i64>(rec.seq), rec.value);
    }
  }
  u64 delta_served = 0, records_sent = 0;
  for (const auto& node : nodes) {
    delta_served += node->stats().reads_served_delta;
    records_sent += node->stats().read_records_sent;
  }
  EXPECT_GT(delta_served, 0u);
  // The second read was fully synced: far fewer records shipped than two
  // full-view reads (2 reads x 3 replies x 48 records = 288) would cost.
  EXPECT_LT(records_sent, 2u * 3u * kAppends);
}

TEST(TcpTransport, AppendCompletesWithMinorityDown) {
  // 3-node cluster, one transport never started its node: quorum 2 of 3
  // still completes — the Lemma 4.2 liveness condition on real sockets.
  TcpCluster cluster(3);
  std::vector<std::unique_ptr<mp::AbdNode>> nodes;
  for (u32 i = 0; i < 2; ++i) {
    nodes.push_back(std::make_unique<mp::AbdNode>(NodeId{i}, *cluster.transports[i],
                                                  cluster.keys));
  }
  cluster.transports[2]->stop();  // node 2 is dead

  bool append_done = false;
  nodes[0]->begin_append(7, [&] { append_done = true; });
  EXPECT_TRUE(cluster.pump_until([&] { return append_done; }));
}

TEST(TcpTransport, ReconnectsAfterKickAndDeliversQueuedFrames) {
  TcpCluster cluster(2);
  std::vector<std::unique_ptr<mp::AbdNode>> nodes;
  for (u32 i = 0; i < 2; ++i) {
    nodes.push_back(std::make_unique<mp::AbdNode>(NodeId{i}, *cluster.transports[i],
                                                  cluster.keys));
  }
  ASSERT_TRUE(
      cluster.pump_until([&] { return cluster.transports[0]->connected_outbound() == 1; }));

  cluster.transports[0]->kick_outbound();
  cluster.transports[1]->kick_outbound();

  // An append begun while the links are down must still complete: frames
  // queue per peer and flush after the backoff redial.
  bool append_done = false;
  nodes[0]->begin_append(5, [&] { append_done = true; });
  ASSERT_TRUE(cluster.pump_until([&] { return append_done; }));
  EXPECT_GE(cluster.transports[0]->reconnects(), 1u);
}

TEST(TcpTransport, UnauthenticatedHelloDropped) {
  TcpCluster cluster(2, /*seed=*/1);
  // An impostor with a *different* key universe dials node 0 and claims to
  // be node 1. Its hello signature cannot verify against the cluster's
  // registry, so the session must die with auth_rejects == 1.
  crypto::KeyRegistry foreign_keys(2, /*seed=*/999);
  TransportConfig config;
  config.self = NodeId{1};
  config.peers.assign(2, Endpoint{"127.0.0.1", 0});
  config.backoff_base = 5ms;
  TcpTransport impostor(config, foreign_keys, Rng(3));
  ASSERT_TRUE(impostor.start());
  impostor.set_peer_endpoint(NodeId{0},
                             Endpoint{"127.0.0.1", cluster.transports[0]->listen_port()});
  impostor.connect_peers();

  mp::WireMessage probe;
  probe.kind = mp::WireMessage::Kind::kReadReq;
  probe.read_id = 1;
  impostor.send(NodeId{1}, NodeId{0}, probe);

  u64 handler_calls = 0;
  cluster.transports[0]->attach(NodeId{0},
                                [&](NodeId, const mp::WireMessage&) { ++handler_calls; });

  const auto deadline = std::chrono::steady_clock::now() + 1000ms;
  while (std::chrono::steady_clock::now() < deadline &&
         cluster.transports[0]->auth_rejects() == 0) {
    impostor.poll_once(1ms);
    cluster.transports[0]->poll_once(1ms);
  }
  EXPECT_GE(cluster.transports[0]->auth_rejects(), 1u);
  EXPECT_EQ(handler_calls, 0u);
}

TEST(TcpTransport, ForgedAppendRejectedOnTheWire) {
  // A correctly authenticated peer injecting a record with a forged author
  // signature: the transport drops the message before the handler runs
  // (Lemma 4.1 enforced at the wire).
  TcpCluster cluster(2);
  u64 delivered = 0;
  cluster.transports[0]->attach(NodeId{0},
                                [&](NodeId, const mp::WireMessage&) { ++delivered; });

  mp::WireMessage forged;
  forged.kind = mp::WireMessage::Kind::kAppend;
  forged.append.author = NodeId{0};  // claims node 0 authored it
  forged.append.seq = 1;
  forged.append.value = -42;
  forged.append.sig = cluster.keys.sign(NodeId{1}, forged.append.digest());  // signer != author
  cluster.transports[1]->send(NodeId{1}, NodeId{0}, forged);

  mp::WireMessage valid;
  valid.kind = mp::WireMessage::Kind::kReadReq;
  valid.read_id = 9;
  cluster.transports[1]->send(NodeId{1}, NodeId{0}, valid);

  ASSERT_TRUE(cluster.pump_until([&] { return delivered > 0; }));
  EXPECT_EQ(delivered, 1u);  // the read request, never the forgery
  EXPECT_GE(cluster.transports[0]->sig_rejects(), 1u);
}

TEST(TcpTransport, DecisionRuleAgreesAcrossNodes) {
  // Replicate a handful of appends, then apply Algorithm 6's decision rule
  // at two different nodes: identical views ⇒ identical decisions.
  TcpCluster cluster(3);
  std::vector<std::unique_ptr<mp::AbdNode>> nodes;
  for (u32 i = 0; i < 3; ++i) {
    nodes.push_back(std::make_unique<mp::AbdNode>(NodeId{i}, *cluster.transports[i],
                                                  cluster.keys));
  }
  for (int v : {1, -2, 3, -4, 5}) {
    bool done = false;
    nodes[static_cast<u32>(v > 0 ? 0 : 1)]->begin_append(v, [&] { done = true; });
    ASSERT_TRUE(cluster.pump_until([&] { return done; }));
  }

  std::vector<Decision> decisions;
  for (const u32 reader : {0u, 2u}) {
    bool done = false;
    nodes[reader]->begin_read([&](const std::vector<mp::SignedAppend>& view) {
      decisions.push_back(decide_first_k(view, 5));
      done = true;
    });
    ASSERT_TRUE(cluster.pump_until([&] { return done; }));
  }
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_EQ(decisions[0].sign, decisions[1].sign);
  EXPECT_EQ(decisions[0].decided_over, 5u);
  EXPECT_NE(decisions[0].sign, 0);
}

}  // namespace
}  // namespace amm::net
