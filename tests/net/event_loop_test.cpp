// EventLoop backend tests: unit semantics of both readiness backends, the
// timeout-clamp regression, writev batching and two-class flush ordering,
// per-peer backpressure, and the cross-backend parity suite — the same
// transport workload must deliver the same per-author message sequences
// and the same final ABD views whether epoll or poll is underneath.
#include "net/event_loop.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>

#include "mp/abd.hpp"
#include "net/peer.hpp"
#include "net/transport.hpp"

namespace amm::net {
namespace {

using namespace std::chrono_literals;

/// Every backend constructible on this platform (poll everywhere, epoll
/// where the platform has it) — the unit tests run under each.
std::vector<LoopBackend> available_backends() {
  std::vector<LoopBackend> backends{LoopBackend::kPoll};
  if (EventLoop::make(LoopBackend::kEpoll)) backends.push_back(LoopBackend::kEpoll);
  return backends;
}

struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  int reader() const { return fds[0]; }
  int writer() const { return fds[1]; }
  void write_byte() const { ASSERT_EQ(::write(writer(), "x", 1), 1); }
};

TEST(EventLoop, ParseBackendNames) {
  EXPECT_EQ(parse_loop_backend("poll"), LoopBackend::kPoll);
  EXPECT_EQ(parse_loop_backend("epoll"), LoopBackend::kEpoll);
  EXPECT_EQ(parse_loop_backend("auto"), LoopBackend::kAuto);
  EXPECT_EQ(parse_loop_backend("bogus"), LoopBackend::kAuto);
}

TEST(EventLoop, AddModifyRemoveAndReadiness) {
  for (const LoopBackend backend : available_backends()) {
    const auto loop = EventLoop::make(backend);
    ASSERT_TRUE(loop);
    Pipe pipe;
    EXPECT_TRUE(loop->add(pipe.reader(), 7, EventLoop::kRead));
    EXPECT_FALSE(loop->add(pipe.reader(), 8, EventLoop::kRead));  // one reg per fd
    EXPECT_EQ(loop->watched(), 1u);

    std::vector<ReadyEvent> events;
    EXPECT_EQ(loop->wait(0ms, &events), 0) << loop->name();

    pipe.write_byte();
    ASSERT_EQ(loop->wait(1000ms, &events), 1) << loop->name();
    EXPECT_EQ(events[0].token, 7u);
    EXPECT_TRUE(events[0].readable);
    EXPECT_FALSE(events[0].writable);

    // Interest masked off: the pending byte no longer surfaces.
    EXPECT_TRUE(loop->modify(pipe.reader(), 7, 0));
    EXPECT_EQ(loop->wait(0ms, &events), 0) << loop->name();

    loop->remove(pipe.reader());
    EXPECT_EQ(loop->watched(), 0u);
    EXPECT_EQ(loop->wait(0ms, &events), 0) << loop->name();
    EXPECT_FALSE(loop->modify(pipe.reader(), 7, EventLoop::kRead));
  }
}

TEST(EventLoop, TokensSurviveFdReuse) {
  // The loop reports tokens, not fds: after remove+close, a new
  // registration that recycles the same descriptor number must surface
  // with the *new* token.
  for (const LoopBackend backend : available_backends()) {
    const auto loop = EventLoop::make(backend);
    ASSERT_TRUE(loop);
    auto first = std::make_unique<Pipe>();
    const int old_fd = first->reader();
    EXPECT_TRUE(loop->add(first->reader(), 1, EventLoop::kRead));
    loop->remove(first->reader());
    first.reset();  // closes the fds; the next pipe() typically reuses them

    Pipe second;
    EXPECT_TRUE(loop->add(second.reader(), 2, EventLoop::kRead));
    second.write_byte();
    std::vector<ReadyEvent> events;
    ASSERT_EQ(loop->wait(1000ms, &events), 1) << loop->name();
    EXPECT_EQ(events[0].token, 2u) << "stale registration for fd " << old_fd;
    loop->remove(second.reader());
  }
}

TEST(EventLoop, HugeTimeoutDoesNotTruncate) {
  // Regression: the old reactor passed static_cast<int>(wait_ms) straight
  // to ::poll, so a wait beyond INT_MAX ms went negative — an infinite
  // poll. A ready fd must surface immediately no matter how large the
  // timeout.
  for (const LoopBackend backend : available_backends()) {
    const auto loop = EventLoop::make(backend);
    ASSERT_TRUE(loop);
    Pipe pipe;
    ASSERT_TRUE(loop->add(pipe.reader(), 1, EventLoop::kRead));
    pipe.write_byte();
    std::vector<ReadyEvent> events;
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_EQ(loop->wait(std::chrono::milliseconds(i64{1} << 31), &events), 1) << loop->name();
    EXPECT_LT(std::chrono::steady_clock::now() - t0, 5s);
    loop->remove(pipe.reader());
  }
}

TEST(EventLoop, TimeoutDeadlineHonored) {
  for (const LoopBackend backend : available_backends()) {
    const auto loop = EventLoop::make(backend);
    ASSERT_TRUE(loop);
    Pipe pipe;  // registered but never written — pure timeout path
    ASSERT_TRUE(loop->add(pipe.reader(), 1, EventLoop::kRead));
    std::vector<ReadyEvent> events;
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_EQ(loop->wait(60ms, &events), 0) << loop->name();
    EXPECT_GE(std::chrono::steady_clock::now() - t0, 55ms) << loop->name();
    loop->remove(pipe.reader());
  }
}

// ---- vectored flush + two-class queue semantics (peer.hpp) ----

struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() {
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, fds), 0);
  }
  ~SocketPair() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  int sender() const { return fds[0]; }
  int receiver() const { return fds[1]; }
  /// Drains whatever is currently readable into `out`.
  void drain(std::vector<u8>& out) const {
    u8 chunk[65536];
    for (;;) {
      const ssize_t n = ::recv(receiver(), chunk, sizeof(chunk), MSG_DONTWAIT);
      if (n <= 0) break;
      out.insert(out.end(), chunk, chunk + n);
    }
  }
};

std::vector<u8> blob(usize size, u8 fill) { return std::vector<u8>(size, fill); }

TEST(SessionQueue, WatermarkRefusesReplButNeverCtl) {
  Session session;
  session.paused = true;
  EXPECT_FALSE(session.queue_frame(TxClass::kRepl, blob(8, 1)));
  EXPECT_TRUE(session.queue_frame(TxClass::kCtl, blob(8, 2)));
  EXPECT_EQ(session.tx_bytes, 8u);
  session.paused = false;
  EXPECT_TRUE(session.queue_frame(TxClass::kRepl, blob(8, 3)));
  EXPECT_EQ(session.tx_bytes, 16u);
}

TEST(SessionFlush, CoalescesSmallFramesIntoFewSyscalls) {
  SocketPair pair;
  Session session;
  session.fd = pair.sender();
  constexpr usize kFrames = 100;
  for (usize i = 0; i < kFrames; ++i) {
    session.queue_frame(TxClass::kRepl, blob(64, static_cast<u8>(i)));
  }
  const FlushResult result = flush_session_buffers(session);
  EXPECT_FALSE(result.fatal);
  EXPECT_EQ(result.bytes, kFrames * 64u);
  EXPECT_EQ(session.tx_bytes, 0u);
  // 100 frames through 64-entry iovec chains: 2 sendmsg calls, not 100.
  EXPECT_EQ(result.syscalls, 2u);
}

TEST(SessionFlush, CtlCutsAheadOfUnstartedReplFramesAcrossPartialWrites) {
  SocketPair pair;
  const int sndbuf = 8 * 1024;
  ASSERT_EQ(::setsockopt(pair.sender(), SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf)), 0);

  Session session;
  session.fd = pair.sender();
  constexpr usize kRepl = 10;
  constexpr usize kFrameSize = 4096;
  for (usize i = 0; i < kRepl; ++i) {
    session.queue_frame(TxClass::kRepl, blob(kFrameSize, static_cast<u8>(i)));
  }
  // First flush stalls on the tiny send buffer with frames left over.
  EXPECT_FALSE(flush_session_buffers(session).fatal);
  ASSERT_GT(session.tx_bytes, 0u);

  // Reconstruct the exact wire order the flush discipline promises: the
  // partially written front (if any) completes first, then the ctl frame,
  // then the remaining replication frames in order.
  auto& repl = session.tx[static_cast<usize>(TxClass::kRepl)];
  const usize remaining = repl.size();
  std::vector<u8> expected;
  for (usize i = 0; i < kRepl - remaining; ++i) {
    const auto f = blob(kFrameSize, static_cast<u8>(i));
    expected.insert(expected.end(), f.begin(), f.end());
  }
  usize next_repl = kRepl - remaining;
  if (session.tx_active == static_cast<int>(TxClass::kRepl)) {
    const auto f = blob(kFrameSize, static_cast<u8>(next_repl++));
    expected.insert(expected.end(), f.begin(), f.end());
  }
  const auto ctl = blob(kFrameSize, 0xCC);
  expected.insert(expected.end(), ctl.begin(), ctl.end());
  for (usize i = next_repl; i < kRepl; ++i) {
    const auto f = blob(kFrameSize, static_cast<u8>(i));
    expected.insert(expected.end(), f.begin(), f.end());
  }

  session.queue_frame(TxClass::kCtl, blob(kFrameSize, 0xCC));

  std::vector<u8> received;
  for (int round = 0; round < 1000 && (session.tx_bytes > 0 || round == 0); ++round) {
    pair.drain(received);
    ASSERT_FALSE(flush_session_buffers(session).fatal);
  }
  pair.drain(received);
  ASSERT_EQ(session.tx_bytes, 0u);
  ASSERT_EQ(received.size(), (kRepl + 1) * kFrameSize);
  EXPECT_EQ(received, expected);
  session.fd = -1;
}

TEST(SessionFlush, FatalErrorReported) {
  SocketPair pair;
  Session session;
  session.fd = pair.sender();
  ::close(pair.fds[1]);
  pair.fds[1] = -1;
  // Large enough to overflow the socket buffer so sendmsg must hit the
  // closed peer (a small first write can land entirely in the buffer).
  for (int i = 0; i < 64; ++i) session.queue_frame(TxClass::kRepl, blob(65536, 1));
  FlushResult result = flush_session_buffers(session);
  if (!result.fatal) result = flush_session_buffers(session);  // second write sees EPIPE
  EXPECT_TRUE(result.fatal);
}

// ---- transport-level suites, run under each backend ----

/// A loopback cluster on ephemeral ports with a fixed readiness backend.
struct BackendCluster {
  BackendCluster(u32 n, LoopBackend backend, u64 seed = 1,
                 usize high_watermark = 4u << 20, usize low_watermark = 1u << 20)
      : keys(n, seed) {
    for (u32 i = 0; i < n; ++i) {
      TransportConfig config;
      config.self = NodeId{i};
      config.peers.assign(n, Endpoint{"127.0.0.1", 0});
      config.backend = backend;
      config.backoff_base = 5ms;
      config.backoff_max = 50ms;
      config.outbound_high_watermark = high_watermark;
      config.outbound_low_watermark = low_watermark;
      transports.push_back(
          std::make_unique<TcpTransport>(config, keys, Rng::for_stream(seed, i)));
      EXPECT_TRUE(transports.back()->start());
    }
    for (u32 i = 0; i < n; ++i) {
      for (u32 j = 0; j < n; ++j) {
        transports[i]->set_peer_endpoint(NodeId{j},
                                         Endpoint{"127.0.0.1", transports[j]->listen_port()});
      }
    }
  }

  void connect_all() {
    for (auto& transport : transports) transport->connect_peers();
  }

  bool pump_until(const std::function<bool()>& done,
                  std::chrono::milliseconds budget = 5000ms) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    while (std::chrono::steady_clock::now() < deadline) {
      for (auto& transport : transports) transport->poll_once(1ms);
      if (done()) return true;
    }
    return done();
  }

  crypto::KeyRegistry keys;
  std::vector<std::unique_ptr<TcpTransport>> transports;
};

/// Drives a fixed two-author workload under `backend` and returns the
/// receiver-side delivered sequence as (author, seq) pairs.
std::vector<std::pair<u32, u32>> delivered_sequence(LoopBackend backend) {
  BackendCluster cluster(3, backend);
  cluster.connect_all();
  std::vector<std::pair<u32, u32>> delivered;
  cluster.transports[2]->attach(NodeId{2}, [&](NodeId from, const mp::WireMessage& msg) {
    if (msg.kind == mp::WireMessage::Kind::kAppend) {
      delivered.emplace_back(from.index, msg.append.seq);
    }
  });
  constexpr u32 kPerAuthor = 200;
  for (u32 seq = 0; seq < kPerAuthor; ++seq) {
    for (const u32 author : {0u, 1u}) {
      mp::WireMessage msg;
      msg.kind = mp::WireMessage::Kind::kAppend;
      msg.append.author = NodeId{author};
      msg.append.seq = seq;
      msg.append.value = static_cast<i64>(seq);
      msg.append.sig = cluster.keys.sign(NodeId{author}, msg.append.digest());
      cluster.transports[author]->send(NodeId{author}, NodeId{2}, msg);
    }
  }
  EXPECT_TRUE(cluster.pump_until([&] { return delivered.size() == 2 * kPerAuthor; }))
      << "delivered " << delivered.size();
  return delivered;
}

TEST(TransportParity, SameDeliveredSequencesUnderEveryBackend) {
  const auto backends = available_backends();
  std::vector<std::vector<std::pair<u32, u32>>> runs;
  for (const LoopBackend backend : backends) runs.push_back(delivered_sequence(backend));
  for (const auto& run : runs) {
    // Per-author FIFO: each author's seqs arrive in order...
    u32 next[2] = {0, 0};
    for (const auto& [author, seq] : run) {
      ASSERT_LT(author, 2u);
      EXPECT_EQ(seq, next[author]);
      next[author] = seq + 1;
    }
  }
  // ...and every backend delivered the complete workload. Together with
  // per-author FIFO this pins the parity claim the transport makes: each
  // author's delivered subsequence is identical under every backend (the
  // cross-author interleaving is TCP-timing dependent on any backend, so
  // only the per-author projections are deterministic).
  for (usize i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].size(), runs[0].size());
  }
}

/// Full ABD parity: the same append workload must converge to the same
/// final view under every backend.
std::vector<mp::SignedAppend> final_view(LoopBackend backend) {
  BackendCluster cluster(3, backend);
  cluster.connect_all();
  std::vector<std::unique_ptr<mp::AbdNode>> nodes;
  for (u32 i = 0; i < 3; ++i) {
    nodes.push_back(std::make_unique<mp::AbdNode>(NodeId{i}, *cluster.transports[i],
                                                  cluster.keys));
  }
  u32 completed = 0;
  constexpr u32 kAppends = 32;
  for (u32 v = 0; v < kAppends; ++v) {
    nodes[v % 2]->begin_append(static_cast<i64>(v), [&] { ++completed; });
  }
  EXPECT_TRUE(cluster.pump_until([&] { return completed == kAppends; }));
  std::vector<mp::SignedAppend> result;
  bool read_done = false;
  nodes[2]->begin_read([&](const std::vector<mp::SignedAppend>& view) {
    result = view;
    read_done = true;
  });
  EXPECT_TRUE(cluster.pump_until([&] { return read_done; }));
  return result;
}

TEST(TransportParity, SameFinalAbdViewUnderEveryBackend) {
  const auto backends = available_backends();
  std::vector<std::vector<mp::SignedAppend>> views;
  for (const LoopBackend backend : backends) views.push_back(final_view(backend));
  for (const auto& view : views) ASSERT_EQ(view.size(), 32u);
  for (usize i = 1; i < views.size(); ++i) {
    ASSERT_EQ(views[i].size(), views[0].size());
    for (usize r = 0; r < views[0].size(); ++r) {
      EXPECT_EQ(views[i][r], views[0][r]) << "record " << r << " differs between "
                                          << "backends";
    }
  }
}

TEST(TransportBackpressure, SlowReaderHitsWatermarkAndResumes) {
  for (const LoopBackend backend : available_backends()) {
    // Tight watermarks so a non-polling receiver trips them quickly.
    constexpr usize kHigh = 256u << 10;
    constexpr usize kLow = 64u << 10;
    BackendCluster cluster(2, backend, /*seed=*/1, kHigh, kLow);
    cluster.transports[0]->connect_peers();  // only 0 dials; 1 never polls yet

    // Pump only the sender: the receiver's TCP handshake completes in the
    // kernel via the listen backlog, but no byte is ever read, so the
    // socket buffers and then the sender's session queue fill up.
    const auto pump_sender = [&](const std::function<bool()>& done,
                                 std::chrono::milliseconds budget) {
      const auto deadline = std::chrono::steady_clock::now() + budget;
      while (std::chrono::steady_clock::now() < deadline) {
        cluster.transports[0]->poll_once(1ms);
        if (done()) return true;
      }
      return done();
    };
    ASSERT_TRUE(pump_sender(
        [&] { return cluster.transports[0]->connected_outbound() == 1; }, 2000ms));

    // ~28 KB per message: a few hundred overwhelm the socket buffers of a
    // receiver that never drains, pushing the session over the watermark.
    mp::WireMessage big;
    big.kind = mp::WireMessage::Kind::kReadReply;
    big.read_id = 1;
    for (u32 r = 0; r < 1000; ++r) {
      mp::SignedAppend rec;
      rec.author = NodeId{0};
      rec.seq = r;
      rec.value = static_cast<i64>(r);
      rec.sig = cluster.keys.sign(NodeId{0}, rec.digest());
      big.view.push_back(rec);
    }
    const usize frame_bytes = big.wire_size() + kFrameHeaderBytes + 1;
    constexpr u32 kMessages = 300;
    for (u32 m = 0; m < kMessages; ++m) {
      cluster.transports[0]->send(NodeId{0}, NodeId{1}, big);
      cluster.transports[0]->poll_once(0ms);
      if (cluster.transports[0]->backpressure_drops() > 0) break;
    }
    EXPECT_GT(cluster.transports[0]->backpressure_drops(), 0u) << "backend "
        << cluster.transports[0]->backend_name();
    EXPECT_TRUE(cluster.transports[0]->outbound_paused(NodeId{1}));
    // Memory stays bounded: the queue never exceeds the high watermark by
    // more than the single frame that crossed it.
    EXPECT_LE(cluster.transports[0]->outbound_queued_bytes(NodeId{1}), kHigh + frame_bytes);

    // The receiver wakes up: the queue drains below the low watermark and
    // replication resumes; the delivered messages are intact.
    u64 delivered = 0;
    cluster.transports[1]->attach(NodeId{1}, [&](NodeId, const mp::WireMessage& msg) {
      if (msg.kind == mp::WireMessage::Kind::kReadReply) ++delivered;
    });
    ASSERT_TRUE(cluster.pump_until(
        [&] { return cluster.transports[0]->outbound_queued_bytes(NodeId{1}) == 0; }, 10000ms));
    EXPECT_FALSE(cluster.transports[0]->outbound_paused(NodeId{1}));
    EXPECT_GT(delivered, 0u);
    EXPECT_EQ(cluster.transports[1]->sig_rejects(), 0u);
  }
}

TEST(TransportTeardown, KickFromCtlHandlerMidDispatchIsSafe) {
  // Regression for the deferred-kick teardown path: a ctl handler firing
  // kick_outbound() mid-dispatch tears down sessions whose fds are still
  // registered with the loop. Stale registrations would poison fd reuse
  // (EPOLL_CTL_ADD -> EEXIST => dead links); post-kick liveness proves
  // the teardown unregistered everything.
  for (const LoopBackend backend : available_backends()) {
    BackendCluster cluster(2, backend);
    cluster.connect_all();
    std::vector<std::unique_ptr<mp::AbdNode>> nodes;
    for (u32 i = 0; i < 2; ++i) {
      nodes.push_back(std::make_unique<mp::AbdNode>(NodeId{i}, *cluster.transports[i],
                                                    cluster.keys));
    }
    u64 ctl_replies = 0;
    cluster.transports[0]->set_ctl_handler([&](u64 session, const CtlRequest& req) {
      cluster.transports[0]->kick_outbound();  // closes sessions mid-dispatch
      CtlReply reply;
      reply.op = req.op;
      reply.ok = true;
      cluster.transports[0]->send_ctl_reply(session, reply);
      ++ctl_replies;
    });
    ASSERT_TRUE(cluster.pump_until(
        [&] { return cluster.transports[0]->connected_outbound() == 1; }, 2000ms));

    // A raw ctl client (like amm_ctl) delivers the kick request.
    SocketPair unused;  // keep fd numbers moving so reuse is exercised
    const int client = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(client, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cluster.transports[0]->listen_port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(client, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
    std::vector<u8> frame;
    CtlRequest req;
    req.op = CtlOp::kKick;
    append_frame(frame, FrameKind::kCtlReq, encode_ctl_request(req));
    ASSERT_EQ(::send(client, frame.data(), frame.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(frame.size()));

    ASSERT_TRUE(cluster.pump_until([&] { return ctl_replies == 1; }, 2000ms));
    // The ctl reply still arrives (ctl frames cut ahead; the ctl session
    // survived the kick), and the kicked links come back up.
    std::vector<u8> reply_bytes;
    u8 chunk[4096];
    ASSERT_TRUE(cluster.pump_until([&] {
      const ssize_t n = ::recv(client, chunk, sizeof(chunk), MSG_DONTWAIT);
      if (n > 0) reply_bytes.insert(reply_bytes.end(), chunk, chunk + n);
      return !reply_bytes.empty();
    }, 2000ms));
    Frame reply_frame;
    ASSERT_EQ(extract_frame(reply_bytes, &reply_frame), FrameStatus::kFrame);
    EXPECT_EQ(reply_frame.kind, FrameKind::kCtlRep);
    ::close(client);

    ASSERT_TRUE(cluster.pump_until([&] {
      return cluster.transports[0]->connected_outbound() == 1 &&
             cluster.transports[1]->connected_outbound() == 1;
    }, 3000ms));
    // Liveness after the mid-dispatch teardown: a quorum append completes.
    bool append_done = false;
    nodes[0]->begin_append(11, [&] { append_done = true; });
    EXPECT_TRUE(cluster.pump_until([&] { return append_done; }))
        << "backend " << cluster.transports[0]->backend_name();
    EXPECT_GE(cluster.transports[0]->reconnects(), 1u);
  }
}

TEST(TransportBatching, WritevCoalescesAndVerifyCacheBatches) {
  // The transport-level counters prove the batch paths actually engage:
  // writev_calls grows far slower than frames sent, and a record arriving
  // twice (broadcast + read reply) hits the verify cache.
  BackendCluster cluster(3, LoopBackend::kAuto);
  cluster.connect_all();
  // Full (non-delta) reads so the replies re-carry records the reader's
  // transport already verified at broadcast time — the cache-hit path.
  mp::AbdConfig abd_config;
  abd_config.delta_reads = false;
  std::vector<std::unique_ptr<mp::AbdNode>> nodes;
  for (u32 i = 0; i < 3; ++i) {
    nodes.push_back(std::make_unique<mp::AbdNode>(NodeId{i}, *cluster.transports[i],
                                                  cluster.keys, abd_config));
  }
  u32 completed = 0;
  constexpr u32 kAppends = 64;
  for (u32 v = 0; v < kAppends; ++v) {
    nodes[0]->begin_append(static_cast<i64>(v), [&] { ++completed; });
  }
  ASSERT_TRUE(cluster.pump_until([&] { return completed == kAppends; }));
  bool read_done = false;
  nodes[2]->begin_read([&](const std::vector<mp::SignedAppend>&) { read_done = true; });
  ASSERT_TRUE(cluster.pump_until([&] { return read_done; }));

  u64 frames = 0, writevs = 0, cache_hits = 0;
  for (const auto& transport : cluster.transports) {
    frames += transport->messages_sent();
    writevs += transport->writev_calls();
    cache_hits += transport->verify_cache_hits();
  }
  EXPECT_GT(writevs, 0u);
  EXPECT_LT(writevs, frames);  // strictly fewer syscalls than frames
  EXPECT_GT(cache_hits, 0u);
}

}  // namespace
}  // namespace amm::net
