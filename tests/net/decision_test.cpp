// Algorithm 6's decision rule over replicated views: a pure function of
// the record set, so any two nodes holding the same completed appends
// decide identically regardless of arrival order.
#include "net/decision.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace amm::net {
namespace {

mp::SignedAppend rec(u32 author, u32 seq, i64 value) {
  mp::SignedAppend r;
  r.author = NodeId{author};
  r.seq = seq;
  r.value = value;
  return r;
}

TEST(Decision, OrderInsensitive) {
  std::vector<mp::SignedAppend> view = {rec(0, 0, 1), rec(1, 0, -1), rec(2, 0, 1),
                                        rec(0, 1, -1), rec(1, 1, 1)};
  const Decision base = decide_first_k(view, 3);
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    auto shuffled = view;
    rng.shuffle(shuffled);
    const Decision d = decide_first_k(shuffled, 3);
    EXPECT_EQ(d.sign, base.sign);
    EXPECT_EQ(d.decided_over, base.decided_over);
  }
}

TEST(Decision, FirstKByCanonicalOrder) {
  // seq 0 records come first regardless of insertion order; the k=2 cut is
  // {(seq0,author0)=+, (seq0,author1)=+} even though later records are −.
  const std::vector<mp::SignedAppend> view = {rec(1, 1, -5), rec(0, 1, -5), rec(1, 0, 2),
                                              rec(0, 0, 3)};
  const Decision d = decide_first_k(view, 2);
  EXPECT_EQ(d.sign, 1);
  EXPECT_EQ(d.decided_over, 2u);
}

TEST(Decision, CutSmallerThanView) {
  const std::vector<mp::SignedAppend> view = {rec(0, 0, -1), rec(1, 0, -1), rec(2, 0, 7)};
  EXPECT_EQ(decide_first_k(view, 1).sign, -1);       // only (0,0): negative
  EXPECT_EQ(decide_first_k(view, 3).decided_over, 3u);
  EXPECT_EQ(decide_first_k(view, 100).decided_over, 3u);  // clamped to view
}

TEST(Decision, EmptyViewAndZeroK) {
  EXPECT_EQ(decide_first_k({}, 5).sign, 0);
  EXPECT_EQ(decide_first_k({rec(0, 0, 1)}, 0).sign, 0);
  EXPECT_EQ(decide_first_k({}, 5).decided_over, 0u);
}

TEST(Decision, TieBreaksTowardPlus) {
  const std::vector<mp::SignedAppend> view = {rec(0, 0, 1), rec(1, 0, -1)};
  EXPECT_EQ(decide_first_k(view, 2).sign, 1);  // sum 0 → kPlus by convention
}

}  // namespace
}  // namespace amm::net
