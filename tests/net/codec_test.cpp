// Codec invariants: exact wire_size agreement (the §4/E10 byte accounting
// is only honest if wire_size() IS the encoding), lossless round-trips,
// and total rejection of truncated/corrupted input (run under the
// ASan/UBSan matrix — decode must never read out of bounds).
#include "net/codec.hpp"

#include <gtest/gtest.h>

#include "crypto/signature.hpp"
#include "net/peer.hpp"
#include "support/rng.hpp"

namespace amm::net {
namespace {

mp::SignedAppend make_record(Rng& rng, u32 node_count) {
  mp::SignedAppend rec;
  rec.author = NodeId{static_cast<u32>(rng.uniform_below(node_count))};
  rec.seq = static_cast<u32>(rng.uniform_below(1u << 20));
  rec.value = rng.uniform_int(-1'000'000, 1'000'000);
  rec.sig = crypto::Signature{rec.author, rng.next()};
  return rec;
}

mp::WireMessage make_message(Rng& rng, u32 kind_index, usize view_size) {
  // `view_size` sizes whichever variable-length payload the kind carries:
  // the frontier for kReadReq, the record view for kReadReply.
  mp::WireMessage msg;
  msg.kind = static_cast<mp::WireMessage::Kind>(kind_index);
  msg.append = make_record(rng, 8);
  msg.ack_sig = crypto::Signature{NodeId{static_cast<u32>(rng.uniform_below(8))}, rng.next()};
  msg.read_id = rng.next();
  if (msg.kind == mp::WireMessage::Kind::kReadReq) {
    for (usize i = 0; i < view_size; ++i) {
      msg.frontier.push_back(mp::FrontierEntry{NodeId{static_cast<u32>(rng.uniform_below(8))},
                                               static_cast<u32>(rng.uniform_below(1u << 20))});
    }
  }
  if (msg.kind == mp::WireMessage::Kind::kReadReply) {
    msg.frontier_echo = rng.next();
    for (usize i = 0; i < view_size; ++i) msg.view.push_back(make_record(rng, 8));
  }
  if (msg.kind == mp::WireMessage::Kind::kCheckpointReply) {
    msg.checkpoint.folded_below = static_cast<u32>(rng.uniform_below(1u << 16));
    for (usize i = 0; i < view_size; ++i) msg.checkpoint.chains.push_back(rng.next());
    msg.checkpoint.folded_records = rng.next();
    msg.checkpoint.vote_sum = rng.uniform_int(-1'000'000, 1'000'000);
    msg.checkpoint.sig =
        crypto::Signature{NodeId{static_cast<u32>(rng.uniform_below(8))}, rng.next()};
  }
  return msg;
}

bool equal(const mp::WireMessage& a, const mp::WireMessage& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case mp::WireMessage::Kind::kAppend:
      return a.append == b.append && a.append.sig == b.append.sig;
    case mp::WireMessage::Kind::kAck:
      return a.append == b.append && a.append.sig == b.append.sig && a.ack_sig == b.ack_sig;
    case mp::WireMessage::Kind::kReadReq:
      return a.read_id == b.read_id && a.frontier == b.frontier;
    case mp::WireMessage::Kind::kReadReply: {
      if (a.read_id != b.read_id || a.frontier_echo != b.frontier_echo ||
          a.view.size() != b.view.size()) {
        return false;
      }
      for (usize i = 0; i < a.view.size(); ++i) {
        if (!(a.view[i] == b.view[i]) || !(a.view[i].sig == b.view[i].sig)) return false;
      }
      return true;
    }
    case mp::WireMessage::Kind::kCheckpointReq:
      return a.read_id == b.read_id;
    case mp::WireMessage::Kind::kCheckpointReply:
      return a.read_id == b.read_id && a.checkpoint == b.checkpoint;
  }
  return false;
}

constexpr u32 kNumKinds = 6;

TEST(Codec, EncodedSizeEqualsWireSizeForAllKinds) {
  // The satellite invariant: encode(msg).size() == msg.wire_size() for all
  // six message kinds, including empty and large views.
  Rng rng(11);
  for (u32 kind = 0; kind < kNumKinds; ++kind) {
    for (const usize view_size : {usize{0}, usize{1}, usize{7}, usize{400}}) {
      const mp::WireMessage msg = make_message(rng, kind, view_size);
      EXPECT_EQ(encode_message(msg).size(), msg.wire_size())
          << "kind=" << kind << " view=" << view_size;
    }
  }
}

TEST(Codec, RoundTripAllKinds) {
  Rng rng(12);
  for (u32 kind = 0; kind < kNumKinds; ++kind) {
    const mp::WireMessage msg = make_message(rng, kind, 5);
    const auto decoded = decode_message(encode_message(msg));
    ASSERT_TRUE(decoded.has_value()) << "kind=" << kind;
    EXPECT_TRUE(equal(msg, *decoded)) << "kind=" << kind;
  }
}

TEST(Codec, FuzzRoundTripRandomMessages) {
  Rng rng(13);
  for (int trial = 0; trial < 500; ++trial) {
    const u32 kind = static_cast<u32>(rng.uniform_below(kNumKinds));
    const usize view_size = static_cast<usize>(rng.uniform_below(64));
    const mp::WireMessage msg = make_message(rng, kind, view_size);
    const std::vector<u8> bytes = encode_message(msg);
    const auto decoded = decode_message(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(equal(msg, *decoded));
    // Re-encoding must be byte-identical (canonical encoding).
    EXPECT_EQ(encode_message(*decoded), bytes);
  }
}

TEST(Codec, FuzzLargeView) {
  Rng rng(14);
  const mp::WireMessage msg = make_message(rng, 3, 5000);
  const auto decoded = decode_message(encode_message(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->view.size(), 5000u);
}

TEST(Codec, EveryTruncationRejected) {
  Rng rng(15);
  for (u32 kind = 0; kind < kNumKinds; ++kind) {
    const std::vector<u8> bytes = encode_message(make_message(rng, kind, 3));
    for (usize len = 0; len < bytes.size(); ++len) {
      EXPECT_FALSE(decode_message(std::span(bytes.data(), len)).has_value())
          << "kind=" << kind << " len=" << len;
    }
  }
}

TEST(Codec, TrailingGarbageRejected) {
  Rng rng(16);
  for (u32 kind = 0; kind < kNumKinds; ++kind) {
    std::vector<u8> bytes = encode_message(make_message(rng, kind, 2));
    bytes.push_back(0xAB);
    EXPECT_FALSE(decode_message(bytes).has_value()) << "kind=" << kind;
  }
}

TEST(Codec, FuzzCorruptionNeverCrashes) {
  // Flipped bytes either fail decode or yield a message that re-encodes to
  // the same corrupted bytes — never UB, never a crash.
  Rng rng(17);
  for (int trial = 0; trial < 500; ++trial) {
    const u32 kind = static_cast<u32>(rng.uniform_below(kNumKinds));
    std::vector<u8> bytes = encode_message(make_message(rng, kind, 4));
    const usize pos = static_cast<usize>(rng.uniform_below(bytes.size()));
    bytes[pos] ^= static_cast<u8>(1 + rng.uniform_below(255));
    const auto decoded = decode_message(bytes);
    if (decoded) {
      EXPECT_EQ(encode_message(*decoded), bytes);
    }
  }
}

TEST(Codec, LyingViewCountRejected) {
  Rng rng(18);
  mp::WireMessage msg = make_message(rng, 3, 3);
  std::vector<u8> bytes = encode_message(msg);
  bytes[1 + 8 + 8] = 200;  // count field (after kind+rid+echo): claims 200, carries 3
  EXPECT_FALSE(decode_message(bytes).has_value());
}

TEST(Codec, LyingFrontierCountRejected) {
  Rng rng(21);
  mp::WireMessage msg = make_message(rng, 2, 3);
  std::vector<u8> bytes = encode_message(msg);
  bytes[1 + 8] = 200;  // count field (after kind+rid): claims 200 entries, carries 3
  EXPECT_FALSE(decode_message(bytes).has_value());
}

TEST(Codec, FrontierWireSizesExact) {
  // The §9 byte accounting in closed form: a read request costs
  // 13 + 8·|frontier| bytes, a read reply 21 + 28·|view| — pinned here so
  // a codec change cannot silently shift the E10/cluster numbers.
  Rng rng(22);
  for (const usize size : {usize{0}, usize{1}, usize{5}, usize{333}}) {
    const mp::WireMessage req = make_message(rng, 2, size);
    EXPECT_EQ(req.wire_size(), 13 + 8 * size);
    EXPECT_EQ(encode_message(req).size(), req.wire_size());
    const mp::WireMessage reply = make_message(rng, 3, size);
    EXPECT_EQ(reply.wire_size(), 21 + 28 * size);
    EXPECT_EQ(encode_message(reply).size(), reply.wire_size());
  }
}

TEST(Codec, CheckpointWireSizesExact) {
  // The checkpoint pair in closed form: a request is 9 bytes, a reply
  // 45 + 8·|chains| — pinned so the restart-sync byte accounting of
  // DESIGN.md §8 stays honest.
  Rng rng(23);
  const mp::WireMessage req = make_message(rng, 4, 0);
  EXPECT_EQ(req.wire_size(), 9u);
  EXPECT_EQ(encode_message(req).size(), req.wire_size());
  for (const usize chains : {usize{0}, usize{1}, usize{7}, usize{333}}) {
    const mp::WireMessage reply = make_message(rng, 5, chains);
    EXPECT_EQ(reply.wire_size(), 45 + 8 * chains);
    EXPECT_EQ(encode_message(reply).size(), reply.wire_size());
  }
}

TEST(Codec, LyingChainCountRejected) {
  Rng rng(24);
  mp::WireMessage msg = make_message(rng, 5, 3);
  std::vector<u8> bytes = encode_message(msg);
  // Chain count field sits after kind + read_id + folded_below.
  bytes[1 + 8 + 4] = 200;  // claims 200 chains, carries 3
  EXPECT_FALSE(decode_message(bytes).has_value());
  bytes[1 + 8 + 4] = 0;  // claims 0 chains, carries 3 (trailing garbage)
  EXPECT_FALSE(decode_message(bytes).has_value());
}

TEST(Codec, FramedMessageMatchesAppendFrame) {
  // The transport's single-allocation send path must emit exactly the
  // bytes append_frame(encode_message(msg)) would.
  Rng rng(25);
  for (u32 kind = 0; kind < kNumKinds; ++kind) {
    for (const usize view_size : {usize{0}, usize{5}}) {
      const mp::WireMessage msg = make_message(rng, kind, view_size);
      std::vector<u8> framed_twice;
      append_frame(framed_twice, FrameKind::kMsg, encode_message(msg));
      EXPECT_EQ(encode_framed_message(msg), framed_twice) << "kind=" << kind;
    }
  }
}

TEST(Codec, RecordSpanVariantsMatchEncoderPath) {
  // encode_record_to/decode_record_from are the zero-copy twins of the
  // Encoder/Decoder path: byte-identical output, identical parse.
  Rng rng(26);
  for (int trial = 0; trial < 200; ++trial) {
    const mp::SignedAppend rec = make_record(rng, 8);
    Encoder enc;
    encode_record(enc, rec);
    std::vector<u8> direct(mp::kWireRecordBytes);
    ASSERT_EQ(encode_record_to(direct, rec), mp::kWireRecordBytes);
    EXPECT_EQ(direct, enc.bytes());

    const auto decoded = decode_record_from(direct);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(*decoded == rec);
    EXPECT_EQ(decoded->sig, rec.sig);
  }
  // Short input: total rejection, like every other decode path.
  const std::vector<u8> short_buf(mp::kWireRecordBytes - 1);
  EXPECT_FALSE(decode_record_from(short_buf).has_value());
}

TEST(Codec, FrameViewMatchesExtractFrame) {
  // extract_frame_view parses the same boundaries as extract_frame, byte
  // by byte, without consuming; parity pins the zero-copy drain loop to
  // the copying semantics the rest of the suite verifies.
  std::vector<u8> wire;
  const std::vector<u8> p1 = {9, 8, 7, 6};
  const std::vector<u8> p2 = {};
  const std::vector<u8> p3 = {1};
  append_frame(wire, FrameKind::kMsg, p1);
  append_frame(wire, FrameKind::kCtlReq, p2);
  append_frame(wire, FrameKind::kHello, p3);

  // Feed byte by byte through a view-based drain: kNeedMore until a frame
  // completes, then the view borrows the payload in place.
  std::vector<u8> buf;
  std::vector<Frame> frames;
  for (const u8 byte : wire) {
    buf.push_back(byte);
    usize offset = 0;
    for (;;) {
      FrameView view;
      usize consumed = 0;
      const std::span<const u8> rest{buf.data() + offset, buf.size() - offset};
      if (extract_frame_view(rest, &view, &consumed) != FrameStatus::kFrame) break;
      frames.push_back(Frame{view.kind, {view.payload.begin(), view.payload.end()}});
      offset += consumed;
    }
    buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(offset));
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].kind, FrameKind::kMsg);
  EXPECT_EQ(frames[0].payload, p1);
  EXPECT_EQ(frames[1].kind, FrameKind::kCtlReq);
  EXPECT_TRUE(frames[1].payload.empty());
  EXPECT_EQ(frames[2].kind, FrameKind::kHello);
  EXPECT_EQ(frames[2].payload, p3);
  EXPECT_TRUE(buf.empty());

  // The corrupt cases reject identically to extract_frame.
  FrameView view;
  usize consumed = 0;
  const std::vector<u8> oversized = {0xFF, 0xFF, 0xFF, 0xFF, 2};
  EXPECT_EQ(extract_frame_view(oversized, &view, &consumed), FrameStatus::kCorrupt);
  const std::vector<u8> zero_len = {0, 0, 0, 0};
  EXPECT_EQ(extract_frame_view(zero_len, &view, &consumed), FrameStatus::kCorrupt);
  std::vector<u8> bad_kind;
  append_frame(bad_kind, FrameKind::kMsg, std::vector<u8>{});
  bad_kind[4] = 99;
  EXPECT_EQ(extract_frame_view(bad_kind, &view, &consumed), FrameStatus::kCorrupt);
}

TEST(Codec, FrontierDigestDistinguishesFrontiers) {
  // The fallback detection depends on distinct frontiers hashing apart and
  // the digest being order-sensitive (entries are emitted in author order).
  const std::vector<mp::FrontierEntry> empty;
  const std::vector<mp::FrontierEntry> one{{NodeId{0}, 5}};
  const std::vector<mp::FrontierEntry> bumped{{NodeId{0}, 6}};
  const std::vector<mp::FrontierEntry> other_author{{NodeId{1}, 5}};
  EXPECT_NE(mp::frontier_digest(empty), mp::frontier_digest(one));
  EXPECT_NE(mp::frontier_digest(one), mp::frontier_digest(bumped));
  EXPECT_NE(mp::frontier_digest(one), mp::frontier_digest(other_author));
  EXPECT_EQ(mp::frontier_digest(one), mp::frontier_digest({{NodeId{0}, 5}}));
}

TEST(Codec, FrameExtraction) {
  std::vector<u8> wire;
  const std::vector<u8> p1 = {1, 2, 3};
  const std::vector<u8> p2 = {};
  append_frame(wire, FrameKind::kMsg, p1);
  append_frame(wire, FrameKind::kCtlReq, p2);

  // Feed byte by byte: kNeedMore until each frame completes.
  std::vector<u8> buf;
  std::vector<Frame> frames;
  for (const u8 byte : wire) {
    buf.push_back(byte);
    Frame frame;
    while (extract_frame(buf, &frame) == FrameStatus::kFrame) frames.push_back(frame);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].kind, FrameKind::kMsg);
  EXPECT_EQ(frames[0].payload, p1);
  EXPECT_EQ(frames[1].kind, FrameKind::kCtlReq);
  EXPECT_TRUE(frames[1].payload.empty());
  EXPECT_TRUE(buf.empty());
}

TEST(Codec, FrameCorruptionDetected) {
  Frame frame;
  std::vector<u8> oversized = {0xFF, 0xFF, 0xFF, 0xFF, 2};  // 4 GiB length
  EXPECT_EQ(extract_frame(oversized, &frame), FrameStatus::kCorrupt);

  std::vector<u8> zero_len = {0, 0, 0, 0};
  EXPECT_EQ(extract_frame(zero_len, &frame), FrameStatus::kCorrupt);

  std::vector<u8> bad_kind;
  append_frame(bad_kind, FrameKind::kMsg, std::vector<u8>{});
  bad_kind[4] = 99;  // unknown frame kind
  EXPECT_EQ(extract_frame(bad_kind, &frame), FrameStatus::kCorrupt);
}

TEST(Codec, HelloRoundTripAndVerification) {
  crypto::KeyRegistry keys(4, 77);
  Hello hello;
  hello.node = NodeId{2};
  hello.nonce = 0xDEADBEEF;
  hello.sig = keys.sign(NodeId{2}, hello.digest());

  const auto decoded = decode_hello(encode_hello(hello));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->node, hello.node);
  EXPECT_EQ(decoded->nonce, hello.nonce);
  EXPECT_TRUE(verify_hello(*decoded, 4, keys));

  // Out-of-cluster node id, foreign signer, and forged tag all fail.
  Hello outside = hello;
  outside.node = NodeId{9};
  outside.sig = keys.sign(NodeId{1}, outside.digest());
  EXPECT_FALSE(verify_hello(outside, 4, keys));

  Hello foreign = hello;
  foreign.sig = keys.sign(NodeId{1}, foreign.digest());
  EXPECT_FALSE(verify_hello(foreign, 4, keys));

  Hello forged = hello;
  forged.sig.tag ^= 1;
  EXPECT_FALSE(verify_hello(forged, 4, keys));
}

TEST(Codec, CtlRoundTrips) {
  const CtlRequest request{CtlOp::kDecide, -7, 31};
  const auto req = decode_ctl_request(encode_ctl_request(request));
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->op, CtlOp::kDecide);
  EXPECT_EQ(req->value, -7);
  EXPECT_EQ(req->k, 31u);

  Rng rng(19);
  CtlReply reply;
  reply.op = CtlOp::kRead;
  reply.ok = true;
  reply.status = CtlStatus::kOk;
  reply.decision = -1;
  reply.decided_over = 9;
  for (int i = 0; i < 5; ++i) reply.view.push_back(make_record(rng, 4));
  // Distinct value per stats field, assigned through the same field table
  // the codec serializes from.
  for (usize i = 0; i < mp::kNodeStatsFieldCount; ++i) {
    reply.stats.*mp::kNodeStatsFields[i].member = i + 1;
  }
  const auto rep = decode_ctl_reply(encode_ctl_reply(reply));
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->view.size(), 5u);
  for (usize i = 0; i < mp::kNodeStatsFieldCount; ++i) {
    EXPECT_EQ(rep->stats.*mp::kNodeStatsFields[i].member, i + 1)
        << "field " << mp::kNodeStatsFields[i].name;
  }
  // A few spot checks by name, so a scrambled field table cannot pass.
  EXPECT_EQ(rep->stats.reconnects, 5u);
  EXPECT_EQ(rep->stats.rss_kb, 18u);
  EXPECT_EQ(rep->stats.log_bytes, 19u);
  EXPECT_EQ(rep->stats.snapshot_count, 20u);
  EXPECT_EQ(rep->stats.recovery_replayed_records, 21u);
  EXPECT_TRUE(rep->ok);
  EXPECT_EQ(rep->status, CtlStatus::kOk);

  // The machine-readable failure reason survives the roundtrip.
  reply.ok = false;
  reply.status = CtlStatus::kRefusedBelowFold;
  const auto refused = decode_ctl_reply(encode_ctl_reply(reply));
  ASSERT_TRUE(refused.has_value());
  EXPECT_EQ(refused->status, CtlStatus::kRefusedBelowFold);

  // Truncated control frames are rejected, not misread.
  const std::vector<u8> bytes = encode_ctl_reply(reply);
  EXPECT_FALSE(decode_ctl_reply(std::span(bytes.data(), bytes.size() - 1)).has_value());
  EXPECT_FALSE(decode_ctl_request(std::span(bytes.data(), usize{2})).has_value());

  // An out-of-vocabulary status byte is corruption, not a default.
  std::vector<u8> bad_status = bytes;
  bad_status[2] = 200;
  EXPECT_FALSE(decode_ctl_reply(bad_status).has_value());
}

}  // namespace
}  // namespace amm::net
