// Codec property sweep driven by the message-kind table itself: samples
// are produced by a switch over WireMessage::Kind with no default, so a
// fifth kind fails to compile here (-Wswitch under -Werror) until both a
// sample generator and the equality predicate cover it. Every sampled
// message is round-tripped, truncated at every byte offset, and extended
// with trailing garbage; the handshake and control-plane codecs get the
// same exhaustive-truncation treatment. Runs under the ASan/UBSan matrix:
// a decoder that reads one byte out of bounds fails here, not in prod.
#include "net/codec.hpp"

#include <array>
#include <gtest/gtest.h>
#include <span>
#include <vector>

#include "crypto/signature.hpp"
#include "support/rng.hpp"

namespace amm::net {
namespace {

using Kind = mp::WireMessage::Kind;

// The iteration table. kind_ordinal() below is the compile-time guard: it
// switches over Kind without a default, so adding an enumerator breaks
// the build here, and the static_assert forces this table to grow too.
constexpr std::array<Kind, 6> kAllKinds = {Kind::kAppend,        Kind::kAck,
                                           Kind::kReadReq,       Kind::kReadReply,
                                           Kind::kCheckpointReq, Kind::kCheckpointReply};

constexpr usize kind_ordinal(Kind kind) {
  switch (kind) {
    case Kind::kAppend:
      return 0;
    case Kind::kAck:
      return 1;
    case Kind::kReadReq:
      return 2;
    case Kind::kReadReply:
      return 3;
    case Kind::kCheckpointReq:
      return 4;
    case Kind::kCheckpointReply:
      return 5;
  }
  return kAllKinds.size();  // unreachable: the switch above is exhaustive
}

static_assert(kind_ordinal(kAllKinds.back()) + 1 == kAllKinds.size(),
              "kAllKinds must enumerate every WireMessage::Kind in order");

mp::SignedAppend make_record(Rng& rng) {
  mp::SignedAppend rec;
  rec.author = NodeId{static_cast<u32>(rng.uniform_below(8))};
  rec.seq = static_cast<u32>(rng.uniform_below(1u << 20));
  rec.value = rng.uniform_int(-1'000'000, 1'000'000);
  rec.sig = crypto::Signature{rec.author, rng.next()};
  return rec;
}

// One sample per variable-length payload size; fixed-size kinds get one.
// The switch has no default on purpose — see the file comment.
std::vector<mp::WireMessage> samples_for(Kind kind, Rng& rng) {
  std::vector<mp::WireMessage> out;
  const std::array<usize, 3> sizes = {0, 1, 7};
  switch (kind) {
    case Kind::kAppend: {
      mp::WireMessage msg;
      msg.kind = kind;
      msg.append = make_record(rng);
      out.push_back(msg);
      break;
    }
    case Kind::kAck: {
      mp::WireMessage msg;
      msg.kind = kind;
      msg.append = make_record(rng);
      msg.ack_sig = crypto::Signature{NodeId{static_cast<u32>(rng.uniform_below(8))}, rng.next()};
      out.push_back(msg);
      break;
    }
    case Kind::kReadReq: {
      for (const usize n : sizes) {
        mp::WireMessage msg;
        msg.kind = kind;
        msg.read_id = rng.next();
        for (usize i = 0; i < n; ++i) {
          msg.frontier.push_back(mp::FrontierEntry{NodeId{static_cast<u32>(rng.uniform_below(8))},
                                                   static_cast<u32>(rng.uniform_below(1u << 20))});
        }
        out.push_back(msg);
      }
      break;
    }
    case Kind::kReadReply: {
      for (const usize n : sizes) {
        mp::WireMessage msg;
        msg.kind = kind;
        msg.read_id = rng.next();
        msg.frontier_echo = rng.next();
        for (usize i = 0; i < n; ++i) msg.view.push_back(make_record(rng));
        out.push_back(msg);
      }
      break;
    }
    case Kind::kCheckpointReq: {
      mp::WireMessage msg;
      msg.kind = kind;
      msg.read_id = rng.next();
      out.push_back(msg);
      break;
    }
    case Kind::kCheckpointReply: {
      // `n` is the per-author chain count; the codec carries whatever the
      // checkpoint says (well-formedness is the protocol layer's check).
      for (const usize n : sizes) {
        mp::WireMessage msg;
        msg.kind = kind;
        msg.read_id = rng.next();
        msg.checkpoint.folded_below = static_cast<u32>(rng.uniform_below(1u << 16));
        for (usize i = 0; i < n; ++i) msg.checkpoint.chains.push_back(rng.next());
        msg.checkpoint.folded_records = rng.next();
        msg.checkpoint.vote_sum = rng.uniform_int(-1'000'000, 1'000'000);
        msg.checkpoint.sig =
            crypto::Signature{NodeId{static_cast<u32>(rng.uniform_below(8))}, rng.next()};
        out.push_back(msg);
      }
      break;
    }
  }
  return out;
}

bool equal(const mp::WireMessage& a, const mp::WireMessage& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Kind::kAppend:
      return a.append == b.append && a.append.sig == b.append.sig;
    case Kind::kAck:
      return a.append == b.append && a.append.sig == b.append.sig && a.ack_sig == b.ack_sig;
    case Kind::kReadReq:
      return a.read_id == b.read_id && a.frontier == b.frontier;
    case Kind::kReadReply: {
      if (a.read_id != b.read_id || a.frontier_echo != b.frontier_echo ||
          a.view.size() != b.view.size()) {
        return false;
      }
      for (usize i = 0; i < a.view.size(); ++i) {
        if (!(a.view[i] == b.view[i]) || !(a.view[i].sig == b.view[i].sig)) return false;
      }
      return true;
    }
    case Kind::kCheckpointReq:
      return a.read_id == b.read_id;
    case Kind::kCheckpointReply:
      return a.read_id == b.read_id && a.checkpoint == b.checkpoint;
  }
  return false;
}

// Decode must reject every strict prefix and every extension of a valid
// encoding — totality at each boundary, not just "some" truncation.
template <typename Decode>
void expect_prefix_and_suffix_rejection(const std::vector<u8>& bytes, Decode decode,
                                        const char* what) {
  for (usize len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(decode(std::span(bytes.data(), len)).has_value())
        << what << " accepted a " << len << "-byte prefix of " << bytes.size();
  }
  std::vector<u8> extended = bytes;
  extended.push_back(0x5A);
  EXPECT_FALSE(decode(extended).has_value()) << what << " accepted trailing garbage";
}

TEST(CodecRoundTrip, EverySampledMessageRoundTrips) {
  Rng rng(31);
  for (const Kind kind : kAllKinds) {
    for (const mp::WireMessage& msg : samples_for(kind, rng)) {
      const std::vector<u8> bytes = encode_message(msg);
      ASSERT_EQ(bytes.size(), msg.wire_size()) << "ordinal=" << kind_ordinal(kind);
      const auto decoded = decode_message(bytes);
      ASSERT_TRUE(decoded.has_value()) << "ordinal=" << kind_ordinal(kind);
      EXPECT_TRUE(equal(msg, *decoded)) << "ordinal=" << kind_ordinal(kind);
      EXPECT_EQ(encode_message(*decoded), bytes);  // canonical encoding
    }
  }
}

TEST(CodecRoundTrip, EveryTruncationOffsetRejectedForEveryKind) {
  Rng rng(32);
  for (const Kind kind : kAllKinds) {
    for (const mp::WireMessage& msg : samples_for(kind, rng)) {
      expect_prefix_and_suffix_rejection(
          encode_message(msg), [](std::span<const u8> b) { return decode_message(b); },
          "decode_message");
    }
  }
}

TEST(CodecRoundTrip, HelloEveryTruncationOffsetRejected) {
  crypto::KeyRegistry keys(4, 99);
  Hello hello;
  hello.node = NodeId{1};
  hello.nonce = 0xFEEDFACE;
  hello.sig = keys.sign(NodeId{1}, hello.digest());

  const std::vector<u8> bytes = encode_hello(hello);
  const auto decoded = decode_hello(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->node, hello.node);
  EXPECT_EQ(decoded->nonce, hello.nonce);
  EXPECT_EQ(decoded->sig, hello.sig);
  expect_prefix_and_suffix_rejection(
      bytes, [](std::span<const u8> b) { return decode_hello(b); }, "decode_hello");
}

TEST(CodecRoundTrip, CtlRequestEveryTruncationOffsetRejected) {
  for (const CtlOp op :
       {CtlOp::kAppend, CtlOp::kRead, CtlOp::kDecide, CtlOp::kStats, CtlOp::kKick}) {
    const CtlRequest request{op, -123456789, 17};
    const std::vector<u8> bytes = encode_ctl_request(request);
    const auto decoded = decode_ctl_request(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->op, op);
    EXPECT_EQ(decoded->value, request.value);
    EXPECT_EQ(decoded->k, request.k);
    expect_prefix_and_suffix_rejection(
        bytes, [](std::span<const u8> b) { return decode_ctl_request(b); }, "decode_ctl_request");
  }
}

TEST(CodecRoundTrip, CtlReplyEveryTruncationOffsetRejected) {
  Rng rng(33);
  for (const usize view_size : {usize{0}, usize{3}}) {
    CtlReply reply;
    reply.op = CtlOp::kRead;
    reply.ok = true;
    reply.status = CtlStatus::kOk;
    reply.decision = 1;
    reply.decided_over = 4;
    for (usize i = 0; i < view_size; ++i) reply.view.push_back(make_record(rng));
    for (usize i = 0; i < mp::kNodeStatsFieldCount; ++i) {
      reply.stats.*mp::kNodeStatsFields[i].member = i + 1;
    }

    const std::vector<u8> bytes = encode_ctl_reply(reply);
    const auto decoded = decode_ctl_reply(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->view.size(), view_size);
    EXPECT_EQ(decoded->stats.verify_cache_hits, 12u);
    // Pin the last NodeStats field: a field appended to the struct but not
    // the field table shows up here as a dropped value.
    EXPECT_EQ(decoded->stats.recovery_replayed_records, mp::kNodeStatsFieldCount);
    expect_prefix_and_suffix_rejection(
        bytes, [](std::span<const u8> b) { return decode_ctl_reply(b); }, "decode_ctl_reply");
  }
}

}  // namespace
}  // namespace amm::net
