#include "support/cli.hpp"

#include <gtest/gtest.h>

namespace amm {
namespace {

CliArgs make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(CliArgs, SpaceSeparatedValue) {
  const auto args = make({"--trials", "500"});
  EXPECT_EQ(args.get_int("trials", 0), 500);
}

TEST(CliArgs, EqualsSeparatedValue) {
  const auto args = make({"--lambda=0.25"});
  EXPECT_DOUBLE_EQ(args.get_double("lambda", 0.0), 0.25);
}

TEST(CliArgs, BareFlag) {
  const auto args = make({"--csv"});
  EXPECT_TRUE(args.has_flag("csv"));
  EXPECT_FALSE(args.has_flag("json"));
}

TEST(CliArgs, DefaultsWhenMissing) {
  const auto args = make({});
  EXPECT_EQ(args.get_int("trials", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("x", 1.5), 1.5);
  EXPECT_EQ(args.get_string("mode", "fast"), "fast");
}

TEST(CliArgs, StringValue) {
  const auto args = make({"--mode", "slotted"});
  EXPECT_EQ(args.get_string("mode", ""), "slotted");
}

TEST(CliArgs, FlagFollowedByFlag) {
  const auto args = make({"--csv", "--trials", "7"});
  EXPECT_TRUE(args.has_flag("csv"));
  EXPECT_EQ(args.get_int("trials", 0), 7);
}

TEST(CliArgs, NegativeNumberAsValue) {
  // "-3" does not start with "--", so it binds as the value.
  const auto args = make({"--offset", "-3"});
  EXPECT_EQ(args.get_int("offset", 0), -3);
}

}  // namespace
}  // namespace amm
