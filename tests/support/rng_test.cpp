#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace amm {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, StreamsAreIndependent) {
  Rng a = Rng::for_stream(123, 0);
  Rng b = Rng::for_stream(123, 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, StreamsAreReproducible) {
  Rng a = Rng::for_stream(99, 5);
  Rng b = Rng::for_stream(99, 5);
  EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(4);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformBelowStaysBelowBound) {
  Rng rng(5);
  for (u64 bound : {1ull, 2ull, 3ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform_below(bound), bound);
  }
}

TEST(Rng, UniformBelowOneIsAlwaysZero) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_below(1), 0u);
}

TEST(Rng, UniformBelowCoversAllResidues) {
  Rng rng(7);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) ++counts[rng.uniform_below(5)];
  for (const int c : counts) EXPECT_GT(c, 800);  // ~1000 expected each
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const i64 x = rng.uniform_int(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(10);
  const double lambda = 4.0;
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(lambda);
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.01);
}

TEST(Rng, PoissonSmallMeanMatches) {
  Rng rng(11);
  const double mu = 2.5;
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mu));
  EXPECT_NEAR(sum / n, mu, 0.05);
}

TEST(Rng, PoissonVarianceMatchesMean) {
  Rng rng(12);
  const double mu = 3.0;
  const int n = 50'000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto x = static_cast<double>(rng.poisson(mu));
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(var, mu, 0.15);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(13);
  const double mu = 200.0;  // exercises the mu >= 64 branch
  const int n = 20'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mu));
  EXPECT_NEAR(sum / n, mu, 1.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(14);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, NormalMoments) {
  Rng rng(15);
  const int n = 100'000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(16);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<usize>(i)], i);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(17);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  std::vector<int> id(100);
  std::iota(id.begin(), id.end(), 0);
  EXPECT_NE(v, id);
}

// Property sweep: the merged Poisson token intuition — sum of n independent
// Poisson(λ) draws matches one Poisson(nλ) draw in mean.
class PoissonSuperposition : public ::testing::TestWithParam<std::pair<u32, double>> {};

TEST_P(PoissonSuperposition, SumMatchesMergedRate) {
  const auto [n, lambda] = GetParam();
  Rng rng(100 + n);
  const int reps = 20'000;
  double per_node_sum = 0.0;
  for (int r = 0; r < reps; ++r) {
    for (u32 i = 0; i < n; ++i) per_node_sum += static_cast<double>(rng.poisson(lambda));
  }
  const double mean = per_node_sum / reps;
  EXPECT_NEAR(mean, n * lambda, 0.05 * n * lambda + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Rates, PoissonSuperposition,
                         ::testing::Values(std::pair<u32, double>{2, 0.5},
                                           std::pair<u32, double>{5, 1.0},
                                           std::pair<u32, double>{10, 0.2},
                                           std::pair<u32, double>{20, 2.0}));

}  // namespace
}  // namespace amm
