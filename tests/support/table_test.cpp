#include "support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace amm {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2.5"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // All lines equal width.
  std::istringstream iss(out);
  std::string line;
  usize width = 0;
  while (std::getline(iss, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_EQ(oss.str(), "a,b\n1,2\n3,4\n");
}

TEST(Table, RowCount) {
  Table t({"h"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"r"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(1.0, 0), "1");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

TEST(FmtCi, Format) {
  EXPECT_EQ(fmt_ci(0.5, 0.4, 0.6), "0.500 [0.400, 0.600]");
}

}  // namespace
}  // namespace amm
