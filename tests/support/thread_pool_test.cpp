#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace amm {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&counter] { ++counter; });
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SizeDefaultsToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&](usize i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](usize) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, SingleElement) {
  ThreadPool pool(2);
  std::atomic<int> hits{0};
  parallel_for(pool, 1, [&](usize i) {
    EXPECT_EQ(i, 0u);
    ++hits;
  });
  EXPECT_EQ(hits.load(), 1);
}

TEST(ParallelFor, SumMatchesSequential) {
  ThreadPool pool(3);
  std::vector<long> partial(4096);
  parallel_for(pool, partial.size(), [&](usize i) { partial[i] = static_cast<long>(i); });
  const long sum = std::accumulate(partial.begin(), partial.end(), 0L);
  EXPECT_EQ(sum, 4095L * 4096L / 2);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) pool.submit([&counter] { ++counter; });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (batch + 1) * 20);
  }
}

}  // namespace
}  // namespace amm
