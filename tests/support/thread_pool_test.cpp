#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace amm {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&counter] { ++counter; });
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SizeDefaultsToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&](usize i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](usize) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, SingleElement) {
  ThreadPool pool(2);
  std::atomic<int> hits{0};
  parallel_for(pool, 1, [&](usize i) {
    EXPECT_EQ(i, 0u);
    ++hits;
  });
  EXPECT_EQ(hits.load(), 1);
}

TEST(ParallelFor, SumMatchesSequential) {
  ThreadPool pool(3);
  std::vector<long> partial(4096);
  parallel_for(pool, partial.size(), [&](usize i) { partial[i] = static_cast<long>(i); });
  const long sum = std::accumulate(partial.begin(), partial.end(), 0L);
  EXPECT_EQ(sum, 4095L * 4096L / 2);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) pool.submit([&counter] { ++counter; });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (batch + 1) * 20);
  }
}

// Contention stress for the TSan job: many small parallel_for batches while
// outside threads hammer wait_idle concurrently. Exercises the
// queue/in_flight/condvar handshake from every side at once — exactly the
// code a future work-stealing or sharded-queue refactor would touch first.
TEST(ThreadPoolStress, SmallBatchesWithConcurrentWaitIdle) {
  ThreadPool pool(4);
  std::atomic<u64> total{0};
  std::atomic<bool> stop{false};
  std::thread waiter_a([&] {
    while (!stop.load(std::memory_order_relaxed)) pool.wait_idle();
  });
  std::thread waiter_b([&] {
    while (!stop.load(std::memory_order_relaxed)) pool.wait_idle();
  });

  constexpr int kBatches = 200;
  constexpr usize kBatchSize = 37;
  for (int batch = 0; batch < kBatches; ++batch) {
    parallel_for(pool, kBatchSize, [&](usize) { total.fetch_add(1, std::memory_order_relaxed); });
  }
  stop = true;
  waiter_a.join();
  waiter_b.join();
  EXPECT_EQ(total.load(), static_cast<u64>(kBatches) * kBatchSize);
}

TEST(ThreadPoolStress, ConcurrentSubmittersSeeAllTasksDrain) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 500;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerSubmitter; ++i) pool.submit([&counter] { ++counter; });
    });
  }
  for (auto& t : submitters) t.join();
  pool.wait_idle();
  EXPECT_EQ(counter.load(), kSubmitters * kPerSubmitter);
}

// The no-throw contract (thread_pool.hpp): an exception escaping a task
// aborts with an attributable message instead of std::terminate/UB. The
// pool is constructed inside the death statement so the forked child owns
// its threads.
TEST(ThreadPoolDeathTest, ThrowingTaskAbortsWithMessage) {
  EXPECT_DEATH(
      {
        ThreadPool pool(2);
        pool.submit([] { throw std::runtime_error("boom"); });
        pool.wait_idle();
      },
      "no-throw contract");
}

}  // namespace
}  // namespace amm
