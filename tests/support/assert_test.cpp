#include "support/assert.hpp"

#include <gtest/gtest.h>

namespace amm {
namespace {

TEST(Contracts, ExpectsPassesOnTrue) {
  AMM_EXPECTS(1 + 1 == 2);
  SUCCEED();
}

TEST(ContractsDeathTest, ExpectsAbortsOnFalse) {
  EXPECT_DEATH(AMM_EXPECTS(false), "precondition");
}

TEST(ContractsDeathTest, EnsuresAbortsOnFalse) {
  EXPECT_DEATH(AMM_ENSURES(2 > 3), "postcondition");
}

TEST(ContractsDeathTest, AssertAbortsOnFalse) {
  EXPECT_DEATH(AMM_ASSERT(0 == 1), "invariant");
}

}  // namespace
}  // namespace amm
