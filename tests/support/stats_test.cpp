#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.hpp"

namespace amm {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal() * 3.0 + 1.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStats, CiShrinksWithSamples) {
  RunningStats small, large;
  Rng rng(2);
  for (int i = 0; i < 100; ++i) small.add(rng.normal());
  for (int i = 0; i < 10'000; ++i) large.add(rng.normal());
  EXPECT_LT(large.ci95_half_width(), small.ci95_half_width());
}

TEST(BernoulliEstimate, RateAndInterval) {
  BernoulliEstimate e;
  for (int i = 0; i < 70; ++i) e.add(true);
  for (int i = 0; i < 30; ++i) e.add(false);
  EXPECT_DOUBLE_EQ(e.rate(), 0.7);
  const auto [lo, hi] = e.wilson95();
  EXPECT_LT(lo, 0.7);
  EXPECT_GT(hi, 0.7);
  EXPECT_GT(lo, 0.55);
  EXPECT_LT(hi, 0.82);
}

TEST(BernoulliEstimate, EmptyIntervalIsVacuous) {
  BernoulliEstimate e;
  const auto [lo, hi] = e.wilson95();
  EXPECT_EQ(lo, 0.0);
  EXPECT_EQ(hi, 1.0);
}

TEST(BernoulliEstimate, MergeAddsCounts) {
  BernoulliEstimate a, b;
  a.add(true);
  b.add(false);
  b.add(true);
  a.merge(b);
  EXPECT_EQ(a.trials(), 3u);
  EXPECT_EQ(a.successes(), 2u);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959964), 0.975, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.959964), 0.025, 1e-6);
  EXPECT_NEAR(normal_upper_tail(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_upper_tail(3.0), 0.00135, 1e-5);
}

TEST(NormalCdf, Symmetry) {
  for (const double x : {0.3, 1.1, 2.7}) {
    EXPECT_NEAR(normal_cdf(x) + normal_cdf(-x), 1.0, 1e-12);
  }
}

TEST(LogBinomial, SmallCases) {
  EXPECT_NEAR(std::exp(log_binomial(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial(10, 0)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial(10, 10)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial(52, 5)), 2'598'960.0, 1.0);
}

TEST(BinomialCdf, ExactSmall) {
  // X ~ Bin(4, 0.5): P[X <= 1] = (1 + 4)/16.
  EXPECT_NEAR(binomial_cdf(1, 4, 0.5), 5.0 / 16.0, 1e-12);
  EXPECT_NEAR(binomial_cdf(4, 4, 0.5), 1.0, 1e-12);
  EXPECT_NEAR(binomial_cdf(0, 3, 0.25), std::pow(0.75, 3), 1e-12);
}

TEST(BinomialCdf, DegenerateP) {
  EXPECT_DOUBLE_EQ(binomial_cdf(3, 10, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_cdf(3, 10, 1.0), 0.0);
}

TEST(BinomialCdf, NormalApproxAgreesWithExactNearCrossover) {
  // Just below the switch to the approximation; compare both regimes.
  const double exact = binomial_cdf(5000, 10'000, 0.5);
  EXPECT_NEAR(exact, 0.5, 0.02);
}

TEST(PoissonUpperTail, Basics) {
  EXPECT_DOUBLE_EQ(poisson_upper_tail(0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(poisson_upper_tail(3, 0.0), 0.0);
  // P[X >= 1] = 1 - e^-mu.
  EXPECT_NEAR(poisson_upper_tail(1, 2.0), 1.0 - std::exp(-2.0), 1e-12);
  // Tail decreases in k.
  EXPECT_GT(poisson_upper_tail(2, 3.0), poisson_upper_tail(5, 3.0));
}

TEST(FitLinear, PerfectLine) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{3, 5, 7, 9, 11};  // y = 1 + 2x
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLinear, NoisyLineRecovered) {
  Rng rng(3);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    x.push_back(i);
    y.push_back(4.0 - 0.5 * i + rng.normal());
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, -0.5, 0.01);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(FitLinear, FlatDataHasZeroSlope) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y{5, 5, 5};
  const LinearFit fit = fit_linear(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 5.0);
}

}  // namespace
}  // namespace amm
