#include "check/explorer.hpp"

#include <gtest/gtest.h>

namespace amm::check {
namespace {

TEST(Explorer, DecideOwnInputViolatesAgreement) {
  const auto proto = make_decide_own_input();
  const ExploreResult res = explore(*proto, 2);
  EXPECT_TRUE(res.agreement_violation);
  EXPECT_EQ(res.verdict(), "agreement violated");
}

TEST(Explorer, DecideOwnInputKeepsValidity) {
  // Homogeneous inputs decide the common value — validity itself holds.
  const auto proto = make_decide_own_input();
  const ExploreResult res = explore(*proto, 2);
  EXPECT_FALSE(res.validity_violation);
}

TEST(Explorer, MinAuthorRaceViolatesAgreement) {
  // Two nodes can assemble different (n-1)-subsets and pick different
  // minimal authors.
  const auto proto = make_min_author_race(3);
  const ExploreResult res = explore(*proto, 3);
  EXPECT_TRUE(res.agreement_violation);
}

TEST(Explorer, WaitForAllIsNotOneResilient) {
  // Safe, but a single crashed node blocks everyone forever.
  const auto proto = make_wait_for_all(3);
  const ExploreResult res = explore(*proto, 3);
  EXPECT_FALSE(res.agreement_violation);
  EXPECT_FALSE(res.validity_violation);
  EXPECT_FALSE(res.one_resilient);
  EXPECT_EQ(res.verdict(), "not 1-resilient (v-free run never decides)");
}

TEST(Explorer, MajorityRaceHasBivalentInitialConfiguration) {
  // Lemma 2.2 made concrete.
  const auto proto = make_majority_race(3);
  const ExploreResult res = explore(*proto, 3);
  ASSERT_TRUE(res.bivalent_initial.has_value()) << res.verdict();
  // A mixed input vector must be the witness.
  const auto& inputs = *res.bivalent_initial;
  bool mixed = false;
  for (const u8 b : inputs) mixed |= (b != inputs[0]);
  EXPECT_TRUE(mixed);
}

TEST(Explorer, MajorityRaceFailsTheorem21SomeWay) {
  // Theorem 2.1: every protocol fails at least one requirement. For the
  // majority race the explorer must find an agreement violation, a
  // resilience violation, or an eternal-bivalence witness.
  const auto proto = make_majority_race(3);
  const ExploreResult res = explore(*proto, 3);
  const bool fails = res.agreement_violation || res.validity_violation || !res.one_resilient ||
                     (res.bivalent_initial.has_value() && res.lemma23_holds);
  EXPECT_TRUE(fails) << res.verdict();
}

TEST(Explorer, EveryCandidateFailsTheorem21) {
  // The full sweep used by exp_e1: no candidate survives all requirements.
  std::vector<std::unique_ptr<AsyncProtocol>> protos;
  protos.push_back(make_decide_own_input());
  protos.push_back(make_min_author_race(3));
  protos.push_back(make_wait_for_all(3));
  protos.push_back(make_majority_race(3));
  for (const auto& p : protos) {
    const ExploreResult res = explore(*p, 3);
    const bool fails = res.agreement_violation || res.validity_violation || !res.one_resilient ||
                       (res.bivalent_initial.has_value() && res.lemma23_holds);
    EXPECT_TRUE(fails) << p->name() << ": " << res.verdict();
  }
}

TEST(Explorer, ExplorationIsFiniteAndCounted) {
  const auto proto = make_wait_for_all(2);
  const ExploreResult res = explore(*proto, 2);
  EXPECT_GT(res.configs_explored, 0u);
  EXPECT_FALSE(res.budget_exhausted);
  EXPECT_FALSE(res.append_bound_exceeded);
}

TEST(Explorer, BudgetExhaustionIsReported) {
  ExploreLimits limits;
  limits.max_configs = 3;
  const auto proto = make_majority_race(3);
  const ExploreResult res = explore(*proto, 3, limits);
  EXPECT_TRUE(res.budget_exhausted);
  EXPECT_EQ(res.verdict(), "budget exhausted");
}

}  // namespace
}  // namespace amm::check
