#include "check/sync_valency.hpp"

#include <gtest/gtest.h>

namespace amm::check {
namespace {

TEST(SyncValency, MixedInputsGiveBivalentInitialConfiguration) {
  // Lemma 2.2/3.1 base case: with inputs (+1, -1) the initial
  // configuration is bivalent.
  const auto res = analyze_sync_valency(3, 1, 2, {Vote::kPlus, Vote::kMinus});
  EXPECT_EQ(res.initial_valency, 0b11);
  ASSERT_EQ(res.per_round.size(), 2u);
  EXPECT_EQ(res.per_round[0].configurations, 1u);
  EXPECT_EQ(res.per_round[0].bivalent, 1u);
}

TEST(SyncValency, HomogeneousInputsAreUnivalent) {
  // Validity pins the decision: the initial configuration is univalent.
  const auto res = analyze_sync_valency(3, 1, 2, {Vote::kPlus, Vote::kPlus});
  EXPECT_EQ(res.initial_valency, 0b10);
  EXPECT_EQ(res.per_round[0].bivalent, 0u);
}

TEST(SyncValency, BivalentConfigsSurviveThroughRoundT) {
  // Lemma 3.1: running r = t rounds leaves bivalent end-of-round-t-1
  // prefixes AND reachable disagreement.
  const auto res = analyze_sync_valency(3, 1, 1, {Vote::kPlus, Vote::kMinus});
  EXPECT_TRUE(res.per_round[0].disagreement_reachable);
}

TEST(SyncValency, TPlusOneRoundsNoDisagreementAnywhere) {
  // Theorem 3.2: at t+1 rounds no adversary completion splits the nodes —
  // checked over the COMPLETE strategy tree.
  const auto res = analyze_sync_valency(3, 1, 2, {Vote::kPlus, Vote::kMinus});
  for (const auto& rv : res.per_round) {
    EXPECT_FALSE(rv.disagreement_reachable) << "round " << rv.round;
  }
}

TEST(SyncValency, FourNodesMatchLemma) {
  // Knife-edge inputs (sum -1): a single +1 Byzantine origin shown to a
  // subset splits the decisions in a one-round run. (Inputs with sum +1
  // cannot be split by any ±1 append — the sign convention absorbs it.)
  const auto broken = analyze_sync_valency(4, 1, 1, {Vote::kPlus, Vote::kMinus, Vote::kMinus});
  EXPECT_TRUE(broken.per_round[0].disagreement_reachable);
  const auto safe = analyze_sync_valency(4, 1, 2, {Vote::kPlus, Vote::kMinus, Vote::kMinus});
  for (const auto& rv : safe.per_round) {
    EXPECT_FALSE(rv.disagreement_reachable);
  }
}

TEST(SyncValency, ConfigurationCountsMatchTreeShape) {
  const auto res = analyze_sync_valency(3, 1, 2, {Vote::kPlus, Vote::kMinus});
  // Level 0: the initial configuration; level 1: one per round-1 choice
  // combo (17 with 2 correct nodes: 1 + 4*4 subsets).
  EXPECT_EQ(res.per_round[0].configurations, 1u);
  EXPECT_EQ(res.per_round[1].configurations, 17u);
}

TEST(SyncValencyDeathTest, InputSizeChecked) {
  EXPECT_DEATH((void)analyze_sync_valency(3, 1, 1, {Vote::kPlus}), "precondition");
}

}  // namespace
}  // namespace amm::check
