#include "check/determinism.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace amm::check {
namespace {

// Each of the five protocols, run twice with an identical seed as two
// concurrent ThreadPool tasks, must produce byte-identical traces. This is
// the executable definition of "reproducible per seed" that Theorems
// 5.4/5.6's measured statistics rely on.
TEST(Determinism, AllProtocolsByteIdenticalAcrossPoolRuns) {
  ThreadPool pool(4);
  for (const u64 seed : {1ULL, 42ULL, 0xdeadbeefULL}) {
    const std::vector<DeterminismReport> reports = audit_all_protocols(pool, seed);
    ASSERT_EQ(reports.size(), kAllProtocols.size());
    for (const DeterminismReport& r : reports) {
      EXPECT_TRUE(r.deterministic) << report_to_string(r);
      EXPECT_EQ(r.digest_a, r.digest_b) << report_to_string(r);
    }
  }
}

// Traces must be a function of the seed, not merely constant: for the
// continuous-time protocols the elapsed time is bit-serialized, so two
// different seeds virtually never collide. (sync_ba is excluded — its
// round-structured outcome can legitimately coincide across seeds.)
TEST(Determinism, TraceDependsOnSeed) {
  for (const ProtocolKind protocol :
       {ProtocolKind::kTimestampBa, ProtocolKind::kChainBa, ProtocolKind::kDagBa,
        ProtocolKind::kNakamoto}) {
    const std::vector<std::byte> a = run_trace(protocol, 7);
    const std::vector<std::byte> b = run_trace(protocol, 8);
    EXPECT_NE(trace_digest(a), trace_digest(b)) << protocol_name(protocol);
  }
}

// Serial re-execution must match the pooled runs: the fingerprint of a
// trial may not depend on which thread computed it.
TEST(Determinism, PooledDigestsMatchSerialDigests) {
  ThreadPool pool(4);
  constexpr usize kTrials = 16;
  std::vector<u64> pooled(kTrials * kAllProtocols.size());
  parallel_for(pool, pooled.size(), [&](usize i) {
    const ProtocolKind protocol = kAllProtocols[i % kAllProtocols.size()];
    const u64 seed = 1000 + i / kAllProtocols.size();
    pooled[i] = trace_digest(run_trace(protocol, seed));
  });
  for (usize i = 0; i < pooled.size(); ++i) {
    const ProtocolKind protocol = kAllProtocols[i % kAllProtocols.size()];
    const u64 seed = 1000 + i / kAllProtocols.size();
    EXPECT_EQ(pooled[i], trace_digest(run_trace(protocol, seed)))
        << protocol_name(protocol) << " seed=" << seed;
  }
}

TEST(Determinism, ReportRendersBothOutcomes) {
  DeterminismReport ok;
  ok.protocol = ProtocolKind::kChainBa;
  ok.seed = 5;
  ok.deterministic = true;
  ok.digest_a = ok.digest_b = 123;
  EXPECT_NE(report_to_string(ok).find("deterministic"), std::string::npos);

  DeterminismReport bad = ok;
  bad.deterministic = false;
  bad.first_divergence = 16;
  bad.digest_b = 456;
  const std::string s = report_to_string(bad);
  EXPECT_NE(s.find("NONDETERMINISTIC"), std::string::npos);
  EXPECT_NE(s.find("16"), std::string::npos);
}

TEST(Determinism, ProtocolNamesAreUnique) {
  std::vector<std::string> names;
  for (const ProtocolKind p : kAllProtocols) names.emplace_back(protocol_name(p));
  for (usize i = 0; i < names.size(); ++i) {
    for (usize j = i + 1; j < names.size(); ++j) EXPECT_NE(names[i], names[j]);
  }
}

}  // namespace
}  // namespace amm::check
