#include "check/round_lb.hpp"

#include <gtest/gtest.h>

namespace amm::check {
namespace {

TEST(RoundLb, OneByzantineOneRoundBreaks) {
  // n=3, t=1: a single round is not enough — some strategy splits the
  // correct nodes (Lemma 3.1 for t=1).
  const RoundLbResult res = search_round_lb(3, 1, 1);
  EXPECT_TRUE(res.disagreement);
  EXPECT_FALSE(res.search_truncated);
}

TEST(RoundLb, OneByzantineTwoRoundsSafe) {
  // t+1 = 2 rounds: the exhaustive search finds no splitting strategy
  // (Theorem 3.2 tightness, complete search space).
  const RoundLbResult res = search_round_lb(3, 1, 2);
  EXPECT_FALSE(res.disagreement);
  EXPECT_FALSE(res.search_truncated);
  EXPECT_GT(res.executions, 100u);
}

TEST(RoundLb, FourNodesOneByzantine) {
  EXPECT_TRUE(search_round_lb(4, 1, 1).disagreement);
  EXPECT_FALSE(search_round_lb(4, 1, 2).disagreement);
}

TEST(RoundLb, TwoByzantineUpToTwoRoundsBreak) {
  // n=4, t=2: both r=1 and r=2 admit splitting strategies.
  EXPECT_TRUE(search_round_lb(4, 2, 1).disagreement);
  EXPECT_TRUE(search_round_lb(4, 2, 2).disagreement);
}

TEST(RoundLb, ExecutionCountsGrowWithRounds) {
  const RoundLbResult r1 = search_round_lb(3, 1, 2);
  // r1 was a full sweep (no disagreement). A single-round search stops at
  // the first witness, so executions there are smaller.
  const RoundLbResult r0 = search_round_lb(3, 1, 1);
  EXPECT_LT(r0.executions, r1.executions);
}

}  // namespace
}  // namespace amm::check
