#include "check/audit.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "am/memory.hpp"
#include "chain/block_graph.hpp"

namespace amm::check {
namespace {

am::AppendMemory make_chain_memory(u32 nodes, u32 blocks) {
  am::AppendMemory memory(nodes);
  am::MsgId tip{};
  for (u32 i = 0; i < blocks; ++i) {
    std::vector<am::MsgId> refs;
    if (i > 0) refs.push_back(tip);
    tip = memory.append(NodeId{i % nodes}, Vote::kPlus, /*payload=*/i, std::move(refs),
                        static_cast<SimTime>(i));
  }
  return memory;
}

TEST(MemoryAuditor, AcceptsAppendOnlyGrowth) {
  am::AppendMemory memory(3);
  MemoryAuditor auditor;
  auditor.audit(memory);  // empty memory is fine
  am::MsgId first = memory.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);
  auditor.audit(memory);
  memory.append(NodeId{1}, Vote::kMinus, 0, {first}, 2.0);
  memory.append(NodeId{0}, Vote::kPlus, 0, {first}, 3.0);
  auditor.audit(memory);
  EXPECT_EQ(auditor.audits(), 3u);
}

TEST(MemoryAuditor, AcceptsMonotoneViews) {
  am::AppendMemory memory = make_chain_memory(3, 9);
  MemoryAuditor auditor;
  auditor.audit_view(memory.read_at(2.5));
  auditor.audit_view(memory.read_at(5.5));
  auditor.audit_view(memory.read());
  EXPECT_EQ(auditor.audits(), 3u);
}

TEST(MemoryAuditorDeathTest, DetectsPrefixMutation) {
  // The public API cannot mutate a register, so simulate a corrupting bug
  // by auditing one memory and then presenting a different history of the
  // same shape: same lengths, different content.
  am::AppendMemory a(2);
  a.append(NodeId{0}, Vote::kPlus, 7, {}, 1.0);
  am::AppendMemory b(2);
  b.append(NodeId{0}, Vote::kMinus, 7, {}, 1.0);  // "mutated" value

  MemoryAuditor auditor;
  auditor.audit(a);
  EXPECT_DEATH(auditor.audit(b), "immutability");
}

TEST(MemoryAuditorDeathTest, DetectsRegisterShrink) {
  am::AppendMemory longer(2);
  longer.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);
  longer.append(NodeId{0}, Vote::kPlus, 0, {}, 2.0);
  am::AppendMemory shorter(2);
  shorter.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);

  MemoryAuditor auditor;
  auditor.audit(longer);
  EXPECT_DEATH(auditor.audit(shorter), "append-only");
}

TEST(MemoryAuditorDeathTest, DetectsViewRegression) {
  am::AppendMemory memory = make_chain_memory(3, 9);
  MemoryAuditor auditor;
  auditor.audit_view(memory.read());
  EXPECT_DEATH(auditor.audit_view(memory.read_at(2.5)), "view monotonicity");
}

TEST(MessageDigest, SensitiveToEveryField) {
  am::Message base;
  base.id = am::MsgId{1, 2};
  base.value = Vote::kPlus;
  base.payload = 3;
  base.refs = {am::MsgId{0, 0}};
  base.appended_at = 1.5;
  const u64 d = message_digest(base);

  am::Message m = base;
  m.value = Vote::kMinus;
  EXPECT_NE(message_digest(m), d);
  m = base;
  m.payload = 4;
  EXPECT_NE(message_digest(m), d);
  m = base;
  m.appended_at = 1.75;
  EXPECT_NE(message_digest(m), d);
  m = base;
  m.refs.push_back(am::MsgId{0, 1});
  EXPECT_NE(message_digest(m), d);
  m = base;
  m.id = am::MsgId{1, 3};
  EXPECT_NE(message_digest(m), d);
}

TEST(GraphAudit, AcceptsProtocolShapedGraphs) {
  // A small inclusive DAG: two forks joined by a block referencing both.
  am::AppendMemory memory(3);
  const am::MsgId root = memory.append(NodeId{0}, Vote::kPlus, 0, {}, 1.0);
  const am::MsgId left = memory.append(NodeId{1}, Vote::kPlus, 0, {root}, 2.0);
  const am::MsgId right = memory.append(NodeId{2}, Vote::kMinus, 0, {root}, 2.5);
  memory.append(NodeId{0}, Vote::kPlus, 0, {left, right}, 3.0);

  const chain::BlockGraph graph(memory.read());
  audit_graph(graph);  // must not abort
  SUCCEED();

  am::AppendMemory untouched(2);
  const chain::BlockGraph empty(untouched.read());
  audit_graph(empty);
}

TEST(GraphAudit, AcceptsLongChain) {
  am::AppendMemory memory = make_chain_memory(4, 64);
  const chain::BlockGraph graph(memory.read());
  audit_graph(graph);
  SUCCEED();
}

}  // namespace
}  // namespace amm::check
