// Cross-validation between the incremental protocol simulators and the
// BlockGraph analytics: the fast bookkeeping inside the chain/DAG runners
// must agree with a from-scratch reconstruction of the same memory.
#include <gtest/gtest.h>

#include "am/memory.hpp"
#include "chain/rules.hpp"
#include "protocols/chain_ba.hpp"
#include "protocols/dag_ba.hpp"
#include "protocols/timestamp_ba.hpp"

namespace amm {
namespace {

TEST(CrossValidation, TimestampDecisionRecomputableFromFirstPrinciples) {
  proto::TimestampParams params;
  params.scenario.n = 8;
  params.scenario.t = 3;
  params.k = 33;
  for (u64 seed = 0; seed < 10; ++seed) {
    const proto::Outcome out = proto::run_timestamp_ba(params, Rng(seed));
    // byz count + correct count = k, and the decision follows the sign.
    const i64 sum = static_cast<i64>(params.k - out.byz_in_decision_set) -
                    static_cast<i64>(out.byz_in_decision_set);
    const Vote expected = sign_decision(sum);
    for (const auto& d : out.decisions) {
      ASSERT_TRUE(d.has_value());
      EXPECT_EQ(*d, expected);
    }
  }
}

TEST(CrossValidation, ChainSimInternalCountsConsistent) {
  proto::ChainParams params;
  params.scenario.n = 10;
  params.scenario.t = 2;
  params.k = 21;
  params.lambda = 0.5;
  params.adversary = proto::ChainAdversary::kRushExtend;
  for (u64 seed = 0; seed < 10; ++seed) {
    const proto::Outcome out = proto::run_chain_slotted(params, Rng(seed));
    ASSERT_TRUE(out.terminated);
    EXPECT_EQ(out.decision_set_size, params.k);
    EXPECT_LE(out.byz_in_decision_set, out.decision_set_size);
    EXPECT_GE(out.total_appends, static_cast<u64>(params.k));
  }
}

TEST(CrossValidation, DagFastPathVsFullOrderingAcrossSeeds) {
  proto::DagParams fast;
  fast.scenario.n = 8;
  fast.scenario.t = 2;
  fast.k = 41;
  fast.lambda = 0.8;
  auto full = fast;
  full.full_ordering = true;
  int decision_matches = 0;
  for (u64 seed = 0; seed < 20; ++seed) {
    const auto a = proto::run_dag_continuous(fast, Rng(seed));
    const auto b = proto::run_dag_continuous(full, Rng(seed));
    if (a.outcome.decisions == b.outcome.decisions) ++decision_matches;
  }
  // The two decision procedures may disagree only on knife-edge cuts.
  EXPECT_GE(decision_matches, 18);
}

TEST(CrossValidation, BlockGraphOnProtocolMemoryIsWellFormed) {
  // Drive the DAG protocol, then rebuild the graph from the raw append
  // memory and re-check structural invariants on the protocol's output.
  proto::DagParams params;
  params.scenario.n = 6;
  params.scenario.t = 1;
  params.k = 31;
  params.lambda = 1.0;
  params.full_ordering = true;
  const auto res = proto::run_dag_continuous(params, Rng(5));
  ASSERT_TRUE(res.outcome.terminated);
  EXPECT_GE(res.outcome.total_appends, 31u);
}

TEST(CrossValidation, VoteSumMatchesManualRecount) {
  am::AppendMemory memory(4);
  std::vector<am::MsgId> ids;
  am::MsgId prev{};
  for (u32 i = 0; i < 12; ++i) {
    std::vector<am::MsgId> refs;
    if (i > 0) refs.push_back(prev);
    prev = memory.append(NodeId{i % 4}, i % 3 == 0 ? Vote::kMinus : Vote::kPlus, 0,
                         std::move(refs), static_cast<SimTime>(i));
    ids.push_back(prev);
  }
  const chain::BlockGraph graph(memory.read());
  i64 manual = 0;
  for (const auto id : ids) manual += vote_value(memory.msg(id).value);
  EXPECT_EQ(chain::vote_sum(graph, ids), manual);
  EXPECT_EQ(graph.max_depth(), 12u);
  EXPECT_EQ(chain::first_k_of_chain(graph, ids.back(), 5).size(), 5u);
}

}  // namespace
}  // namespace amm
