// The paper's headline claim, as an integration test: with the same node
// count, the same Byzantine share, the same access rate and the same
// adversarial budget, the chain's validity collapses where the DAG's
// survives — "Why BlockDAGs Excel Blockchains".
#include <gtest/gtest.h>

#include "protocols/chain_ba.hpp"
#include "protocols/dag_ba.hpp"

namespace amm {
namespace {

struct HeadlineCase {
  u32 n;
  u32 t;
  double lambda;
};

class ChainVsDag : public ::testing::TestWithParam<HeadlineCase> {};

TEST_P(ChainVsDag, DagOutlivesChain) {
  const auto [n, t, lambda] = GetParam();
  const u32 k = 41;
  const int reps = 25;

  proto::ChainParams chain_params;
  chain_params.scenario.n = n;
  chain_params.scenario.t = t;
  chain_params.k = k;
  chain_params.lambda = lambda;
  chain_params.adversary = proto::ChainAdversary::kRushExtend;

  proto::DagParams dag_params;
  dag_params.scenario.n = n;
  dag_params.scenario.t = t;
  dag_params.k = k;
  dag_params.lambda = lambda;
  dag_params.adversary = proto::DagAdversary::kRateAndWithhold;

  int chain_valid = 0, dag_valid = 0;
  for (u64 seed = 0; seed < reps; ++seed) {
    if (proto::run_chain_slotted(chain_params, Rng(seed)).validity(chain_params.scenario)) {
      ++chain_valid;
    }
    if (proto::run_dag_continuous(dag_params, Rng(seed)).outcome.validity(dag_params.scenario)) {
      ++dag_valid;
    }
  }
  // λ·t > 1 in every parameterized case: past the chain's threshold but
  // far below the DAG's n/2 bound.
  EXPECT_LE(chain_valid, reps / 3);
  EXPECT_GE(dag_valid, 2 * reps / 3);
  EXPECT_GT(dag_valid, chain_valid);
}

INSTANTIATE_TEST_SUITE_P(Headline, ChainVsDag,
                         ::testing::Values(HeadlineCase{10, 3, 1.0}, HeadlineCase{16, 4, 0.75},
                                           HeadlineCase{20, 5, 0.5},
                                           HeadlineCase{12, 4, 1.0}));

TEST(ChainVsDag, BothFineWhenByzantineShareTiny) {
  // Sanity: below both thresholds neither structure fails.
  const u32 n = 16, t = 1, k = 41;
  proto::ChainParams cp;
  cp.scenario.n = n;
  cp.scenario.t = t;
  cp.k = k;
  cp.lambda = 0.05;  // λ·t = 0.05 << 1
  cp.adversary = proto::ChainAdversary::kRushExtend;

  proto::DagParams dp;
  dp.scenario.n = n;
  dp.scenario.t = t;
  dp.k = k;
  dp.lambda = 0.05;

  int chain_valid = 0, dag_valid = 0;
  for (u64 seed = 0; seed < 20; ++seed) {
    chain_valid += proto::run_chain_slotted(cp, Rng(seed)).validity(cp.scenario);
    dag_valid += proto::run_dag_continuous(dp, Rng(seed)).outcome.validity(dp.scenario);
  }
  EXPECT_GE(chain_valid, 18);
  EXPECT_GE(dag_valid, 18);
}

}  // namespace
}  // namespace amm
