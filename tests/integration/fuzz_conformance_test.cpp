// Randomized model-conformance fuzzing: large random executions across the
// whole stack, re-checking every DESIGN.md invariant on states no
// hand-written case would produce.
#include <gtest/gtest.h>

#include <unordered_set>

#include "am/memory.hpp"
#include "am/trace.hpp"
#include "chain/backbone.hpp"
#include "chain/rules.hpp"
#include "protocols/chain_ba.hpp"
#include "protocols/dag_ba.hpp"
#include "support/rng.hpp"

namespace amm {
namespace {

struct FuzzCase {
  u64 seed;
  u32 nodes;
  u32 appends;
};

class MemoryFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(MemoryFuzz, WholeStackInvariants) {
  const auto p = GetParam();
  Rng rng(p.seed);
  am::AppendMemory memory(p.nodes);

  // Random legal history with bursts of identical timestamps, deep ref
  // fans and occasional no-ref roots.
  SimTime now = 0.0;
  std::vector<am::MsgId> all;
  for (u32 i = 0; i < p.appends; ++i) {
    if (!rng.bernoulli(0.3)) now += rng.exponential(1.0);  // 30% same-instant bursts
    std::vector<am::MsgId> refs;
    const usize want = all.empty() ? 0 : rng.uniform_below(4);
    for (usize r = 0; r < want; ++r) {
      const am::MsgId pick = all[rng.uniform_below(all.size())];
      if (std::find(refs.begin(), refs.end(), pick) == refs.end()) refs.push_back(pick);
    }
    all.push_back(memory.append(NodeId{static_cast<u32>(rng.uniform_below(p.nodes))},
                                rng.bernoulli(0.5) ? Vote::kPlus : Vote::kMinus, i,
                                std::move(refs), now));
  }

  // Invariant 1: registers append-only, sizes sum up.
  const am::MemoryView full = memory.read();
  EXPECT_EQ(full.size(), p.appends);

  // Invariant 2: views at sampled times form a chain in the prefix order.
  am::MemoryView prev = memory.read_at(0.0);
  for (double t = 0.0; t <= now + 1.0; t += (now + 1.0) / 7.0) {
    const am::MemoryView v = memory.read_at(t);
    EXPECT_TRUE(prev.subset_of(v));
    prev = v;
  }

  // Invariants 4–5: graph analytics well-formed on the full view.
  const chain::BlockGraph graph(full);
  EXPECT_EQ(graph.block_count(), p.appends);
  const auto order = chain::linearize_dag(graph, chain::PivotRule::kGhost);
  EXPECT_EQ(order.size(), p.appends);
  std::unordered_set<am::MsgId> seen;
  for (const am::MsgId id : order) {
    for (const am::MsgId ref : graph.refs(id)) EXPECT_TRUE(seen.contains(ref));
    seen.insert(id);
  }
  const auto pivot = chain::select_pivot(graph, chain::PivotRule::kLongestChain);
  EXPECT_EQ(pivot.size(), graph.max_depth());

  // Trace roundtrip survives arbitrary histories (same-time bursts use the
  // deterministic id tiebreak, under which same-author refs stay ordered).
  const am::Trace trace = am::capture(memory);
  EXPECT_EQ(trace.entries.size(), p.appends);
  am::Trace parsed;
  ASSERT_TRUE(am::from_string(am::to_string(trace), &parsed));
  EXPECT_EQ(parsed, trace);
}

INSTANTIATE_TEST_SUITE_P(RandomHistories, MemoryFuzz,
                         ::testing::Values(FuzzCase{101, 3, 500}, FuzzCase{102, 8, 1000},
                                           FuzzCase{103, 16, 2000}, FuzzCase{104, 2, 300},
                                           FuzzCase{105, 32, 1500}));

class ProtocolFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(ProtocolFuzz, ChainOutcomesAlwaysSane) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    proto::ChainParams params;
    params.scenario.n = 2 + static_cast<u32>(rng.uniform_below(20));
    params.scenario.t = static_cast<u32>(rng.uniform_below(params.scenario.n));
    params.k = 2 * static_cast<u32>(rng.uniform_below(20)) + 1;
    params.lambda = 0.05 + rng.uniform() * 2.0;
    params.tie_break =
        rng.bernoulli(0.5) ? chain::TieBreak::kRandomized : chain::TieBreak::kDeterministicFirst;
    params.adversarial_ties = rng.bernoulli(0.3);
    params.adversary = static_cast<proto::ChainAdversary>(rng.uniform_below(3));
    params.max_slots = 200'000;

    const proto::Outcome out = rng.bernoulli(0.5) ? proto::run_chain_slotted(params, Rng(rng.next()))
                                                  : proto::run_chain_continuous(params, Rng(rng.next()));
    if (!out.terminated) continue;  // budget can legitimately expire
    EXPECT_EQ(out.decisions.size(), params.scenario.correct_count());
    EXPECT_LE(out.byz_in_decision_set, out.decision_set_size);
    EXPECT_LE(out.decision_set_size, params.k);
    EXPECT_GE(out.total_appends, static_cast<u64>(out.decision_set_size));
  }
}

TEST_P(ProtocolFuzz, DagOutcomesAlwaysSane) {
  Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 20; ++trial) {
    proto::DagParams params;
    params.scenario.n = 2 + static_cast<u32>(rng.uniform_below(16));
    params.scenario.t = static_cast<u32>(rng.uniform_below(params.scenario.n));
    params.k = 2 * static_cast<u32>(rng.uniform_below(30)) + 1;
    params.lambda = 0.05 + rng.uniform() * 2.0;
    params.adversary = static_cast<proto::DagAdversary>(rng.uniform_below(3));
    params.full_ordering = rng.bernoulli(0.3);

    const proto::DagResult res = proto::run_dag_continuous(params, Rng(rng.next()));
    ASSERT_TRUE(res.outcome.terminated);
    EXPECT_LE(res.outcome.byz_in_decision_set, res.outcome.decision_set_size);
    EXPECT_LE(res.dumped, static_cast<u64>(params.k));
    EXPECT_LE(res.outcome.decision_set_size, params.k);
    if (params.scenario.t == 0) {
      EXPECT_EQ(res.outcome.byz_in_decision_set, 0u);
      EXPECT_TRUE(res.outcome.validity(params.scenario));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFuzz, ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace amm
