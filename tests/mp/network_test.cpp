#include "mp/network.hpp"

#include <gtest/gtest.h>

namespace amm::mp {
namespace {

TEST(Network, DeliversPointToPoint) {
  Network net(2, 0.1, 0.5, Rng(1));
  int received = 0;
  NodeId from_seen{99};
  net.attach(NodeId{1}, [&](NodeId from, const WireMessage& msg) {
    ++received;
    from_seen = from;
    EXPECT_EQ(msg.kind, WireMessage::Kind::kReadReq);
  });
  WireMessage msg;
  msg.kind = WireMessage::Kind::kReadReq;
  msg.read_id = 7;
  net.send(NodeId{0}, NodeId{1}, msg);
  net.queue().run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(from_seen, NodeId{0});
}

TEST(Network, DelaysWithinBounds) {
  Network net(2, 0.2, 0.8, Rng(2));
  net.attach(NodeId{1}, [&](NodeId, const WireMessage&) {
    EXPECT_GE(net.queue().now(), 0.2);
    EXPECT_LE(net.queue().now(), 0.8);
  });
  WireMessage msg;
  for (int i = 0; i < 100; ++i) {
    Network fresh(2, 0.2, 0.8, Rng(static_cast<u64>(i)));
    bool delivered = false;
    fresh.attach(NodeId{1}, [&](NodeId, const WireMessage&) {
      delivered = true;
      EXPECT_GE(fresh.queue().now(), 0.2);
      EXPECT_LE(fresh.queue().now(), 0.8);
    });
    fresh.send(NodeId{0}, NodeId{1}, msg);
    fresh.queue().run();
    EXPECT_TRUE(delivered);
  }
}

TEST(Network, BroadcastReachesEveryoneIncludingSelf) {
  Network net(4, 0.0, 0.1, Rng(3));
  std::vector<int> received(4, 0);
  for (u32 i = 0; i < 4; ++i) {
    net.attach(NodeId{i}, [&received, i](NodeId, const WireMessage&) { ++received[i]; });
  }
  WireMessage msg;
  net.broadcast(NodeId{2}, msg);
  net.queue().run();
  for (const int r : received) EXPECT_EQ(r, 1);
}

TEST(Network, CountsMessagesAndBytes) {
  Network net(3, 0.0, 0.1, Rng(4));
  for (u32 i = 0; i < 3; ++i) net.attach(NodeId{i}, [](NodeId, const WireMessage&) {});
  WireMessage msg;
  msg.kind = WireMessage::Kind::kReadReq;
  net.broadcast(NodeId{0}, msg);
  EXPECT_EQ(net.messages_sent(), 3u);
  EXPECT_EQ(net.bytes_sent(), 3u * msg.wire_size());
}

TEST(Network, UnattachedNodeDropsSilently) {
  Network net(2, 0.0, 0.1, Rng(5));
  WireMessage msg;
  net.send(NodeId{0}, NodeId{1}, msg);
  net.queue().run();  // must not crash
  SUCCEED();
}

TEST(WireMessage, SizesScaleWithView) {
  WireMessage small;
  small.kind = WireMessage::Kind::kReadReply;
  WireMessage big = small;
  big.view.resize(100);
  EXPECT_GT(big.wire_size(), small.wire_size());
  EXPECT_EQ(big.wire_size() - small.wire_size(), 100 * kWireRecordBytes);
}

TEST(SignedAppend, DigestDependsOnAllFields) {
  SignedAppend a;
  a.author = NodeId{1};
  a.seq = 2;
  a.value = 3;
  SignedAppend b = a;
  b.value = 4;
  SignedAppend c = a;
  c.seq = 9;
  EXPECT_NE(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
}

}  // namespace
}  // namespace amm::mp
