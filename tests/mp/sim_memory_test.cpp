#include "mp/sim_memory.hpp"

#include <gtest/gtest.h>

namespace amm::mp {
namespace {

TEST(SimulatedAppendMemory, AppendThenReadSeesValue) {
  SimulatedAppendMemory memory(5, 0.05, 0.5, /*seed=*/1);
  memory.append_sync(NodeId{0}, 42);
  const auto view = memory.read_sync(NodeId{3});
  ASSERT_EQ(view.size(), 1u);
  EXPECT_EQ(view[0].value, 42);
  EXPECT_EQ(view[0].author, NodeId{0});
}

TEST(SimulatedAppendMemory, WholeMemoryReadAcrossAuthors) {
  SimulatedAppendMemory memory(4, 0.05, 0.3, 2);
  for (u32 v = 0; v < 4; ++v) memory.append_sync(NodeId{v}, static_cast<i64>(v * 10));
  const auto view = memory.read_sync(NodeId{0});
  EXPECT_EQ(view.size(), 4u);
}

TEST(SimulatedAppendMemory, ConcurrentAppendsAllLand) {
  SimulatedAppendMemory memory(6, 0.05, 0.5, 3);
  for (u32 v = 0; v < 6; ++v) memory.append(NodeId{v}, static_cast<i64>(v));
  memory.run_until_idle();
  const auto view = memory.read_sync(NodeId{5});
  EXPECT_EQ(view.size(), 6u);
}

TEST(SimulatedAppendMemory, PerAuthorSeqPreservesRegisterOrder) {
  // The single-register total order of §1.1: a node's own appends carry
  // increasing seq, visible to every reader.
  SimulatedAppendMemory memory(3, 0.05, 0.2, 4);
  memory.append_sync(NodeId{1}, 100);
  memory.append_sync(NodeId{1}, 200);
  const auto view = memory.read_sync(NodeId{2});
  u32 seq100 = 0, seq200 = 0;
  for (const auto& rec : view) {
    if (rec.value == 100) seq100 = rec.seq;
    if (rec.value == 200) seq200 = rec.seq;
  }
  EXPECT_LT(seq100, seq200);
}

TEST(FullInformationRounds, MessagesQuadraticPerRound) {
  SimulatedAppendMemory memory(6, 0.05, 0.3, 5);
  const auto costs = run_full_information_rounds(memory, 3);
  ASSERT_EQ(costs.size(), 3u);
  // Per round: n appends (2n msgs each) + n reads (2n msgs each) = 4n².
  for (const auto& c : costs) {
    EXPECT_EQ(c.messages, 4u * 6 * 6);
  }
}

TEST(FullInformationRounds, BytesGrowWithHistory) {
  // §4: with legacy full-view reads (the paper's Algorithm 3, kept as the
  // reference configuration) read replies ship the full local view, so
  // later rounds cost more bytes than earlier ones — strictly monotone.
  SimulatedAppendMemory memory(5, 0.05, 0.3, 6, AbdConfig{.delta_reads = false});
  const auto costs = run_full_information_rounds(memory, 4);
  for (usize r = 1; r < costs.size(); ++r) {
    EXPECT_GT(costs[r].bytes, costs[r - 1].bytes) << "round " << r;
  }
}

TEST(FullInformationRounds, DeltaReadsFlattenByteGrowth) {
  // With frontier reads (the default) each round's reads ship only the
  // current round's records: per-round bytes reach a plateau instead of
  // growing with the whole history, while the message count — and thus the
  // protocol structure — is unchanged.
  SimulatedAppendMemory memory(5, 0.05, 0.3, 6);
  const auto costs = run_full_information_rounds(memory, 5);
  ASSERT_GE(costs.size(), 3u);
  for (const auto& c : costs) {
    EXPECT_EQ(c.messages, 4u * 5 * 5);  // structure unchanged: 4n² per round
  }
  // Steady state from round 2 on: every read request names every author in
  // its frontier and every reply ships only the round's delta.
  for (usize r = 2; r < costs.size(); ++r) {
    EXPECT_EQ(costs[r].bytes, costs[1].bytes) << "round " << r;
  }
  // And the plateau is below the legacy cost of the same round.
  SimulatedAppendMemory legacy(5, 0.05, 0.3, 6, AbdConfig{.delta_reads = false});
  const auto legacy_costs = run_full_information_rounds(legacy, 5);
  EXPECT_LT(costs.back().bytes, legacy_costs.back().bytes);
}

}  // namespace
}  // namespace amm::mp
