// Decided-prefix compaction (DESIGN.md §8): CheckpointBuilder folding,
// retain/summary compaction on live worlds, quorum checkpoint sync with a
// lying forger outvoted, parked-cap admission refusal, and the bounded
// verify cache's rotation counters.
#include "mp/abd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>

#include "mp/network.hpp"
#include "net/decision.hpp"

namespace amm::mp {
namespace {

// ---- a capture-only transport for single-node protocol surgery ----
//
// send()/broadcast() log instead of delivering, so a test can feed one
// AbdNode a hand-crafted message sequence (out-of-order records, forged
// checkpoint replies) and inspect exactly what the node emits.
class InjectTransport final : public Transport {
 public:
  explicit InjectTransport(u32 n) : n_(n), handlers_(n) {}

  u32 node_count() const override { return n_; }
  void attach(NodeId id, Handler handler) override {
    handlers_[id.index] = std::move(handler);
  }
  void send(NodeId from, NodeId to, WireMessage msg) override {
    ++messages_sent_;
    bytes_sent_ += msg.wire_size();
    outbox.emplace_back(from, std::move(msg));
    (void)to;
  }
  void broadcast(NodeId from, const WireMessage& msg) override {
    ++messages_sent_;
    bytes_sent_ += msg.wire_size();
    outbox.emplace_back(from, msg);
  }
  u64 messages_sent() const override { return messages_sent_; }
  u64 bytes_sent() const override { return bytes_sent_; }

  /// Delivers `msg` to node `to` as if sent by `from`.
  void deliver(NodeId from, NodeId to, const WireMessage& msg) {
    ASSERT_TRUE(handlers_[to.index]);
    handlers_[to.index](from, msg);
  }

  std::vector<std::pair<NodeId, WireMessage>> outbox;

 private:
  u32 n_;
  std::vector<Handler> handlers_;
  u64 messages_sent_ = 0;
  u64 bytes_sent_ = 0;
};

SignedAppend make_signed(const crypto::KeyRegistry& keys, u32 author, u32 seq, i64 value) {
  SignedAppend rec;
  rec.author = NodeId{author};
  rec.seq = seq;
  rec.value = value;
  rec.sig = keys.sign(rec.author, rec.digest());
  return rec;
}

/// A full history: every author 0..n-1 with every seq 0..depth-1, values
/// alternating sign. Arrival order deliberately interleaved by seq.
std::vector<SignedAppend> full_history(const crypto::KeyRegistry& keys, u32 n, u32 depth) {
  std::vector<SignedAppend> view;
  for (u32 seq = 0; seq < depth; ++seq) {
    for (u32 a = 0; a < n; ++a) {
      view.push_back(make_signed(keys, a, seq, (seq + a) % 2 == 0 ? 1 : -1));
    }
  }
  return view;
}

TEST(CheckpointBuilder, FoldsExactlyAndIncrementally) {
  crypto::KeyRegistry keys(3, 7);
  const std::vector<SignedAppend> view = full_history(keys, 3, 4);
  CheckpointBuilder builder(3);

  Checkpoint all_at_once;
  EXPECT_EQ(builder.extend(all_at_once, view, 4), 12u);
  EXPECT_EQ(all_at_once.folded_below, 4u);
  EXPECT_EQ(all_at_once.folded_records, 12u);
  EXPECT_TRUE(builder.well_formed(all_at_once));

  // Folding 0→2 then 2→4 lands on the same checkpoint: the digest chain
  // is per-author seq-ordered, so incremental folds compose.
  Checkpoint stepped;
  EXPECT_EQ(builder.extend(stepped, view, 2), 6u);
  EXPECT_EQ(builder.extend(stepped, view, 4), 6u);
  EXPECT_TRUE(stepped.structurally_equal(all_at_once));

  // vote_sum is the exact ±1 sign sum over the folded set.
  i64 sum = 0;
  for (const SignedAppend& rec : view) sum += rec.value >= 0 ? 1 : -1;
  EXPECT_EQ(all_at_once.vote_sum, sum);

  // The chain is order-sensitive: a different value at one slot moves it.
  std::vector<SignedAppend> tampered = view;
  tampered[0].value = -tampered[0].value;
  Checkpoint other;
  builder.extend(other, tampered, 4);
  EXPECT_NE(other.chains[tampered[0].author.index],
            all_at_once.chains[tampered[0].author.index]);
}

TEST(CheckpointBuilder, EmptyCheckpointIsWellFormed) {
  CheckpointBuilder builder(5);
  const Checkpoint empty;
  EXPECT_TRUE(builder.well_formed(empty));

  // A node is born with a signed empty checkpoint.
  Network net(3, 0.05, 0.5, Rng(3));
  crypto::KeyRegistry keys(3, 3);
  AbdNode node(NodeId{1}, net, keys);
  EXPECT_EQ(node.checkpoint().folded_below, 0u);
  EXPECT_EQ(node.checkpoint().sig.signer, NodeId{1});
  EXPECT_TRUE(keys.verify(node.checkpoint().digest(), node.checkpoint().sig));
}

struct SmallWorld {
  crypto::KeyRegistry keys;
  Network net;
  std::vector<std::unique_ptr<AbdNode>> nodes;

  SmallWorld(u32 n, u64 seed, AbdConfig config)
      : keys(n, seed), net(n, 0.05, 0.5, Rng(seed + 1)) {
    for (u32 i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<AbdNode>(NodeId{i}, net, keys, config));
    }
  }

  /// Every node appends `rounds` values; run to idle between rounds so all
  /// watermarks converge (every author's prefix is everywhere).
  void drive(u32 rounds) {
    i64 value = 1;
    for (u32 r = 0; r < rounds; ++r) {
      for (auto& node : nodes) node->begin_append((value % 3 == 0) ? -value : value, [] {});
      ++value;
      net.queue().run();
    }
  }
};

TEST(AbdCheckpoint, ManualRetainCompactionIsCrossCheckable) {
  SmallWorld world(3, 11, AbdConfig{.compact = CompactConfig{.enabled = true,
                                                             .auto_interval = 0}});
  world.drive(6);
  for (auto& node : world.nodes) {
    EXPECT_EQ(node->stability_cut(), 6u);
    const usize before = node->live_records();
    node->compact_below(node->stability_cut());
    EXPECT_EQ(node->live_records(), before);  // retain mode keeps bodies
    EXPECT_EQ(node->checkpoint().folded_below, 6u);
    EXPECT_EQ(node->stats().records_folded, 18u);
  }
  // Same cut ⇒ byte-identical summaries: the cross-check peers run.
  for (const auto& node : world.nodes) {
    EXPECT_TRUE(node->checkpoint().structurally_equal(world.nodes[0]->checkpoint()));
    EXPECT_TRUE(world.keys.verify(node->checkpoint().digest(), node->checkpoint().sig));
  }
  // Clamped to the stability cut; re-compacting at the cut is a no-op.
  world.nodes[0]->compact_below(1000);
  EXPECT_EQ(world.nodes[0]->checkpoint().folded_below, 6u);
  EXPECT_EQ(world.nodes[0]->stats().compactions, 1u);
}

TEST(AbdCheckpoint, SummaryModeErasesFoldedBodiesAndDecidesExactly) {
  const AbdConfig summary{.compact = CompactConfig{.enabled = true,
                                                   .retain_records = false,
                                                   .auto_interval = 0}};
  SmallWorld world(3, 13, summary);
  SmallWorld twin(3, 13, AbdConfig{});  // same seeds, compaction off
  world.drive(8);
  twin.drive(8);

  for (usize i = 0; i < world.nodes.size(); ++i) {
    AbdNode& node = *world.nodes[i];
    const std::vector<SignedAppend> before = node.local_view();
    // Fold below 5 of the 8 stable rows so a live suffix survives the cut.
    node.compact_below(5);
    const Checkpoint& ckpt = node.checkpoint();
    EXPECT_EQ(ckpt.folded_below, 5u);
    // Bodies below the cut are gone; the suffix survives in arrival order.
    EXPECT_EQ(node.live_records(), before.size() - ckpt.folded_records);
    for (const SignedAppend& rec : node.local_view()) {
      EXPECT_GE(rec.seq, ckpt.folded_below);
    }
    // Algorithm 6 over (checkpoint, suffix) equals the uncompacted twin's
    // plain rule for every k at or past the fold.
    const std::vector<SignedAppend> twin_view = twin.nodes[i]->local_view();
    ASSERT_EQ(before.size(), twin_view.size());
    for (u32 k = static_cast<u32>(ckpt.folded_records);
         k <= static_cast<u32>(twin_view.size()); ++k) {
      const net::Decision direct = net::decide_first_k(twin_view, k);
      const net::Decision folded =
          net::decide_first_k_with_checkpoint(ckpt, node.local_view(), k);
      EXPECT_EQ(folded.sign, direct.sign) << "k=" << k;
      EXPECT_EQ(folded.decided_over, direct.decided_over) << "k=" << k;
    }
  }
}

TEST(AbdCheckpoint, AutoCompactionQuantizedCutsAgree) {
  // Auto-compaction with a shared quantum: nodes fold on their own
  // cadence, but every cut is a multiple of the quantum, so any two nodes
  // at the same folded_below are byte-identical (quorum sync depends on
  // this).
  const AbdConfig config{.compact = CompactConfig{.enabled = true,
                                                  .retain_records = true,
                                                  .lag = 2,
                                                  .quantum = 4,
                                                  .auto_interval = 8}};
  SmallWorld world(3, 17, config);
  world.drive(12);
  u64 folded = 0;
  for (const auto& node : world.nodes) {
    EXPECT_EQ(node->checkpoint().folded_below % 4, 0u);
    folded += node->stats().records_folded;
    for (const auto& other : world.nodes) {
      if (node->checkpoint().folded_below == other->checkpoint().folded_below) {
        EXPECT_TRUE(node->checkpoint().structurally_equal(other->checkpoint()));
      }
    }
  }
  EXPECT_GT(folded, 0u);
}

TEST(AbdCheckpoint, SyncAdoptsQuorumAgreedSummaryAndOutvotesForger) {
  // Restart scenario: a summary-mode node with empty state syncs the
  // decided prefix from its peers. Node 4 answers with a self-signed lie;
  // three honest replies agree structurally and win the vote.
  constexpr u32 kN = 5;
  constexpr u32 kCut = 8;
  crypto::KeyRegistry keys(kN, 23);
  InjectTransport net(kN);
  const AbdConfig summary{.compact = CompactConfig{.enabled = true,
                                                   .retain_records = false,
                                                   .auto_interval = 0}};
  AbdNode node(NodeId{0}, net, keys, summary);

  // The agreed history: all authors, seqs 0..kCut+1 (two live rows).
  const std::vector<SignedAppend> history = full_history(keys, kN, kCut + 2);
  CheckpointBuilder builder(kN);
  Checkpoint honest;
  builder.extend(honest, history, kCut);
  ASSERT_TRUE(builder.well_formed(honest));

  bool synced = false;
  node.begin_checkpoint_sync([&synced](bool ok) { synced = ok; });
  ASSERT_FALSE(net.outbox.empty());
  ASSERT_EQ(net.outbox.back().second.kind, WireMessage::Kind::kCheckpointReq);
  const u64 rid = net.outbox.back().second.read_id;

  const auto reply_from = [&](u32 peer, const Checkpoint& cp) {
    WireMessage reply;
    reply.kind = WireMessage::Kind::kCheckpointReply;
    reply.read_id = rid;
    reply.checkpoint = cp;
    reply.checkpoint.sig = keys.sign(NodeId{peer}, reply.checkpoint.digest());
    net.deliver(NodeId{peer}, NodeId{0}, reply);
  };

  // A structurally valid lie (well-formed, self-signed) from node 4.
  Checkpoint lie;
  std::vector<SignedAppend> lying_history = history;
  for (SignedAppend& rec : lying_history) rec.value = -1;  // all-minus
  builder.extend(lie, lying_history, kCut);
  ASSERT_TRUE(builder.well_formed(lie));
  reply_from(4, lie);
  EXPECT_FALSE(synced);

  // A reply whose signature is not the responder's own is ignored.
  WireMessage relayed;
  relayed.kind = WireMessage::Kind::kCheckpointReply;
  relayed.read_id = rid;
  relayed.checkpoint = honest;
  relayed.checkpoint.sig = keys.sign(NodeId{2}, relayed.checkpoint.digest());
  net.deliver(NodeId{1}, NodeId{0}, relayed);
  EXPECT_FALSE(synced);

  reply_from(1, honest);
  reply_from(2, honest);
  EXPECT_FALSE(synced);  // two honest + one lie: no quorum of three yet
  reply_from(3, honest);
  EXPECT_TRUE(synced);

  // Adopted: the honest summary, re-signed locally, watermarks jumped.
  EXPECT_TRUE(node.checkpoint().structurally_equal(honest));
  EXPECT_EQ(node.checkpoint().sig.signer, NodeId{0});
  EXPECT_EQ(node.stats().checkpoint_syncs, 1u);
  EXPECT_EQ(node.live_records(), 0u);

  // The live suffix now admits contiguously from the cut...
  for (u32 seq = kCut; seq < kCut + 2; ++seq) {
    for (u32 a = 0; a < kN; ++a) {
      WireMessage append;
      append.kind = WireMessage::Kind::kAppend;
      append.append = make_signed(keys, a, seq, 1);
      net.deliver(NodeId{a}, NodeId{0}, append);
    }
  }
  EXPECT_EQ(node.live_records(), usize{kN} * 2);
  // ...and a folded record is recognized as already held.
  WireMessage replay;
  replay.kind = WireMessage::Kind::kAppend;
  replay.append = make_signed(keys, 1, 3, 1);
  net.deliver(NodeId{1}, NodeId{0}, replay);
  EXPECT_EQ(node.live_records(), usize{kN} * 2);
}

TEST(AbdCheckpoint, ParkedCapRefusesOutOfOrderFlood) {
  crypto::KeyRegistry keys(3, 29);
  InjectTransport net(3);
  const AbdConfig capped{.compact = CompactConfig{.parked_cap = 2}};
  AbdNode node(NodeId{0}, net, keys, capped);

  // Author 1 arrives far out of order: seqs 5..1 with seq 0 missing. Only
  // parked_cap records park; the rest are refused, not buffered.
  for (u32 seq = 5; seq >= 1; --seq) {
    WireMessage append;
    append.kind = WireMessage::Kind::kAppend;
    append.append = make_signed(keys, 1, seq, 1);
    net.deliver(NodeId{1}, NodeId{0}, append);
  }
  EXPECT_EQ(node.live_records(), 2u);
  EXPECT_EQ(node.stats().parked_rejects, 3u);

  // The refused records stayed above the advertised frontier, so the
  // prefix still heals: seq 0 arrives, the two parked records chain in.
  WireMessage base;
  base.kind = WireMessage::Kind::kAppend;
  base.append = make_signed(keys, 1, 0, 1);
  net.deliver(NodeId{1}, NodeId{0}, base);
  EXPECT_EQ(node.live_records(), 3u);
}

TEST(AbdCheckpoint, VerifyCacheRotationBoundsAndCounters) {
  crypto::KeyRegistry keys(2, 31);
  InjectTransport net(2);
  const AbdConfig tiny_cache{.verify_cache_cap = 8};
  AbdNode node(NodeId{0}, net, keys, tiny_cache);

  for (u32 seq = 0; seq < 100; ++seq) {
    WireMessage append;
    append.kind = WireMessage::Kind::kAppend;
    append.append = make_signed(keys, 1, seq, 1);
    net.deliver(NodeId{1}, NodeId{0}, append);
    // Redeliver: the duplicate's signature check hits the cache.
    net.deliver(NodeId{1}, NodeId{0}, append);
  }
  EXPECT_EQ(node.live_records(), 100u);
  EXPECT_GT(node.verify_cache_misses(), 0u);
  EXPECT_GT(node.verify_cache_hits(), 0u);
  EXPECT_GT(node.verify_cache_evictions(), 0u);
  // Two generations of at most capacity/2 + 1 keys each.
  EXPECT_LE(node.verify_cache_size(), 10u);
}

}  // namespace
}  // namespace amm::mp
