// Equivalence property test for frontier (delta) reads — the key safety
// argument of the wire optimisation (DESIGN.md §9).
//
// Legacy mode differs from delta mode only on the reader side: the read
// request carries an empty frontier instead of the watermark vector.
// Responder code is identical in both modes, so a delta-mode world and a
// legacy-mode world driven by the same operation schedule issue the *same
// sequence of send() calls* — and since the simulated Network draws one
// delay per send() in call order, both worlds execute bit-identical
// schedules. That turns "the merged view of a frontier read equals the
// merged view of a full read" from a distributional claim into a strict
// per-schedule equality, which this file asserts element- and order-wise
// for every read result and every final local view, across crash and
// forger configurations and a seed sweep.
#include "mp/abd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "mp/network.hpp"

namespace amm::mp {
namespace {

struct World {
  crypto::KeyRegistry keys;
  Network net;
  std::vector<std::unique_ptr<AbdNode>> nodes;  // the correct nodes
  std::vector<std::unique_ptr<CrashedNode>> dead;
  std::unique_ptr<ForgerNode> forger;

  World(u32 n, u32 crashed, bool with_forger, u64 seed, AbdConfig config)
      : keys(n, seed), net(n, 0.05, 0.5, Rng(seed + 1)) {
    const u32 faulty = crashed + (with_forger ? 1u : 0u);
    AMM_EXPECTS(faulty < (n + 1) / 2);  // keep a correct majority
    const u32 correct = n - faulty;
    for (u32 i = 0; i < correct; ++i) {
      nodes.push_back(std::make_unique<AbdNode>(NodeId{i}, net, keys, config));
    }
    for (u32 i = correct; i < correct + crashed; ++i) {
      dead.push_back(std::make_unique<CrashedNode>(NodeId{i}, net));
    }
    if (with_forger) {
      forger = std::make_unique<ForgerNode>(NodeId{n - 1}, /*victim=*/NodeId{0}, net, keys);
    }
  }
};

/// Drives `world` through a deterministic schedule of interleaved appends
/// and reads derived from `schedule_seed` (independent of the network's
/// delay stream). Returns every read result in completion order plus the
/// final local views — the observable behaviour the two modes must share.
struct Observation {
  std::vector<std::vector<SignedAppend>> reads;
  std::vector<std::vector<SignedAppend>> final_views;
  u64 messages = 0;
};

Observation run_schedule(World& world, u64 schedule_seed) {
  Observation obs;
  Rng rng(schedule_seed);
  const usize correct = world.nodes.size();
  i64 next_value = 1;
  for (u32 batch = 0; batch < 6; ++batch) {
    // A burst of concurrent appends (some nodes several, exercising the
    // pipeline), then a burst of concurrent reads, then run to idle — so
    // appends and reads from different nodes interleave on the wire.
    const u64 appends = 1 + rng.uniform_below(5);
    for (u64 a = 0; a < appends; ++a) {
      const usize who = static_cast<usize>(rng.uniform_below(correct));
      world.nodes[who]->begin_append(next_value++, [] {});
    }
    const u64 readers = 1 + rng.uniform_below(3);
    for (u64 r = 0; r < readers; ++r) {
      const usize who = static_cast<usize>(rng.uniform_below(correct));
      world.nodes[who]->begin_read([&obs](const std::vector<SignedAppend>& view) {
        obs.reads.push_back(view);
      });
    }
    world.net.queue().run();
  }
  for (const auto& node : world.nodes) obs.final_views.push_back(node->local_view());
  obs.messages = world.net.messages_sent();
  return obs;
}

void expect_equal_views(const std::vector<SignedAppend>& delta,
                        const std::vector<SignedAppend>& legacy, const char* what, u64 seed) {
  ASSERT_EQ(delta.size(), legacy.size()) << what << " seed=" << seed;
  for (usize i = 0; i < delta.size(); ++i) {
    EXPECT_EQ(delta[i], legacy[i]) << what << "[" << i << "] seed=" << seed;
    EXPECT_EQ(delta[i].seq, legacy[i].seq) << what << "[" << i << "] seed=" << seed;
  }
}

void run_equivalence(u32 n, u32 crashed, bool with_forger) {
  for (u64 seed = 1; seed <= 12; ++seed) {
    const AbdConfig delta_config{.delta_reads = true, .max_pipeline = 8};
    const AbdConfig legacy_config{.delta_reads = false, .max_pipeline = 8};
    World delta_world(n, crashed, with_forger, seed, delta_config);
    World legacy_world(n, crashed, with_forger, seed, legacy_config);
    const Observation delta = run_schedule(delta_world, seed * 977);
    const Observation legacy = run_schedule(legacy_world, seed * 977);

    // Same send sequence ⇒ same schedule: message counts must agree, every
    // read must return the identical record sequence, and every node must
    // end with the identical local view (element- AND order-identical).
    EXPECT_EQ(delta.messages, legacy.messages) << "seed=" << seed;
    ASSERT_EQ(delta.reads.size(), legacy.reads.size()) << "seed=" << seed;
    for (usize r = 0; r < delta.reads.size(); ++r) {
      expect_equal_views(delta.reads[r], legacy.reads[r], "read", seed);
    }
    ASSERT_EQ(delta.final_views.size(), legacy.final_views.size());
    for (usize v = 0; v < delta.final_views.size(); ++v) {
      expect_equal_views(delta.final_views[v], legacy.final_views[v], "final view", seed);
    }
    // Sanity: the sweep actually exercised delta serving.
    u64 delta_served = 0;
    for (const auto& node : delta_world.nodes) {
      delta_served += node->stats().reads_served_delta;
    }
    EXPECT_GT(delta_served, 0u) << "seed=" << seed;
  }
}

TEST(AbdEquivalence, AllCorrectSmall) { run_equivalence(3, 0, false); }

TEST(AbdEquivalence, AllCorrectLarger) { run_equivalence(5, 0, false); }

TEST(AbdEquivalence, WithCrashedMinority) { run_equivalence(5, 1, false); }

TEST(AbdEquivalence, WithForger) { run_equivalence(5, 0, true); }

TEST(AbdEquivalence, WithCrashAndForger) { run_equivalence(7, 1, true); }

// ---- decided-prefix compaction (DESIGN.md §8) ----
//
// Retain-mode compaction folds the stable prefix into the checkpoint but
// keeps every record body in the view. It sends no messages, answers no
// request differently, and never mutates watermarks — so a compacting
// world and a non-compacting world driven by the same schedule execute
// the same bit-identical send sequence, and the equality below is strict
// per schedule, exactly like the delta/legacy pair above.

void run_compaction_equivalence(u32 n, u32 crashed, bool with_forger) {
  for (u64 seed = 1; seed <= 12; ++seed) {
    // Tight lag/quantum/interval so the sweep folds early and often.
    const CompactConfig compact{.enabled = true,
                                .retain_records = true,
                                .lag = 2,
                                .quantum = 1,
                                .auto_interval = 4};
    const AbdConfig compacting{.delta_reads = true, .max_pipeline = 8, .compact = compact};
    const AbdConfig unbounded{.delta_reads = true, .max_pipeline = 8};
    World compact_world(n, crashed, with_forger, seed, compacting);
    World plain_world(n, crashed, with_forger, seed, unbounded);
    // Pre-roll: every correct node appends a few rounds, so every live
    // author's watermark advances and the stability cut actually moves
    // (the random schedule alone can starve an author). Identical in both
    // worlds, so the send sequences still match call for call.
    for (World* world : {&compact_world, &plain_world}) {
      for (u32 round = 0; round < 4; ++round) {
        for (auto& node : world->nodes) {
          node->begin_append(static_cast<i64>(round) - 1, [] {});
        }
        world->net.queue().run();
      }
    }
    const Observation folded = run_schedule(compact_world, seed * 977);
    const Observation plain = run_schedule(plain_world, seed * 977);

    EXPECT_EQ(folded.messages, plain.messages) << "seed=" << seed;
    ASSERT_EQ(folded.reads.size(), plain.reads.size()) << "seed=" << seed;
    for (usize r = 0; r < folded.reads.size(); ++r) {
      expect_equal_views(folded.reads[r], plain.reads[r], "read", seed);
    }
    ASSERT_EQ(folded.final_views.size(), plain.final_views.size());
    for (usize v = 0; v < folded.final_views.size(); ++v) {
      expect_equal_views(folded.final_views[v], plain.final_views[v], "final view", seed);
    }

    // Sanity: the compacting world actually folded records — only
    // guaranteed when every author appends. A crashed or forging author
    // never advances its own register, which soundly pins the stability
    // cut at 0 (min over per-author watermarks): the faulty worlds prove
    // equivalence of the *machinery*, the fault-free ones prove it folds.
    if (crashed == 0 && !with_forger) {
      u64 total_folded = 0;
      for (const auto& node : compact_world.nodes) {
        total_folded += node->stats().records_folded;
      }
      EXPECT_GT(total_folded, 0u) << "seed=" << seed;
    }
    for (const auto& a : compact_world.nodes) {
      for (const auto& b : compact_world.nodes) {
        if (a->checkpoint().folded_below == b->checkpoint().folded_below) {
          EXPECT_TRUE(a->checkpoint().structurally_equal(b->checkpoint())) << "seed=" << seed;
        }
      }
    }
  }
}

TEST(AbdEquivalence, CompactionInvisibleAllCorrect) {
  run_compaction_equivalence(3, 0, false);
  run_compaction_equivalence(5, 0, false);
}

TEST(AbdEquivalence, CompactionInvisibleWithCrashedMinority) {
  run_compaction_equivalence(5, 1, false);
}

TEST(AbdEquivalence, CompactionInvisibleWithForger) { run_compaction_equivalence(5, 0, true); }

TEST(AbdEquivalence, CompactionInvisibleWithCrashAndForger) {
  run_compaction_equivalence(7, 1, true);
}

TEST(AbdEquivalence, CompactionDecisionsExactAtAndPastTheCut) {
  // decide_first_k over the uncompacted view must equal the checkpoint
  // rule over (checkpoint, suffix) for every k at or past the fold — the
  // §5.3 exactness argument, checked on real schedules. (The decision rule
  // lives in net/, but its input is the mp view; keeping the check here
  // runs it across the same crash/forger worlds as the views above.)
  for (u64 seed = 1; seed <= 8; ++seed) {
    const CompactConfig compact{.enabled = true,
                                .retain_records = true,
                                .lag = 2,
                                .quantum = 1,
                                .auto_interval = 4};
    World world(5, 0, false, seed, AbdConfig{.delta_reads = true, .max_pipeline = 8,
                                             .compact = compact});
    run_schedule(world, seed * 13);
    for (const auto& node : world.nodes) {
      const Checkpoint& ckpt = node->checkpoint();
      if (ckpt.folded_records == 0) continue;
      const std::vector<SignedAppend> view = node->local_view();
      std::vector<SignedAppend> suffix;
      for (const SignedAppend& rec : view) {
        if (rec.seq >= ckpt.folded_below) suffix.push_back(rec);
      }
      // Fold the partial sums by hand: sort the full view canonically and
      // compare sign sums at every k >= folded_records.
      std::vector<SignedAppend> sorted = view;
      std::sort(sorted.begin(), sorted.end(), [](const SignedAppend& a, const SignedAppend& b) {
        if (a.seq != b.seq) return a.seq < b.seq;
        return a.author.index < b.author.index;
      });
      for (u64 k = ckpt.folded_records; k <= sorted.size(); ++k) {
        i64 direct = 0;
        for (u64 i = 0; i < k; ++i) direct += sorted[i].value >= 0 ? 1 : -1;
        i64 via_ckpt = ckpt.vote_sum;
        std::vector<SignedAppend> sorted_suffix = suffix;
        std::sort(sorted_suffix.begin(), sorted_suffix.end(),
                  [](const SignedAppend& a, const SignedAppend& b) {
                    if (a.seq != b.seq) return a.seq < b.seq;
                    return a.author.index < b.author.index;
                  });
        for (u64 i = 0; i < k - ckpt.folded_records; ++i) {
          via_ckpt += sorted_suffix[i].value >= 0 ? 1 : -1;
        }
        EXPECT_EQ(direct, via_ckpt) << "seed=" << seed << " k=" << k;
      }
    }
  }
}

TEST(AbdEquivalence, DeltaBytesNeverExceedLegacy) {
  // The inequality the whole optimisation exists for, checked on the same
  // schedules: delta mode moves no more bytes than legacy mode.
  for (u64 seed = 1; seed <= 8; ++seed) {
    World delta_world(5, 0, false, seed, AbdConfig{.delta_reads = true, .max_pipeline = 8});
    World legacy_world(5, 0, false, seed, AbdConfig{.delta_reads = false, .max_pipeline = 8});
    run_schedule(delta_world, seed * 31);
    run_schedule(legacy_world, seed * 31);
    EXPECT_LE(delta_world.net.bytes_sent(), legacy_world.net.bytes_sent()) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace amm::mp
