#include "mp/abd.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "mp/network.hpp"

namespace amm::mp {
namespace {

struct Cluster {
  Cluster(u32 n, u32 crashed = 0, u64 seed = 1, AbdConfig config = {})
      : keys(n, seed), net(n, 0.05, 0.5, Rng(seed + 1)) {
    for (u32 i = 0; i < n - crashed; ++i) {
      nodes.push_back(std::make_unique<AbdNode>(NodeId{i}, net, keys, config));
    }
    for (u32 i = n - crashed; i < n; ++i) {
      dead.push_back(std::make_unique<CrashedNode>(NodeId{i}, net));
    }
  }

  crypto::KeyRegistry keys;
  Network net;
  std::vector<std::unique_ptr<AbdNode>> nodes;
  std::vector<std::unique_ptr<CrashedNode>> dead;
};

constexpr AbdConfig kLegacy{.delta_reads = false, .max_pipeline = 1};

TEST(Abd, AppendCompletesWithAllCorrect) {
  Cluster c(5);
  bool done = false;
  c.nodes[0]->begin_append(42, [&] { done = true; });
  c.net.queue().run();
  EXPECT_TRUE(done);
}

TEST(Abd, AppendVisibleInEveryLocalViewEventually) {
  Cluster c(4);
  c.nodes[1]->begin_append(7, [] {});
  c.net.queue().run();
  for (const auto& node : c.nodes) {
    ASSERT_EQ(node->local_view().size(), 1u);
    EXPECT_EQ(node->local_view()[0].value, 7);
    EXPECT_EQ(node->local_view()[0].author, NodeId{1});
  }
}

TEST(Abd, ReadMergesMajorityViews) {
  Cluster c(5);
  bool append_done = false;
  c.nodes[0]->begin_append(10, [&] { append_done = true; });
  c.net.queue().run();
  ASSERT_TRUE(append_done);

  std::vector<SignedAppend> result;
  c.nodes[4]->begin_read([&](const std::vector<SignedAppend>& view) { result = view; });
  c.net.queue().run();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].value, 10);
}

TEST(Abd, RegularityCompletedAppendVisibleToLaterRead) {
  // Lemma 4.2: an append acked by a majority intersects every read quorum.
  for (u64 seed = 1; seed < 15; ++seed) {
    Cluster c(5, /*crashed=*/2, seed);
    bool append_done = false;
    c.nodes[0]->begin_append(99, [&] { append_done = true; });
    c.net.queue().run();
    ASSERT_TRUE(append_done) << "append must terminate with 3/5 correct";

    bool found = false;
    c.nodes[2]->begin_read([&](const std::vector<SignedAppend>& view) {
      for (const auto& rec : view) found |= (rec.value == 99);
    });
    c.net.queue().run();
    EXPECT_TRUE(found) << "seed=" << seed;
  }
}

TEST(Abd, MinorityCrashStillLive) {
  Cluster c(7, /*crashed=*/3);
  bool append_done = false, read_done = false;
  c.nodes[0]->begin_append(1, [&] { append_done = true; });
  c.net.queue().run();
  c.nodes[1]->begin_read([&](const std::vector<SignedAppend>&) { read_done = true; });
  c.net.queue().run();
  EXPECT_TRUE(append_done);
  EXPECT_TRUE(read_done);
}

TEST(Abd, MajorityCrashBlocksTermination) {
  Cluster c(5, /*crashed=*/3);
  bool done = false;
  c.nodes[0]->begin_append(1, [&] { done = true; });
  c.net.queue().run();
  EXPECT_FALSE(done);  // only 2 acks possible, quorum is 3
}

TEST(Abd, SequentialAppendsGetIncreasingSeq) {
  Cluster c(3);
  bool first = false;
  c.nodes[0]->begin_append(1, [&] { first = true; });
  c.net.queue().run();
  ASSERT_TRUE(first);
  c.nodes[0]->begin_append(2, [] {});
  c.net.queue().run();
  EXPECT_EQ(c.nodes[0]->appends_issued(), 2u);
  // Both records present everywhere, with distinct seq.
  for (const auto& node : c.nodes) {
    ASSERT_EQ(node->local_view().size(), 2u);
    EXPECT_NE(node->local_view()[0].seq, node->local_view()[1].seq);
  }
}

TEST(Abd, ForgedRecordsRejected) {
  // 4 correct + 1 forger targeting node 0: no correct view may ever
  // contain a record attributed to node 0 that node 0 did not append.
  crypto::KeyRegistry keys(5, 7);
  Network net(5, 0.05, 0.5, Rng(8));
  std::vector<std::unique_ptr<AbdNode>> nodes;
  for (u32 i = 0; i < 4; ++i) nodes.push_back(std::make_unique<AbdNode>(NodeId{i}, net, keys));
  ForgerNode forger(NodeId{4}, /*victim=*/NodeId{0}, net, keys);

  bool done = false;
  nodes[1]->begin_append(5, [&] { done = true; });
  net.queue().run();
  ASSERT_TRUE(done);

  nodes[2]->begin_read([](const std::vector<SignedAppend>&) {});
  net.queue().run();

  for (const auto& node : nodes) {
    for (const auto& rec : node->local_view()) {
      if (rec.author == NodeId{0}) {
        FAIL() << "forged record for node 0 admitted into a correct view";
      }
    }
  }
}

TEST(Abd, MessageComplexityPerAppendIsTwoN) {
  // Algorithm 2: n broadcast messages + n acks (self-delivery included).
  Cluster c(6);
  const u64 before = c.net.messages_sent();
  c.nodes[0]->begin_append(1, [] {});
  c.net.queue().run();
  EXPECT_EQ(c.net.messages_sent() - before, 12u);
}

TEST(Abd, ReadReplySizeGrowsWithHistory) {
  // §4's observation (legacy full-view reads, kept as the reference): local
  // views grow with every append, so read replies carry ever more bytes —
  // the cost the append memory abstracts away.
  Cluster c(3, 0, 1, kLegacy);
  u64 bytes_first, bytes_second;
  c.nodes[0]->begin_append(1, [] {});
  c.net.queue().run();
  u64 before = c.net.bytes_sent();
  c.nodes[1]->begin_read([](const std::vector<SignedAppend>&) {});
  c.net.queue().run();
  bytes_first = c.net.bytes_sent() - before;

  for (int i = 0; i < 5; ++i) {
    c.nodes[0]->begin_append(i, [] {});
    c.net.queue().run();
  }
  before = c.net.bytes_sent();
  c.nodes[1]->begin_read([](const std::vector<SignedAppend>&) {});
  c.net.queue().run();
  bytes_second = c.net.bytes_sent() - before;
  EXPECT_GT(bytes_second, bytes_first);
}

TEST(Abd, DeltaReadBytesStayFlatInHistory) {
  // Frontier reads: once a reader's watermarks cover the history, a read
  // costs the same bytes no matter how long the history is — only the
  // delta (here: nothing) travels.
  Cluster c(3);  // default config: delta reads on
  c.nodes[0]->begin_append(1, [] {});
  c.net.queue().run();
  u64 before = c.net.bytes_sent();
  c.nodes[1]->begin_read([](const std::vector<SignedAppend>&) {});
  c.net.queue().run();
  const u64 bytes_first = c.net.bytes_sent() - before;

  for (int i = 0; i < 5; ++i) {
    c.nodes[0]->begin_append(i, [] {});
    c.net.queue().run();
  }
  before = c.net.bytes_sent();
  c.nodes[1]->begin_read([](const std::vector<SignedAppend>&) {});
  c.net.queue().run();
  const u64 bytes_second = c.net.bytes_sent() - before;
  EXPECT_EQ(bytes_second, bytes_first)
      << "steady-state delta reads must not grow with history";
}

TEST(Abd, DeltaReadShipsOnlyMissingRecords) {
  // A reader that missed appends (crashed responders kept it at quorum
  // size) still converges: the delta carries exactly what it lacks.
  Cluster c(5);
  for (int i = 0; i < 4; ++i) {
    c.nodes[2]->begin_append(10 + i, [] {});
    c.net.queue().run();
  }
  // Every node already holds all 4 records via the append broadcasts, so
  // the reader's frontier covers everything and replies ship 0 records.
  const u64 records_before = c.nodes[0]->stats().read_records_sent;
  std::vector<SignedAppend> result;
  c.nodes[1]->begin_read([&](const std::vector<SignedAppend>& view) { result = view; });
  c.net.queue().run();
  ASSERT_EQ(result.size(), 4u);
  u64 shipped = 0;
  for (const auto& node : c.nodes) shipped += node->stats().read_records_sent;
  EXPECT_EQ(shipped - records_before, 0u) << "fully synced reader must receive an empty delta";
}

TEST(Abd, PipelinedAppendsAllComplete) {
  // Algorithm 2's one-outstanding-op restriction is lifted: issue a burst
  // of appends at once; acks for each in-flight record resolve
  // independently and every operation completes.
  Cluster c(5);
  u32 completed = 0;
  for (i64 v = 0; v < 100; ++v) {
    c.nodes[0]->begin_append(v, [&] { ++completed; });
  }
  EXPECT_EQ(c.nodes[0]->appends_in_flight(), 32u);  // default max_pipeline
  EXPECT_EQ(c.nodes[0]->appends_queued(), 68u);
  c.net.queue().run();
  EXPECT_EQ(completed, 100u);
  EXPECT_EQ(c.nodes[0]->appends_in_flight(), 0u);
  EXPECT_EQ(c.nodes[0]->appends_queued(), 0u);
  for (const auto& node : c.nodes) {
    EXPECT_EQ(node->local_view().size(), 100u);
  }
}

TEST(Abd, PipelineBoundIsRespected) {
  Cluster c(3, 0, 1, AbdConfig{.delta_reads = true, .max_pipeline = 4});
  for (i64 v = 0; v < 10; ++v) c.nodes[0]->begin_append(v, [] {});
  EXPECT_EQ(c.nodes[0]->appends_in_flight(), 4u);
  EXPECT_EQ(c.nodes[0]->appends_queued(), 6u);
  c.net.queue().run();
  EXPECT_EQ(c.nodes[0]->local_view().size(), 10u);
  // Queued appends launch in submission order: value v was submitted v-th
  // and must carry seq v (the view itself is in arrival order, which the
  // concurrent round-trips are free to scramble).
  for (const auto& rec : c.nodes[0]->local_view()) {
    if (rec.author == NodeId{0}) {
      EXPECT_EQ(static_cast<i64>(rec.seq), rec.value);
    }
  }
}

TEST(Abd, ForgerDeltaRepliesRejectedWithoutViewCorruption) {
  // Lemma 4.1 under delta reads: the forger answers read requests with an
  // above-frontier forgery plus below-frontier replays of genuine records.
  // Correct nodes must reject the forgery on every path (the verify cache
  // must not short-circuit it) and deduplicate the replays.
  crypto::KeyRegistry keys(5, 7);
  Network net(5, 0.05, 0.5, Rng(8));
  std::vector<std::unique_ptr<AbdNode>> nodes;
  for (u32 i = 0; i < 4; ++i) {
    nodes.push_back(std::make_unique<AbdNode>(NodeId{i}, net, keys));
  }
  ForgerNode forger(NodeId{4}, /*victim=*/NodeId{0}, net, keys);

  for (i64 v = 0; v < 3; ++v) {
    bool done = false;
    nodes[1]->begin_append(v, [&] { done = true; });
    net.queue().run();
    ASSERT_TRUE(done);
  }
  // Two reads: the first establishes watermarks, the second is the delta
  // read the forger answers with replays of now-below-frontier records.
  for (int round = 0; round < 2; ++round) {
    nodes[2]->begin_read([](const std::vector<SignedAppend>&) {});
    net.queue().run();
  }

  for (const auto& node : nodes) {
    EXPECT_EQ(node->local_view().size(), 3u) << "replays must deduplicate";
    for (const auto& rec : node->local_view()) {
      EXPECT_NE(rec.author, NodeId{0}) << "forged record admitted into a correct view";
    }
    EXPECT_EQ(node->stats().read_fallbacks, 0u)
        << "a correctly echoed (if lying) reply must not trigger the fallback";
  }
}

TEST(Abd, BadFrontierEchoFallsBackToFullRead) {
  // Frontier-divergence fallback: a responder that echoes a digest the
  // reader never sent forces one full (empty-frontier) retry of the same
  // read id; the read still completes with the correct result.
  crypto::KeyRegistry keys(3, 11);
  Network net(3, 0.05, 0.5, Rng(12));
  AbdNode reader(NodeId{0}, net, keys);  // default config: delta reads on
  CrashedNode crashed(NodeId{1}, net);
  // Node 2 acks appends like a correct node but mis-echoes the first read
  // request it sees. The reader cannot reach quorum (2 of 3) without node
  // 2, so the fallback is the only path to completion.
  bool lied = false;
  net.attach(NodeId{2}, [&](NodeId from, const WireMessage& msg) {
    if (msg.kind == WireMessage::Kind::kAppend) {
      WireMessage ack;
      ack.kind = WireMessage::Kind::kAck;
      ack.append = msg.append;
      ack.ack_sig = keys.sign(NodeId{2}, msg.append.digest());
      net.send(NodeId{2}, msg.append.author, std::move(ack));
    } else if (msg.kind == WireMessage::Kind::kReadReq) {
      WireMessage reply;
      reply.kind = WireMessage::Kind::kReadReply;
      reply.read_id = msg.read_id;
      reply.frontier_echo = lied ? frontier_digest(msg.frontier) : 0xdeadbeefULL;
      lied = true;
      net.send(NodeId{2}, from, std::move(reply));
    }
  });

  bool appended = false;
  reader.begin_append(77, [&] { appended = true; });
  net.queue().run();
  ASSERT_TRUE(appended);

  std::vector<SignedAppend> result;
  reader.begin_read([&](const std::vector<SignedAppend>& view) { result = view; });
  net.queue().run();
  ASSERT_EQ(result.size(), 1u) << "read must complete via the full-read fallback";
  EXPECT_EQ(result[0].value, 77);
  EXPECT_EQ(reader.stats().read_fallbacks, 1u);
}

TEST(Abd, VerifyCacheCountsRepeatedDeliveries) {
  // Each record travels to a node several times (broadcast, then again in
  // every full-view read reply); only the first delivery pays a registry
  // verification — later ones are cache hits. Forged records are covered
  // by ForgerDeltaRepliesRejectedWithoutViewCorruption: they are rejected
  // on every delivery and never enter the cache.
  Cluster legacy(4, 0, 2, kLegacy);
  for (i64 v = 0; v < 3; ++v) {
    legacy.nodes[0]->begin_append(v, [] {});
    legacy.net.queue().run();
  }
  const u64 before = legacy.nodes[1]->verify_cache_hits();
  legacy.nodes[1]->begin_read([](const std::vector<SignedAppend>&) {});
  legacy.net.queue().run();
  // The read re-delivered all 3 records to node 1 in the full views of a
  // quorum of responders; every one of those checks must hit the cache.
  EXPECT_GE(legacy.nodes[1]->verify_cache_hits() - before, 3u);
}

}  // namespace
}  // namespace amm::mp
