#include "mp/abd.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "mp/network.hpp"

namespace amm::mp {
namespace {

struct Cluster {
  Cluster(u32 n, u32 crashed = 0, u64 seed = 1)
      : keys(n, seed), net(n, 0.05, 0.5, Rng(seed + 1)) {
    for (u32 i = 0; i < n - crashed; ++i) {
      nodes.push_back(std::make_unique<AbdNode>(NodeId{i}, net, keys));
    }
    for (u32 i = n - crashed; i < n; ++i) {
      dead.push_back(std::make_unique<CrashedNode>(NodeId{i}, net));
    }
  }

  crypto::KeyRegistry keys;
  Network net;
  std::vector<std::unique_ptr<AbdNode>> nodes;
  std::vector<std::unique_ptr<CrashedNode>> dead;
};

TEST(Abd, AppendCompletesWithAllCorrect) {
  Cluster c(5);
  bool done = false;
  c.nodes[0]->begin_append(42, [&] { done = true; });
  c.net.queue().run();
  EXPECT_TRUE(done);
}

TEST(Abd, AppendVisibleInEveryLocalViewEventually) {
  Cluster c(4);
  c.nodes[1]->begin_append(7, [] {});
  c.net.queue().run();
  for (const auto& node : c.nodes) {
    ASSERT_EQ(node->local_view().size(), 1u);
    EXPECT_EQ(node->local_view()[0].value, 7);
    EXPECT_EQ(node->local_view()[0].author, NodeId{1});
  }
}

TEST(Abd, ReadMergesMajorityViews) {
  Cluster c(5);
  bool append_done = false;
  c.nodes[0]->begin_append(10, [&] { append_done = true; });
  c.net.queue().run();
  ASSERT_TRUE(append_done);

  std::vector<SignedAppend> result;
  c.nodes[4]->begin_read([&](const std::vector<SignedAppend>& view) { result = view; });
  c.net.queue().run();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].value, 10);
}

TEST(Abd, RegularityCompletedAppendVisibleToLaterRead) {
  // Lemma 4.2: an append acked by a majority intersects every read quorum.
  for (u64 seed = 1; seed < 15; ++seed) {
    Cluster c(5, /*crashed=*/2, seed);
    bool append_done = false;
    c.nodes[0]->begin_append(99, [&] { append_done = true; });
    c.net.queue().run();
    ASSERT_TRUE(append_done) << "append must terminate with 3/5 correct";

    bool found = false;
    c.nodes[2]->begin_read([&](const std::vector<SignedAppend>& view) {
      for (const auto& rec : view) found |= (rec.value == 99);
    });
    c.net.queue().run();
    EXPECT_TRUE(found) << "seed=" << seed;
  }
}

TEST(Abd, MinorityCrashStillLive) {
  Cluster c(7, /*crashed=*/3);
  bool append_done = false, read_done = false;
  c.nodes[0]->begin_append(1, [&] { append_done = true; });
  c.net.queue().run();
  c.nodes[1]->begin_read([&](const std::vector<SignedAppend>&) { read_done = true; });
  c.net.queue().run();
  EXPECT_TRUE(append_done);
  EXPECT_TRUE(read_done);
}

TEST(Abd, MajorityCrashBlocksTermination) {
  Cluster c(5, /*crashed=*/3);
  bool done = false;
  c.nodes[0]->begin_append(1, [&] { done = true; });
  c.net.queue().run();
  EXPECT_FALSE(done);  // only 2 acks possible, quorum is 3
}

TEST(Abd, SequentialAppendsGetIncreasingSeq) {
  Cluster c(3);
  bool first = false;
  c.nodes[0]->begin_append(1, [&] { first = true; });
  c.net.queue().run();
  ASSERT_TRUE(first);
  c.nodes[0]->begin_append(2, [] {});
  c.net.queue().run();
  EXPECT_EQ(c.nodes[0]->appends_issued(), 2u);
  // Both records present everywhere, with distinct seq.
  for (const auto& node : c.nodes) {
    ASSERT_EQ(node->local_view().size(), 2u);
    EXPECT_NE(node->local_view()[0].seq, node->local_view()[1].seq);
  }
}

TEST(Abd, ForgedRecordsRejected) {
  // 4 correct + 1 forger targeting node 0: no correct view may ever
  // contain a record attributed to node 0 that node 0 did not append.
  crypto::KeyRegistry keys(5, 7);
  Network net(5, 0.05, 0.5, Rng(8));
  std::vector<std::unique_ptr<AbdNode>> nodes;
  for (u32 i = 0; i < 4; ++i) nodes.push_back(std::make_unique<AbdNode>(NodeId{i}, net, keys));
  ForgerNode forger(NodeId{4}, /*victim=*/NodeId{0}, net, keys);

  bool done = false;
  nodes[1]->begin_append(5, [&] { done = true; });
  net.queue().run();
  ASSERT_TRUE(done);

  nodes[2]->begin_read([](const std::vector<SignedAppend>&) {});
  net.queue().run();

  for (const auto& node : nodes) {
    for (const auto& rec : node->local_view()) {
      if (rec.author == NodeId{0}) {
        FAIL() << "forged record for node 0 admitted into a correct view";
      }
    }
  }
}

TEST(Abd, MessageComplexityPerAppendIsTwoN) {
  // Algorithm 2: n broadcast messages + n acks (self-delivery included).
  Cluster c(6);
  const u64 before = c.net.messages_sent();
  c.nodes[0]->begin_append(1, [] {});
  c.net.queue().run();
  EXPECT_EQ(c.net.messages_sent() - before, 12u);
}

TEST(Abd, ReadReplySizeGrowsWithHistory) {
  // §4's observation: local views grow with every append, so read replies
  // carry ever more bytes — the cost the append memory abstracts away.
  Cluster c(3);
  u64 bytes_first, bytes_second;
  c.nodes[0]->begin_append(1, [] {});
  c.net.queue().run();
  u64 before = c.net.bytes_sent();
  c.nodes[1]->begin_read([](const std::vector<SignedAppend>&) {});
  c.net.queue().run();
  bytes_first = c.net.bytes_sent() - before;

  for (int i = 0; i < 5; ++i) {
    c.nodes[0]->begin_append(i, [] {});
    c.net.queue().run();
  }
  before = c.net.bytes_sent();
  c.nodes[1]->begin_read([](const std::vector<SignedAppend>&) {});
  c.net.queue().run();
  bytes_second = c.net.bytes_sent() - before;
  EXPECT_GT(bytes_second, bytes_first);
}

}  // namespace
}  // namespace amm::mp
