file(REMOVE_RECURSE
  "CMakeFiles/abd_replication.dir/abd_replication.cpp.o"
  "CMakeFiles/abd_replication.dir/abd_replication.cpp.o.d"
  "abd_replication"
  "abd_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abd_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
