# Empty dependencies file for abd_replication.
# This may be replaced when dependencies are built.
