file(REMOVE_RECURSE
  "CMakeFiles/chain_vs_dag.dir/chain_vs_dag.cpp.o"
  "CMakeFiles/chain_vs_dag.dir/chain_vs_dag.cpp.o.d"
  "chain_vs_dag"
  "chain_vs_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_vs_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
