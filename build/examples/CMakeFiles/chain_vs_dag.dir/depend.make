# Empty dependencies file for chain_vs_dag.
# This may be replaced when dependencies are built.
