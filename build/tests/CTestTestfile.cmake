# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/am_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/chain_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/adversary_test[1]_include.cmake")
include("/root/repo/build/tests/exp_test[1]_include.cmake")
include("/root/repo/build/tests/mp_test[1]_include.cmake")
include("/root/repo/build/tests/check_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
