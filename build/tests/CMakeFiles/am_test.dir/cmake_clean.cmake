file(REMOVE_RECURSE
  "CMakeFiles/am_test.dir/am/access_test.cpp.o"
  "CMakeFiles/am_test.dir/am/access_test.cpp.o.d"
  "CMakeFiles/am_test.dir/am/memory_test.cpp.o"
  "CMakeFiles/am_test.dir/am/memory_test.cpp.o.d"
  "CMakeFiles/am_test.dir/am/register_test.cpp.o"
  "CMakeFiles/am_test.dir/am/register_test.cpp.o.d"
  "CMakeFiles/am_test.dir/am/sticky_test.cpp.o"
  "CMakeFiles/am_test.dir/am/sticky_test.cpp.o.d"
  "CMakeFiles/am_test.dir/am/trace_test.cpp.o"
  "CMakeFiles/am_test.dir/am/trace_test.cpp.o.d"
  "CMakeFiles/am_test.dir/am/view_property_test.cpp.o"
  "CMakeFiles/am_test.dir/am/view_property_test.cpp.o.d"
  "am_test"
  "am_test.pdb"
  "am_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/am_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
