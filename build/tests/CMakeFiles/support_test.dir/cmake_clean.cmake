file(REMOVE_RECURSE
  "CMakeFiles/support_test.dir/support/assert_test.cpp.o"
  "CMakeFiles/support_test.dir/support/assert_test.cpp.o.d"
  "CMakeFiles/support_test.dir/support/cli_test.cpp.o"
  "CMakeFiles/support_test.dir/support/cli_test.cpp.o.d"
  "CMakeFiles/support_test.dir/support/rng_test.cpp.o"
  "CMakeFiles/support_test.dir/support/rng_test.cpp.o.d"
  "CMakeFiles/support_test.dir/support/stats_test.cpp.o"
  "CMakeFiles/support_test.dir/support/stats_test.cpp.o.d"
  "CMakeFiles/support_test.dir/support/table_test.cpp.o"
  "CMakeFiles/support_test.dir/support/table_test.cpp.o.d"
  "CMakeFiles/support_test.dir/support/thread_pool_test.cpp.o"
  "CMakeFiles/support_test.dir/support/thread_pool_test.cpp.o.d"
  "support_test"
  "support_test.pdb"
  "support_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
