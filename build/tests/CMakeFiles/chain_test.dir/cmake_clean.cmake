file(REMOVE_RECURSE
  "CMakeFiles/chain_test.dir/chain/backbone_test.cpp.o"
  "CMakeFiles/chain_test.dir/chain/backbone_test.cpp.o.d"
  "CMakeFiles/chain_test.dir/chain/block_graph_test.cpp.o"
  "CMakeFiles/chain_test.dir/chain/block_graph_test.cpp.o.d"
  "CMakeFiles/chain_test.dir/chain/dot_test.cpp.o"
  "CMakeFiles/chain_test.dir/chain/dot_test.cpp.o.d"
  "CMakeFiles/chain_test.dir/chain/rules_property_test.cpp.o"
  "CMakeFiles/chain_test.dir/chain/rules_property_test.cpp.o.d"
  "CMakeFiles/chain_test.dir/chain/rules_test.cpp.o"
  "CMakeFiles/chain_test.dir/chain/rules_test.cpp.o.d"
  "chain_test"
  "chain_test.pdb"
  "chain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
