# Empty dependencies file for exp_e8_dag_resilience.
# This may be replaced when dependencies are built.
