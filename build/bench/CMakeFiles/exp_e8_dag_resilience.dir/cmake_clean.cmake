file(REMOVE_RECURSE
  "CMakeFiles/exp_e8_dag_resilience.dir/exp_e8_dag_resilience.cpp.o"
  "CMakeFiles/exp_e8_dag_resilience.dir/exp_e8_dag_resilience.cpp.o.d"
  "exp_e8_dag_resilience"
  "exp_e8_dag_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e8_dag_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
