
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/exp_e14_permissionless.cpp" "bench/CMakeFiles/exp_e14_permissionless.dir/exp_e14_permissionless.cpp.o" "gcc" "bench/CMakeFiles/exp_e14_permissionless.dir/exp_e14_permissionless.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/amm_support.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/amm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/am/CMakeFiles/amm_am.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/amm_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/adversary/CMakeFiles/amm_adv.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/amm_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/amm_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/check/CMakeFiles/amm_check.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
