file(REMOVE_RECURSE
  "CMakeFiles/exp_e14_permissionless.dir/exp_e14_permissionless.cpp.o"
  "CMakeFiles/exp_e14_permissionless.dir/exp_e14_permissionless.cpp.o.d"
  "exp_e14_permissionless"
  "exp_e14_permissionless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e14_permissionless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
