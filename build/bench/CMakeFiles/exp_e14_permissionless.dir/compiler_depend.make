# Empty compiler generated dependencies file for exp_e14_permissionless.
# This may be replaced when dependencies are built.
