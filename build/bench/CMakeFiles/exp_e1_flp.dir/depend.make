# Empty dependencies file for exp_e1_flp.
# This may be replaced when dependencies are built.
