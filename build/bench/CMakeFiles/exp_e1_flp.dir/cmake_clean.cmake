file(REMOVE_RECURSE
  "CMakeFiles/exp_e1_flp.dir/exp_e1_flp.cpp.o"
  "CMakeFiles/exp_e1_flp.dir/exp_e1_flp.cpp.o.d"
  "exp_e1_flp"
  "exp_e1_flp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e1_flp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
