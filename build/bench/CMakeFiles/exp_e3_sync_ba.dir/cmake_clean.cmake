file(REMOVE_RECURSE
  "CMakeFiles/exp_e3_sync_ba.dir/exp_e3_sync_ba.cpp.o"
  "CMakeFiles/exp_e3_sync_ba.dir/exp_e3_sync_ba.cpp.o.d"
  "exp_e3_sync_ba"
  "exp_e3_sync_ba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e3_sync_ba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
