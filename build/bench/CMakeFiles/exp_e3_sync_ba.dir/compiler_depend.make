# Empty compiler generated dependencies file for exp_e3_sync_ba.
# This may be replaced when dependencies are built.
