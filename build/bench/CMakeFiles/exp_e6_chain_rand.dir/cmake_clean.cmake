file(REMOVE_RECURSE
  "CMakeFiles/exp_e6_chain_rand.dir/exp_e6_chain_rand.cpp.o"
  "CMakeFiles/exp_e6_chain_rand.dir/exp_e6_chain_rand.cpp.o.d"
  "exp_e6_chain_rand"
  "exp_e6_chain_rand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e6_chain_rand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
