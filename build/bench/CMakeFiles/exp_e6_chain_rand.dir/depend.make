# Empty dependencies file for exp_e6_chain_rand.
# This may be replaced when dependencies are built.
