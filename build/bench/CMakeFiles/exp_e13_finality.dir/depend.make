# Empty dependencies file for exp_e13_finality.
# This may be replaced when dependencies are built.
