file(REMOVE_RECURSE
  "CMakeFiles/exp_e13_finality.dir/exp_e13_finality.cpp.o"
  "CMakeFiles/exp_e13_finality.dir/exp_e13_finality.cpp.o.d"
  "exp_e13_finality"
  "exp_e13_finality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e13_finality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
