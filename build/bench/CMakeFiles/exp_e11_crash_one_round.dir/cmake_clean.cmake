file(REMOVE_RECURSE
  "CMakeFiles/exp_e11_crash_one_round.dir/exp_e11_crash_one_round.cpp.o"
  "CMakeFiles/exp_e11_crash_one_round.dir/exp_e11_crash_one_round.cpp.o.d"
  "exp_e11_crash_one_round"
  "exp_e11_crash_one_round.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e11_crash_one_round.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
