# Empty compiler generated dependencies file for exp_e11_crash_one_round.
# This may be replaced when dependencies are built.
