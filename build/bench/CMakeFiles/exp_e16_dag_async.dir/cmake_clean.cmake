file(REMOVE_RECURSE
  "CMakeFiles/exp_e16_dag_async.dir/exp_e16_dag_async.cpp.o"
  "CMakeFiles/exp_e16_dag_async.dir/exp_e16_dag_async.cpp.o.d"
  "exp_e16_dag_async"
  "exp_e16_dag_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e16_dag_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
