# Empty compiler generated dependencies file for exp_e16_dag_async.
# This may be replaced when dependencies are built.
