file(REMOVE_RECURSE
  "CMakeFiles/exp_e4_timestamps.dir/exp_e4_timestamps.cpp.o"
  "CMakeFiles/exp_e4_timestamps.dir/exp_e4_timestamps.cpp.o.d"
  "exp_e4_timestamps"
  "exp_e4_timestamps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e4_timestamps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
