# Empty dependencies file for exp_e4_timestamps.
# This may be replaced when dependencies are built.
