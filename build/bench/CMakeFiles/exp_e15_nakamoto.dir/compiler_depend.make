# Empty compiler generated dependencies file for exp_e15_nakamoto.
# This may be replaced when dependencies are built.
