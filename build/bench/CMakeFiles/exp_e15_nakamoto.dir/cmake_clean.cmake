file(REMOVE_RECURSE
  "CMakeFiles/exp_e15_nakamoto.dir/exp_e15_nakamoto.cpp.o"
  "CMakeFiles/exp_e15_nakamoto.dir/exp_e15_nakamoto.cpp.o.d"
  "exp_e15_nakamoto"
  "exp_e15_nakamoto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e15_nakamoto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
