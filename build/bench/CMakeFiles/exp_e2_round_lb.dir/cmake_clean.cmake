file(REMOVE_RECURSE
  "CMakeFiles/exp_e2_round_lb.dir/exp_e2_round_lb.cpp.o"
  "CMakeFiles/exp_e2_round_lb.dir/exp_e2_round_lb.cpp.o.d"
  "exp_e2_round_lb"
  "exp_e2_round_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e2_round_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
