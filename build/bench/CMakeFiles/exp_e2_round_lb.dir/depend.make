# Empty dependencies file for exp_e2_round_lb.
# This may be replaced when dependencies are built.
