file(REMOVE_RECURSE
  "CMakeFiles/exp_e5_chain_det.dir/exp_e5_chain_det.cpp.o"
  "CMakeFiles/exp_e5_chain_det.dir/exp_e5_chain_det.cpp.o.d"
  "exp_e5_chain_det"
  "exp_e5_chain_det.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e5_chain_det.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
