# Empty dependencies file for exp_e5_chain_det.
# This may be replaced when dependencies are built.
