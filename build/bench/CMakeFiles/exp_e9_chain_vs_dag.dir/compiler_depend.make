# Empty compiler generated dependencies file for exp_e9_chain_vs_dag.
# This may be replaced when dependencies are built.
