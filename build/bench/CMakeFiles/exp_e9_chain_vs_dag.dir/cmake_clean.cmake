file(REMOVE_RECURSE
  "CMakeFiles/exp_e9_chain_vs_dag.dir/exp_e9_chain_vs_dag.cpp.o"
  "CMakeFiles/exp_e9_chain_vs_dag.dir/exp_e9_chain_vs_dag.cpp.o.d"
  "exp_e9_chain_vs_dag"
  "exp_e9_chain_vs_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e9_chain_vs_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
