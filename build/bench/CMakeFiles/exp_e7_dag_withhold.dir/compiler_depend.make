# Empty compiler generated dependencies file for exp_e7_dag_withhold.
# This may be replaced when dependencies are built.
