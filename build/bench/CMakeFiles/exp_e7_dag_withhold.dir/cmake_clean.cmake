file(REMOVE_RECURSE
  "CMakeFiles/exp_e7_dag_withhold.dir/exp_e7_dag_withhold.cpp.o"
  "CMakeFiles/exp_e7_dag_withhold.dir/exp_e7_dag_withhold.cpp.o.d"
  "exp_e7_dag_withhold"
  "exp_e7_dag_withhold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e7_dag_withhold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
