# Empty dependencies file for exp_e10_abd.
# This may be replaced when dependencies are built.
