file(REMOVE_RECURSE
  "CMakeFiles/exp_e10_abd.dir/exp_e10_abd.cpp.o"
  "CMakeFiles/exp_e10_abd.dir/exp_e10_abd.cpp.o.d"
  "exp_e10_abd"
  "exp_e10_abd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e10_abd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
