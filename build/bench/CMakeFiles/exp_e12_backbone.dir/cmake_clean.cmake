file(REMOVE_RECURSE
  "CMakeFiles/exp_e12_backbone.dir/exp_e12_backbone.cpp.o"
  "CMakeFiles/exp_e12_backbone.dir/exp_e12_backbone.cpp.o.d"
  "exp_e12_backbone"
  "exp_e12_backbone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e12_backbone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
