# Empty dependencies file for exp_e12_backbone.
# This may be replaced when dependencies are built.
