# Empty compiler generated dependencies file for amm_crypto.
# This may be replaced when dependencies are built.
