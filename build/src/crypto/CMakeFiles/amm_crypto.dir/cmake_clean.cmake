file(REMOVE_RECURSE
  "CMakeFiles/amm_crypto.dir/signature.cpp.o"
  "CMakeFiles/amm_crypto.dir/signature.cpp.o.d"
  "CMakeFiles/amm_crypto.dir/siphash.cpp.o"
  "CMakeFiles/amm_crypto.dir/siphash.cpp.o.d"
  "libamm_crypto.a"
  "libamm_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amm_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
