file(REMOVE_RECURSE
  "libamm_crypto.a"
)
