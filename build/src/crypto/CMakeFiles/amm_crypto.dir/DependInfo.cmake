
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/signature.cpp" "src/crypto/CMakeFiles/amm_crypto.dir/signature.cpp.o" "gcc" "src/crypto/CMakeFiles/amm_crypto.dir/signature.cpp.o.d"
  "/root/repo/src/crypto/siphash.cpp" "src/crypto/CMakeFiles/amm_crypto.dir/siphash.cpp.o" "gcc" "src/crypto/CMakeFiles/amm_crypto.dir/siphash.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/amm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
