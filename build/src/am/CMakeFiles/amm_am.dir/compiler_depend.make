# Empty compiler generated dependencies file for amm_am.
# This may be replaced when dependencies are built.
