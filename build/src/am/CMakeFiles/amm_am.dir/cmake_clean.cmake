file(REMOVE_RECURSE
  "CMakeFiles/amm_am.dir/trace.cpp.o"
  "CMakeFiles/amm_am.dir/trace.cpp.o.d"
  "CMakeFiles/amm_am.dir/view.cpp.o"
  "CMakeFiles/amm_am.dir/view.cpp.o.d"
  "libamm_am.a"
  "libamm_am.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amm_am.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
