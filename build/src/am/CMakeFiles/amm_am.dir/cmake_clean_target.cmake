file(REMOVE_RECURSE
  "libamm_am.a"
)
