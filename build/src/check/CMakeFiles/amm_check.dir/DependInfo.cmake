
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/check/async_protocol.cpp" "src/check/CMakeFiles/amm_check.dir/async_protocol.cpp.o" "gcc" "src/check/CMakeFiles/amm_check.dir/async_protocol.cpp.o.d"
  "/root/repo/src/check/explorer.cpp" "src/check/CMakeFiles/amm_check.dir/explorer.cpp.o" "gcc" "src/check/CMakeFiles/amm_check.dir/explorer.cpp.o.d"
  "/root/repo/src/check/round_lb.cpp" "src/check/CMakeFiles/amm_check.dir/round_lb.cpp.o" "gcc" "src/check/CMakeFiles/amm_check.dir/round_lb.cpp.o.d"
  "/root/repo/src/check/sync_valency.cpp" "src/check/CMakeFiles/amm_check.dir/sync_valency.cpp.o" "gcc" "src/check/CMakeFiles/amm_check.dir/sync_valency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/protocols/CMakeFiles/amm_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/amm_support.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/amm_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/am/CMakeFiles/amm_am.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
