file(REMOVE_RECURSE
  "libamm_check.a"
)
