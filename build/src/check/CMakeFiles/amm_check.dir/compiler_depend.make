# Empty compiler generated dependencies file for amm_check.
# This may be replaced when dependencies are built.
