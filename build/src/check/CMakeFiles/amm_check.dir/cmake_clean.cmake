file(REMOVE_RECURSE
  "CMakeFiles/amm_check.dir/async_protocol.cpp.o"
  "CMakeFiles/amm_check.dir/async_protocol.cpp.o.d"
  "CMakeFiles/amm_check.dir/explorer.cpp.o"
  "CMakeFiles/amm_check.dir/explorer.cpp.o.d"
  "CMakeFiles/amm_check.dir/round_lb.cpp.o"
  "CMakeFiles/amm_check.dir/round_lb.cpp.o.d"
  "CMakeFiles/amm_check.dir/sync_valency.cpp.o"
  "CMakeFiles/amm_check.dir/sync_valency.cpp.o.d"
  "libamm_check.a"
  "libamm_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amm_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
