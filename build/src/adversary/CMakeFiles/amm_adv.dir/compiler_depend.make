# Empty compiler generated dependencies file for amm_adv.
# This may be replaced when dependencies are built.
