file(REMOVE_RECURSE
  "libamm_adv.a"
)
