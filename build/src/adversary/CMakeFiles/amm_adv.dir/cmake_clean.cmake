file(REMOVE_RECURSE
  "CMakeFiles/amm_adv.dir/sync_strategies.cpp.o"
  "CMakeFiles/amm_adv.dir/sync_strategies.cpp.o.d"
  "libamm_adv.a"
  "libamm_adv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amm_adv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
