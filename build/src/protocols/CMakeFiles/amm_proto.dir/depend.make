# Empty dependencies file for amm_proto.
# This may be replaced when dependencies are built.
