
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/chain_ba.cpp" "src/protocols/CMakeFiles/amm_proto.dir/chain_ba.cpp.o" "gcc" "src/protocols/CMakeFiles/amm_proto.dir/chain_ba.cpp.o.d"
  "/root/repo/src/protocols/dag_ba.cpp" "src/protocols/CMakeFiles/amm_proto.dir/dag_ba.cpp.o" "gcc" "src/protocols/CMakeFiles/amm_proto.dir/dag_ba.cpp.o.d"
  "/root/repo/src/protocols/nakamoto.cpp" "src/protocols/CMakeFiles/amm_proto.dir/nakamoto.cpp.o" "gcc" "src/protocols/CMakeFiles/amm_proto.dir/nakamoto.cpp.o.d"
  "/root/repo/src/protocols/sync_ba.cpp" "src/protocols/CMakeFiles/amm_proto.dir/sync_ba.cpp.o" "gcc" "src/protocols/CMakeFiles/amm_proto.dir/sync_ba.cpp.o.d"
  "/root/repo/src/protocols/timestamp_ba.cpp" "src/protocols/CMakeFiles/amm_proto.dir/timestamp_ba.cpp.o" "gcc" "src/protocols/CMakeFiles/amm_proto.dir/timestamp_ba.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/am/CMakeFiles/amm_am.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/amm_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/amm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
