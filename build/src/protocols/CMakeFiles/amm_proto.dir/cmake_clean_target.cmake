file(REMOVE_RECURSE
  "libamm_proto.a"
)
