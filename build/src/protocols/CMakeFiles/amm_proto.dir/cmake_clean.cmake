file(REMOVE_RECURSE
  "CMakeFiles/amm_proto.dir/chain_ba.cpp.o"
  "CMakeFiles/amm_proto.dir/chain_ba.cpp.o.d"
  "CMakeFiles/amm_proto.dir/dag_ba.cpp.o"
  "CMakeFiles/amm_proto.dir/dag_ba.cpp.o.d"
  "CMakeFiles/amm_proto.dir/nakamoto.cpp.o"
  "CMakeFiles/amm_proto.dir/nakamoto.cpp.o.d"
  "CMakeFiles/amm_proto.dir/sync_ba.cpp.o"
  "CMakeFiles/amm_proto.dir/sync_ba.cpp.o.d"
  "CMakeFiles/amm_proto.dir/timestamp_ba.cpp.o"
  "CMakeFiles/amm_proto.dir/timestamp_ba.cpp.o.d"
  "libamm_proto.a"
  "libamm_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amm_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
