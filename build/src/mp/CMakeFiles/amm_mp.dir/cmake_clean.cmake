file(REMOVE_RECURSE
  "CMakeFiles/amm_mp.dir/abd.cpp.o"
  "CMakeFiles/amm_mp.dir/abd.cpp.o.d"
  "CMakeFiles/amm_mp.dir/sim_memory.cpp.o"
  "CMakeFiles/amm_mp.dir/sim_memory.cpp.o.d"
  "libamm_mp.a"
  "libamm_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amm_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
