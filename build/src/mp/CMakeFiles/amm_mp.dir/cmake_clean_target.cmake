file(REMOVE_RECURSE
  "libamm_mp.a"
)
