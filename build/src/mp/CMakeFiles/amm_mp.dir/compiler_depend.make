# Empty compiler generated dependencies file for amm_mp.
# This may be replaced when dependencies are built.
