
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mp/abd.cpp" "src/mp/CMakeFiles/amm_mp.dir/abd.cpp.o" "gcc" "src/mp/CMakeFiles/amm_mp.dir/abd.cpp.o.d"
  "/root/repo/src/mp/sim_memory.cpp" "src/mp/CMakeFiles/amm_mp.dir/sim_memory.cpp.o" "gcc" "src/mp/CMakeFiles/amm_mp.dir/sim_memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/amm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/amm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
