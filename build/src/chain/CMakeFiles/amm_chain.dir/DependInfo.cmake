
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/backbone.cpp" "src/chain/CMakeFiles/amm_chain.dir/backbone.cpp.o" "gcc" "src/chain/CMakeFiles/amm_chain.dir/backbone.cpp.o.d"
  "/root/repo/src/chain/block_graph.cpp" "src/chain/CMakeFiles/amm_chain.dir/block_graph.cpp.o" "gcc" "src/chain/CMakeFiles/amm_chain.dir/block_graph.cpp.o.d"
  "/root/repo/src/chain/dot.cpp" "src/chain/CMakeFiles/amm_chain.dir/dot.cpp.o" "gcc" "src/chain/CMakeFiles/amm_chain.dir/dot.cpp.o.d"
  "/root/repo/src/chain/rules.cpp" "src/chain/CMakeFiles/amm_chain.dir/rules.cpp.o" "gcc" "src/chain/CMakeFiles/amm_chain.dir/rules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/am/CMakeFiles/amm_am.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/amm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
