file(REMOVE_RECURSE
  "libamm_chain.a"
)
