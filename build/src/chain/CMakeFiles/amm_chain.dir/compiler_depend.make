# Empty compiler generated dependencies file for amm_chain.
# This may be replaced when dependencies are built.
