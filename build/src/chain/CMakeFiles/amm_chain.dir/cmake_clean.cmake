file(REMOVE_RECURSE
  "CMakeFiles/amm_chain.dir/backbone.cpp.o"
  "CMakeFiles/amm_chain.dir/backbone.cpp.o.d"
  "CMakeFiles/amm_chain.dir/block_graph.cpp.o"
  "CMakeFiles/amm_chain.dir/block_graph.cpp.o.d"
  "CMakeFiles/amm_chain.dir/dot.cpp.o"
  "CMakeFiles/amm_chain.dir/dot.cpp.o.d"
  "CMakeFiles/amm_chain.dir/rules.cpp.o"
  "CMakeFiles/amm_chain.dir/rules.cpp.o.d"
  "libamm_chain.a"
  "libamm_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amm_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
