file(REMOVE_RECURSE
  "libamm_support.a"
)
