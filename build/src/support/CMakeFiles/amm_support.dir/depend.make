# Empty dependencies file for amm_support.
# This may be replaced when dependencies are built.
