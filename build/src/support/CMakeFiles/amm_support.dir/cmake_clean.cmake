file(REMOVE_RECURSE
  "CMakeFiles/amm_support.dir/cli.cpp.o"
  "CMakeFiles/amm_support.dir/cli.cpp.o.d"
  "CMakeFiles/amm_support.dir/rng.cpp.o"
  "CMakeFiles/amm_support.dir/rng.cpp.o.d"
  "CMakeFiles/amm_support.dir/stats.cpp.o"
  "CMakeFiles/amm_support.dir/stats.cpp.o.d"
  "CMakeFiles/amm_support.dir/table.cpp.o"
  "CMakeFiles/amm_support.dir/table.cpp.o.d"
  "CMakeFiles/amm_support.dir/thread_pool.cpp.o"
  "CMakeFiles/amm_support.dir/thread_pool.cpp.o.d"
  "libamm_support.a"
  "libamm_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amm_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
