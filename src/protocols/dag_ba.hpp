// Algorithm 6 (§5.3): Byzantine agreement with DAGs under randomized
// memory access.
//
//   while there is no longest (heaviest) chain containing at least k values:
//     M.read(); upon granted access:
//       let C be the last states of M without child nodes (the tips)
//       M.append(C, val(v))
//   order the values of the DAG with respect to the longest chain
//   decide on the sign of the sum of the first k values in the ordering
//
// The DAG is inclusive: every correct append references *all* tips it sees,
// so forks never waste correct values — the root of the λ-independent
// resilience of Theorem 5.6. The only leverage left to the adversary is
// Lemma 5.5's withholding attack: build a private chain during a quiet
// interval just before the decision cut and release it to claim the final
// positions of the first-k ordering. The quiet interval is short w.h.p.
// (≤ Δ·log n), so only O(log n) extra Byzantine values fit.
#pragma once

#include "chain/rules.hpp"
#include "protocols/outcome.hpp"
#include "support/rng.hpp"

namespace amm::proto {

enum class DagAdversary {
  kHonestOpposite,     ///< protocol-following, votes opposite (pure rate attack)
  kWithholdOnly,       ///< never appends publicly; dumps a private chain at the cut
  kRateAndWithhold,    ///< rate attack early, withholding near the decision cut
};

struct DagParams {
  Scenario scenario;
  u32 k = 0;            ///< decision cut size (odd)
  double lambda = 0.5;  ///< per-node access rate per Δ
  SimTime delta = 1.0;  ///< Δ (also the correct nodes' read staleness)
  chain::PivotRule pivot_rule = chain::PivotRule::kGhost;
  DagAdversary adversary = DagAdversary::kHonestOpposite;
  /// Decide from a full BlockGraph linearization (exact Algorithm 6 line 9)
  /// instead of the incremental bookkeeping fast path. The fast path is
  /// exact for the quantities the experiments report (cut composition);
  /// tests cross-validate both paths.
  bool full_ordering = false;
  u64 max_tokens = 10'000'000;  ///< safety bound
  /// Optional per-node hash-power weights (the permissionless setting §5):
  /// tokens are dealt proportionally to weight, total rate λ·n per Δ.
  /// Empty = identical rates.
  std::vector<double> weights;
  /// Temporary asynchrony (the paper's closing remark in §5.3): once the
  /// public DAG is within `async_window` values of the cut, correct tokens
  /// are exercised `async_delay` late — asynchronous nodes may take
  /// unboundedly long between obtaining a token and appending. The
  /// withholding adversary's quiet interval stretches accordingly, and the
  /// resilience of the decision cut drops. 0 = synchronous (default).
  SimTime async_delay = 0.0;
  u32 async_window = 0;  ///< 0 = use the adversary's banking window
};

struct DagResult {
  Outcome outcome;
  u64 dumped = 0;            ///< withheld Byzantine values that entered the cut
  u64 omniscient_bound = 0;  ///< best possible dump over all observed gaps (Lemma 5.5 stat)
  SimTime final_gap = 0.0;   ///< length of the quiet interval the dump exploited
};

DagResult run_dag_continuous(const DagParams& params, Rng rng);

}  // namespace amm::proto
