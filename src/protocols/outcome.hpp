// Shared scenario description and outcome record for every Byzantine
// agreement protocol in the library (§1.1 consensus properties).
#pragma once

#include <optional>
#include <vector>

#include "support/assert.hpp"
#include "support/types.hpp"

namespace amm::proto {

/// Which nodes are Byzantine and what the correct nodes' inputs are.
/// By convention the *last* `t` node indices are Byzantine; experiments
/// only depend on counts, never on which indices are faulty.
struct Scenario {
  u32 n = 0;  ///< total nodes
  u32 t = 0;  ///< Byzantine nodes (indices n-t .. n-1)
  Vote correct_input = Vote::kPlus;  ///< common input of correct nodes (validity setting)
  /// Optional heterogeneous inputs for the correct nodes (size n-t). When
  /// set, `correct_input` is ignored and validity is undefined — used by
  /// the agreement/lower-bound experiments that need bivalent inputs.
  std::vector<Vote> inputs;

  u32 correct_count() const { return n - t; }
  bool is_byzantine(NodeId id) const { return id.index >= n - t; }
  bool homogeneous() const { return inputs.empty(); }
  Vote input_of(u32 correct_index) const {
    return inputs.empty() ? correct_input : inputs[correct_index];
  }

  void validate() const {
    AMM_EXPECTS(n > 0);
    AMM_EXPECTS(t < n);
    AMM_EXPECTS(inputs.empty() || inputs.size() == correct_count());
  }
};

/// Result of one protocol execution.
struct Outcome {
  bool terminated = false;
  /// Decisions of the correct nodes (empty entries = undecided).
  std::vector<std::optional<Vote>> decisions;

  /// Agreement: all correct nodes that decided agree.
  bool agreement() const {
    std::optional<Vote> first;
    for (const auto& d : decisions) {
      if (!d) return false;  // a correct node failed to decide
      if (!first) {
        first = d;
      } else if (*first != *d) {
        return false;
      }
    }
    return !decisions.empty();
  }

  /// All-same-validity against the scenario's common correct input.
  bool validity(const Scenario& s) const {
    for (const auto& d : decisions) {
      if (!d || *d != s.correct_input) return false;
    }
    return !decisions.empty();
  }

  // ---- Measured quantities shared across experiments ----
  SimTime elapsed = 0.0;        ///< simulated time until the last decision
  u64 total_appends = 0;        ///< appends that reached the memory
  u64 rounds = 0;               ///< rounds (synchronous protocols) / slots
  u64 byz_in_decision_set = 0;  ///< Byzantine values among the k decisive values
  u64 decision_set_size = 0;    ///< k
};

}  // namespace amm::proto
