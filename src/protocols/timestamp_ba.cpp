#include "protocols/timestamp_ba.hpp"

#include <cmath>

#include "am/memory.hpp"
#include "am/order.hpp"
#include "check/audit.hpp"
#include "sched/poisson.hpp"
#include "support/stats.hpp"

namespace amm::proto {

Outcome run_timestamp_ba(const TimestampParams& params, Rng rng) {
  const Scenario& s = params.scenario;
  s.validate();
  AMM_EXPECTS(params.k > 0);
  AMM_EXPECTS(params.k % 2 == 1);  // odd k: the sign of the sum is never zero

  am::AppendMemory memory(s.n);
  sched::TokenAuthority authority(s.n, params.lambda, params.delta,
                                  Rng::for_stream(rng.next(), 1));
  check::MemoryAuditor auditor;

  // Every node loops: read, and on a granted token append its value. The
  // optimal Byzantine strategy (proof of Thm 5.2) appends the opposite of
  // the correct input on every token. The append-time order is consumed
  // incrementally: the cursor drains everything ordered strictly before the
  // latest append time each round, so the final decision never re-sorts the
  // whole history.
  am::AppendOrderCursor cursor(memory);
  std::vector<am::MsgId> ordered;
  while (memory.total_appends() < params.k) {
    const sched::Token token = authority.next();
    const Vote vote = s.is_byzantine(token.holder) ? opposite(s.correct_input)
                                                   : s.input_of(token.holder.index);
    memory.append(token.holder, vote, /*payload=*/0, /*refs=*/{}, token.time);
    cursor.drain(memory.read(), memory.last_append_time(), ordered);
    if constexpr (check::kAuditEnabled) {
      if ((memory.total_appends() & 0x3f) == 0) {
        auditor.audit(memory);
        auditor.audit_view(memory.read());
      }
    }
  }

  // Decision: order all appends by the authority's absolute timestamps and
  // take the sign of the first k. Every node reads the same memory, so all
  // correct nodes compute the identical decision.
  const am::MemoryView view = memory.read();
  auditor.check(memory);
  auditor.check_view(view);
  cursor.finish(view, ordered);
  AMM_ASSERT(ordered.size() >= params.k);

  i64 sum = 0;
  u64 byz = 0;
  for (u32 i = 0; i < params.k; ++i) {
    const am::Message& m = view.msg(ordered[i]);
    sum += vote_value(m.value);
    if (s.is_byzantine(NodeId{m.id.author})) ++byz;
  }
  const Vote decision = sign_decision(sum);

  Outcome out;
  out.terminated = true;
  out.decisions.assign(s.correct_count(), decision);
  out.elapsed = memory.last_append_time();
  out.total_appends = memory.total_appends();
  out.byz_in_decision_set = byz;
  out.decision_set_size = params.k;
  return out;
}

double timestamp_validity_failure_bound(u32 n, u32 t, u32 k) {
  AMM_EXPECTS(t < n && k > 0);
  // Each of the first k appends is Byzantine with probability t/n and
  // contributes -1, else +1. Sum has mean k(n-2t)/n and variance
  // k(1 - ((n-2t)/n)^2); validity fails when the sum goes negative.
  const double gap = static_cast<double>(n) - 2.0 * static_cast<double>(t);
  const double mu = static_cast<double>(k) * gap / static_cast<double>(n);
  const double p_plus = static_cast<double>(n - t) / static_cast<double>(n);
  const double sigma2 = 4.0 * static_cast<double>(k) * p_plus * (1.0 - p_plus);
  if (sigma2 <= 0.0) return mu >= 0.0 ? 0.0 : 1.0;
  return normal_cdf(-mu / std::sqrt(sigma2));
}

}  // namespace amm::proto
