// Algorithm 5 (§5.2): Byzantine agreement with Chains under randomized
// memory access.
//
//   while there is no longest chain of length >= k:
//     M.read(); upon granted access:
//       choose a tip c among the longest chains by the tie-breaking rule
//       M.append(c, val(v))
//   decide on the sign of the sum of the first k appends in the longest chain
//
// Two execution models are provided:
//  * slotted  — time advances in intervals Δ; all appends of a slot are
//    concurrent (they reference the slot-start state). This matches the
//    average-case analysis in the proof of Theorem 5.4 exactly.
//  * continuous — a merged Poisson token stream; correct nodes act on views
//    stale by up to Δ (the read→append gap of a synchronous node), the
//    adversary acts on the true state (rushing).
//
// Byzantine strategies implement the two attacks the paper analyzes:
//  * kForkTieBreak (Theorem 5.3): fork at the deepest level and rely on the
//    deterministic tie-breaking rule resolving ties in the adversary's
//    favor; kills validity at t >= n/3.
//  * kRushExtend (Theorem 5.4): play tie-breaker among the concurrent
//    correct appends — instantly extend the first correct append of each
//    interval so all later correct appends of the interval are wasted;
//    kills validity when λ·t >= 1, i.e. t/n >= 1/(1+λ(n−t)).
#pragma once

#include "chain/rules.hpp"
#include "protocols/outcome.hpp"
#include "support/rng.hpp"

namespace amm::proto {

enum class ChainAdversary {
  kHonestOpposite,  ///< follows the protocol; only its vote is adversarial
  kForkTieBreak,    ///< Theorem 5.3 strategy
  kRushExtend,      ///< Theorem 5.4 strategy
};

struct ChainParams {
  Scenario scenario;
  u32 k = 0;                  ///< decision chain length (odd)
  double lambda = 0.5;        ///< per-node access rate per Δ
  SimTime delta = 1.0;        ///< Δ
  chain::TieBreak tie_break = chain::TieBreak::kRandomized;
  /// Worst-case deterministic rule: ties at the deepest level resolve to a
  /// Byzantine block when one exists ("all ties broken in favor of the
  /// adversary", proof of Theorem 5.3). Only meaningful with the
  /// deterministic tie-break.
  bool adversarial_ties = false;
  ChainAdversary adversary = ChainAdversary::kHonestOpposite;
  u64 max_slots = 1'000'000;  ///< safety bound on simulated slots/tokens
  /// Optional per-node hash-power weights (the permissionless setting §5):
  /// tokens are dealt proportionally to weight, total rate λ·n per Δ.
  /// Empty = identical rates. Continuous model only.
  std::vector<double> weights;
};

Outcome run_chain_slotted(const ChainParams& params, Rng rng);
Outcome run_chain_continuous(const ChainParams& params, Rng rng);

/// Theorem 5.4's resilience bound: the largest tolerable t/n given λ and
/// the correct population, 1 / (1 + λ(n−t)).
double chain_resilience_bound(u32 n, u32 t, double lambda);

/// Decision (in)stability under asynchrony — the executable counterpart of
/// Theorem 5.1/2.1's message that randomized access does not circumvent
/// asynchronous impossibility.
///
/// The adversarial schedule is the classic partition: correct nodes are
/// split into two groups; each sees its own group's appends promptly but
/// the other group's only after `staleness_factor · Δ` (per the model,
/// the read→append gap of an asynchronous node is unbounded — the
/// scheduler, not the network, creates the delay). Each group decides when
/// *its* view first shows a chain of length k; the run then continues to
/// global length 2k. Under synchrony (staleness ≤ Δ) the decisions are
/// stable and agree; under asynchrony the two groups grow leapfrogging
/// branches, split their decisions, and the "decided" prefix keeps being
/// replaced.
struct FinalityResult {
  bool terminated = false;
  Vote decision_a = Vote::kPlus;      ///< group A's decision at its k-threshold
  Vote decision_b = Vote::kPlus;      ///< group B's decision at its k-threshold
  Vote decision_final = Vote::kPlus;  ///< canonical decision at global depth 2k
  bool split = false;                 ///< A and B decided differently (agreement broken)
  bool flipped = false;               ///< the final decision differs from A's
  u32 prefix_divergence = 0;  ///< blocks of A's decided cut replaced by the end
};
FinalityResult run_chain_finality(const ChainParams& params, double staleness_factor, Rng rng);

}  // namespace amm::proto
