#include "protocols/nakamoto.hpp"

#include <cmath>

#include "am/memory.hpp"
#include "chain/block_graph.hpp"
#include "check/audit.hpp"
#include "sched/poisson.hpp"

namespace amm::proto {

NakamotoResult run_double_spend_race(const NakamotoParams& params, Rng rng) {
  const Scenario& s = params.scenario;
  s.validate();
  AMM_EXPECTS(s.t >= 1);
  AMM_EXPECTS(params.confirmation_depth >= 1);

  // The race only depends on chain lengths, but we keep the real memory in
  // the loop so the execution is a legal append-memory history (and can be
  // captured/replayed like any other).
  am::AppendMemory memory(s.n);
  sched::TokenAuthority authority(s.n, params.lambda, params.delta,
                                  Rng::for_stream(rng.next(), 1));
  check::MemoryAuditor auditor;
  // Audit-only carried graph: extended incrementally at checkpoints, it
  // cross-checks BlockGraph::extend against the growing race history. Zero
  // cost in release builds.
  chain::BlockGraph graph;
  auto audit_all = [&] {
    auditor.check(memory);
    if constexpr (check::kAuditEnabled) {
      graph.extend(memory.read());
      check::check_graph(graph);
    }
  };

  // Public chain: correct blocks after the tx block; private chain: the
  // attacker's fork from the tx block's parent. Serialized regime — each
  // correct token extends the public tip (fork waste is the chain's
  // *validity* problem, E6; the double-spend race is orthogonal).
  am::MsgId public_tip{};
  am::MsgId private_tip{};
  bool have_tx_block = false;
  bool have_private = false;
  u64 public_len = 0;   // blocks on top of the tx block's parent (incl. tx block)
  u64 private_len = 0;  // attacker's blocks from the same parent

  NakamotoResult result;
  bool accepted = false;

  for (u64 i = 0; i < params.max_tokens; ++i) {
    const sched::Token token = authority.next();
    if (s.is_byzantine(token.holder)) {
      // Private mining: extend the withheld fork (anchored beside the tx
      // block — the double-spend shares the tx block's parent).
      if (!have_tx_block) continue;  // nothing to fork from yet
      std::vector<am::MsgId> refs;
      if (have_private) refs.push_back(private_tip);
      private_tip =
          memory.append(token.holder, Vote::kMinus, /*payload=*/1, std::move(refs), token.time);
      have_private = true;
      ++private_len;
    } else {
      std::vector<am::MsgId> refs;
      if (have_tx_block) refs.push_back(public_tip);
      public_tip =
          memory.append(token.holder, Vote::kPlus, /*payload=*/0, std::move(refs), token.time);
      have_tx_block = true;
      ++public_len;
    }

    if (!accepted && public_len >= params.confirmation_depth) {
      accepted = true;
      result.blocks_to_confirm = public_len;
      result.time_to_confirm = token.time;
    }
    if (accepted) {
      if (private_len > public_len) {
        audit_all();
        result.terminated = true;
        result.reversed = true;  // the attacker publishes and wins
        result.final_lead = static_cast<i64>(public_len) - static_cast<i64>(private_len);
        return result;
      }
      if (public_len >= private_len + params.give_up_deficit) {
        audit_all();
        result.terminated = true;
        result.reversed = false;
        result.final_lead = static_cast<i64>(public_len) - static_cast<i64>(private_len);
        return result;
      }
    }
  }
  audit_all();
  return result;
}

double nakamoto_overtake_bound(double q, u32 z) {
  AMM_EXPECTS(q >= 0.0 && q <= 1.0);
  const double p = 1.0 - q;
  if (q >= p) return 1.0;
  return std::pow(q / p, static_cast<double>(z));
}

double nakamoto_reversal_probability(double q, u32 z) {
  AMM_EXPECTS(q >= 0.0 && q <= 1.0);
  AMM_EXPECTS(z >= 1);
  const double p = 1.0 - q;
  if (q >= p) return 1.0;
  if (q == 0.0) return 0.0;
  const double ratio = q / p;
  // Head start while the defender mines z-1 blocks: each defender block
  // is preceded by Geometric(p)-many attacker blocks, so the total is
  // negative binomial — NB(k; z-1, p) = C(k+z-2, k) p^{z-1} q^k (a point
  // mass at 0 for z = 1). Rosenfeld's exact analysis; Nakamoto's Poisson
  // is its approximation.
  const u32 r = z - 1;  // number of defender blocks the head start spans
  const double mean = static_cast<double>(r) * ratio;
  const u32 k_max = z + 1 + static_cast<u32>(20.0 * (mean + 1.0));
  double prob = 0.0;
  double nb = std::pow(p, static_cast<double>(r));  // NB(0)
  double nb_cdf = 0.0;
  for (u32 k = 0; k <= k_max; ++k) {
    if (k > 0) {
      // NB(k) = NB(k-1) * q * (k + r - 1) / k.
      nb *= q * static_cast<double>(k + r - 1) / static_cast<double>(k);
    }
    nb_cdf += nb;
    const double catch_up =
        k >= z + 1 ? 1.0 : std::pow(ratio, static_cast<double>(z + 1 - k));
    prob += nb * catch_up;
  }
  prob += (1.0 - nb_cdf);  // remaining tail is already ahead
  return std::min(1.0, std::max(0.0, prob));
}

}  // namespace amm::proto
