#include "protocols/chain_ba.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "am/memory.hpp"
#include "check/audit.hpp"
#include "sched/poisson.hpp"

namespace amm::proto {
namespace {

/// Compact per-block record; the chain simulators track depth incrementally
/// instead of rebuilding a BlockGraph every slot (the graphs grow linearly
/// with simulated time, so rebuilding would make trials quadratic).
struct Rec {
  am::MsgId id;
  i32 parent = -1;  ///< local index; -1 = virtual root
  u32 depth = 1;
  Vote vote = Vote::kPlus;
  bool byz = false;
  SimTime time = 0.0;
};

/// Incremental chain state plus a lagging "stale frontier" that exposes the
/// deepest blocks as of (now − Δ) — the view a synchronous correct node
/// acts on in the continuous model.
class ChainState {
 public:
  explicit ChainState(u32 node_count) : memory_(node_count) {}

  am::AppendMemory& memory() { return memory_; }

  /// Invariant audit hook (no-op unless AMM_AUDIT): append-only growth and
  /// prefix immutability of the backing memory, monotone observed views,
  /// and structural invariants of a BlockGraph carried across checkpoints —
  /// which doubles as a continuous cross-check that incremental extension
  /// tracks the growing view. Zero cost in release builds.
  void audit() {
    auditor_.check(memory_);
    auditor_.check_view(memory_.read());
    if constexpr (check::kAuditEnabled) {
      graph_.extend(memory_.read());
      check::check_graph(graph_);
    }
  }

  usize append(NodeId author, Vote vote, i32 parent, SimTime now) {
    std::vector<am::MsgId> refs;
    if (parent >= 0) refs.push_back(recs_[static_cast<usize>(parent)].id);
    const am::MsgId id = memory_.append(author, vote, /*payload=*/0, std::move(refs), now);

    Rec rec;
    rec.id = id;
    rec.parent = parent;
    rec.depth = parent >= 0 ? recs_[static_cast<usize>(parent)].depth + 1 : 1;
    rec.vote = vote;
    rec.byz = byz_author_;
    rec.time = now;
    recs_.push_back(rec);

    const usize idx = recs_.size() - 1;
    if (rec.depth > max_depth_) {
      max_depth_ = rec.depth;
      deepest_.clear();
    }
    if (rec.depth == max_depth_) deepest_.push_back(idx);
    return idx;
  }

  /// Marks the author of the next append as Byzantine (bookkeeping only).
  void set_byz_author(bool byz) { byz_author_ = byz; }

  const Rec& rec(usize i) const { return recs_[i]; }
  usize size() const { return recs_.size(); }
  u32 max_depth() const { return max_depth_; }
  const std::vector<usize>& deepest() const { return deepest_; }

  /// Advances the stale frontier to include blocks appended strictly before
  /// `horizon` and returns the deepest blocks of that prefix.
  const std::vector<usize>& stale_deepest(SimTime horizon) {
    while (stale_ptr_ < recs_.size() && recs_[stale_ptr_].time < horizon) {
      const Rec& r = recs_[stale_ptr_];
      if (r.depth > stale_max_depth_) {
        stale_max_depth_ = r.depth;
        stale_deepest_.clear();
      }
      if (r.depth == stale_max_depth_) stale_deepest_.push_back(stale_ptr_);
      ++stale_ptr_;
    }
    return stale_deepest_;
  }

  /// First k blocks of the chain ending at `tip` (local indices, oldest
  /// first).
  std::vector<usize> first_k(usize tip, u32 k) const {
    std::vector<usize> chain;
    i32 cur = static_cast<i32>(tip);
    while (cur >= 0) {
      chain.push_back(static_cast<usize>(cur));
      cur = recs_[static_cast<usize>(cur)].parent;
    }
    std::reverse(chain.begin(), chain.end());
    if (chain.size() > k) chain.resize(k);
    return chain;
  }

 private:
  am::AppendMemory memory_;
  check::MemoryAuditor auditor_;
  chain::BlockGraph graph_;  ///< audit-only; extended lazily at checkpoints
  std::vector<Rec> recs_;
  u32 max_depth_ = 0;
  std::vector<usize> deepest_;
  bool byz_author_ = false;

  usize stale_ptr_ = 0;
  u32 stale_max_depth_ = 0;
  std::vector<usize> stale_deepest_;
};

/// Tip selection among a set of equally-deep candidates, honoring the
/// tie-breaking rule and the worst-case "ties favor the adversary" mode.
usize pick_tip(const ChainState& st, const std::vector<usize>& candidates,
               const ChainParams& params, Rng& rng) {
  AMM_EXPECTS(!candidates.empty());
  if (params.adversarial_ties) {
    for (const usize c : candidates) {
      if (st.rec(c).byz) return c;  // worst-case deterministic rule
    }
    return candidates.front();
  }
  switch (params.tie_break) {
    case chain::TieBreak::kDeterministicFirst:
      return candidates.front();
    case chain::TieBreak::kRandomized:
      return candidates[rng.uniform_below(candidates.size())];
  }
  AMM_ASSERT(false);
  return candidates.front();
}

/// Byzantine action on one token, acting on the *true* current state
/// (the adversary rushes; it is not subject to read staleness).
void byz_act(ChainState& st, const ChainParams& params, NodeId author, SimTime now, Rng& rng) {
  const Vote vote = opposite(params.scenario.correct_input);
  st.set_byz_author(true);
  switch (params.adversary) {
    case ChainAdversary::kHonestOpposite: {
      // Protocol-following append on the deepest tip (true view: the most
      // effective protocol-compliant behaviour).
      if (st.size() == 0) {
        st.append(author, vote, -1, now);
      } else {
        st.append(author, vote, static_cast<i32>(pick_tip(st, st.deepest(), params, rng)), now);
      }
      break;
    }
    case ChainAdversary::kForkTieBreak: {
      // Theorem 5.3: if the unique deepest block is correct, fork beside it
      // (same parent → tie at the same depth, which the worst-case
      // deterministic rule resolves toward us). If a Byzantine block is
      // already at the deepest level, extend it.
      if (st.size() == 0) {
        st.append(author, vote, -1, now);
        break;
      }
      const auto& deepest = st.deepest();
      for (const usize c : deepest) {
        if (st.rec(c).byz) {
          st.append(author, vote, static_cast<i32>(c), now);
          st.set_byz_author(false);
          return;
        }
      }
      st.append(author, vote, st.rec(deepest.front()).parent, now);
      break;
    }
    case ChainAdversary::kRushExtend: {
      // Theorem 5.4: immediately extend the longest chain so that all
      // correct appends still in flight land on an outdated state.
      if (st.size() == 0) {
        st.append(author, vote, -1, now);
        break;
      }
      const auto& deepest = st.deepest();
      usize target = deepest.front();
      for (const usize c : deepest) {
        if (st.rec(c).byz) {
          target = c;
          break;
        }
      }
      st.append(author, vote, static_cast<i32>(target), now);
      break;
    }
  }
  st.set_byz_author(false);
}

Outcome decide(const ChainState& st, const ChainParams& params, Rng& rng) {
  // All correct nodes share the final view. With a deterministic rule they
  // provably compute one decision; with the randomized rule each node
  // breaks a residual tie among equally-long chains with its own coin, so
  // we sample every node's decision independently — the measured agreement
  // rate quantifies the paper's "w.h.p. there will be a longest chain"
  // argument instead of assuming it.
  const bool deterministic =
      params.adversarial_ties || params.tie_break == chain::TieBreak::kDeterministicFirst ||
      st.deepest().size() == 1;

  auto decide_once = [&]() -> std::pair<Vote, u64> {
    const usize tip = pick_tip(st, st.deepest(), params, rng);
    const std::vector<usize> cut = st.first_k(tip, params.k);
    i64 sum = 0;
    u64 byz = 0;
    for (const usize i : cut) {
      sum += vote_value(st.rec(i).vote);
      if (st.rec(i).byz) ++byz;
    }
    return {sign_decision(sum), byz};
  };

  Outcome out;
  out.terminated = true;
  out.total_appends = st.size();
  out.decision_set_size = std::min<u64>(params.k, st.max_depth());

  const auto [first_vote, first_byz] = decide_once();
  out.byz_in_decision_set = first_byz;
  out.decisions.assign(params.scenario.correct_count(), first_vote);
  if (!deterministic) {
    for (u32 v = 1; v < params.scenario.correct_count(); ++v) {
      out.decisions[v] = decide_once().first;
    }
  }
  return out;
}

Outcome not_terminated(const ChainParams& params, const ChainState& st) {
  Outcome out;
  out.terminated = false;
  out.decisions.assign(params.scenario.correct_count(), std::nullopt);
  out.total_appends = st.size();
  return out;
}

/// Token source abstraction: equal rates by default, hash-power weighted in
/// the permissionless mode.
class TokenSource {
 public:
  TokenSource(u32 n, double lambda, SimTime delta, const std::vector<double>& weights, Rng rng) {
    if (weights.empty()) {
      equal_.emplace(n, lambda, delta, rng);
    } else {
      AMM_EXPECTS(weights.size() == n);
      weighted_.emplace(weights, lambda * static_cast<double>(n), delta, rng);
    }
  }

  sched::Token next() { return equal_ ? equal_->next() : weighted_->next(); }

 private:
  std::optional<sched::TokenAuthority> equal_;
  std::optional<sched::WeightedTokenAuthority> weighted_;
};

}  // namespace

Outcome run_chain_slotted(const ChainParams& params, Rng rng) {
  const Scenario& s = params.scenario;
  s.validate();
  AMM_EXPECTS(params.k > 0 && params.k % 2 == 1);
  AMM_EXPECTS(params.weights.empty());  // hash-power mode: continuous model only

  ChainState st(s.n);
  Rng token_rng = Rng::for_stream(rng.next(), 1);
  Rng tie_rng = Rng::for_stream(rng.next(), 2);

  const double correct_rate = params.lambda * static_cast<double>(s.correct_count());
  const double byz_rate = params.lambda * static_cast<double>(s.t);

  for (u64 slot = 0; slot < params.max_slots; ++slot) {
    const SimTime slot_start = static_cast<SimTime>(slot) * params.delta;

    // Snapshot of the deepest blocks as of the slot start: every correct
    // append of this slot is concurrent and acts on this stale state.
    const std::vector<usize> start_deepest = st.deepest();
    const bool genesis = st.size() == 0;

    const u64 c_tokens = token_rng.poisson(correct_rate);
    const u64 b_tokens = s.t > 0 ? token_rng.poisson(byz_rate) : 0;

    // Interleave correct/Byzantine token order uniformly at random within
    // the slot (the merged Poisson process is exchangeable within Δ).
    std::vector<u8> labels;
    labels.reserve(c_tokens + b_tokens);
    labels.insert(labels.end(), c_tokens, u8{0});
    labels.insert(labels.end(), b_tokens, u8{1});
    token_rng.shuffle(labels);

    const SimTime step =
        labels.empty() ? 0.0 : params.delta / (static_cast<double>(labels.size()) + 1.0);
    SimTime now = slot_start;
    for (const u8 label : labels) {
      now += step;
      if (label == 0) {
        const auto who = NodeId{static_cast<u32>(token_rng.uniform_below(s.correct_count()))};
        const Vote vote = s.input_of(who.index);
        if (genesis || start_deepest.empty()) {
          st.append(who, vote, -1, now);
        } else {
          const usize tip = pick_tip(st, start_deepest, params, tie_rng);
          st.append(who, vote, static_cast<i32>(tip), now);
        }
      } else {
        const auto who =
            NodeId{s.correct_count() + static_cast<u32>(token_rng.uniform_below(s.t))};
        byz_act(st, params, who, now, tie_rng);
      }
    }

    if (st.max_depth() >= params.k) {
      st.audit();
      Outcome out = decide(st, params, tie_rng);
      out.rounds = slot + 1;
      out.elapsed = static_cast<SimTime>(slot + 1) * params.delta;
      return out;
    }
  }
  return not_terminated(params, st);
}

Outcome run_chain_continuous(const ChainParams& params, Rng rng) {
  const Scenario& s = params.scenario;
  s.validate();
  AMM_EXPECTS(params.k > 0 && params.k % 2 == 1);

  ChainState st(s.n);
  TokenSource authority(s.n, params.lambda, params.delta, params.weights,
                        Rng::for_stream(rng.next(), 1));
  Rng tie_rng = Rng::for_stream(rng.next(), 2);

  for (u64 i = 0; i < params.max_slots; ++i) {
    const sched::Token token = authority.next();
    if (s.is_byzantine(token.holder)) {
      byz_act(st, params, token.holder, token.time, tie_rng);
    } else {
      // A synchronous correct node appends against the view it last read —
      // up to Δ old (worst-case staleness, matching the proof of Thm 5.4).
      const Vote vote = s.input_of(token.holder.index);
      const auto& stale = st.stale_deepest(token.time - params.delta);
      if (stale.empty()) {
        // Nothing visible yet: attach to the virtual root.
        st.append(token.holder, vote, -1, token.time);
      } else {
        const usize tip = pick_tip(st, stale, params, tie_rng);
        st.append(token.holder, vote, static_cast<i32>(tip), token.time);
      }
    }
    if (st.max_depth() >= params.k) {
      st.audit();
      Outcome out = decide(st, params, tie_rng);
      out.rounds = i + 1;
      out.elapsed = token.time;
      return out;
    }
    if constexpr (check::kAuditEnabled) {
      if ((i & 0x3ff) == 0x3ff) st.audit();
    }
  }
  return not_terminated(params, st);
}

double chain_resilience_bound(u32 n, u32 t, double lambda) {
  AMM_EXPECTS(t < n);
  return 1.0 / (1.0 + lambda * static_cast<double>(n - t));
}

namespace {

/// One partition group's view of the chain: own-group appends are visible
/// promptly, the other group's only `sigma` late. Maintains the deepest
/// blocks of the visible set incrementally (two monotone scan pointers,
/// one per visibility class).
class GroupFrontier {
 public:
  GroupFrontier(int my_group, SimTime sigma) : group_(my_group), sigma_(sigma) {}

  /// `group_of[i]` gives each record's group (0/1). Advances both scans to
  /// `now` and returns the deepest visible blocks.
  const std::vector<usize>& deepest(const ChainState& st, const std::vector<i8>& group_of,
                                    SimTime now) {
    advance(st, group_of, own_ptr_, now, /*want_group=*/group_);
    advance(st, group_of, other_ptr_, now - sigma_, /*want_group=*/1 - group_);
    return deepest_;
  }

  u32 max_depth() const { return max_depth_; }

 private:
  void advance(const ChainState& st, const std::vector<i8>& group_of, usize& ptr,
               SimTime horizon, int want_group) {
    while (ptr < st.size()) {
      if (group_of[ptr] != want_group) {
        ++ptr;
        continue;
      }
      if (st.rec(ptr).time >= horizon) break;
      include(st, ptr);
      ++ptr;
    }
  }

  void include(const ChainState& st, usize idx) {
    const u32 d = st.rec(idx).depth;
    if (d > max_depth_) {
      max_depth_ = d;
      deepest_.clear();
    }
    if (d == max_depth_) deepest_.push_back(idx);
  }

  int group_;
  SimTime sigma_;
  usize own_ptr_ = 0;
  usize other_ptr_ = 0;
  u32 max_depth_ = 0;
  std::vector<usize> deepest_;
};

}  // namespace

FinalityResult run_chain_finality(const ChainParams& params, double staleness_factor, Rng rng) {
  const Scenario& s = params.scenario;
  s.validate();
  AMM_EXPECTS(params.k > 0 && params.k % 2 == 1);
  AMM_EXPECTS(staleness_factor >= 0.0);
  AMM_EXPECTS(s.t == 0);  // pure-asynchrony experiment: no Byzantine nodes

  ChainState st(s.n);
  sched::TokenAuthority authority(s.n, params.lambda, params.delta,
                                  Rng::for_stream(rng.next(), 1));
  Rng tie_rng = Rng::for_stream(rng.next(), 2);
  const SimTime sigma = staleness_factor * params.delta;

  GroupFrontier frontier_a(0, sigma), frontier_b(1, sigma);
  std::vector<i8> group_of;  // per record, the author's partition group

  // Sign of the first-k prefix of the deepest block in `tips`.
  auto cut = [&](const std::vector<usize>& tips, std::vector<usize>& prefix_out) -> Vote {
    prefix_out = st.first_k(tips.front(), params.k);
    i64 sum = 0;
    for (const usize i : prefix_out) sum += vote_value(st.rec(i).vote);
    return sign_decision(sum);
  };

  FinalityResult result;
  std::vector<usize> cut_a, cut_final;
  bool done_a = false, done_b = false;

  for (u64 i = 0; i < params.max_slots; ++i) {
    const sched::Token token = authority.next();
    const int group = static_cast<int>(token.holder.index % 2);
    GroupFrontier& frontier = group == 0 ? frontier_a : frontier_b;

    const Vote vote = s.input_of(token.holder.index);
    const auto& visible = frontier.deepest(st, group_of, token.time);
    if (visible.empty()) {
      st.append(token.holder, vote, -1, token.time);
    } else {
      const usize tip = pick_tip(st, visible, params, tie_rng);
      st.append(token.holder, vote, static_cast<i32>(tip), token.time);
    }
    group_of.push_back(static_cast<i8>(group));

    // Group decisions at their own k-thresholds (their view's depth).
    if (!done_a) {
      const auto& tips = frontier_a.deepest(st, group_of, token.time);
      if (frontier_a.max_depth() >= params.k) {
        result.decision_a = cut(tips, cut_a);
        done_a = true;
      }
    }
    if (!done_b) {
      const auto& tips = frontier_b.deepest(st, group_of, token.time);
      if (frontier_b.max_depth() >= params.k) {
        std::vector<usize> cut_b;
        result.decision_b = cut(tips, cut_b);
        done_b = true;
      }
    }

    if (done_a && done_b && st.max_depth() >= 2 * params.k) {
      st.audit();
      result.decision_final = cut(st.deepest(), cut_final);
      result.terminated = true;
      result.split = result.decision_a != result.decision_b;
      result.flipped = result.decision_final != result.decision_a;
      u32 agree = 0;
      while (agree < cut_a.size() && agree < cut_final.size() &&
             cut_a[agree] == cut_final[agree]) {
        ++agree;
      }
      result.prefix_divergence = static_cast<u32>(cut_a.size() - agree);
      return result;
    }
  }
  return result;
}

}  // namespace amm::proto
