#include "protocols/sync_ba.hpp"

#include <algorithm>

#include "check/audit.hpp"
#include "support/assert.hpp"

namespace amm::proto {
namespace {

/// Exact acceptance search for Algorithm 1's decision rule, from one
/// observer's perspective.
///
/// The rule (line 6): val(v) is accepted iff the observer's view contains
/// a reference-inclusion chain of `rounds` messages with pairwise-distinct
/// authors, starting at a "(val(v), ∅)" origin, where the element in chain
/// position i carries the set L_i — i.e. is a round-(i+1) append. The
/// round tag is essential: position i's slot may only be filled by a
/// message appended in round ≤ i+1 (an element appended later provably
/// cannot be an L_i-carrier; correct relays attest this through the rounds
/// in which they referenced it). Without this bound a Byzantine node can
/// reference a correct append *from the same final round* and fabricate a
/// subset-visible chain that splits the correct nodes — the exact attack
/// the chaos fuzzer finds against the lenient structural rule.
///
/// Observers only ever differ in the final round: an append delayed past a
/// node during round `rounds` is first read after that node has decided,
/// so it is invisible to it — the entire Byzantine leverage in the append
/// memory (§3).
///
/// The search branches only through Byzantine-authored links. Once the
/// chain stands on a round-feasible message that an unused correct author
/// has referenced, completion through fresh correct relays in consecutive
/// rounds is guaranteed, so the search short-circuits.
class ChainSearch {
 public:
  ChainSearch(const std::vector<SyncMsg>& msgs, const Scenario& scenario, u32 rounds,
              NodeId observer)
      : msgs_(msgs), scenario_(scenario), rounds_(rounds) {
    visible_.resize(msgs_.size());
    for (u32 i = 0; i < msgs_.size(); ++i) {
      // Delayed appends from earlier rounds were read in the following
      // round; only final-round delayed appends are missed entirely.
      visible_[i] = msgs_[i].round < rounds_ || msgs_[i].sees_now[observer.index];
    }
    // refs are sparse; build reverse adjacency (who references me).
    referrers_.resize(msgs_.size());
    for (u32 i = 0; i < msgs_.size(); ++i) {
      for (const u32 r : msgs_[i].refs) referrers_[r].push_back(i);
    }
  }

  /// An origin is a "(val(v), ∅)" message — an L_0-carrier, which only a
  /// round-1 append can be — that the observer has read.
  bool is_origin(u32 i) const {
    return msgs_[i].refs.empty() && msgs_[i].round == 1 && visible_[i];
  }

  bool accepted(u32 origin) {
    if (!is_origin(origin)) return false;
    if (rounds_ == 1) return true;  // a chain of one node is the origin itself
    used_.assign(scenario_.n, false);
    used_[msgs_[origin].author.index] = true;
    unused_correct_ = scenario_.correct_count() -
                      (scenario_.is_byzantine(msgs_[origin].author) ? 0 : 1);
    return dfs(origin, 1);
  }

 private:
  /// `pos` = number of chain elements so far (cur is element #pos, and the
  /// next candidate fills 0-based position `pos`, which requires an append
  /// of round <= pos+1).
  bool dfs(u32 cur, u32 pos) {
    if (pos == rounds_) return true;
    const u32 remaining = rounds_ - pos;  // elements still needed
    for (const u32 next : referrers_[cur]) {
      const SyncMsg& m = msgs_[next];
      if (used_[m.author.index] || !visible_[next]) continue;
      if (m.round > pos + 1) continue;  // cannot be an L_pos-carrier
      if (!scenario_.is_byzantine(m.author)) {
        // Fast path: after this correct relay, fill with fresh correct
        // authors in consecutive rounds. Fill element j (position pos+j)
        // lives in round m.round + j <= pos+1+j, so the round-position
        // bound is preserved; feasibility needs enough unused correct
        // authors and enough rounds after the relay's round.
        if (unused_correct_ >= remaining && m.round + (remaining - 1) <= rounds_) return true;
      }
      used_[m.author.index] = true;
      const bool was_correct = !scenario_.is_byzantine(m.author);
      if (was_correct) --unused_correct_;
      const bool ok = dfs(next, pos + 1);
      used_[m.author.index] = false;
      if (was_correct) ++unused_correct_;
      if (ok) return true;
    }
    return false;
  }

  const std::vector<SyncMsg>& msgs_;
  const Scenario& scenario_;
  u32 rounds_;
  std::vector<bool> visible_;
  std::vector<std::vector<u32>> referrers_;
  std::vector<bool> used_;
  u32 unused_correct_ = 0;
};

}  // namespace

bool sync_accepts(const std::vector<SyncMsg>& msgs, const Scenario& scenario, u32 rounds,
                  NodeId observer, u32 origin) {
  ChainSearch search(msgs, scenario, rounds, observer);
  return search.accepted(origin);
}

Outcome run_sync_ba(const SyncParams& params, SyncAdversary& adversary) {
  const Scenario& s = params.scenario;
  s.validate();
  const u32 rounds = params.rounds();
  AMM_EXPECTS(rounds >= 1);

  std::vector<SyncMsg> msgs;
  // L_{r-1}(v) per node: message indices attributed to the previous round.
  std::vector<std::vector<u32>> prev_views(s.n);
  // Byzantine messages whose delayed copies surface in the next round.
  std::vector<u32> delayed;

  for (u32 round = 1; round <= rounds; ++round) {
    const u32 round_begin = static_cast<u32>(msgs.size());

    // Correct appends: own input value, referencing everything read in the
    // previous round (L_{r-1}), visible to everyone immediately.
    for (u32 v = 0; v < s.correct_count(); ++v) {
      SyncMsg m;
      m.author = NodeId{v};
      m.round = round;
      m.value = s.input_of(v);
      m.refs = prev_views[v];
      m.sees_now.assign(s.n, true);
      msgs.push_back(std::move(m));
    }

    // Byzantine appends via the adversary (at most one per node per round).
    SyncContext ctx;
    ctx.scenario = &s;
    ctx.total_rounds = rounds;
    ctx.msgs = &msgs;
    ctx.prev_round_views = &prev_views;
    for (u32 b = s.correct_count(); b < s.n; ++b) {
      auto maybe = adversary.on_round(round, NodeId{b}, ctx);
      if (!maybe) continue;
      SyncAppend& app = *maybe;
      AMM_EXPECTS(app.visible_to.size() == s.n);
      for (const u32 r : app.refs) AMM_EXPECTS(r < msgs.size());
      SyncMsg m;
      m.author = NodeId{b};
      m.round = round;
      m.value = app.value;
      m.refs = std::move(app.refs);
      m.sees_now = std::move(app.visible_to);
      msgs.push_back(std::move(m));
    }

    // Round-r read: every node's L_r = this round's appends it can already
    // see, plus last round's delayed appends it missed.
    std::vector<u32> next_delayed;
    for (auto& view : prev_views) view.clear();
    for (const u32 d : delayed) {
      for (u32 v = 0; v < s.n; ++v) {
        if (!msgs[d].sees_now[v]) prev_views[v].push_back(d);
      }
    }
    for (u32 i = round_begin; i < msgs.size(); ++i) {
      bool any_delayed = false;
      for (u32 v = 0; v < s.n; ++v) {
        if (msgs[i].sees_now[v]) {
          prev_views[v].push_back(i);
        } else {
          any_delayed = true;
        }
      }
      if (any_delayed) next_delayed.push_back(i);
    }
    delayed = std::move(next_delayed);
  }

  if constexpr (check::kAuditEnabled) {
    // Append-memory discipline on the round-structured log (this runner
    // tracks its own message list instead of an AppendMemory): references
    // only ever point backwards, rounds never decrease along the log, and
    // every visibility vector covers all n nodes.
    u32 prev_round = 1;
    for (u32 i = 0; i < msgs.size(); ++i) {
      AMM_ASSERT(msgs[i].round >= prev_round && msgs[i].round <= rounds);
      prev_round = msgs[i].round;
      AMM_ASSERT(msgs[i].sees_now.size() == s.n);
      for (const u32 r : msgs[i].refs) AMM_ASSERT(r < i);
    }
  }

  // Decision (lines 6–7). Each correct node evaluates acceptance over the
  // messages it has read; only final-round delayed appends differ.
  Outcome out;
  out.terminated = true;
  out.rounds = rounds;
  out.total_appends = msgs.size();
  out.decisions.resize(s.correct_count());

  for (u32 v = 0; v < s.correct_count(); ++v) {
    ChainSearch search(msgs, s, rounds, NodeId{v});
    // One vote per author: an equivocating author whose conflicting origins
    // both get accepted contributes nothing (interactive-consistency
    // semantics — a detectably faulty sender is discarded).
    std::vector<bool> plus(s.n, false), minus(s.n, false);
    for (u32 i = 0; i < msgs.size(); ++i) {
      if (!search.is_origin(i) || !search.accepted(i)) continue;
      (msgs[i].value == Vote::kPlus ? plus : minus)[msgs[i].author.index] = true;
    }
    i64 sum = 0;
    for (u32 a = 0; a < s.n; ++a) {
      if (plus[a] && !minus[a]) ++sum;
      if (minus[a] && !plus[a]) --sum;
    }
    out.decisions[v] = sign_decision(sum);
  }
  return out;
}

}  // namespace amm::proto
