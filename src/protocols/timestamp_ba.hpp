// Algorithm 4 (§5.1): Byzantine agreement with absolute timestamps — the
// paper's baseline for what randomized memory access can achieve when a
// central authority totally orders all appends.
//
//   1: M.read()
//   2: while there are less than k writes in the memory do
//   3:   M.read()
//   4:   upon granted access: M.append(val(v))
//   7: end while
//   8: Order all appends by the timestamps
//   9: Decide on the sign of the sum of the first k appends
//
// Agreement and termination are deterministic (timestamps are global);
// validity holds w.h.p. depending on k and the correct/Byzantine gap
// (Theorem 5.2).
#pragma once

#include "protocols/outcome.hpp"
#include "support/rng.hpp"

namespace amm::proto {

struct TimestampParams {
  Scenario scenario;
  u32 k = 0;             ///< decision cut; must be odd so the sign is defined
  double lambda = 1.0;   ///< per-node access rate per Δ
  SimTime delta = 1.0;   ///< Δ
};

/// Runs one execution against a fresh AppendMemory with a Poisson token
/// authority. The Byzantine strategy is the proof's optimal one: every
/// Byzantine token appends the value opposite to the correct input.
Outcome run_timestamp_ba(const TimestampParams& params, Rng rng);

/// Theorem 5.2's predicted failure bound: the normal-approximation tail
/// Pr[sum of k votes < 0] for Byzantine share t/n. Used by exp_e4 to print
/// predicted next to measured.
double timestamp_validity_failure_bound(u32 n, u32 t, u32 k);

}  // namespace amm::proto
