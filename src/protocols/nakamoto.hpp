// Nakamoto confirmation on the append memory — the §5.2 literature
// context (Garay et al. [9], Ren [21], Nakamoto [17]) made executable.
//
// Unlike Byzantine agreement, Nakamoto consensus never finalizes: a
// transaction is accepted once its block is buried `depth` blocks deep in
// the longest chain, and safety is the *probability* that a private
// double-spend branch never overtakes. The classic race: the adversary
// (power share q = t/n of the token stream) mines a withheld fork from
// the parent of the transaction's block; the defender chain grows with
// the correct tokens (p = 1 - q). Nakamoto's analysis gives the
// overtaking probability ~ (q/p)^z once the defender leads by z.
//
// This module runs the race on the same randomized-access substrate as
// Algorithms 4–6, tying the paper's remark that "consistency and liveness
// do not actually require consensus" (§1.2) to measurable numbers.
#pragma once

#include "protocols/outcome.hpp"
#include "support/rng.hpp"

namespace amm::proto {

struct NakamotoParams {
  Scenario scenario;           ///< t of n nodes are the double-spender's
  double lambda = 0.5;         ///< per-node token rate per Δ
  SimTime delta = 1.0;
  u32 confirmation_depth = 6;  ///< merchant accepts when the tx is buried this deep
  /// The attacker concedes once it trails the public chain by this many
  /// blocks after confirmation (caps runtime; Nakamoto's analysis lets
  /// this go to infinity).
  u32 give_up_deficit = 30;
  u64 max_tokens = 10'000'000;
};

struct NakamotoResult {
  bool terminated = false;
  bool reversed = false;        ///< the private branch overtook after acceptance
  u64 blocks_to_confirm = 0;    ///< public blocks mined until acceptance
  SimTime time_to_confirm = 0.0;
  i64 final_lead = 0;           ///< public minus private length at the end
};

/// Runs one double-spend race. The transaction is in the first correct
/// block; the attacker forks from its parent immediately (the strongest
/// standard variant) and publishes only if it ever gets ahead after the
/// merchant accepted.
NakamotoResult run_double_spend_race(const NakamotoParams& params, Rng rng);

/// Nakamoto's closed-form overtaking bound for attacker share q and
/// defender lead z: (q/p)^z for q < p, else 1.
double nakamoto_overtake_bound(double q, u32 z);

/// Closed-form reversal probability matching this module's race exactly:
/// the attacker forks at the tx block, so its head start k accrues while
/// the defender mines the remaining z−1 confirmation blocks — k is
/// negative-binomial, NB(k; z−1, p) (Rosenfeld's exact mixture; Nakamoto's
/// Poisson is its approximation) — and winning means getting *strictly
/// ahead* from a deficit of z−k, a net gain of z−k+1 at odds q/p each:
///   P = Σ_k NB(k; z−1, p) · min(1, (q/p)^{z−k+1}).
double nakamoto_reversal_probability(double q, u32 z);

}  // namespace amm::proto
