#include "protocols/dag_ba.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <optional>
#include <vector>

#include "am/memory.hpp"
#include "chain/block_graph.hpp"
#include "check/audit.hpp"
#include "sched/poisson.hpp"

namespace amm::proto {
namespace {

/// Incremental DAG state: append-order records, parent-edge depths and a
/// lagging stale-tip frontier for the correct nodes' Δ-old views.
class DagState {
 public:
  explicit DagState(u32 node_count) : memory_(node_count) {}

  am::AppendMemory& memory() { return memory_; }

  /// Invariant audit hook (no-op unless AMM_AUDIT): append-only growth and
  /// prefix immutability of the backing memory, monotone observed views.
  void audit() {
    auditor_.check(memory_);
    auditor_.check_view(memory_.read());
  }

  /// Appends a block referencing `refs` (local indices; refs[0] = parent).
  usize append(NodeId author, Vote vote, const std::vector<usize>& refs, SimTime now, bool byz) {
    std::vector<am::MsgId> ref_ids;
    ref_ids.reserve(refs.size());
    for (const usize r : refs) ref_ids.push_back(recs_[r].id);
    const am::MsgId id = memory_.append(author, vote, /*payload=*/0, std::move(ref_ids), now);

    Rec rec;
    rec.id = id;
    rec.time = now;
    rec.byz = byz;
    rec.refs = refs;
    rec.depth = refs.empty() ? 1 : recs_[refs.front()].depth + 1;
    recs_.push_back(std::move(rec));

    const usize idx = recs_.size() - 1;
    // True-view tip bookkeeping (for the rushing adversary).
    for (const usize r : refs) true_tip_flags_[r] = false;
    true_tip_flags_.push_back(true);
    if (recs_[idx].depth >= deepest_depth_) {
      deepest_depth_ = recs_[idx].depth;
      deepest_idx_ = idx;
    }
    return idx;
  }

  usize size() const { return recs_.size(); }
  bool byz(usize i) const { return recs_[i].byz; }
  u32 depth(usize i) const { return recs_[i].depth; }

  /// Deepest block of the true current view (dump target); size() must be > 0.
  usize deepest() const { return deepest_idx_; }

  /// True current tips (the adversary's rushing view).
  std::vector<usize> true_tips() const {
    std::vector<usize> tips;
    for (usize i = 0; i < recs_.size(); ++i) {
      if (true_tip_flags_[i]) tips.push_back(i);
    }
    return tips;
  }

  /// Tips of the view as of `horizon` (correct nodes' stale read). The
  /// frontier only moves forward; callers must pass non-decreasing horizons.
  std::vector<usize> stale_tips(SimTime horizon) {
    while (stale_ptr_ < recs_.size() && recs_[stale_ptr_].time < horizon) {
      for (const usize r : recs_[stale_ptr_].refs) stale_tip_flags_[r] = false;
      stale_tip_flags_.push_back(true);
      ++stale_ptr_;
    }
    std::vector<usize> tips;
    for (usize i = 0; i < stale_ptr_; ++i) {
      if (stale_tip_flags_[i]) tips.push_back(i);
    }
    return tips;
  }

 private:
  struct Rec {
    am::MsgId id;
    SimTime time = 0.0;
    u32 depth = 1;
    bool byz = false;
    std::vector<usize> refs;
  };

  am::AppendMemory memory_;
  check::MemoryAuditor auditor_;
  std::vector<Rec> recs_;
  std::vector<bool> true_tip_flags_;
  std::vector<bool> stale_tip_flags_;
  usize stale_ptr_ = 0;
  u32 deepest_depth_ = 0;
  usize deepest_idx_ = 0;
};

/// Chooses the parent (refs[0]) among tips: the deepest one, ties toward
/// the oldest — the longest-chain attachment every cited DAG rule uses.
void order_parent_first(const DagState& st, std::vector<usize>& tips) {
  AMM_EXPECTS(!tips.empty());
  usize best = 0;
  for (usize i = 1; i < tips.size(); ++i) {
    if (st.depth(tips[i]) > st.depth(tips[best])) best = i;
  }
  std::swap(tips[0], tips[best]);
}

}  // namespace

DagResult run_dag_continuous(const DagParams& params, Rng rng) {
  const Scenario& s = params.scenario;
  s.validate();
  AMM_EXPECTS(params.k > 0 && params.k % 2 == 1);

  DagState st(s.n);
  std::optional<sched::TokenAuthority> equal_rates;
  std::optional<sched::WeightedTokenAuthority> weighted;
  if (params.weights.empty()) {
    equal_rates.emplace(s.n, params.lambda, params.delta, Rng::for_stream(rng.next(), 1));
  } else {
    AMM_EXPECTS(params.weights.size() == s.n);
    weighted.emplace(params.weights, params.lambda * static_cast<double>(s.n), params.delta,
                     Rng::for_stream(rng.next(), 1));
  }
  auto next_token = [&] { return equal_rates ? equal_rates->next() : weighted->next(); };

  const Vote byz_vote = opposite(s.correct_input);

  // Withholding bookkeeping (Lemma 5.5). The adversary banks tokens inside
  // the current quiet interval (no correct appends) and dumps a private
  // chain once the bank can push the ordered value count to k. The banking
  // window W caps how early the rate-and-withhold adversary stops spending
  // tokens on the rate attack.
  const u64 ambition = static_cast<u64>(
      std::ceil(6.0 * params.lambda * std::log(static_cast<double>(s.n) + 1.0))) + 4;
  const u64 window = params.adversary == DagAdversary::kRateAndWithhold
                         ? std::min<u64>(params.k - 1, ambition)
                         : params.k;  // withhold-only banks from the start

  u64 public_count = 0;   // blocks in the public DAG (correct + Byzantine rate)
  u64 byz_public = 0;     // Byzantine blocks among them
  u64 bank = 0;           // withheld tokens in the current quiet interval
  u64 gap_byz_tokens = 0; // all Byzantine tokens in the current gap (omniscient stat)
  u64 omniscient = 0;     // max over gaps of min(gap tokens, k - public_count)
  SimTime last_correct = 0.0;

  DagResult result;

  auto decide_fast = [&](u64 dumped) {
    const u64 byz_in_cut = byz_public + dumped;
    AMM_ASSERT(byz_in_cut <= params.k);
    const i64 sum =
        static_cast<i64>(params.k - byz_in_cut) - static_cast<i64>(byz_in_cut);
    const Vote decision =
        sum >= 0 ? s.correct_input : opposite(s.correct_input);
    Outcome& out = result.outcome;
    out.terminated = true;
    out.decisions.assign(s.correct_count(), decision);
    out.total_appends = st.size();
    out.byz_in_decision_set = byz_in_cut;
    out.decision_set_size = params.k;
  };

  // Carried across rounds under full ordering: views only grow, so the
  // graph is extended with the newly visible appends instead of being
  // rebuilt from scratch at decision time (extend is bit-identical to a
  // from-scratch build of the same view).
  chain::BlockGraph carried;

  auto decide_full = [&] {
    // Exact Algorithm 6 lines 9–10: linearize the whole DAG along the
    // pivot chain and take the first k values of the ordering.
    const am::MemoryView view = st.memory().read();
    carried.extend(view);
    check::check_graph(carried);
    const std::vector<am::MsgId> order = chain::linearize_dag(carried, params.pivot_rule);
    i64 sum = 0;
    u64 byz_in_cut = 0;
    const u32 cut = std::min<u32>(params.k, static_cast<u32>(order.size()));
    for (u32 i = 0; i < cut; ++i) {
      const am::Message& m = view.msg(order[i]);
      sum += vote_value(m.value);
      if (s.is_byzantine(NodeId{m.id.author})) ++byz_in_cut;
    }
    Outcome& out = result.outcome;
    out.terminated = true;
    out.decisions.assign(s.correct_count(), sign_decision(sum));
    out.total_appends = st.size();
    out.byz_in_decision_set = byz_in_cut;
    out.decision_set_size = cut;
  };

  // Temporary asynchrony (the §5.3 closing remark): correct tokens near the
  // decision cut are exercised late; they queue here until release.
  std::deque<std::pair<SimTime, NodeId>> delayed;
  const u64 async_window = params.async_window != 0 ? params.async_window : window;

  u64 steps = 0;
  bool decided = false;

  auto finish = [&](u64 dumped, SimTime at) {
    st.audit();
    result.omniscient_bound = omniscient;
    result.outcome.elapsed = at;
    result.outcome.rounds = steps;
    if (params.full_ordering) {
      decide_full();
    } else {
      decide_fast(dumped);
    }
    decided = true;
  };

  // Applies one correct append at time `when` (closing the quiet interval).
  auto apply_correct = [&](NodeId holder, SimTime when) {
    if (public_count < params.k) {
      omniscient = std::max(omniscient, std::min(gap_byz_tokens, params.k - public_count));
    }
    gap_byz_tokens = 0;
    if (bank > 0 && params.adversary == DagAdversary::kRateAndWithhold) {
      // The dump did not trigger inside this gap. A withheld token is not
      // lost: the adversary simply publishes the banked blocks now (still
      // before this correct append), where the inclusive DAG orders them
      // like ordinary rate-attack blocks. Withholding is therefore never
      // worse than the pure rate attack.
      std::vector<usize> refs = st.true_tips();
      if (!refs.empty()) order_parent_first(st, refs);
      for (u64 d = 0; d < bank && public_count < params.k; ++d) {
        const std::vector<usize> r = d == 0 ? refs : std::vector<usize>{st.size() - 1};
        st.append(NodeId{s.n - 1}, byz_vote, r, when, /*byz=*/true);
        ++public_count;
        ++byz_public;
      }
      if (public_count >= params.k) {
        finish(0, when);
        return;
      }
    }
    bank = 0;  // withhold-only: a correct append outruns the private chain
    last_correct = when;

    std::vector<usize> refs = st.stale_tips(when - params.delta);
    if (!refs.empty()) order_parent_first(st, refs);
    st.append(holder, s.correct_input, refs, when, /*byz=*/false);
    ++public_count;
    if (public_count >= params.k) finish(0, when);
  };

  sched::Token lookahead = next_token();
  while (steps < params.max_tokens && !decided) {
    ++steps;
    // Release any delayed correct append that precedes the next token.
    if (!delayed.empty() && delayed.front().first <= lookahead.time) {
      const auto [when, holder] = delayed.front();
      delayed.pop_front();
      apply_correct(holder, when);
      continue;
    }

    const sched::Token token = lookahead;
    lookahead = next_token();

    if (s.is_byzantine(token.holder)) {
      ++gap_byz_tokens;
      const bool banking = params.adversary != DagAdversary::kHonestOpposite &&
                           public_count + window >= params.k;
      if (banking) {
        ++bank;
        if (public_count + bank >= params.k) {
          // Dump: release a private chain extending the current deepest tip.
          // The first withheld block references all current tips so every
          // public block is ordered before it; the rest chain linearly.
          const u64 need = params.k - public_count;
          std::vector<usize> refs = st.true_tips();
          if (!refs.empty()) order_parent_first(st, refs);
          usize prev = 0;
          for (u64 d = 0; d < need; ++d) {
            const std::vector<usize> r = d == 0 ? refs : std::vector<usize>{prev};
            prev = st.append(token.holder, byz_vote, r, token.time, /*byz=*/true);
          }
          result.dumped = need;
          result.final_gap = token.time - last_correct;
          omniscient = std::max(omniscient, need);
          finish(need, token.time);
        }
      } else if (params.adversary != DagAdversary::kWithholdOnly) {
        // Rate attack: protocol-following append voting the opposite value,
        // on the adversary's true (rushing) view.
        std::vector<usize> refs = st.true_tips();
        if (!refs.empty()) order_parent_first(st, refs);
        st.append(token.holder, byz_vote, refs, token.time, /*byz=*/true);
        ++public_count;
        ++byz_public;
      }
      continue;
    }

    // Correct token: under temporary asynchrony near the cut, the append
    // happens async_delay late; otherwise immediately.
    const bool async_active =
        params.async_delay > 0.0 && public_count + async_window >= params.k;
    if (async_active) {
      delayed.emplace_back(token.time + params.async_delay, token.holder);
    } else {
      apply_correct(token.holder, token.time);
    }
  }
  if (decided) return result;

  result.outcome.terminated = false;
  result.outcome.decisions.assign(s.correct_count(), std::nullopt);
  result.outcome.total_appends = st.size();
  return result;
}

}  // namespace amm::proto
