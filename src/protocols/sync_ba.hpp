// Algorithm 1 (§3.2): deterministic Byzantine agreement with synchronous
// nodes in t+1 rounds.
//
//   for round r = 1..t+1:
//     M.append(val(v), L_{r-1}) with L_0 = ∅
//     wait Δ; M.read(); L_r = set of all appended commands in round r
//   accept val(w) if a chain of t+1 distinct nodes exists:
//     (val(v), ∅) ∈ (w1, L_1), (w1, L_1) ∈ (w2, L_2), ..., (w_{t-1}, L_{t-1}) ∈ (w_t, L_t)
//   decide on the majority of all accepted values
//
// The only Byzantine leverage in the append memory is the visibility delay
// (§3): a Byzantine append in round r can be timed between the staggered
// reads so that only a chosen subset of nodes sees it in round r; everyone
// else first reads it in round r+1. The adversary interface exposes exactly
// that power (value, claimed reference set, visibility subset), nothing
// more — appends can never be hidden forever and never forged.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "protocols/outcome.hpp"
#include "support/rng.hpp"

namespace amm::proto {

/// One append as the synchronous runner tracks it.
struct SyncMsg {
  NodeId author;
  u32 round = 0;              ///< round in which it was appended (1-based)
  Vote value = Vote::kPlus;
  std::vector<u32> refs;      ///< indices into the global message list
  std::vector<bool> sees_now; ///< per node: visible already in the append round
};

/// Read-only state handed to the adversary each round.
struct SyncContext {
  const Scenario* scenario = nullptr;
  u32 total_rounds = 0;
  const std::vector<SyncMsg>* msgs = nullptr;
  /// L_{r-1}(v): per node, the indices it attributes to the previous round.
  const std::vector<std::vector<u32>>* prev_round_views = nullptr;
};

/// A Byzantine append for the current round.
struct SyncAppend {
  Vote value = Vote::kMinus;
  std::vector<u32> refs;       ///< any already-existing messages
  std::vector<bool> visible_to;///< nodes that see it in this round (size n)
};

/// Strategy interface: one optional append per Byzantine node per round
/// (the model allows at most one append per node per round).
class SyncAdversary {
 public:
  virtual ~SyncAdversary() = default;
  virtual std::optional<SyncAppend> on_round(u32 round, NodeId byz, const SyncContext& ctx) = 0;
};

struct SyncParams {
  Scenario scenario;
  /// 0 = the protocol's t+1; smaller values demonstrate the Lemma 3.1 lower
  /// bound by running the same protocol with too few rounds.
  u32 rounds_override = 0;

  u32 rounds() const { return rounds_override != 0 ? rounds_override : scenario.t + 1; }
};

/// Runs Algorithm 1 against the given adversary. Deterministic apart from
/// whatever randomness the adversary itself uses.
Outcome run_sync_ba(const SyncParams& params, SyncAdversary& adversary);

/// Acceptance test used by the decision rule, exposed for tests: does
/// `observer` accept origin message `origin`? Exact search for a reference
/// chain of `rounds` messages with pairwise-distinct authors, layered by
/// the observer's per-round attribution.
bool sync_accepts(const std::vector<SyncMsg>& msgs, const Scenario& scenario, u32 rounds,
                  NodeId observer, u32 origin);

}  // namespace amm::proto
