// Concrete Byzantine strategies for Algorithm 1's synchronous runner.
//
// The adversary's entire power in the append memory is (a) choosing the
// value and reference set of its one append per round and (b) timing the
// append between the staggered reads so only a chosen subset sees it in
// the current round (§3). These strategies cover the attacks the paper's
// proofs reason about.
#pragma once

#include <vector>

#include "protocols/sync_ba.hpp"
#include "support/rng.hpp"

namespace amm::adv {

using proto::SyncAdversary;
using proto::SyncAppend;
using proto::SyncContext;

/// Byzantine nodes never append — indistinguishable from initially-crashed
/// nodes. Baseline: Algorithm 1 must decide on the correct inputs alone.
class SilentSync final : public SyncAdversary {
 public:
  std::optional<SyncAppend> on_round(u32, NodeId, const SyncContext&) override {
    return std::nullopt;
  }
};

/// Follows the protocol faithfully (own L_{r-1} references, full
/// visibility) but votes `value`. The strongest *protocol-compliant*
/// behaviour: its value is always accepted, so validity holds iff the
/// correct nodes outnumber the Byzantine ones.
class OppositeVoterSync final : public SyncAdversary {
 public:
  explicit OppositeVoterSync(Vote value) : value_(value) {}

  std::optional<SyncAppend> on_round(u32, NodeId byz, const SyncContext& ctx) override;

 private:
  Vote value_;
};

/// Crash-failure adversary: behaves correctly (appends its `value` with
/// honest references and full visibility) until its crash round, then stops
/// forever. Models §3's observation that crash failures cost only one
/// round in the append memory.
class CrashSync final : public SyncAdversary {
 public:
  /// `crash_round`: first round in which the node no longer appends
  /// (1 = crashed from the start).
  CrashSync(Vote value, u32 crash_round) : value_(value), crash_round_(crash_round) {}

  std::optional<SyncAppend> on_round(u32 round, NodeId byz, const SyncContext& ctx) override;

 private:
  Vote value_;
  u32 crash_round_;
};

/// Equivocation with randomized split visibility: every round, appends
/// `value` referencing everything, visible only to a random half of the
/// correct nodes. Stress-tests agreement under visibility games.
class SplitVisionSync final : public SyncAdversary {
 public:
  SplitVisionSync(Vote value, Rng rng) : value_(value), rng_(rng) {}

  std::optional<SyncAppend> on_round(u32 round, NodeId byz, const SyncContext& ctx) override;

 private:
  Vote value_;
  Rng rng_;
};

/// The t+1 lower-bound attack (Lemma 3.1): a cross-round Byzantine
/// staircase b_1:(value, ∅)@round1 ← b_2@round2 ← … ← b_R@roundR, every
/// step delayed past all correct nodes (they read each link one round
/// late, too late to relay a competing completion inside the run), except
/// the final step, which is timed inside the final read window of the
/// correct nodes in S only. With R ≤ t rounds the chain has R distinct
/// Byzantine authors: S accepts the value, everyone else never reads the
/// last link — agreement breaks whenever the extra value flips a near-tied
/// majority. With R = t+1 the staircase runs out of Byzantine authors and
/// any correct relay is visible to everyone: the attack provably fails,
/// which is exactly Theorem 3.2's guarantee.
class LastRoundSplitSync final : public SyncAdversary {
 public:
  /// `split`: number of leading correct nodes that form S.
  LastRoundSplitSync(Vote value, u32 split) : value_(value), split_(split) {}

  std::optional<SyncAppend> on_round(u32 round, NodeId byz, const SyncContext& ctx) override;

 private:
  Vote value_;
  u32 split_;
};

}  // namespace amm::adv
