#include "adversary/sync_strategies.hpp"

namespace amm::adv {
namespace {

/// All-true visibility vector (append readable by everyone this round).
std::vector<bool> full_visibility(u32 n) { return std::vector<bool>(n, true); }

/// Honest reference set: everything the node read in the previous round.
std::vector<u32> honest_refs(NodeId byz, const SyncContext& ctx) {
  return ctx.prev_round_views->at(byz.index);
}

}  // namespace

std::optional<SyncAppend> OppositeVoterSync::on_round(u32, NodeId byz, const SyncContext& ctx) {
  SyncAppend app;
  app.value = value_;
  app.refs = honest_refs(byz, ctx);
  app.visible_to = full_visibility(ctx.scenario->n);
  return app;
}

std::optional<SyncAppend> CrashSync::on_round(u32 round, NodeId byz, const SyncContext& ctx) {
  if (round >= crash_round_) return std::nullopt;
  SyncAppend app;
  app.value = value_;
  app.refs = honest_refs(byz, ctx);
  app.visible_to = full_visibility(ctx.scenario->n);
  return app;
}

std::optional<SyncAppend> SplitVisionSync::on_round(u32, NodeId byz, const SyncContext& ctx) {
  const u32 n = ctx.scenario->n;
  SyncAppend app;
  app.value = value_;
  app.refs = honest_refs(byz, ctx);
  app.visible_to.assign(n, false);
  // Byzantine confederates coordinate: they always see each other.
  for (u32 v = ctx.scenario->correct_count(); v < n; ++v) app.visible_to[v] = true;
  for (u32 v = 0; v < ctx.scenario->correct_count(); ++v) {
    app.visible_to[v] = rng_.bernoulli(0.5);
  }
  return app;
}

std::optional<SyncAppend> LastRoundSplitSync::on_round(u32 round, NodeId byz,
                                                       const SyncContext& ctx) {
  const proto::Scenario& s = *ctx.scenario;
  const u32 rank = byz.index - s.correct_count();
  const u32 rounds = ctx.total_rounds;

  // Cross-round staircase: b_{i} appends in round i (i = 1..rounds),
  // referencing b_{i-1}'s append, delayed past every correct node — they
  // read each step one round late, too late to relay it into a competing
  // chain within the run. Only the FINAL step is timed inside the final
  // round's read window of the nodes in S: those read the complete chain
  // before deciding, everyone else never sees the last link.
  if (rank + 1 != round || round > rounds) return std::nullopt;

  SyncAppend app;
  app.value = value_;
  if (rank > 0) {
    // b_{rank-1}'s message was the last Byzantine append of the previous
    // round; find it (the most recent Byzantine-authored message).
    const auto& msgs = *ctx.msgs;
    for (u32 i = static_cast<u32>(msgs.size()); i-- > 0;) {
      if (s.is_byzantine(msgs[i].author)) {
        app.refs.push_back(i);
        break;
      }
    }
  }
  app.visible_to.assign(s.n, false);
  for (u32 v = s.correct_count(); v < s.n; ++v) app.visible_to[v] = true;
  if (round == rounds) {
    // Final step: timely only for S.
    for (u32 v = 0; v < std::min(split_, s.correct_count()); ++v) app.visible_to[v] = true;
  }
  return app;
}

}  // namespace amm::adv
