// The paper's Randomized Memory Access (§1.1): each node's append
// opportunities form an independent Poisson process of rate λ per interval
// Δ, so the merged process has rate λn. The TokenAuthority plays the role
// of the "authority who controls the access" and hands out append tokens.
#pragma once

#include <vector>

#include "support/assert.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace amm::sched {

/// One append token: node `holder` may perform a single append at `time`.
struct Token {
  SimTime time = 0.0;
  NodeId holder;
};

/// Samples the merged token stream. Implemented via the standard
/// superposition property: merged inter-arrival ~ Exp(λ_total), holder
/// chosen proportionally to per-node rate — statistically identical to n
/// independent Pois(λ) processes, and O(1) per token.
class TokenAuthority {
 public:
  /// `rate_per_delta` is the paper's λ; `delta` is the interval Δ the rate
  /// is expressed in (tokens per node per Δ).
  TokenAuthority(u32 node_count, double rate_per_delta, SimTime delta, Rng rng)
      : node_count_(node_count),
        merged_rate_(rate_per_delta * static_cast<double>(node_count) / delta),
        rng_(rng) {
    AMM_EXPECTS(node_count > 0);
    AMM_EXPECTS(rate_per_delta > 0.0);
    AMM_EXPECTS(delta > 0.0);
  }

  /// Next token strictly after the previous one (first call: after t=0).
  Token next() {
    clock_ += rng_.exponential(merged_rate_);
    const auto holder = static_cast<u32>(rng_.uniform_below(node_count_));
    return Token{clock_, NodeId{holder}};
  }

  double merged_rate() const { return merged_rate_; }

 private:
  u32 node_count_;
  double merged_rate_;  // events per unit time across all nodes
  SimTime clock_ = 0.0;
  Rng rng_;
};

/// Weighted token authority for the *permissionless* setting (§5: "all the
/// presented results can be trivially extended to the permissionless
/// setting"). Nodes hold hash-power weights instead of identical rates;
/// node i receives tokens as a Poisson process of rate proportional to
/// w_i. With unit weights this degenerates to TokenAuthority.
class WeightedTokenAuthority {
 public:
  /// `weights[i]` >= 0; total must be positive. `total_rate_per_delta` is
  /// the merged token rate per interval Δ across all nodes.
  WeightedTokenAuthority(std::vector<double> weights, double total_rate_per_delta, SimTime delta,
                         Rng rng)
      : cumulative_(std::move(weights)),
        merged_rate_(total_rate_per_delta / delta),
        rng_(rng) {
    AMM_EXPECTS(!cumulative_.empty());
    AMM_EXPECTS(total_rate_per_delta > 0.0);
    AMM_EXPECTS(delta > 0.0);
    double total = 0.0;
    for (auto& w : cumulative_) {
      AMM_EXPECTS(w >= 0.0);
      total += w;
      w = total;
    }
    AMM_EXPECTS(total > 0.0);
  }

  Token next() {
    clock_ += rng_.exponential(merged_rate_);
    // Inverse-CDF pick proportional to weight.
    const double x = rng_.uniform() * cumulative_.back();
    u32 lo = 0, hi = static_cast<u32>(cumulative_.size()) - 1;
    while (lo < hi) {
      const u32 mid = lo + (hi - lo) / 2;
      if (cumulative_[mid] <= x) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return Token{clock_, NodeId{lo}};
  }

  double merged_rate() const { return merged_rate_; }

 private:
  std::vector<double> cumulative_;  // prefix sums of weights
  double merged_rate_;
  SimTime clock_ = 0.0;
  Rng rng_;
};

/// Slotted access counts: the number of tokens each node receives inside
/// one interval Δ (i.i.d. Pois(λ) per node). This matches the paper's
/// average-case analysis of Theorem 5.4 directly.
class SlottedAccess {
 public:
  SlottedAccess(u32 node_count, double rate_per_delta, Rng rng)
      : node_count_(node_count), rate_(rate_per_delta), rng_(rng) {
    AMM_EXPECTS(node_count > 0);
    AMM_EXPECTS(rate_per_delta > 0.0);
  }

  /// Token counts for the next slot, one entry per node.
  std::vector<u32> next_slot() {
    std::vector<u32> counts(node_count_);
    for (auto& c : counts) c = static_cast<u32>(rng_.poisson(rate_));
    return counts;
  }

 private:
  u32 node_count_;
  double rate_;
  Rng rng_;
};

}  // namespace amm::sched
