// Discrete-event simulation core: a time-ordered queue of callbacks with a
// deterministic tie order (FIFO among equal timestamps).
#pragma once

#include <functional>
#include <queue>
#include <vector>

#include "support/assert.hpp"
#include "support/types.hpp"

namespace amm::sched {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  SimTime now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  usize pending() const { return heap_.size(); }
  u64 executed() const { return executed_; }

  /// Schedules `fn` at absolute time `when` (must not be in the past).
  void schedule_at(SimTime when, Handler fn) {
    AMM_EXPECTS(when >= now_);
    heap_.push(Event{when, next_seq_++, std::move(fn)});
  }

  /// Schedules `fn` after a delay relative to now.
  void schedule_in(SimTime delay, Handler fn) {
    AMM_EXPECTS(delay >= 0.0);
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue drains or `max_events` have executed.
  /// Returns the number executed in this call.
  u64 run(u64 max_events = ~u64{0}) {
    u64 count = 0;
    while (!heap_.empty() && count < max_events) {
      step();
      ++count;
    }
    return count;
  }

  /// Runs all events with time <= horizon; afterwards now() == horizon
  /// (even if no event landed exactly there).
  u64 run_until(SimTime horizon) {
    u64 count = 0;
    while (!heap_.empty() && heap_.top().when <= horizon) {
      step();
      ++count;
    }
    now_ = std::max(now_, horizon);
    return count;
  }

 private:
  struct Event {
    SimTime when;
    u64 seq;  // FIFO tiebreak for identical times: determinism matters
    Handler fn;

    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  void step() {
    // std::priority_queue::top() is const; move out via const_cast is UB —
    // copy the handler instead (handlers are cheap closures here).
    Event ev = heap_.top();
    heap_.pop();
    AMM_ASSERT(ev.when >= now_);
    now_ = ev.when;
    ++executed_;
    ev.fn();
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  SimTime now_ = 0.0;
  u64 next_seq_ = 0;
  u64 executed_ = 0;
};

}  // namespace amm::sched
