// A single append-only register R_i (§1.1): unbounded, readable by every
// node, writable only by its owner. Supports read() of the complete state
// and append(msg); nothing is ever overwritten or removed.
#pragma once

#include <span>
#include <vector>

#include "am/message.hpp"
#include "support/assert.hpp"

namespace amm::am {

class Register {
 public:
  explicit Register(u32 owner) : owner_(owner) {}

  [[nodiscard]] u32 owner() const { return owner_; }
  [[nodiscard]] u32 size() const { return static_cast<u32>(log_.size()); }

  /// Appends and returns the id assigned to the new message. The append
  /// time must be non-decreasing: the memory is the single authority for
  /// ordering within one register. `global_seq` is the memory-wide arrival
  /// index (tooling-only; see Message::global_seq).
  MsgId append(Vote value, u64 payload, std::vector<MsgId> refs, SimTime now,
               u64 global_seq = 0) {
    AMM_EXPECTS(log_.empty() || now >= log_.back().appended_at);
    const MsgId id{owner_, size()};
    log_.push_back(Message{id, value, payload, std::move(refs), now, global_seq});
    return id;
  }

  /// Complete view of the register (the R_i.read() operation).
  [[nodiscard]] std::span<const Message> read() const { return log_; }

  [[nodiscard]] const Message& at(u32 seq) const {
    AMM_EXPECTS(seq < log_.size());
    return log_[seq];
  }

  /// Number of messages appended strictly before `time`.
  [[nodiscard]] u32 size_at(SimTime time) const {
    // Registers are short-lived per trial and appends are time-ordered, so
    // binary search over append times suffices.
    u32 lo = 0, hi = size();
    while (lo < hi) {
      const u32 mid = lo + (hi - lo) / 2;
      if (log_[mid].appended_at < time) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  u32 owner_;
  std::vector<Message> log_;
};

}  // namespace amm::am
