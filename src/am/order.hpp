// Append-time ordering of visible messages, exploiting per-register
// monotonicity (§2, §5.3): each register is already time-ordered, so the
// canonical (appended_at, id) order of a view is a k-way merge over the
// register sequences — no global sort, and views that only ever grow can
// consume the order incrementally through a cursor instead of re-sorting
// the whole history every round.
#pragma once

#include <limits>
#include <queue>
#include <vector>

#include "am/message.hpp"
#include "am/view.hpp"
#include "support/assert.hpp"

namespace amm::am {

class AppendMemory;  // fwd

/// The canonical append order among the messages in registers' half-open
/// ranges [from[r], to[r]): sorted by (appended_at, id). This is the total
/// order `MemoryView::by_append_time()` exposes; exposed separately so
/// incremental consumers (BlockGraph::extend) can merge only a delta.
/// `from` may be empty (treated as all zeros); requires from[r] <= to[r].
[[nodiscard]] std::vector<MsgId> merge_append_order(const AppendMemory& memory,
                                                    const std::vector<u32>& from,
                                                    const std::vector<u32>& to);

/// Incremental cursor over the canonical append order of a *growing* view.
///
/// Because registers are append-only, the set of visible messages only ever
/// grows; the cursor merges the per-register sequences lazily and emits the
/// order batch by batch. A batch is always internally ordered. The
/// concatenation of all batches equals the full `by_append_time()` order of
/// the final view provided each `drain(view, watermark)` call passes a
/// watermark no later than the append time of every message *not yet
/// visible* in `view` — then a message emitted now can never be preceded by
/// one that becomes visible later. For observers that read the full memory,
/// `AppendMemory::last_append_time()` is exactly such a watermark (append
/// times are globally non-decreasing), which is what the protocols use for
/// round-by-round consumption; a stale observer at horizon h uses h.
class AppendOrderCursor {
 public:
  explicit AppendOrderCursor(const AppendMemory& memory);

  /// Extends the frontier to `view` (must grow register-wise) and appends
  /// every not-yet-emitted visible message with appended_at < `watermark`
  /// to `out`, in (appended_at, id) order. Returns the number emitted.
  usize drain(const MemoryView& view, SimTime watermark, std::vector<MsgId>& out);

  /// Drains everything visible in `view` regardless of time: the terminal
  /// call once the memory stops growing.
  usize finish(const MemoryView& view, std::vector<MsgId>& out) {
    return drain(view, std::numeric_limits<SimTime>::infinity(), out);
  }

  /// Messages emitted so far over all drains.
  [[nodiscard]] usize emitted() const { return emitted_; }

 private:
  struct Head {
    SimTime time;
    MsgId id;
    /// Min-heap on the canonical (appended_at, id) key.
    bool operator>(const Head& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  const AppendMemory* memory_;
  std::vector<u32> next_;   ///< per-register: first sequence not yet emitted/queued
  std::vector<u32> limit_;  ///< per-register: visible frontier of the last drain
  std::priority_queue<Head, std::vector<Head>, std::greater<>> heads_;
  usize emitted_ = 0;
};

}  // namespace amm::am
