// Append-trace recording and replay.
//
// A trace is the full history of one append-memory execution — every
// append with author, value, payload, references and authoritative time.
// Since the memory is append-only, the trace IS the memory: replaying it
// reconstructs byte-identical state. Used for golden tests, debugging
// adversary strategies, and shipping reproducible counterexamples.
//
// Text format, one line per append:
//   append <author> <value:+1|-1> <payload> <time> <ref_author>:<ref_seq>...
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "am/memory.hpp"

namespace amm::am {

/// One recorded append.
struct TraceEntry {
  u32 author = 0;
  Vote value = Vote::kPlus;
  u64 payload = 0;
  SimTime time = 0.0;
  std::vector<MsgId> refs;

  bool operator==(const TraceEntry&) const = default;
};

struct Trace {
  u32 node_count = 0;
  std::vector<TraceEntry> entries;

  bool operator==(const Trace&) const = default;
};

/// Extracts the trace of everything currently in `memory`.
Trace capture(const AppendMemory& memory);

/// Replays a trace into a fresh memory. Aborts (precondition) on traces
/// violating the model rules — dangling refs, non-monotone time.
AppendMemory replay(const Trace& trace);

/// Serialization. The writer emits the documented text format; the reader
/// returns false on malformed input instead of aborting (traces may come
/// from outside the process).
void write_trace(std::ostream& os, const Trace& trace);
bool read_trace(std::istream& is, Trace* out);

std::string to_string(const Trace& trace);
bool from_string(const std::string& text, Trace* out);

}  // namespace amm::am
