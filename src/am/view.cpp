#include "am/view.hpp"

#include <algorithm>

#include "am/memory.hpp"
#include "am/order.hpp"

namespace amm::am {

std::vector<MsgId> MemoryView::by_append_time() const {
  if (empty()) return {};
  return merge_append_order(memory(), /*from=*/{}, lens_);
}

MemoryView MemoryView::join(const MemoryView& other) const {
  AMM_EXPECTS(memory_ == other.memory_);
  std::vector<u32> lens(lens_.size());
  for (usize i = 0; i < lens_.size(); ++i) lens[i] = std::max(lens_[i], other.lens_[i]);
  return MemoryView(memory_, std::move(lens));
}

MemoryView MemoryView::meet(const MemoryView& other) const {
  AMM_EXPECTS(memory_ == other.memory_);
  std::vector<u32> lens(lens_.size());
  for (usize i = 0; i < lens_.size(); ++i) lens[i] = std::min(lens_[i], other.lens_[i]);
  return MemoryView(memory_, std::move(lens));
}

}  // namespace amm::am
