#include "am/view.hpp"

#include <algorithm>

#include "am/memory.hpp"

namespace amm::am {

std::vector<MsgId> MemoryView::by_append_time() const {
  std::vector<MsgId> ids;
  ids.reserve(size());
  for (u32 r = 0; r < register_count(); ++r) {
    for (u32 s = 0; s < lens_[r]; ++s) ids.push_back(MsgId{r, s});
  }
  const AppendMemory& mem = memory();
  std::stable_sort(ids.begin(), ids.end(), [&mem](MsgId a, MsgId b) {
    const SimTime ta = mem.msg(a).appended_at;
    const SimTime tb = mem.msg(b).appended_at;
    if (ta != tb) return ta < tb;
    return a < b;  // deterministic tie order on identical timestamps
  });
  return ids;
}

MemoryView MemoryView::join(const MemoryView& other) const {
  AMM_EXPECTS(memory_ == other.memory_);
  std::vector<u32> lens(lens_.size());
  for (usize i = 0; i < lens_.size(); ++i) lens[i] = std::max(lens_[i], other.lens_[i]);
  return MemoryView(memory_, std::move(lens));
}

MemoryView MemoryView::meet(const MemoryView& other) const {
  AMM_EXPECTS(memory_ == other.memory_);
  std::vector<u32> lens(lens_.size());
  for (usize i = 0; i < lens_.size(); ++i) lens[i] = std::min(lens_[i], other.lens_[i]);
  return MemoryView(memory_, std::move(lens));
}

}  // namespace amm::am
