#include "am/trace.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

namespace amm::am {

Trace capture(const AppendMemory& memory) {
  Trace trace;
  trace.node_count = memory.node_count();
  const MemoryView view = memory.read();
  // The physical append order: exact same-instant appends are ordered by
  // the memory's arrival index, so replay never sees a forward reference.
  std::vector<MsgId> ids;
  ids.reserve(view.size());
  view.for_each([&](const Message& m) { ids.push_back(m.id); });
  std::sort(ids.begin(), ids.end(), [&](MsgId a, MsgId b) {
    return view.msg(a).global_seq < view.msg(b).global_seq;
  });
  for (const MsgId id : ids) {
    const Message& m = view.msg(id);
    TraceEntry e;
    e.author = id.author;
    e.value = m.value;
    e.payload = m.payload;
    e.time = m.appended_at;
    e.refs = m.refs;
    trace.entries.push_back(std::move(e));
  }
  return trace;
}

AppendMemory replay(const Trace& trace) {
  AMM_EXPECTS(trace.node_count > 0);
  AppendMemory memory(trace.node_count);
  for (const TraceEntry& e : trace.entries) {
    memory.append(NodeId{e.author}, e.value, e.payload, e.refs, e.time);
  }
  return memory;
}

void write_trace(std::ostream& os, const Trace& trace) {
  os << "amm-trace 1 " << trace.node_count << "\n";
  os.precision(17);
  for (const TraceEntry& e : trace.entries) {
    os << "append " << e.author << ' ' << (e.value == Vote::kPlus ? "+1" : "-1") << ' '
       << e.payload << ' ' << e.time;
    for (const MsgId ref : e.refs) os << ' ' << ref.author << ':' << ref.seq;
    os << '\n';
  }
}

bool read_trace(std::istream& is, Trace* out) {
  AMM_EXPECTS(out != nullptr);
  Trace trace;
  std::string tag;
  int version = 0;
  if (!(is >> tag >> version >> trace.node_count)) return false;
  if (tag != "amm-trace" || version != 1 || trace.node_count == 0) return false;

  std::string line;
  std::getline(is, line);  // finish the header line
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string op, value;
    TraceEntry e;
    if (!(ls >> op >> e.author >> value >> e.payload >> e.time)) return false;
    if (op != "append") return false;
    if (value == "+1") {
      e.value = Vote::kPlus;
    } else if (value == "-1") {
      e.value = Vote::kMinus;
    } else {
      return false;
    }
    if (e.author >= trace.node_count) return false;
    std::string ref;
    while (ls >> ref) {
      const auto colon = ref.find(':');
      if (colon == std::string::npos) return false;
      try {
        const unsigned long author = std::stoul(ref.substr(0, colon));
        const unsigned long seq = std::stoul(ref.substr(colon + 1));
        e.refs.push_back(MsgId{static_cast<u32>(author), static_cast<u32>(seq)});
      } catch (...) {
        return false;
      }
    }
    trace.entries.push_back(std::move(e));
  }
  *out = std::move(trace);
  return true;
}

std::string to_string(const Trace& trace) {
  std::ostringstream oss;
  write_trace(oss, trace);
  return oss.str();
}

bool from_string(const std::string& text, Trace* out) {
  std::istringstream iss(text);
  return read_trace(iss, out);
}

}  // namespace amm::am
