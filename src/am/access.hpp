// Token-enforced access control for the append memory (§1.1's randomized
// memory access as a *checked* capability, not a convention).
//
// In the protocol runners, "only token holders append" is enforced by
// construction. GuardedMemory makes the authority's control explicit: an
// append requires presenting an unspent AppendToken issued by the
// TokenVault, which the vault mints from the stochastic token stream. A
// protocol (or adversary) implementation that tries to append without
// access, reuse a token, or spend another node's token trips a contract
// violation — turning §1.1's model rule into an executable invariant.
//
// Withholding (Lemma 5.5) is legal by design: a token may be spent any
// time at or after its issue time, matching the delayed-use power the
// paper grants Byzantine nodes.
#pragma once

#include <unordered_set>

#include "am/memory.hpp"
#include "sched/poisson.hpp"

namespace amm::am {

/// A single-use append capability. Value type; spending is tracked by the
/// vault that issued it.
struct AppendToken {
  u64 serial = 0;
  NodeId holder;
  SimTime issued_at = 0.0;
};

/// Issues tokens from a stochastic token stream and validates spends.
class TokenVault {
 public:
  /// Mints the capability for the next token of `authority`.
  template <typename Authority>
  AppendToken mint(Authority& authority) {
    const sched::Token t = authority.next();
    const AppendToken token{next_serial_++, t.holder, t.time};
    unspent_.insert(token.serial);
    return token;
  }

  bool is_spendable(const AppendToken& token) const {
    return unspent_.contains(token.serial);
  }

  /// Marks the token spent; aborts on double spends or forged serials.
  void spend(const AppendToken& token) {
    const auto it = unspent_.find(token.serial);
    AMM_EXPECTS(it != unspent_.end());
    unspent_.erase(it);
  }

  usize outstanding() const { return unspent_.size(); }

 private:
  u64 next_serial_ = 0;
  std::unordered_set<u64> unspent_;
};

/// AppendMemory whose append operation demands a valid token from the
/// right holder, spent no earlier than its issue time. Reads are free, as
/// in the model ("all nodes can read the memory at any time").
class GuardedMemory {
 public:
  GuardedMemory(u32 node_count, TokenVault& vault) : memory_(node_count), vault_(&vault) {}

  const AppendMemory& memory() const { return memory_; }

  MemoryView read() const { return memory_.read(); }
  MemoryView read_at(SimTime time) const { return memory_.read_at(time); }

  /// Token-gated append. `now` >= the token's issue time (delayed use is
  /// the Byzantine withholding power; time travel is not).
  MsgId append(const AppendToken& token, Vote value, u64 payload, std::vector<MsgId> refs,
               SimTime now) {
    AMM_EXPECTS(vault_->is_spendable(token));
    AMM_EXPECTS(now >= token.issued_at);
    vault_->spend(token);
    return memory_.append(token.holder, value, payload, std::move(refs), now);
  }

 private:
  AppendMemory memory_;
  TokenVault* vault_;
};

}  // namespace amm::am
