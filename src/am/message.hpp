// Messages of the append memory model (§1.1).
//
// A message carries a value from its author plus references to a previous
// state of the memory, exactly as the paper defines: "a message msg from
// v_i contains some value from this node and a reference to a previous
// state of the memory that is defined by the underlying protocol."
#pragma once

#include <compare>
#include <functional>
#include <vector>

#include "support/types.hpp"

namespace amm::am {

/// Identifies a message as (author register, position within register).
/// Registers are append-only, so an id is stable forever once assigned.
struct MsgId {
  u32 author = 0;  ///< index of the register R_author
  u32 seq = 0;     ///< zero-based position within that register

  constexpr auto operator<=>(const MsgId&) const = default;
};

/// A single appended command.
struct Message {
  MsgId id;
  Vote value = Vote::kPlus;   ///< the ±1 input value (§5 protocols)
  u64 payload = 0;            ///< protocol-defined payload (e.g. round number)
  std::vector<MsgId> refs;    ///< references to earlier appends ("previous state")
  SimTime appended_at = 0.0;  ///< authoritative memory-side append time
  /// Memory-wide arrival index. NOT protocol-visible information (the
  /// model's whole point is that the memory cannot order concurrent
  /// appends for the protocol) — used only by tooling that must preserve
  /// the physical order, e.g. trace capture/replay.
  u64 global_seq = 0;
};

}  // namespace amm::am

template <>
struct std::hash<amm::am::MsgId> {
  std::size_t operator()(const amm::am::MsgId& id) const noexcept {
    return (static_cast<std::size_t>(id.author) << 32) ^ id.seq;
  }
};
