// Sticky bits (Plotkin [20]; Malkhi et al. [16]) — the §1.2 contrast class.
//
// A sticky bit is a register that can be set exactly once: concurrent
// writers race, one wins, and the winner is visible to everyone forever.
// Unlike the append memory — which "cannot break ties" between concurrent
// appends — a sticky bit resolves exactly one tie per object, which is why
// consensus is solvable with sticky bits (for any number of processes, one
// sticky object per decision) while the E1 checker shows it is not with
// append registers. The paper's §1.3 makes precisely this comparison:
// "the append memory is not as strong as the concept of sticky bits since
// it does not make use of registers that implicitly solve consensus for
// two parallel writes."
#pragma once

#include <optional>

#include "support/assert.hpp"
#include "support/types.hpp"

namespace amm::am {

/// A write-once bit. set() is an atomic compare-and-set against "unset";
/// within a simulation trial, memory operations are already serialized by
/// the (simulated-time) event order, so plain state suffices.
class StickyBit {
 public:
  bool is_set() const { return value_.has_value(); }

  /// Returns the sticky value, which must exist.
  u8 get() const {
    AMM_EXPECTS(value_.has_value());
    return *value_;
  }

  std::optional<u8> read() const { return value_; }

  /// Attempts to stick `v`; returns the value that is now stuck (the
  /// winner's — not necessarily `v`).
  u8 set(u8 v) {
    AMM_EXPECTS(v <= 1);
    if (!value_) value_ = v;
    return *value_;
  }

 private:
  std::optional<u8> value_;
};

/// Wait-free consensus for any number of crash-prone processes using one
/// sticky bit: propose by setting, decide whatever stuck. The existence of
/// this five-line protocol — against the impossibility the E1 checker
/// demonstrates for append registers — is the hierarchy gap the paper
/// points at.
class StickyConsensus {
 public:
  /// Propose `input` (0/1); returns the decision. Idempotent, wait-free,
  /// correct for any interleaving and any number of crashed peers.
  u8 propose(u8 input) { return bit_.set(input); }

  bool decided() const { return bit_.is_set(); }
  u8 decision() const { return bit_.get(); }

 private:
  StickyBit bit_;
};

}  // namespace amm::am
