// The append memory M (§1.1): n unbounded append-only registers, one per
// node, with whole-memory reads. This is the paper's primary abstraction;
// every protocol in the library runs against this class.
//
// Concurrency note: one AppendMemory belongs to one simulation trial and is
// driven by a single (simulated-time) thread; cross-trial parallelism gives
// each trial its own instance (Core Guidelines CP.3 — no shared mutable
// state between tasks).
#pragma once

#include <vector>

#include "am/register.hpp"
#include "am/view.hpp"
#include "support/assert.hpp"

namespace amm::am {

class AppendMemory {
 public:
  explicit AppendMemory(u32 node_count) {
    AMM_EXPECTS(node_count > 0);
    registers_.reserve(node_count);
    for (u32 i = 0; i < node_count; ++i) registers_.emplace_back(i);
  }

  u32 node_count() const { return static_cast<u32>(registers_.size()); }

  /// M.append(msg): appends to `author`'s register at simulated time `now`.
  ///
  /// Per the model, refs point at a *previous state* of the memory: each
  /// referenced message must already exist. A node may reference an
  /// obsolete state (asynchrony), but never a message that has not been
  /// appended — dangling references are a protocol bug, not a memory
  /// behaviour, so they are rejected here.
  MsgId append(NodeId author, Vote value, u64 payload, std::vector<MsgId> refs, SimTime now) {
    AMM_EXPECTS(author.index < registers_.size());
    AMM_EXPECTS(now >= last_append_time_);
    for (const MsgId ref : refs) {
      AMM_EXPECTS(exists(ref));
    }
    last_append_time_ = now;
    return registers_[author.index].append(value, payload, std::move(refs), now,
                                           total_appends_++);
  }

  /// M.read(): the complete current view (all registers, full length).
  MemoryView read() const {
    std::vector<u32> lens;
    lens.reserve(registers_.size());
    for (const auto& r : registers_) lens.push_back(r.size());
    return MemoryView(this, std::move(lens));
  }

  /// The view an observer had at time `time`: everything appended strictly
  /// before `time`. Used to model read/append staleness without copying.
  MemoryView read_at(SimTime time) const {
    std::vector<u32> lens;
    lens.reserve(registers_.size());
    for (const auto& r : registers_) lens.push_back(r.size_at(time));
    return MemoryView(this, std::move(lens));
  }

  bool exists(MsgId id) const {
    return id.author < registers_.size() && id.seq < registers_[id.author].size();
  }

  const Message& msg(MsgId id) const {
    AMM_EXPECTS(exists(id));
    return registers_[id.author].at(id.seq);
  }

  const Register& reg(u32 i) const {
    AMM_EXPECTS(i < registers_.size());
    return registers_[i];
  }

  u64 total_appends() const { return total_appends_; }
  SimTime last_append_time() const { return last_append_time_; }

 private:
  std::vector<Register> registers_;
  u64 total_appends_ = 0;
  SimTime last_append_time_ = 0.0;
};

// ---- MemoryView inline members that need the full AppendMemory type ----

inline const Message& MemoryView::msg(MsgId id) const {
  AMM_EXPECTS(contains(id));
  return memory().msg(id);
}

template <typename Fn>
void MemoryView::for_each(Fn&& fn) const {
  for (u32 r = 0; r < register_count(); ++r) {
    for (u32 s = 0; s < lens_[r]; ++s) {
      fn(memory().msg(MsgId{r, s}));
    }
  }
}

}  // namespace amm::am
