#include "am/order.hpp"

#include "am/memory.hpp"

namespace amm::am {
namespace {

struct HeapEntry {
  SimTime time;
  MsgId id;
  bool operator>(const HeapEntry& other) const {
    if (time != other.time) return time > other.time;
    return id > other.id;
  }
};

}  // namespace

std::vector<MsgId> merge_append_order(const AppendMemory& memory, const std::vector<u32>& from,
                                      const std::vector<u32>& to) {
  const u32 regs = static_cast<u32>(to.size());
  AMM_EXPECTS(from.empty() || from.size() == to.size());
  AMM_EXPECTS(regs <= memory.node_count());

  usize total = 0;
  for (u32 r = 0; r < regs; ++r) {
    const u32 lo = from.empty() ? 0 : from[r];
    AMM_EXPECTS(lo <= to[r]);
    total += to[r] - lo;
  }
  std::vector<MsgId> out;
  out.reserve(total);
  if (total == 0) return out;

  // Each register range is already (appended_at, id)-sorted (append times
  // are non-decreasing within a register, ids strictly increasing), so a
  // heap of register heads yields the global order in O(total · log k).
  std::vector<u32> cursor(regs);
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heads;
  for (u32 r = 0; r < regs; ++r) {
    cursor[r] = from.empty() ? 0 : from[r];
    if (cursor[r] < to[r]) {
      const MsgId id{r, cursor[r]};
      heads.push(HeapEntry{memory.msg(id).appended_at, id});
    }
  }
  while (!heads.empty()) {
    const HeapEntry top = heads.top();
    heads.pop();
    out.push_back(top.id);
    const u32 r = top.id.author;
    if (++cursor[r] < to[r]) {
      const MsgId id{r, cursor[r]};
      heads.push(HeapEntry{memory.msg(id).appended_at, id});
    }
  }
  AMM_ENSURES(out.size() == total);
  return out;
}

AppendOrderCursor::AppendOrderCursor(const AppendMemory& memory)
    : memory_(&memory),
      next_(memory.node_count(), 0),
      limit_(memory.node_count(), 0) {}

usize AppendOrderCursor::drain(const MemoryView& view, SimTime watermark,
                               std::vector<MsgId>& out) {
  AMM_EXPECTS(&view.memory() == memory_);
  AMM_EXPECTS(view.register_count() == next_.size());

  // Admit newly visible register heads. A register contributes (at most)
  // one heap entry at a time — its smallest unemitted message.
  for (u32 r = 0; r < view.register_count(); ++r) {
    const u32 new_limit = view.register_len(r);
    AMM_EXPECTS(new_limit >= limit_[r]);  // views of a cursor only grow
    const bool was_exhausted = next_[r] >= limit_[r];
    limit_[r] = new_limit;
    if (was_exhausted && next_[r] < limit_[r]) {
      const MsgId id{r, next_[r]};
      heads_.push(Head{memory_->msg(id).appended_at, id});
    }
  }

  usize count = 0;
  while (!heads_.empty() && heads_.top().time < watermark) {
    const Head top = heads_.top();
    heads_.pop();
    out.push_back(top.id);
    ++count;
    const u32 r = top.id.author;
    if (++next_[r] < limit_[r]) {
      const MsgId id{r, next_[r]};
      heads_.push(Head{memory_->msg(id).appended_at, id});
    }
  }
  emitted_ += count;
  return count;
}

}  // namespace amm::am
