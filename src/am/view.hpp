// Immutable snapshots of the append memory.
//
// A view is a per-register prefix length vector. Because registers are
// append-only, the set of all views forms a lattice under the componentwise
// (prefix) partial order — the key structural property behind the paper's
// configuration arguments in §2.
#pragma once

#include <vector>

#include "am/message.hpp"
#include "support/assert.hpp"

namespace amm::am {

class AppendMemory;  // fwd

class MemoryView {
 public:
  MemoryView() = default;
  MemoryView(const AppendMemory* memory, std::vector<u32> lens)
      : memory_(memory), lens_(std::move(lens)) {}

  [[nodiscard]] bool valid() const { return memory_ != nullptr; }
  [[nodiscard]] const AppendMemory& memory() const {
    AMM_EXPECTS(memory_ != nullptr);
    return *memory_;
  }

  [[nodiscard]] u32 register_count() const { return static_cast<u32>(lens_.size()); }
  [[nodiscard]] u32 register_len(u32 reg) const {
    AMM_EXPECTS(reg < lens_.size());
    return lens_[reg];
  }

  /// Total number of messages visible in this view.
  [[nodiscard]] usize size() const {
    usize total = 0;
    for (const u32 len : lens_) total += len;
    return total;
  }

  [[nodiscard]] bool empty() const {
    // Short-circuit on the first nonzero register instead of summing all
    // lengths — emptiness checks sit on protocol hot paths.
    for (const u32 len : lens_) {
      if (len != 0) return false;
    }
    return true;
  }

  [[nodiscard]] bool contains(MsgId id) const {
    return id.author < lens_.size() && id.seq < lens_[id.author];
  }

  /// Message lookup; the id must be contained in the view.
  [[nodiscard]] const Message& msg(MsgId id) const;

  /// Calls fn(msg) for every visible message, register by register.
  template <typename Fn>
  void for_each(Fn&& fn) const;

  /// All visible messages sorted by authoritative append time (stable by id
  /// for identical times). Used by the timestamp baseline (§5.1).
  ///
  /// Computed as a k-way merge over the per-register sequences (each is
  /// already time-ordered), O(n log k) instead of a full O(n log n) sort;
  /// see am/order.hpp for the incremental cursor variant.
  [[nodiscard]] std::vector<MsgId> by_append_time() const;

  /// Prefix partial order: *this ⊑ other iff every register prefix of this
  /// view is contained in other's.
  [[nodiscard]] bool subset_of(const MemoryView& other) const {
    AMM_EXPECTS(lens_.size() == other.lens_.size());
    for (usize i = 0; i < lens_.size(); ++i) {
      if (lens_[i] > other.lens_[i]) return false;
    }
    return true;
  }

  bool operator==(const MemoryView& other) const {
    return memory_ == other.memory_ && lens_ == other.lens_;
  }

  /// Lattice join (componentwise max) — the least view containing both.
  [[nodiscard]] MemoryView join(const MemoryView& other) const;
  /// Lattice meet (componentwise min) — the greatest view inside both.
  [[nodiscard]] MemoryView meet(const MemoryView& other) const;

  [[nodiscard]] const std::vector<u32>& lens() const { return lens_; }

 private:
  const AppendMemory* memory_ = nullptr;
  std::vector<u32> lens_;
};

}  // namespace amm::am
