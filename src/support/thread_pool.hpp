// A small task-based thread pool (Core Guidelines CP.4: think in terms of
// tasks, not threads). Used by the Monte-Carlo experiment runner to spread
// independent trials across cores; each task receives only values, never
// shared mutable state (CP.31).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/types.hpp"

namespace amm {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);

  /// Joins all workers after draining the queue (CP.23: joining thread as a
  /// scoped container — the destructor blocks until all tasks finish).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task. Tasks must not throw: they run on worker threads
  /// where no caller can catch, so the pool enforces the contract — an
  /// escaping exception aborts the process with a message naming the
  /// exception type instead of leaving UB/std::terminate to the runtime.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  usize in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for i in [0, count) across the pool and blocks until done.
/// fn must be safe to call concurrently for distinct i, and must not throw
/// (ThreadPool contract: an escaping exception aborts with a message —
/// there is no cross-thread exception propagation here; report per-trial
/// failures through fn's captured state instead).
void parallel_for(ThreadPool& pool, usize count, const std::function<void(usize)>& fn);

}  // namespace amm
