// Deterministic, splittable pseudo-random number generation.
//
// Every simulation trial owns its own generator seeded from a master seed
// and a trial index, so Monte-Carlo sweeps are reproducible regardless of
// how trials are scheduled across threads (Core Guidelines CP.3: minimize
// shared writable data — each task gets a private stream).
#pragma once

#include <array>
#include <cmath>

#include "support/assert.hpp"
#include "support/types.hpp"

namespace amm {

/// SplitMix64: used to expand seeds and derive independent streams.
/// Reference: Steele, Lea, Flood — "Fast Splittable Pseudorandom Number
/// Generators", OOPSLA 2014.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(u64 seed) : state_(seed) {}

  [[nodiscard]] constexpr u64 next() {
    u64 z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  u64 state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, 256-bit state.
class Rng {
 public:
  using result_type = u64;

  explicit Rng(u64 seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  /// Derives an independent stream for (master seed, stream index) pairs —
  /// the canonical way to seed per-trial generators.
  static Rng for_stream(u64 master_seed, u64 stream) {
    SplitMix64 sm(master_seed ^ (0x5851f42d4c957f2dULL * (stream + 1)));
    return Rng(sm.next());
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~u64{0}; }

  [[nodiscard]] u64 operator()() { return next(); }

  [[nodiscard]] u64 next() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1). Uses the top 53 bits.
  [[nodiscard]] double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, bound). Lemire's nearly-divisionless method.
  [[nodiscard]] u64 uniform_below(u64 bound) {
    AMM_EXPECTS(bound > 0);
    __extension__ using u128 = unsigned __int128;
    // Rejection sampling on the high multiply keeps the result exactly uniform.
    const u64 threshold = (~bound + 1) % bound;  // 2^64 mod bound
    for (;;) {
      const u64 x = next();
      const u128 m = static_cast<u128>(x) * bound;
      if (static_cast<u64>(m) >= threshold) return static_cast<u64>(m >> 64);
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] i64 uniform_int(i64 lo, i64 hi) {
    AMM_EXPECTS(lo <= hi);
    return lo + static_cast<i64>(uniform_below(static_cast<u64>(hi - lo) + 1));
  }

  [[nodiscard]] bool bernoulli(double p) { return uniform() < p; }

  /// Exponential with rate `lambda` (mean 1/lambda): inter-arrival times of
  /// the paper's Poisson memory-access process.
  [[nodiscard]] double exponential(double lambda) {
    AMM_EXPECTS(lambda > 0.0);
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);  // guard log(0)
    return -std::log(u) / lambda;
  }

  /// Poisson-distributed count with mean `mu`. Knuth's method for small mu,
  /// normal approximation with continuity correction for large mu (the
  /// experiments only need counts, not exact tail behaviour, above mu≈64).
  [[nodiscard]] u64 poisson(double mu);

  /// Standard normal via Marsaglia polar method.
  [[nodiscard]] double normal();

  /// Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    const usize n = c.size();
    for (usize i = n; i > 1; --i) {
      const usize j = static_cast<usize>(uniform_below(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  static constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<u64, 4> state_{};
};

}  // namespace amm
