// Fundamental type aliases and strong identifier types shared by every
// subsystem of the append-memory library.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace amm {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using usize = std::size_t;

/// Simulated time in abstract seconds. The paper's Δ (maximum interval
/// between two local operations of a synchronous node) is expressed in the
/// same unit.
using SimTime = double;

inline constexpr SimTime kTimeInfinity = std::numeric_limits<SimTime>::infinity();

/// Index of a node (the paper's v_1..v_n, zero-based here).
///
/// A strong type rather than a bare integer so that node indices, register
/// indices and sequence numbers cannot be interchanged accidentally.
struct NodeId {
  u32 index = 0;

  constexpr NodeId() = default;
  constexpr explicit NodeId(u32 i) : index(i) {}

  constexpr auto operator<=>(const NodeId&) const = default;
};

/// A ±1 vote as used by the randomized-access protocols (§5): the paper
/// assumes input values in {-1, +1} and decides on the sign of a sum.
enum class Vote : i8 {
  kMinus = -1,
  kPlus = +1,
};

constexpr int vote_value(Vote v) { return static_cast<int>(v); }

constexpr Vote opposite(Vote v) { return v == Vote::kPlus ? Vote::kMinus : Vote::kPlus; }

/// Sign decision: the sign of a vote sum; ties broken toward kPlus by
/// convention (the protocols always use odd k so ties cannot occur).
constexpr Vote sign_decision(i64 sum) { return sum >= 0 ? Vote::kPlus : Vote::kMinus; }

}  // namespace amm

template <>
struct std::hash<amm::NodeId> {
  std::size_t operator()(const amm::NodeId& id) const noexcept {
    return std::hash<amm::u32>{}(id.index);
  }
};
