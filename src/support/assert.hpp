// Contract-checking macros in the spirit of the C++ Core Guidelines
// Expects/Ensures (I.6/I.8). Violations abort with a source location; they
// are programming errors, not recoverable conditions.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace amm::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr, const char* file,
                                          int line) {
  std::fprintf(stderr, "amm: %s violated: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace amm::detail

#define AMM_EXPECTS(cond)                                                       \
  do {                                                                          \
    if (!(cond)) ::amm::detail::contract_failure("precondition", #cond, __FILE__, __LINE__); \
  } while (false)

#define AMM_ENSURES(cond)                                                        \
  do {                                                                           \
    if (!(cond)) ::amm::detail::contract_failure("postcondition", #cond, __FILE__, __LINE__); \
  } while (false)

#define AMM_ASSERT(cond)                                                    \
  do {                                                                      \
    if (!(cond)) ::amm::detail::contract_failure("invariant", #cond, __FILE__, __LINE__); \
  } while (false)
