#include "support/thread_pool.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <typeinfo>

#include "support/assert.hpp"

namespace amm {

ThreadPool::ThreadPool(unsigned threads) {
  unsigned n = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  AMM_EXPECTS(task != nullptr);
  {
    std::scoped_lock lock(mutex_);
    AMM_EXPECTS(!stopping_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    // Contract enforcement: tasks must not throw (see submit()). An
    // exception escaping onto a worker thread would be UB-adjacent chaos —
    // std::terminate at best, a deadlocked wait_idle at worst — so convert
    // it into a deterministic, attributable abort.
    try {
      task();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "amm: ThreadPool task violated its no-throw contract: %s (%s)\n",
                   e.what(), typeid(e).name());
      std::abort();
    } catch (...) {
      std::fprintf(stderr,
                   "amm: ThreadPool task violated its no-throw contract (non-std exception)\n");
      std::abort();
    }
    {
      std::scoped_lock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, usize count, const std::function<void(usize)>& fn) {
  if (count == 0) return;
  // Dynamic scheduling: one task per worker, each pulling the next index
  // from a shared counter. Iteration costs in the simulators are skewed
  // enough (adversarial trials run far longer than honest ones) that static
  // contiguous chunks serialize on the unlucky chunk; an uncontended
  // fetch_add per index is noise next to a single trial.
  std::atomic<usize> next{0};
  const usize workers = std::min<usize>(count, pool.size());
  for (usize w = 0; w < workers; ++w) {
    pool.submit([&next, count, &fn] {
      for (usize i = next.fetch_add(1, std::memory_order_relaxed); i < count;
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        fn(i);
      }
    });
  }
  pool.wait_idle();
  AMM_ENSURES(next.load() >= count);
}

}  // namespace amm
