#include "support/cli.hpp"

#include <cstdlib>
#include <string_view>

namespace amm {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) continue;
    std::string name(arg.substr(2));
    // "--name=value" form.
    if (const auto eq = name.find('='); eq != std::string::npos) {
      values_[name.substr(0, eq)] = name.substr(eq + 1);
      continue;
    }
    // "--name value" form when the next token is not itself a flag.
    if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      values_[name] = argv[i + 1];
      ++i;
    } else {
      values_[name] = "";  // bare flag
    }
  }
}

std::optional<std::string> CliArgs::lookup(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

bool CliArgs::has_flag(const std::string& name) const { return values_.contains(name); }

i64 CliArgs::get_int(const std::string& name, i64 fallback) const {
  const auto v = lookup(name);
  return v && !v->empty() ? std::strtoll(v->c_str(), nullptr, 10) : fallback;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto v = lookup(name);
  return v && !v->empty() ? std::strtod(v->c_str(), nullptr) : fallback;
}

std::string CliArgs::get_string(const std::string& name, const std::string& fallback) const {
  const auto v = lookup(name);
  return v && !v->empty() ? *v : fallback;
}

}  // namespace amm
