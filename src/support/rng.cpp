#include "support/rng.hpp"

#include <cmath>

namespace amm {

u64 Rng::poisson(double mu) {
  AMM_EXPECTS(mu >= 0.0);
  if (mu == 0.0) return 0;
  if (mu < 64.0) {
    // Knuth: multiply uniforms until the product drops below e^-mu.
    const double limit = std::exp(-mu);
    u64 k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation N(mu, mu) with continuity correction.
  const double x = mu + std::sqrt(mu) * normal() + 0.5;
  return x < 0.0 ? 0 : static_cast<u64>(x);
}

double Rng::normal() {
  // Marsaglia polar method; discards the second variate for simplicity.
  for (;;) {
    const double u = 2.0 * uniform() - 1.0;
    const double v = 2.0 * uniform() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

}  // namespace amm
