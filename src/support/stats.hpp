// Streaming statistics, confidence intervals and the distribution tails the
// paper's proofs rely on (normal, binomial, Poisson).
#pragma once

#include <cmath>
#include <utility>
#include <vector>

#include "support/assert.hpp"
#include "support/types.hpp"

namespace amm {

/// Welford's online mean/variance accumulator. Numerically stable; O(1)
/// memory so millions of Monte-Carlo trials can stream through it.
class RunningStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  void merge(const RunningStats& other);

  u64 count() const { return count_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }

  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  /// Standard error of the mean.
  double sem() const {
    return count_ > 0 ? stddev() / std::sqrt(static_cast<double>(count_)) : 0.0;
  }

  /// Half-width of a ~95% confidence interval for the mean (1.96 sigma).
  double ci95_half_width() const { return 1.959964 * sem(); }

 private:
  u64 count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Success/failure counter with a Wilson score interval — the right tool
/// for estimating "probability that validity holds" from Bernoulli trials.
class BernoulliEstimate {
 public:
  void add(bool success) {
    ++trials_;
    if (success) ++successes_;
  }

  void merge(const BernoulliEstimate& other) {
    trials_ += other.trials_;
    successes_ += other.successes_;
  }

  u64 trials() const { return trials_; }
  u64 successes() const { return successes_; }

  double rate() const {
    return trials_ > 0 ? static_cast<double>(successes_) / static_cast<double>(trials_) : 0.0;
  }

  /// Wilson 95% score interval (lo, hi).
  std::pair<double, double> wilson95() const;

 private:
  u64 trials_ = 0;
  u64 successes_ = 0;
};

/// Standard normal CDF Φ(x).
double normal_cdf(double x);

/// Upper tail of the standard normal, Q(x) = 1 - Φ(x).
double normal_upper_tail(double x);

/// log of the binomial coefficient C(n, k), via lgamma.
double log_binomial(u64 n, u64 k);

/// Exact binomial tail Pr[X <= k] for X ~ Bin(n, p); switches to a normal
/// approximation for n > 10^4 where exact summation is pointless.
double binomial_cdf(u64 k, u64 n, double p);

/// Poisson upper tail Pr[X >= k] for X ~ Pois(mu).
double poisson_upper_tail(u64 k, double mu);

/// Ordinary least squares fit y ≈ a + b·x; returns {a, b, r²}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};
LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace amm
