// ASCII table rendering for experiment output. Every exp_* binary prints
// its results through this so tables are uniform and diffable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace amm {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  usize rows() const { return rows_.size(); }

  /// Renders with aligned columns, a header separator and outer rails.
  void print(std::ostream& os) const;

  std::string to_string() const;

  /// Renders as CSV (for machine consumption; pass --csv to the benches).
  void print_csv(std::ostream& os) const;

  /// Renders as a JSON object {"headers": [...], "rows": [[...]]}. Cells
  /// stay strings — numeric parsing is the consumer's job (collect_bench.py).
  void print_json(std::ostream& os) const;

  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& data() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes a string for inclusion inside a JSON string literal.
std::string json_escape(const std::string& s);

/// Formats a double with `prec` significant decimal digits after the point.
std::string fmt(double value, int prec = 4);

/// Formats "rate [lo, hi]" for a Bernoulli estimate.
std::string fmt_ci(double rate, double lo, double hi);

}  // namespace amm
