#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"

namespace amm {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  AMM_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  AMM_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<usize> widths(headers_.size());
  for (usize c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (usize c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto print_rule = [&] {
    os << '+';
    for (const usize w : widths) {
      for (usize i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (usize c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c];
      for (usize i = cells[c].size(); i < widths[c] + 1; ++i) os << ' ';
      os << '|';
    }
    os << '\n';
  };

  print_rule();
  print_cells(headers_);
  print_rule();
  for (const auto& row : rows_) print_cells(row);
  print_rule();
}

std::string Table::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (usize c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

void Table::print_json(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << '[';
    for (usize c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << '"' << json_escape(cells[c]) << '"';
    }
    os << ']';
  };
  os << "{\"headers\":";
  print_row(headers_);
  os << ",\"rows\":[";
  for (usize r = 0; r < rows_.size(); ++r) {
    if (r > 0) os << ',';
    print_row(rows_[r]);
  }
  os << "]}";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(ch));
          out += buf;
        } else {
          out += ch;  // UTF-8 multi-byte sequences pass through untouched
        }
    }
  }
  return out;
}

std::string fmt(double value, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, value);
  return buf;
}

std::string fmt_ci(double rate, double lo, double hi) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.3f [%.3f, %.3f]", rate, lo, hi);
  return buf;
}

}  // namespace amm
