#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

namespace amm {

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel-merge formula.
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::pair<double, double> BernoulliEstimate::wilson95() const {
  if (trials_ == 0) return {0.0, 1.0};
  constexpr double z = 1.959964;
  const double n = static_cast<double>(trials_);
  const double p = rate();
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half = (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normal_upper_tail(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

double log_binomial(u64 n, u64 k) {
  AMM_EXPECTS(k <= n);
  return std::lgamma(static_cast<double>(n) + 1.0) - std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double binomial_cdf(u64 k, u64 n, double p) {
  AMM_EXPECTS(p >= 0.0 && p <= 1.0);
  if (k >= n) return 1.0;
  if (p == 0.0) return 1.0;
  if (p == 1.0) return 0.0;
  if (n > 10'000) {
    // Normal approximation with continuity correction.
    const double mu = static_cast<double>(n) * p;
    const double sigma = std::sqrt(mu * (1.0 - p));
    return normal_cdf((static_cast<double>(k) + 0.5 - mu) / sigma);
  }
  const double logp = std::log(p);
  const double logq = std::log1p(-p);
  double sum = 0.0;
  for (u64 i = 0; i <= k; ++i) {
    sum += std::exp(log_binomial(n, i) + static_cast<double>(i) * logp +
                    static_cast<double>(n - i) * logq);
  }
  return std::min(1.0, sum);
}

double poisson_upper_tail(u64 k, double mu) {
  AMM_EXPECTS(mu >= 0.0);
  if (k == 0) return 1.0;
  if (mu == 0.0) return 0.0;
  // Pr[X >= k] = 1 - sum_{i<k} e^-mu mu^i / i!, summed in log space.
  double cdf = 0.0;
  double log_term = -mu;  // i = 0
  for (u64 i = 0; i < k; ++i) {
    if (i > 0) log_term += std::log(mu) - std::log(static_cast<double>(i));
    cdf += std::exp(log_term);
  }
  return std::max(0.0, 1.0 - cdf);
}

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
  AMM_EXPECTS(x.size() == y.size());
  AMM_EXPECTS(x.size() >= 2);
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (usize i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (usize i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  LinearFit fit;
  fit.slope = sxx > 0.0 ? sxy / sxx : 0.0;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (sxx > 0.0 && syy > 0.0) ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

}  // namespace amm
