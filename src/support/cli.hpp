// Minimal command-line parsing shared by example and experiment binaries:
// "--name value" and "--flag" pairs, with typed getters and defaults.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "support/types.hpp"

namespace amm {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has_flag(const std::string& name) const;
  i64 get_int(const std::string& name, i64 fallback) const;
  double get_double(const std::string& name, double fallback) const;
  std::string get_string(const std::string& name, const std::string& fallback) const;

 private:
  std::optional<std::string> lookup(const std::string& name) const;

  std::unordered_map<std::string, std::string> values_;
};

}  // namespace amm
