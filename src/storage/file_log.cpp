#include "storage/file_log.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "storage/log_format.hpp"

namespace amm::storage {
namespace {

bool write_all(int fd, std::span<const u8> bytes) {
  usize off = 0;
  while (off < bytes.size()) {
    // analyze:allow(loop-blocking): regular-file write — always makes progress
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<usize>(n);
  }
  return true;
}

bool sync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

/// Scans one segment image, invoking `on_record(rec)` per valid frame.
/// Returns the byte offset where the valid prefix ends (== image size when
/// the whole segment is clean).
template <typename Fn>
usize scan_segment_image(std::span<const u8> image, Fn&& on_record) {
  usize off = 0;
  mp::SignedAppend rec;
  usize consumed = 0;
  while (off < image.size() &&
         extract_record_frame(image.subspan(off), &rec, &consumed) == ScanStatus::kRecord) {
    on_record(rec);
    off += consumed;
  }
  return off;
}

}  // namespace

std::optional<std::vector<u8>> read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return std::nullopt;
  std::vector<u8> out;
  u8 buf[1 << 16];
  for (;;) {
    // analyze:allow(loop-blocking): regular-file read — always makes progress
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return std::nullopt;
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  ::close(fd);
  return out;
}

bool make_dirs(const std::string& dir) {
  std::string path;
  path.reserve(dir.size());
  for (usize i = 0; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') {
      path.push_back(dir[i]);
      continue;
    }
    if (!path.empty() && ::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) return false;
    if (i < dir.size()) path.push_back('/');
  }
  struct stat st {};
  return ::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

std::optional<u64> parse_store_seq(const std::string& name, const std::string& prefix,
                                   const std::string& suffix) {
  if (name.size() != prefix.size() + 16 + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) return std::nullopt;
  u64 seq = 0;
  for (usize i = prefix.size(); i < prefix.size() + 16; ++i) {
    const char c = name[i];
    u64 digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<u64>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<u64>(c - 'a') + 10;
    } else {
      return std::nullopt;
    }
    seq = (seq << 4) | digit;
  }
  return seq;
}

std::vector<std::string> list_store_files(const std::string& dir, const std::string& prefix,
                                          const std::string& suffix) {
  std::vector<std::pair<u64, std::string>> found;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return {};
  while (const dirent* ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    if (const auto seq = parse_store_seq(name, prefix, suffix)) found.emplace_back(*seq, name);
  }
  ::closedir(d);
  std::sort(found.begin(), found.end());
  std::vector<std::string> names;
  names.reserve(found.size());
  for (auto& [seq, name] : found) names.push_back(std::move(name));
  return names;
}

std::string segment_file_name(u64 first_seq) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "seg-%016llx.log", static_cast<unsigned long long>(first_seq));
  return buf;
}

std::string snapshot_file_name(u64 log_seq) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "snap-%016llx.snap", static_cast<unsigned long long>(log_seq));
  return buf;
}

FileLog::FileLog(FileLogConfig config) : config_(std::move(config)) {
  if (!open_store()) ok_ = false;
}

FileLog::~FileLog() {
  if (fd_ >= 0) {
    ::fdatasync(fd_);
    ::close(fd_);
  }
}

bool FileLog::fail(const std::string& what) {
  ok_ = false;
  if (error_.empty()) error_ = what + ": " + std::strerror(errno);
  return false;
}

bool FileLog::open_store() {
  if (config_.dir.empty()) {
    error_ = "empty store dir";
    return false;
  }
  if (!make_dirs(config_.dir)) return fail("mkdir " + config_.dir);

  // Newest CRC-valid snapshot wins; stale and leftover-tmp files go away.
  // A newer-but-invalid snapshot file is kept on disk for amm_logtool to
  // diagnose — load just skips it.
  const auto snaps = list_store_files(config_.dir, "snap-", ".snap");
  for (auto it = snaps.rbegin(); it != snaps.rend(); ++it) {
    const std::string path = config_.dir + "/" + *it;
    if (!snapshot_) {
      if (const auto image = read_file(path)) {
        if (auto snap = decode_snapshot(*image)) {
          snapshot_ = std::move(*snap);
          snapshot_file_ = path;
          stats_.snapshot_count = 1;
          continue;
        }
      }
    } else {
      ::unlink(path.c_str());
    }
  }
  const auto tmps = list_store_files(config_.dir, "snap-", ".snap.tmp");
  for (const auto& name : tmps) ::unlink((config_.dir + "/" + name).c_str());

  const auto seg_names = list_store_files(config_.dir, "seg-", ".log");
  next_log_seq_ = snapshot_ ? snapshot_->log_seq : 0;
  for (usize i = 0; i < seg_names.size(); ++i) {
    Segment seg;
    seg.first_seq = *parse_store_seq(seg_names[i], "seg-", ".log");
    seg.path = config_.dir + "/" + seg_names[i];
    if (!segments_.empty()) {
      const Segment& prev = segments_.back();
      if (seg.first_seq != prev.first_seq + prev.records) {
        error_ = "segment gap before " + seg.path;
        ok_ = false;
        return false;
      }
    }
    const auto image = read_file(seg.path);
    if (!image) return fail("read " + seg.path);
    const usize valid = scan_segment_image(*image, [&](const mp::SignedAppend& rec) {
      ++seg.records;
      auto& entry = author_index_[rec.author.index];
      ++entry.records;
      entry.max_seq = std::max(entry.max_seq, rec.seq);
    });
    seg.bytes = valid;
    if (valid != image->size()) {
      if (i + 1 != seg_names.size()) {
        // A torn frame with a written successor segment is not a crash
        // tail — refuse the store rather than silently drop records.
        error_ = "corrupt frame mid-log in " + seg.path;
        ok_ = false;
        return false;
      }
      stats_.torn_tail_bytes += image->size() - valid;
      if (::truncate(seg.path.c_str(), static_cast<off_t>(valid)) != 0) {
        return fail("truncate " + seg.path);
      }
    }
    stats_.log_bytes += seg.bytes;
    stats_.log_records += seg.records;
    segments_.push_back(std::move(seg));
  }
  if (!segments_.empty()) {
    const Segment& last = segments_.back();
    next_log_seq_ = last.first_seq + last.records;
  }
  stats_.segments = segments_.size();
  return open_active(segments_.empty());
}

bool FileLog::open_active(bool create) {
  if (create) {
    Segment seg;
    seg.first_seq = next_log_seq_;
    seg.path = config_.dir + "/" + segment_file_name(next_log_seq_);
    fd_ = ::open(seg.path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0) return fail("create " + seg.path);
    segments_.push_back(std::move(seg));
    stats_.segments = segments_.size();
    return true;
  }
  const Segment& last = segments_.back();
  fd_ = ::open(last.path.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) return fail("open " + last.path);
  return true;
}

bool FileLog::roll_segment() {
  // Closed segments must be durable before the log grows past them:
  // replay order would otherwise depend on which file the OS flushed.
  if (::fdatasync(fd_) != 0) return fail("fdatasync " + segments_.back().path);
  ++stats_.fsyncs;
  ::close(fd_);
  fd_ = -1;
  appends_since_sync_ = 0;
  return open_active(true);
}

bool FileLog::maybe_fsync() {
  switch (config_.fsync) {
    case mp::FsyncPolicy::kNever:
      return true;
    case mp::FsyncPolicy::kInterval:
      if (config_.fsync_interval != 0 && ++appends_since_sync_ < config_.fsync_interval) {
        return true;
      }
      appends_since_sync_ = 0;
      break;
    case mp::FsyncPolicy::kAlways:
      break;
  }
  if (::fdatasync(fd_) != 0) return fail("fdatasync " + segments_.back().path);
  ++stats_.fsyncs;
  return true;
}

bool FileLog::append(const mp::SignedAppend& rec) {
  if (!ok_) return false;
  if (segments_.back().bytes >= config_.segment_bytes && !roll_segment()) return false;
  std::vector<u8> frame;
  frame.reserve(kLogRecordFrameBytes);
  append_record_frame(frame, rec);
  if (!write_all(fd_, frame)) return fail("write " + segments_.back().path);
  Segment& seg = segments_.back();
  seg.bytes += frame.size();
  ++seg.records;
  ++next_log_seq_;
  stats_.log_bytes += frame.size();
  ++stats_.log_records;
  auto& entry = author_index_[rec.author.index];
  ++entry.records;
  entry.max_seq = std::max(entry.max_seq, rec.seq);
  return maybe_fsync();
}

bool FileLog::write_snapshot(const mp::Snapshot& snap) {
  if (!ok_) return false;
  const std::vector<u8> image = encode_snapshot(snap);
  const std::string final_path = config_.dir + "/" + snapshot_file_name(snap.log_seq);
  const std::string tmp_path = final_path + ".tmp";
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return fail("create " + tmp_path);
  const bool wrote = write_all(fd, image) && ::fsync(fd) == 0;
  ::close(fd);
  if (!wrote) {
    ::unlink(tmp_path.c_str());
    return fail("write " + tmp_path);
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    return fail("rename " + final_path);
  }
  if (!sync_dir(config_.dir)) return fail("fsync " + config_.dir);
  ++stats_.fsyncs;
  if (!snapshot_file_.empty() && snapshot_file_ != final_path) {
    ::unlink(snapshot_file_.c_str());
  }
  snapshot_ = snap;
  snapshot_file_ = final_path;
  ++stats_.snapshot_count;

  // Closed segments entirely below the snapshot are dead weight: replay
  // starts at snap.log_seq. Re-scan each before deleting so the author
  // index keeps counting only retained records.
  while (segments_.size() > 1 &&
         segments_.front().first_seq + segments_.front().records <= snap.log_seq) {
    Segment& seg = segments_.front();
    if (const auto old = read_file(seg.path)) {
      scan_segment_image(*old, [&](const mp::SignedAppend& rec) {
        const auto it = author_index_.find(rec.author.index);
        if (it != author_index_.end() && it->second.records > 0) --it->second.records;
      });
    }
    ::unlink(seg.path.c_str());
    stats_.log_bytes -= seg.bytes;
    stats_.log_records -= seg.records;
    segments_.erase(segments_.begin());
  }
  stats_.segments = segments_.size();
  return true;
}

u64 FileLog::replay(u64 from_seq, const std::function<void(const mp::SignedAppend&)>& cb) {
  if (!ok_) return 0;
  u64 delivered = 0;
  for (const Segment& seg : segments_) {
    if (seg.first_seq + seg.records <= from_seq) continue;
    const auto image = read_file(seg.path);
    if (!image) {
      fail("read " + seg.path);
      return delivered;
    }
    u64 pos = seg.first_seq;
    scan_segment_image(*image, [&](const mp::SignedAppend& rec) {
      // Frames past seg.records (appended after the scan copy was taken)
      // cannot occur here: replay runs before wire activity. Positions
      // below from_seq are already covered by the caller's snapshot.
      if (pos >= from_seq && pos < seg.first_seq + seg.records) {
        cb(rec);
        ++delivered;
      }
      ++pos;
    });
  }
  return delivered;
}

}  // namespace amm::storage
