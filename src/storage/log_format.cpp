#include "storage/log_format.hpp"

#include <array>

namespace amm::storage {

u32 crc32(std::span<const u8> bytes) {
  static constexpr std::array<u32, 256> kTable = [] {
    std::array<u32, 256> table{};
    for (u32 i = 0; i < 256; ++i) {
      u32 c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      table[i] = c;
    }
    return table;
  }();
  u32 crc = 0xffffffffu;
  for (const u8 b : bytes) crc = kTable[(crc ^ b) & 0xffu] ^ (crc >> 8);
  return crc ^ 0xffffffffu;
}

void append_record_frame(std::vector<u8>& out, const mp::SignedAppend& rec) {
  net::Encoder enc;
  enc.reserve(kLogRecordFrameBytes);
  enc.put_u32(static_cast<u32>(mp::kWireRecordBytes));
  net::Encoder payload;
  payload.reserve(mp::kWireRecordBytes);
  net::encode_record(payload, rec);
  enc.put_u32(crc32(payload.bytes()));
  const std::vector<u8> frame = enc.take();
  out.insert(out.end(), frame.begin(), frame.end());
  out.insert(out.end(), payload.bytes().begin(), payload.bytes().end());
}

ScanStatus extract_record_frame(std::span<const u8> buf, mp::SignedAppend* out,
                                usize* consumed) {
  net::Decoder dec(buf);
  const auto len = dec.get_u32();
  const auto crc = dec.get_u32();
  if (!len || !crc) return ScanStatus::kTorn;
  // Record frames are fixed-size: any other length is corruption, and a
  // huge length can never make the scanner walk past a valid successor.
  if (*len != mp::kWireRecordBytes) return ScanStatus::kTorn;
  if (dec.remaining() < mp::kWireRecordBytes) return ScanStatus::kTorn;
  const std::span<const u8> payload = buf.subspan(kLogFrameHeaderBytes, mp::kWireRecordBytes);
  if (crc32(payload) != *crc) return ScanStatus::kTorn;
  const auto rec = net::decode_record_from(payload);
  if (!rec) return ScanStatus::kTorn;
  *out = *rec;
  *consumed = kLogRecordFrameBytes;
  return ScanStatus::kRecord;
}

std::vector<u8> encode_snapshot(const mp::Snapshot& snap) {
  net::Encoder body;
  body.put_u64(snap.log_seq);
  body.put_u32(snap.next_seq);
  body.put_u32(snap.sig.signer.index);
  body.put_u64(snap.sig.tag);
  body.put_u32(static_cast<u32>(snap.watermarks.size()));
  for (const u32 w : snap.watermarks) body.put_u32(w);
  body.put_u32(static_cast<u32>(snap.live.size()));
  for (const mp::SignedAppend& rec : snap.live) net::encode_record(body, rec);
  // Last field by contract: net/codec's decode_checkpoint requires the
  // checkpoint to be the tail of whatever frame carries it.
  net::encode_checkpoint(body, snap.checkpoint);

  net::Encoder head;
  head.reserve(kSnapshotHeaderBytes + body.bytes().size());
  head.put_u32(kSnapshotMagic);
  head.put_u32(static_cast<u32>(body.bytes().size()));
  head.put_u32(crc32(body.bytes()));
  std::vector<u8> file = head.take();
  file.insert(file.end(), body.bytes().begin(), body.bytes().end());
  return file;
}

std::optional<mp::Snapshot> decode_snapshot(std::span<const u8> bytes) {
  net::Decoder dec(bytes);
  const auto magic = dec.get_u32();
  const auto len = dec.get_u32();
  const auto crc = dec.get_u32();
  if (!magic || !len || !crc) return std::nullopt;
  if (*magic != kSnapshotMagic) return std::nullopt;
  // The length must match the remaining bytes exactly — a snapshot file is
  // one frame, so trailing garbage is corruption too.
  if (dec.remaining() != *len) return std::nullopt;
  if (crc32(bytes.subspan(kSnapshotHeaderBytes)) != *crc) return std::nullopt;

  mp::Snapshot snap;
  const auto log_seq = dec.get_u64();
  const auto next_seq = dec.get_u32();
  const auto signer = dec.get_u32();
  const auto tag = dec.get_u64();
  const auto wm_count = dec.get_u32();
  if (!log_seq || !next_seq || !signer || !tag || !wm_count) return std::nullopt;
  if (dec.remaining() < static_cast<usize>(*wm_count) * 4) return std::nullopt;
  snap.log_seq = *log_seq;
  snap.next_seq = *next_seq;
  snap.sig = crypto::Signature{NodeId{*signer}, *tag};
  snap.watermarks.reserve(*wm_count);
  for (u32 i = 0; i < *wm_count; ++i) {
    const auto w = dec.get_u32();
    if (!w) return std::nullopt;
    snap.watermarks.push_back(*w);
  }
  const auto live_count = dec.get_u32();
  if (!live_count) return std::nullopt;
  if (dec.remaining() < static_cast<usize>(*live_count) * mp::kWireRecordBytes) {
    return std::nullopt;
  }
  snap.live.reserve(*live_count);
  for (u32 i = 0; i < *live_count; ++i) {
    const auto rec = net::decode_record(dec);
    if (!rec) return std::nullopt;
    snap.live.push_back(*rec);
  }
  // decode_checkpoint enforces the exact chain-count-vs-remaining match
  // (the checkpoint is the tail of the snapshot frame).
  const auto ckpt = net::decode_checkpoint(dec);
  if (!ckpt) return std::nullopt;
  snap.checkpoint = *ckpt;
  if (dec.remaining() != 0) return std::nullopt;
  return snap;
}

}  // namespace amm::storage
