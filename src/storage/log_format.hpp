// On-disk framing of the durable append log (DESIGN.md §10).
//
// Segment files are a flat run of record frames:
//
//   [u32 len][u32 crc32][payload]          (little-endian throughout)
//
// where `len` is the payload size (always mp::kWireRecordBytes — the
// payload is one net/codec-encoded SignedAppend) and `crc32` covers the
// payload. A frame that is truncated, length-corrupt, CRC-corrupt or
// undecodable marks the *torn tail*: everything from its offset on is
// discarded (truncated in the last segment, fatal corruption elsewhere).
//
// Snapshot files are one framed blob:
//
//   [u32 magic][u32 len][u32 crc32][payload]
//
// with the payload laid out by encode_snapshot below (the checkpoint is
// the last field because net/codec's decode_checkpoint requires it to be
// the tail of whatever carries it).
//
// decode/extract functions are total: corrupt input yields kTorn/nullopt,
// never UB — fuzzed at every truncation offset by
// tests/storage/file_log_test.cpp, the same discipline as the wire codecs.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "mp/storage.hpp"
#include "net/codec.hpp"

namespace amm::storage {

inline constexpr u32 kSnapshotMagic = 0x414d4d53;  // "AMMS"
inline constexpr usize kLogFrameHeaderBytes = 4 + 4;  // len + crc32
inline constexpr usize kLogRecordFrameBytes = kLogFrameHeaderBytes + mp::kWireRecordBytes;
inline constexpr usize kSnapshotHeaderBytes = 4 + kLogFrameHeaderBytes;  // magic + len + crc32

/// CRC-32 (IEEE 802.3, reflected) over `bytes`.
u32 crc32(std::span<const u8> bytes);

/// Appends one framed record to `out`.
void append_record_frame(std::vector<u8>& out, const mp::SignedAppend& rec);

enum class ScanStatus : u8 {
  kRecord,  ///< one complete, CRC-valid record extracted
  kTorn,    ///< truncation or corruption — the tail starts here
};

/// Extracts the next framed record from the front of `buf`. On kRecord,
/// `*out` holds the record and `*consumed` the frame size; on kTorn
/// nothing is consumed and every byte from the front of `buf` on belongs
/// to the torn tail.
ScanStatus extract_record_frame(std::span<const u8> buf, mp::SignedAppend* out, usize* consumed);

/// Encodes a snapshot file image (magic + len + crc + payload).
std::vector<u8> encode_snapshot(const mp::Snapshot& snap);

/// Decodes a snapshot file image; nullopt on any truncation, magic, CRC or
/// shape mismatch. Signature validation is the caller's job.
std::optional<mp::Snapshot> decode_snapshot(std::span<const u8> bytes);

}  // namespace amm::storage
