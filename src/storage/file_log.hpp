// storage::FileLog — the durable mp::Storage backend (DESIGN.md §10).
//
// Layout of a store directory:
//
//   seg-<%016x first_log_seq>.log   append-only record segments (CRC-framed,
//                                   log_format.hpp), rolled at segment_bytes
//   snap-<%016x log_seq>.snap       the newest signed snapshot (written
//                                   tmp + fsync + rename, so a crash leaves
//                                   either the old or the new one, never a
//                                   partial)
//
// Open scans every segment front to back: a torn frame in the *last*
// segment is the expected crash artifact and is truncated away (counted in
// StorageStats::torn_tail_bytes); a torn frame anywhere else, or a gap in
// the segment sequence, is real corruption and fails the open (ok() ==
// false — amm_logtool is the offline repair path). After a successful
// snapshot write, closed segments entirely below the snapshot's log_seq
// are deleted: steady-state disk usage is one snapshot plus the live tail
// of the log, mirroring what compaction does to resident memory.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mp/storage.hpp"

namespace amm::storage {

struct FileLogConfig {
  std::string dir;  ///< store directory; created (with parents) if missing
  mp::FsyncPolicy fsync = mp::FsyncPolicy::kInterval;
  u32 fsync_interval = 64;         ///< appends between fdatasyncs (kInterval)
  usize segment_bytes = 4u << 20;  ///< roll the active segment beyond this
};

/// One author's slice of the log index. `records` counts retained log
/// records; `max_seq` is the highest seq observed since open (monotone —
/// pruning does not lower it).
struct AuthorIndexEntry {
  u64 records = 0;
  u32 max_seq = 0;
};

class FileLog final : public mp::Storage {
 public:
  explicit FileLog(FileLogConfig config);
  ~FileLog() override;
  FileLog(const FileLog&) = delete;
  FileLog& operator=(const FileLog&) = delete;

  /// False when the open scan found unrecoverable corruption or a later
  /// write failed; error() says why. A failed backend refuses appends —
  /// the node keeps serving from memory.
  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  /// The per-author sequence index over the retained log.
  const std::unordered_map<u32, AuthorIndexEntry>& author_index() const { return author_index_; }

  bool append(const mp::SignedAppend& rec) override;
  std::optional<mp::Snapshot> load_snapshot() override { return snapshot_; }
  bool write_snapshot(const mp::Snapshot& snap) override;
  u64 replay(u64 from_seq, const std::function<void(const mp::SignedAppend&)>& cb) override;
  u64 log_seq() const override { return next_log_seq_; }
  mp::FsyncPolicy fsync_policy() const override { return config_.fsync; }
  const mp::StorageStats& stats() const override { return stats_; }

 private:
  struct Segment {
    u64 first_seq = 0;  ///< log position of the segment's first record
    u64 records = 0;
    u64 bytes = 0;  ///< valid frame bytes (tail truncation already applied)
    std::string path;
  };

  bool fail(const std::string& what);
  bool open_store();
  bool open_active(bool create);
  bool roll_segment();
  bool maybe_fsync();

  FileLogConfig config_;
  int fd_ = -1;  ///< active segment, O_APPEND
  std::vector<Segment> segments_;
  u64 next_log_seq_ = 0;
  u32 appends_since_sync_ = 0;
  std::optional<mp::Snapshot> snapshot_;
  std::string snapshot_file_;
  std::unordered_map<u32, AuthorIndexEntry> author_index_;
  mp::StorageStats stats_;
  bool ok_ = true;
  std::string error_;
};

// ---- store-walking helpers, shared with tools/amm_logtool ----

/// Reads a whole file into memory; nullopt on any IO error.
std::optional<std::vector<u8>> read_file(const std::string& path);

/// Creates `dir` and its parents (mkdir -p); true if it exists afterwards.
bool make_dirs(const std::string& dir);

/// Names in `dir` matching `prefix`*`suffix`, sorted ascending by the
/// hex sequence number between them (non-parsing names are skipped).
std::vector<std::string> list_store_files(const std::string& dir, const std::string& prefix,
                                          const std::string& suffix);

/// The hex sequence number embedded in a store file name, if `name` is
/// `prefix` + 16 hex digits + `suffix`.
std::optional<u64> parse_store_seq(const std::string& name, const std::string& prefix,
                                   const std::string& suffix);

/// `seg-%016llx.log` / `snap-%016llx.snap` under `dir`.
std::string segment_file_name(u64 first_seq);
std::string snapshot_file_name(u64 log_seq);

}  // namespace amm::storage
