#include "chain/rules.hpp"

#include <algorithm>

namespace amm::chain {

MsgId choose_longest_tip(const BlockGraph& graph, TieBreak rule, Rng& rng) {
  const auto& deepest = graph.deepest_blocks();
  AMM_EXPECTS(!deepest.empty());
  switch (rule) {
    case TieBreak::kDeterministicFirst:
      return deepest.front();
    case TieBreak::kRandomized:
      return deepest[rng.uniform_below(deepest.size())];
  }
  AMM_ASSERT(false);
  return kRootId;
}

std::vector<MsgId> select_pivot(const BlockGraph& graph, PivotRule rule) {
  std::vector<MsgId> pivot;
  if (graph.block_count() == 0) return pivot;

  // For the longest-chain rule we need, per block, the height of the
  // deepest descendant. Compute it once, bottom-up by descending depth.
  // MsgId is a perfect index into the graph's dense positions, so this is
  // a flat array rather than a hash map.
  std::vector<u32> max_reach(graph.block_count());  // deepest depth reachable in subtree
  {
    const std::vector<MsgId>& order = graph.topo_order();
    // Process leaves first: reverse topological order works because parent
    // edges are a subset of reference edges.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      u32 reach = graph.depth(*it);
      for (const MsgId c : graph.children(*it)) {
        reach = std::max(reach, max_reach[graph.index_of(c)]);
      }
      max_reach[graph.index_of(*it)] = reach;
    }
  }

  auto pick = [&](std::span<const MsgId> children) -> MsgId {
    AMM_EXPECTS(!children.empty());
    MsgId best = children.front();
    for (const MsgId c : children.subspan(1)) {
      const bool better =
          rule == PivotRule::kGhost
              ? graph.subtree_weight(c) > graph.subtree_weight(best)
              : max_reach[graph.index_of(c)] > max_reach[graph.index_of(best)];
      if (better) best = c;
    }
    return best;
  };

  std::span<const MsgId> frontier = graph.root_children();
  while (!frontier.empty()) {
    const MsgId next = pick(frontier);
    pivot.push_back(next);
    frontier = graph.children(next);
  }
  return pivot;
}

std::vector<MsgId> linearize_dag(const BlockGraph& graph, PivotRule rule) {
  const std::vector<MsgId> pivot = select_pivot(graph, rule);

  // Epoch assignment: a non-pivot block belongs to the epoch of the first
  // pivot block that (transitively) references it. Walking the global topo
  // order once per pivot step would be quadratic; instead assign epochs by
  // a reverse scan: process pivot blocks in order, collecting not-yet-
  // emitted ancestors via DFS over reference edges. All bookkeeping is by
  // dense position — no hashing on the hot path.
  std::vector<u8> emitted(graph.block_count(), 0);
  std::vector<MsgId> order;
  order.reserve(graph.block_count());

  // Position in the global deterministic topo order, for stable epoch-
  // internal ordering.
  std::vector<usize> topo_pos(graph.block_count());
  for (usize i = 0; i < graph.topo_order().size(); ++i) {
    topo_pos[graph.index_of(graph.topo_order()[i])] = i;
  }

  std::vector<MsgId> stack;
  std::vector<MsgId> epoch;
  for (const MsgId p : pivot) {
    epoch.clear();
    stack.push_back(p);
    while (!stack.empty()) {
      const MsgId cur = stack.back();
      stack.pop_back();
      u8& mark = emitted[graph.index_of(cur)];
      if (mark != 0) continue;
      mark = 1;
      epoch.push_back(cur);
      for (const MsgId ref : graph.refs(cur)) {
        if (emitted[graph.index_of(ref)] == 0) stack.push_back(ref);
      }
    }
    std::sort(epoch.begin(), epoch.end(), [&](MsgId a, MsgId b) {
      return topo_pos[graph.index_of(a)] < topo_pos[graph.index_of(b)];
    });
    order.insert(order.end(), epoch.begin(), epoch.end());
  }
  // Blocks unreachable from the pivot (withheld side branches nobody
  // referenced) are appended last in topo order, so the output is total.
  for (const MsgId id : graph.topo_order()) {
    if (emitted[graph.index_of(id)] == 0) order.push_back(id);
  }
  AMM_ENSURES(order.size() == graph.block_count());
  return order;
}

std::vector<MsgId> first_k_of_chain(const BlockGraph& graph, MsgId tip, usize k) {
  std::vector<MsgId> chain = graph.chain_to(tip);
  if (chain.size() > k) chain.resize(k);
  return chain;
}

i64 vote_sum(const BlockGraph& graph, const std::vector<MsgId>& ids) {
  i64 sum = 0;
  for (const MsgId id : ids) sum += vote_value(graph.msg(id).value);
  return sum;
}

}  // namespace amm::chain
