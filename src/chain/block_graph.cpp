#include "chain/block_graph.hpp"

#include <algorithm>
#include <deque>

namespace amm::chain {

BlockGraph::BlockGraph(const MemoryView& view) : view_(view) {
  if (view_.empty()) return;
  const std::vector<MsgId> order = view_.by_append_time();

  // Pass 1: create nodes and the id index.
  nodes_.reserve(order.size());
  index_.reserve(order.size());
  for (const MsgId id : order) {
    index_.emplace(id, nodes_.size());
    Node n;
    n.id = id;
    nodes_.push_back(std::move(n));
  }

  // Pass 2: resolve references. References outside the view (a Byzantine
  // message may cite an append this observer has not seen) are dropped;
  // such a block hangs off the root for structural purposes.
  for (auto& n : nodes_) {
    const Message& m = view_.msg(n.id);
    n.refs.reserve(m.refs.size());
    for (const MsgId ref : m.refs) {
      if (!contains(ref)) continue;
      n.refs.push_back(ref);
      node_mut(ref).referenced = true;
    }
    n.parent = n.refs.empty() ? kRootId : n.refs.front();
  }
  for (const auto& n : nodes_) {
    if (n.parent == kRootId) {
      root_children_.push_back(n.id);
    } else {
      node_mut(n.parent).children.push_back(n.id);
    }
  }

  // Pass 3: depths via an explicit stack (no recursion; chains can be long).
  std::vector<u8> done(nodes_.size(), 0);
  std::vector<usize> stack;
  for (usize i = 0; i < nodes_.size(); ++i) {
    if (done[i]) continue;
    stack.push_back(i);
    while (!stack.empty()) {
      const usize cur = stack.back();
      Node& n = nodes_[cur];
      if (n.parent == kRootId) {
        n.depth = 1;
        done[cur] = 1;
        stack.pop_back();
        continue;
      }
      const usize pi = index_.at(n.parent);
      if (!done[pi]) {
        stack.push_back(pi);
        continue;
      }
      n.depth = nodes_[pi].depth + 1;
      done[cur] = 1;
      stack.pop_back();
    }
  }
  for (const auto& n : nodes_) max_depth_ = std::max(max_depth_, n.depth);
  for (const auto& n : nodes_) {
    if (n.depth == max_depth_) deepest_.push_back(n.id);
  }

  // Pass 4: GHOST weights — accumulate bottom-up by descending depth.
  std::vector<usize> by_depth(nodes_.size());
  for (usize i = 0; i < nodes_.size(); ++i) by_depth[i] = i;
  std::stable_sort(by_depth.begin(), by_depth.end(),
                   [this](usize a, usize b) { return nodes_[a].depth > nodes_[b].depth; });
  for (const usize i : by_depth) {
    const Node& n = nodes_[i];
    if (n.parent != kRootId) node_mut(n.parent).weight += n.weight;
  }

  // Pass 5: deterministic topological order over all visible ref edges
  // (Kahn; ready set processed in append order via a FIFO seeded in order).
  std::vector<u32> in_degree(nodes_.size(), 0);
  for (const auto& n : nodes_) {
    for (const MsgId ref : n.refs) {
      (void)ref;
      ++in_degree[index_.at(n.id)];
    }
  }
  std::deque<usize> ready;
  for (usize i = 0; i < nodes_.size(); ++i) {
    if (in_degree[i] == 0) ready.push_back(i);
  }
  // Out-edge lists: ref -> referrers.
  std::vector<std::vector<usize>> referrers(nodes_.size());
  for (usize i = 0; i < nodes_.size(); ++i) {
    for (const MsgId ref : nodes_[i].refs) referrers[index_.at(ref)].push_back(i);
  }
  topo_.reserve(nodes_.size());
  while (!ready.empty()) {
    const usize i = ready.front();
    ready.pop_front();
    topo_.push_back(nodes_[i].id);
    for (const usize j : referrers[i]) {
      if (--in_degree[j] == 0) ready.push_back(j);
    }
  }
  AMM_ENSURES(topo_.size() == nodes_.size());  // views are acyclic by construction
}

std::vector<MsgId> BlockGraph::tips() const {
  std::vector<MsgId> result;
  for (const auto& n : nodes_) {
    if (n.children.empty() && !n.referenced) result.push_back(n.id);
  }
  return result;
}

std::vector<MsgId> BlockGraph::chain_to(MsgId tip) const {
  std::vector<MsgId> chain;
  MsgId cur = tip;
  while (cur != kRootId) {
    chain.push_back(cur);
    cur = parent(cur);
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

}  // namespace amm::chain
