#include "chain/block_graph.hpp"

#include <algorithm>
#include <deque>

#include "am/order.hpp"

namespace amm::chain {

void BlockGraph::attach_child(MsgId parent, MsgId child) {
  std::vector<MsgId>& siblings =
      parent == kRootId ? root_children_ : nodes_[index_of(parent)].children;
  // Keep append-time order. The common case (a fresh block extending the
  // frontier) lands at the end in O(1); only a late-revealed old message
  // pays the positional insert.
  if (siblings.empty() || key_less(siblings.back(), child)) {
    siblings.push_back(child);
    return;
  }
  const auto it = std::lower_bound(siblings.begin(), siblings.end(), child,
                                   [this](MsgId a, MsgId b) { return key_less(a, b); });
  siblings.insert(it, child);
}

void BlockGraph::detach_child(MsgId parent, MsgId child) {
  std::vector<MsgId>& siblings =
      parent == kRootId ? root_children_ : nodes_[index_of(parent)].children;
  const auto it = std::find(siblings.begin(), siblings.end(), child);
  AMM_ASSERT(it != siblings.end());
  siblings.erase(it);
}

void BlockGraph::extend(const MemoryView& newer) {
  AMM_EXPECTS(newer.valid());
  if (!view_.valid()) {
    // First extension binds the graph to the view's memory.
    view_ = MemoryView(&newer.memory(), std::vector<u32>(newer.register_count(), 0));
    index_.resize(newer.register_count());
  }
  AMM_EXPECTS(&view_.memory() == &newer.memory());
  AMM_EXPECTS(view_.subset_of(newer));

  // Only the newly visible messages, in canonical (appended_at, id) order —
  // a k-way merge over the per-register delta ranges.
  const std::vector<MsgId> delta =
      am::merge_append_order(newer.memory(), view_.lens(), newer.lens());
  view_ = newer;
  if (delta.empty()) return;

  // Pass 1: create nodes and dense index entries. Within one register the
  // delta arrives in sequence order, so the per-author index grows by
  // push_back. Deliberately no reserve(size + delta): an exact-fit reserve
  // every round defeats geometric growth and turns repeated extension into
  // an O(total) reallocation per call.
  const usize first_new = nodes_.size();
  for (const MsgId id : delta) {
    AMM_ASSERT(index_[id.author].size() == id.seq);
    index_[id.author].push_back(static_cast<u32>(nodes_.size()));
    Node n;
    n.id = id;
    n.time = view_.msg(id).appended_at;
    nodes_.push_back(std::move(n));
  }

  // Canonical order: the old prefix and the delta are each sorted, so a
  // single in-place merge restores the invariant. The common case (all new
  // messages later than everything seen) is a pure append.
  const usize old_order = order_.size();
  for (usize p = first_new; p < nodes_.size(); ++p) order_.push_back(static_cast<u32>(p));
  if (old_order != 0 &&
      key_less(nodes_[order_[old_order]].id, nodes_[order_[old_order - 1]].id)) {
    std::inplace_merge(order_.begin(), order_.begin() + static_cast<std::ptrdiff_t>(old_order),
                       order_.end(),
                       [this](u32 a, u32 b) { return key_less(nodes_[a].id, nodes_[b].id); });
  }

  // Pass 2: resolve the new nodes' references. References outside the view
  // (a Byzantine message may cite an append this observer has not seen) are
  // parked in pending_; such a block hangs off the root until the target
  // becomes visible.
  for (usize p = first_new; p < nodes_.size(); ++p) {
    Node& n = nodes_[p];
    const Message& m = view_.msg(n.id);
    n.refs.reserve(m.refs.size());
    for (const MsgId ref : m.refs) {
      if (view_.contains(ref)) {
        n.refs.push_back(ref);
        node_mut(ref).referenced = true;
      } else {
        pending_[ref].push_back(static_cast<u32>(p));
      }
    }
    n.parent = n.refs.empty() ? kRootId : n.refs.front();
    attach_child(n.parent, n.id);
  }

  // Pass 3: wake waiters whose awaited target just became visible. The
  // parent is the *first visible* reference, so a late-revealed earlier
  // reference can reparent an existing block — exactly what a from-scratch
  // build of the larger view would have done.
  bool reparented = false;
  for (const MsgId id : delta) {
    const auto it = pending_.find(id);
    if (it == pending_.end()) continue;
    for (const u32 wp : it->second) {
      Node& w = nodes_[wp];
      const Message& m = view_.msg(w.id);
      std::vector<MsgId> visible;
      visible.reserve(m.refs.size());
      for (const MsgId ref : m.refs) {
        if (view_.contains(ref)) visible.push_back(ref);
      }
      w.refs = std::move(visible);
      node_mut(id).referenced = true;
      const MsgId new_parent = w.refs.empty() ? kRootId : w.refs.front();
      if (new_parent != w.parent) {
        detach_child(w.parent, w.id);
        attach_child(new_parent, w.id);
        w.parent = new_parent;
        reparented = true;
      }
    }
    pending_.erase(it);
  }

  if (reparented) {
    // Reparenting cascades through depths; recompute wholesale (cold path —
    // requires a Byzantine dangling reference resolved late).
    recompute_all_depths();
    recompute_frontier();
  } else {
    // Depths of the new nodes only, via an explicit stack (no recursion;
    // chains can be long). A parent is either settled (depth > 0) or a new
    // node reachable through the stack.
    std::vector<usize> stack;
    for (usize i = first_new; i < nodes_.size(); ++i) {
      if (nodes_[i].depth != 0) continue;
      stack.push_back(i);
      while (!stack.empty()) {
        const usize cur = stack.back();
        Node& n = nodes_[cur];
        if (n.parent == kRootId) {
          n.depth = 1;
          stack.pop_back();
          continue;
        }
        const usize pi = index_of(n.parent);
        if (nodes_[pi].depth == 0) {
          stack.push_back(pi);
          continue;
        }
        n.depth = nodes_[pi].depth + 1;
        stack.pop_back();
      }
    }
    // Frontier update, keeping deepest_ in append-time order (a new block
    // at the frontier lands at the end; a late-revealed equal-depth block
    // slots into position).
    for (usize i = first_new; i < nodes_.size(); ++i) {
      const Node& n = nodes_[i];
      if (n.depth > max_depth_) {
        max_depth_ = n.depth;
        deepest_.clear();
      }
      if (n.depth == max_depth_) {
        if (deepest_.empty() || key_less(deepest_.back(), n.id)) {
          deepest_.push_back(n.id);
        } else {
          const auto pos = std::lower_bound(deepest_.begin(), deepest_.end(), n.id,
                                            [this](MsgId a, MsgId b) { return key_less(a, b); });
          deepest_.insert(pos, n.id);
        }
      }
    }
  }

  weights_valid_ = false;
  topo_valid_ = false;
}

void BlockGraph::recompute_all_depths() {
  for (Node& n : nodes_) n.depth = 0;
  std::vector<usize> stack;
  for (usize i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].depth != 0) continue;
    stack.push_back(i);
    while (!stack.empty()) {
      const usize cur = stack.back();
      Node& n = nodes_[cur];
      if (n.parent == kRootId) {
        n.depth = 1;
        stack.pop_back();
        continue;
      }
      const usize pi = index_of(n.parent);
      if (nodes_[pi].depth == 0) {
        stack.push_back(pi);
        continue;
      }
      n.depth = nodes_[pi].depth + 1;
      stack.pop_back();
    }
  }
}

void BlockGraph::recompute_frontier() {
  max_depth_ = 0;
  for (const Node& n : nodes_) max_depth_ = std::max(max_depth_, n.depth);
  deepest_.clear();
  for (const u32 p : order_) {
    if (nodes_[p].depth == max_depth_) deepest_.push_back(nodes_[p].id);
  }
}

void BlockGraph::ensure_weights() const {
  if (weights_valid_) return;
  // GHOST weights — accumulate bottom-up by descending depth.
  weights_.assign(nodes_.size(), 1);
  std::vector<u32> by_depth(order_);
  std::stable_sort(by_depth.begin(), by_depth.end(),
                   [this](u32 a, u32 b) { return nodes_[a].depth > nodes_[b].depth; });
  for (const u32 p : by_depth) {
    const Node& n = nodes_[p];
    if (n.parent != kRootId) weights_[index_of(n.parent)] += weights_[p];
  }
  weights_valid_ = true;
}

void BlockGraph::ensure_topo() const {
  if (topo_valid_) return;
  // Deterministic topological order over all visible ref edges (Kahn; ready
  // set processed in append order via a FIFO seeded in canonical order).
  topo_.clear();
  topo_.reserve(nodes_.size());
  std::vector<u32> in_degree(nodes_.size(), 0);
  for (usize p = 0; p < nodes_.size(); ++p) {
    in_degree[p] = static_cast<u32>(nodes_[p].refs.size());
  }
  std::deque<u32> ready;
  for (const u32 p : order_) {
    if (in_degree[p] == 0) ready.push_back(p);
  }
  // Out-edge lists: ref -> referrers, referrers in append order.
  std::vector<std::vector<u32>> referrers(nodes_.size());
  for (const u32 p : order_) {
    for (const MsgId ref : nodes_[p].refs) {
      referrers[index_of(ref)].push_back(p);
    }
  }
  while (!ready.empty()) {
    const u32 p = ready.front();
    ready.pop_front();
    topo_.push_back(nodes_[p].id);
    for (const u32 j : referrers[p]) {
      if (--in_degree[j] == 0) ready.push_back(j);
    }
  }
  AMM_ENSURES(topo_.size() == nodes_.size());  // views are acyclic by construction
  topo_valid_ = true;
}

std::vector<MsgId> BlockGraph::tips() const {
  std::vector<MsgId> result;
  for (const u32 p : order_) {
    const Node& n = nodes_[p];
    if (n.children.empty() && !n.referenced) result.push_back(n.id);
  }
  return result;
}

std::vector<MsgId> BlockGraph::chain_to(MsgId tip) const {
  std::vector<MsgId> chain;
  MsgId cur = tip;
  while (cur != kRootId) {
    chain.push_back(cur);
    cur = parent(cur);
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

}  // namespace amm::chain
