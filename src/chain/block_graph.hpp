// Interprets a MemoryView as a block graph.
//
// Every message references earlier appends; the first reference acts as the
// *parent edge* (the chain/pivot structure), any further references are
// inclusion edges (the DAG structure, as in inclusive blockchains /
// Conflux). Messages with no references attach to a virtual root — the
// paper's "dummy append, e.g. the empty state of the memory" (§5.3).
#pragma once

#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "am/memory.hpp"
#include "support/assert.hpp"

namespace amm::chain {

using am::MemoryView;
using am::Message;
using am::MsgId;

/// Sentinel id for the virtual root block.
inline constexpr MsgId kRootId{~u32{0}, ~u32{0}};

class BlockGraph {
 public:
  /// Builds the graph of every message visible in `view`. O(messages + refs).
  explicit BlockGraph(const MemoryView& view);

  const MemoryView& view() const { return view_; }
  usize block_count() const { return nodes_.size(); }  // excludes the root

  bool contains(MsgId id) const { return index_.contains(id); }

  /// Parent in the chain sense (first reference), kRootId for ref-less
  /// messages. Unseen parents (possible for Byzantine messages referencing
  /// appends outside this view) also map to kRootId.
  MsgId parent(MsgId id) const { return node(id).parent; }

  /// Depth = distance from the virtual root along parent edges (root = 0).
  u32 depth(MsgId id) const { return node(id).depth; }

  /// Number of blocks in the subtree rooted at `id` (including itself)
  /// under parent edges — the GHOST weight.
  u32 subtree_weight(MsgId id) const { return node(id).weight; }

  /// Children along parent edges, in insertion (append-time) order.
  std::span<const MsgId> children(MsgId id) const { return node(id).children; }
  std::span<const MsgId> root_children() const { return root_children_; }

  /// All references of `id` that are visible in the view (parent included).
  std::span<const MsgId> refs(MsgId id) const { return node(id).refs; }

  const Message& msg(MsgId id) const { return view_.msg(id); }

  /// Maximum depth over all blocks (0 if the view is empty).
  u32 max_depth() const { return max_depth_; }

  /// All blocks at maximal depth, in append-time order — the set C of "last
  /// states in the longest chains" of Algorithm 5.
  const std::vector<MsgId>& deepest_blocks() const { return deepest_; }

  /// Blocks without children along parent edges *and* never referenced by
  /// any other visible block — the DAG tips Algorithm 6 appends to.
  std::vector<MsgId> tips() const;

  /// The chain from the root to `tip` (root excluded), oldest first.
  std::vector<MsgId> chain_to(MsgId tip) const;

  /// Blocks in a deterministic topological order (parents and referenced
  /// blocks before referrers; ties by append order).
  const std::vector<MsgId>& topo_order() const { return topo_; }

 private:
  struct Node {
    MsgId id;
    MsgId parent = kRootId;
    u32 depth = 0;
    u32 weight = 1;
    std::vector<MsgId> refs;      // visible refs only
    std::vector<MsgId> children;  // parent-edge children
    bool referenced = false;      // appears in someone's ref list
  };

  const Node& node(MsgId id) const {
    const auto it = index_.find(id);
    AMM_EXPECTS(it != index_.end());
    return nodes_[it->second];
  }
  Node& node_mut(MsgId id) { return nodes_[index_.at(id)]; }

  MemoryView view_;
  std::vector<Node> nodes_;  // in append-time order
  std::unordered_map<MsgId, usize> index_;
  std::vector<MsgId> root_children_;
  std::vector<MsgId> deepest_;
  std::vector<MsgId> topo_;
  u32 max_depth_ = 0;
};

}  // namespace amm::chain
