// Interprets a MemoryView as a block graph.
//
// Every message references earlier appends; the first reference acts as the
// *parent edge* (the chain/pivot structure), any further references are
// inclusion edges (the DAG structure, as in inclusive blockchains /
// Conflux). Messages with no references attach to a virtual root — the
// paper's "dummy append, e.g. the empty state of the memory" (§5.3).
//
// Views of the append memory form a lattice and only ever grow (§2, §5.3),
// so the graph is *incrementally extendable*: `extend(newer)` ingests only
// the messages of `newer` that the current view does not contain, instead
// of reconstructing the whole graph. Protocols that observe a growing view
// carry one graph across rounds; an extension costs O(delta) for the graph
// structure, while the order-dependent analytics (GHOST weights, the
// deterministic topological order) are recomputed lazily on first access
// after a change. Extending to view V yields a graph bit-identical to
// `BlockGraph(V)` built from scratch — the property tests assert this.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "am/memory.hpp"
#include "support/assert.hpp"

namespace amm::chain {

using am::MemoryView;
using am::Message;
using am::MsgId;

/// Sentinel id for the virtual root block.
inline constexpr MsgId kRootId{~u32{0}, ~u32{0}};

class BlockGraph {
 public:
  /// An empty graph; bound to a memory by the first extend().
  BlockGraph() = default;

  /// Builds the graph of every message visible in `view`. O(messages·log
  /// registers + refs).
  explicit BlockGraph(const MemoryView& view) { extend(view); }

  /// Ingests every message visible in `newer` but not in the current view.
  /// `newer` must be a superset view of the same memory (views only grow).
  /// Postcondition: *this is bit-identical to BlockGraph(newer).
  void extend(const MemoryView& newer);

  const MemoryView& view() const { return view_; }
  usize block_count() const { return nodes_.size(); }  // excludes the root

  bool contains(MsgId id) const {
    return id.author < index_.size() && id.seq < index_[id.author].size();
  }

  /// Dense position of `id` in [0, block_count()): MsgId = (author, seq) is
  /// a perfect 2D index, so the lookup is two array loads — no hashing.
  /// Positions are stable across extend() calls. Hot-path analytics
  /// (chain/rules.cpp) use positions to replace hash maps with flat arrays.
  usize index_of(MsgId id) const {
    AMM_EXPECTS(contains(id));
    return index_[id.author][id.seq];
  }

  /// The block at dense position `pos` (inverse of index_of).
  MsgId id_at(usize pos) const { return nodes_[pos].id; }

  /// Parent in the chain sense (first reference), kRootId for ref-less
  /// messages. Unseen parents (possible for Byzantine messages referencing
  /// appends outside this view) also map to kRootId.
  MsgId parent(MsgId id) const { return node(id).parent; }

  /// Depth = distance from the virtual root along parent edges (root = 0).
  u32 depth(MsgId id) const { return node(id).depth; }

  /// Number of blocks in the subtree rooted at `id` (including itself)
  /// under parent edges — the GHOST weight.
  u32 subtree_weight(MsgId id) const {
    ensure_weights();
    return weights_[index_of(id)];
  }

  /// Children along parent edges, in append-time order.
  std::span<const MsgId> children(MsgId id) const { return node(id).children; }
  std::span<const MsgId> root_children() const { return root_children_; }

  /// All references of `id` that are visible in the view (parent included).
  std::span<const MsgId> refs(MsgId id) const { return node(id).refs; }

  const Message& msg(MsgId id) const { return view_.msg(id); }

  /// Maximum depth over all blocks (0 if the view is empty).
  u32 max_depth() const { return max_depth_; }

  /// All blocks at maximal depth, in append-time order — the set C of "last
  /// states in the longest chains" of Algorithm 5.
  const std::vector<MsgId>& deepest_blocks() const { return deepest_; }

  /// Blocks without children along parent edges *and* never referenced by
  /// any other visible block — the DAG tips Algorithm 6 appends to.
  std::vector<MsgId> tips() const;

  /// The chain from the root to `tip` (root excluded), oldest first.
  std::vector<MsgId> chain_to(MsgId tip) const;

  /// Blocks in a deterministic topological order (parents and referenced
  /// blocks before referrers; ties by append order).
  const std::vector<MsgId>& topo_order() const {
    ensure_topo();
    return topo_;
  }

 private:
  struct Node {
    MsgId id;
    MsgId parent = kRootId;
    SimTime time = 0.0;           // appended_at, cached for order keys
    u32 depth = 0;
    std::vector<MsgId> refs;      // visible refs only, in message order
    std::vector<MsgId> children;  // parent-edge children, append-time order
    bool referenced = false;      // appears in someone's ref list
  };

  const Node& node(MsgId id) const { return nodes_[index_of(id)]; }
  Node& node_mut(MsgId id) { return nodes_[index_of(id)]; }

  /// Canonical (appended_at, id) order — the order a from-scratch build
  /// ingests nodes in.
  bool key_less(MsgId a, MsgId b) const {
    const Node& na = nodes_[index_of(a)];
    const Node& nb = nodes_[index_of(b)];
    if (na.time != nb.time) return na.time < nb.time;
    return a < b;
  }

  void attach_child(MsgId parent, MsgId child);
  void detach_child(MsgId parent, MsgId child);
  void recompute_all_depths();
  void recompute_frontier();

  // Lazy analytics: recomputed on first access after an extend. NOT
  // thread-safe for concurrent first access — a graph belongs to one
  // simulation trial (Core Guidelines CP.3), like the memory it reads.
  void ensure_weights() const;
  void ensure_topo() const;

  MemoryView view_;
  std::vector<Node> nodes_;              // ingestion order; positions stable
  std::vector<std::vector<u32>> index_;  // [author][seq] -> position (dense)
  std::vector<u32> order_;               // positions in (appended_at, id) order
  std::vector<MsgId> root_children_;     // append-time order
  std::vector<MsgId> deepest_;           // append-time order
  u32 max_depth_ = 0;
  /// Unresolved references (targets outside every view seen so far) ->
  /// waiting positions. Cold path: only Byzantine messages cite appends
  /// their observer has not seen, so a hash map is fine here.
  std::unordered_map<MsgId, std::vector<u32>> pending_;

  mutable std::vector<u32> weights_;  // by position; valid iff weights_valid_
  mutable std::vector<MsgId> topo_;
  mutable bool weights_valid_ = false;
  mutable bool topo_valid_ = false;
};

}  // namespace amm::chain
