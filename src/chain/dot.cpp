#include "chain/dot.hpp"

#include <ostream>
#include <sstream>
#include <unordered_set>

namespace amm::chain {
namespace {

std::string node_name(MsgId id) {
  return "b_" + std::to_string(id.author) + "_" + std::to_string(id.seq);
}

}  // namespace

void write_dot(std::ostream& os, const BlockGraph& graph, const DotOptions& options) {
  os << "digraph append_memory {\n"
     << "  rankdir=BT;\n"
     << "  node [shape=box, fontname=\"monospace\"];\n"
     << "  root [label=\"∅\", shape=circle];\n";

  std::unordered_set<MsgId> pivot_set;
  if (options.show_pivot && graph.block_count() > 0) {
    const auto pivot = select_pivot(graph, options.pivot_rule);
    pivot_set.insert(pivot.begin(), pivot.end());
  }

  for (const MsgId id : graph.topo_order()) {
    const am::Message& m = graph.msg(id);
    std::ostringstream label;
    label << "v" << id.author << "#" << id.seq;
    if (options.show_votes) label << (m.value == Vote::kPlus ? " +" : " −");

    os << "  " << node_name(id) << " [label=\"" << label.str() << "\"";
    if (options.is_adversarial && options.is_adversarial(NodeId{id.author})) {
      os << ", style=filled, fillcolor=\"#f4cccc\"";
    }
    if (pivot_set.contains(id)) os << ", penwidth=2.5";
    os << "];\n";
  }

  for (const MsgId id : graph.topo_order()) {
    const MsgId parent = graph.parent(id);
    os << "  " << node_name(id) << " -> "
       << (parent == kRootId ? std::string("root") : node_name(parent)) << ";\n";
    for (const MsgId ref : graph.refs(id)) {
      if (ref == parent) continue;  // parent edge already drawn solid
      os << "  " << node_name(id) << " -> " << node_name(ref) << " [style=dashed];\n";
    }
  }
  os << "}\n";
}

std::string to_dot(const BlockGraph& graph, const DotOptions& options) {
  std::ostringstream oss;
  write_dot(oss, graph, options);
  return oss.str();
}

}  // namespace amm::chain
