// Graphviz (DOT) export of block graphs — the debugging tool every chain
// library grows eventually. Parent edges are solid, extra DAG reference
// edges dashed; Byzantine-authored blocks (per the supplied predicate) are
// filled red, pivot blocks get a bold border.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

#include "chain/rules.hpp"

namespace amm::chain {

struct DotOptions {
  /// Marks blocks to render as adversarial (filled). Optional.
  std::function<bool(NodeId)> is_adversarial;
  /// Highlights this pivot rule's chain. Set `show_pivot` to enable.
  PivotRule pivot_rule = PivotRule::kGhost;
  bool show_pivot = true;
  /// Prints vote (+/-) inside each node label.
  bool show_votes = true;
};

/// Writes the graph in DOT syntax to `os`.
void write_dot(std::ostream& os, const BlockGraph& graph, const DotOptions& options = {});

/// Convenience: DOT as a string.
std::string to_dot(const BlockGraph& graph, const DotOptions& options = {});

}  // namespace amm::chain
