// Fork-choice rules and tie-breaking policies (§5.2, §5.3).
//
// Algorithm 5 chooses among "the last states in the longest chains" with a
// tie-breaking rule; the paper analyzes a deterministic rule (Garay et al.,
// broken in the adversary's favor — Theorem 5.3) and a randomized rule
// (Ren — Theorem 5.4). Algorithm 6 orders the DAG by the longest or
// heaviest (GHOST) chain.
#pragma once

#include <vector>

#include "chain/block_graph.hpp"
#include "support/rng.hpp"

namespace amm::chain {

enum class TieBreak {
  kDeterministicFirst,  ///< first (oldest) candidate — Garay-style, adversary exploitable
  kRandomized,          ///< uniform among candidates — Ren-style
};

/// Picks one tip among the deepest blocks of `graph` per `rule`.
/// The randomized rule consumes entropy from `rng`.
MsgId choose_longest_tip(const BlockGraph& graph, TieBreak rule, Rng& rng);

enum class PivotRule {
  kLongestChain,  ///< greedy deepest-descendant descent [14]
  kGhost,         ///< heaviest-subtree descent [22]
};

/// Walks from the root choosing children by `rule`; ties broken toward the
/// earliest-appended child (both cited rules are deterministic given the
/// view). Returns the pivot chain, oldest first; empty for an empty graph.
std::vector<MsgId> select_pivot(const BlockGraph& graph, PivotRule rule);

/// Conflux-style total order of the whole DAG: for each pivot block in
/// order, emit its "epoch" — every not-yet-emitted ancestor reachable
/// through reference edges — in deterministic topological order, then the
/// pivot block itself (§5.3: "Order the values of the DAG with respect to
/// the longest chain").
std::vector<MsgId> linearize_dag(const BlockGraph& graph, PivotRule rule);

/// The first `k` values along a chain from the root (Algorithm 5, line 10):
/// the prefix of length k of the chain ending at `tip`.
std::vector<MsgId> first_k_of_chain(const BlockGraph& graph, MsgId tip, usize k);

/// Sum of ±1 values of the given messages.
i64 vote_sum(const BlockGraph& graph, const std::vector<MsgId>& ids);

}  // namespace amm::chain
