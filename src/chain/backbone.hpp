// Blockchain-backbone metrics (Garay, Kiayias, Leonardos [9]; Ren [21]).
//
// The paper's §5.2 analysis is a resilience statement about Algorithm 5;
// underneath it sit the three classic backbone properties, which this
// module measures on any view of the append memory:
//
//  * chain growth   — blocks of longest-chain depth gained per Δ;
//  * chain quality  — fraction of adversarial blocks in (a suffix of) the
//                     longest chain;
//  * common prefix  — how many suffix blocks two (possibly stale) views
//                     disagree on, i.e. the k needed for consistency.
//
// These make the mechanism behind Theorems 5.3/5.4 directly observable:
// the rushing adversary attacks chain quality, staleness attacks the
// common prefix, and both leave chain growth intact.
#pragma once

#include <functional>
#include <vector>

#include "chain/block_graph.hpp"
#include "chain/rules.hpp"

namespace amm::chain {

/// Chain-quality sample over the last `suffix` blocks of the chain ending
/// at `tip`: the fraction authored by nodes satisfying `is_adversarial`.
/// Uses the whole chain when it is shorter than `suffix`.
double chain_quality(const BlockGraph& graph, MsgId tip, usize suffix,
                     const std::function<bool(NodeId)>& is_adversarial);

/// Chain growth between two views of the same memory: the difference of
/// longest-chain depths divided by the elapsed interval count.
/// `intervals` must be > 0.
double chain_growth(const BlockGraph& earlier, const BlockGraph& later, double intervals);

/// Common-prefix divergence between the longest chains of two views: the
/// number of blocks that must be dropped from each chain until the
/// remaining prefixes agree. Returns the max of the two drop counts — the
/// "k" for which the k-common-prefix property would have been violated.
/// Tie-breaking follows the deterministic-first rule for reproducibility.
u32 common_prefix_divergence(const BlockGraph& a, const BlockGraph& b);

/// Convenience: the canonical (deterministic-first) longest chain of a view.
std::vector<MsgId> canonical_chain(const BlockGraph& graph);

}  // namespace amm::chain
