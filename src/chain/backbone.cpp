#include "chain/backbone.hpp"

#include <algorithm>

namespace amm::chain {

double chain_quality(const BlockGraph& graph, MsgId tip, usize suffix,
                     const std::function<bool(NodeId)>& is_adversarial) {
  AMM_EXPECTS(suffix > 0);
  std::vector<MsgId> chain = graph.chain_to(tip);
  if (chain.empty()) return 0.0;
  const usize take = std::min(suffix, chain.size());
  usize adversarial = 0;
  for (usize i = chain.size() - take; i < chain.size(); ++i) {
    if (is_adversarial(NodeId{chain[i].author})) ++adversarial;
  }
  return static_cast<double>(adversarial) / static_cast<double>(take);
}

double chain_growth(const BlockGraph& earlier, const BlockGraph& later, double intervals) {
  AMM_EXPECTS(intervals > 0.0);
  AMM_EXPECTS(later.max_depth() >= earlier.max_depth());
  return static_cast<double>(later.max_depth() - earlier.max_depth()) / intervals;
}

std::vector<MsgId> canonical_chain(const BlockGraph& graph) {
  if (graph.block_count() == 0) return {};
  return graph.chain_to(graph.deepest_blocks().front());
}

u32 common_prefix_divergence(const BlockGraph& a, const BlockGraph& b) {
  const std::vector<MsgId> ca = canonical_chain(a);
  const std::vector<MsgId> cb = canonical_chain(b);
  usize agree = 0;
  while (agree < ca.size() && agree < cb.size() && ca[agree] == cb[agree]) ++agree;
  const usize drop_a = ca.size() - agree;
  const usize drop_b = cb.size() - agree;
  return static_cast<u32>(std::max(drop_a, drop_b));
}

}  // namespace amm::chain
