#include "crypto/signature.hpp"

namespace amm::crypto {

KeyRegistry::KeyRegistry(u32 node_count, u64 seed) {
  Rng rng = Rng::for_stream(seed, /*stream=*/0x5ec7e7);
  keys_.reserve(node_count);
  for (u32 i = 0; i < node_count; ++i) {
    keys_.push_back(SipKey{rng.next(), rng.next()});
  }
}

Signature KeyRegistry::sign(NodeId signer, u64 digest) const {
  AMM_EXPECTS(signer.index < keys_.size());
  const u64 words[] = {digest, static_cast<u64>(signer.index)};
  return Signature{signer, siphash24(keys_[signer.index], std::span(words))};
}

bool KeyRegistry::verify(u64 digest, const Signature& sig) const {
  if (sig.signer.index >= keys_.size()) return false;
  return sign(sig.signer, digest).tag == sig.tag;
}

}  // namespace amm::crypto
