// SipHash-2-4 (Aumasson & Bernstein) — a keyed 64-bit PRF. We use it both
// as a fast hash for ids/digests and as the core of the simulated signature
// scheme in §4's message-passing substrate.
#pragma once

#include <cstddef>
#include <span>

#include "support/types.hpp"

namespace amm::crypto {

/// 128-bit SipHash key.
struct SipKey {
  u64 k0 = 0;
  u64 k1 = 0;

  constexpr auto operator<=>(const SipKey&) const = default;
};

/// SipHash-2-4 of `data` under `key`.
u64 siphash24(SipKey key, std::span<const std::byte> data);

/// Convenience overload hashing a sequence of 64-bit words.
u64 siphash24(SipKey key, std::span<const u64> words);

}  // namespace amm::crypto
