#include "crypto/siphash.hpp"

#include <cstring>

namespace amm::crypto {
namespace {

constexpr u64 rotl(u64 x, int b) { return (x << b) | (x >> (64 - b)); }

struct SipState {
  u64 v0, v1, v2, v3;

  explicit SipState(SipKey key)
      : v0(0x736f6d6570736575ULL ^ key.k0),
        v1(0x646f72616e646f6dULL ^ key.k1),
        v2(0x6c7967656e657261ULL ^ key.k0),
        v3(0x7465646279746573ULL ^ key.k1) {}

  void round() {
    v0 += v1;
    v1 = rotl(v1, 13);
    v1 ^= v0;
    v0 = rotl(v0, 32);
    v2 += v3;
    v3 = rotl(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = rotl(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = rotl(v1, 17);
    v1 ^= v2;
    v2 = rotl(v2, 32);
  }

  void compress(u64 m) {
    v3 ^= m;
    round();
    round();
    v0 ^= m;
  }

  u64 finalize() {
    v2 ^= 0xff;
    round();
    round();
    round();
    round();
    return v0 ^ v1 ^ v2 ^ v3;
  }
};

}  // namespace

u64 siphash24(SipKey key, std::span<const std::byte> data) {
  SipState st(key);
  const usize n = data.size();
  usize i = 0;
  for (; i + 8 <= n; i += 8) {
    u64 m;
    std::memcpy(&m, data.data() + i, 8);
    st.compress(m);
  }
  // Final block: remaining bytes plus the length in the top byte.
  u64 last = static_cast<u64>(n & 0xff) << 56;
  for (usize j = 0; i + j < n; ++j) {
    last |= static_cast<u64>(std::to_integer<u8>(data[i + j])) << (8 * j);
  }
  st.compress(last);
  return st.finalize();
}

u64 siphash24(SipKey key, std::span<const u64> words) {
  return siphash24(key, std::as_bytes(words));
}

}  // namespace amm::crypto
