#include "crypto/batch.hpp"

#include <unordered_map>
#include <vector>

namespace amm::crypto {

namespace {

/// Distinct triples hash to distinct keys with the same combiner the
/// VerifyCache uses internally, so grouping here matches its granularity.
u64 group_key(const BatchCheck& check) {
  return DigestBuilder{}
      .add(check.digest)
      .add(static_cast<u64>(check.sig.signer.index))
      .add(check.sig.tag)
      .finish();
}

}  // namespace

void verify_batch(VerifyCache& cache, std::span<BatchCheck> checks, ThreadPool* pool,
                  usize min_parallel) {
  // Pre-pass (calling thread): answer from the cache, group the misses so
  // a record carried by several read replies in one cycle verifies once.
  std::unordered_map<u64, usize> group_of;  // group key -> index into `misses`
  struct Miss {
    usize first;  ///< index of the representative check
    bool ok = false;
  };
  std::vector<Miss> misses;
  std::vector<usize> member_group(checks.size());
  std::vector<bool> is_miss(checks.size(), false);
  for (usize i = 0; i < checks.size(); ++i) {
    if (cache.lookup(checks[i].digest, checks[i].sig)) {
      checks[i].ok = true;
      continue;
    }
    const u64 key = group_key(checks[i]);
    const auto [it, inserted] = group_of.try_emplace(key, misses.size());
    if (inserted) misses.push_back(Miss{i});
    member_group[i] = it->second;
    is_miss[i] = true;
  }
  if (misses.empty()) return;

  // Registry sweep: pure const computation, safe to fan out. Each worker
  // writes only its own Miss::ok slot.
  const KeyRegistry& registry = cache.registry();
  const auto verify_one = [&](usize g) {
    const BatchCheck& check = checks[misses[g].first];
    misses[g].ok = registry.verify(check.digest, check.sig);
  };
  if (pool != nullptr && misses.size() >= min_parallel) {
    parallel_for(*pool, misses.size(), verify_one);
  } else {
    for (usize g = 0; g < misses.size(); ++g) verify_one(g);
  }

  // Post-pass (calling thread): admit successes into the cache, spread
  // verdicts back to every member of each group.
  for (usize i = 0; i < checks.size(); ++i) {
    if (!is_miss[i]) continue;
    const Miss& miss = misses[member_group[i]];
    checks[i].ok = miss.ok;
    if (miss.ok && i == miss.first) cache.admit(checks[i].digest, checks[i].sig);
  }
}

}  // namespace amm::crypto
