// Batched signature verification across a transport drain cycle.
//
// The reactor admits frames from every ready session first and verifies
// signatures second, so one cycle's worth of records is checked in a
// single pass instead of one registry call interleaved per frame. The
// batch goes through the VerifyCache — records already seen (broadcast
// delivery, then every read reply that carries them) cost a set lookup —
// and only the cache misses reach the KeyRegistry. With enough misses the
// registry sweep fans out across a ThreadPool: KeyRegistry::verify is
// const and pure, so workers verify concurrently while the cache itself
// is only touched from the calling thread (lookup pre-pass, admit
// post-pass). Failures are never cached, matching VerifyCache::verify —
// forged signatures are re-rejected on every delivery.
#pragma once

#include <span>

#include "crypto/signature.hpp"
#include "support/thread_pool.hpp"

namespace amm::crypto {

/// One deferred signature check. `ok` is the verdict after verify_batch.
struct BatchCheck {
  u64 digest = 0;
  Signature sig;
  bool ok = false;
};

/// Verifies every check in `checks`, setting each `ok` in place.
/// Duplicate (digest, signer, tag) triples are verified once. `pool` may
/// be null (serial); with a pool, the registry sweep parallelizes only
/// when at least `min_parallel` distinct misses remain after the cache
/// pre-pass — below that the dispatch overhead exceeds the hashing.
void verify_batch(VerifyCache& cache, std::span<BatchCheck> checks, ThreadPool* pool,
                  usize min_parallel = 64);

}  // namespace amm::crypto
