// Simulated digital signatures for the message-passing substrate (§4).
//
// The paper assumes unforgeable signatures; a production system would use
// Ed25519. Offline we substitute a MAC-based scheme whose unforgeability is
// *enforced by the simulator*: every node's signing key lives inside the
// KeyRegistry and the Byzantine adversary object is only ever handed the
// verify interface plus its own keys. Within the simulation this gives
// existential unforgeability, which is all the ABD-style proofs need
// (documented as a substitution in DESIGN.md §2).
#pragma once

#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

#include "crypto/siphash.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace amm::crypto {

/// A signature over a message digest; valid only relative to the registry
/// that issued the signer's key.
struct Signature {
  NodeId signer;
  u64 tag = 0;

  constexpr auto operator<=>(const Signature&) const = default;
};

/// Issues one secret key per node and performs sign/verify. The registry is
/// a stand-in for a PKI: verification is public (any holder of the registry
/// reference may verify), signing requires naming a node whose key you are
/// entitled to use — the protocol runner only ever passes Byzantine code a
/// SigningHandle for Byzantine nodes.
class KeyRegistry {
 public:
  KeyRegistry(u32 node_count, u64 seed);

  u32 node_count() const { return static_cast<u32>(keys_.size()); }

  /// Signs `digest` with `signer`'s secret key.
  Signature sign(NodeId signer, u64 digest) const;

  /// Verifies that `sig` is `sig.signer`'s signature over `digest`.
  bool verify(u64 digest, const Signature& sig) const;

 private:
  std::vector<SipKey> keys_;
};

/// Capability handle restricting signing to a fixed subset of nodes.
/// Handed to protocol node implementations so that a Byzantine node cannot
/// sign on behalf of a correct node (the unforgeability substitution).
class SigningHandle {
 public:
  SigningHandle(const KeyRegistry& registry, std::vector<NodeId> allowed)
      : registry_(&registry), allowed_(std::move(allowed)) {}

  Signature sign(NodeId as, u64 digest) const {
    AMM_EXPECTS(is_allowed(as));
    return registry_->sign(as, digest);
  }

  bool verify(u64 digest, const Signature& sig) const { return registry_->verify(digest, sig); }

  bool is_allowed(NodeId id) const {
    for (const NodeId a : allowed_) {
      if (a == id) return true;
    }
    return false;
  }

 private:
  const KeyRegistry* registry_;
  std::vector<NodeId> allowed_;
};

/// Order-sensitive digest combiner (not a cryptographic hash; collision
/// resistance against the simulated adversary is provided by the keyed
/// finalization inside sign()).
class DigestBuilder {
 public:
  DigestBuilder& add(u64 word) {
    words_.push_back(word);
    return *this;
  }

  u64 finish() const {
    // Fixed public key: this is a plain hash; secrecy comes from sign().
    return siphash24(SipKey{0x414d4d2064696765ULL, 0x7374206275696c64ULL}, std::span(words_));
  }

 private:
  std::vector<u64> words_;
};

/// Memoizes *successful* verifications so a record (or ack) that travels
/// through a node several times — broadcast delivery, then every read
/// reply that carries it — pays for one registry verification instead of
/// one per delivery. Keyed by (digest, signer, tag), so a forgery that
/// reuses a verified record's digest with a different signer or tag never
/// hits the cache; negative results are never cached, so forged signatures
/// are re-checked (and re-rejected) on every path. With the simulated
/// signatures the saving is one siphash per delivery; with a real scheme
/// (Ed25519) it would be the difference between ~50 µs and a set lookup.
///
/// Bounded: entries live in two generations (hot, cold). Admissions go to
/// hot; a cold hit promotes back to hot. When hot exceeds capacity/2 the
/// cold generation is dropped and hot becomes cold — a segmented LRU whose
/// working set survives every rotation while entries untouched for two
/// rotations fall out. Total footprint stays <= ~capacity keys. The owning
/// protocol node additionally calls rotate() when it compacts its decided
/// prefix: records folded into a checkpoint are never re-verified, so
/// their verdicts are the first to age out (checkpoint-aware eviction).
class VerifyCache {
 public:
  /// `capacity` bounds hot+cold key count; 0 means unbounded (no rotation
  /// except explicit rotate() calls).
  explicit VerifyCache(const KeyRegistry& registry, usize capacity = kDefaultCapacity)
      : registry_(&registry), capacity_(capacity) {}

  /// Same contract as KeyRegistry::verify, plus memoization of successes.
  bool verify(u64 digest, const Signature& sig) {
    if (lookup(digest, sig)) return true;
    if (!registry_->verify(digest, sig)) return false;
    admit(digest, sig);
    return true;
  }

  /// Cache-only probe: true (counted as a hit) iff this exact (digest,
  /// signer, tag) triple verified successfully before. Never consults the
  /// registry — the pre-pass of crypto::verify_batch, which defers the
  /// registry work for all misses into one (optionally parallel) sweep.
  bool lookup(u64 digest, const Signature& sig) {
    const u64 key = cache_key(digest, sig);
    if (hot_.contains(key)) {
      ++hits_;
      return true;
    }
    if (cold_.erase(key) > 0) {
      insert_hot(key);  // promotion: recently useful entries survive rotation
      ++hits_;
      return true;
    }
    ++misses_;
    return false;
  }

  /// Records a successful registry verification (verify_batch's post-pass;
  /// callers must have actually verified — admitting a forgery would cache
  /// it). Not thread-safe: call from the owning thread only.
  void admit(u64 digest, const Signature& sig) { insert_hot(cache_key(digest, sig)); }

  /// Ages both generations one step: cold is dropped (counted as
  /// evictions), hot becomes cold. Called by the owner after compacting
  /// its decided prefix — folded records never re-verify, so their cached
  /// verdicts are dead weight.
  void rotate() {
    evictions_ += cold_.size();
    cold_ = std::move(hot_);
    hot_.clear();
  }

  /// The registry behind the cache. KeyRegistry::verify is const and pure
  /// (siphash over immutable keys), so batch verification may call it from
  /// worker threads while the cache itself stays single-threaded.
  const KeyRegistry& registry() const { return *registry_; }

  u64 hits() const { return hits_; }
  u64 misses() const { return misses_; }
  u64 evictions() const { return evictions_; }
  usize capacity() const { return capacity_; }
  usize size() const { return hot_.size() + cold_.size(); }

  static constexpr usize kDefaultCapacity = 1u << 16;

 private:
  static u64 cache_key(u64 digest, const Signature& sig) {
    return DigestBuilder{}
        .add(digest)
        .add(static_cast<u64>(sig.signer.index))
        .add(sig.tag)
        .finish();
  }

  void insert_hot(u64 key) {
    hot_.insert(key);
    if (capacity_ != 0 && hot_.size() > capacity_ / 2) rotate();
  }

  const KeyRegistry* registry_;
  usize capacity_;
  std::unordered_set<u64> hot_;
  std::unordered_set<u64> cold_;
  u64 hits_ = 0;
  u64 misses_ = 0;
  u64 evictions_ = 0;
};

}  // namespace amm::crypto
