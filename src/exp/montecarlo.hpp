// Parallel Monte-Carlo trial runner for the experiment harness.
//
// Trials are pure functions of (trial index, private RNG) — no shared
// mutable state (Core Guidelines CP.2/CP.3); results are accumulated into
// thread-local aggregates and merged once at the end, so estimates are
// independent of scheduling and fully reproducible from the master seed.
#pragma once

#include <functional>
#include <mutex>
#include <vector>

#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"

namespace amm::exp {

/// Estimates Pr[trial succeeds] over `trials` independent runs.
inline BernoulliEstimate estimate_rate(ThreadPool& pool, u64 master_seed, usize trials,
                                       const std::function<bool(usize, Rng&)>& trial) {
  std::mutex merge_mutex;
  BernoulliEstimate total;
  if (trials == 0) return total;
  const usize chunks = std::min<usize>(trials, pool.size() * 4);
  const usize per_chunk = (trials + chunks - 1) / chunks;
  for (usize c = 0; c < chunks; ++c) {
    const usize lo = c * per_chunk;
    const usize hi = std::min(trials, lo + per_chunk);
    if (lo >= hi) break;
    pool.submit([&, lo, hi] {
      BernoulliEstimate local;
      for (usize i = lo; i < hi; ++i) {
        Rng rng = Rng::for_stream(master_seed, i);
        local.add(trial(i, rng));
      }
      std::scoped_lock lock(merge_mutex);
      total.merge(local);
    });
  }
  pool.wait_idle();
  return total;
}

/// Streams a real-valued statistic over `trials` independent runs.
inline RunningStats collect_stats(ThreadPool& pool, u64 master_seed, usize trials,
                                  const std::function<double(usize, Rng&)>& trial) {
  std::mutex merge_mutex;
  RunningStats total;
  if (trials == 0) return total;
  const usize chunks = std::min<usize>(trials, pool.size() * 4);
  const usize per_chunk = (trials + chunks - 1) / chunks;
  for (usize c = 0; c < chunks; ++c) {
    const usize lo = c * per_chunk;
    const usize hi = std::min(trials, lo + per_chunk);
    if (lo >= hi) break;
    pool.submit([&, lo, hi] {
      RunningStats local;
      for (usize i = lo; i < hi; ++i) {
        Rng rng = Rng::for_stream(master_seed, i);
        local.add(trial(i, rng));
      }
      std::scoped_lock lock(merge_mutex);
      total.merge(local);
    });
  }
  pool.wait_idle();
  return total;
}

}  // namespace amm::exp
