// Parallel Monte-Carlo trial runner for the experiment harness.
//
// Trials are pure functions of (trial index, private RNG) — no shared
// mutable state (Core Guidelines CP.2/CP.3); results are accumulated into
// thread-local aggregates and merged once at the end, so estimates are
// independent of scheduling and fully reproducible from the master seed.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>

#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"

namespace amm::exp {
namespace detail {

/// Runs `trials` independent trials with *dynamic* scheduling: one worker
/// per pool thread, each pulling the next trial index from a shared atomic
/// counter. Trial durations are heavily skewed (a withholding adversary can
/// make one trial run orders of magnitude longer than an honest one), so
/// static contiguous chunks serialize on whichever chunk drew the slow
/// trials; with work stealing from a counter the imbalance is at most one
/// trial. Results stay scheduling-independent because each trial's RNG is
/// derived from (master seed, trial index) alone and the accumulator merge
/// is associative over per-worker partials.
template <typename Acc, typename PerTrial>
Acc run_trials(ThreadPool& pool, usize trials, const PerTrial& per_trial) {
  Acc total;
  if (trials == 0) return total;
  std::mutex merge_mutex;
  std::atomic<usize> next{0};
  const usize workers = std::min<usize>(trials, pool.size());
  for (usize w = 0; w < workers; ++w) {
    pool.submit([&total, &merge_mutex, &next, trials, &per_trial] {
      Acc local;
      for (usize i = next.fetch_add(1, std::memory_order_relaxed); i < trials;
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        per_trial(i, local);
      }
      std::scoped_lock lock(merge_mutex);
      total.merge(local);
    });
  }
  // All captured locals outlive the workers: wait_idle() blocks until the
  // last submitted task has finished.
  pool.wait_idle();
  return total;
}

}  // namespace detail

/// Estimates Pr[trial succeeds] over `trials` independent runs.
inline BernoulliEstimate estimate_rate(ThreadPool& pool, u64 master_seed, usize trials,
                                       const std::function<bool(usize, Rng&)>& trial) {
  return detail::run_trials<BernoulliEstimate>(
      pool, trials, [master_seed, &trial](usize i, BernoulliEstimate& acc) {
        Rng rng = Rng::for_stream(master_seed, i);
        acc.add(trial(i, rng));
      });
}

/// Streams a real-valued statistic over `trials` independent runs.
inline RunningStats collect_stats(ThreadPool& pool, u64 master_seed, usize trials,
                                  const std::function<double(usize, Rng&)>& trial) {
  return detail::run_trials<RunningStats>(pool, trials,
                                          [master_seed, &trial](usize i, RunningStats& acc) {
                                            Rng rng = Rng::for_stream(master_seed, i);
                                            acc.add(trial(i, rng));
                                          });
}

}  // namespace amm::exp
