// Shared experiment-binary plumbing: canonical CLI flags, banner printing
// and table emission, so every exp_* target behaves identically.
//
// Common flags:
//   --trials N    Monte-Carlo trials per configuration (default per-exp)
//   --seed S      master seed (default 20200715 — the SPAA'20 date)
//   --threads T   worker threads (default: hardware)
//   --csv         emit CSV instead of the ASCII table
#pragma once

#include <iostream>
#include <string>

#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace amm::exp {

struct Harness {
  Harness(int argc, const char* const* argv, const std::string& title, usize default_trials)
      : args(argc, argv),
        trials(static_cast<usize>(args.get_int("trials", static_cast<i64>(default_trials)))),
        seed(static_cast<u64>(args.get_int("seed", 20200715))),
        pool(static_cast<unsigned>(args.get_int("threads", 0))),
        csv(args.has_flag("csv")) {
    if (!csv) {
      std::cout << "== " << title << " ==\n"
                << "trials/config=" << trials << " seed=" << seed << " threads=" << pool.size()
                << "\n\n";
    }
  }

  void emit(const Table& table, const std::string& caption = "") {
    if (csv) {
      table.print_csv(std::cout);
    } else {
      if (!caption.empty()) std::cout << caption << "\n";
      table.print(std::cout);
      std::cout << "\n";
    }
  }

  CliArgs args;
  usize trials;
  u64 seed;
  ThreadPool pool;
  bool csv;
};

}  // namespace amm::exp
