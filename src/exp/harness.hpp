// Shared experiment-binary plumbing: canonical CLI flags, banner printing
// and table emission, so every exp_* target behaves identically.
//
// Common flags:
//   --trials N    Monte-Carlo trials per configuration (default per-exp)
//   --seed S      master seed (default 20200715 — the SPAA'20 date)
//   --threads T   worker threads (default: hardware)
//   --csv         emit CSV instead of the ASCII table
//   --json FILE   additionally write every emitted table to FILE as JSON
//                 (machine-readable summary; aggregated by collect_bench.py)
#pragma once

#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace amm::exp {

struct Harness {
  Harness(int argc, const char* const* argv, const std::string& title, usize default_trials)
      : args(argc, argv),
        trials(static_cast<usize>(args.get_int("trials", static_cast<i64>(default_trials)))),
        seed(static_cast<u64>(args.get_int("seed", 20200715))),
        pool(static_cast<unsigned>(args.get_int("threads", 0))),
        csv(args.has_flag("csv")),
        json_path(args.get_string("json", "")),
        title_(title) {
    if (!csv) {
      std::cout << "== " << title << " ==\n"
                << "trials/config=" << trials << " seed=" << seed << " threads=" << pool.size()
                << "\n\n";
    }
  }

  ~Harness() { write_json(); }

  Harness(const Harness&) = delete;
  Harness& operator=(const Harness&) = delete;

  void emit(const Table& table, const std::string& caption = "") {
    if (csv) {
      table.print_csv(std::cout);
    } else {
      if (!caption.empty()) std::cout << caption << "\n";
      table.print(std::cout);
      std::cout << "\n";
    }
    if (!json_path.empty()) collected_.emplace_back(caption, table);
  }

  CliArgs args;
  usize trials;
  u64 seed;
  ThreadPool pool;
  bool csv;
  std::string json_path;

 private:
  /// One JSON document per run: run parameters plus every emitted table,
  /// in emission order. Written at destruction so a binary that emits
  /// several tables still produces a single well-formed file.
  void write_json() const {
    if (json_path.empty()) return;
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "warning: cannot write --json file " << json_path << "\n";
      return;
    }
    out << "{\"title\":\"" << json_escape(title_) << "\",\"seed\":" << seed
        << ",\"trials\":" << trials << ",\"tables\":[";
    for (usize i = 0; i < collected_.size(); ++i) {
      if (i > 0) out << ',';
      out << "{\"caption\":\"" << json_escape(collected_[i].first) << "\",\"table\":";
      collected_[i].second.print_json(out);
      out << '}';
    }
    out << "]}\n";
  }

  std::string title_;
  std::vector<std::pair<std::string, Table>> collected_;
};

}  // namespace amm::exp
