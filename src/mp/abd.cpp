#include "mp/abd.hpp"

namespace amm::mp {

AbdNode::AbdNode(NodeId id, Transport& net, const crypto::KeyRegistry& keys)
    : id_(id), net_(&net), keys_(&keys), quorum_(net.node_count() / 2 + 1) {
  net_->attach(id_, [this](NodeId from, const WireMessage& msg) { handle(from, msg); });
}

void AbdNode::begin_append(i64 value, std::function<void()> done) {
  AMM_EXPECTS(!pending_append_.has_value());  // one outstanding op at a time
  SignedAppend rec;
  rec.author = id_;
  rec.seq = next_seq_++;
  rec.value = value;
  rec.sig = keys_->sign(id_, rec.digest());

  pending_append_ = PendingAppend{rec.digest(), {}, std::move(done)};

  WireMessage msg;
  msg.kind = WireMessage::Kind::kAppend;
  msg.append = rec;
  net_->broadcast(id_, msg);
}

void AbdNode::begin_read(std::function<void(const std::vector<SignedAppend>&)> done) {
  const u64 rid = (static_cast<u64>(id_.index) << 40) | next_read_id_++;
  pending_reads_.emplace(rid, PendingRead{{}, std::move(done), false});

  WireMessage msg;
  msg.kind = WireMessage::Kind::kReadReq;
  msg.read_id = rid;
  net_->broadcast(id_, msg);
}

void AbdNode::admit(const SignedAppend& rec) {
  const u64 d = rec.digest();
  if (known_.contains(d)) return;
  known_.insert(d);
  view_.push_back(rec);
}

void AbdNode::handle(NodeId from, const WireMessage& msg) {
  switch (msg.kind) {
    case WireMessage::Kind::kAppend: {
      // Verify the author's signature; a Byzantine relay cannot forge a
      // correct author's record (Lemma 4.1).
      if (!keys_->verify(msg.append.digest(), msg.append.sig)) return;
      if (msg.append.sig.signer != msg.append.author) return;
      admit(msg.append);
      WireMessage ack;
      ack.kind = WireMessage::Kind::kAck;
      ack.append = msg.append;
      ack.ack_sig = keys_->sign(id_, msg.append.digest());
      net_->send(id_, msg.append.author, std::move(ack));
      break;
    }
    case WireMessage::Kind::kAck: {
      if (!pending_append_ || msg.append.digest() != pending_append_->digest) return;
      if (!keys_->verify(msg.append.digest(), msg.ack_sig)) return;
      pending_append_->ackers.insert(msg.ack_sig.signer.index);
      if (pending_append_->ackers.size() >= quorum_) {
        auto done = std::move(pending_append_->done);
        pending_append_.reset();
        if (done) done();
      }
      break;
    }
    case WireMessage::Kind::kReadReq: {
      WireMessage reply;
      reply.kind = WireMessage::Kind::kReadReply;
      reply.read_id = msg.read_id;
      reply.view = view_;  // full local view, as Algorithm 3 specifies
      net_->send(id_, from, std::move(reply));
      break;
    }
    case WireMessage::Kind::kReadReply: {
      const auto it = pending_reads_.find(msg.read_id);
      if (it == pending_reads_.end() || it->second.finished) return;
      // Merge every validly signed record (Algorithm 3 line 6).
      for (const SignedAppend& rec : msg.view) {
        if (rec.sig.signer == rec.author && keys_->verify(rec.digest(), rec.sig)) {
          admit(rec);
        }
      }
      it->second.responders.insert(from.index);
      if (it->second.responders.size() >= quorum_) {
        it->second.finished = true;
        auto done = std::move(it->second.done);
        pending_reads_.erase(it);
        if (done) done(view_);
      }
      break;
    }
  }
}

ForgerNode::ForgerNode(NodeId id, NodeId victim, Transport& net, const crypto::KeyRegistry& keys)
    : id_(id), victim_(victim), net_(&net), keys_(&keys) {
  net_->attach(id_, [this](NodeId from, const WireMessage& msg) {
    switch (msg.kind) {
      case WireMessage::Kind::kAppend: {
        // React only to genuine appends from others — not to our own
        // injections echoed back by the broadcast self-delivery (that would
        // loop forever) — and stop after a bounded number of forgeries.
        if (msg.append.sig.signer != msg.append.author ||
            !keys_->verify(msg.append.digest(), msg.append.sig) || forged_ > 64) {
          return;
        }
        // Ack (so it cannot be blamed for liveness) but also inject a
        // forged record in the victim's name: signed with the forger's own
        // key, because the victim's key is out of reach — the registry
        // hands Byzantine code no other capability.
        WireMessage ack;
        ack.kind = WireMessage::Kind::kAck;
        ack.append = msg.append;
        ack.ack_sig = keys_->sign(id_, msg.append.digest());
        net_->send(id_, msg.append.author, std::move(ack));

        SignedAppend fake;
        fake.author = victim_;
        fake.seq = 1'000'000 + forged_++;
        fake.value = -42;
        fake.sig = keys_->sign(id_, fake.digest());  // signer != author: invalid
        WireMessage inject;
        inject.kind = WireMessage::Kind::kAppend;
        inject.append = fake;
        net_->broadcast(id_, inject);
        break;
      }
      case WireMessage::Kind::kReadReq: {
        // Reply with a view containing one more forgery.
        SignedAppend fake;
        fake.author = victim_;
        fake.seq = 2'000'000 + forged_++;
        fake.value = -43;
        fake.sig = keys_->sign(id_, fake.digest());
        WireMessage reply;
        reply.kind = WireMessage::Kind::kReadReply;
        reply.read_id = msg.read_id;
        reply.view.push_back(fake);
        net_->send(id_, from, std::move(reply));
        break;
      }
      default:
        break;
    }
  });
}

}  // namespace amm::mp
