#include "mp/abd.hpp"

#include <algorithm>

namespace amm::mp {

AbdNode::AbdNode(NodeId id, Transport& net, const crypto::KeyRegistry& keys, AbdConfig config)
    : id_(id),
      net_(&net),
      keys_(&keys),
      verifier_(keys, config.verify_cache_cap),
      config_(config),
      builder_(keys.node_count()),
      quorum_(net.node_count() / 2 + 1),
      watermark_(keys.node_count(), 0),
      parked_(keys.node_count()) {
  AMM_EXPECTS(config_.max_pipeline >= 1);
  AMM_EXPECTS(config_.compact.quantum >= 1);
  // The empty checkpoint is served to kCheckpointReq like any other, so it
  // carries a valid signature from birth.
  checkpoint_.sig = keys_->sign(id_, checkpoint_.digest());
  net_->attach(id_, [this](NodeId from, const WireMessage& msg) { handle(from, msg); });
}

u32 AbdNode::stability_cut() const {
  return watermark_.empty() ? 0 : *std::min_element(watermark_.begin(), watermark_.end());
}

u32 AbdNode::auto_cut() const {
  const u32 stable = stability_cut();
  const u32 lagged = stable > config_.compact.lag ? stable - config_.compact.lag : 0;
  // Quantized so nodes with agreeing watermarks fold to byte-identical
  // checkpoints (checkpoint sync compares them structurally).
  return lagged - lagged % config_.compact.quantum;
}

void AbdNode::compact_below(u32 s_cut) {
  s_cut = std::min(s_cut, stability_cut());
  if (s_cut <= checkpoint_.folded_below) return;
  stats_.records_folded += builder_.extend(checkpoint_, view_, s_cut);
  checkpoint_.sig = keys_->sign(id_, checkpoint_.digest());
  ++stats_.compactions;
  if (!config_.compact.retain_records) {
    // Summary mode: the folded bodies are summarized by the checkpoint;
    // drop them. erase_if keeps the suffix in arrival order.
    std::erase_if(view_, [s_cut](const SignedAppend& r) { return r.seq < s_cut; });
  }
  // parked_ only ever holds seqs above the watermark (>= the cut), so
  // there is nothing to prune there; the verify cache ages a generation —
  // folded records are never re-verified, so their verdicts die first.
  verifier_.rotate();
}

void AbdNode::maybe_auto_compact() {
  if (!config_.compact.enabled || config_.compact.auto_interval == 0) return;
  if (++admits_since_compact_ < config_.compact.auto_interval) return;
  admits_since_compact_ = 0;
  const u32 cut = auto_cut();
  if (cut > checkpoint_.folded_below) compact_below(cut);
}

void AbdNode::begin_append(i64 value, std::function<void()> done) {
  if (pending_appends_.size() >= config_.max_pipeline) {
    append_backlog_.push_back(QueuedAppend{value, std::move(done)});
    return;
  }
  launch_append(value, std::move(done));
}

void AbdNode::launch_append(i64 value, std::function<void()> done) {
  SignedAppend rec;
  rec.author = id_;
  rec.seq = next_seq_++;
  rec.value = value;
  rec.sig = keys_->sign(id_, rec.digest());

  pending_appends_.emplace(rec.digest(), PendingAppend{{}, std::move(done)});

  WireMessage msg;
  msg.kind = WireMessage::Kind::kAppend;
  msg.append = rec;
  net_->broadcast(id_, msg);
}

std::vector<FrontierEntry> AbdNode::make_frontier() const {
  std::vector<FrontierEntry> frontier;
  for (u32 a = 0; a < watermark_.size(); ++a) {
    if (watermark_[a] > 0) frontier.push_back(FrontierEntry{NodeId{a}, watermark_[a]});
  }
  return frontier;
}

void AbdNode::begin_read(std::function<void(const std::vector<SignedAppend>&)> done) {
  const u64 rid = (static_cast<u64>(id_.index) << 40) | next_read_id_++;

  WireMessage msg;
  msg.kind = WireMessage::Kind::kReadReq;
  msg.read_id = rid;
  if (config_.delta_reads) msg.frontier = make_frontier();
  // With delta_reads off the frontier stays empty, so responders — whose
  // code never branches on the mode — return their full view (Alg. 3).

  pending_reads_.emplace(
      rid, PendingRead{{}, std::move(done), false, false, frontier_digest(msg.frontier)});
  net_->broadcast(id_, msg);
}

void AbdNode::admit(const SignedAppend& rec) {
  const u32 a = rec.author.index;
  // Out-of-registry authors can never verify (KeyRegistry bounds-checks
  // the signer), so this is unreachable from the handler; reject outright.
  if (a >= watermark_.size()) return;
  // Dedup: only verified records reach this point and the simulated
  // signatures are existentially unforgeable, so (author, seq) identifies
  // the record — held iff below the contiguous prefix or parked.
  if (rec.seq < watermark_[a] || parked_[a].contains(rec.seq)) return;
  if (rec.seq > watermark_[a]) {
    // Out of order (gathered by a read merge before the author's own
    // broadcast arrived): park until the prefix catches up. The park set
    // is bounded; beyond the cap admission is refused entirely — the
    // record stays above our advertised frontier, so a later delta read
    // re-fetches it once the prefix advances.
    if (config_.compact.parked_cap != 0 && parked_[a].size() >= config_.compact.parked_cap) {
      ++stats_.parked_rejects;
      return;
    }
    parked_[a].insert(rec.seq);
    view_.push_back(rec);
    persist(rec);
    maybe_auto_compact();
    return;
  }
  // rec.seq == watermark_[a]: the contiguous prefix grows.
  view_.push_back(rec);
  persist(rec);
  ++watermark_[a];
  while (parked_[a].erase(watermark_[a]) > 0) ++watermark_[a];
  maybe_auto_compact();
}

void AbdNode::persist(const SignedAppend& rec) {
  // During recovery the admissions *come from* the log — re-appending them
  // would duplicate the suffix on every restart.
  if (config_.storage == nullptr || recovering_) return;
  config_.storage->append(rec);
  if (config_.snapshot_interval != 0 &&
      ++admits_since_snapshot_ >= config_.snapshot_interval) {
    admits_since_snapshot_ = 0;
    write_snapshot();
  }
}

void AbdNode::write_snapshot() {
  if (config_.storage == nullptr) return;
  Snapshot snap;
  snap.log_seq = config_.storage->log_seq();
  snap.next_seq = next_seq_;
  snap.watermarks = watermark_;
  snap.checkpoint = checkpoint_;
  snap.live = view_;
  snap.sig = keys_->sign(id_, snap.digest());
  if (config_.storage->write_snapshot(snap)) ++stats_.snapshots_written;
}

u64 AbdNode::recover_from_storage() {
  if (config_.storage == nullptr) return 0;
  Storage& store = *config_.storage;
  u64 replay_from = 0;
  if (const auto snap = store.load_snapshot()) {
    // Only our own signature over the full contents makes a snapshot
    // trustworthy — anything else (tamper, another node's store, registry
    // mismatch) falls back to replaying the whole retained log, which is
    // slower but never wrong.
    if (snap->sig.signer == id_ && keys_->verify(snap->digest(), snap->sig) &&
        snap->watermarks.size() == watermark_.size() && builder_.well_formed(snap->checkpoint)) {
      checkpoint_ = snap->checkpoint;
      watermark_ = snap->watermarks;
      next_seq_ = snap->next_seq;
      view_ = snap->live;
      // parked_ is derived state: a live record at or above its author's
      // watermark is exactly an out-of-order (parked) record.
      // analyze:allow(determinism-taint): clears every element — order cannot matter
      for (auto& parked : parked_) parked.clear();
      for (const SignedAppend& rec : view_) {
        if (rec.author.index < watermark_.size() && rec.seq >= watermark_[rec.author.index]) {
          parked_[rec.author.index].insert(rec.seq);
        }
      }
      // A snapshot written mid-admission (persist runs before the watermark
      // advance) can hold a live record its watermark had not absorbed yet;
      // normalize, or that author's frontier would be pinned below a record
      // we already hold, forever.
      for (usize a = 0; a < watermark_.size(); ++a) {
        while (parked_[a].erase(watermark_[a]) > 0) ++watermark_[a];
      }
      replay_from = snap->log_seq;
    }
  }
  recovering_ = true;
  const u64 replayed = store.replay(replay_from, [this](const SignedAppend& rec) {
    // The log only ever held verified records, but the disk is outside the
    // trust boundary — recovery re-verifies exactly like the wire path.
    if (rec.sig.signer == rec.author && verifier_.verify(rec.digest(), rec.sig)) {
      admit(rec);
    }
  });
  recovering_ = false;
  stats_.recovery_replayed_records += replayed;
  // Never reuse one of our own seqs: the log may hold appends whose quorum
  // completion we never observed before the crash.
  next_seq_ = std::max(next_seq_, watermark_[id_.index]);
  // analyze:allow(determinism-taint): commutative max fold — order cannot matter
  for (const u32 s : parked_[id_.index]) next_seq_ = std::max(next_seq_, s + 1);
  return replayed;
}

void AbdNode::handle(NodeId from, const WireMessage& msg) {
  switch (msg.kind) {
    case WireMessage::Kind::kAppend: {
      // Verify the author's signature; a Byzantine relay cannot forge a
      // correct author's record (Lemma 4.1).
      if (!verifier_.verify(msg.append.digest(), msg.append.sig)) return;
      if (msg.append.sig.signer != msg.append.author) return;
      admit(msg.append);
      WireMessage ack;
      ack.kind = WireMessage::Kind::kAck;
      ack.append = msg.append;
      ack.ack_sig = keys_->sign(id_, msg.append.digest());
      net_->send(id_, msg.append.author, std::move(ack));
      break;
    }
    case WireMessage::Kind::kAck: {
      const auto it = pending_appends_.find(msg.append.digest());
      if (it == pending_appends_.end()) return;
      if (!verifier_.verify(msg.append.digest(), msg.ack_sig)) return;
      it->second.ackers.insert(msg.ack_sig.signer.index);
      if (it->second.ackers.size() >= quorum_) {
        auto done = std::move(it->second.done);
        pending_appends_.erase(it);
        if (!append_backlog_.empty()) {
          QueuedAppend next = std::move(append_backlog_.front());
          append_backlog_.pop_front();
          launch_append(next.value, std::move(next.done));
        }
        if (done) done();
      }
      break;
    }
    case WireMessage::Kind::kReadReq: {
      // Per-author watermark requested by the reader; an empty frontier
      // (legacy mode, first read, or full-read fallback) requests all.
      std::vector<u32> wm(watermark_.size(), 0);
      for (const FrontierEntry& e : msg.frontier) {
        if (e.author.index < wm.size()) wm[e.author.index] = std::max(wm[e.author.index], e.seq);
      }
      WireMessage reply;
      reply.kind = WireMessage::Kind::kReadReply;
      reply.read_id = msg.read_id;
      reply.frontier_echo = frontier_digest(msg.frontier);
      for (const SignedAppend& rec : view_) {
        if (rec.author.index >= wm.size() || rec.seq >= wm[rec.author.index]) {
          reply.view.push_back(rec);
        }
      }
      if (msg.frontier.empty()) {
        ++stats_.reads_served_full;
      } else {
        ++stats_.reads_served_delta;
      }
      stats_.read_records_sent += reply.view.size();
      net_->send(id_, from, std::move(reply));
      break;
    }
    case WireMessage::Kind::kReadReply: {
      const auto it = pending_reads_.find(msg.read_id);
      if (it == pending_reads_.end() || it->second.finished) return;
      PendingRead& pr = it->second;
      if (msg.frontier_echo != pr.expected_echo) {
        // The responder answered a frontier we did not send: divergence
        // (corruption or adversary). Fall back to one full read with the
        // same read id; in-flight replies to the old frontier are then
        // ignored by the same echo check.
        if (!pr.fell_back) {
          pr.fell_back = true;
          pr.responders.clear();
          ++stats_.read_fallbacks;
          WireMessage retry;
          retry.kind = WireMessage::Kind::kReadReq;
          retry.read_id = msg.read_id;
          pr.expected_echo = frontier_digest(retry.frontier);  // empty frontier
          net_->broadcast(id_, retry);
        }
        return;
      }
      // Merge every validly signed record (Algorithm 3 line 6). A delta
      // reply is a subsequence of the responder's view containing every
      // record above our watermark — i.e. everything we could be missing —
      // so the merged result is identical to the full-view merge.
      for (const SignedAppend& rec : msg.view) {
        if (rec.sig.signer == rec.author && verifier_.verify(rec.digest(), rec.sig)) {
          admit(rec);
        }
      }
      pr.responders.insert(from.index);
      if (pr.responders.size() >= quorum_) {
        pr.finished = true;
        auto done = std::move(pr.done);
        pending_reads_.erase(it);
        if (done) done(view_);
      }
      break;
    }
    case WireMessage::Kind::kCheckpointReq: {
      // Serve the freshest cut we can vouch for: advance our own
      // checkpoint to the quantized stability cut first (a pure local
      // fold — no messages), so nodes whose watermarks agree answer with
      // byte-identical checkpoints and the requester's quorum match can
      // succeed. With compaction off the checkpoint stays empty, which
      // all non-compacting nodes also agree on.
      if (config_.compact.enabled) {
        const u32 cut = auto_cut();
        if (cut > checkpoint_.folded_below) compact_below(cut);
      }
      WireMessage reply;
      reply.kind = WireMessage::Kind::kCheckpointReply;
      reply.read_id = msg.read_id;
      reply.checkpoint = checkpoint_;
      net_->send(id_, from, std::move(reply));
      break;
    }
    case WireMessage::Kind::kCheckpointReply: {
      const auto it = pending_syncs_.find(msg.read_id);
      if (it == pending_syncs_.end()) return;
      PendingSync& ps = it->second;
      const Checkpoint& cp = msg.checkpoint;
      // The reply must be vouched for by the responder itself: a relay or
      // forger cannot re-sign another node's checkpoint (Lemma 4.1), and
      // a malformed summary fails the shape check before any comparison.
      if (cp.sig.signer != from) return;
      if (!verifier_.verify(cp.digest(), cp.sig)) return;
      if (!builder_.well_formed(cp)) return;
      for (const auto& [peer, prev] : ps.replies) {
        if (peer == from.index) return;  // one reply per responder counts
      }
      ps.replies.emplace_back(from.index, cp);
      // Adopt the first checkpoint that >= quorum responders agree on
      // structurally. A lying minority (forged chains, inflated cut)
      // disagrees with every honest reply, so it can neither win the vote
      // nor block it while a correct quorum responds.
      for (const auto& [peer, cand] : ps.replies) {
        u32 agree = 0;
        for (const auto& [p2, other] : ps.replies) {
          if (other.structurally_equal(cand)) ++agree;
        }
        if (agree < quorum_) continue;
        // Copy out before erasing the pending sync: `cand` borrows from it.
        const Checkpoint agreed = cand;
        auto done = std::move(ps.done);
        pending_syncs_.erase(it);
        adopt_checkpoint(agreed);
        ++stats_.checkpoint_syncs;
        if (done) done(true);
        return;
      }
      break;
    }
  }
}

void AbdNode::begin_checkpoint_sync(std::function<void(bool)> done) {
  const u64 rid = (static_cast<u64>(id_.index) << 40) | next_read_id_++;
  pending_syncs_.emplace(rid, PendingSync{{}, std::move(done)});
  WireMessage msg;
  msg.kind = WireMessage::Kind::kCheckpointReq;
  msg.read_id = rid;
  net_->broadcast(id_, msg);
}

void AbdNode::adopt_checkpoint(const Checkpoint& cp) {
  if (cp.folded_below <= checkpoint_.folded_below) return;
  // Only a summary-mode node treats the agreed checkpoint as history it
  // holds: its peers have dropped the folded bodies, so the summary *is*
  // the prefix. Retain mode and compaction-off keep gathering full bodies
  // through the ordinary read path — for them the sync is a cross-check.
  if (!config_.compact.enabled || config_.compact.retain_records) return;
  checkpoint_ = cp;
  checkpoint_.sig = keys_->sign(id_, checkpoint_.digest());  // re-issue under our key
  // Bodies below the cut are summarized now; drop any we hold, jump the
  // watermarks to the cut, and let parked seqs right at the cut extend the
  // prefix as usual.
  std::erase_if(view_, [&](const SignedAppend& r) { return r.seq < cp.folded_below; });
  for (u32 a = 0; a < watermark_.size(); ++a) {
    if (watermark_[a] < cp.folded_below) watermark_[a] = cp.folded_below;
    std::erase_if(parked_[a], [&](u32 s) { return s < cp.folded_below; });
    while (parked_[a].erase(watermark_[a]) > 0) ++watermark_[a];
  }
  // The watermark jump is not represented by any log record: a crash after
  // this point would replay a log with a hole below the fold. Snapshot now
  // so the adopted checkpoint is what recovery starts from.
  if (config_.storage != nullptr) write_snapshot();
}

ForgerNode::ForgerNode(NodeId id, NodeId victim, Transport& net, const crypto::KeyRegistry& keys)
    : id_(id), victim_(victim), net_(&net), keys_(&keys) {
  net_->attach(id_, [this](NodeId from, const WireMessage& msg) {
    switch (msg.kind) {
      case WireMessage::Kind::kAppend: {
        // React only to genuine appends from others — not to our own
        // injections echoed back by the broadcast self-delivery (that would
        // loop forever) — and stop after a bounded number of forgeries.
        if (msg.append.sig.signer != msg.append.author ||
            !keys_->verify(msg.append.digest(), msg.append.sig) || forged_ > 64) {
          return;
        }
        if (replay_pool_.size() < 256) replay_pool_.push_back(msg.append);
        // Ack (so it cannot be blamed for liveness) but also inject a
        // forged record in the victim's name: signed with the forger's own
        // key, because the victim's key is out of reach — the registry
        // hands Byzantine code no other capability.
        WireMessage ack;
        ack.kind = WireMessage::Kind::kAck;
        ack.append = msg.append;
        ack.ack_sig = keys_->sign(id_, msg.append.digest());
        net_->send(id_, msg.append.author, std::move(ack));

        SignedAppend fake;
        fake.author = victim_;
        fake.seq = 1'000'000 + forged_++;
        fake.value = -42;
        fake.sig = keys_->sign(id_, fake.digest());  // signer != author: invalid
        WireMessage inject;
        inject.kind = WireMessage::Kind::kAppend;
        inject.append = fake;
        net_->broadcast(id_, inject);
        break;
      }
      case WireMessage::Kind::kReadReq: {
        // Echo the frontier digest correctly (a wrong echo would merely
        // trigger the reader's full-read fallback; this attack is nastier:
        // a well-formed delta reply whose payload lies). The view carries
        // one above-frontier forgery plus replays of genuine records from
        // *below* the reader's frontier — records the reader already holds.
        // Correct readers must reject the forgery (Lemma 4.1) and
        // deduplicate the replays without any view corruption.
        std::vector<u32> wm;
        for (const FrontierEntry& e : msg.frontier) {
          if (e.author.index >= wm.size()) wm.resize(e.author.index + 1, 0);
          wm[e.author.index] = std::max(wm[e.author.index], e.seq);
        }
        WireMessage reply;
        reply.kind = WireMessage::Kind::kReadReply;
        reply.read_id = msg.read_id;
        reply.frontier_echo = frontier_digest(msg.frontier);
        SignedAppend fake;
        fake.author = victim_;
        fake.seq = 2'000'000 + forged_++;  // far above any honest watermark
        fake.value = -43;
        fake.sig = keys_->sign(id_, fake.digest());
        reply.view.push_back(fake);
        for (const SignedAppend& rec : replay_pool_) {
          if (rec.author.index < wm.size() && rec.seq < wm[rec.author.index]) {
            reply.view.push_back(rec);  // below-frontier replay
          }
        }
        net_->send(id_, from, std::move(reply));
        break;
      }
      case WireMessage::Kind::kCheckpointReq: {
        // Answer with a *lie*: a shape-valid checkpoint claiming a history
        // that never happened, signed with the forger's own key (the only
        // one it holds — so the signature itself verifies and signer ==
        // sender passes). Nothing about the reply is locally rejectable;
        // the requester survives only because a quorum of honest replies
        // agrees with each other and not with this one.
        const u32 authors = keys_->node_count();
        WireMessage reply;
        reply.kind = WireMessage::Kind::kCheckpointReply;
        reply.read_id = msg.read_id;
        Checkpoint& lie = reply.checkpoint;
        lie.folded_below = 7;
        lie.chains.resize(authors);
        for (u32 a = 0; a < authors; ++a) {
          lie.chains[a] = crypto::DigestBuilder{}.add(0xbadULL).add(a).finish();
        }
        lie.folded_records = static_cast<u64>(lie.folded_below) * authors;
        lie.vote_sum = -static_cast<i64>(lie.folded_records);  // all-minus: flips Alg. 6
        lie.sig = keys_->sign(id_, lie.digest());
        net_->send(id_, from, std::move(reply));
        break;
      }
      // The forger deliberately ignores acks, read replies and checkpoint
      // replies: it never appends or syncs honestly, so none of these
      // advances its attack. Spelled out per kind so a future message kind
      // fails to compile here instead of being silently dropped.
      case WireMessage::Kind::kAck:
      case WireMessage::Kind::kReadReply:
      case WireMessage::Kind::kCheckpointReply:
        break;
    }
  });
}

}  // namespace amm::mp
