#include "mp/abd.hpp"

#include <algorithm>

namespace amm::mp {

AbdNode::AbdNode(NodeId id, Transport& net, const crypto::KeyRegistry& keys, AbdConfig config)
    : id_(id),
      net_(&net),
      keys_(&keys),
      verifier_(keys),
      config_(config),
      quorum_(net.node_count() / 2 + 1),
      watermark_(keys.node_count(), 0),
      parked_(keys.node_count()) {
  AMM_EXPECTS(config_.max_pipeline >= 1);
  net_->attach(id_, [this](NodeId from, const WireMessage& msg) { handle(from, msg); });
}

void AbdNode::begin_append(i64 value, std::function<void()> done) {
  if (pending_appends_.size() >= config_.max_pipeline) {
    append_backlog_.push_back(QueuedAppend{value, std::move(done)});
    return;
  }
  launch_append(value, std::move(done));
}

void AbdNode::launch_append(i64 value, std::function<void()> done) {
  SignedAppend rec;
  rec.author = id_;
  rec.seq = next_seq_++;
  rec.value = value;
  rec.sig = keys_->sign(id_, rec.digest());

  pending_appends_.emplace(rec.digest(), PendingAppend{{}, std::move(done)});

  WireMessage msg;
  msg.kind = WireMessage::Kind::kAppend;
  msg.append = rec;
  net_->broadcast(id_, msg);
}

std::vector<FrontierEntry> AbdNode::make_frontier() const {
  std::vector<FrontierEntry> frontier;
  for (u32 a = 0; a < watermark_.size(); ++a) {
    if (watermark_[a] > 0) frontier.push_back(FrontierEntry{NodeId{a}, watermark_[a]});
  }
  return frontier;
}

void AbdNode::begin_read(std::function<void(const std::vector<SignedAppend>&)> done) {
  const u64 rid = (static_cast<u64>(id_.index) << 40) | next_read_id_++;

  WireMessage msg;
  msg.kind = WireMessage::Kind::kReadReq;
  msg.read_id = rid;
  if (config_.delta_reads) msg.frontier = make_frontier();
  // With delta_reads off the frontier stays empty, so responders — whose
  // code never branches on the mode — return their full view (Alg. 3).

  pending_reads_.emplace(
      rid, PendingRead{{}, std::move(done), false, false, frontier_digest(msg.frontier)});
  net_->broadcast(id_, msg);
}

void AbdNode::admit(const SignedAppend& rec) {
  const u64 d = rec.digest();
  if (known_.contains(d)) return;
  known_.insert(d);
  view_.push_back(rec);
  // Advance the contiguous-prefix watermark; out-of-order seqs (gathered by
  // a read merge before the author's own broadcast arrived) park until the
  // prefix catches up.
  const u32 a = rec.author.index;
  if (a >= watermark_.size()) return;  // unverifiable author: never admitted, but be safe
  if (rec.seq == watermark_[a]) {
    ++watermark_[a];
    while (parked_[a].erase(watermark_[a]) > 0) ++watermark_[a];
  } else if (rec.seq > watermark_[a]) {
    parked_[a].insert(rec.seq);
  }
}

void AbdNode::handle(NodeId from, const WireMessage& msg) {
  switch (msg.kind) {
    case WireMessage::Kind::kAppend: {
      // Verify the author's signature; a Byzantine relay cannot forge a
      // correct author's record (Lemma 4.1).
      if (!verifier_.verify(msg.append.digest(), msg.append.sig)) return;
      if (msg.append.sig.signer != msg.append.author) return;
      admit(msg.append);
      WireMessage ack;
      ack.kind = WireMessage::Kind::kAck;
      ack.append = msg.append;
      ack.ack_sig = keys_->sign(id_, msg.append.digest());
      net_->send(id_, msg.append.author, std::move(ack));
      break;
    }
    case WireMessage::Kind::kAck: {
      const auto it = pending_appends_.find(msg.append.digest());
      if (it == pending_appends_.end()) return;
      if (!verifier_.verify(msg.append.digest(), msg.ack_sig)) return;
      it->second.ackers.insert(msg.ack_sig.signer.index);
      if (it->second.ackers.size() >= quorum_) {
        auto done = std::move(it->second.done);
        pending_appends_.erase(it);
        if (!append_backlog_.empty()) {
          QueuedAppend next = std::move(append_backlog_.front());
          append_backlog_.pop_front();
          launch_append(next.value, std::move(next.done));
        }
        if (done) done();
      }
      break;
    }
    case WireMessage::Kind::kReadReq: {
      // Per-author watermark requested by the reader; an empty frontier
      // (legacy mode, first read, or full-read fallback) requests all.
      std::vector<u32> wm(watermark_.size(), 0);
      for (const FrontierEntry& e : msg.frontier) {
        if (e.author.index < wm.size()) wm[e.author.index] = std::max(wm[e.author.index], e.seq);
      }
      WireMessage reply;
      reply.kind = WireMessage::Kind::kReadReply;
      reply.read_id = msg.read_id;
      reply.frontier_echo = frontier_digest(msg.frontier);
      for (const SignedAppend& rec : view_) {
        if (rec.author.index >= wm.size() || rec.seq >= wm[rec.author.index]) {
          reply.view.push_back(rec);
        }
      }
      if (msg.frontier.empty()) {
        ++stats_.reads_served_full;
      } else {
        ++stats_.reads_served_delta;
      }
      stats_.read_records_sent += reply.view.size();
      net_->send(id_, from, std::move(reply));
      break;
    }
    case WireMessage::Kind::kReadReply: {
      const auto it = pending_reads_.find(msg.read_id);
      if (it == pending_reads_.end() || it->second.finished) return;
      PendingRead& pr = it->second;
      if (msg.frontier_echo != pr.expected_echo) {
        // The responder answered a frontier we did not send: divergence
        // (corruption or adversary). Fall back to one full read with the
        // same read id; in-flight replies to the old frontier are then
        // ignored by the same echo check.
        if (!pr.fell_back) {
          pr.fell_back = true;
          pr.responders.clear();
          ++stats_.read_fallbacks;
          WireMessage retry;
          retry.kind = WireMessage::Kind::kReadReq;
          retry.read_id = msg.read_id;
          pr.expected_echo = frontier_digest(retry.frontier);  // empty frontier
          net_->broadcast(id_, retry);
        }
        return;
      }
      // Merge every validly signed record (Algorithm 3 line 6). A delta
      // reply is a subsequence of the responder's view containing every
      // record above our watermark — i.e. everything we could be missing —
      // so the merged result is identical to the full-view merge.
      for (const SignedAppend& rec : msg.view) {
        if (rec.sig.signer == rec.author && verifier_.verify(rec.digest(), rec.sig)) {
          admit(rec);
        }
      }
      pr.responders.insert(from.index);
      if (pr.responders.size() >= quorum_) {
        pr.finished = true;
        auto done = std::move(pr.done);
        pending_reads_.erase(it);
        if (done) done(view_);
      }
      break;
    }
  }
}

ForgerNode::ForgerNode(NodeId id, NodeId victim, Transport& net, const crypto::KeyRegistry& keys)
    : id_(id), victim_(victim), net_(&net), keys_(&keys) {
  net_->attach(id_, [this](NodeId from, const WireMessage& msg) {
    switch (msg.kind) {
      case WireMessage::Kind::kAppend: {
        // React only to genuine appends from others — not to our own
        // injections echoed back by the broadcast self-delivery (that would
        // loop forever) — and stop after a bounded number of forgeries.
        if (msg.append.sig.signer != msg.append.author ||
            !keys_->verify(msg.append.digest(), msg.append.sig) || forged_ > 64) {
          return;
        }
        if (replay_pool_.size() < 256) replay_pool_.push_back(msg.append);
        // Ack (so it cannot be blamed for liveness) but also inject a
        // forged record in the victim's name: signed with the forger's own
        // key, because the victim's key is out of reach — the registry
        // hands Byzantine code no other capability.
        WireMessage ack;
        ack.kind = WireMessage::Kind::kAck;
        ack.append = msg.append;
        ack.ack_sig = keys_->sign(id_, msg.append.digest());
        net_->send(id_, msg.append.author, std::move(ack));

        SignedAppend fake;
        fake.author = victim_;
        fake.seq = 1'000'000 + forged_++;
        fake.value = -42;
        fake.sig = keys_->sign(id_, fake.digest());  // signer != author: invalid
        WireMessage inject;
        inject.kind = WireMessage::Kind::kAppend;
        inject.append = fake;
        net_->broadcast(id_, inject);
        break;
      }
      case WireMessage::Kind::kReadReq: {
        // Echo the frontier digest correctly (a wrong echo would merely
        // trigger the reader's full-read fallback; this attack is nastier:
        // a well-formed delta reply whose payload lies). The view carries
        // one above-frontier forgery plus replays of genuine records from
        // *below* the reader's frontier — records the reader already holds.
        // Correct readers must reject the forgery (Lemma 4.1) and
        // deduplicate the replays without any view corruption.
        std::vector<u32> wm;
        for (const FrontierEntry& e : msg.frontier) {
          if (e.author.index >= wm.size()) wm.resize(e.author.index + 1, 0);
          wm[e.author.index] = std::max(wm[e.author.index], e.seq);
        }
        WireMessage reply;
        reply.kind = WireMessage::Kind::kReadReply;
        reply.read_id = msg.read_id;
        reply.frontier_echo = frontier_digest(msg.frontier);
        SignedAppend fake;
        fake.author = victim_;
        fake.seq = 2'000'000 + forged_++;  // far above any honest watermark
        fake.value = -43;
        fake.sig = keys_->sign(id_, fake.digest());
        reply.view.push_back(fake);
        for (const SignedAppend& rec : replay_pool_) {
          if (rec.author.index < wm.size() && rec.seq < wm[rec.author.index]) {
            reply.view.push_back(rec);  // below-frontier replay
          }
        }
        net_->send(id_, from, std::move(reply));
        break;
      }
      // The forger deliberately ignores acks and read replies: it never
      // appends honestly, so neither message advances its attack. Spelled
      // out per kind so a future fifth message kind fails to compile here
      // instead of being silently dropped.
      case WireMessage::Kind::kAck:
      case WireMessage::Kind::kReadReply:
        break;
    }
  });
}

}  // namespace amm::mp
