// Algorithms 2 and 3 (§4): simulating the append memory over message
// passing, in the style of ABD [3].
//
//   M.append(val):  broadcast append(val)_v; every receiver verifies the
//                   signature, adds the record to its local view and
//                   broadcasts ack(append)_v; the appender finishes once
//                   > n/2 distinct valid acks arrive.            (Alg. 2)
//   M.read():       broadcast a read request; every receiver replies with
//                   its full local view; the reader merges the views of
//                   > n/2 nodes and finishes.                    (Alg. 3)
//
// Signatures make forged relays impossible (Lemma 4.1); the majority
// intersection makes every completed append visible to every subsequent
// read (Lemma 4.2) as long as a majority of nodes is correct and
// available.
//
// Two wire-volume optimisations on top of the textbook algorithms (the
// merged views and the quorum logic are unchanged; DESIGN.md §9):
//
//   * Frontier (delta) reads — the read request carries the reader's
//     per-author watermark vector; responders ship only records above it,
//     so a steady-state read costs O(n·Δ) records instead of O(n·k)
//     history. Exactness rests on the append memory's per-register total
//     order: one record per (author, seq), and the watermark is the length
//     of the contiguous prefix the reader already holds. Every reply
//     echoes a digest of the frontier it answers; on a mismatched echo the
//     reader falls back to one full (empty-frontier) read with the same
//     read id. With `AbdConfig::delta_reads == false` the reader sends an
//     empty frontier and the protocol is byte-identical to the textbook
//     full-view read — responder code is the same in both modes, which the
//     equivalence property tests exploit.
//
//   * Append pipelining — up to `max_pipeline` appends in flight at once,
//     keyed by record digest so acks resolve independently; excess
//     begin_append calls queue and launch in order as slots free up.
#pragma once

#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mp/checkpoint.hpp"
#include "mp/storage.hpp"
#include "mp/transport.hpp"

namespace amm::mp {

/// Decided-prefix compaction policy (DESIGN.md §8). The *stability cut*
/// (minimum per-author watermark) bounds a permanent canonical prefix;
/// compaction folds it into the node's mp::Checkpoint.
struct CompactConfig {
  /// Master switch; off reproduces the unbounded pre-compaction node.
  bool enabled = false;
  /// With true (retain mode) the folded record bodies stay in the view —
  /// compaction is pure metadata and provably observation-invisible (the
  /// equivalence suite pins this). With false (summary mode) folded bodies
  /// are erased: memory stays flat, reads serve only the live suffix, and
  /// decisions/restart sync lean on the checkpoint.
  bool retain_records = true;
  /// Records per author kept live behind the stability cut before folding
  /// (slack for stragglers whose reads still reference low seqs).
  u32 lag = 256;
  /// Auto-compaction cuts are rounded down to a multiple of this, so nodes
  /// whose watermarks agree produce byte-identical checkpoints (the
  /// cross-check and quorum adoption of a checkpoint sync require it).
  u32 quantum = 64;
  /// Admissions between auto-compaction attempts; 0 = manual-only
  /// (compact_below).
  u32 auto_interval = 64;
  /// Max parked (out-of-order) seqs per author; admission beyond the cap
  /// is refused (self-heals via a later delta read). 0 = unbounded.
  u32 parked_cap = 4096;
};

/// Tuning knobs for AbdNode. Defaults are the optimised protocol; the
/// legacy full-view configuration is kept as the test reference.
struct AbdConfig {
  /// When false, read requests carry an empty frontier — responders (whose
  /// code does not branch on the mode) then return their full local view,
  /// reproducing Algorithm 3 verbatim.
  bool delta_reads = true;
  /// Max appends in flight; further begin_append calls queue in order.
  u32 max_pipeline = 32;
  /// Decided-prefix compaction (off by default: memory is unbounded).
  CompactConfig compact;
  /// VerifyCache key capacity (0 = unbounded).
  usize verify_cache_cap = crypto::VerifyCache::kDefaultCapacity;
  /// Durable storage seam (mp/storage.hpp); nullptr = memory-only node
  /// (the pre-durability behavior, default for sim and tests). Not owned;
  /// must outlive the node.
  Storage* storage = nullptr;
  /// Admitted records between automatic snapshots (0 = never snapshot
  /// automatically). Only meaningful with a storage backend attached.
  u32 snapshot_interval = 1024;
};

/// A correct node running the ABD-style simulation. Written against the
/// Transport seam, so the same protocol code runs over the simulated
/// Network and over the real TCP transport (net/transport.hpp).
class AbdNode {
 public:
  /// Wire-volume and cache counters (satellite metrics for E10/cluster).
  struct Stats {
    u64 reads_served_full = 0;   ///< kReadReq answered with an empty frontier
    u64 reads_served_delta = 0;  ///< kReadReq answered above a non-empty frontier
    u64 read_records_sent = 0;   ///< records shipped in our kReadReply messages
    u64 read_fallbacks = 0;      ///< our delta reads that fell back to a full read
    u64 records_folded = 0;      ///< records folded into the checkpoint
    u64 compactions = 0;         ///< compact_below calls that advanced the cut
    u64 parked_rejects = 0;      ///< admissions refused by the parked_ cap
    u64 checkpoint_syncs = 0;    ///< quorum-agreed checkpoint syncs completed
    u64 snapshots_written = 0;   ///< snapshots persisted to the storage seam
    u64 recovery_replayed_records = 0;  ///< log records replayed at recovery
  };

  AbdNode(NodeId id, Transport& net, const crypto::KeyRegistry& keys, AbdConfig config = {});

  NodeId id() const { return id_; }
  const AbdConfig& config() const { return config_; }
  const Stats& stats() const { return stats_; }
  u64 verify_cache_hits() const { return verifier_.hits(); }
  u64 verify_cache_misses() const { return verifier_.misses(); }
  u64 verify_cache_evictions() const { return verifier_.evictions(); }
  usize verify_cache_size() const { return verifier_.size(); }

  /// Local view M_v, in arrival order. In summary mode this is only the
  /// live suffix — the folded prefix lives in checkpoint().
  const std::vector<SignedAppend>& local_view() const { return view_; }

  /// The folded decided prefix (empty until the first compaction).
  const Checkpoint& checkpoint() const { return checkpoint_; }

  /// Records currently held as bodies (the memory the node actually pays).
  usize live_records() const { return view_.size(); }

  /// The stability cut: min per-author contiguous-prefix watermark. Every
  /// record below it is final on this node (see mp/checkpoint.hpp).
  u32 stability_cut() const;

  /// Folds every record with seq < s_cut into the checkpoint (clamped to
  /// the stability cut; no-op at or below the current cut). In summary
  /// mode also erases the folded bodies from the view.
  void compact_below(u32 s_cut);

  /// Broadcasts kCheckpointReq and, once >= quorum structurally identical,
  /// signature-valid replies arrive, adopts the agreed checkpoint (summary
  /// mode: watermarks jump to the cut so delta reads fetch only the
  /// suffix). `done(true)` fires on agreement; replies that disagree or
  /// fail verification are ignored, so a lying minority cannot block or
  /// poison the sync (the quorum intersection argument of Lemma 4.2).
  void begin_checkpoint_sync(std::function<void(bool)> done);

  /// Restores protocol state from the attached storage backend: adopt the
  /// newest snapshot that carries our own valid signature (a tampered or
  /// foreign snapshot is ignored and the log replays from its start), then
  /// replay the log suffix through the ordinary admission path. Records
  /// appended cluster-wide while we were down are *not* here — the caller
  /// follows up with begin_read / begin_checkpoint_sync, which now fetch
  /// only the missed tail because the watermarks advertise everything
  /// recovered locally. Returns the number of log records replayed; no-op
  /// without a storage backend. Call before the first wire activity.
  u64 recover_from_storage();

  /// Persists a snapshot of the current protocol state to the storage
  /// backend (no-op without one). Called automatically every
  /// `snapshot_interval` admissions and after a checkpoint adoption.
  void write_snapshot();

  /// Starts an M.append(value); `done` fires when > n/2 acks arrived.
  /// Up to `config.max_pipeline` appends run concurrently; beyond that the
  /// call queues and launches in order as earlier appends complete.
  void begin_append(i64 value, std::function<void()> done);

  /// Starts an M.read(); `done` receives the merged view.
  void begin_read(std::function<void(const std::vector<SignedAppend>&)> done);

  /// Number of append operations this node has started (its next seq).
  u32 appends_issued() const { return next_seq_; }

  /// Appends currently awaiting their quorum (in flight on the wire).
  usize appends_in_flight() const { return pending_appends_.size(); }

  /// begin_append calls parked behind a full pipeline.
  usize appends_queued() const { return append_backlog_.size(); }

 private:
  void handle(NodeId from, const WireMessage& msg);
  void admit(const SignedAppend& rec);
  void persist(const SignedAppend& rec);
  void launch_append(i64 value, std::function<void()> done);
  std::vector<FrontierEntry> make_frontier() const;
  u32 auto_cut() const;  ///< quantized (stability - lag) auto-compaction cut
  void maybe_auto_compact();
  void adopt_checkpoint(const Checkpoint& cp);

  struct PendingAppend {
    std::unordered_set<u32> ackers;
    std::function<void()> done;
  };
  struct QueuedAppend {
    i64 value = 0;
    std::function<void()> done;
  };
  struct PendingRead {
    std::unordered_set<u32> responders;
    std::function<void(const std::vector<SignedAppend>&)> done;
    bool finished = false;
    bool fell_back = false;   ///< one full-read retry per read, at most
    u64 expected_echo = 0;    ///< digest of the frontier this read awaits
  };
  struct PendingSync {
    std::vector<std::pair<u32, Checkpoint>> replies;  // one per responder
    std::function<void(bool)> done;
  };

  NodeId id_;
  Transport* net_;
  const crypto::KeyRegistry* keys_;
  mutable crypto::VerifyCache verifier_;
  AbdConfig config_;
  CheckpointBuilder builder_;
  u32 quorum_;  // floor(n/2) + 1
  u32 next_seq_ = 0;
  u64 next_read_id_ = 0;
  u32 admits_since_compact_ = 0;
  u32 admits_since_snapshot_ = 0;
  bool recovering_ = false;  ///< replaying the log: admissions must not re-append
  std::vector<SignedAppend> view_;
  // Frontier bookkeeping: watermark_[a] = length of the contiguous prefix
  // of author a's records this node holds (folded prefix included); seqs
  // admitted out of order (via read merges) park in parked_[a] until the
  // prefix catches up. Dedup rides on the same state: only verified
  // records are ever admitted and the simulated signatures are
  // existentially unforgeable, so (author, seq) identifies a record —
  // `seq < watermark || parked.contains(seq)` is exactly "already held",
  // which is what let the digest set the node used to carry be dropped.
  std::vector<u32> watermark_;
  std::vector<std::unordered_set<u32>> parked_;
  Checkpoint checkpoint_;
  std::unordered_map<u64, PendingAppend> pending_appends_;  // keyed by record digest
  std::deque<QueuedAppend> append_backlog_;
  std::unordered_map<u64, PendingRead> pending_reads_;
  std::unordered_map<u64, PendingSync> pending_syncs_;
  Stats stats_;
};

/// A crashed node: attached to the network but never responds. With
/// t < n/2 such nodes every operation still terminates.
class CrashedNode {
 public:
  CrashedNode(NodeId id, Transport& net) {
    net.attach(id, [](NodeId, const WireMessage&) {});
  }
};

/// A Byzantine forger: acks everything instantly (harmless), injects
/// append records with forged signatures for other authors, and answers
/// read requests with above-frontier forgeries plus below-frontier replays
/// of genuine records; correct nodes must discard the forgeries and
/// deduplicate the replays (Lemma 4.1's argument).
class ForgerNode {
 public:
  ForgerNode(NodeId id, NodeId victim, Transport& net, const crypto::KeyRegistry& keys);

 private:
  NodeId id_;
  NodeId victim_;
  Transport* net_;
  const crypto::KeyRegistry* keys_;
  u32 forged_ = 0;
  std::vector<SignedAppend> replay_pool_;  // genuine records seen, for replays
};

}  // namespace amm::mp
