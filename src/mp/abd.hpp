// Algorithms 2 and 3 (§4): simulating the append memory over message
// passing, in the style of ABD [3].
//
//   M.append(val):  broadcast append(val)_v; every receiver verifies the
//                   signature, adds the record to its local view and
//                   broadcasts ack(append)_v; the appender finishes once
//                   > n/2 distinct valid acks arrive.            (Alg. 2)
//   M.read():       broadcast a read request; every receiver replies with
//                   its full local view; the reader merges the views of
//                   > n/2 nodes and finishes.                    (Alg. 3)
//
// Signatures make forged relays impossible (Lemma 4.1); the majority
// intersection makes every completed append visible to every subsequent
// read (Lemma 4.2) as long as a majority of nodes is correct and
// available.
//
// Two wire-volume optimisations on top of the textbook algorithms (the
// merged views and the quorum logic are unchanged; DESIGN.md §9):
//
//   * Frontier (delta) reads — the read request carries the reader's
//     per-author watermark vector; responders ship only records above it,
//     so a steady-state read costs O(n·Δ) records instead of O(n·k)
//     history. Exactness rests on the append memory's per-register total
//     order: one record per (author, seq), and the watermark is the length
//     of the contiguous prefix the reader already holds. Every reply
//     echoes a digest of the frontier it answers; on a mismatched echo the
//     reader falls back to one full (empty-frontier) read with the same
//     read id. With `AbdConfig::delta_reads == false` the reader sends an
//     empty frontier and the protocol is byte-identical to the textbook
//     full-view read — responder code is the same in both modes, which the
//     equivalence property tests exploit.
//
//   * Append pipelining — up to `max_pipeline` appends in flight at once,
//     keyed by record digest so acks resolve independently; excess
//     begin_append calls queue and launch in order as slots free up.
#pragma once

#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mp/transport.hpp"

namespace amm::mp {

/// Tuning knobs for AbdNode. Defaults are the optimised protocol; the
/// legacy full-view configuration is kept as the test reference.
struct AbdConfig {
  /// When false, read requests carry an empty frontier — responders (whose
  /// code does not branch on the mode) then return their full local view,
  /// reproducing Algorithm 3 verbatim.
  bool delta_reads = true;
  /// Max appends in flight; further begin_append calls queue in order.
  u32 max_pipeline = 32;
};

/// A correct node running the ABD-style simulation. Written against the
/// Transport seam, so the same protocol code runs over the simulated
/// Network and over the real TCP transport (net/transport.hpp).
class AbdNode {
 public:
  /// Wire-volume and cache counters (satellite metrics for E10/cluster).
  struct Stats {
    u64 reads_served_full = 0;   ///< kReadReq answered with an empty frontier
    u64 reads_served_delta = 0;  ///< kReadReq answered above a non-empty frontier
    u64 read_records_sent = 0;   ///< records shipped in our kReadReply messages
    u64 read_fallbacks = 0;      ///< our delta reads that fell back to a full read
  };

  AbdNode(NodeId id, Transport& net, const crypto::KeyRegistry& keys, AbdConfig config = {});

  NodeId id() const { return id_; }
  const AbdConfig& config() const { return config_; }
  const Stats& stats() const { return stats_; }
  u64 verify_cache_hits() const { return verifier_.hits(); }

  /// Local view M_v, in arrival order.
  const std::vector<SignedAppend>& local_view() const { return view_; }

  /// Starts an M.append(value); `done` fires when > n/2 acks arrived.
  /// Up to `config.max_pipeline` appends run concurrently; beyond that the
  /// call queues and launches in order as earlier appends complete.
  void begin_append(i64 value, std::function<void()> done);

  /// Starts an M.read(); `done` receives the merged view.
  void begin_read(std::function<void(const std::vector<SignedAppend>&)> done);

  /// Number of append operations this node has started (its next seq).
  u32 appends_issued() const { return next_seq_; }

  /// Appends currently awaiting their quorum (in flight on the wire).
  usize appends_in_flight() const { return pending_appends_.size(); }

  /// begin_append calls parked behind a full pipeline.
  usize appends_queued() const { return append_backlog_.size(); }

 private:
  void handle(NodeId from, const WireMessage& msg);
  bool known(const SignedAppend& rec) const { return known_.contains(rec.digest()); }
  void admit(const SignedAppend& rec);
  void launch_append(i64 value, std::function<void()> done);
  std::vector<FrontierEntry> make_frontier() const;

  struct PendingAppend {
    std::unordered_set<u32> ackers;
    std::function<void()> done;
  };
  struct QueuedAppend {
    i64 value = 0;
    std::function<void()> done;
  };
  struct PendingRead {
    std::unordered_set<u32> responders;
    std::function<void(const std::vector<SignedAppend>&)> done;
    bool finished = false;
    bool fell_back = false;   ///< one full-read retry per read, at most
    u64 expected_echo = 0;    ///< digest of the frontier this read awaits
  };

  NodeId id_;
  Transport* net_;
  const crypto::KeyRegistry* keys_;
  mutable crypto::VerifyCache verifier_;
  AbdConfig config_;
  u32 quorum_;  // floor(n/2) + 1
  u32 next_seq_ = 0;
  u64 next_read_id_ = 0;
  std::vector<SignedAppend> view_;
  std::unordered_set<u64> known_;  // digests present in view_
  // Frontier bookkeeping: watermark_[a] = length of the contiguous prefix
  // of author a's records in view_; seqs admitted out of order (via read
  // merges) park in parked_[a] until the prefix catches up.
  std::vector<u32> watermark_;
  std::vector<std::unordered_set<u32>> parked_;
  std::unordered_map<u64, PendingAppend> pending_appends_;  // keyed by record digest
  std::deque<QueuedAppend> append_backlog_;
  std::unordered_map<u64, PendingRead> pending_reads_;
  Stats stats_;
};

/// A crashed node: attached to the network but never responds. With
/// t < n/2 such nodes every operation still terminates.
class CrashedNode {
 public:
  CrashedNode(NodeId id, Transport& net) {
    net.attach(id, [](NodeId, const WireMessage&) {});
  }
};

/// A Byzantine forger: acks everything instantly (harmless), injects
/// append records with forged signatures for other authors, and answers
/// read requests with above-frontier forgeries plus below-frontier replays
/// of genuine records; correct nodes must discard the forgeries and
/// deduplicate the replays (Lemma 4.1's argument).
class ForgerNode {
 public:
  ForgerNode(NodeId id, NodeId victim, Transport& net, const crypto::KeyRegistry& keys);

 private:
  NodeId id_;
  NodeId victim_;
  Transport* net_;
  const crypto::KeyRegistry* keys_;
  u32 forged_ = 0;
  std::vector<SignedAppend> replay_pool_;  // genuine records seen, for replays
};

}  // namespace amm::mp
