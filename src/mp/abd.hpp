// Algorithms 2 and 3 (§4): simulating the append memory over message
// passing, in the style of ABD [3].
//
//   M.append(val):  broadcast append(val)_v; every receiver verifies the
//                   signature, adds the record to its local view and
//                   broadcasts ack(append)_v; the appender finishes once
//                   > n/2 distinct valid acks arrive.            (Alg. 2)
//   M.read():       broadcast a read request; every receiver replies with
//                   its full local view; the reader merges the views of
//                   > n/2 nodes and finishes.                    (Alg. 3)
//
// Signatures make forged relays impossible (Lemma 4.1); the majority
// intersection makes every completed append visible to every subsequent
// read (Lemma 4.2) as long as a majority of nodes is correct and
// available.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mp/transport.hpp"

namespace amm::mp {

/// A correct node running the ABD-style simulation. Written against the
/// Transport seam, so the same protocol code runs over the simulated
/// Network and over the real TCP transport (net/transport.hpp).
class AbdNode {
 public:
  AbdNode(NodeId id, Transport& net, const crypto::KeyRegistry& keys);

  NodeId id() const { return id_; }

  /// Local view M_v, in arrival order.
  const std::vector<SignedAppend>& local_view() const { return view_; }

  /// Starts an M.append(value); `done` fires when > n/2 acks arrived.
  void begin_append(i64 value, std::function<void()> done);

  /// Starts an M.read(); `done` receives the merged view.
  void begin_read(std::function<void(const std::vector<SignedAppend>&)> done);

  /// Number of append operations this node has completed (its next seq).
  u32 appends_issued() const { return next_seq_; }

 private:
  void handle(NodeId from, const WireMessage& msg);
  bool known(const SignedAppend& rec) const {
    return known_.contains(rec.digest());
  }
  void admit(const SignedAppend& rec);

  struct PendingAppend {
    u64 digest = 0;
    std::unordered_set<u32> ackers;
    std::function<void()> done;
  };
  struct PendingRead {
    std::unordered_set<u32> responders;
    std::function<void(const std::vector<SignedAppend>&)> done;
    bool finished = false;
  };

  NodeId id_;
  Transport* net_;
  const crypto::KeyRegistry* keys_;
  u32 quorum_;  // floor(n/2) + 1
  u32 next_seq_ = 0;
  u64 next_read_id_ = 0;
  std::vector<SignedAppend> view_;
  std::unordered_set<u64> known_;  // digests present in view_
  std::optional<PendingAppend> pending_append_;
  std::unordered_map<u64, PendingRead> pending_reads_;
};

/// A crashed node: attached to the network but never responds. With
/// t < n/2 such nodes every operation still terminates.
class CrashedNode {
 public:
  CrashedNode(NodeId id, Transport& net) {
    net.attach(id, [](NodeId, const WireMessage&) {});
  }
};

/// A Byzantine forger: acks everything instantly (harmless) and injects
/// append records with forged signatures for other authors; correct nodes
/// must discard them (Lemma 4.1's argument).
class ForgerNode {
 public:
  ForgerNode(NodeId id, NodeId victim, Transport& net, const crypto::KeyRegistry& keys);

 private:
  NodeId id_;
  NodeId victim_;
  Transport* net_;
  const crypto::KeyRegistry* keys_;
  u32 forged_ = 0;
};

}  // namespace amm::mp
