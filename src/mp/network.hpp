// Simulated asynchronous message-passing network (§4 substrate).
//
// Point-to-point channels with independent random delays drawn from
// [min_delay, max_delay]; no loss or duplication for messages between
// correct nodes (the paper's model: correct nodes are always available and
// eventually receive everything). Delivery order between different pairs is
// unconstrained — exactly the asynchrony the ABD simulation must tolerate.
// Message and byte counters feed the §4 complexity experiment.
#pragma once

#include <functional>
#include <vector>

#include "crypto/signature.hpp"
#include "sched/event_queue.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace amm::mp {

/// One signed append record — the unit the simulated memory views consist
/// of. `seq` orders the author's own appends (the per-register total order
/// that R_i provides in the append memory).
struct SignedAppend {
  NodeId author;
  u32 seq = 0;
  i64 value = 0;
  crypto::Signature sig;

  u64 digest() const {
    return crypto::DigestBuilder{}
        .add(author.index)
        .add(seq)
        .add(static_cast<u64>(value))
        .finish();
  }

  bool operator==(const SignedAppend& o) const {
    return author == o.author && seq == o.seq && value == o.value;
  }
};

/// Wire format: a tagged union over the four ABD message kinds.
struct WireMessage {
  enum class Kind : u8 { kAppend, kAck, kReadReq, kReadReply };

  Kind kind = Kind::kAppend;
  SignedAppend append;              ///< kAppend: the record; kAck: the acked record
  crypto::Signature ack_sig;        ///< kAck: acker's signature over the record digest
  u64 read_id = 0;                  ///< kReadReq / kReadReply correlation id
  std::vector<SignedAppend> view;   ///< kReadReply: full local view

  /// Approximate serialized size in bytes (for complexity accounting).
  usize wire_size() const {
    constexpr usize kRecord = 8 + 4 + 8 + 12;  // author+seq+value+sig
    switch (kind) {
      case Kind::kAppend:
        return 1 + kRecord;
      case Kind::kAck:
        return 1 + kRecord + 12;
      case Kind::kReadReq:
        return 1 + 8;
      case Kind::kReadReply:
        return 1 + 8 + view.size() * kRecord;
    }
    return 1;
  }
};

class Network {
 public:
  using Handler = std::function<void(NodeId from, const WireMessage&)>;

  Network(u32 node_count, SimTime min_delay, SimTime max_delay, Rng rng)
      : handlers_(node_count), min_delay_(min_delay), max_delay_(max_delay), rng_(rng) {
    AMM_EXPECTS(node_count > 0);
    AMM_EXPECTS(min_delay >= 0.0 && max_delay >= min_delay);
  }

  u32 node_count() const { return static_cast<u32>(handlers_.size()); }
  sched::EventQueue& queue() { return queue_; }

  void attach(NodeId id, Handler handler) {
    AMM_EXPECTS(id.index < handlers_.size());
    handlers_[id.index] = std::move(handler);
  }

  /// Sends one message with a fresh random delay.
  void send(NodeId from, NodeId to, WireMessage msg) {
    AMM_EXPECTS(to.index < handlers_.size());
    ++messages_sent_;
    bytes_sent_ += msg.wire_size();
    const SimTime delay = min_delay_ + (max_delay_ - min_delay_) * rng_.uniform();
    queue_.schedule_in(delay, [this, from, to, m = std::move(msg)] {
      if (handlers_[to.index]) handlers_[to.index](from, m);
    });
  }

  /// Broadcast to every node, including the sender (self-delivery models
  /// the local bookkeeping step and keeps the quorum arithmetic uniform).
  void broadcast(NodeId from, const WireMessage& msg) {
    for (u32 to = 0; to < handlers_.size(); ++to) send(from, NodeId{to}, msg);
  }

  u64 messages_sent() const { return messages_sent_; }
  u64 bytes_sent() const { return bytes_sent_; }

 private:
  sched::EventQueue queue_;
  std::vector<Handler> handlers_;
  SimTime min_delay_;
  SimTime max_delay_;
  Rng rng_;
  u64 messages_sent_ = 0;
  u64 bytes_sent_ = 0;
};

}  // namespace amm::mp
