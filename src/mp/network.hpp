// Simulated asynchronous message-passing network (§4 substrate).
//
// Point-to-point channels with independent random delays drawn from
// [min_delay, max_delay]; no loss or duplication for messages between
// correct nodes (the paper's model: correct nodes are always available and
// eventually receive everything). Delivery order between different pairs is
// unconstrained — exactly the asynchrony the ABD simulation must tolerate.
// Message and byte counters feed the §4 complexity experiment.
//
// Network implements the mp::Transport seam, so every protocol written
// against Transport (AbdNode in particular) also runs unchanged over the
// real TCP transport in src/net/.
#pragma once

#include <vector>

#include "mp/transport.hpp"
#include "sched/event_queue.hpp"
#include "support/rng.hpp"

namespace amm::mp {

class Network final : public Transport {
 public:
  Network(u32 node_count, SimTime min_delay, SimTime max_delay, Rng rng)
      : handlers_(node_count), min_delay_(min_delay), max_delay_(max_delay), rng_(rng) {
    AMM_EXPECTS(node_count > 0);
    AMM_EXPECTS(min_delay >= 0.0 && max_delay >= min_delay);
  }

  u32 node_count() const override { return static_cast<u32>(handlers_.size()); }
  sched::EventQueue& queue() { return queue_; }

  void attach(NodeId id, Handler handler) override {
    AMM_EXPECTS(id.index < handlers_.size());
    handlers_[id.index] = std::move(handler);
  }

  /// Sends one message with a fresh random delay.
  void send(NodeId from, NodeId to, WireMessage msg) override {
    AMM_EXPECTS(to.index < handlers_.size());
    ++messages_sent_;
    bytes_sent_ += msg.wire_size();
    const SimTime delay = min_delay_ + (max_delay_ - min_delay_) * rng_.uniform();
    queue_.schedule_in(delay, [this, from, to, m = std::move(msg)] {
      if (handlers_[to.index]) handlers_[to.index](from, m);
    });
  }

  void broadcast(NodeId from, const WireMessage& msg) override {
    for (u32 to = 0; to < handlers_.size(); ++to) send(from, NodeId{to}, msg);
  }

  u64 messages_sent() const override { return messages_sent_; }
  u64 bytes_sent() const override { return bytes_sent_; }

 private:
  sched::EventQueue queue_;
  std::vector<Handler> handlers_;
  SimTime min_delay_;
  SimTime max_delay_;
  Rng rng_;
  u64 messages_sent_ = 0;
  u64 bytes_sent_ = 0;
};

}  // namespace amm::mp
