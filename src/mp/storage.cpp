#include "mp/storage.hpp"

#include <algorithm>

namespace amm::mp {

const char* fsync_policy_name(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNever:
      return "never";
    case FsyncPolicy::kInterval:
      return "interval";
    case FsyncPolicy::kAlways:
      return "always";
  }
  return "never";
}

std::optional<FsyncPolicy> parse_fsync_policy(std::string_view name) {
  if (name == "never") return FsyncPolicy::kNever;
  if (name == "interval") return FsyncPolicy::kInterval;
  if (name == "always") return FsyncPolicy::kAlways;
  return std::nullopt;
}

u64 Snapshot::digest() const {
  crypto::DigestBuilder b;
  b.add(0x736e617073686f31ULL);  // domain separator ("snapsho1")
  b.add(log_seq);
  b.add(next_seq);
  b.add(watermarks.size());
  for (const u32 w : watermarks) b.add(w);
  b.add(checkpoint.digest());
  b.add(live.size());
  // The live suffix binds through the same chain links CheckpointBuilder
  // uses for the folded prefix, plus each record's digest and signature —
  // swapping a body, reordering, or splicing in a foreign signature all
  // change the snapshot digest and void the owner's signature over it.
  u64 chain = 0;
  for (const SignedAppend& rec : live) {
    chain = CheckpointBuilder::chain_step(chain, rec.seq, rec.value);
    b.add(rec.digest());
    b.add((static_cast<u64>(rec.sig.signer.index) << 32) ^ rec.sig.tag);
  }
  b.add(chain);
  return b.finish();
}

bool MemStorage::append(const SignedAppend& rec) {
  log_.push_back(rec);
  ++stats_.log_records;
  stats_.log_bytes += kWireRecordBytes;
  return true;
}

bool MemStorage::write_snapshot(const Snapshot& snap) {
  snapshot_ = snap;
  ++stats_.snapshot_count;
  // Records below the snapshot's position are covered by it; prune them
  // (the durable backend deletes whole segments the same way).
  if (snap.log_seq > base_seq_) {
    const u64 drop = std::min<u64>(snap.log_seq - base_seq_, log_.size());
    log_.erase(log_.begin(), log_.begin() + static_cast<std::ptrdiff_t>(drop));
    base_seq_ += drop;
    stats_.log_records -= drop;
    stats_.log_bytes -= drop * kWireRecordBytes;
  }
  return true;
}

u64 MemStorage::replay(u64 from_seq, const std::function<void(const SignedAppend&)>& cb) {
  const u64 start = std::max(from_seq, base_seq_);
  u64 delivered = 0;
  for (u64 pos = start; pos < base_seq_ + log_.size(); ++pos) {
    cb(log_[static_cast<usize>(pos - base_seq_)]);
    ++delivered;
  }
  return delivered;
}

}  // namespace amm::mp
