#include "mp/sim_memory.hpp"

namespace amm::mp {

SimulatedAppendMemory::SimulatedAppendMemory(u32 n, SimTime min_delay, SimTime max_delay,
                                             u64 seed, AbdConfig config)
    : keys_(n, seed), net_(n, min_delay, max_delay, Rng(seed + 1)) {
  nodes_.reserve(n);
  for (u32 i = 0; i < n; ++i) {
    nodes_.push_back(std::make_unique<AbdNode>(NodeId{i}, net_, keys_, config));
  }
}

void SimulatedAppendMemory::append(NodeId who, i64 value) {
  AMM_EXPECTS(who.index < nodes_.size());
  nodes_[who.index]->begin_append(value, [] {});
}

void SimulatedAppendMemory::read(NodeId who, std::vector<SignedAppend>* out) {
  AMM_EXPECTS(who.index < nodes_.size());
  AMM_EXPECTS(out != nullptr);
  nodes_[who.index]->begin_read([out](const std::vector<SignedAppend>& view) { *out = view; });
}

void SimulatedAppendMemory::append_sync(NodeId who, i64 value) {
  append(who, value);
  run_until_idle();
}

std::vector<SignedAppend> SimulatedAppendMemory::read_sync(NodeId who) {
  std::vector<SignedAppend> result;
  read(who, &result);
  run_until_idle();
  return result;
}

std::vector<RoundCost> run_full_information_rounds(SimulatedAppendMemory& memory, u32 rounds) {
  std::vector<RoundCost> costs;
  costs.reserve(rounds);
  Network& net = memory.network();
  for (u32 r = 0; r < rounds; ++r) {
    const u64 m0 = net.messages_sent();
    const u64 b0 = net.bytes_sent();
    // Every node appends its round value concurrently...
    for (u32 v = 0; v < memory.node_count(); ++v) {
      memory.append(NodeId{v}, static_cast<i64>(r));
    }
    memory.run_until_idle();
    // ...then every node reads the complete memory (L_r in Algorithm 1).
    std::vector<std::vector<SignedAppend>> views(memory.node_count());
    for (u32 v = 0; v < memory.node_count(); ++v) {
      memory.read(NodeId{v}, &views[v]);
    }
    memory.run_until_idle();
    costs.push_back(RoundCost{net.messages_sent() - m0, net.bytes_sent() - b0});
  }
  return costs;
}

}  // namespace amm::mp
