#include "mp/checkpoint.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace amm::mp {

u64 CheckpointBuilder::chain_step(u64 chain, u32 seq, i64 value) {
  return crypto::DigestBuilder{}
      .add(0x636b70742d6c696eULL)  // domain separator ("ckpt-lin")
      .add(chain)
      .add(seq)
      .add(static_cast<u64>(value))
      .finish();
}

u64 CheckpointBuilder::extend(Checkpoint& cp, const std::vector<SignedAppend>& view,
                              u32 s_cut) const {
  AMM_EXPECTS(s_cut >= cp.folded_below);
  if (cp.chains.empty()) cp.chains.resize(authors_, 0);
  AMM_EXPECTS(cp.chains.size() == authors_);
  const u32 from = cp.folded_below;
  const u32 span = s_cut - from;
  if (span == 0) return 0;

  // Gather the folded range per author. The view is in arrival order, so
  // bucket by (author, seq - from) first, then chain in seq order.
  std::vector<std::vector<i64>> values(authors_, std::vector<i64>(span, 0));
  std::vector<std::vector<bool>> present(authors_, std::vector<bool>(span, false));
  for (const SignedAppend& rec : view) {
    const u32 a = rec.author.index;
    if (a >= authors_ || rec.seq < from || rec.seq >= s_cut) continue;
    values[a][rec.seq - from] = rec.value;
    present[a][rec.seq - from] = true;
  }

  u64 folded = 0;
  for (u32 a = 0; a < authors_; ++a) {
    u64 chain = cp.chains[a];
    for (u32 off = 0; off < span; ++off) {
      // The stability cut guarantees the full range is in hand; a hole
      // here means the caller cut above its own watermark.
      AMM_EXPECTS(present[a][off]);
      const i64 value = values[a][off];
      chain = chain_step(chain, from + off, value);
      cp.vote_sum += value >= 0 ? 1 : -1;
      ++folded;
    }
    cp.chains[a] = chain;
  }
  cp.folded_below = s_cut;
  cp.folded_records += folded;
  return folded;
}

bool CheckpointBuilder::well_formed(const Checkpoint& cp) const {
  if (cp.folded_below == 0) {
    return cp.folded_records == 0 && cp.vote_sum == 0 &&
           (cp.chains.empty() ||
            (cp.chains.size() == authors_ &&
             std::all_of(cp.chains.begin(), cp.chains.end(), [](u64 c) { return c == 0; })));
  }
  if (cp.chains.size() != authors_) return false;
  if (cp.folded_records != static_cast<u64>(cp.folded_below) * authors_) return false;
  // |vote_sum| <= folded_records and matching parity (each record is ±1).
  const i64 f = static_cast<i64>(cp.folded_records);
  if (cp.vote_sum > f || cp.vote_sum < -f) return false;
  return ((cp.vote_sum % 2 + 2) % 2) == static_cast<i64>(cp.folded_records % 2);
}

}  // namespace amm::mp
