// The full §4 stack: an append-memory facade backed by the ABD simulation.
//
// SimulatedAppendMemory gives protocol code the two-operation interface of
// §1.1 (whole-memory read, single-register append) while every operation
// actually runs Algorithms 2–3 over the simulated asynchronous network.
// This is the bridge that lets Algorithm-1-style round protocols execute
// on message passing, and it exposes the cost the paper warns about: view
// sizes grow with history, so the information exchanged per round grows
// without bound ("exponential information exchange" for full-information
// protocols).
#pragma once

#include <memory>
#include <vector>

#include "mp/abd.hpp"
#include "mp/network.hpp"

namespace amm::mp {

/// One node's handle on the simulated memory. Operations are asynchronous
/// (completion via the network's event queue); `run_until_idle()` on the
/// owning cluster drives them to completion.
class SimulatedAppendMemory {
 public:
  /// Creates the cluster: `n` correct ABD nodes over a fresh network.
  /// `config` is applied to every node (defaults: delta reads on, appends
  /// pipelined; pass `{.delta_reads = false}` for the legacy full-view
  /// reference used by the equivalence tests).
  SimulatedAppendMemory(u32 n, SimTime min_delay, SimTime max_delay, u64 seed,
                        AbdConfig config = {});

  u32 node_count() const { return static_cast<u32>(nodes_.size()); }
  Network& network() { return net_; }

  /// M.append(value) by `who`; completes asynchronously.
  void append(NodeId who, i64 value);

  /// M.read() by `who`; the merged view lands in `out` when complete.
  void read(NodeId who, std::vector<SignedAppend>* out);

  /// Drives the network until every outstanding operation completed.
  void run_until_idle() { net_.queue().run(); }

  /// Synchronous convenience wrappers (append/read + drive to completion).
  void append_sync(NodeId who, i64 value);
  std::vector<SignedAppend> read_sync(NodeId who);

  const AbdNode& node(u32 i) const { return *nodes_[i]; }

 private:
  crypto::KeyRegistry keys_;
  Network net_;
  std::vector<std::unique_ptr<AbdNode>> nodes_;
};

/// Cost report for one synchronous round protocol executed over the
/// simulated memory (the §4 complexity observation, quantified).
struct RoundCost {
  u64 messages = 0;
  u64 bytes = 0;
};

/// Runs `rounds` rounds of a full-information exchange in the style of
/// Algorithm 1 over the simulated memory: each round every node appends a
/// value and then reads the whole memory. Returns the per-round costs —
/// bytes grow linearly in the round number (total history), messages stay
/// at Θ(n²) per round.
std::vector<RoundCost> run_full_information_rounds(SimulatedAppendMemory& memory, u32 rounds);

}  // namespace amm::mp
