// The storage seam of the append-memory node (DESIGN.md §10).
//
// The paper's memory is an unbounded immutable history; mp::Storage is the
// node's durable image of it: an append-only record log plus periodic
// signed snapshots of the node's protocol state. AbdNode writes through
// this interface on every admission and reads it back exactly once, at
// startup (recover_from_storage): load the newest valid snapshot, replay
// the log suffix above it, then fetch whatever the cluster appended while
// the node was down via the ordinary delta-read/checkpoint-sync machinery
// — so restart wire cost is O(missed tail), not O(history).
//
// Two backends:
//   * MemStorage (here) — process-local vectors; the default for the
//     simulator and unit tests, and the "restart" fixture: hand the same
//     MemStorage to a second AbdNode and it recovers in-process.
//   * storage::FileLog (src/storage/) — CRC-framed segment files plus
//     snapshot files with torn-tail truncation on open.
//
// A Snapshot is self-certifying: `sig` is the owning node's signature over
// digest(), which folds the checkpoint digest (built by CheckpointBuilder)
// and a chain over the live records — a tampered snapshot is rejected
// wholesale at recovery and the node falls back to full log replay.
#pragma once

#include <functional>
#include <optional>
#include <string_view>
#include <vector>

#include "mp/checkpoint.hpp"
#include "mp/wire.hpp"

namespace amm::mp {

/// When the durable backend forces written bytes to stable storage.
/// MemStorage ignores the policy (there is no disk to lose).
enum class FsyncPolicy : u8 {
  kNever = 0,     ///< leave flushing to the OS (crash loses the page cache tail)
  kInterval = 1,  ///< fdatasync every `fsync_interval` appends
  kAlways = 2,    ///< fdatasync after every append (torn tail <= one record)
};

const char* fsync_policy_name(FsyncPolicy policy);
std::optional<FsyncPolicy> parse_fsync_policy(std::string_view name);

/// A signed image of the node's recoverable protocol state at one log
/// position. Everything admit() maintains is here: replaying the log from
/// `log_seq` on top of a restored snapshot reproduces the pre-crash state
/// (parked sets are derived: a live record at or above its author's
/// watermark is parked by definition).
struct Snapshot {
  u64 log_seq = 0;   ///< log position covered: records below are inside this snapshot
  u32 next_seq = 0;  ///< the node's own append counter (never reuse a seq)
  std::vector<u32> watermarks;     ///< per-author contiguous-prefix lengths
  Checkpoint checkpoint;           ///< the folded decided prefix
  std::vector<SignedAppend> live;  ///< record bodies held, in arrival order
  crypto::Signature sig;           ///< owner's signature over digest()

  /// Order-sensitive digest over the full snapshot contents. Reuses the
  /// CheckpointBuilder digest machinery: the folded prefix contributes
  /// through checkpoint.digest() (whose chains CheckpointBuilder built)
  /// and the live suffix through the same chain_step links.
  u64 digest() const;
};

/// Backend observability, surfaced through mp::NodeStats.
struct StorageStats {
  u64 log_bytes = 0;        ///< bytes in the log (frames included, all segments)
  u64 log_records = 0;      ///< records in the log
  u64 snapshot_count = 0;   ///< snapshots loaded at open plus written since
  u64 fsyncs = 0;           ///< fdatasync calls issued by the policy
  u64 torn_tail_bytes = 0;  ///< bytes truncated from the tail at open
  u64 segments = 0;         ///< segment files currently on disk (0 for MemStorage)
};

/// The storage seam. Implementations are single-threaded, owned by the
/// node's reactor thread, and report failure by returning false — the
/// protocol must keep serving (degraded to memory-only) when the disk
/// does not.
class Storage {
 public:
  virtual ~Storage() = default;

  /// Appends one admitted record to the log. Records arrive in admission
  /// order, which is the only order replay() ever needs to reproduce.
  virtual bool append(const SignedAppend& rec) = 0;

  /// The newest snapshot the backend holds, if any. Validation (signature,
  /// shape) is the caller's job — the backend only vouches for integrity
  /// of its own framing (CRC).
  virtual std::optional<Snapshot> load_snapshot() = 0;

  /// Atomically replaces the current snapshot; the backend may prune log
  /// records below snap.log_seq afterwards (they are covered).
  virtual bool write_snapshot(const Snapshot& snap) = 0;

  /// Invokes `cb` for every log record with position >= from_seq, in log
  /// order; returns how many were delivered. Positions below the oldest
  /// retained record (pruned under a snapshot) are clamped up.
  virtual u64 replay(u64 from_seq, const std::function<void(const SignedAppend&)>& cb) = 0;

  /// Position one past the newest log record (the `log_seq` a snapshot
  /// taken now would carry).
  virtual u64 log_seq() const = 0;

  virtual FsyncPolicy fsync_policy() const = 0;

  virtual const StorageStats& stats() const = 0;
};

/// In-memory backend: today's (pre-durability) behavior behind the same
/// seam. Keeping the instance alive across AbdNode lifetimes simulates a
/// restart with an intact store.
class MemStorage final : public Storage {
 public:
  explicit MemStorage(FsyncPolicy policy = FsyncPolicy::kNever) : policy_(policy) {}

  bool append(const SignedAppend& rec) override;
  std::optional<Snapshot> load_snapshot() override { return snapshot_; }
  bool write_snapshot(const Snapshot& snap) override;
  u64 replay(u64 from_seq, const std::function<void(const SignedAppend&)>& cb) override;
  u64 log_seq() const override { return base_seq_ + log_.size(); }
  FsyncPolicy fsync_policy() const override { return policy_; }
  const StorageStats& stats() const override { return stats_; }

 private:
  FsyncPolicy policy_;
  u64 base_seq_ = 0;  ///< log position of log_.front() (prefix pruned below)
  std::vector<SignedAppend> log_;
  std::optional<Snapshot> snapshot_;
  StorageStats stats_;
};

}  // namespace amm::mp
