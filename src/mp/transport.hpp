// The transport seam of the §4 substrate.
//
// AbdNode (Algorithms 2–3) is written against this interface only, so the
// same protocol code runs over the single-process simulated Network
// (mp/network.hpp) and the real TCP transport (net/transport.hpp). A
// transport routes WireMessages between the n nodes of one logical
// cluster and accounts for messages/bytes in the units of the §4
// complexity experiment (payload bytes = WireMessage::wire_size()).
#pragma once

#include <functional>

#include "mp/wire.hpp"

namespace amm::mp {

class Transport {
 public:
  using Handler = std::function<void(NodeId from, const WireMessage&)>;

  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;
  virtual ~Transport() = default;

  /// Number of nodes in the cluster (the paper's n).
  virtual u32 node_count() const = 0;

  /// Registers the message handler for locally hosted node `id`. The
  /// simulator hosts all n nodes; a TCP transport hosts exactly one.
  virtual void attach(NodeId id, Handler handler) = 0;

  /// Sends one message from `from` to `to`. Delivery is asynchronous; a
  /// transport must never invoke a handler re-entrantly from send().
  virtual void send(NodeId from, NodeId to, WireMessage msg) = 0;

  /// Broadcast to every node, including the sender (self-delivery models
  /// the local bookkeeping step and keeps the quorum arithmetic uniform).
  virtual void broadcast(NodeId from, const WireMessage& msg) = 0;

  /// §4 complexity accounting: messages / payload bytes handed to send().
  virtual u64 messages_sent() const = 0;
  virtual u64 bytes_sent() const = 0;
};

}  // namespace amm::mp
