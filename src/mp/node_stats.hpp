// Unified node telemetry: every counter a hosted node exports — transport,
// protocol, cache, compaction and (since the durable log) storage — in one
// struct with one serialization order.
//
// kNodeStatsFields is the single source of truth: the control-plane codec
// (net/codec.cpp), amm_ctl's `stats` printout, amm_swarm's per-node table
// and cluster_test.py's `name=value` parsing all walk this table, so adding
// a counter is one line here and nowhere else. Field names are the stable
// script-facing identifiers (cluster_test.py greps `name=value`); renaming
// one is a wire-format change for the tooling.
#pragma once

#include <iterator>

#include "support/types.hpp"

namespace amm::mp {

/// All counters of one node process. Serialized as one u64 per field in
/// kNodeStatsFields order (little-endian, by net/codec).
struct NodeStats {
  u64 messages_sent = 0;   ///< protocol messages the transport sent
  u64 bytes_sent = 0;      ///< payload bytes the transport sent
  u64 view_size = 0;       ///< records in the local view (live suffix)
  u64 appends_issued = 0;  ///< append operations this node started
  u64 reconnects = 0;      ///< outbound links re-dialed after a drop
  u64 auth_rejects = 0;    ///< handshakes refused (bad hello signature)
  u64 sig_rejects = 0;     ///< wire messages dropped for bad signatures
  u64 reads_served_full = 0;   ///< read requests answered with a full view
  u64 reads_served_delta = 0;  ///< read requests answered above a frontier
  u64 read_records_sent = 0;   ///< records shipped in this node's read replies
  u64 read_fallbacks = 0;      ///< this node's delta reads that fell back to full
  u64 verify_cache_hits = 0;   ///< signature checks answered by the verify cache
  u64 verify_cache_misses = 0;     ///< cache probes that went to the registry
  u64 verify_cache_evictions = 0;  ///< cache keys aged out by rotation
  u64 records_folded = 0;  ///< records summarized by the checkpoint
  u64 live_records = 0;    ///< record bodies currently held (view size)
  u64 parked_rejects = 0;  ///< admissions refused by the parked cap
  u64 rss_kb = 0;          ///< resident set size of the node process, KiB
  u64 log_bytes = 0;       ///< bytes in the durable append log (0 without --store-dir)
  u64 snapshot_count = 0;  ///< snapshots loaded at open plus written since
  u64 recovery_replayed_records = 0;  ///< records replayed from disk at startup
};

/// One row of the serialization table: script-facing name plus the member
/// it reads. The table order *is* the wire order of the ctl stats block.
struct NodeStatsField {
  const char* name;
  u64 NodeStats::*member;
};

inline constexpr NodeStatsField kNodeStatsFields[] = {
    {"msgs", &NodeStats::messages_sent},
    {"bytes", &NodeStats::bytes_sent},
    {"view", &NodeStats::view_size},
    {"appends", &NodeStats::appends_issued},
    {"reconnects", &NodeStats::reconnects},
    {"auth_rejects", &NodeStats::auth_rejects},
    {"sig_rejects", &NodeStats::sig_rejects},
    {"reads_full", &NodeStats::reads_served_full},
    {"reads_delta", &NodeStats::reads_served_delta},
    {"read_records_sent", &NodeStats::read_records_sent},
    {"read_fallbacks", &NodeStats::read_fallbacks},
    {"verify_cache_hits", &NodeStats::verify_cache_hits},
    {"verify_cache_misses", &NodeStats::verify_cache_misses},
    {"verify_cache_evictions", &NodeStats::verify_cache_evictions},
    {"records_folded", &NodeStats::records_folded},
    {"live_records", &NodeStats::live_records},
    {"parked_rejects", &NodeStats::parked_rejects},
    {"rss_kb", &NodeStats::rss_kb},
    {"log_bytes", &NodeStats::log_bytes},
    {"snapshot_count", &NodeStats::snapshot_count},
    {"recovery_replayed_records", &NodeStats::recovery_replayed_records},
};

inline constexpr usize kNodeStatsFieldCount = std::size(kNodeStatsFields);

}  // namespace amm::mp
