// Decided-prefix compaction (DESIGN.md §8): folding the stable prefix of
// the append memory into a mp::Checkpoint.
//
// The *stability cut* s_cut of a node is the minimum of its per-author
// contiguous-prefix watermarks. Every record (a, s) with s < s_cut is
// final: a correct author issues seqs in order and the node already holds
// a's full prefix up to at least s_cut, so no record below the cut can
// ever appear that the node does not hold. The folded set is therefore a
// *permanent canonical prefix* — identical (as a set) on every node whose
// cut has reached s_cut — and can be summarized once and never revisited:
//
//   * per-author digest chains pin the exact (seq, value) sequence, so two
//     checkpoints with equal folded_below are cross-checkable in O(n);
//   * the folded vote sum equals the Algorithm 6 partial sum over the
//     canonical first `folded_records` records (the canonical order —
//     seq, then author — enumerates all seqs < s_cut of every author
//     before any seq >= s_cut), so decisions for k >= folded_records stay
//     exact without the folded bodies (net/decision.hpp).
//
// CheckpointBuilder performs the fold incrementally: each extend() call
// advances a checkpoint from its current cut to a higher one, consuming
// the folded records from the live view. AbdNode owns the policy (when to
// cut, whether to drop folded bodies); this class owns the arithmetic.
#pragma once

#include <vector>

#include "mp/wire.hpp"

namespace amm::mp {

class CheckpointBuilder {
 public:
  /// `authors` is the registry size; chains are indexed by author.
  explicit CheckpointBuilder(u32 authors) : authors_(authors) {}

  u32 authors() const { return authors_; }

  /// One link of a per-author digest chain: chain' = H(chain, seq, value).
  static u64 chain_step(u64 chain, u32 seq, i64 value);

  /// Advances `cp` so it covers every record with seq < s_cut, folding the
  /// records in [cp.folded_below, s_cut) of every author out of `view`.
  /// Requires s_cut >= cp.folded_below and that `view` holds the full
  /// range for every author (guaranteed when s_cut is at or below the
  /// caller's stability cut and folded bodies below cp.folded_below are
  /// the only ones ever dropped). Returns the number of records folded by
  /// this call; `cp.sig` is left untouched (the owner re-signs).
  u64 extend(Checkpoint& cp, const std::vector<SignedAppend>& view, u32 s_cut) const;

  /// True iff `cp` is internally consistent for this author count: chain
  /// vector sized to the registry and folded_records matching the uniform
  /// cut. A structurally inconsistent checkpoint (e.g. from a lying peer)
  /// fails here before any cross-peer comparison.
  bool well_formed(const Checkpoint& cp) const;

 private:
  u32 authors_;
};

}  // namespace amm::mp
