// Wire-level message types of the §4 ABD simulation (Algorithms 2–3).
//
// `SignedAppend` is the unit the memory views consist of; `WireMessage` is
// the tagged union over the six ABD message kinds (the four textbook ones
// plus the checkpoint-sync pair of the decided-prefix compaction,
// DESIGN.md §8). Both the simulated
// Network and the real TCP transport (src/net/) move exactly these types;
// `wire_size()` is the *exact* encoded payload size of net/codec — the
// codec derives its layout from the kWire* constants below and
// tests/net/codec_test.cpp pins encode(msg).size() == msg.wire_size() for
// every kind, so the §4/E10 complexity numbers reflect real bytes.
#pragma once

#include <vector>

#include "crypto/signature.hpp"
#include "support/types.hpp"

namespace amm::mp {

/// One signed append record — the unit the simulated memory views consist
/// of. `seq` orders the author's own appends (the per-register total order
/// that R_i provides in the append memory).
struct SignedAppend {
  NodeId author;
  u32 seq = 0;
  i64 value = 0;
  crypto::Signature sig;

  u64 digest() const {
    return crypto::DigestBuilder{}
        .add(author.index)
        .add(seq)
        .add(static_cast<u64>(value))
        .finish();
  }

  bool operator==(const SignedAppend& o) const {
    return author == o.author && seq == o.seq && value == o.value;
  }
};

/// One entry of a reader's frontier: a per-author watermark. `seq` is the
/// length of the *contiguous prefix* of `author`'s records the reader
/// holds — it holds every seq < `seq` (and possibly some above, gathered
/// out of order by earlier read merges; those are deduplicated on arrival).
/// A responder serving a delta read ships only records with
/// seq >= frontier[author], which is exact because the append memory gives
/// each author's register a total order: one record per (author, seq).
struct FrontierEntry {
  NodeId author;
  u32 seq = 0;

  bool operator==(const FrontierEntry&) const = default;
};

/// Summary of the permanently decided prefix of the append memory (the
/// stability cut; DESIGN.md §8). `folded_below` is uniform across authors:
/// every author's records with seq < folded_below are folded, and because
/// the cut never exceeds the minimum per-author watermark, no record below
/// it can still be in flight — the folded set is final. `chains[a]` is a
/// digest chain over author a's folded (seq, value) pairs in seq order, so
/// two nodes with equal `folded_below` hold byte-identical decided
/// prefixes iff their chains match, regardless of arrival order.
/// `vote_sum` is the sum of ±1 record signs over the folded set (order
/// independent), which lets Algorithm 6 decide first-k for any
/// k >= folded_records without the folded bodies.
struct Checkpoint {
  u32 folded_below = 0;       ///< every (author, seq) with seq < this is folded
  std::vector<u64> chains;    ///< per-author digest chain over folded records
  u64 folded_records = 0;     ///< total records folded (= folded_below * authors)
  i64 vote_sum = 0;           ///< sum of ±1 signs over the folded records
  crypto::Signature sig;      ///< issuer's signature over digest()

  u64 digest() const {
    crypto::DigestBuilder b;
    b.add(0x636865636b707431ULL);  // domain separator ("checkpt1")
    b.add(folded_below);
    b.add(chains.size());
    for (const u64 c : chains) b.add(c);
    b.add(folded_records);
    b.add(static_cast<u64>(vote_sum));
    return b.finish();
  }

  /// Equality of the summarized prefix itself, ignoring who signed it —
  /// the cross-check a checkpoint sync runs across peers' replies.
  bool structurally_equal(const Checkpoint& o) const {
    return folded_below == o.folded_below && chains == o.chains &&
           folded_records == o.folded_records && vote_sum == o.vote_sum;
  }

  bool operator==(const Checkpoint& o) const {
    return structurally_equal(o) && sig == o.sig;
  }
};

/// Exact encoded field widths (little-endian, fixed width). net/codec
/// writes fields in declaration order using these widths; change them only
/// together with the codec.
inline constexpr usize kWireSigBytes = 4 + 8;                    // signer + tag
inline constexpr usize kWireRecordBytes = 4 + 4 + 8 + kWireSigBytes;  // author+seq+value+sig
inline constexpr usize kWireKindBytes = 1;
inline constexpr usize kWireReadIdBytes = 8;
inline constexpr usize kWireCountBytes = 4;   // length prefix (view / frontier)
inline constexpr usize kWireFrontierEntryBytes = 4 + 4;  // author + seq
inline constexpr usize kWireEchoBytes = 8;    // digest-of-frontier echo in kReadReply
inline constexpr usize kWireChainBytes = 8;   // one per-author checkpoint digest chain
/// Fixed part of an encoded Checkpoint: folded_below + chain count +
/// folded_records + vote_sum + signature (the chains are the variable part).
inline constexpr usize kWireCheckpointFixedBytes = 4 + kWireCountBytes + 8 + 8 + kWireSigBytes;

/// Exact encoded size of a Checkpoint with `chains` per-author chains.
inline constexpr usize wire_checkpoint_bytes(usize chains) {
  return kWireCheckpointFixedBytes + chains * kWireChainBytes;
}

/// Wire format: a tagged union over the six ABD message kinds.
struct WireMessage {
  enum class Kind : u8 { kAppend, kAck, kReadReq, kReadReply, kCheckpointReq, kCheckpointReply };

  Kind kind = Kind::kAppend;
  SignedAppend append;              ///< kAppend: the record; kAck: the acked record
  crypto::Signature ack_sig;        ///< kAck: acker's signature over the record digest
  u64 read_id = 0;                  ///< kReadReq/kReadReply/kCheckpointReq/kCheckpointReply id
  std::vector<FrontierEntry> frontier;  ///< kReadReq: reader's watermarks (empty = full read)
  u64 frontier_echo = 0;            ///< kReadReply: digest of the frontier being answered
  std::vector<SignedAppend> view;   ///< kReadReply: records above the frontier
  Checkpoint checkpoint;            ///< kCheckpointReply: responder's signed checkpoint

  /// Exact serialized payload size in bytes (the net/codec encoding; the
  /// 4-byte frame length prefix of the TCP transport is not included).
  usize wire_size() const {
    switch (kind) {
      case Kind::kAppend:
        return kWireKindBytes + kWireRecordBytes;
      case Kind::kAck:
        return kWireKindBytes + kWireRecordBytes + kWireSigBytes;
      case Kind::kReadReq:
        return kWireKindBytes + kWireReadIdBytes + kWireCountBytes +
               frontier.size() * kWireFrontierEntryBytes;
      case Kind::kReadReply:
        return kWireKindBytes + kWireReadIdBytes + kWireEchoBytes + kWireCountBytes +
               view.size() * kWireRecordBytes;
      case Kind::kCheckpointReq:
        return kWireKindBytes + kWireReadIdBytes;
      case Kind::kCheckpointReply:
        return kWireKindBytes + kWireReadIdBytes + kWireCheckpointFixedBytes +
               checkpoint.chains.size() * kWireChainBytes;
    }
    return kWireKindBytes;
  }
};

/// Digest of a frontier, echoed back in every kReadReply so the reader can
/// tell which request (delta or full-read fallback) a reply answers —
/// stale replies to a superseded frontier are dropped by echo mismatch.
inline u64 frontier_digest(const std::vector<FrontierEntry>& frontier) {
  crypto::DigestBuilder b;
  b.add(0x66726f6e74696572ULL);  // domain separator ("frontier")
  for (const FrontierEntry& e : frontier) {
    b.add((static_cast<u64>(e.author.index) << 32) | e.seq);
  }
  return b.finish();
}

}  // namespace amm::mp
