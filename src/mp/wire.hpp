// Wire-level message types of the §4 ABD simulation (Algorithms 2–3).
//
// `SignedAppend` is the unit the memory views consist of; `WireMessage` is
// the tagged union over the four ABD message kinds. Both the simulated
// Network and the real TCP transport (src/net/) move exactly these types;
// `wire_size()` is the *exact* encoded payload size of net/codec — the
// codec derives its layout from the kWire* constants below and
// tests/net/codec_test.cpp pins encode(msg).size() == msg.wire_size() for
// every kind, so the §4/E10 complexity numbers reflect real bytes.
#pragma once

#include <vector>

#include "crypto/signature.hpp"
#include "support/types.hpp"

namespace amm::mp {

/// One signed append record — the unit the simulated memory views consist
/// of. `seq` orders the author's own appends (the per-register total order
/// that R_i provides in the append memory).
struct SignedAppend {
  NodeId author;
  u32 seq = 0;
  i64 value = 0;
  crypto::Signature sig;

  u64 digest() const {
    return crypto::DigestBuilder{}
        .add(author.index)
        .add(seq)
        .add(static_cast<u64>(value))
        .finish();
  }

  bool operator==(const SignedAppend& o) const {
    return author == o.author && seq == o.seq && value == o.value;
  }
};

/// Exact encoded field widths (little-endian, fixed width). net/codec
/// writes fields in declaration order using these widths; change them only
/// together with the codec.
inline constexpr usize kWireSigBytes = 4 + 8;                    // signer + tag
inline constexpr usize kWireRecordBytes = 4 + 4 + 8 + kWireSigBytes;  // author+seq+value+sig
inline constexpr usize kWireKindBytes = 1;
inline constexpr usize kWireReadIdBytes = 8;
inline constexpr usize kWireCountBytes = 4;  // view length prefix in kReadReply

/// Wire format: a tagged union over the four ABD message kinds.
struct WireMessage {
  enum class Kind : u8 { kAppend, kAck, kReadReq, kReadReply };

  Kind kind = Kind::kAppend;
  SignedAppend append;              ///< kAppend: the record; kAck: the acked record
  crypto::Signature ack_sig;        ///< kAck: acker's signature over the record digest
  u64 read_id = 0;                  ///< kReadReq / kReadReply correlation id
  std::vector<SignedAppend> view;   ///< kReadReply: full local view

  /// Exact serialized payload size in bytes (the net/codec encoding; the
  /// 4-byte frame length prefix of the TCP transport is not included).
  usize wire_size() const {
    switch (kind) {
      case Kind::kAppend:
        return kWireKindBytes + kWireRecordBytes;
      case Kind::kAck:
        return kWireKindBytes + kWireRecordBytes + kWireSigBytes;
      case Kind::kReadReq:
        return kWireKindBytes + kWireReadIdBytes;
      case Kind::kReadReply:
        return kWireKindBytes + kWireReadIdBytes + kWireCountBytes +
               view.size() * kWireRecordBytes;
    }
    return kWireKindBytes;
  }
};

}  // namespace amm::mp
