// Wire-level message types of the §4 ABD simulation (Algorithms 2–3).
//
// `SignedAppend` is the unit the memory views consist of; `WireMessage` is
// the tagged union over the four ABD message kinds. Both the simulated
// Network and the real TCP transport (src/net/) move exactly these types;
// `wire_size()` is the *exact* encoded payload size of net/codec — the
// codec derives its layout from the kWire* constants below and
// tests/net/codec_test.cpp pins encode(msg).size() == msg.wire_size() for
// every kind, so the §4/E10 complexity numbers reflect real bytes.
#pragma once

#include <vector>

#include "crypto/signature.hpp"
#include "support/types.hpp"

namespace amm::mp {

/// One signed append record — the unit the simulated memory views consist
/// of. `seq` orders the author's own appends (the per-register total order
/// that R_i provides in the append memory).
struct SignedAppend {
  NodeId author;
  u32 seq = 0;
  i64 value = 0;
  crypto::Signature sig;

  u64 digest() const {
    return crypto::DigestBuilder{}
        .add(author.index)
        .add(seq)
        .add(static_cast<u64>(value))
        .finish();
  }

  bool operator==(const SignedAppend& o) const {
    return author == o.author && seq == o.seq && value == o.value;
  }
};

/// One entry of a reader's frontier: a per-author watermark. `seq` is the
/// length of the *contiguous prefix* of `author`'s records the reader
/// holds — it holds every seq < `seq` (and possibly some above, gathered
/// out of order by earlier read merges; those are deduplicated on arrival).
/// A responder serving a delta read ships only records with
/// seq >= frontier[author], which is exact because the append memory gives
/// each author's register a total order: one record per (author, seq).
struct FrontierEntry {
  NodeId author;
  u32 seq = 0;

  bool operator==(const FrontierEntry&) const = default;
};

/// Exact encoded field widths (little-endian, fixed width). net/codec
/// writes fields in declaration order using these widths; change them only
/// together with the codec.
inline constexpr usize kWireSigBytes = 4 + 8;                    // signer + tag
inline constexpr usize kWireRecordBytes = 4 + 4 + 8 + kWireSigBytes;  // author+seq+value+sig
inline constexpr usize kWireKindBytes = 1;
inline constexpr usize kWireReadIdBytes = 8;
inline constexpr usize kWireCountBytes = 4;   // length prefix (view / frontier)
inline constexpr usize kWireFrontierEntryBytes = 4 + 4;  // author + seq
inline constexpr usize kWireEchoBytes = 8;    // digest-of-frontier echo in kReadReply

/// Wire format: a tagged union over the four ABD message kinds.
struct WireMessage {
  enum class Kind : u8 { kAppend, kAck, kReadReq, kReadReply };

  Kind kind = Kind::kAppend;
  SignedAppend append;              ///< kAppend: the record; kAck: the acked record
  crypto::Signature ack_sig;        ///< kAck: acker's signature over the record digest
  u64 read_id = 0;                  ///< kReadReq / kReadReply correlation id
  std::vector<FrontierEntry> frontier;  ///< kReadReq: reader's watermarks (empty = full read)
  u64 frontier_echo = 0;            ///< kReadReply: digest of the frontier being answered
  std::vector<SignedAppend> view;   ///< kReadReply: records above the frontier

  /// Exact serialized payload size in bytes (the net/codec encoding; the
  /// 4-byte frame length prefix of the TCP transport is not included).
  usize wire_size() const {
    switch (kind) {
      case Kind::kAppend:
        return kWireKindBytes + kWireRecordBytes;
      case Kind::kAck:
        return kWireKindBytes + kWireRecordBytes + kWireSigBytes;
      case Kind::kReadReq:
        return kWireKindBytes + kWireReadIdBytes + kWireCountBytes +
               frontier.size() * kWireFrontierEntryBytes;
      case Kind::kReadReply:
        return kWireKindBytes + kWireReadIdBytes + kWireEchoBytes + kWireCountBytes +
               view.size() * kWireRecordBytes;
    }
    return kWireKindBytes;
  }
};

/// Digest of a frontier, echoed back in every kReadReply so the reader can
/// tell which request (delta or full-read fallback) a reply answers —
/// stale replies to a superseded frontier are dropped by echo mismatch.
inline u64 frontier_digest(const std::vector<FrontierEntry>& frontier) {
  crypto::DigestBuilder b;
  b.add(0x66726f6e74696572ULL);  // domain separator ("frontier")
  for (const FrontierEntry& e : frontier) {
    b.add((static_cast<u64>(e.author.index) << 32) | e.seq);
  }
  return b.finish();
}

}  // namespace amm::mp
