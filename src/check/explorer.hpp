// Exhaustive computation-graph exploration for the §2 impossibility
// machinery: configurations, accessibility, valency classification
// (§2.1), bivalent initial configurations (Lemma 2.2), bivalence-
// preserving extensions (Lemma 2.3) and crash-resilience (v-free
// termination).
//
// A configuration is (memory content, per-node last-read prefixes,
// per-node decision). Events are per-node protocol steps; reads of an
// unchanged memory are the self-loops of §2.1 property (b). A node always
// sees its own register truthfully (it wrote it); other registers are as
// of its last read.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "check/async_protocol.hpp"

namespace amm::check {

struct ExploreLimits {
  u32 max_appends_per_node = 3;   ///< protocol exceeding this is flagged
  u64 max_configs = 2'000'000;    ///< exploration budget
};

/// Verdict for one (protocol, n, inputs-universe) exploration.
struct ExploreResult {
  std::string protocol;
  u32 n = 0;
  u64 configs_explored = 0;
  bool budget_exhausted = false;
  bool append_bound_exceeded = false;

  /// Safety.
  bool agreement_violation = false;
  bool validity_violation = false;

  /// Lemma 2.2: some initial input vector is bivalent.
  std::optional<std::vector<u8>> bivalent_initial;

  /// Lemma 2.3 over the whole reachable graph: from every reachable
  /// bivalent configuration, for *every* node v, a v-free path followed by
  /// one v-step reaches a bivalent configuration again. When this holds
  /// with a bivalent initial configuration, the round-robin construction of
  /// Theorem 2.1 yields an infinite fair schedule that never decides.
  bool lemma23_holds = true;

  /// 1-resilience: false if some node v and reachable configuration exist
  /// from which no v-free continuation ever reaches a state where all
  /// other nodes have decided.
  bool one_resilient = true;

  /// When the FLP construction applies (bivalent initial configuration and
  /// Lemma 2.3 holding along the way), the checker extracts an explicit
  /// fair schedule of bivalence-preserving steps. If a (configuration,
  /// round-robin phase) pair repeats, `witness_cycle` is non-empty and
  /// `witness_prefix` + endlessly repeating `witness_cycle` is a concrete
  /// never-deciding execution — Theorem 2.1's object, not just its
  /// verdict. Otherwise `witness_prefix` is the longest fair
  /// bivalence-preserving schedule found before Lemma 2.3's hypothesis
  /// (1-resilience) failed at some configuration.
  std::vector<u32> witness_prefix;  ///< node ids, from the bivalent initial config
  std::vector<u32> witness_cycle;   ///< node ids; repeats forever, covers every node

  /// Human-readable classification of how the protocol fails Theorem 2.1.
  std::string verdict() const;
};

/// Explores every initial input vector in {0,1}^n for the given protocol.
ExploreResult explore(const AsyncProtocol& protocol, u32 n, const ExploreLimits& limits = {});

}  // namespace amm::check
