#include "check/determinism.hpp"

#include <cstring>

#include "adversary/sync_strategies.hpp"
#include "crypto/siphash.hpp"
#include "protocols/chain_ba.hpp"
#include "protocols/dag_ba.hpp"
#include "protocols/nakamoto.hpp"
#include "protocols/outcome.hpp"
#include "protocols/sync_ba.hpp"
#include "protocols/timestamp_ba.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace amm::check {
namespace {

constexpr crypto::SipKey kTraceKey{0x414d4d5f54524143ULL, 0x455f4b45595f3032ULL};

/// Canonical little-endian serializer. Every quantity goes through one of
/// these helpers so a trace is a pure function of the run's observables.
class TraceWriter {
 public:
  void word(u64 w) {
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(static_cast<std::byte>((w >> (8 * i)) & 0xff));
    }
  }

  void time(SimTime t) {
    // Bit-exact: determinism means the same doubles, not merely close ones.
    u64 w;
    static_assert(sizeof(SimTime) == sizeof(u64));
    std::memcpy(&w, &t, sizeof(w));
    word(w);
  }

  void vote(std::optional<Vote> v) {
    word(v ? static_cast<u64>(static_cast<i64>(vote_value(*v))) : u64{0xff});
  }

  void outcome(const proto::Outcome& out) {
    word(out.terminated ? 1 : 0);
    word(out.decisions.size());
    for (const auto& d : out.decisions) vote(d);
    time(out.elapsed);
    word(out.total_appends);
    word(out.rounds);
    word(out.byz_in_decision_set);
    word(out.decision_set_size);
  }

  std::vector<std::byte> take() { return std::move(bytes_); }

 private:
  std::vector<std::byte> bytes_;
};

proto::Scenario canonical_scenario(u32 n, u32 t) {
  proto::Scenario s;
  s.n = n;
  s.t = t;
  s.correct_input = Vote::kPlus;
  return s;
}

std::vector<std::byte> trace_sync_ba(u64 seed, u32 n, u32 t) {
  proto::SyncParams params;
  params.scenario = canonical_scenario(n, t);
  // Randomized split-visibility adversary: the run only reproduces if the
  // adversary's Rng stream is also a pure function of the seed.
  adv::SplitVisionSync adversary(Vote::kMinus, Rng::for_stream(seed, 7));
  const proto::Outcome out = proto::run_sync_ba(params, adversary);
  TraceWriter w;
  w.word(static_cast<u64>(ProtocolKind::kSyncBa));
  w.outcome(out);
  return w.take();
}

std::vector<std::byte> trace_timestamp_ba(u64 seed, u32 n, u32 t) {
  proto::TimestampParams params;
  params.scenario = canonical_scenario(n, t);
  params.k = 15;
  params.lambda = 1.0;
  const proto::Outcome out = proto::run_timestamp_ba(params, Rng::for_stream(seed, 11));
  TraceWriter w;
  w.word(static_cast<u64>(ProtocolKind::kTimestampBa));
  w.outcome(out);
  return w.take();
}

std::vector<std::byte> trace_chain_ba(u64 seed, u32 n, u32 t) {
  proto::ChainParams params;
  params.scenario = canonical_scenario(n, t);
  params.k = 15;
  params.lambda = 0.5;
  params.tie_break = chain::TieBreak::kRandomized;
  params.adversary = proto::ChainAdversary::kRushExtend;
  const proto::Outcome out = proto::run_chain_continuous(params, Rng::for_stream(seed, 13));
  TraceWriter w;
  w.word(static_cast<u64>(ProtocolKind::kChainBa));
  w.outcome(out);
  return w.take();
}

std::vector<std::byte> trace_dag_ba(u64 seed, u32 n, u32 t) {
  proto::DagParams params;
  params.scenario = canonical_scenario(n, t);
  params.k = 15;
  params.lambda = 0.5;
  params.adversary = proto::DagAdversary::kRateAndWithhold;
  const proto::DagResult result = proto::run_dag_continuous(params, Rng::for_stream(seed, 17));
  TraceWriter w;
  w.word(static_cast<u64>(ProtocolKind::kDagBa));
  w.outcome(result.outcome);
  w.word(result.dumped);
  w.word(result.omniscient_bound);
  w.time(result.final_gap);
  return w.take();
}

std::vector<std::byte> trace_nakamoto(u64 seed, u32 n, u32 t) {
  proto::NakamotoParams params;
  params.scenario = canonical_scenario(n, t);
  params.confirmation_depth = 4;
  const proto::NakamotoResult result =
      proto::run_double_spend_race(params, Rng::for_stream(seed, 19));
  TraceWriter w;
  w.word(static_cast<u64>(ProtocolKind::kNakamoto));
  w.word(result.terminated ? 1 : 0);
  w.word(result.reversed ? 1 : 0);
  w.word(result.blocks_to_confirm);
  w.time(result.time_to_confirm);
  w.word(static_cast<u64>(result.final_lead));
  return w.take();
}

}  // namespace

const char* protocol_name(ProtocolKind protocol) {
  switch (protocol) {
    case ProtocolKind::kSyncBa: return "sync_ba";
    case ProtocolKind::kTimestampBa: return "timestamp_ba";
    case ProtocolKind::kChainBa: return "chain_ba";
    case ProtocolKind::kDagBa: return "dag_ba";
    case ProtocolKind::kNakamoto: return "nakamoto";
  }
  AMM_ASSERT(false);
  return "?";
}

std::vector<std::byte> run_trace(ProtocolKind protocol, u64 seed, u32 n, u32 t) {
  switch (protocol) {
    case ProtocolKind::kSyncBa: return trace_sync_ba(seed, n, t);
    case ProtocolKind::kTimestampBa: return trace_timestamp_ba(seed, n, t);
    case ProtocolKind::kChainBa: return trace_chain_ba(seed, n, t);
    case ProtocolKind::kDagBa: return trace_dag_ba(seed, n, t);
    case ProtocolKind::kNakamoto: return trace_nakamoto(seed, n, t);
  }
  AMM_ASSERT(false);
  return {};
}

u64 trace_digest(const std::vector<std::byte>& trace) {
  return crypto::siphash24(kTraceKey, std::span<const std::byte>(trace));
}

DeterminismReport audit_determinism(ThreadPool& pool, ProtocolKind protocol, u64 seed, u32 n,
                                    u32 t) {
  std::vector<std::byte> traces[2];
  // Two independent pool tasks: if any state leaks between executions (a
  // shared generator, a static cache keyed by thread), the interleaving
  // makes it visible here.
  parallel_for(pool, 2, [&](usize i) { traces[i] = run_trace(protocol, seed, n, t); });

  DeterminismReport report;
  report.protocol = protocol;
  report.seed = seed;
  report.trace_size_a = traces[0].size();
  report.trace_size_b = traces[1].size();
  report.digest_a = trace_digest(traces[0]);
  report.digest_b = trace_digest(traces[1]);
  const usize common = std::min(traces[0].size(), traces[1].size());
  usize diverge = common;
  for (usize i = 0; i < common; ++i) {
    if (traces[0][i] != traces[1][i]) {
      diverge = i;
      break;
    }
  }
  report.deterministic =
      traces[0].size() == traces[1].size() && diverge == common;
  report.first_divergence = report.deterministic ? 0 : diverge;
  return report;
}

std::vector<DeterminismReport> audit_all_protocols(ThreadPool& pool, u64 seed, u32 n, u32 t) {
  std::vector<DeterminismReport> reports;
  reports.reserve(kAllProtocols.size());
  for (const ProtocolKind protocol : kAllProtocols) {
    reports.push_back(audit_determinism(pool, protocol, seed, n, t));
  }
  return reports;
}

std::string report_to_string(const DeterminismReport& report) {
  std::string s = protocol_name(report.protocol);
  s += " seed=" + std::to_string(report.seed);
  if (report.deterministic) {
    s += " deterministic digest=" + std::to_string(report.digest_a);
  } else {
    s += " NONDETERMINISTIC sizes=" + std::to_string(report.trace_size_a) + "/" +
         std::to_string(report.trace_size_b) +
         " first_divergence=" + std::to_string(report.first_divergence) +
         " digests=" + std::to_string(report.digest_a) + "/" + std::to_string(report.digest_b);
  }
  return s;
}

}  // namespace amm::check
