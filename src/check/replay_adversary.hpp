// Shared machinery for the exhaustive synchronous-adversary searches
// (round_lb, sync_valency): a canonical enumeration of per-round Byzantine
// choices and an adversary that replays a fixed choice vector.
//
// Choice encoding, per (round, Byzantine node):
//   0                  — stay silent
//   1 + c, where       — append, with
//     c % 2            —   value (0 = -1, 1 = +1)
//     (c / 2) % 2      —   references (0 = honest L_{r-1}, 1 = private chain)
//     c / 4            —   visibility subset index over the correct nodes
#pragma once

#include <vector>

#include "protocols/sync_ba.hpp"

namespace amm::check {

/// Visibility subsets over `correct` nodes: complete enumeration for small
/// systems, a representative family otherwise (sets `truncated`).
inline std::vector<std::vector<bool>> visibility_subsets(u32 correct, bool* truncated) {
  std::vector<std::vector<bool>> subsets;
  if (correct <= 4) {
    if (truncated) *truncated = false;
    for (u32 bits = 0; bits < (1u << correct); ++bits) {
      std::vector<bool> sub(correct);
      for (u32 v = 0; v < correct; ++v) sub[v] = (bits >> v) & 1u;
      subsets.push_back(std::move(sub));
    }
  } else {
    if (truncated) *truncated = true;
    for (const double frac : {0.0, 0.5, 1.0}) {
      std::vector<bool> sub(correct);
      for (u32 v = 0; v < correct; ++v) sub[v] = v < static_cast<u32>(frac * correct);
      subsets.push_back(std::move(sub));
    }
  }
  return subsets;
}

/// Number of distinct choices per (round, node) slot given the subsets.
inline u32 choices_per_slot(usize subset_count) {
  return 1 + 4 * static_cast<u32>(subset_count);
}

/// Replays one choice per (round, Byzantine node), row-major by round.
class ReplayAdversary final : public proto::SyncAdversary {
 public:
  ReplayAdversary(const std::vector<u32>& choices, const std::vector<std::vector<bool>>& subsets,
                  u32 t)
      : choices_(&choices), subsets_(&subsets), t_(t) {}

  std::optional<proto::SyncAppend> on_round(u32 round, NodeId byz,
                                            const proto::SyncContext& ctx) override {
    const proto::Scenario& s = *ctx.scenario;
    const u32 rank = byz.index - s.correct_count();
    const u32 choice = (*choices_)[(round - 1) * t_ + rank];
    if (choice == 0) return std::nullopt;

    const u32 c = choice - 1;
    const u32 value_bit = c % 2;
    const u32 ref_mode = (c / 2) % 2;
    const u32 subset = c / 4;

    proto::SyncAppend app;
    app.value = value_bit != 0 ? Vote::kPlus : Vote::kMinus;
    if (ref_mode == 0) {
      app.refs = ctx.prev_round_views->at(byz.index);
    } else {
      const auto& msgs = *ctx.msgs;
      for (u32 i = static_cast<u32>(msgs.size()); i-- > 0;) {
        if (s.is_byzantine(msgs[i].author)) {
          app.refs.push_back(i);
          break;
        }
      }
    }
    app.visible_to.assign(s.n, false);
    for (u32 v = s.correct_count(); v < s.n; ++v) app.visible_to[v] = true;
    const auto& sub = (*subsets_)[subset];
    for (u32 v = 0; v < s.correct_count(); ++v) app.visible_to[v] = sub[v];
    return app;
  }

 private:
  const std::vector<u32>* choices_;
  const std::vector<std::vector<bool>>* subsets_;
  u32 t_;
};

}  // namespace amm::check
