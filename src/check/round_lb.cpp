#include "check/round_lb.hpp"

#include <vector>

#include "check/replay_adversary.hpp"
#include "support/assert.hpp"

namespace amm::check {

RoundLbResult search_round_lb(u32 n, u32 t, u32 rounds) {
  AMM_EXPECTS(t >= 1 && t < n);
  AMM_EXPECTS(rounds >= 1);
  RoundLbResult result;
  result.n = n;
  result.t = t;
  result.rounds = rounds;

  const u32 correct = n - t;
  const auto subsets = visibility_subsets(correct, &result.search_truncated);
  const u32 per_slot = choices_per_slot(subsets.size());
  const u32 slots = rounds * t;

  // Correct-input vectors: all of {+1,-1}^(n-t).
  std::vector<std::vector<Vote>> input_vectors;
  for (u32 bits = 0; bits < (1u << correct); ++bits) {
    std::vector<Vote> in(correct);
    for (u32 v = 0; v < correct; ++v) in[v] = ((bits >> v) & 1u) ? Vote::kPlus : Vote::kMinus;
    input_vectors.push_back(std::move(in));
  }

  // Odometer over the full strategy space.
  std::vector<u32> choices(slots, 0);
  for (;;) {
    for (const auto& inputs : input_vectors) {
      proto::Scenario s;
      s.n = n;
      s.t = t;
      s.inputs = inputs;

      proto::SyncParams params;
      params.scenario = s;
      params.rounds_override = rounds;

      ReplayAdversary adversary(choices, subsets, t);
      const proto::Outcome out = proto::run_sync_ba(params, adversary);
      ++result.executions;
      if (!out.agreement()) {
        result.disagreement = true;
        return result;
      }
    }
    // Advance the odometer.
    u32 pos = 0;
    while (pos < slots) {
      if (++choices[pos] < per_slot) break;
      choices[pos] = 0;
      ++pos;
    }
    if (pos == slots) break;
  }
  return result;
}

}  // namespace amm::check
