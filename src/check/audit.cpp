#include "check/audit.hpp"

#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "crypto/siphash.hpp"
#include "support/assert.hpp"

namespace amm::check {
namespace {

/// Fixed audit key: the digests only need to detect accidental mutation,
/// not withstand an adversary with access to the process image.
constexpr crypto::SipKey kAuditKey{0x414d4d5f41554449ULL, 0x545f4b45595f3031ULL};

[[noreturn]] void audit_failure(const char* invariant, const char* detail) {
  std::fprintf(stderr, "amm audit: %s violated (%s)\n", invariant, detail);
  std::abort();
}

u64 bits(SimTime t) {
  static_assert(sizeof(SimTime) == sizeof(u64));
  u64 out;
  __builtin_memcpy(&out, &t, sizeof(out));
  return out;
}

}  // namespace

u64 message_digest(const am::Message& msg) {
  std::vector<u64> words;
  words.reserve(5 + msg.refs.size());
  words.push_back((static_cast<u64>(msg.id.author) << 32) | msg.id.seq);
  words.push_back(static_cast<u64>(static_cast<i64>(vote_value(msg.value))));
  words.push_back(msg.payload);
  words.push_back(bits(msg.appended_at));
  words.push_back(static_cast<u64>(msg.refs.size()));
  for (const am::MsgId ref : msg.refs) {
    words.push_back((static_cast<u64>(ref.author) << 32) | ref.seq);
  }
  return crypto::siphash24(kAuditKey, words);
}

void MemoryAuditor::audit(const am::AppendMemory& memory) {
  if (regs_.empty()) {
    regs_.resize(memory.node_count());
  } else if (regs_.size() != memory.node_count()) {
    audit_failure("memory identity", "register count changed between audits");
  }

  for (u32 r = 0; r < memory.node_count(); ++r) {
    const am::Register& reg = memory.reg(r);
    RegisterState& state = regs_[r];
    if (reg.size() < state.len) {
      audit_failure("append-only growth", "register shrank since the last audit");
    }

    // (a) The previously-recorded prefix must hash to the recorded digest:
    // any in-place edit or reorder of an already-audited message changes
    // the rolling digest chain.
    u64 digest = 0;
    SimTime prev_time = 0.0;
    for (u32 s = 0; s < reg.size(); ++s) {
      const am::Message& msg = reg.at(s);
      if (msg.id.author != r || msg.id.seq != s) {
        audit_failure("message immutability", "message id does not match its slot");
      }
      if (s > 0 && msg.appended_at < prev_time) {
        audit_failure("append-time monotonicity", "later slot has an earlier append time");
      }
      prev_time = msg.appended_at;
      for (const am::MsgId ref : msg.refs) {
        if (!memory.exists(ref)) {
          audit_failure("reference validity", "message references a non-existent append");
        }
        if (memory.msg(ref).appended_at > msg.appended_at) {
          audit_failure("reference validity", "message references a later append");
        }
      }
      const u64 link[2] = {digest, message_digest(msg)};
      digest = crypto::siphash24(kAuditKey, link);
      if (s + 1 == state.len && digest != state.digest) {
        audit_failure("message immutability", "audited register prefix changed");
      }
    }

    // (b) Extend the record over the new suffix.
    state.len = reg.size();
    state.digest = digest;
  }
  ++audits_;
}

void MemoryAuditor::audit_view(const am::MemoryView& view) {
  if (!view.valid()) return;
  const std::vector<u32>& lens = view.lens();
  if (!view_lens_.empty()) {
    if (view_lens_.size() != lens.size()) {
      audit_failure("view monotonicity", "register count changed between views");
    }
    for (usize r = 0; r < lens.size(); ++r) {
      if (lens[r] < view_lens_[r]) {
        audit_failure("view monotonicity", "observed view lost an audited prefix");
      }
    }
  }
  for (u32 r = 0; r < view.register_count(); ++r) {
    if (view.register_len(r) > view.memory().reg(r).size()) {
      audit_failure("view validity", "view extends beyond its register");
    }
  }
  view_lens_ = lens;
  ++audits_;
}

void audit_graph(const chain::BlockGraph& graph) {
  const std::vector<chain::MsgId>& topo = graph.topo_order();
  if (topo.size() != graph.block_count()) {
    audit_failure("DAG acyclicity", "topological order does not cover every block");
  }

  std::unordered_map<chain::MsgId, usize> position;
  position.reserve(topo.size());
  for (usize i = 0; i < topo.size(); ++i) {
    const bool inserted = position.emplace(topo[i], i).second;
    if (!inserted) {
      audit_failure("DAG acyclicity", "block listed twice in the topological order");
    }
  }

  for (const chain::MsgId id : topo) {
    const usize pos = position.at(id);
    for (const chain::MsgId ref : graph.refs(id)) {
      const auto it = position.find(ref);
      if (it == position.end()) {
        audit_failure("DAG acyclicity", "visible reference missing from the order");
      }
      if (it->second >= pos) {
        audit_failure("DAG acyclicity", "reference edge violates the topological order");
      }
    }

    const chain::MsgId parent = graph.parent(id);
    const u32 expected = parent == chain::kRootId ? 1 : graph.depth(parent) + 1;
    if (graph.depth(id) != expected) {
      audit_failure("parent depth", "depth is not parent depth + 1");
    }

    u32 weight = 1;
    for (const chain::MsgId child : graph.children(id)) {
      if (graph.parent(child) != id) {
        audit_failure("parent/child symmetry", "child does not name this block as parent");
      }
      weight += graph.subtree_weight(child);
    }
    if (graph.subtree_weight(id) != weight) {
      audit_failure("GHOST weight", "subtree weight does not equal 1 + children's weights");
    }
  }
}

}  // namespace amm::check
