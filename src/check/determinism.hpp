// Determinism auditor (docs/ANALYSIS.md).
//
// The randomized-access results (Theorems 5.4/5.6) are only reproducible
// if a simulation is a pure function of its seed: same seed, same decision,
// same trace — regardless of which worker thread runs the trial or what
// else the process is doing. This module runs each protocol twice with an
// identical seed, scheduled as independent ThreadPool tasks, and
// byte-compares the canonical traces. A single diverging byte is reported
// with its offset, so a sneaky source of nondeterminism (an unordered-map
// iteration, a time(nullptr) seed, a data race on an Rng) is caught the
// moment it lands.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "support/thread_pool.hpp"
#include "support/types.hpp"

namespace amm::check {

/// The five protocol families under audit (Algorithms 1 and 4–6 plus the
/// Nakamoto race of §5.2's literature context).
enum class ProtocolKind {
  kSyncBa,
  kTimestampBa,
  kChainBa,
  kDagBa,
  kNakamoto,
};

inline constexpr std::array<ProtocolKind, 5> kAllProtocols{
    ProtocolKind::kSyncBa,   ProtocolKind::kTimestampBa, ProtocolKind::kChainBa,
    ProtocolKind::kDagBa,    ProtocolKind::kNakamoto,
};

[[nodiscard]] const char* protocol_name(ProtocolKind protocol);

/// Runs one execution of `protocol` on a canonical (n, t) scenario with the
/// given seed and serializes every observable of the run — decisions,
/// termination, simulated times (bit-exact), append/round counters,
/// adversary statistics — into a canonical byte trace.
[[nodiscard]] std::vector<std::byte> run_trace(ProtocolKind protocol, u64 seed, u32 n = 7,
                                               u32 t = 2);

/// SipHash digest of a trace (stable fingerprint for logs and tables).
[[nodiscard]] u64 trace_digest(const std::vector<std::byte>& trace);

struct DeterminismReport {
  ProtocolKind protocol = ProtocolKind::kSyncBa;
  u64 seed = 0;
  bool deterministic = false;
  usize trace_size_a = 0;
  usize trace_size_b = 0;
  usize first_divergence = 0;  ///< byte offset; meaningful when !deterministic
  u64 digest_a = 0;
  u64 digest_b = 0;
};

/// Runs `protocol` twice with the same seed as two tasks on `pool` (so the
/// executions interleave with whatever else the pool is doing) and
/// byte-compares the traces.
[[nodiscard]] DeterminismReport audit_determinism(ThreadPool& pool, ProtocolKind protocol,
                                                  u64 seed, u32 n = 7, u32 t = 2);

/// Audits every protocol in kAllProtocols with the same seed.
[[nodiscard]] std::vector<DeterminismReport> audit_all_protocols(ThreadPool& pool, u64 seed,
                                                                 u32 n = 7, u32 t = 2);

/// Human-readable one-liner, e.g. for a failed assertion message.
[[nodiscard]] std::string report_to_string(const DeterminismReport& report);

}  // namespace amm::check
