// Runtime invariant auditor (docs/ANALYSIS.md).
//
// The paper's theorems lean on properties the type system cannot express:
// registers are append-only (§2 — a register's prefix never changes once
// written), appended messages are immutable, observers' views grow
// monotonically along the prefix lattice, and every view's block graph is
// acyclic. This observer re-derives those properties from the live objects
// and aborts on the first violation, so a memory-corrupting bug (or a
// future refactor that breaks the model) fails the test suite instead of
// silently skewing measured statistics.
//
// Cost model: auditing is OFF by default. Configure with -DAMM_AUDIT=ON to
// turn the check_*() wrappers into real work; the audit_*() entry points
// are always compiled so tests can exercise the auditor directly.
#pragma once

#include <vector>

#include "am/memory.hpp"
#include "chain/block_graph.hpp"

namespace amm::check {

#if defined(AMM_AUDIT)
inline constexpr bool kAuditEnabled = true;
#else
inline constexpr bool kAuditEnabled = false;
#endif

/// SipHash-2-4 digest of one message under the fixed audit key: id, value,
/// payload, append time, and the full reference list. Any later change to
/// an already-appended message changes its digest.
[[nodiscard]] u64 message_digest(const am::Message& msg);

/// Append-only/immutability auditor for one am::AppendMemory.
///
/// Keeps a rolling SipHash digest of every register prefix it has seen.
/// Each audit (a) recomputes the digest of the previously-recorded prefix
/// and compares — catching both prefix truncation and in-place mutation of
/// any message field — and (b) extends the recorded digest over the newly
/// appended suffix, verifying per-register append-time monotonicity and
/// reference validity (refs must point at already-appended messages) on
/// the way. Violations abort via the contract-failure path.
class MemoryAuditor {
 public:
  /// Debug-checkable hook: compiles to nothing unless AMM_AUDIT is on.
  void check(const am::AppendMemory& memory) {
    if constexpr (kAuditEnabled) audit(memory);
  }
  void check_view(const am::MemoryView& view) {
    if constexpr (kAuditEnabled) audit_view(view);
  }

  /// Unconditional audit of the memory against everything recorded so far.
  void audit(const am::AppendMemory& memory);

  /// View monotonicity: successive observed views of one observer must be
  /// ordered by the prefix partial order (§2's configuration lattice).
  void audit_view(const am::MemoryView& view);

  /// Number of completed audit passes (for tests).
  [[nodiscard]] u64 audits() const { return audits_; }

 private:
  struct RegisterState {
    u32 len = 0;     ///< messages covered by `digest`
    u64 digest = 0;  ///< rolling prefix digest
  };

  std::vector<RegisterState> regs_;
  std::vector<u32> view_lens_;  ///< last observed view (empty = none yet)
  u64 audits_ = 0;
};

/// Structural invariants of a BlockGraph: the topological order covers
/// every block and respects every visible reference edge (acyclicity),
/// parent depths are consistent, and GHOST subtree weights add up.
void audit_graph(const chain::BlockGraph& graph);

/// Debug-checkable wrapper around audit_graph.
inline void check_graph(const chain::BlockGraph& graph) {
  if constexpr (kAuditEnabled) audit_graph(graph);
}

}  // namespace amm::check
