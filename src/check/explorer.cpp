#include "check/explorer.hpp"

#include <algorithm>
#include <deque>
#include <optional>
#include <unordered_map>

#include "support/assert.hpp"

namespace amm::check {
namespace {

/// One configuration of the system (§2.1): the memory content, each node's
/// last-read prefix lengths, and each node's decision (-1 = undecided).
struct Config {
  VisibleMemory memory;               // per register: appended values
  std::vector<std::vector<u8>> lens;  // per node, per register
  std::vector<i8> decided;

  std::string key() const {
    std::string k;
    for (const auto& reg : memory) {
      k.push_back(static_cast<char>(reg.size()));
      for (const u8 v : reg) k.push_back(static_cast<char>(v));
    }
    k.push_back('|');
    for (const auto& row : lens) {
      for (const u8 l : row) k.push_back(static_cast<char>(l));
    }
    k.push_back('|');
    for (const i8 d : decided) k.push_back(static_cast<char>(d));
    return k;
  }
};

/// The exhaustive computation graph for one initial input vector.
class Graph {
 public:
  Graph(const AsyncProtocol& protocol, std::vector<u8> inputs, const ExploreLimits& limits,
        ExploreResult& result)
      : protocol_(protocol),
        inputs_(std::move(inputs)),
        n_(static_cast<u32>(inputs_.size())),
        limits_(limits),
        result_(result) {}

  /// Builds the reachable graph via BFS. Returns false if the budget blew.
  bool build() {
    Config init;
    init.memory.assign(n_, {});
    init.lens.assign(n_, std::vector<u8>(n_, 0));
    init.decided.assign(n_, -1);
    intern(std::move(init));

    for (u32 cur = 0; cur < configs_.size(); ++cur) {
      if (configs_.size() > limits_.max_configs) {
        result_.budget_exhausted = true;
        return false;
      }
      succ_.emplace_back(n_, kNoStep);
      for (u32 v = 0; v < n_; ++v) {
        const auto next = step(cur, v);
        if (!next) continue;  // halted node
        succ_[cur][v] = *next;
      }
    }
    // Reverse adjacency for valency propagation.
    preds_.assign(configs_.size(), {});
    for (u32 c = 0; c < configs_.size(); ++c) {
      for (u32 v = 0; v < n_; ++v) {
        const u32 s = succ_[c][v];
        if (s != kNoStep && s != c) preds_[s].push_back(c);
      }
    }
    compute_valency();
    return true;
  }

  /// Valency mask of the initial configuration (bit0 = can decide 0, ...).
  u8 initial_valency() const { return valency_[0]; }

  /// Lemma 2.3 over every reachable bivalent configuration.
  bool lemma23_everywhere() const {
    for (u32 c = 0; c < configs_.size(); ++c) {
      if (valency_[c] != 3) continue;
      for (u32 v = 0; v < n_; ++v) {
        if (configs_[c].decided[v] >= 0) continue;  // halted nodes take no events
        if (!bivalent_extension_exists(c, v)) return false;
      }
    }
    return true;
  }

  /// 1-resilience: from every reachable configuration, every v-free
  /// continuation can still reach a state where all nodes but v decided.
  bool one_resilient() const {
    for (u32 v = 0; v < n_; ++v) {
      // Backward reachability, inside the v-free subgraph, from the
      // v-free-terminated configurations.
      std::vector<u8> ok(configs_.size(), 0);
      std::deque<u32> queue;
      for (u32 c = 0; c < configs_.size(); ++c) {
        if (all_decided_except(c, v)) {
          ok[c] = 1;
          queue.push_back(c);
        }
      }
      while (!queue.empty()) {
        const u32 c = queue.front();
        queue.pop_front();
        for (const u32 p : preds_[c]) {
          if (ok[p]) continue;
          // p -> c via some node; only v-free edges count.
          for (u32 u = 0; u < n_; ++u) {
            if (u != v && succ_[p][u] == c) {
              ok[p] = 1;
              queue.push_back(p);
              break;
            }
          }
        }
      }
      for (u32 c = 0; c < configs_.size(); ++c) {
        if (!ok[c]) return false;
      }
    }
    return true;
  }

  u64 size() const { return configs_.size(); }

  /// Builds the Theorem 2.1 witness: starting at the (bivalent) initial
  /// configuration, repeatedly give the round-robin node a bivalence-
  /// preserving step (a v-free path followed by one v-step, per Lemma 2.3)
  /// until a (configuration, round-robin phase) pair repeats — the steps
  /// between the two occurrences form a fair cycle of bivalent
  /// configurations, i.e. an explicit never-deciding execution.
  bool extract_witness(std::vector<u32>& prefix, std::vector<u32>& cycle) const {
    // analyze:allow(codec-bounds): indices are explorer config ids, bounded by construction — not wire input
    if (valency_.empty() || valency_[0] != 3) return false;
    std::unordered_map<u64, usize> seen;  // (config, rr phase) -> step count
    std::vector<u32> steps;
    u32 cur = 0;
    u32 rr = 0;
    for (u64 iter = 0; iter < 100'000; ++iter) {
      const u64 key = (static_cast<u64>(cur) << 8) | rr;
      const auto it = seen.find(key);
      if (it != seen.end()) {
        prefix.assign(steps.begin(), steps.begin() + static_cast<std::ptrdiff_t>(it->second));
        cycle.assign(steps.begin() + static_cast<std::ptrdiff_t>(it->second), steps.end());
        return !cycle.empty();
      }
      seen.emplace(key, steps.size());

      const u32 v = rr;
      rr = (rr + 1) % n_;
      if (configs_[cur].decided[v] >= 0) continue;  // halted nodes take no events

      // BFS over v-free edges to the nearest D with bivalent e_v(D).
      std::vector<i64> parent_cfg(configs_.size(), -1);
      std::vector<u32> parent_step(configs_.size(), 0);
      std::vector<u8> visited(configs_.size(), 0);
      std::deque<u32> queue{cur};
      // analyze:allow(codec-bounds): indices are explorer config ids, bounded by construction — not wire input
      visited[cur] = 1;
      i64 found = -1;
      while (!queue.empty() && found < 0) {
        const u32 d = queue.front();
        queue.pop_front();
        const u32 after_v = succ_[d][v];
        // analyze:allow(codec-bounds): indices are explorer config ids, bounded by construction — not wire input
        if (after_v != kNoStep && valency_[after_v] == 3) {
          found = d;
          break;
        }
        for (u32 u = 0; u < n_; ++u) {
          if (u == v) continue;
          const u32 s = succ_[d][u];
          // analyze:allow(codec-bounds): indices are explorer config ids, bounded by construction — not wire input
          if (s != kNoStep && !visited[s]) {
            // analyze:allow(codec-bounds): indices are explorer config ids, bounded by construction — not wire input
            visited[s] = 1;
            parent_cfg[s] = d;
            parent_step[s] = u;
            queue.push_back(s);
          }
        }
      }
      if (found < 0) {
        // Lemma 2.3 fails at (cur, v): no full cycle. Report the fair
        // bivalence-preserving prefix built so far — the schedule on which
        // the adversary kept the outcome open with every node stepping.
        prefix = steps;
        cycle.clear();
        return false;
      }

      // Reconstruct the v-free path, then take v's step.
      std::vector<u32> path;
      for (u32 d = static_cast<u32>(found); d != cur; d = static_cast<u32>(parent_cfg[d])) {
        path.push_back(parent_step[d]);
      }
      steps.insert(steps.end(), path.rbegin(), path.rend());
      steps.push_back(v);
      cur = succ_[static_cast<u32>(found)][v];
    }
    return false;
  }

 private:
  static constexpr u32 kNoStep = ~u32{0};

  u32 intern(Config cfg) {
    auto key = cfg.key();
    const auto it = index_.find(key);
    if (it != index_.end()) return it->second;
    const u32 id = static_cast<u32>(configs_.size());
    index_.emplace(std::move(key), id);
    configs_.push_back(std::move(cfg));
    return id;
  }

  /// Applies node v's next event to configuration `cur`; nullopt if halted.
  std::optional<u32> step(u32 cur, u32 v) {
    // Copy: configs_ may reallocate on intern().
    Config cfg = configs_[cur];
    if (cfg.decided[v] >= 0) return std::nullopt;

    // The node's knowledge: its last-read prefixes (appends do NOT update
    // the appender's own view — §2.1 semantics) plus its own append count,
    // which is internal state.
    VisibleMemory visible(n_);
    for (u32 r = 0; r < n_; ++r) {
      visible[r].assign(cfg.memory[r].begin(), cfg.memory[r].begin() + cfg.lens[v][r]);
    }
    const u32 own_appends = static_cast<u32>(cfg.memory[v].size());
    const Action action = protocol_.next(v, inputs_[v], own_appends, visible);
    switch (action.kind) {
      case Action::Kind::kRead:
        for (u32 r = 0; r < n_; ++r) cfg.lens[v][r] = static_cast<u8>(cfg.memory[r].size());
        break;
      case Action::Kind::kAppend:
        if (cfg.memory[v].size() >= limits_.max_appends_per_node) {
          result_.append_bound_exceeded = true;
          return std::nullopt;
        }
        cfg.memory[v].push_back(action.append_value);
        break;
      case Action::Kind::kDecide: {
        cfg.decided[v] = static_cast<i8>(action.decision);
        for (u32 u = 0; u < n_; ++u) {
          if (u != v && cfg.decided[u] >= 0 && cfg.decided[u] != cfg.decided[v]) {
            result_.agreement_violation = true;
          }
        }
        const bool homogeneous =
            std::all_of(inputs_.begin(), inputs_.end(), [&](u8 b) { return b == inputs_[0]; });
        if (homogeneous && action.decision != inputs_[0]) result_.validity_violation = true;
        break;
      }
    }
    return intern(std::move(cfg));
  }

  /// Decision values reachable from each configuration, via backward
  /// propagation from deciding configurations (handles cycles).
  void compute_valency() {
    valency_.assign(configs_.size(), 0);
    for (u8 bit = 0; bit < 2; ++bit) {
      std::deque<u32> queue;
      for (u32 c = 0; c < configs_.size(); ++c) {
        for (const i8 d : configs_[c].decided) {
          if (d == static_cast<i8>(bit)) {
            if (!(valency_[c] & (1u << bit))) {
              valency_[c] = static_cast<u8>(valency_[c] | (1u << bit));
              queue.push_back(c);
            }
            break;
          }
        }
      }
      while (!queue.empty()) {
        const u32 c = queue.front();
        queue.pop_front();
        for (const u32 p : preds_[c]) {
          if (!(valency_[p] & (1u << bit))) {
            valency_[p] = static_cast<u8>(valency_[p] | (1u << bit));
            queue.push_back(p);
          }
        }
      }
    }
  }

  /// Lemma 2.3 for one (bivalent config, node) pair: a v-free path followed
  /// by one v-step that lands on a bivalent configuration.
  bool bivalent_extension_exists(u32 c, u32 v) const {
    std::vector<u8> seen(configs_.size(), 0);
    std::deque<u32> queue{c};
    seen[c] = 1;
    while (!queue.empty()) {
      const u32 d = queue.front();
      queue.pop_front();
      const u32 after_v = succ_[d][v];
      if (after_v != kNoStep && valency_[after_v] == 3) return true;
      for (u32 u = 0; u < n_; ++u) {
        if (u == v) continue;
        const u32 s = succ_[d][u];
        if (s != kNoStep && !seen[s]) {
          seen[s] = 1;
          queue.push_back(s);
        }
      }
    }
    return false;
  }

  bool all_decided_except(u32 c, u32 v) const {
    for (u32 u = 0; u < n_; ++u) {
      if (u != v && configs_[c].decided[u] < 0) return false;
    }
    return true;
  }

  const AsyncProtocol& protocol_;
  std::vector<u8> inputs_;
  u32 n_;
  ExploreLimits limits_;
  ExploreResult& result_;

  std::vector<Config> configs_;
  std::unordered_map<std::string, u32> index_;
  std::vector<std::vector<u32>> succ_;
  std::vector<std::vector<u32>> preds_;
  std::vector<u8> valency_;
};

}  // namespace

std::string ExploreResult::verdict() const {
  if (append_bound_exceeded) return "append bound exceeded";
  if (budget_exhausted) return "budget exhausted";
  if (agreement_violation) return "agreement violated";
  if (validity_violation) return "validity violated";
  if (!one_resilient) return "not 1-resilient (v-free run never decides)";
  if (bivalent_initial && lemma23_holds) {
    return "FLP witness: fair schedule stays bivalent forever";
  }
  if (!bivalent_initial) return "no bivalent initial configuration (degenerate)";
  return "lemma 2.3 escape found (protocol evades the construction)";
}

ExploreResult explore(const AsyncProtocol& protocol, u32 n, const ExploreLimits& limits) {
  AMM_EXPECTS(n >= 2 && n <= 8);
  ExploreResult result;
  result.protocol = protocol.name();
  result.n = n;

  for (u32 bits = 0; bits < (1u << n); ++bits) {
    std::vector<u8> inputs(n);
    for (u32 v = 0; v < n; ++v) inputs[v] = (bits >> v) & 1u;

    Graph graph(protocol, inputs, limits, result);
    if (!graph.build()) return result;
    result.configs_explored += graph.size();

    if (graph.initial_valency() == 3 && !result.bivalent_initial) {
      result.bivalent_initial = inputs;
      if (result.witness_cycle.empty()) {
        graph.extract_witness(result.witness_prefix, result.witness_cycle);
      }
    }
    if (graph.initial_valency() == 3 && !graph.lemma23_everywhere()) {
      result.lemma23_holds = false;
    }
    if (!graph.one_resilient()) result.one_resilient = false;
  }
  return result;
}

}  // namespace amm::check
