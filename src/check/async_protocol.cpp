#include "check/async_protocol.hpp"

namespace amm::check {
namespace {

u32 nonempty_registers(const VisibleMemory& m) {
  u32 count = 0;
  for (const auto& reg : m) {
    if (!reg.empty()) ++count;
  }
  return count;
}

u8 majority_value(const VisibleMemory& m) {
  int ones = 0, zeros = 0;
  for (const auto& reg : m) {
    for (const u8 v : reg) (v != 0 ? ones : zeros)++;
  }
  return ones > zeros ? 1 : 0;
}

class DecideOwnInput final : public AsyncProtocol {
 public:
  std::string name() const override { return "decide-own-input"; }
  Action next(u32, u8 input, u32, const VisibleMemory&) const override {
    return Action::decide(input);
  }
};

class MinAuthorRace final : public AsyncProtocol {
 public:
  explicit MinAuthorRace(u32 n) : n_(n) {}
  std::string name() const override { return "min-author-race"; }

  Action next(u32, u8 input, u32 own_appends, const VisibleMemory& visible) const override {
    if (own_appends == 0) return Action::append(input);
    if (nonempty_registers(visible) < n_ - 1) return Action::read();
    for (const auto& reg : visible) {
      if (!reg.empty()) return Action::decide(reg.front());
    }
    return Action::read();
  }

 private:
  u32 n_;
};

class WaitForAll final : public AsyncProtocol {
 public:
  explicit WaitForAll(u32 n) : n_(n) {}
  std::string name() const override { return "wait-for-all"; }

  Action next(u32, u8 input, u32 own_appends, const VisibleMemory& visible) const override {
    if (own_appends == 0) return Action::append(input);
    if (nonempty_registers(visible) < n_) return Action::read();
    return Action::decide(majority_value(visible));
  }

 private:
  u32 n_;
};

class MajorityRace final : public AsyncProtocol {
 public:
  explicit MajorityRace(u32 n) : n_(n) {}
  std::string name() const override { return "majority-race"; }

  Action next(u32, u8 input, u32 own_appends, const VisibleMemory& visible) const override {
    if (own_appends == 0) return Action::append(input);
    if (nonempty_registers(visible) < n_ - 1) return Action::read();
    return Action::decide(majority_value(visible));
  }

 private:
  u32 n_;
};

class TwoPhaseMajority final : public AsyncProtocol {
 public:
  explicit TwoPhaseMajority(u32 n) : n_(n) {}
  std::string name() const override { return "two-phase-majority"; }

  Action next(u32, u8 input, u32 own_appends, const VisibleMemory& visible) const override {
    if (own_appends == 0) return Action::append(input);

    // Round-1 values: first entry of each register in the last-read view.
    u32 r1_count = 0;
    int ones = 0, zeros = 0;
    for (const auto& reg : visible) {
      if (reg.empty()) continue;
      ++r1_count;
      (reg.front() != 0 ? ones : zeros)++;
    }
    if (r1_count < n_ - 1) return Action::read();
    if (own_appends == 1) return Action::append(ones > zeros ? 1 : 0);

    // Round-2 proposals: second entry of each visible register.
    u32 r2_count = 0;
    bool all_equal = true;
    u8 common = 0;
    for (const auto& reg : visible) {
      if (reg.size() < 2) continue;
      if (r2_count == 0) {
        common = reg[1];
      } else if (reg[1] != common) {
        all_equal = false;
      }
      ++r2_count;
    }
    if (r2_count < n_ - 1) return Action::read();
    if (all_equal) return Action::decide(common);
    return Action::read();  // mixed proposals: wait (possibly forever)
  }

 private:
  u32 n_;
};

}  // namespace

std::unique_ptr<AsyncProtocol> make_decide_own_input() {
  return std::make_unique<DecideOwnInput>();
}
std::unique_ptr<AsyncProtocol> make_min_author_race(u32 n) {
  return std::make_unique<MinAuthorRace>(n);
}
std::unique_ptr<AsyncProtocol> make_wait_for_all(u32 n) {
  return std::make_unique<WaitForAll>(n);
}
std::unique_ptr<AsyncProtocol> make_majority_race(u32 n) {
  return std::make_unique<MajorityRace>(n);
}
std::unique_ptr<AsyncProtocol> make_two_phase_majority(u32 n) {
  return std::make_unique<TwoPhaseMajority>(n);
}

}  // namespace amm::check
