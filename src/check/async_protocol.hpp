// Candidate deterministic consensus protocols for the §2 model checker.
//
// Theorem 2.1 is a ∀-protocols impossibility; the executable counterpart
// is a checker that takes *concrete* candidate protocols and exhibits, for
// each, the failure mode the theorem guarantees: an agreement/validity
// violation, a crash-resilience violation (some v-free computation never
// terminates), or an infinite fair schedule that stays bivalent forever
// (the Lemma 2.2/2.3 construction).
//
// A protocol is a deterministic function of (node, input bit, last-read
// memory content) to the node's next operation — exactly the §2.1 notion
// of a configuration-driven deterministic algorithm.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace amm::check {

/// Memory content visible to a node: per register, the values appended so
/// far (a prefix of the true register, since registers are append-only).
using VisibleMemory = std::vector<std::vector<u8>>;

struct Action {
  enum class Kind : u8 { kRead, kAppend, kDecide };
  Kind kind = Kind::kRead;
  u8 append_value = 0;  ///< for kAppend
  u8 decision = 0;      ///< for kDecide (0 or 1)

  static Action read() { return {Kind::kRead, 0, 0}; }
  static Action append(u8 v) { return {Kind::kAppend, v, 0}; }
  static Action decide(u8 v) { return {Kind::kDecide, 0, v}; }
};

class AsyncProtocol {
 public:
  virtual ~AsyncProtocol() = default;
  virtual std::string name() const = 0;
  /// Deterministic next operation from the node's knowledge: its input,
  /// how many appends it has itself performed (internal state — an append
  /// does NOT update the appender's view, exactly as in the paper's model,
  /// so commutation of concurrent events is preserved), and the content of
  /// its most recent read (empty prefixes before the first read).
  virtual Action next(u32 node, u8 input, u32 own_appends, const VisibleMemory& visible) const = 0;
};

/// Decides its own input immediately (no communication). The strawman:
/// violates agreement on any mixed-input configuration.
std::unique_ptr<AsyncProtocol> make_decide_own_input();

/// Appends its input once, reads until it sees appends from at least n-1
/// registers, then decides the value of the lowest-index author it sees.
/// Looks plausible, but two nodes can see different (n-1)-subsets —
/// the checker finds the agreement violation.
std::unique_ptr<AsyncProtocol> make_min_author_race(u32 n);

/// Appends its input once, waits until *all* n registers are non-empty and
/// decides the majority (ties toward 0). Safe, but not 1-resilient: if any
/// node crashes before appending, nobody ever decides.
std::unique_ptr<AsyncProtocol> make_wait_for_all(u32 n);

/// Appends its input once, waits for n-1 registers and decides the majority
/// of the values it sees (ties toward 0). The interesting candidate: no
/// safety violation on some system sizes, so the checker must exhibit the
/// FLP-style witness — a bivalent initial configuration from which every
/// node always has a bivalence-preserving step (Lemma 2.3), i.e. a fair
/// non-deciding schedule.
std::unique_ptr<AsyncProtocol> make_majority_race(u32 n);

/// Two-phase majority: publish the input; once n-1 round-1 values are
/// visible, publish their majority as a round-2 proposal; decide only if
/// n-1 round-2 proposals are visible and unanimous, otherwise keep
/// reading. Conservative enough to be safe — which is exactly why
/// Theorem 2.1 bites: the checker finds the bivalent initial configuration
/// and an explicit fair schedule on which nobody ever decides.
std::unique_ptr<AsyncProtocol> make_two_phase_majority(u32 n);

}  // namespace amm::check
