#include "check/sync_valency.hpp"

#include "check/replay_adversary.hpp"
#include "support/assert.hpp"

namespace amm::check {
namespace {

/// Recursive enumerator over the adversary strategy tree. Each tree level
/// fixes all Byzantine choices of one round; leaves run the protocol.
class ValencyExplorer {
 public:
  ValencyExplorer(u32 n, u32 t, u32 rounds, const std::vector<Vote>& inputs,
                  SyncValencyResult& result)
      : n_(n), t_(t), rounds_(rounds), inputs_(inputs), result_(result) {
    bool truncated = false;
    subsets_ = visibility_subsets(n - t, &truncated);
    per_slot_ = choices_per_slot(subsets_.size());
    choices_.assign(rounds_ * t_, 0);
  }

  /// Valency bits of the prefix ending at `round` (0 = nothing fixed yet):
  /// bit0 = some completion makes some node decide -1, bit1 = ... +1,
  /// bit2 = some completion splits the nodes.
  u8 explore(u32 round) {
    if (round == rounds_) return run_leaf();

    u8 bits = 0;
    // Enumerate this round's full choice combination (one per Byzantine).
    std::vector<u32> combo(t_, 0);
    for (;;) {
      for (u32 b = 0; b < t_; ++b) choices_[round * t_ + b] = combo[b];
      bits |= explore(round + 1);
      u32 pos = 0;
      while (pos < t_) {
        if (++combo[pos] < per_slot_) break;
        combo[pos] = 0;
        ++pos;
      }
      if (pos == t_) break;
    }

    // Classify this prefix (the configuration at the end of `round`).
    RoundValency& rv = result_.per_round[round];
    ++rv.configurations;
    if ((bits & 0b11) == 0b11) ++rv.bivalent;
    if (bits & 0b100) rv.disagreement_reachable = true;
    return bits;
  }

 private:
  u8 run_leaf() {
    proto::Scenario s;
    s.n = n_;
    s.t = t_;
    s.inputs = inputs_;
    proto::SyncParams params;
    params.scenario = s;
    params.rounds_override = rounds_;

    ReplayAdversary adversary(choices_, subsets_, t_);
    const proto::Outcome out = proto::run_sync_ba(params, adversary);

    u8 bits = 0;
    bool saw_minus = false, saw_plus = false;
    for (const auto& d : out.decisions) {
      if (!d) continue;
      (*d == Vote::kMinus ? saw_minus : saw_plus) = true;
    }
    if (saw_minus) bits |= 0b001;
    if (saw_plus) bits |= 0b010;
    if (saw_minus && saw_plus) bits |= 0b100;
    return bits;
  }

  u32 n_, t_, rounds_;
  std::vector<Vote> inputs_;
  SyncValencyResult& result_;
  std::vector<std::vector<bool>> subsets_;
  u32 per_slot_ = 0;
  std::vector<u32> choices_;
};

}  // namespace

SyncValencyResult analyze_sync_valency(u32 n, u32 t, u32 rounds,
                                       const std::vector<Vote>& correct_inputs) {
  AMM_EXPECTS(t >= 1 && t < n);
  AMM_EXPECTS(rounds >= 1);
  AMM_EXPECTS(correct_inputs.size() == n - t);

  SyncValencyResult result;
  result.n = n;
  result.t = t;
  result.rounds = rounds;
  result.per_round.resize(rounds);
  for (u32 r = 0; r < rounds; ++r) result.per_round[r].round = r;

  ValencyExplorer explorer(n, t, rounds, correct_inputs, result);
  result.initial_valency = static_cast<u8>(explorer.explore(0) & 0b11);
  return result;
}

}  // namespace amm::check
