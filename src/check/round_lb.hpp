// Executable form of Lemma 3.1 (t+1 round lower bound).
//
// For small systems, exhaustively search the Byzantine strategy space of
// the synchronous runner — every per-round combination of (appending or
// not, honest vs. private-chain references, visibility subset) for every
// Byzantine node, across every correct-input vector — and report whether
// any strategy makes two correct nodes decide differently when Algorithm 1
// is run with a given number of rounds.
//
// The paper predicts: disagreement strategies exist for rounds ≤ t and
// none exist at rounds = t+1 (Theorem 3.2).
#pragma once

#include "protocols/outcome.hpp"

namespace amm::check {

struct RoundLbResult {
  u32 n = 0;
  u32 t = 0;
  u32 rounds = 0;
  u64 executions = 0;   ///< protocol runs performed
  bool disagreement = false;  ///< some strategy splits the correct decisions
  bool search_truncated = false;  ///< visibility subsets were subsampled
};

/// Exhaustive search. Complete for n - t <= 4 (every visibility subset is
/// tried); larger systems fall back to a representative subset family and
/// set `search_truncated`.
RoundLbResult search_round_lb(u32 n, u32 t, u32 rounds);

}  // namespace amm::check
