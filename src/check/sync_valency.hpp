// Valency analysis of the synchronous model — Lemma 3.1 stated directly.
//
// A round-i configuration is the transcript of everything appended (with
// its visibility) through round i. Its *valency* is the set of outcome
// profiles reachable over the adversary's remaining choices (the correct
// nodes are deterministic, so the adversary's strategy tree is the only
// branching). The lemma says: for every i ≤ t some round-i configuration
// is bivalent — both a (+1)-deciding and a (−1)-deciding completion exist
// for some correct node — while running t+1 rounds forces univalence.
//
// This module enumerates the strategy tree exactly (small systems) and
// classifies configurations per round, complementing the disagreement
// search in round_lb.hpp with the proof's own vocabulary.
#pragma once

#include <vector>

#include "protocols/outcome.hpp"

namespace amm::check {

struct RoundValency {
  u32 round = 0;            ///< configurations at the END of this round
  u64 configurations = 0;   ///< distinct adversary prefixes explored
  u64 bivalent = 0;         ///< configs from which both decisions are reachable
  bool disagreement_reachable = false;  ///< some completion splits the nodes
};

struct SyncValencyResult {
  u32 n = 0;
  u32 t = 0;
  u32 rounds = 0;
  std::vector<RoundValency> per_round;  ///< rounds 0..rounds-1 (prefix ends)
  /// Valency of the initial configuration (bit 0: some node can decide -1,
  /// bit 1: some node can decide +1).
  u8 initial_valency = 0;
};

/// Exhaustively analyzes the adversary strategy tree of Algorithm 1 run
/// for `rounds` rounds with the given heterogeneous correct inputs.
/// Complete for n - t <= 4 (all visibility subsets); feasible only for
/// small n, t, rounds — the lemma's construction lives at exactly that
/// scale.
SyncValencyResult analyze_sync_valency(u32 n, u32 t, u32 rounds,
                                       const std::vector<Vote>& correct_inputs);

}  // namespace amm::check
