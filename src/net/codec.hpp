// Length-prefixed binary codec for the TCP transport (src/net/).
//
// Every frame on a connection is
//
//   [u32 len][u8 frame kind][body]            (little-endian throughout)
//
// where `len` counts the frame kind byte plus the body. Frame kinds:
//
//   kHello    — authentication handshake: {magic, node_id, nonce, sig}
//               where sig is the sender's KeyRegistry signature over
//               digest(magic, node_id, nonce) (Lemma 4.1 on the wire:
//               a peer that cannot sign as node v cannot speak as v).
//   kMsg      — one mp::WireMessage, encoded field by field with the
//               fixed widths of mp/wire.hpp. encode_message().size() ==
//               WireMessage::wire_size() for every kind, by construction
//               and pinned by tests/net/codec_test.cpp.
//   kCtlReq / kCtlRep — the amm_ctl control plane (append/read/decide/
//               stats/kick), unauthenticated and local-operator only.
//
// decode_* functions are total: any truncated or corrupted input yields
// std::nullopt, never UB (fuzzed under the ASan/UBSan matrix).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "mp/node_stats.hpp"
#include "mp/wire.hpp"

namespace amm::net {

inline constexpr u32 kWireMagic = 0x414d4d31;  // "AMM1"
inline constexpr usize kFrameHeaderBytes = 4;  // the u32 length prefix
/// Frames larger than this are rejected as corrupt before allocation.
inline constexpr usize kMaxFrameBytes = 64u << 20;

enum class FrameKind : u8 { kHello = 1, kMsg = 2, kCtlReq = 3, kCtlRep = 4 };

/// Incremental little-endian writer.
class Encoder {
 public:
  void put_u8(u8 v) { buf_.push_back(v); }
  void put_u32(u32 v);
  void put_u64(u64 v);
  void put_i64(i64 v) { put_u64(static_cast<u64>(v)); }

  /// Pre-sizes for `n` more bytes — wire_size()/frame arithmetic is exact,
  /// so a reserving caller pays exactly one allocation per buffer.
  void reserve(usize n) { buf_.reserve(buf_.size() + n); }

  const std::vector<u8>& bytes() const { return buf_; }
  std::vector<u8> take() { return std::move(buf_); }

 private:
  std::vector<u8> buf_;
};

/// Incremental bounds-checked little-endian reader. Every getter returns
/// nullopt once the input is exhausted; `ok()` goes false and stays false.
class Decoder {
 public:
  explicit Decoder(std::span<const u8> bytes) : bytes_(bytes) {}

  std::optional<u8> get_u8();
  std::optional<u32> get_u32();
  std::optional<u64> get_u64();
  std::optional<i64> get_i64();

  bool ok() const { return ok_; }
  usize remaining() const { return bytes_.size() - pos_; }

 private:
  std::span<const u8> bytes_;
  usize pos_ = 0;
  bool ok_ = true;
};

// ---- mp::WireMessage / mp::SignedAppend ----

void encode_record(Encoder& enc, const mp::SignedAppend& rec);
std::optional<mp::SignedAppend> decode_record(Decoder& dec);

/// Zero-copy record write: serializes `rec` into the first
/// mp::kWireRecordBytes of `dst` (which must be at least that large) with
/// no intermediate buffer. Returns the bytes written. Byte-identical to
/// encode_record, pinned by tests/net/codec_test.cpp.
usize encode_record_to(std::span<u8> dst, const mp::SignedAppend& rec);

/// Zero-copy record read: decodes the first mp::kWireRecordBytes of `src`
/// (a borrowed view into a receive buffer or arena page); nullopt when
/// `src` is shorter than one record.
std::optional<mp::SignedAppend> decode_record_from(std::span<const u8> src);

void encode_checkpoint(Encoder& enc, const mp::Checkpoint& ckpt);
std::optional<mp::Checkpoint> decode_checkpoint(Decoder& dec);

/// Encodes the message payload (no frame header, no frame kind byte).
/// Postcondition: result.size() == msg.wire_size().
std::vector<u8> encode_message(const mp::WireMessage& msg);

/// Encodes [u32 len][kMsg kind][payload] in one exactly-sized allocation —
/// the transport's send path: no payload-to-frame copy, and on broadcast
/// the returned buffer becomes a shared page referenced by every peer's
/// queue. Byte-identical to append_frame(encode_message(msg)).
std::vector<u8> encode_framed_message(const mp::WireMessage& msg);

/// Decodes a message payload; rejects trailing garbage, truncation, bad
/// kind tags and view counts that do not match the remaining bytes.
std::optional<mp::WireMessage> decode_message(std::span<const u8> payload);

// ---- handshake ----

struct Hello {
  NodeId node;
  u64 nonce = 0;
  crypto::Signature sig;

  /// The digest the hello signature covers.
  u64 digest() const;
};

std::vector<u8> encode_hello(const Hello& hello);
std::optional<Hello> decode_hello(std::span<const u8> payload);

// ---- control plane (amm_ctl <-> amm_node) ----

enum class CtlOp : u8 {
  kAppend = 1,  ///< append `value` to the hosted node's register
  kRead = 2,    ///< M.read(): reply with the merged view
  kDecide = 3,  ///< run the DAG BA decision rule over a fresh read
  kStats = 4,   ///< transport + node counters
  kKick = 5,    ///< close all outbound links (forces reconnect/backoff)
};

struct CtlRequest {
  CtlOp op = CtlOp::kStats;
  i64 value = 0;  ///< kAppend: the value
  u32 k = 0;      ///< kDecide: the cut size
};

/// Machine-readable failure reason carried by every CtlReply, so scripts
/// can tell a refusal from a mere not-yet (amm_ctl maps these to distinct
/// exit codes and prints `reason=<name>`).
enum class CtlStatus : u8 {
  kOk = 0,
  kUnavailable = 1,      ///< op could not run (empty view, node not ready)
  kUndecided = 2,        ///< kDecide: no side reached the k-cut yet
  kRefusedBelowFold = 3, ///< kDecide: cut lies below the compaction fold
};

/// Stable lower-case name for a CtlStatus (`ok`, `unavailable`, ...).
const char* ctl_status_name(CtlStatus status);

struct CtlReply {
  CtlOp op = CtlOp::kStats;
  bool ok = false;
  CtlStatus status = CtlStatus::kUnavailable;  ///< kOk iff ok
  i64 decision = 0;                      ///< kDecide: ±1
  u32 decided_over = 0;                  ///< kDecide: records considered
  std::vector<mp::SignedAppend> view;    ///< kRead: the merged view
  mp::NodeStats stats;                   ///< kStats (mp/node_stats.hpp)
};

std::vector<u8> encode_ctl_request(const CtlRequest& req);
std::optional<CtlRequest> decode_ctl_request(std::span<const u8> payload);
std::vector<u8> encode_ctl_reply(const CtlReply& rep);
std::optional<CtlReply> decode_ctl_reply(std::span<const u8> payload);

// ---- framing ----

/// Appends [u32 len][kind][payload] to `out`.
void append_frame(std::vector<u8>& out, FrameKind kind, std::span<const u8> payload);

/// One frame extracted from a connection's receive buffer.
struct Frame {
  FrameKind kind;
  std::vector<u8> payload;
};

enum class FrameStatus : u8 {
  kFrame,       ///< one complete frame extracted
  kNeedMore,    ///< header or body incomplete — read more bytes
  kCorrupt,     ///< oversized length or unknown kind — drop the connection
};

/// Extracts the next complete frame from the front of `buf`, consuming its
/// bytes. kNeedMore leaves `buf` untouched.
FrameStatus extract_frame(std::vector<u8>& buf, Frame* out);

/// One frame viewed in place inside a receive buffer: the payload is a
/// borrowed span, valid only until the buffer is mutated.
struct FrameView {
  FrameKind kind;
  std::span<const u8> payload;
};

/// Parses the frame starting at `buf` without consuming anything: on
/// kFrame, `*out` borrows the payload bytes in place and `*consumed` is
/// the total frame size (header included). A drain loop advances an
/// offset across the buffer and erases the consumed prefix once at the
/// end — one memmove per drain instead of one per frame.
FrameStatus extract_frame_view(std::span<const u8> buf, FrameView* out, usize* consumed);

}  // namespace amm::net
