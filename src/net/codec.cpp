#include "net/codec.hpp"

#include <cstring>

#include "crypto/signature.hpp"
#include "support/assert.hpp"

namespace amm::net {

void Encoder::put_u32(u32 v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<u8>(v >> (8 * i)));
}

void Encoder::put_u64(u64 v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<u8>(v >> (8 * i)));
}

std::optional<u8> Decoder::get_u8() {
  if (!ok_ || remaining() < 1) {
    ok_ = false;
    return std::nullopt;
  }
  return bytes_[pos_++];
}

std::optional<u32> Decoder::get_u32() {
  if (!ok_ || remaining() < 4) {
    ok_ = false;
    return std::nullopt;
  }
  u32 v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<u32>(bytes_[pos_ + static_cast<usize>(i)]) << (8 * i);
  pos_ += 4;
  return v;
}

std::optional<u64> Decoder::get_u64() {
  if (!ok_ || remaining() < 8) {
    ok_ = false;
    return std::nullopt;
  }
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(bytes_[pos_ + static_cast<usize>(i)]) << (8 * i);
  pos_ += 8;
  return v;
}

std::optional<i64> Decoder::get_i64() {
  const auto v = get_u64();
  if (!v) return std::nullopt;
  return static_cast<i64>(*v);
}

// ---- records / messages ----

void encode_record(Encoder& enc, const mp::SignedAppend& rec) {
  enc.put_u32(rec.author.index);
  enc.put_u32(rec.seq);
  enc.put_i64(rec.value);
  enc.put_u32(rec.sig.signer.index);
  enc.put_u64(rec.sig.tag);
}

std::optional<mp::SignedAppend> decode_record(Decoder& dec) {
  mp::SignedAppend rec;
  const auto author = dec.get_u32();
  const auto seq = dec.get_u32();
  const auto value = dec.get_i64();
  const auto signer = dec.get_u32();
  const auto tag = dec.get_u64();
  if (!dec.ok()) return std::nullopt;
  rec.author = NodeId{*author};
  rec.seq = *seq;
  rec.value = *value;
  rec.sig = crypto::Signature{NodeId{*signer}, *tag};
  return rec;
}

namespace {

void store_u32(u8* dst, u32 v) {
  for (int i = 0; i < 4; ++i) dst[i] = static_cast<u8>(v >> (8 * i));
}

void store_u64(u8* dst, u64 v) {
  for (int i = 0; i < 8; ++i) dst[i] = static_cast<u8>(v >> (8 * i));
}

u32 load_u32(const u8* src) {
  u32 v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<u32>(src[i]) << (8 * i);
  return v;
}

u64 load_u64(const u8* src) {
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(src[i]) << (8 * i);
  return v;
}

}  // namespace

usize encode_record_to(std::span<u8> dst, const mp::SignedAppend& rec) {
  AMM_EXPECTS(dst.size() >= mp::kWireRecordBytes);
  u8* p = dst.data();
  store_u32(p, rec.author.index);
  store_u32(p + 4, rec.seq);
  store_u64(p + 8, static_cast<u64>(rec.value));
  store_u32(p + 16, rec.sig.signer.index);
  store_u64(p + 20, rec.sig.tag);
  return mp::kWireRecordBytes;
}

std::optional<mp::SignedAppend> decode_record_from(std::span<const u8> src) {
  if (src.size() < mp::kWireRecordBytes) return std::nullopt;
  const u8* p = src.data();
  mp::SignedAppend rec;
  rec.author = NodeId{load_u32(p)};
  rec.seq = load_u32(p + 4);
  rec.value = static_cast<i64>(load_u64(p + 8));
  rec.sig = crypto::Signature{NodeId{load_u32(p + 16)}, load_u64(p + 20)};
  return rec;
}

void encode_checkpoint(Encoder& enc, const mp::Checkpoint& ckpt) {
  enc.put_u32(ckpt.folded_below);
  enc.put_u32(static_cast<u32>(ckpt.chains.size()));
  for (const u64 chain : ckpt.chains) enc.put_u64(chain);
  enc.put_u64(ckpt.folded_records);
  enc.put_i64(ckpt.vote_sum);
  enc.put_u32(ckpt.sig.signer.index);
  enc.put_u64(ckpt.sig.tag);
}

std::optional<mp::Checkpoint> decode_checkpoint(Decoder& dec) {
  mp::Checkpoint ckpt;
  const auto folded_below = dec.get_u32();
  const auto count = dec.get_u32();
  if (!folded_below || !count) return std::nullopt;
  // The chain count must match the remaining bytes exactly (there is
  // nothing after a checkpoint in any frame that carries one) — a lying
  // count is corruption, not a short chain vector.
  if (dec.remaining() !=
      static_cast<usize>(*count) * mp::kWireChainBytes + 8 + 8 + mp::kWireSigBytes) {
    return std::nullopt;
  }
  ckpt.folded_below = *folded_below;
  ckpt.chains.reserve(*count);
  for (u32 i = 0; i < *count; ++i) {
    const auto chain = dec.get_u64();
    if (!chain) return std::nullopt;
    ckpt.chains.push_back(*chain);
  }
  const auto folded_records = dec.get_u64();
  const auto vote_sum = dec.get_i64();
  const auto signer = dec.get_u32();
  const auto tag = dec.get_u64();
  if (!dec.ok()) return std::nullopt;
  ckpt.folded_records = *folded_records;
  ckpt.vote_sum = *vote_sum;
  ckpt.sig = crypto::Signature{NodeId{*signer}, *tag};
  return ckpt;
}

namespace {

/// Shared body writer: kind byte plus per-kind fields. encode_message and
/// encode_framed_message differ only in what surrounds the payload.
void encode_message_body(Encoder& enc, const mp::WireMessage& msg) {
  enc.put_u8(static_cast<u8>(msg.kind));
  switch (msg.kind) {
    case mp::WireMessage::Kind::kAppend:
      encode_record(enc, msg.append);
      break;
    case mp::WireMessage::Kind::kAck:
      encode_record(enc, msg.append);
      enc.put_u32(msg.ack_sig.signer.index);
      enc.put_u64(msg.ack_sig.tag);
      break;
    case mp::WireMessage::Kind::kReadReq:
      enc.put_u64(msg.read_id);
      enc.put_u32(static_cast<u32>(msg.frontier.size()));
      for (const mp::FrontierEntry& e : msg.frontier) {
        enc.put_u32(e.author.index);
        enc.put_u32(e.seq);
      }
      break;
    case mp::WireMessage::Kind::kReadReply:
      enc.put_u64(msg.read_id);
      enc.put_u64(msg.frontier_echo);
      enc.put_u32(static_cast<u32>(msg.view.size()));
      for (const mp::SignedAppend& rec : msg.view) encode_record(enc, rec);
      break;
    case mp::WireMessage::Kind::kCheckpointReq:
      enc.put_u64(msg.read_id);
      break;
    case mp::WireMessage::Kind::kCheckpointReply:
      enc.put_u64(msg.read_id);
      encode_checkpoint(enc, msg.checkpoint);
      break;
  }
}

}  // namespace

std::vector<u8> encode_message(const mp::WireMessage& msg) {
  Encoder enc;
  enc.reserve(msg.wire_size());
  encode_message_body(enc, msg);
  AMM_ENSURES(enc.bytes().size() == msg.wire_size());
  return enc.take();
}

std::vector<u8> encode_framed_message(const mp::WireMessage& msg) {
  const usize len = 1 + msg.wire_size();  // frame kind byte + payload
  AMM_EXPECTS(len <= kMaxFrameBytes);
  Encoder enc;
  enc.reserve(kFrameHeaderBytes + len);
  enc.put_u32(static_cast<u32>(len));
  enc.put_u8(static_cast<u8>(FrameKind::kMsg));
  encode_message_body(enc, msg);
  AMM_ENSURES(enc.bytes().size() == kFrameHeaderBytes + len);
  return enc.take();
}

std::optional<mp::WireMessage> decode_message(std::span<const u8> payload) {
  Decoder dec(payload);
  const auto kind_byte = dec.get_u8();
  if (!kind_byte || *kind_byte > static_cast<u8>(mp::WireMessage::Kind::kCheckpointReply)) {
    return std::nullopt;
  }
  mp::WireMessage msg;
  msg.kind = static_cast<mp::WireMessage::Kind>(*kind_byte);
  switch (msg.kind) {
    case mp::WireMessage::Kind::kAppend: {
      const auto rec = decode_record(dec);
      if (!rec) return std::nullopt;
      msg.append = *rec;
      break;
    }
    case mp::WireMessage::Kind::kAck: {
      const auto rec = decode_record(dec);
      const auto signer = dec.get_u32();
      const auto tag = dec.get_u64();
      if (!rec || !dec.ok()) return std::nullopt;
      msg.append = *rec;
      msg.ack_sig = crypto::Signature{NodeId{*signer}, *tag};
      break;
    }
    case mp::WireMessage::Kind::kReadReq: {
      const auto rid = dec.get_u64();
      const auto count = dec.get_u32();
      if (!rid || !count) return std::nullopt;
      // The count must match the remaining bytes exactly — a lying count
      // is corruption, not a short frontier.
      if (dec.remaining() != static_cast<usize>(*count) * mp::kWireFrontierEntryBytes) {
        return std::nullopt;
      }
      msg.read_id = *rid;
      msg.frontier.reserve(*count);
      for (u32 i = 0; i < *count; ++i) {
        const auto author = dec.get_u32();
        const auto seq = dec.get_u32();
        if (!dec.ok()) return std::nullopt;
        msg.frontier.push_back(mp::FrontierEntry{NodeId{*author}, *seq});
      }
      break;
    }
    case mp::WireMessage::Kind::kReadReply: {
      const auto rid = dec.get_u64();
      const auto echo = dec.get_u64();
      const auto count = dec.get_u32();
      if (!rid || !echo || !count) return std::nullopt;
      // The count must match the remaining bytes exactly — a lying count
      // is corruption, not a short view.
      if (dec.remaining() != static_cast<usize>(*count) * mp::kWireRecordBytes) {
        return std::nullopt;
      }
      msg.read_id = *rid;
      msg.frontier_echo = *echo;
      msg.view.reserve(*count);
      for (u32 i = 0; i < *count; ++i) {
        const auto rec = decode_record(dec);
        if (!rec) return std::nullopt;
        msg.view.push_back(*rec);
      }
      break;
    }
    case mp::WireMessage::Kind::kCheckpointReq: {
      const auto rid = dec.get_u64();
      if (!rid) return std::nullopt;
      msg.read_id = *rid;
      break;
    }
    case mp::WireMessage::Kind::kCheckpointReply: {
      const auto rid = dec.get_u64();
      if (!rid) return std::nullopt;
      // decode_checkpoint enforces the exact chain-count-vs-remaining
      // match (the checkpoint is the tail of this frame).
      const auto ckpt = decode_checkpoint(dec);
      if (!ckpt) return std::nullopt;
      msg.read_id = *rid;
      msg.checkpoint = *ckpt;
      break;
    }
  }
  if (dec.remaining() != 0) return std::nullopt;  // trailing garbage
  return msg;
}

// ---- handshake ----

u64 Hello::digest() const {
  return crypto::DigestBuilder{}.add(kWireMagic).add(node.index).add(nonce).finish();
}

std::vector<u8> encode_hello(const Hello& hello) {
  Encoder enc;
  enc.put_u32(kWireMagic);
  enc.put_u32(hello.node.index);
  enc.put_u64(hello.nonce);
  enc.put_u32(hello.sig.signer.index);
  enc.put_u64(hello.sig.tag);
  return enc.take();
}

std::optional<Hello> decode_hello(std::span<const u8> payload) {
  Decoder dec(payload);
  const auto magic = dec.get_u32();
  if (!magic || *magic != kWireMagic) return std::nullopt;
  Hello hello;
  const auto node = dec.get_u32();
  const auto nonce = dec.get_u64();
  const auto signer = dec.get_u32();
  const auto tag = dec.get_u64();
  if (!dec.ok() || dec.remaining() != 0) return std::nullopt;
  hello.node = NodeId{*node};
  hello.nonce = *nonce;
  hello.sig = crypto::Signature{NodeId{*signer}, *tag};
  return hello;
}

// ---- control plane ----

std::vector<u8> encode_ctl_request(const CtlRequest& req) {
  Encoder enc;
  enc.put_u8(static_cast<u8>(req.op));
  enc.put_i64(req.value);
  enc.put_u32(req.k);
  return enc.take();
}

std::optional<CtlRequest> decode_ctl_request(std::span<const u8> payload) {
  Decoder dec(payload);
  const auto op = dec.get_u8();
  const auto value = dec.get_i64();
  const auto k = dec.get_u32();
  if (!dec.ok() || dec.remaining() != 0) return std::nullopt;
  if (*op < static_cast<u8>(CtlOp::kAppend) || *op > static_cast<u8>(CtlOp::kKick)) {
    return std::nullopt;
  }
  return CtlRequest{static_cast<CtlOp>(*op), *value, *k};
}

const char* ctl_status_name(CtlStatus status) {
  switch (status) {
    case CtlStatus::kOk: return "ok";
    case CtlStatus::kUnavailable: return "unavailable";
    case CtlStatus::kUndecided: return "undecided";
    case CtlStatus::kRefusedBelowFold: return "refused_below_fold";
  }
  return "unknown";
}

std::vector<u8> encode_ctl_reply(const CtlReply& rep) {
  Encoder enc;
  enc.put_u8(static_cast<u8>(rep.op));
  enc.put_u8(rep.ok ? 1 : 0);
  enc.put_u8(static_cast<u8>(rep.status));
  enc.put_i64(rep.decision);
  enc.put_u32(rep.decided_over);
  enc.put_u32(static_cast<u32>(rep.view.size()));
  for (const mp::SignedAppend& rec : rep.view) encode_record(enc, rec);
  // One u64 per NodeStats field, in kNodeStatsFields order — the field
  // table is the single source of truth for the stats wire layout.
  for (const mp::NodeStatsField& f : mp::kNodeStatsFields) enc.put_u64(rep.stats.*f.member);
  return enc.take();
}

std::optional<CtlReply> decode_ctl_reply(std::span<const u8> payload) {
  Decoder dec(payload);
  const auto op = dec.get_u8();
  const auto ok = dec.get_u8();
  const auto status = dec.get_u8();
  const auto decision = dec.get_i64();
  const auto decided_over = dec.get_u32();
  const auto count = dec.get_u32();
  if (!dec.ok()) return std::nullopt;
  if (*op < static_cast<u8>(CtlOp::kAppend) || *op > static_cast<u8>(CtlOp::kKick)) {
    return std::nullopt;
  }
  if (*status > static_cast<u8>(CtlStatus::kRefusedBelowFold)) return std::nullopt;
  CtlReply rep;
  rep.op = static_cast<CtlOp>(*op);
  rep.ok = (*ok != 0);
  rep.status = static_cast<CtlStatus>(*status);
  rep.decision = *decision;
  rep.decided_over = *decided_over;
  if (dec.remaining() < static_cast<usize>(*count) * mp::kWireRecordBytes) return std::nullopt;
  rep.view.reserve(*count);
  for (u32 i = 0; i < *count; ++i) {
    const auto rec = decode_record(dec);
    if (!rec) return std::nullopt;
    rep.view.push_back(*rec);
  }
  for (const mp::NodeStatsField& f : mp::kNodeStatsFields) {
    const auto v = dec.get_u64();
    if (!v) return std::nullopt;
    rep.stats.*f.member = *v;
  }
  if (!dec.ok() || dec.remaining() != 0) return std::nullopt;
  return rep;
}

// ---- framing ----

void append_frame(std::vector<u8>& out, FrameKind kind, std::span<const u8> payload) {
  const usize len = 1 + payload.size();  // kind byte + body
  AMM_EXPECTS(len <= kMaxFrameBytes);
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<u8>(len >> (8 * i)));
  out.push_back(static_cast<u8>(kind));
  out.insert(out.end(), payload.begin(), payload.end());
}

FrameStatus extract_frame_view(std::span<const u8> buf, FrameView* out, usize* consumed) {
  if (buf.size() < kFrameHeaderBytes) return FrameStatus::kNeedMore;
  const u32 len = load_u32(buf.data());
  if (len == 0 || len > kMaxFrameBytes) return FrameStatus::kCorrupt;
  if (buf.size() < kFrameHeaderBytes + len) return FrameStatus::kNeedMore;
  const u8 kind = buf[kFrameHeaderBytes];
  if (kind < static_cast<u8>(FrameKind::kHello) || kind > static_cast<u8>(FrameKind::kCtlRep)) {
    return FrameStatus::kCorrupt;
  }
  out->kind = static_cast<FrameKind>(kind);
  out->payload = buf.subspan(kFrameHeaderBytes + 1, len - 1);
  *consumed = kFrameHeaderBytes + len;
  return FrameStatus::kFrame;
}

FrameStatus extract_frame(std::vector<u8>& buf, Frame* out) {
  FrameView view;
  usize consumed = 0;
  const FrameStatus status = extract_frame_view(buf, &view, &consumed);
  if (status != FrameStatus::kFrame) return status;
  out->kind = view.kind;
  out->payload.assign(view.payload.begin(), view.payload.end());
  buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(consumed));
  return FrameStatus::kFrame;
}

}  // namespace amm::net
