#include "net/peer.hpp"

#include <algorithm>

namespace amm::net {

Hello make_hello(NodeId self, u64 nonce, const crypto::KeyRegistry& keys) {
  Hello hello;
  hello.node = self;
  hello.nonce = nonce;
  hello.sig = keys.sign(self, hello.digest());
  return hello;
}

bool verify_hello(const Hello& hello, u32 node_count, const crypto::KeyRegistry& keys) {
  if (hello.node.index >= node_count) return false;
  if (hello.sig.signer != hello.node) return false;
  return keys.verify(hello.digest(), hello.sig);
}

Admission validate_message(mp::WireMessage& msg, NodeId from, crypto::VerifyCache& verifier,
                           u64* filtered) {
  switch (msg.kind) {
    case mp::WireMessage::Kind::kAppend:
      if (msg.append.sig.signer != msg.append.author) return Admission::kReject;
      if (!verifier.verify(msg.append.digest(), msg.append.sig)) return Admission::kReject;
      return Admission::kDeliver;
    case mp::WireMessage::Kind::kAck:
      if (msg.ack_sig.signer != from) return Admission::kReject;
      if (!verifier.verify(msg.append.digest(), msg.ack_sig)) return Admission::kReject;
      return Admission::kDeliver;
    case mp::WireMessage::Kind::kReadReq:
      return Admission::kDeliver;
    case mp::WireMessage::Kind::kReadReply: {
      const auto invalid = [&verifier](const mp::SignedAppend& rec) {
        return rec.sig.signer != rec.author || !verifier.verify(rec.digest(), rec.sig);
      };
      const auto removed = std::erase_if(msg.view, invalid);
      if (filtered != nullptr) *filtered += removed;
      return Admission::kDeliver;
    }
  }
  return Admission::kReject;
}

}  // namespace amm::net
