#include "net/peer.hpp"

#include <sys/socket.h>
#include <sys/uio.h>

#include <algorithm>
#include <cerrno>

namespace amm::net {

namespace {

/// The front-to-back drain order of a session's queues: the partially
/// written frame (whatever its class) must finish first so frames stay
/// atomic on the wire; then the ctl class, then replication. `index` is
/// the position within the class queue.
struct FrameRef {
  usize cls = 0;
  usize index = 0;
};

/// Fills `refs` with up to `max_iov` frames in drain order.
usize drain_order(const Session& s, FrameRef* refs, usize max_iov) {
  usize n = 0;
  usize skip[kTxClasses] = {0, 0};
  if (s.tx_active >= 0) {
    refs[n++] = FrameRef{static_cast<usize>(s.tx_active), 0};
    skip[s.tx_active] = 1;
  }
  for (usize cls = 0; cls < kTxClasses && n < max_iov; ++cls) {
    for (usize i = skip[cls]; i < s.tx[cls].size() && n < max_iov; ++i) {
      refs[n++] = FrameRef{cls, i};
    }
  }
  return n;
}

}  // namespace

FlushResult flush_session_buffers(Session& session, usize max_iov) {
  FlushResult result;
  max_iov = std::min(max_iov, kMaxWriteIov);
  while (session.tx_bytes > 0) {
    FrameRef refs[kMaxWriteIov];
    iovec iov[kMaxWriteIov];
    const usize chain = drain_order(session, refs, max_iov);
    for (usize i = 0; i < chain; ++i) {
      const FrameBuf& frame = session.tx[refs[i].cls][refs[i].index];
      const usize off = (i == 0 && session.tx_active >= 0) ? session.tx_off : 0;
      // sendmsg never writes through iov_base; the const_cast only adapts
      // the immutable shared page to the iovec ABI.
      iov[i].iov_base = const_cast<u8*>(frame.data() + off);
      iov[i].iov_len = frame.size() - off;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = chain;
    const ssize_t n = ::sendmsg(session.fd, &msg, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return result;  // resume on writable
      result.fatal = true;  // EPIPE/ECONNRESET etc.
      return result;
    }
    ++result.syscalls;
    result.bytes += static_cast<u64>(n);
    session.tx_bytes -= static_cast<usize>(n);
    // Consume in the same drain order the iovec chain was built in.
    usize left = static_cast<usize>(n);
    while (left > 0) {
      const usize cls = session.tx_active >= 0
                            ? static_cast<usize>(session.tx_active)
                            : (!session.tx[0].empty() ? 0u : 1u);
      const FrameBuf& front = session.tx[cls].front();
      const usize remaining = front.size() - session.tx_off;
      if (left >= remaining) {
        left -= remaining;
        session.tx[cls].pop_front();
        session.tx_off = 0;
        session.tx_active = -1;
      } else {
        session.tx_off += left;
        session.tx_active = static_cast<int>(cls);
        left = 0;
      }
    }
  }
  return result;
}

Hello make_hello(NodeId self, u64 nonce, const crypto::KeyRegistry& keys) {
  Hello hello;
  hello.node = self;
  hello.nonce = nonce;
  hello.sig = keys.sign(self, hello.digest());
  return hello;
}

bool verify_hello(const Hello& hello, u32 node_count, const crypto::KeyRegistry& keys) {
  if (hello.node.index >= node_count) return false;
  if (hello.sig.signer != hello.node) return false;
  return keys.verify(hello.digest(), hello.sig);
}

Admission validate_message(mp::WireMessage& msg, NodeId from, crypto::VerifyCache& verifier,
                           u64* filtered) {
  switch (msg.kind) {
    case mp::WireMessage::Kind::kAppend:
      if (msg.append.sig.signer != msg.append.author) return Admission::kReject;
      if (!verifier.verify(msg.append.digest(), msg.append.sig)) return Admission::kReject;
      return Admission::kDeliver;
    case mp::WireMessage::Kind::kAck:
      if (msg.ack_sig.signer != from) return Admission::kReject;
      if (!verifier.verify(msg.append.digest(), msg.ack_sig)) return Admission::kReject;
      return Admission::kDeliver;
    case mp::WireMessage::Kind::kReadReq:
    case mp::WireMessage::Kind::kCheckpointReq:
      return Admission::kDeliver;
    case mp::WireMessage::Kind::kCheckpointReply:
      // A checkpoint speaks for its responder: the signature must be the
      // session peer's, over the checkpoint digest.
      if (msg.checkpoint.sig.signer != from) return Admission::kReject;
      if (!verifier.verify(msg.checkpoint.digest(), msg.checkpoint.sig)) {
        return Admission::kReject;
      }
      return Admission::kDeliver;
    case mp::WireMessage::Kind::kReadReply: {
      const auto invalid = [&verifier](const mp::SignedAppend& rec) {
        return rec.sig.signer != rec.author || !verifier.verify(rec.digest(), rec.sig);
      };
      const auto removed = std::erase_if(msg.view, invalid);
      if (filtered != nullptr) *filtered += removed;
      return Admission::kDeliver;
    }
  }
  return Admission::kReject;
}

Admission collect_signature_checks(mp::WireMessage& msg, NodeId from,
                                   std::vector<crypto::BatchCheck>& checks, u64* filtered) {
  switch (msg.kind) {
    case mp::WireMessage::Kind::kAppend:
      if (msg.append.sig.signer != msg.append.author) return Admission::kReject;
      checks.push_back(crypto::BatchCheck{msg.append.digest(), msg.append.sig, false});
      return Admission::kDeliver;
    case mp::WireMessage::Kind::kAck:
      if (msg.ack_sig.signer != from) return Admission::kReject;
      checks.push_back(crypto::BatchCheck{msg.append.digest(), msg.ack_sig, false});
      return Admission::kDeliver;
    case mp::WireMessage::Kind::kReadReq:
    case mp::WireMessage::Kind::kCheckpointReq:
      return Admission::kDeliver;
    case mp::WireMessage::Kind::kCheckpointReply:
      if (msg.checkpoint.sig.signer != from) return Admission::kReject;
      checks.push_back(crypto::BatchCheck{msg.checkpoint.digest(), msg.checkpoint.sig, false});
      return Admission::kDeliver;
    case mp::WireMessage::Kind::kReadReply: {
      // Structural filter now; signature verdicts arrive with the batch.
      const auto removed = std::erase_if(msg.view, [](const mp::SignedAppend& rec) {
        return rec.sig.signer != rec.author;
      });
      if (filtered != nullptr) *filtered += removed;
      for (const mp::SignedAppend& rec : msg.view) {
        checks.push_back(crypto::BatchCheck{rec.digest(), rec.sig, false});
      }
      return Admission::kDeliver;
    }
  }
  return Admission::kReject;
}

Admission apply_verify_verdicts(mp::WireMessage& msg,
                                std::span<const crypto::BatchCheck> checks, u64* filtered) {
  switch (msg.kind) {
    case mp::WireMessage::Kind::kAppend:
    case mp::WireMessage::Kind::kAck:
    case mp::WireMessage::Kind::kCheckpointReply:
      return (!checks.empty() && checks[0].ok) ? Admission::kDeliver : Admission::kReject;
    case mp::WireMessage::Kind::kReadReq:
    case mp::WireMessage::Kind::kCheckpointReq:
      return Admission::kDeliver;
    case mp::WireMessage::Kind::kReadReply: {
      // checks[i] corresponds to view[i]: collect_signature_checks queued
      // them in view order after the structural filter.
      usize kept = 0;
      for (usize i = 0; i < msg.view.size(); ++i) {
        if (i < checks.size() && checks[i].ok) {
          if (kept != i) msg.view[kept] = std::move(msg.view[i]);
          ++kept;
        }
      }
      if (filtered != nullptr) *filtered += msg.view.size() - kept;
      msg.view.resize(kept);
      return Admission::kDeliver;
    }
  }
  return Admission::kReject;
}

}  // namespace amm::net
