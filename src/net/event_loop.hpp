// Readiness-notification seam for the TCP transport's reactor.
//
// The transport used to rebuild a pollfd vector and call ::poll every
// cycle — O(sessions) per iteration even when one fd is ready, which caps
// a node at a few dozen connections. EventLoop abstracts the readiness
// primitive behind add/modify/remove/wait so the reactor pays O(changes)
// for registration and O(ready) per cycle, with two backends selected at
// runtime:
//
//   kEpoll — epoll(7), Linux only. The kernel holds the interest set;
//            wait() returns only ready fds. The production backend.
//   kPoll  — a persistent pollfd vector maintained incrementally (no
//            per-cycle rebuild). Portable fallback and the reference the
//            parity suite (tests/net/event_loop_test.cpp) compares epoll
//            against: both are level-triggered, so a transport above the
//            seam behaves identically on either.
//
// Registrations are (fd, token, interest): the token — not the fd — is
// what wait() reports, so a session torn down mid-dispatch cannot be
// confused with a new session that recycled its fd number. wait() retries
// EINTR against the original deadline and clamps the millisecond argument
// into the int domain (the old reactor truncated and could spin or stall).
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace amm::net {

enum class LoopBackend : u8 {
  kAuto = 0,   ///< epoll where available (Linux), poll elsewhere
  kPoll = 1,
  kEpoll = 2,  ///< make() fails on platforms without epoll
};

/// Parses "auto" / "poll" / "epoll" (the amm_node --backend flag).
/// Unknown strings map to kAuto.
LoopBackend parse_loop_backend(const std::string& name);

/// One ready registration, reported by token. `error` covers hangup and
/// error conditions (POLLERR/POLLHUP/POLLNVAL, EPOLLERR/EPOLLHUP); a
/// readable error still delivers the buffered bytes and EOF through read.
struct ReadyEvent {
  u64 token = 0;
  bool readable = false;
  bool writable = false;
  bool error = false;
};

class EventLoop {
 public:
  static constexpr u32 kRead = 1;
  static constexpr u32 kWrite = 2;

  virtual ~EventLoop() = default;

  virtual const char* name() const = 0;

  /// Registers `fd` with the given interest mask. The token is returned
  /// verbatim in ReadyEvent. One registration per fd.
  virtual bool add(int fd, u64 token, u32 interest) = 0;

  /// Replaces the interest mask (and token) of a registered fd.
  virtual bool modify(int fd, u64 token, u32 interest) = 0;

  /// Unregisters `fd`. Must be called before the fd is closed so a
  /// recycled descriptor number cannot inherit a stale registration
  /// (epoll would otherwise keep reporting the old token until the
  /// kernel's own file reference drops). Unknown fds are ignored.
  virtual void remove(int fd) = 0;

  /// Number of registered fds.
  virtual usize watched() const = 0;

  /// Waits up to `max_wait` for readiness and appends ready registrations
  /// to `*out` (cleared first). Returns the number of ready events, 0 on
  /// timeout. EINTR is retried without extending the deadline; negative
  /// waits are treated as 0 and waits beyond INT_MAX ms are chunked, so
  /// the caller's deadline is honored exactly regardless of magnitude.
  virtual int wait(std::chrono::milliseconds max_wait, std::vector<ReadyEvent>* out) = 0;

  /// Constructs the requested backend; kAuto prefers epoll where the
  /// platform has it. Returns nullptr only if an explicitly requested
  /// backend is unavailable (kEpoll off-Linux or descriptor exhaustion).
  static std::unique_ptr<EventLoop> make(LoopBackend backend);
};

}  // namespace amm::net
