// TCP transport: mp::Transport over real sockets, on an EventLoop reactor.
//
// Threading model: a single-threaded reactor. All socket I/O, reconnect
// timers, protocol handler callbacks and control-plane callbacks run on
// the thread that calls poll_once()/run_for(); send()/broadcast() must be
// called from that same thread (protocol code only ever runs inside
// handlers, so this falls out naturally). No locks, no cross-thread state.
// The one optional excursion is batched signature verification: when a
// verify pool is attached, cache-missed signatures fan out across it
// between the wait and the dispatch — KeyRegistry::verify is const and
// pure, and the pool is joined before any handler runs.
//
// Readiness: the reactor registers every fd with an EventLoop
// (net/event_loop.hpp) — epoll on Linux, a persistent poll set elsewhere —
// and pays O(ready) per cycle instead of rebuilding an O(sessions) pollfd
// vector. Sessions are identified by token, not fd, so a session torn
// down mid-dispatch cannot be confused with a newer one that recycled its
// descriptor. Sessions with queued output are tracked on a dirty list and
// flushed through bounded writev chains (peer.hpp) — one syscall per
// batch of small frames — with POLLOUT interest maintained only while
// bytes remain.
//
// Message dispatch is deterministic per author: frames admitted in one
// drain cycle defer their signature checks into a single crypto batch,
// then dispatch sorted by author id (stable, so per-session FIFO order —
// the only order TCP guarantees — is preserved). The delivered message
// sequence therefore does not depend on which readiness backend fired or
// in what order fds became ready.
//
// Backpressure: each session carries a byte budget with high/low
// watermarks. A peer that stops reading pushes the session over the high
// watermark, after which new replication frames are refused (counted in
// backpressure_drops()) until the queue drains below the low watermark.
// Control-plane frames (hellos, ctl replies) are exempt and drain first,
// so a slow replication reader can never starve an operator.
//
// Connection topology: every node listens on its configured endpoint and
// dials one outbound connection to every other node. Outbound connections
// carry this node's frames (opened with an authenticated kHello); inbound
// connections carry the peers' frames (their hello is verified against
// crypto::KeyRegistry before any message is dispatched). A control client
// (amm_ctl) dials in and speaks kCtlReq/kCtlRep without a hello.
//
// Reconnect policy: a failed or dropped outbound link retries with capped
// exponential backoff — min(max_backoff, base·2^(attempt−1)) scaled by a
// uniform jitter in [0.5, 1.0) drawn from support/rng — so a restarted
// cluster does not stampede. Frames sent while a link is down are queued
// per peer (bounded; oldest dropped beyond the cap) and flushed on
// reconnect, preserving the model's "correct nodes eventually receive
// everything" within a session's lifetime.
//
// Complexity accounting: messages_sent()/bytes_sent() count protocol
// payload exactly as the simulated Network does (payload bytes ==
// WireMessage::wire_size()), so the §4/E10 numbers are comparable across
// the simulator and the real wire. Frame overhead is 5 bytes per message.
#pragma once

#include <chrono>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>

#include "mp/transport.hpp"
#include "net/event_loop.hpp"
#include "net/peer.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace amm::net {

struct Endpoint {
  std::string host;  ///< numeric IPv4 ("127.0.0.1") or "localhost"
  u16 port = 0;
};

struct TransportConfig {
  NodeId self;
  std::vector<Endpoint> peers;  ///< indexed by node id; size = cluster n
  LoopBackend backend = LoopBackend::kAuto;
  std::chrono::milliseconds backoff_base{50};
  std::chrono::milliseconds backoff_max{2000};
  usize max_pending_frames_per_peer = 8192;  ///< queued while a link is down
  /// Per-session outbound byte budget. Above high, replication frames are
  /// refused; below low, they resume (hysteresis so a session near the
  /// boundary does not flap). Control frames are exempt.
  usize outbound_high_watermark = 4u << 20;
  usize outbound_low_watermark = 1u << 20;
  usize max_write_iov = kMaxWriteIov;  ///< frames coalesced per writev
  /// Wire-admission verify cache key capacity (0 = unbounded).
  usize verify_cache_cap = crypto::VerifyCache::kDefaultCapacity;
};

class TcpTransport final : public mp::Transport {
 public:
  /// `keys` must outlive the transport. `rng` drives backoff jitter and
  /// hello nonces only — never protocol decisions.
  TcpTransport(TransportConfig config, const crypto::KeyRegistry& keys, Rng rng);
  ~TcpTransport() override;

  /// Binds and listens on peers[self]. Port 0 binds an ephemeral port
  /// (see listen_port()). Returns false (with errno intact) on failure.
  bool start();

  /// The actually bound port (differs from the config with port 0).
  u16 listen_port() const { return listen_port_; }

  /// The readiness backend actually in use ("epoll" / "poll").
  const char* backend_name() const { return loop_ ? loop_->name() : "none"; }

  /// Lets tests wire ephemeral ports together after start().
  void set_peer_endpoint(NodeId id, Endpoint endpoint);

  /// Begins dialing every other node (idempotent).
  void connect_peers();

  /// Runs one reactor iteration: waits up to `max_wait` for socket events
  /// or the next reconnect deadline, then performs all due I/O, batch-
  /// verifies and delivers all admitted messages, and flushes sessions
  /// with queued output.
  void poll_once(std::chrono::milliseconds max_wait);

  /// Pumps the reactor until `deadline` elapses.
  void run_for(std::chrono::milliseconds deadline);

  /// Closes every connection and the listener. Further sends queue.
  void stop();

  /// Drops all outbound links (they will redial with backoff) — the
  /// forced-reconnect lever the cluster test pulls via `amm_ctl kick`.
  /// Deferred to the top of the next poll_once so a kick arriving from a
  /// ctl handler mid-dispatch cannot destroy sessions the cycle still
  /// references.
  void kick_outbound();

  /// Optional worker pool for the batched signature sweep. The pool must
  /// outlive the transport (or be detached with nullptr first); it is
  /// only used between wait and dispatch, never concurrently with
  /// handlers.
  void set_verify_pool(ThreadPool* pool) { verify_pool_ = pool; }

  // mp::Transport
  u32 node_count() const override { return static_cast<u32>(config_.peers.size()); }
  void attach(NodeId id, Handler handler) override;
  void send(NodeId from, NodeId to, mp::WireMessage msg) override;
  void broadcast(NodeId from, const mp::WireMessage& msg) override;
  u64 messages_sent() const override { return messages_sent_; }
  u64 bytes_sent() const override { return bytes_sent_; }

  // control plane (amm_node side)
  using CtlHandler = std::function<void(u64 session_id, const CtlRequest&)>;
  void set_ctl_handler(CtlHandler handler) { ctl_handler_ = std::move(handler); }
  /// Queues a reply to a ctl session; no-op if the session is gone.
  void send_ctl_reply(u64 session_id, const CtlReply& reply);

  // observability
  u64 reconnects() const { return reconnects_; }
  u64 auth_rejects() const { return auth_rejects_; }
  u64 sig_rejects() const { return sig_rejects_; }
  u64 frames_dropped() const { return frames_dropped_; }
  u64 backpressure_drops() const { return backpressure_drops_; }
  u64 writev_calls() const { return writev_calls_; }
  u64 verify_cache_hits() const { return verifier_.hits(); }
  u64 verify_cache_misses() const { return verifier_.misses(); }
  u64 verify_cache_evictions() const { return verifier_.evictions(); }
  u32 connected_outbound() const;
  /// Unsent bytes currently buffered toward `peer` (0 if no live link).
  usize outbound_queued_bytes(NodeId peer) const;
  /// Whether the link to `peer` is over its watermark (tests only).
  bool outbound_paused(NodeId peer) const;

 private:
  using Clock = std::chrono::steady_clock;

  /// The listener's loop token; session ids start at 1, so 0 is free.
  static constexpr u64 kListenerToken = 0;

  /// One outbound link to a fixed peer, with its reconnect schedule and
  /// the frames queued while it is down.
  struct Link {
    std::unique_ptr<Session> session;  ///< null unless connecting/connected
    bool connecting = false;           ///< non-blocking connect in flight
    u32 attempts = 0;                  ///< consecutive failed attempts
    bool ever_connected = false;
    Clock::time_point next_attempt{};  ///< earliest redial time
    std::deque<FrameBuf> pending;      ///< encoded frames awaiting a link
  };

  /// One admitted kMsg whose signature verdicts are still in the cycle
  /// batch: checks_[first, first+count) belong to it.
  struct PendingMessage {
    NodeId from;
    mp::WireMessage msg;
    usize first = 0;
    usize count = 0;
  };

  void dial(u32 peer_index);
  void on_link_connected(Link& link, u32 peer_index);
  void on_link_down(Link& link);
  void queue_frame_to_peer(u32 peer_index, FrameBuf frame);
  void accept_ready();
  void register_session(Session& session, u32 interest);
  bool read_session(Session& session);     ///< false = session died
  bool drain_frames(Session& session);     ///< false = corrupt, drop it
  bool handle_frame(Session& session, const FrameView& frame);
  void verify_and_dispatch();              ///< batch-verify, sort, deliver
  void flush_and_sync(Session& session);   ///< writev drain + interest upkeep
  void flush_dirty();
  void mark_dirty(Session& session);
  void sync_interest(Session& session);
  void update_paused(Session& session);
  void deliver_local();
  void close_session(Session& session);    ///< loop remove + close, idempotent
  std::chrono::milliseconds backoff_delay(u32 attempts);

  TransportConfig config_;
  const crypto::KeyRegistry* keys_;
  crypto::VerifyCache verifier_;  ///< wire-admission verify cache (successes only)
  Rng rng_;
  Handler handler_;
  CtlHandler ctl_handler_;
  ThreadPool* verify_pool_ = nullptr;

  std::unique_ptr<EventLoop> loop_;
  int listen_fd_ = -1;
  u16 listen_port_ = 0;
  bool dialing_ = false;         ///< connect_peers() has been called
  bool kick_requested_ = false;  ///< deferred kick_outbound()
  bool needs_reap_ = false;      ///< a session closed since the last reap sweep
  std::vector<Link> links_;                         ///< indexed by peer id
  std::vector<std::unique_ptr<Session>> inbound_;   ///< accepted sessions
  /// Loop-token -> session, maintained by register/close. Lookup only —
  /// iteration order never influences behavior.
  std::unordered_map<u64, Session*> by_token_;
  std::deque<std::pair<NodeId, mp::WireMessage>> local_;  ///< self-deliveries
  u64 next_session_id_ = 1;

  // Per-cycle scratch, cleared each poll_once (members to reuse capacity).
  std::vector<ReadyEvent> events_;
  std::vector<u64> dirty_;  ///< tokens of sessions with queued output
  std::vector<crypto::BatchCheck> checks_;
  std::vector<PendingMessage> pending_msgs_;

  u64 messages_sent_ = 0;
  u64 bytes_sent_ = 0;
  u64 reconnects_ = 0;
  u64 auth_rejects_ = 0;
  u64 sig_rejects_ = 0;
  u64 frames_dropped_ = 0;
  u64 backpressure_drops_ = 0;
  u64 writev_calls_ = 0;
};

}  // namespace amm::net
