// Poll-based TCP transport: mp::Transport over real sockets.
//
// Threading model: a single-threaded reactor. All socket I/O, reconnect
// timers, protocol handler callbacks and control-plane callbacks run on
// the thread that calls poll_once()/run_for(); send()/broadcast() must be
// called from that same thread (protocol code only ever runs inside
// handlers, so this falls out naturally). No locks, no cross-thread state.
//
// Connection topology: every node listens on its configured endpoint and
// dials one outbound connection to every other node. Outbound connections
// carry this node's frames (opened with an authenticated kHello); inbound
// connections carry the peers' frames (their hello is verified against
// crypto::KeyRegistry before any message is dispatched). A control client
// (amm_ctl) dials in and speaks kCtlReq/kCtlRep without a hello.
//
// Reconnect policy: a failed or dropped outbound link retries with capped
// exponential backoff — min(max_backoff, base·2^(attempt−1)) scaled by a
// uniform jitter in [0.5, 1.0) drawn from support/rng — so a restarted
// cluster does not stampede. Frames sent while a link is down are queued
// per peer (bounded; oldest dropped beyond the cap) and flushed on
// reconnect, preserving the model's "correct nodes eventually receive
// everything" within a session's lifetime.
//
// Complexity accounting: messages_sent()/bytes_sent() count protocol
// payload exactly as the simulated Network does (payload bytes ==
// WireMessage::wire_size()), so the §4/E10 numbers are comparable across
// the simulator and the real wire. Frame overhead is 5 bytes per message.
#pragma once

#include <chrono>
#include <deque>
#include <memory>
#include <string>

#include "mp/transport.hpp"
#include "net/peer.hpp"
#include "support/rng.hpp"

namespace amm::net {

struct Endpoint {
  std::string host;  ///< numeric IPv4 ("127.0.0.1") or "localhost"
  u16 port = 0;
};

struct TransportConfig {
  NodeId self;
  std::vector<Endpoint> peers;  ///< indexed by node id; size = cluster n
  std::chrono::milliseconds backoff_base{50};
  std::chrono::milliseconds backoff_max{2000};
  usize max_pending_frames_per_peer = 8192;  ///< queued while a link is down
};

class TcpTransport final : public mp::Transport {
 public:
  /// `keys` must outlive the transport. `rng` drives backoff jitter and
  /// hello nonces only — never protocol decisions.
  TcpTransport(TransportConfig config, const crypto::KeyRegistry& keys, Rng rng);
  ~TcpTransport() override;

  /// Binds and listens on peers[self]. Port 0 binds an ephemeral port
  /// (see listen_port()). Returns false (with errno intact) on failure.
  bool start();

  /// The actually bound port (differs from the config with port 0).
  u16 listen_port() const { return listen_port_; }

  /// Lets tests wire ephemeral ports together after start().
  void set_peer_endpoint(NodeId id, Endpoint endpoint);

  /// Begins dialing every other node (idempotent).
  void connect_peers();

  /// Runs one reactor iteration: waits up to `max_wait` for socket events
  /// or the next reconnect deadline, then performs all due I/O, delivers
  /// all decodable messages, and flushes writable sessions.
  void poll_once(std::chrono::milliseconds max_wait);

  /// Pumps the reactor until `deadline` elapses.
  void run_for(std::chrono::milliseconds deadline);

  /// Closes every connection and the listener. Further sends queue.
  void stop();

  /// Drops all outbound links (they will redial with backoff) — the
  /// forced-reconnect lever the cluster test pulls via `amm_ctl kick`.
  void kick_outbound();

  // mp::Transport
  u32 node_count() const override { return static_cast<u32>(config_.peers.size()); }
  void attach(NodeId id, Handler handler) override;
  void send(NodeId from, NodeId to, mp::WireMessage msg) override;
  void broadcast(NodeId from, const mp::WireMessage& msg) override;
  u64 messages_sent() const override { return messages_sent_; }
  u64 bytes_sent() const override { return bytes_sent_; }

  // control plane (amm_node side)
  using CtlHandler = std::function<void(u64 session_id, const CtlRequest&)>;
  void set_ctl_handler(CtlHandler handler) { ctl_handler_ = std::move(handler); }
  /// Queues a reply to a ctl session; no-op if the session is gone.
  void send_ctl_reply(u64 session_id, const CtlReply& reply);

  // observability
  u64 reconnects() const { return reconnects_; }
  u64 auth_rejects() const { return auth_rejects_; }
  u64 sig_rejects() const { return sig_rejects_; }
  u64 frames_dropped() const { return frames_dropped_; }
  u64 verify_cache_hits() const { return verifier_.hits(); }
  u32 connected_outbound() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// One outbound link to a fixed peer, with its reconnect schedule and
  /// the frames queued while it is down.
  struct Link {
    std::unique_ptr<Session> session;  ///< null unless connecting/connected
    bool connecting = false;           ///< non-blocking connect in flight
    u32 attempts = 0;                  ///< consecutive failed attempts
    bool ever_connected = false;
    Clock::time_point next_attempt{};  ///< earliest redial time
    std::deque<std::vector<u8>> pending;  ///< encoded frames awaiting a link
  };

  void dial(u32 peer_index);
  void on_link_connected(Link& link, u32 peer_index);
  void on_link_down(Link& link);
  void queue_frame_to_peer(u32 peer_index, std::vector<u8> frame);
  void accept_ready();
  bool read_session(Session& session);     ///< false = session died
  bool drain_frames(Session& session);     ///< false = corrupt, drop it
  bool handle_frame(Session& session, Frame& frame);
  void flush_session(Session& session);    ///< best-effort write
  void deliver_local();
  void close_session(Session& session);
  std::chrono::milliseconds backoff_delay(u32 attempts);

  TransportConfig config_;
  const crypto::KeyRegistry* keys_;
  crypto::VerifyCache verifier_;  ///< wire-admission verify cache (successes only)
  Rng rng_;
  Handler handler_;
  CtlHandler ctl_handler_;

  int listen_fd_ = -1;
  u16 listen_port_ = 0;
  bool dialing_ = false;         ///< connect_peers() has been called
  bool kick_requested_ = false;  ///< deferred kick_outbound()
  std::vector<Link> links_;                         ///< indexed by peer id
  std::vector<std::unique_ptr<Session>> inbound_;   ///< accepted sessions
  std::deque<std::pair<NodeId, mp::WireMessage>> local_;  ///< self-deliveries
  u64 next_session_id_ = 1;

  u64 messages_sent_ = 0;
  u64 bytes_sent_ = 0;
  u64 reconnects_ = 0;
  u64 auth_rejects_ = 0;
  u64 sig_rejects_ = 0;
  u64 frames_dropped_ = 0;
};

}  // namespace amm::net
