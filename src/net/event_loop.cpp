#include "net/event_loop.hpp"

#include <poll.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <cerrno>
#include <climits>
#include <unordered_map>

namespace amm::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Remaining wait in whole milliseconds, clamped into poll/epoll's int
/// domain. Rounds up so a 0.5 ms remainder does not busy-spin at 0.
int clamped_remaining_ms(Clock::time_point deadline) {
  const auto now = Clock::now();
  if (now >= deadline) return 0;
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now).count() + 1;
  return static_cast<int>(std::min<long long>(left, INT_MAX));
}

class PollEventLoop final : public EventLoop {
 public:
  const char* name() const override { return "poll"; }

  bool add(int fd, u64 token, u32 interest) override {
    if (fd < 0 || index_.contains(fd)) return false;
    index_.emplace(fd, fds_.size());
    fds_.push_back(pollfd{fd, events_of(interest), 0});
    tokens_.push_back(token);
    return true;
  }

  bool modify(int fd, u64 token, u32 interest) override {
    const auto it = index_.find(fd);
    if (it == index_.end()) return false;
    fds_[it->second].events = events_of(interest);
    tokens_[it->second] = token;
    return true;
  }

  void remove(int fd) override {
    const auto it = index_.find(fd);
    if (it == index_.end()) return;
    const usize pos = it->second;
    const usize last = fds_.size() - 1;
    if (pos != last) {
      fds_[pos] = fds_[last];
      tokens_[pos] = tokens_[last];
      index_[fds_[pos].fd] = pos;
    }
    fds_.pop_back();
    tokens_.pop_back();
    index_.erase(it);
  }

  usize watched() const override { return fds_.size(); }

  int wait(std::chrono::milliseconds max_wait, std::vector<ReadyEvent>* out) override {
    out->clear();
    const auto deadline = Clock::now() + std::max(max_wait, std::chrono::milliseconds(0));
    for (;;) {
      for (pollfd& p : fds_) p.revents = 0;
      const int rc = ::poll(fds_.data(), fds_.size(), clamped_remaining_ms(deadline));
      if (rc < 0) {
        if (errno == EINTR && Clock::now() < deadline) continue;  // retry, same deadline
        return 0;
      }
      if (rc == 0) {
        if (Clock::now() < deadline) continue;  // clamped chunk elapsed; keep waiting
        return 0;
      }
      for (usize i = 0; i < fds_.size(); ++i) {
        const short re = fds_[i].revents;
        if (re == 0) continue;
        ReadyEvent ev;
        ev.token = tokens_[i];
        ev.readable = (re & POLLIN) != 0;
        ev.writable = (re & POLLOUT) != 0;
        ev.error = (re & (POLLERR | POLLHUP | POLLNVAL)) != 0;
        out->push_back(ev);
      }
      return static_cast<int>(out->size());
    }
  }

 private:
  static short events_of(u32 interest) {
    short events = 0;
    if ((interest & kRead) != 0) events |= POLLIN;
    if ((interest & kWrite) != 0) events |= POLLOUT;
    return events;
  }

  std::vector<pollfd> fds_;
  std::vector<u64> tokens_;
  std::unordered_map<int, usize> index_;  ///< fd -> position in fds_/tokens_
};

#ifdef __linux__

class EpollEventLoop final : public EventLoop {
 public:
  EpollEventLoop() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {}
  ~EpollEventLoop() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  bool ok() const { return epfd_ >= 0; }
  const char* name() const override { return "epoll"; }

  bool add(int fd, u64 token, u32 interest) override {
    epoll_event ev = event_of(token, interest);
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
    ++watched_;
    return true;
  }

  bool modify(int fd, u64 token, u32 interest) override {
    epoll_event ev = event_of(token, interest);
    return ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) == 0;
  }

  void remove(int fd) override {
    if (::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr) == 0 && watched_ > 0) --watched_;
  }

  usize watched() const override { return watched_; }

  int wait(std::chrono::milliseconds max_wait, std::vector<ReadyEvent>* out) override {
    out->clear();
    const auto deadline = Clock::now() + std::max(max_wait, std::chrono::milliseconds(0));
    epoll_event ready[kMaxBatch];
    for (;;) {
      const int rc = ::epoll_wait(epfd_, ready, kMaxBatch, clamped_remaining_ms(deadline));
      if (rc < 0) {
        if (errno == EINTR && Clock::now() < deadline) continue;  // retry, same deadline
        return 0;
      }
      if (rc == 0) {
        if (Clock::now() < deadline) continue;  // clamped chunk elapsed; keep waiting
        return 0;
      }
      for (int i = 0; i < rc; ++i) {
        ReadyEvent ev;
        ev.token = ready[i].data.u64;
        ev.readable = (ready[i].events & (EPOLLIN | EPOLLRDHUP)) != 0;
        ev.writable = (ready[i].events & EPOLLOUT) != 0;
        ev.error = (ready[i].events & (EPOLLERR | EPOLLHUP)) != 0;
        out->push_back(ev);
      }
      return rc;
    }
  }

 private:
  /// One wait() drains at most this many ready fds; the rest surface on
  /// the next cycle (level-triggered, so nothing is lost).
  static constexpr int kMaxBatch = 256;

  static epoll_event event_of(u64 token, u32 interest) {
    epoll_event ev{};
    if ((interest & kRead) != 0) ev.events |= EPOLLIN;
    if ((interest & kWrite) != 0) ev.events |= EPOLLOUT;
    ev.data.u64 = token;
    return ev;
  }

  int epfd_ = -1;
  usize watched_ = 0;
};

#endif  // __linux__

}  // namespace

LoopBackend parse_loop_backend(const std::string& name) {
  if (name == "poll") return LoopBackend::kPoll;
  if (name == "epoll") return LoopBackend::kEpoll;
  return LoopBackend::kAuto;
}

std::unique_ptr<EventLoop> EventLoop::make(LoopBackend backend) {
#ifdef __linux__
  if (backend == LoopBackend::kEpoll || backend == LoopBackend::kAuto) {
    auto loop = std::make_unique<EpollEventLoop>();
    if (loop->ok()) return loop;
    if (backend == LoopBackend::kEpoll) return nullptr;
  }
#else
  if (backend == LoopBackend::kEpoll) return nullptr;
#endif
  return std::make_unique<PollEventLoop>();
}

}  // namespace amm::net
