#include "net/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "support/assert.hpp"

namespace amm::net {

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Numeric IPv4 only (plus "localhost"); cluster configs are addresses,
/// not names — DNS has no place inside the reactor.
bool resolve(const Endpoint& ep, sockaddr_in* out) {
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(ep.port);
  const char* host = ep.host == "localhost" ? "127.0.0.1" : ep.host.c_str();
  return ::inet_pton(AF_INET, host, &out->sin_addr) == 1;
}

}  // namespace

TcpTransport::TcpTransport(TransportConfig config, const crypto::KeyRegistry& keys, Rng rng)
    : config_(std::move(config)),
      keys_(&keys),
      verifier_(keys),
      rng_(rng),
      links_(config_.peers.size()) {
  AMM_EXPECTS(!config_.peers.empty());
  AMM_EXPECTS(config_.self.index < config_.peers.size());
  AMM_EXPECTS(keys.node_count() >= node_count());
}

TcpTransport::~TcpTransport() { stop(); }

bool TcpTransport::start() {
  AMM_EXPECTS(listen_fd_ < 0);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  if (!resolve(config_.peers[config_.self.index], &addr)) {
    ::close(fd);
    return false;
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0 || !set_nonblocking(fd)) {
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return false;
  }
  listen_fd_ = fd;
  listen_port_ = ntohs(bound.sin_port);
  return true;
}

void TcpTransport::set_peer_endpoint(NodeId id, Endpoint endpoint) {
  AMM_EXPECTS(id.index < config_.peers.size());
  config_.peers[id.index] = std::move(endpoint);
}

void TcpTransport::connect_peers() {
  dialing_ = true;
  for (u32 i = 0; i < node_count(); ++i) {
    if (i == config_.self.index) continue;
    if (!links_[i].session && !links_[i].connecting) dial(i);
  }
}

void TcpTransport::attach(NodeId id, Handler handler) {
  AMM_EXPECTS(id == config_.self);  // a TCP transport hosts exactly one node
  handler_ = std::move(handler);
}

void TcpTransport::send(NodeId from, NodeId to, mp::WireMessage msg) {
  AMM_EXPECTS(from == config_.self);
  AMM_EXPECTS(to.index < node_count());
  ++messages_sent_;
  bytes_sent_ += msg.wire_size();
  if (to == config_.self) {
    local_.emplace_back(from, std::move(msg));
    return;
  }
  std::vector<u8> frame;
  const std::vector<u8> payload = encode_message(msg);
  frame.reserve(kFrameHeaderBytes + 1 + payload.size());
  append_frame(frame, FrameKind::kMsg, payload);
  queue_frame_to_peer(to.index, std::move(frame));
}

void TcpTransport::broadcast(NodeId from, const mp::WireMessage& msg) {
  for (u32 to = 0; to < node_count(); ++to) send(from, NodeId{to}, msg);
}

void TcpTransport::queue_frame_to_peer(u32 peer_index, std::vector<u8> frame) {
  Link& link = links_[peer_index];
  if (link.session && link.session->state != SessionState::kClosed && !link.connecting) {
    link.session->queue_frame(std::move(frame));
    return;
  }
  // Link down: hold the frame for the next (re)connect, oldest out first.
  if (link.pending.size() >= config_.max_pending_frames_per_peer) {
    link.pending.pop_front();
    ++frames_dropped_;
  }
  link.pending.push_back(std::move(frame));
}

void TcpTransport::dial(u32 peer_index) {
  Link& link = links_[peer_index];
  link.connecting = false;
  sockaddr_in addr{};
  if (!resolve(config_.peers[peer_index], &addr)) {
    on_link_down(link);
    return;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0 || !set_nonblocking(fd)) {
    if (fd >= 0) ::close(fd);
    on_link_down(link);
    return;
  }
  set_nodelay(fd);
  auto session = std::make_unique<Session>();
  session->fd = fd;
  session->id = next_session_id_++;
  session->outbound = true;
  session->peer = NodeId{peer_index};
  session->state = SessionState::kProtocol;
  link.session = std::move(session);
  const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc == 0) {
    on_link_connected(link, peer_index);
  } else if (errno == EINPROGRESS) {
    link.connecting = true;
  } else {
    link.session.reset();
    ::close(fd);
    on_link_down(link);
  }
}

void TcpTransport::on_link_connected(Link& link, u32 peer_index) {
  (void)peer_index;
  link.connecting = false;
  if (link.ever_connected) ++reconnects_;
  link.ever_connected = true;
  link.attempts = 0;
  // Authenticate first, then flush everything queued while the link was
  // down — FIFO, so per-peer ordering is preserved across reconnects.
  const Hello hello = make_hello(config_.self, rng_.next(), *keys_);
  std::vector<u8> frame;
  append_frame(frame, FrameKind::kHello, encode_hello(hello));
  link.session->queue_frame(std::move(frame));
  while (!link.pending.empty()) {
    link.session->queue_frame(std::move(link.pending.front()));
    link.pending.pop_front();
  }
}

void TcpTransport::on_link_down(Link& link) {
  if (link.session) {
    // Salvage undelivered frames for the next connection: a frame that did
    // not fully leave the socket was never delivered (partial frames are
    // discarded by the receiver), so it re-queues ahead of newer pending
    // traffic. The stale hello is dropped — every connection opens its own.
    Session& session = *link.session;
    while (!session.tx.empty()) {
      std::vector<u8> frame = std::move(session.tx.back());
      session.tx.pop_back();
      const bool is_hello = frame.size() > kFrameHeaderBytes &&
                            frame[kFrameHeaderBytes] == static_cast<u8>(FrameKind::kHello);
      if (!is_hello) link.pending.push_front(std::move(frame));
    }
    while (link.pending.size() > config_.max_pending_frames_per_peer) {
      link.pending.pop_front();
      ++frames_dropped_;
    }
    close_session(session);
    link.session.reset();
  }
  link.connecting = false;
  ++link.attempts;
  link.next_attempt = Clock::now() + backoff_delay(link.attempts);
}

std::chrono::milliseconds TcpTransport::backoff_delay(u32 attempts) {
  const u32 shift = std::min(attempts > 0 ? attempts - 1 : 0u, 16u);
  auto delay = config_.backoff_base * (1u << shift);
  delay = std::min(delay, config_.backoff_max);
  // Jitter in [0.5, 1.0): desynchronizes a restarted cluster.
  const double jitter = 0.5 + 0.5 * rng_.uniform();
  return std::chrono::milliseconds(
      std::max<i64>(1, static_cast<i64>(static_cast<double>(delay.count()) * jitter)));
}

void TcpTransport::kick_outbound() {
  // Deferred to the top of the next poll_once: a kick arriving from a ctl
  // handler mid-dispatch must not destroy sessions the poll loop still
  // holds pointers to.
  kick_requested_ = true;
}

u32 TcpTransport::connected_outbound() const {
  u32 up = 0;
  for (const Link& link : links_) {
    if (link.session && !link.connecting) ++up;
  }
  return up;
}

void TcpTransport::accept_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error — poll again later
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    set_nodelay(fd);
    auto session = std::make_unique<Session>();
    session->fd = fd;
    session->id = next_session_id_++;
    session->state = SessionState::kAwaitingHello;
    inbound_.push_back(std::move(session));
  }
}

bool TcpTransport::read_session(Session& session) {
  u8 chunk[65536];
  for (;;) {
    const ssize_t n = ::recv(session.fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      session.rx.insert(session.rx.end(), chunk, chunk + n);
      if (static_cast<usize>(n) < sizeof(chunk)) break;
    } else if (n == 0) {
      return false;  // orderly shutdown
    } else {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
  }
  return drain_frames(session);
}

bool TcpTransport::drain_frames(Session& session) {
  for (;;) {
    Frame frame;
    switch (extract_frame(session.rx, &frame)) {
      case FrameStatus::kNeedMore:
        return true;
      case FrameStatus::kCorrupt:
        return false;
      case FrameStatus::kFrame:
        if (!handle_frame(session, frame)) return false;
        break;
    }
  }
}

bool TcpTransport::handle_frame(Session& session, Frame& frame) {
  switch (frame.kind) {
    case FrameKind::kHello: {
      if (session.state != SessionState::kAwaitingHello) return false;
      const auto hello = decode_hello(frame.payload);
      if (!hello || !verify_hello(*hello, node_count(), *keys_) ||
          hello->node == config_.self) {
        ++auth_rejects_;
        return false;  // unauthenticated peer: drop the connection
      }
      session.state = SessionState::kProtocol;
      session.peer = hello->node;
      return true;
    }
    case FrameKind::kMsg: {
      if (session.state != SessionState::kProtocol || session.outbound) return false;
      auto msg = decode_message(frame.payload);
      if (!msg) return false;  // corrupt payload: drop the connection
      // Lemma 4.1 on the wire: invalid signatures never reach the handler.
      if (validate_message(*msg, session.peer, verifier_, &sig_rejects_) == Admission::kReject) {
        ++sig_rejects_;
        return true;  // reject the message, keep the session
      }
      if (handler_) handler_(session.peer, *msg);
      return true;
    }
    case FrameKind::kCtlReq: {
      if (session.state == SessionState::kAwaitingHello) session.state = SessionState::kCtl;
      if (session.state != SessionState::kCtl) return false;
      const auto req = decode_ctl_request(frame.payload);
      if (!req) return false;
      if (ctl_handler_) ctl_handler_(session.id, *req);
      return true;
    }
    case FrameKind::kCtlRep:
      return false;  // servers never receive replies
  }
  return false;
}

void TcpTransport::send_ctl_reply(u64 session_id, const CtlReply& reply) {
  for (const auto& session : inbound_) {
    if (session->id == session_id && session->state == SessionState::kCtl) {
      std::vector<u8> frame;
      append_frame(frame, FrameKind::kCtlRep, encode_ctl_reply(reply));
      session->queue_frame(std::move(frame));
      flush_session(*session);
      return;
    }
  }
}

void TcpTransport::flush_session(Session& session) {
  while (!session.tx.empty()) {
    const std::vector<u8>& front = session.tx.front();
    while (session.tx_off < front.size()) {
      const ssize_t n = ::send(session.fd, front.data() + session.tx_off,
                               front.size() - session.tx_off, MSG_NOSIGNAL);
      if (n > 0) {
        session.tx_off += static_cast<usize>(n);
      } else {
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
        session.state = SessionState::kClosed;  // EPIPE/ECONNRESET etc.
        return;
      }
    }
    session.tx.pop_front();
    session.tx_off = 0;
  }
}

void TcpTransport::deliver_local() {
  while (!local_.empty()) {
    auto [from, msg] = std::move(local_.front());
    local_.pop_front();
    if (handler_) handler_(from, msg);
  }
}

void TcpTransport::close_session(Session& session) {
  if (session.fd >= 0) {
    ::close(session.fd);
    session.fd = -1;
  }
  session.state = SessionState::kClosed;
}

void TcpTransport::poll_once(std::chrono::milliseconds max_wait) {
  deliver_local();

  if (kick_requested_) {
    kick_requested_ = false;
    for (Link& link : links_) {
      if (link.session || link.connecting) on_link_down(link);
    }
  }

  // Redial any link whose backoff deadline has passed.
  const auto now = Clock::now();
  if (dialing_) {
    for (u32 i = 0; i < node_count(); ++i) {
      Link& link = links_[i];
      if (i == config_.self.index || link.session || link.connecting) continue;
      if (now >= link.next_attempt) dial(i);
    }
  }

  // Assemble the poll set: listener, outbound links, inbound sessions.
  std::vector<pollfd> fds;
  std::vector<Session*> owners;
  if (listen_fd_ >= 0) {
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    owners.push_back(nullptr);
  }
  for (Link& link : links_) {
    if (!link.session) continue;
    const bool out = link.connecting || link.session->wants_write();
    fds.push_back(pollfd{link.session->fd, static_cast<short>(out ? POLLIN | POLLOUT : POLLIN), 0});
    owners.push_back(link.session.get());
  }
  for (const auto& session : inbound_) {
    const bool out = session->wants_write();
    fds.push_back(pollfd{session->fd, static_cast<short>(out ? POLLIN | POLLOUT : POLLIN), 0});
    owners.push_back(session.get());
  }

  // Cap the wait at the next reconnect deadline so backoff fires on time.
  i64 wait_ms = max_wait.count();
  if (dialing_) {
    for (u32 i = 0; i < node_count(); ++i) {
      const Link& link = links_[i];
      if (i == config_.self.index || link.session || link.connecting) continue;
      const auto until =
          std::chrono::duration_cast<std::chrono::milliseconds>(link.next_attempt - now).count();
      wait_ms = std::clamp<i64>(until, 0, wait_ms);
    }
  }
  if (!local_.empty()) wait_ms = 0;

  const int ready = ::poll(fds.data(), fds.size(), static_cast<int>(wait_ms));
  if (ready > 0) {
    for (usize i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      if (owners[i] == nullptr) {
        accept_ready();
        continue;
      }
      Session& session = *owners[i];
      if (session.state == SessionState::kClosed) continue;
      // Outbound connect completion: POLLOUT (or error bits) on a
      // connecting link resolves the non-blocking connect.
      if (session.outbound && links_[session.peer.index].connecting) {
        Link& link = links_[session.peer.index];
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(session.fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if ((fds[i].revents & (POLLERR | POLLHUP)) != 0 || err != 0) {
          on_link_down(link);
          continue;
        }
        if ((fds[i].revents & POLLOUT) != 0) on_link_connected(link, session.peer.index);
        continue;
      }
      if ((fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (fds[i].revents & POLLIN) == 0) {
        session.state = SessionState::kClosed;
        continue;
      }
      if ((fds[i].revents & POLLIN) != 0 && !read_session(session)) {
        session.state = SessionState::kClosed;
        continue;
      }
      if ((fds[i].revents & POLLOUT) != 0) flush_session(session);
    }
  }

  // Handlers may have produced traffic — flush opportunistically so a
  // request/reply exchange completes in one poll round-trip per hop.
  for (Link& link : links_) {
    if (link.session && !link.connecting && link.session->state != SessionState::kClosed) {
      flush_session(*link.session);
    }
  }
  for (const auto& session : inbound_) {
    if (session->state != SessionState::kClosed) flush_session(*session);
  }

  // Reap dead sessions; downed outbound links enter backoff.
  for (Link& link : links_) {
    if (link.session && link.session->state == SessionState::kClosed) on_link_down(link);
  }
  std::erase_if(inbound_, [this](const std::unique_ptr<Session>& session) {
    if (session->state != SessionState::kClosed) return false;
    if (session->fd >= 0) ::close(session->fd);
    return true;
  });

  deliver_local();
}

void TcpTransport::run_for(std::chrono::milliseconds deadline) {
  const auto until = Clock::now() + deadline;
  while (Clock::now() < until) {
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(until - Clock::now());
    poll_once(std::max<std::chrono::milliseconds>(std::chrono::milliseconds(1), left));
  }
}

void TcpTransport::stop() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  dialing_ = false;
  for (Link& link : links_) {
    if (link.session) close_session(*link.session);
    link.session.reset();
    link.connecting = false;
  }
  for (const auto& session : inbound_) close_session(*session);
  inbound_.clear();
}

}  // namespace amm::net
