#include "net/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <cstring>
#include <memory>
#include <utility>

#include "support/assert.hpp"

namespace amm::net {

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Numeric IPv4 only (plus "localhost"); cluster configs are addresses,
/// not names — DNS has no place inside the reactor.
bool resolve(const Endpoint& ep, sockaddr_in* out) {
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(ep.port);
  const char* host = ep.host == "localhost" ? "127.0.0.1" : ep.host.c_str();
  return ::inet_pton(AF_INET, host, &out->sin_addr) == 1;
}

/// Deep enough that a swarm's connect burst (hundreds of clients dialing
/// one node at once) does not shed connections before accept drains them.
constexpr int kListenBacklog = 1024;

}  // namespace

TcpTransport::TcpTransport(TransportConfig config, const crypto::KeyRegistry& keys, Rng rng)
    : config_(std::move(config)),
      keys_(&keys),
      verifier_(keys, config_.verify_cache_cap),
      rng_(rng),
      links_(config_.peers.size()) {
  AMM_EXPECTS(!config_.peers.empty());
  AMM_EXPECTS(config_.self.index < config_.peers.size());
  AMM_EXPECTS(keys.node_count() >= node_count());
  AMM_EXPECTS(config_.outbound_low_watermark <= config_.outbound_high_watermark);
  loop_ = EventLoop::make(config_.backend);
  if (!loop_) loop_ = EventLoop::make(LoopBackend::kPoll);  // requested backend unavailable
}

TcpTransport::~TcpTransport() { stop(); }

bool TcpTransport::start() {
  AMM_EXPECTS(listen_fd_ < 0);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  if (!resolve(config_.peers[config_.self.index], &addr)) {
    ::close(fd);
    return false;
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, kListenBacklog) != 0 || !set_nonblocking(fd)) {
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0 ||
      !loop_->add(fd, kListenerToken, EventLoop::kRead)) {
    ::close(fd);
    return false;
  }
  listen_fd_ = fd;
  listen_port_ = ntohs(bound.sin_port);
  return true;
}

void TcpTransport::set_peer_endpoint(NodeId id, Endpoint endpoint) {
  AMM_EXPECTS(id.index < config_.peers.size());
  config_.peers[id.index] = std::move(endpoint);
}

void TcpTransport::connect_peers() {
  dialing_ = true;
  for (u32 i = 0; i < node_count(); ++i) {
    if (i == config_.self.index) continue;
    if (!links_[i].session && !links_[i].connecting) dial(i);
  }
}

void TcpTransport::attach(NodeId id, Handler handler) {
  AMM_EXPECTS(id == config_.self);  // a TCP transport hosts exactly one node
  handler_ = std::move(handler);
}

void TcpTransport::send(NodeId from, NodeId to, mp::WireMessage msg) {
  AMM_EXPECTS(from == config_.self);
  AMM_EXPECTS(to.index < node_count());
  ++messages_sent_;
  bytes_sent_ += msg.wire_size();
  if (to == config_.self) {
    local_.emplace_back(from, std::move(msg));
    return;
  }
  // One exactly-sized allocation: header, frame kind and payload are
  // encoded straight into the buffer the queue will own.
  queue_frame_to_peer(to.index, FrameBuf::own(encode_framed_message(msg)));
}

void TcpTransport::broadcast(NodeId from, const mp::WireMessage& msg) {
  AMM_EXPECTS(from == config_.self);
  // Encode once; every peer's queue references the same immutable page, so
  // fan-out to n-1 sockets costs one allocation instead of n-1 copies.
  std::shared_ptr<const std::vector<u8>> page;
  for (u32 to = 0; to < node_count(); ++to) {
    ++messages_sent_;
    bytes_sent_ += msg.wire_size();
    if (to == config_.self.index) {
      local_.emplace_back(from, msg);
      continue;
    }
    if (!page) page = std::make_shared<const std::vector<u8>>(encode_framed_message(msg));
    queue_frame_to_peer(to, FrameBuf::share(page));
  }
}

void TcpTransport::queue_frame_to_peer(u32 peer_index, FrameBuf frame) {
  Link& link = links_[peer_index];
  if (link.session && link.session->state != SessionState::kClosed && !link.connecting) {
    Session& session = *link.session;
    if (!session.queue_frame(TxClass::kRepl, std::move(frame))) {
      ++backpressure_drops_;  // over the high watermark: shed, don't buffer
      return;
    }
    update_paused(session);
    mark_dirty(session);
    return;
  }
  // Link down: hold the frame for the next (re)connect, oldest out first.
  if (link.pending.size() >= config_.max_pending_frames_per_peer) {
    link.pending.pop_front();
    ++frames_dropped_;
  }
  link.pending.push_back(std::move(frame));
}

void TcpTransport::register_session(Session& session, u32 interest) {
  session.interest = interest;
  loop_->add(session.fd, session.id, interest);
  by_token_.emplace(session.id, &session);
}

void TcpTransport::dial(u32 peer_index) {
  Link& link = links_[peer_index];
  link.connecting = false;
  sockaddr_in addr{};
  if (!resolve(config_.peers[peer_index], &addr)) {
    on_link_down(link);
    return;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0 || !set_nonblocking(fd)) {
    if (fd >= 0) ::close(fd);
    on_link_down(link);
    return;
  }
  set_nodelay(fd);
  auto session = std::make_unique<Session>();
  session->fd = fd;
  session->id = next_session_id_++;
  session->outbound = true;
  session->peer = NodeId{peer_index};
  session->state = SessionState::kProtocol;
  link.session = std::move(session);
  const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc == 0) {
    register_session(*link.session, EventLoop::kRead);
    on_link_connected(link, peer_index);
  } else if (errno == EINPROGRESS) {
    // Writability (or an error event) signals connect completion.
    register_session(*link.session, EventLoop::kWrite);
    link.connecting = true;
  } else {
    close_session(*link.session);
    link.session.reset();
    on_link_down(link);
  }
}

void TcpTransport::on_link_connected(Link& link, u32 peer_index) {
  (void)peer_index;
  link.connecting = false;
  if (link.ever_connected) ++reconnects_;
  link.ever_connected = true;
  link.attempts = 0;
  // Authenticate first, then flush everything queued while the link was
  // down — FIFO, so per-peer ordering is preserved across reconnects. The
  // fresh session starts unpaused, so the whole backlog enqueues; the
  // watermark is applied once afterwards.
  Session& session = *link.session;
  const Hello hello = make_hello(config_.self, rng_.next(), *keys_);
  std::vector<u8> frame;
  append_frame(frame, FrameKind::kHello, encode_hello(hello));
  session.queue_frame(TxClass::kCtl, std::move(frame));
  while (!link.pending.empty()) {
    session.queue_frame(TxClass::kRepl, std::move(link.pending.front()));
    link.pending.pop_front();
  }
  update_paused(session);
  mark_dirty(session);
}

void TcpTransport::on_link_down(Link& link) {
  if (link.session) {
    // Salvage undelivered replication frames for the next connection: a
    // frame that did not fully leave the socket was never delivered
    // (partial frames are discarded by the receiver), so it re-queues
    // ahead of newer pending traffic. The ctl class — at most a stale
    // hello here — is dropped; every connection opens with its own.
    Session& session = *link.session;
    auto& repl = session.tx[static_cast<usize>(TxClass::kRepl)];
    while (!repl.empty()) {
      link.pending.push_front(std::move(repl.back()));
      repl.pop_back();
    }
    while (link.pending.size() > config_.max_pending_frames_per_peer) {
      link.pending.pop_front();
      ++frames_dropped_;
    }
    close_session(session);
    link.session.reset();
  }
  link.connecting = false;
  ++link.attempts;
  link.next_attempt = Clock::now() + backoff_delay(link.attempts);
}

std::chrono::milliseconds TcpTransport::backoff_delay(u32 attempts) {
  const u32 shift = std::min(attempts > 0 ? attempts - 1 : 0u, 16u);
  auto delay = config_.backoff_base * (1u << shift);
  delay = std::min(delay, config_.backoff_max);
  // Jitter in [0.5, 1.0): desynchronizes a restarted cluster.
  const double jitter = 0.5 + 0.5 * rng_.uniform();
  return std::chrono::milliseconds(
      std::max<i64>(1, static_cast<i64>(static_cast<double>(delay.count()) * jitter)));
}

void TcpTransport::kick_outbound() { kick_requested_ = true; }

u32 TcpTransport::connected_outbound() const {
  u32 up = 0;
  for (const Link& link : links_) {
    if (link.session && !link.connecting) ++up;
  }
  return up;
}

usize TcpTransport::outbound_queued_bytes(NodeId peer) const {
  AMM_EXPECTS(peer.index < links_.size());
  const Link& link = links_[peer.index];
  return link.session ? link.session->tx_bytes : 0;
}

bool TcpTransport::outbound_paused(NodeId peer) const {
  AMM_EXPECTS(peer.index < links_.size());
  const Link& link = links_[peer.index];
  return link.session && link.session->paused;
}

void TcpTransport::accept_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error — poll again later
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    set_nodelay(fd);
    auto session = std::make_unique<Session>();
    session->fd = fd;
    session->id = next_session_id_++;
    session->state = SessionState::kAwaitingHello;
    register_session(*session, EventLoop::kRead);
    inbound_.push_back(std::move(session));
  }
}

bool TcpTransport::read_session(Session& session) {
  u8 chunk[65536];
  for (;;) {
    const ssize_t n = ::recv(session.fd, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (n > 0) {
      session.rx.insert(session.rx.end(), chunk, chunk + n);
      if (static_cast<usize>(n) < sizeof(chunk)) break;
    } else if (n == 0) {
      return false;  // orderly shutdown
    } else {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
  }
  return drain_frames(session);
}

bool TcpTransport::drain_frames(Session& session) {
  // Frames are parsed in place (FrameView borrows the payload bytes) and
  // the consumed prefix is erased once at the end — one memmove per drain
  // instead of one per frame. Handlers copy what they keep: decode_* and
  // collect_signature_checks materialize owning structures, so no borrowed
  // span outlives this loop.
  usize consumed_total = 0;
  bool keep = true;
  for (;;) {
    FrameView frame;
    usize consumed = 0;
    const std::span<const u8> rest{session.rx.data() + consumed_total,
                                   session.rx.size() - consumed_total};
    const FrameStatus status = extract_frame_view(rest, &frame, &consumed);
    if (status == FrameStatus::kNeedMore) break;
    if (status == FrameStatus::kCorrupt) {
      keep = false;
      break;
    }
    consumed_total += consumed;
    if (!handle_frame(session, frame)) {
      keep = false;
      break;
    }
  }
  if (consumed_total > 0) {
    session.rx.erase(session.rx.begin(),
                     session.rx.begin() + static_cast<std::ptrdiff_t>(consumed_total));
  }
  return keep;
}

bool TcpTransport::handle_frame(Session& session, const FrameView& frame) {
  switch (frame.kind) {
    case FrameKind::kHello: {
      if (session.state != SessionState::kAwaitingHello) return false;
      const auto hello = decode_hello(frame.payload);
      if (!hello || !verify_hello(*hello, node_count(), *keys_) ||
          hello->node == config_.self) {
        ++auth_rejects_;
        return false;  // unauthenticated peer: drop the connection
      }
      session.state = SessionState::kProtocol;
      session.peer = hello->node;
      return true;
    }
    case FrameKind::kMsg: {
      if (session.state != SessionState::kProtocol || session.outbound) return false;
      auto msg = decode_message(frame.payload);
      if (!msg) return false;  // corrupt payload: drop the connection
      // Lemma 4.1 on the wire, split for batching: structural admission
      // now, signature verdicts with the cycle's crypto batch.
      const usize first = checks_.size();
      if (collect_signature_checks(*msg, session.peer, checks_, &sig_rejects_) ==
          Admission::kReject) {
        ++sig_rejects_;
        return true;  // reject the message, keep the session
      }
      pending_msgs_.push_back(
          PendingMessage{session.peer, std::move(*msg), first, checks_.size() - first});
      return true;
    }
    case FrameKind::kCtlReq: {
      if (session.state == SessionState::kAwaitingHello) session.state = SessionState::kCtl;
      if (session.state != SessionState::kCtl) return false;
      const auto req = decode_ctl_request(frame.payload);
      if (!req) return false;
      if (ctl_handler_) ctl_handler_(session.id, *req);
      return true;
    }
    case FrameKind::kCtlRep:
      return false;  // servers never receive replies
  }
  return false;
}

void TcpTransport::verify_and_dispatch() {
  if (pending_msgs_.empty()) {
    checks_.clear();
    return;
  }
  crypto::verify_batch(verifier_, checks_, verify_pool_);
  // Deterministic dispatch: by author, stable — per-session FIFO (the one
  // order TCP guarantees) is preserved, and the sequence no longer depends
  // on which backend fired or in what order fds became ready.
  std::stable_sort(pending_msgs_.begin(), pending_msgs_.end(),
                   [](const PendingMessage& a, const PendingMessage& b) {
                     return a.from.index < b.from.index;
                   });
  for (PendingMessage& pending : pending_msgs_) {
    const std::span<const crypto::BatchCheck> verdicts{checks_.data() + pending.first,
                                                       pending.count};
    if (apply_verify_verdicts(pending.msg, verdicts, &sig_rejects_) == Admission::kReject) {
      ++sig_rejects_;
      continue;
    }
    if (handler_) handler_(pending.from, pending.msg);
  }
  pending_msgs_.clear();
  checks_.clear();
}

void TcpTransport::send_ctl_reply(u64 session_id, const CtlReply& reply) {
  // Token lookup, not an inbound_ scan: with thousands of mostly-idle
  // sessions a linear search here turns every ctl append into an
  // O(sessions) walk and dominates the whole node's CPU.
  const auto it = by_token_.find(session_id);
  if (it == by_token_.end()) return;  // session gone: drop the reply
  Session& session = *it->second;
  if (session.state != SessionState::kCtl) return;
  std::vector<u8> frame;
  append_frame(frame, FrameKind::kCtlRep, encode_ctl_reply(reply));
  session.queue_frame(TxClass::kCtl, std::move(frame));
  flush_and_sync(session);
}

void TcpTransport::mark_dirty(Session& session) {
  if (session.dirty || !session.wants_write()) return;
  session.dirty = true;
  dirty_.push_back(session.id);
}

void TcpTransport::sync_interest(Session& session) {
  if (session.fd < 0 || session.state == SessionState::kClosed) return;
  const u32 desired = EventLoop::kRead | (session.wants_write() ? EventLoop::kWrite : 0);
  if (desired != session.interest) {
    loop_->modify(session.fd, session.id, desired);
    session.interest = desired;
  }
}

void TcpTransport::update_paused(Session& session) {
  if (!session.paused && session.tx_bytes > config_.outbound_high_watermark) {
    session.paused = true;
  } else if (session.paused && session.tx_bytes <= config_.outbound_low_watermark) {
    session.paused = false;
  }
}

void TcpTransport::flush_and_sync(Session& session) {
  if (session.fd < 0 || session.state == SessionState::kClosed) return;
  const FlushResult result = flush_session_buffers(session, config_.max_write_iov);
  writev_calls_ += result.syscalls;
  if (result.fatal) {
    close_session(session);
    return;
  }
  update_paused(session);
  sync_interest(session);
}

void TcpTransport::flush_dirty() {
  // dirty_ can grow while flushing (a fatal flush downs a link whose
  // salvage re-queues traffic); index loop, not iterators.
  for (usize i = 0; i < dirty_.size(); ++i) {
    const auto it = by_token_.find(dirty_[i]);
    if (it == by_token_.end()) continue;  // closed since it was queued
    Session& session = *it->second;
    session.dirty = false;
    if (session.outbound && links_[session.peer.index].connecting) continue;
    flush_and_sync(session);
  }
  dirty_.clear();
}

void TcpTransport::deliver_local() {
  while (!local_.empty()) {
    auto [from, msg] = std::move(local_.front());
    local_.pop_front();
    if (handler_) handler_(from, msg);
  }
}

void TcpTransport::close_session(Session& session) {
  if (session.fd >= 0) {
    // Unregister before close: a recycled fd number must not inherit this
    // session's loop registration (events are token-keyed, but epoll's
    // interest list is fd-keyed).
    loop_->remove(session.fd);
    ::close(session.fd);
    session.fd = -1;
  }
  by_token_.erase(session.id);
  session.state = SessionState::kClosed;
  needs_reap_ = true;
}

void TcpTransport::poll_once(std::chrono::milliseconds max_wait) {
  deliver_local();

  if (kick_requested_) {
    kick_requested_ = false;
    for (Link& link : links_) {
      if (link.session || link.connecting) on_link_down(link);
    }
  }

  // Redial any link whose backoff deadline has passed.
  const auto now = Clock::now();
  if (dialing_) {
    for (u32 i = 0; i < node_count(); ++i) {
      Link& link = links_[i];
      if (i == config_.self.index || link.session || link.connecting) continue;
      if (now >= link.next_attempt) dial(i);
    }
  }

  // Traffic queued since the last cycle (protocol timers, ctl pumps)
  // goes out before we sleep.
  flush_dirty();

  // Cap the wait at the next reconnect deadline so backoff fires on time.
  i64 wait_ms = max_wait.count();
  if (dialing_) {
    for (u32 i = 0; i < node_count(); ++i) {
      const Link& link = links_[i];
      if (i == config_.self.index || link.session || link.connecting) continue;
      const auto until =
          std::chrono::duration_cast<std::chrono::milliseconds>(link.next_attempt - now).count();
      wait_ms = std::clamp<i64>(until, 0, wait_ms);
    }
  }
  if (!local_.empty()) wait_ms = 0;

  const int ready = loop_->wait(std::chrono::milliseconds(wait_ms), &events_);
  if (ready > 0) {
    for (const ReadyEvent& event : events_) {
      if (event.token == kListenerToken) {
        accept_ready();
        continue;
      }
      const auto it = by_token_.find(event.token);
      if (it == by_token_.end()) continue;  // closed earlier this cycle
      Session& session = *it->second;
      if (session.state == SessionState::kClosed) continue;
      // Outbound connect completion: writability (or an error event) on a
      // connecting link resolves the non-blocking connect.
      if (session.outbound && links_[session.peer.index].connecting) {
        Link& link = links_[session.peer.index];
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(session.fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (event.error || err != 0) {
          on_link_down(link);
          continue;
        }
        if (event.writable) on_link_connected(link, session.peer.index);
        continue;
      }
      if (event.error && !event.readable) {
        close_session(session);
        continue;
      }
      if (event.readable && !read_session(session)) {
        close_session(session);
        continue;
      }
      if (event.writable) flush_and_sync(session);
    }
  }

  // One crypto batch for everything admitted this cycle, then dispatch.
  verify_and_dispatch();

  // Handlers may have produced traffic — flush opportunistically so a
  // request/reply exchange completes in one poll round-trip per hop.
  flush_dirty();

  // Reap downed outbound links into backoff; drop dead inbound sessions.
  // Gated on close_session() having actually run (the sole writer of
  // kClosed): sweeping thousands of idle inbound sessions every cycle
  // would reintroduce exactly the O(sessions)-per-cycle cost the event
  // loop exists to avoid.
  if (needs_reap_) {
    needs_reap_ = false;
    for (Link& link : links_) {
      if (link.session && link.session->state == SessionState::kClosed) on_link_down(link);
    }
    std::erase_if(inbound_, [](const std::unique_ptr<Session>& session) {
      return session->state == SessionState::kClosed;
    });
  }

  deliver_local();
}

void TcpTransport::run_for(std::chrono::milliseconds deadline) {
  const auto until = Clock::now() + deadline;
  while (Clock::now() < until) {
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(until - Clock::now());
    poll_once(std::max<std::chrono::milliseconds>(std::chrono::milliseconds(1), left));
  }
}

void TcpTransport::stop() {
  if (listen_fd_ >= 0) {
    loop_->remove(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  dialing_ = false;
  for (Link& link : links_) {
    if (link.session) close_session(*link.session);
    link.session.reset();
    link.connecting = false;
  }
  for (const auto& session : inbound_) close_session(*session);
  inbound_.clear();
  dirty_.clear();
}

}  // namespace amm::net
