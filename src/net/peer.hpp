// Peer sessions and wire-level admission control for the TCP transport.
//
// A Session owns one TCP connection's buffered state (receive buffer,
// outbound byte queue, handshake progress). Inbound protocol sessions must
// open with a valid kHello frame — a signature over the hello digest that
// only the claimed node's key can produce — before any kMsg frame is
// dispatched; transport sessions that fail authentication are dropped.
//
// validate_message() additionally enforces Lemma 4.1 at the wire: append
// records and acks whose signatures do not verify are rejected before the
// protocol handler ever sees them, and read replies are filtered down to
// their validly-signed records. AbdNode re-checks on its own layer — the
// wire check exists so a compromised peer cannot even spend handler CPU.
#pragma once

#include <deque>
#include <vector>

#include "crypto/signature.hpp"
#include "net/codec.hpp"

namespace amm::net {

enum class SessionState : u8 {
  kAwaitingHello,  ///< inbound, first frame not yet seen
  kProtocol,       ///< authenticated node-to-node session
  kCtl,            ///< control-plane client (amm_ctl)
  kClosed,
};

/// One live connection. The transport owns the fd and the poll
/// registration; the Session owns every buffered byte.
struct Session {
  int fd = -1;
  u64 id = 0;  ///< transport-unique session id (ctl reply routing)
  SessionState state = SessionState::kAwaitingHello;
  NodeId peer;            ///< valid once state == kProtocol
  bool outbound = false;  ///< we dialed it (receive side still accepted)
  std::vector<u8> rx;
  /// Outbound queue, one encoded frame per entry. Frame granularity
  /// matters: when a connection dies, every frame that did not fully
  /// leave the socket can be salvaged for the next connection — a frame
  /// the remote only partially received was, by the framing discipline,
  /// never delivered, so resending it whole cannot duplicate.
  std::deque<std::vector<u8>> tx;
  usize tx_off = 0;  ///< bytes of tx.front() already written

  bool wants_write() const { return !tx.empty(); }
  void queue_frame(std::vector<u8> frame) { tx.push_back(std::move(frame)); }
};

/// Outcome of wire-level admission of one decoded message.
enum class Admission : u8 {
  kDeliver,   ///< hand to the protocol handler (possibly with view filtered)
  kReject,    ///< drop the message, keep the session
};

/// Builds the hello this endpoint sends when dialing peer connections.
Hello make_hello(NodeId self, u64 nonce, const crypto::KeyRegistry& keys);

/// Verifies an inbound hello: magic already checked by the decoder; the
/// signature must be the claimed node's signature over the hello digest,
/// and the claimed node id must be inside the cluster.
bool verify_hello(const Hello& hello, u32 node_count, const crypto::KeyRegistry& keys);

/// Lemma 4.1 at the wire. kAppend: author signature must verify and the
/// signer must equal the author. kAck: the ack signature must verify and
/// the signer must equal the session's authenticated peer (an acker cannot
/// vote in someone else's name). kReadReply: invalidly signed records are
/// removed from msg.view in place (`*filtered` counts them); the reply
/// itself is still delivered. kReadReq carries no signature (the frontier
/// is advisory: a lying frontier can only change *which* records come
/// back, and the reader's own merge re-verifies all of them).
///
/// Verification goes through a VerifyCache, so a record crossing this wire
/// check and then the protocol-layer re-check (or arriving in many read
/// replies) costs one registry verification; forged signatures are never
/// cached and are re-rejected on every delivery.
Admission validate_message(mp::WireMessage& msg, NodeId from, crypto::VerifyCache& verifier,
                           u64* filtered);

}  // namespace amm::net
