// Peer sessions and wire-level admission control for the TCP transport.
//
// A Session owns one TCP connection's buffered state (receive buffer,
// outbound frame queues, handshake progress). Inbound protocol sessions
// must open with a valid kHello frame — a signature over the hello digest
// that only the claimed node's key can produce — before any kMsg frame is
// dispatched; transport sessions that fail authentication are dropped.
//
// The outbound side is two priority queues of whole frames. The ctl class
// (hellos, control-plane replies) drains before the replication class
// (kMsg traffic) and is exempt from backpressure, so an operator's stats
// request cuts ahead of a replication backlog and a slow reader can never
// starve the control plane. flush_session_buffers() drains both classes
// through bounded writev chains — one syscall moves many small frames —
// and tracks the partially written frame so frames stay atomic on the
// wire no matter where a short write lands.
//
// validate_message() enforces Lemma 4.1 at the wire for the inline
// (unbatched) path; collect_signature_checks()/apply_verify_verdicts()
// split the same admission rule into a structural pre-check plus deferred
// signature verification so the transport can batch one drain cycle's
// records through crypto::verify_batch. AbdNode re-checks on its own
// layer — the wire check exists so a compromised peer cannot even spend
// handler CPU.
#pragma once

#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "crypto/batch.hpp"
#include "crypto/signature.hpp"
#include "net/codec.hpp"

namespace amm::net {

/// One outbound frame: a view into an immutable heap page plus the shared
/// ownership that keeps the page alive while any queue references it. A
/// broadcast encodes its frame once and every peer's queue holds the same
/// page (`share`), so fan-out to n peers costs one allocation instead of
/// n copies; singly-addressed frames wrap their own buffer (`own`). The
/// page is immutable once queued — flush reads through a const span and
/// tracks partial writes by offset, never by mutating the page.
struct FrameBuf {
  std::shared_ptr<const std::vector<u8>> page;
  std::span<const u8> bytes;

  usize size() const { return bytes.size(); }
  const u8* data() const { return bytes.data(); }

  /// Wraps a freshly encoded buffer this frame alone references.
  static FrameBuf own(std::vector<u8> buf) {
    auto page = std::make_shared<const std::vector<u8>>(std::move(buf));
    std::span<const u8> bytes{page->data(), page->size()};
    return FrameBuf{std::move(page), bytes};
  }

  /// References an already-shared page (broadcast fan-out).
  static FrameBuf share(const std::shared_ptr<const std::vector<u8>>& page) {
    return FrameBuf{page, std::span<const u8>{page->data(), page->size()}};
  }
};

enum class SessionState : u8 {
  kAwaitingHello,  ///< inbound, first frame not yet seen
  kProtocol,       ///< authenticated node-to-node session
  kCtl,            ///< control-plane client (amm_ctl)
  kClosed,
};

/// Outbound priority class of a frame. kCtl (hellos, ctl replies) drains
/// first and is never dropped by backpressure; kRepl (protocol kMsg
/// frames) is subject to the per-peer byte budget.
enum class TxClass : u8 { kCtl = 0, kRepl = 1 };

inline constexpr usize kTxClasses = 2;
/// Frames coalesced into one writev chain (well under IOV_MAX, 1024 on
/// Linux; 64 frames ≈ one TCP send buffer's worth of small appends).
inline constexpr usize kMaxWriteIov = 64;

/// One live connection. The transport owns the fd and the loop
/// registration; the Session owns every buffered byte.
struct Session {
  int fd = -1;
  u64 id = 0;  ///< transport-unique session id; doubles as the loop token
  SessionState state = SessionState::kAwaitingHello;
  NodeId peer;            ///< valid once state == kProtocol
  bool outbound = false;  ///< we dialed it (receive side still accepted)
  std::vector<u8> rx;
  /// Outbound queues, one encoded frame per entry, indexed by TxClass.
  /// Frame granularity matters: when a connection dies, every replication
  /// frame that did not fully leave the socket can be salvaged for the
  /// next connection — a frame the remote only partially received was, by
  /// the framing discipline, never delivered, so resending it whole
  /// cannot duplicate. Broadcast frames share one page across all queues.
  std::deque<FrameBuf> tx[kTxClasses];
  usize tx_off = 0;    ///< bytes of the active front frame already written
  int tx_active = -1;  ///< class owning the partially written front (-1: none)
  usize tx_bytes = 0;  ///< unsent bytes across both classes
  bool paused = false; ///< over the high watermark: kRepl enqueues are refused
  u32 interest = 0;    ///< interest mask currently registered with the loop
  bool dirty = false;  ///< already on the transport's flush list this cycle

  bool wants_write() const { return tx_bytes > 0; }

  /// Appends a frame to its class queue. Returns false — frame refused —
  /// only for kRepl while paused (the caller counts the drop); the caller
  /// updates `paused` against its watermarks after a successful enqueue.
  bool queue_frame(TxClass cls, FrameBuf frame) {
    if (cls == TxClass::kRepl && paused) return false;
    tx_bytes += frame.size();
    tx[static_cast<usize>(cls)].push_back(std::move(frame));
    return true;
  }

  /// Convenience overload for singly-addressed frames.
  bool queue_frame(TxClass cls, std::vector<u8> frame) {
    return queue_frame(cls, FrameBuf::own(std::move(frame)));
  }
};

/// Outcome of one flush_session_buffers() call.
struct FlushResult {
  bool fatal = false;  ///< connection error (EPIPE/ECONNRESET/...): close it
  u64 syscalls = 0;    ///< writev/sendmsg invocations performed
  u64 bytes = 0;       ///< bytes accepted by the socket
};

/// Drains the session's queues — partial front first, then the ctl class,
/// then replication — through writev chains of up to `max_iov` frames per
/// syscall. Stops on EAGAIN (socket full; resume on the next writable
/// event). Never blocks: the fd must be nonblocking and the chain is sent
/// with MSG_DONTWAIT regardless.
FlushResult flush_session_buffers(Session& session, usize max_iov = kMaxWriteIov);

/// Outcome of wire-level admission of one decoded message.
enum class Admission : u8 {
  kDeliver,   ///< hand to the protocol handler (possibly with view filtered)
  kReject,    ///< drop the message, keep the session
};

/// Builds the hello this endpoint sends when dialing peer connections.
Hello make_hello(NodeId self, u64 nonce, const crypto::KeyRegistry& keys);

/// Verifies an inbound hello: magic already checked by the decoder; the
/// signature must be the claimed node's signature over the hello digest,
/// and the claimed node id must be inside the cluster.
bool verify_hello(const Hello& hello, u32 node_count, const crypto::KeyRegistry& keys);

/// Lemma 4.1 at the wire. kAppend: author signature must verify and the
/// signer must equal the author. kAck: the ack signature must verify and
/// the signer must equal the session's authenticated peer (an acker cannot
/// vote in someone else's name). kReadReply: invalidly signed records are
/// removed from msg.view in place (`*filtered` counts them); the reply
/// itself is still delivered. kReadReq carries no signature (the frontier
/// is advisory: a lying frontier can only change *which* records come
/// back, and the reader's own merge re-verifies all of them), and neither
/// does kCheckpointReq. kCheckpointReply: the checkpoint signature must
/// verify and its signer must equal the session's peer — a responder
/// vouches for its own checkpoint; the quorum cross-check happens at the
/// protocol layer.
///
/// Verification goes through a VerifyCache, so a record crossing this wire
/// check and then the protocol-layer re-check (or arriving in many read
/// replies) costs one registry verification; forged signatures are never
/// cached and are re-rejected on every delivery.
Admission validate_message(mp::WireMessage& msg, NodeId from, crypto::VerifyCache& verifier,
                           u64* filtered);

/// The batched split of validate_message. Performs the *structural* half
/// of Lemma 4.1 admission immediately — kAppend signer==author, kAck
/// signer==from, and the same filters on kReadReply records (`*filtered`
/// counts structurally invalid records removed in place) — and appends
/// the signature checks still owed to `checks`. Returns kReject when the
/// message is structurally inadmissible (caller drops it without queueing
/// any checks); kDeliver means "admissible iff its checks verify".
Admission collect_signature_checks(mp::WireMessage& msg, NodeId from,
                                   std::vector<crypto::BatchCheck>& checks, u64* filtered);

/// Applies the verdicts verify_batch wrote into checks[first..first+count)
/// for a message previously admitted by collect_signature_checks (the
/// same msg, unmodified in between). kAppend/kAck: one failed check
/// rejects the message. kReadReply: records whose check failed are
/// removed from msg.view in place (`*filtered` counts them); the reply is
/// still delivered. kReadReq: no checks, always delivered.
Admission apply_verify_verdicts(mp::WireMessage& msg,
                                std::span<const crypto::BatchCheck> checks, u64* filtered);

}  // namespace amm::net
