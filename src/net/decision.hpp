// The DAG BA decision rule (§5.3, Algorithm 6, lines 8–9) applied to a
// replicated ABD view.
//
// Algorithm 6 decides on the sign of the sum of the first k values in the
// canonical ordering of the DAG. Over the §4 replicated memory the common
// ordering is supplied by the replication itself: every completed append
// is in every subsequent read (Lemma 4.2), and the canonical linearization
// below — by (seq, author), the wire analogue of height-then-tie-break —
// is a pure function of the record set. Two correct nodes whose reads both
// cover the first k records therefore decide identically, which is exactly
// what the loopback cluster test asserts across survivors. (Wire records
// do not yet carry DAG references; when they do, this rule upgrades to the
// pivot-chain linearization of chain/rules.hpp.)
#pragma once

#include <algorithm>
#include <vector>

#include "mp/wire.hpp"
#include "support/assert.hpp"

namespace amm::net {

struct Decision {
  i64 sign = 0;       ///< ±1 (Algorithm 6's output); 0 when the view is empty
  u32 decided_over = 0;  ///< records actually summed: min(k, view size)
};

/// Canonical linearization key: height (seq) first, author as tie-break.
inline bool canonical_before(const mp::SignedAppend& a, const mp::SignedAppend& b) {
  if (a.seq != b.seq) return a.seq < b.seq;
  if (a.author != b.author) return a.author.index < b.author.index;
  return a.value < b.value;
}

/// Decides on the sign of the sum of the first k values of the canonical
/// ordering of `view`. Values map to votes by sign (the paper's inputs are
/// {-1, +1}; arbitrary i64 values vote by their sign, ties toward +1).
inline Decision decide_first_k(std::vector<mp::SignedAppend> view, u32 k) {
  Decision decision;
  if (view.empty() || k == 0) return decision;
  const usize cut = std::min<usize>(k, view.size());
  std::partial_sort(view.begin(), view.begin() + static_cast<std::ptrdiff_t>(cut), view.end(),
                    canonical_before);
  i64 sum = 0;
  for (usize i = 0; i < cut; ++i) sum += view[i].value >= 0 ? 1 : -1;
  decision.sign = vote_value(sign_decision(sum));
  decision.decided_over = static_cast<u32>(cut);
  return decision;
}

/// decide_first_k over a compacted node: the folded prefix contributes
/// through the checkpoint's vote_sum, the live suffix through its records.
/// Exact for k >= checkpoint.folded_records because the checkpoint's
/// uniform cut is canonically closed — the canonical order (seq, then
/// author) enumerates *every* folded record (all seqs < folded_below)
/// before any suffix record (all seqs >= folded_below), so the first
/// `folded_records` summands are exactly the folded set, in any order
/// (a sum is permutation-invariant). For k < folded_records the fold has
/// discarded the per-record resolution this rule would need; callers gate
/// on k (summary-mode deciders always decide at or past the cut).
inline Decision decide_first_k_with_checkpoint(const mp::Checkpoint& ckpt,
                                               std::vector<mp::SignedAppend> suffix, u32 k) {
  Decision decision;
  if (k == 0 || (ckpt.folded_records == 0 && suffix.empty())) return decision;
  AMM_EXPECTS(k >= ckpt.folded_records);
  const usize cut = std::min<usize>(k - ckpt.folded_records, suffix.size());
  std::partial_sort(suffix.begin(), suffix.begin() + static_cast<std::ptrdiff_t>(cut),
                    suffix.end(), canonical_before);
  i64 sum = ckpt.vote_sum;
  for (usize i = 0; i < cut; ++i) sum += suffix[i].value >= 0 ? 1 : -1;
  decision.sign = vote_value(sign_decision(sum));
  decision.decided_over = static_cast<u32>(ckpt.folded_records + cut);
  return decision;
}

}  // namespace amm::net
