// amm_logtool — offline inspection and repair of a node's durable store
// (storage::FileLog layout, DESIGN.md §10).
//
//   amm_logtool dump --dir D                 print snapshot + every record
//   amm_logtool verify --dir D [--n N --seed S]
//                                            check CRCs, framing, segment
//                                            continuity, record and snapshot
//                                            signatures; exit 1 on any fault
//   amm_logtool truncate --dir D             cut the torn tail off the last
//                                            segment (the repair `verify`
//                                            recommends after a crash)
//
// Unlike opening the store through FileLog, `dump` and `verify` never
// mutate it — a torn tail is reported, not repaired, so an operator can
// look before the node (or `truncate`) rewrites history. With --n/--seed
// the cluster's KeyRegistry is rederived and every record signature plus
// the snapshot's self-signature is checked; without them signature checks
// are skipped (the CRCs still catch corruption, just not forgery).
//
// Output is line-oriented key=value, exit status 0 = clean store; scripts
// (tools/cluster_test.py --durable, CI) branch on both.
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "storage/file_log.hpp"
#include "storage/log_format.hpp"
#include "tools/cli.hpp"

namespace {

using namespace amm;

struct SegmentScan {
  std::string path;
  u64 first_seq = 0;
  u64 records = 0;
  usize valid_bytes = 0;
  usize torn_bytes = 0;
  std::vector<mp::SignedAppend> recs;
};

/// Reads and frame-scans every segment, in log order. IO failure prints
/// and returns false; torn tails are recorded, not fatal.
bool scan_segments(const std::string& dir, std::vector<SegmentScan>* out) {
  for (const std::string& name : storage::list_store_files(dir, "seg-", ".log")) {
    SegmentScan seg;
    seg.path = dir + "/" + name;
    seg.first_seq = *storage::parse_store_seq(name, "seg-", ".log");
    const auto image = storage::read_file(seg.path);
    if (!image) {
      std::fprintf(stderr, "amm_logtool: cannot read %s\n", seg.path.c_str());
      return false;
    }
    usize off = 0;
    mp::SignedAppend rec;
    usize consumed = 0;
    while (off < image->size() &&
           storage::extract_record_frame({image->data() + off, image->size() - off}, &rec,
                                         &consumed) == storage::ScanStatus::kRecord) {
      seg.recs.push_back(rec);
      ++seg.records;
      off += consumed;
    }
    seg.valid_bytes = off;
    seg.torn_bytes = image->size() - off;
    out->push_back(std::move(seg));
  }
  return true;
}

/// The newest snapshot file, decoded; `decode_ok=false` flags a file that
/// exists but fails framing/CRC.
struct SnapshotScan {
  std::string path;
  bool present = false;
  bool decode_ok = false;
  mp::Snapshot snap;
};

SnapshotScan scan_snapshot(const std::string& dir) {
  SnapshotScan result;
  const auto names = storage::list_store_files(dir, "snap-", ".snap");
  if (names.empty()) return result;
  result.path = dir + "/" + names.back();
  result.present = true;
  if (const auto image = storage::read_file(result.path)) {
    if (auto snap = storage::decode_snapshot(*image)) {
      result.decode_ok = true;
      result.snap = std::move(*snap);
    }
  }
  return result;
}

int run_dump(const std::string& dir) {
  const SnapshotScan snap = scan_snapshot(dir);
  if (snap.present && snap.decode_ok) {
    std::printf("snapshot file=%s log_seq=%llu next_seq=%u live=%zu folded=%llu signer=%u\n",
                snap.path.c_str(), static_cast<unsigned long long>(snap.snap.log_seq),
                snap.snap.next_seq, snap.snap.live.size(),
                static_cast<unsigned long long>(snap.snap.checkpoint.folded_records),
                snap.snap.sig.signer.index);
  } else if (snap.present) {
    std::printf("snapshot file=%s decode=failed\n", snap.path.c_str());
  }
  std::vector<SegmentScan> segments;
  if (!scan_segments(dir, &segments)) return 2;
  u64 pos = 0;
  for (const SegmentScan& seg : segments) {
    std::printf("segment file=%s first_seq=%llu records=%llu bytes=%zu torn_bytes=%zu\n",
                seg.path.c_str(), static_cast<unsigned long long>(seg.first_seq),
                static_cast<unsigned long long>(seg.records), seg.valid_bytes, seg.torn_bytes);
    pos = seg.first_seq;
    for (const mp::SignedAppend& rec : seg.recs) {
      std::printf("record log_seq=%llu author=%u seq=%u value=%lld\n",
                  static_cast<unsigned long long>(pos), rec.author.index, rec.seq,
                  static_cast<long long>(rec.value));
      ++pos;
    }
  }
  return 0;
}

int run_verify(const std::string& dir, u32 n, u64 seed) {
  u64 faults = 0;
  const auto complain = [&faults](const char* what, const std::string& detail) {
    ++faults;
    std::printf("fault kind=%s %s\n", what, detail.c_str());
  };

  std::vector<SegmentScan> segments;
  if (!scan_segments(dir, &segments)) return 2;

  std::optional<crypto::KeyRegistry> keys;
  if (n > 0) keys.emplace(n, seed);

  const SnapshotScan snap = scan_snapshot(dir);
  if (snap.present && !snap.decode_ok) {
    complain("snapshot_corrupt", "file=" + snap.path);
  }
  if (snap.present && snap.decode_ok && keys) {
    if (snap.snap.sig.signer.index >= n ||
        !keys->verify(snap.snap.digest(), snap.snap.sig)) {
      complain("snapshot_bad_signature", "file=" + snap.path);
    }
    for (const mp::SignedAppend& rec : snap.snap.live) {
      if (rec.sig.signer != rec.author || !keys->verify(rec.digest(), rec.sig)) {
        complain("snapshot_record_bad_signature",
                 "file=" + snap.path + " author=" + std::to_string(rec.author.index) +
                     " seq=" + std::to_string(rec.seq));
      }
    }
  }

  u64 expected_first = segments.empty() ? 0 : segments.front().first_seq;
  for (usize i = 0; i < segments.size(); ++i) {
    const SegmentScan& seg = segments[i];
    if (seg.first_seq != expected_first) {
      complain("segment_gap", "file=" + seg.path + " expected_first_seq=" +
                                  std::to_string(expected_first));
    }
    if (seg.torn_bytes != 0) {
      const bool last = i + 1 == segments.size();
      complain(last ? "torn_tail" : "mid_log_corruption",
               "file=" + seg.path + " valid_bytes=" + std::to_string(seg.valid_bytes) +
                   " torn_bytes=" + std::to_string(seg.torn_bytes));
    }
    if (keys) {
      for (const mp::SignedAppend& rec : seg.recs) {
        if (rec.author.index >= n || rec.sig.signer != rec.author ||
            !keys->verify(rec.digest(), rec.sig)) {
          complain("record_bad_signature",
                   "file=" + seg.path + " author=" + std::to_string(rec.author.index) +
                       " seq=" + std::to_string(rec.seq));
        }
      }
    }
    expected_first = seg.first_seq + seg.records;
  }

  u64 records = 0;
  for (const SegmentScan& seg : segments) records += seg.records;
  std::printf("verify dir=%s segments=%zu records=%llu snapshot=%s signatures=%s faults=%llu\n",
              dir.c_str(), segments.size(), static_cast<unsigned long long>(records),
              snap.present ? (snap.decode_ok ? "ok" : "corrupt") : "none",
              keys ? "checked" : "skipped", static_cast<unsigned long long>(faults));
  return faults == 0 ? 0 : 1;
}

int run_truncate(const std::string& dir) {
  std::vector<SegmentScan> segments;
  if (!scan_segments(dir, &segments)) return 2;
  if (segments.empty()) {
    std::printf("truncate dir=%s segments=0 nothing to do\n", dir.c_str());
    return 0;
  }
  const SegmentScan& last = segments.back();
  if (last.torn_bytes == 0) {
    std::printf("truncate file=%s clean tail, nothing to do\n", last.path.c_str());
    return 0;
  }
  if (::truncate(last.path.c_str(), static_cast<off_t>(last.valid_bytes)) != 0) {
    std::fprintf(stderr, "amm_logtool: cannot truncate %s\n", last.path.c_str());
    return 2;
  }
  std::printf("truncate file=%s cut_bytes=%zu kept_bytes=%zu kept_records=%llu\n",
              last.path.c_str(), last.torn_bytes, last.valid_bytes,
              static_cast<unsigned long long>(last.records));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string command;
  std::string dir;
  u32 n = 0;
  u64 seed = 20200715;
  tools::OptionSet opts("amm_logtool", "inspect and repair a node's durable store");
  opts.add_positional("command", &command, {"dump", "verify", "truncate"}, "what to do");
  opts.add_string("dir", &dir, "the store directory (amm_node --store-dir)");
  opts.add_u32("n", &n, "cluster size, for signature checks (0 = skip signatures)");
  opts.add_u64("seed", &seed, "cluster KeyRegistry seed, with --n");
  switch (opts.parse(argc, argv)) {
    case tools::ParseStatus::kHelp:
      opts.print_help(stdout);
      return 0;
    case tools::ParseStatus::kError:
      std::fprintf(stderr, "amm_logtool: %s\n", opts.error().c_str());
      return 2;
    case tools::ParseStatus::kOk:
      break;
  }
  if (dir.empty()) {
    std::fprintf(stderr, "amm_logtool: --dir is required\n");
    return 2;
  }
  struct stat st {};
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    std::fprintf(stderr, "amm_logtool: --dir %s is not a directory\n", dir.c_str());
    return 2;
  }

  if (command == "dump") return run_dump(dir);
  if (command == "verify") return run_verify(dir, n, seed);
  return run_truncate(dir);
}
