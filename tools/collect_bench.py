#!/usr/bin/env python3
"""Aggregate the bench/exp_* machine-readable results into one JSON file.

Every experiment binary accepts `--json FILE` and writes a single JSON
document (title, seed, trials, emitted tables). This driver either runs
all binaries found in <build>/bench and collects their documents, or
aggregates pre-existing per-experiment JSON files from a directory, and
merges everything into BENCH_net.json — the perf baseline the transport
work is measured against.

Usage:
  tools/collect_bench.py --build-dir build --out BENCH_net.json [--trials 3]
  tools/collect_bench.py --from-dir results/ --out BENCH_net.json
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
import tempfile
from pathlib import Path


def run_experiments(build_dir: Path, trials: int, only: str | None) -> dict[str, dict]:
    bench_dir = build_dir / "bench"
    binaries = sorted(p for p in bench_dir.glob("exp_*") if p.is_file())
    if only:
        binaries = [p for p in binaries if re.search(only, p.name)]
    if not binaries:
        sys.exit(f"error: no exp_* binaries under {bench_dir} (build the repo first)")

    docs: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="amm_bench_") as tmp:
        for binary in binaries:
            out_path = Path(tmp) / f"{binary.name}.json"
            cmd = [str(binary), "--trials", str(trials), "--json", str(out_path)]
            print(f"[collect_bench] {' '.join(cmd)}", flush=True)
            proc = subprocess.run(cmd, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)
            if proc.returncode != 0:
                sys.exit(
                    f"error: {binary.name} exited {proc.returncode}:\n"
                    f"{proc.stderr.decode(errors='replace')}"
                )
            docs[binary.name] = json.loads(out_path.read_text())
    return docs


def load_from_dir(from_dir: Path) -> dict[str, dict]:
    files = sorted(from_dir.glob("*.json"))
    if not files:
        sys.exit(f"error: no .json files in {from_dir}")
    return {p.stem: json.loads(p.read_text()) for p in files}


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", type=Path, default=Path("build"))
    ap.add_argument("--out", type=Path, default=Path("BENCH_net.json"))
    ap.add_argument("--trials", type=int, default=3,
                    help="Monte-Carlo trials per configuration (small default: smoke baseline)")
    ap.add_argument("--only", help="regex filter on binary names, e.g. 'e10|e16'")
    ap.add_argument("--from-dir", type=Path,
                    help="aggregate existing per-experiment JSON files instead of running")
    args = ap.parse_args()

    if args.from_dir:
        docs = load_from_dir(args.from_dir)
    else:
        docs = run_experiments(args.build_dir, args.trials, args.only)

    merged = {
        "generated_by": "tools/collect_bench.py",
        "experiments": {name: docs[name] for name in sorted(docs)},
    }
    args.out.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    total_tables = sum(len(d.get("tables", [])) for d in docs.values())
    print(f"[collect_bench] wrote {args.out}: {len(docs)} experiments, {total_tables} tables")


if __name__ == "__main__":
    main()
