#!/usr/bin/env python3
"""Aggregate bench/ machine-readable results into one pinned JSON baseline.

Two kinds of binaries live under <build>/bench:

  exp_*          experiment harnesses — accept `--trials N --json FILE` and
                 write a single document (title, seed, trials, tables).
  bench_hotpath  hot-path timing harness — same `--json` document shape,
                 plus `--max-history` / `--rounds` size knobs.
  bench_*        google-benchmark micros — dumped via
                 `--benchmark_out=FILE --benchmark_out_format=json`.

This driver runs whichever of them are present (or aggregates pre-existing
per-binary JSON files from a directory) and merges everything into one file
— by convention BENCH_sim.json, the committed perf baseline that
tools/bench_diff.py compares future runs against. The header records the
git SHA and CMake build type the numbers were produced from, so a diff
against a mismatched build is detectable.

Standalone documents produced outside the bench/ binaries — e.g.
tools/cluster_test.py --json — fold in via --extra NAME=FILE; they merge
under experiments[NAME] exactly like a harness document, so their [B]
columns are diffable by bench_diff.py too.

Usage:
  tools/collect_bench.py --build-dir build --out BENCH_sim.json [--trials 3]
  tools/collect_bench.py --build-dir build --only 'e10' --extra cluster_loopback=c.json \\
      --out BENCH_net.json
  tools/collect_bench.py --from-dir results/ --out BENCH_sim.json
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
import tempfile
from pathlib import Path

MICRO_PREFIXES = ("bench_memory", "bench_chain", "bench_sim")


def git_sha(repo_root: Path) -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=repo_root, capture_output=True, timeout=10
        )
        if out.returncode == 0:
            return out.stdout.decode().strip()
    except OSError:
        pass
    return "unknown"


def build_type(build_dir: Path) -> str:
    cache = build_dir / "CMakeCache.txt"
    if cache.is_file():
        m = re.search(r"^CMAKE_BUILD_TYPE:\w+=(.*)$", cache.read_text(), re.MULTILINE)
        if m and m.group(1):
            return m.group(1)
    return "unknown"


def run_binaries(build_dir: Path, trials: int, only: str | None,
                 hotpath_args: list[str], micro_min_time: float,
                 allow_empty: bool = False) -> dict[str, dict]:
    bench_dir = build_dir / "bench"
    binaries = sorted(
        p for p in bench_dir.glob("*")
        if p.is_file() and (p.name.startswith("exp_") or p.name.startswith("bench_"))
    )
    if only:
        binaries = [p for p in binaries if re.search(only, p.name)]
    if not binaries:
        # A document built purely from --extra files (e.g. CI folding a
        # swarm_smoke run for bench_diff) runs no binaries at all.
        if allow_empty:
            return {}
        sys.exit(f"error: no exp_*/bench_* binaries under {bench_dir} (build the repo first)")

    docs: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="amm_bench_") as tmp:
        for binary in binaries:
            out_path = Path(tmp) / f"{binary.name}.json"
            if binary.name.startswith(MICRO_PREFIXES):
                cmd = [str(binary), f"--benchmark_out={out_path}",
                       "--benchmark_out_format=json",
                       f"--benchmark_min_time={micro_min_time}"]
            elif binary.name == "bench_hotpath":
                cmd = [str(binary), "--json", str(out_path), *hotpath_args]
            else:
                cmd = [str(binary), "--trials", str(trials), "--json", str(out_path)]
            print(f"[collect_bench] {' '.join(cmd)}", flush=True)
            proc = subprocess.run(cmd, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)
            if proc.returncode != 0:
                sys.exit(
                    f"error: {binary.name} exited {proc.returncode}:\n"
                    f"{proc.stderr.decode(errors='replace')}"
                )
            docs[binary.name] = json.loads(out_path.read_text())
    return docs


def load_from_dir(from_dir: Path) -> dict[str, dict]:
    files = sorted(from_dir.glob("*.json"))
    if not files:
        sys.exit(f"error: no .json files in {from_dir}")
    return {p.stem: json.loads(p.read_text()) for p in files}


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", type=Path, default=Path("build"))
    ap.add_argument("--out", type=Path, default=Path("BENCH_sim.json"))
    ap.add_argument("--trials", type=int, default=3,
                    help="Monte-Carlo trials per configuration (small default: smoke baseline)")
    ap.add_argument("--only", help="regex filter on binary names, e.g. 'e10|hotpath'")
    ap.add_argument("--from-dir", type=Path,
                    help="aggregate existing per-binary JSON files instead of running")
    ap.add_argument("--hotpath-args", default="",
                    help="extra args for bench_hotpath, e.g. '--max-history 10000'")
    ap.add_argument("--micro-min-time", type=float, default=0.01,
                    help="google-benchmark --benchmark_min_time for bench_* micros")
    ap.add_argument("--extra", action="append", default=[], metavar="NAME=FILE",
                    help="fold a standalone JSON document in as experiments[NAME] "
                         "(e.g. cluster_loopback=cluster.json); repeatable")
    args = ap.parse_args()

    if args.from_dir:
        docs = load_from_dir(args.from_dir)
    else:
        docs = run_binaries(args.build_dir, args.trials, args.only,
                            args.hotpath_args.split(), args.micro_min_time,
                            allow_empty=bool(args.extra))
    for spec in args.extra:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            sys.exit(f"error: --extra expects NAME=FILE, got {spec!r}")
        docs[name] = json.loads(Path(path).read_text())

    merged = {
        "generated_by": "tools/collect_bench.py",
        "git_sha": git_sha(Path(__file__).resolve().parent.parent),
        "build_type": build_type(args.build_dir) if not args.from_dir else "unknown",
        "experiments": {name: docs[name] for name in sorted(docs)},
    }
    args.out.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    total_tables = sum(len(d.get("tables", [])) for d in docs.values())
    print(f"[collect_bench] wrote {args.out}: {len(docs)} binaries, {total_tables} tables "
          f"(sha={merged['git_sha'][:12]}, build={merged['build_type']})")


if __name__ == "__main__":
    main()
