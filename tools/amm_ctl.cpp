// amm_ctl — submit operations to a running amm_node and print the result.
//
//   amm_ctl --port P [--host 127.0.0.1] --op append --value V [--count C] [--window W]
//   amm_ctl --port P --op read
//   amm_ctl --port P --op decide --k K
//   amm_ctl --port P --op stats
//   amm_ctl --port P --op kick          # force the node's outbound links down
//
// One TCP connection. `--count C` repeats an append with values V, V+1, …,
// V+C−1 over the same connection (the loopback cluster test drives its
// 1000-append run through this); `--window W` keeps up to W of them in
// flight at once — the node's AbdNode pipelines them through the quorum
// protocol. Every reply the node sends reflects a completed quorum
// operation, so exit status 0 means the cluster actually executed the op,
// not that it was merely submitted.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "net/codec.hpp"
#include "tools/cli.hpp"

namespace {

using namespace amm;

int dial(const std::string& host, u16 port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const char* numeric = host == "localhost" ? "127.0.0.1" : host.c_str();
  if (::inet_pton(AF_INET, numeric, &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval timeout{30, 0};  // a stuck quorum must not hang the operator
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  return fd;
}

bool send_all(int fd, const std::vector<u8>& bytes) {
  usize off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<usize>(n);
  }
  return true;
}

bool send_request(int fd, const net::CtlRequest& request) {
  std::vector<u8> frame;
  net::append_frame(frame, net::FrameKind::kCtlReq, net::encode_ctl_request(request));
  return send_all(fd, frame);
}

/// Receives one reply. `rx` persists across calls so bytes of a later
/// reply arriving in the same chunk are not lost — required for the
/// sliding-window append mode, where several requests are in flight.
bool recv_reply(int fd, std::vector<u8>& rx, net::CtlReply* reply) {
  for (;;) {
    net::Frame received;
    switch (net::extract_frame(rx, &received)) {
      case net::FrameStatus::kFrame: {
        if (received.kind != net::FrameKind::kCtlRep) return false;
        const auto decoded = net::decode_ctl_reply(received.payload);
        if (!decoded) return false;
        *reply = *decoded;
        return true;
      }
      case net::FrameStatus::kCorrupt:
        return false;
      case net::FrameStatus::kNeedMore:
        break;
    }
    u8 chunk[65536];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // timeout, reset, or orderly close without a reply
    }
    rx.insert(rx.end(), chunk, chunk + n);
  }
}

bool roundtrip(int fd, std::vector<u8>& rx, const net::CtlRequest& request,
               net::CtlReply* reply) {
  return send_request(fd, request) && recv_reply(fd, rx, reply);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  u16 port = 9500;
  std::string op = "stats";
  i64 value = 1;
  i64 count = 1;
  i64 window = 1;
  u32 k = 1;
  tools::OptionSet opts("amm_ctl", "submit one operation to a running amm_node");
  opts.add_string("host", &host, "node host");
  opts.add_u16("port", &port, "node control port");
  opts.add_enum("op", &op, {"append", "read", "decide", "stats", "kick"}, "operation");
  opts.add_i64("value", &value, "append: first value");
  opts.add_i64("count", &count, "append: number of appends (values value..value+count-1)");
  opts.add_i64("window", &window, "append: appends kept in flight on the connection");
  opts.add_u32("k", &k, "decide: the k-cut size");
  switch (opts.parse(argc, argv)) {
    case tools::ParseStatus::kHelp:
      opts.print_help(stdout);
      return 0;
    case tools::ParseStatus::kError:
      std::fprintf(stderr, "amm_ctl: %s\n", opts.error().c_str());
      return 2;
    case tools::ParseStatus::kOk:
      break;
  }

  const int fd = dial(host, port);
  if (fd < 0) {
    std::fprintf(stderr, "amm_ctl: cannot connect to %s:%u\n", host.c_str(),
                 static_cast<unsigned>(port));
    return 2;
  }

  int status = 0;
  net::CtlReply reply;
  std::vector<u8> rx;  // shared receive buffer; replies can arrive batched
  if (op == "append") {
    // --window W keeps up to W appends in flight on the one connection;
    // the node's AbdNode pipelines them (W=1 is the old strict lock-step).
    window = std::max<i64>(1, window);
    i64 sent = 0;
    i64 completed = 0;
    bool failed = false;
    while (completed < count && !failed) {
      while (sent < count && sent - completed < window) {
        if (!send_request(fd, net::CtlRequest{net::CtlOp::kAppend, value + sent, 0})) {
          failed = true;
          break;
        }
        ++sent;
      }
      if (failed || !recv_reply(fd, rx, &reply) || !reply.ok) {
        failed = true;
        break;
      }
      ++completed;
    }
    if (failed) {
      std::fprintf(stderr, "amm_ctl: append %lld/%lld failed\n",
                   static_cast<long long>(completed + 1), static_cast<long long>(count));
      status = 1;
    }
    std::printf("appended count=%lld first=%lld\n", static_cast<long long>(completed),
                static_cast<long long>(value));
  } else if (op == "read") {
    if (roundtrip(fd, rx, net::CtlRequest{net::CtlOp::kRead, 0, 0}, &reply) && reply.ok) {
      std::printf("view count=%zu\n", reply.view.size());
      for (const mp::SignedAppend& rec : reply.view) {
        std::printf("record author=%u seq=%u value=%lld\n", rec.author.index, rec.seq,
                    static_cast<long long>(rec.value));
      }
    } else {
      std::fprintf(stderr, "amm_ctl: read failed\n");
      status = 1;
    }
  } else if (op == "decide") {
    if (roundtrip(fd, rx, net::CtlRequest{net::CtlOp::kDecide, 0, k}, &reply) && reply.ok) {
      std::printf("decision=%+lld over=%u\n", static_cast<long long>(reply.decision),
                  reply.decided_over);
    } else {
      // Machine-readable refusal vs not-yet: a cut below the compaction
      // fold can never resolve (exit 3, scripts must not retry), while an
      // undecided cut simply has not filled yet (exit 1, retry later).
      const char* reason = net::ctl_status_name(reply.status);
      std::printf("decide failed reason=%s\n", reason);
      std::fprintf(stderr, "amm_ctl: decide failed reason=%s\n", reason);
      status = reply.status == net::CtlStatus::kRefusedBelowFold ? 3 : 1;
    }
  } else if (op == "stats") {
    if (roundtrip(fd, rx, net::CtlRequest{net::CtlOp::kStats, 0, 0}, &reply) && reply.ok) {
      // One key=value pair per NodeStats field, named and ordered by the
      // field table — amm_node, this printer, and cluster_test.py's parser
      // all read the same declaration.
      std::printf("stats");
      for (const mp::NodeStatsField& field : mp::kNodeStatsFields) {
        std::printf(" %s=%llu", field.name,
                    static_cast<unsigned long long>(reply.stats.*field.member));
      }
      std::printf("\n");
    } else {
      std::fprintf(stderr, "amm_ctl: stats failed\n");
      status = 1;
    }
  } else if (op == "kick") {
    if (roundtrip(fd, rx, net::CtlRequest{net::CtlOp::kKick, 0, 0}, &reply) && reply.ok) {
      std::printf("kicked\n");
    } else {
      std::fprintf(stderr, "amm_ctl: kick failed\n");
      status = 1;
    }
  } else {
    std::fprintf(stderr, "amm_ctl: unknown --op %s (append|read|decide|stats|kick)\n", op.c_str());
    status = 2;
  }

  ::close(fd);
  return status;
}
