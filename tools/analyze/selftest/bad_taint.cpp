// amm_analyze --self-test corpus: nondeterministic value sources feeding
// protocol-visible state (expected: determinism-taint).
#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <unordered_map>
#include <vector>

namespace selftest {

using u32 = std::uint32_t;
using u64 = std::uint64_t;

struct Tracker {
  std::unordered_map<u32, u64> seen;
  std::map<int*, u32> by_addr;  // VIOLATION: pointer-keyed ordering (ASLR)

  u64 checkpoint() const {
    u64 h = 0;
    // VIOLATION: structured-binding range-for over an unordered container.
    for (const auto& [node, seq] : seen) {
      h = h * 31 + node + seq;
    }
    return h;
  }

  u64 checkpoint_iter() const {
    u64 h = 0;
    // VIOLATION: iterator loop over an unordered container.
    for (auto it = seen.begin(); it != seen.end(); ++it) {
      h = h * 31 + it->first;
    }
    return h;
  }

  void snapshot(std::vector<u64>& out) const {
    // VIOLATION: order-sensitive algorithm fed from unordered begin().
    std::transform(seen.begin(), seen.end(), std::back_inserter(out),
                   [](const auto& kv) { return kv.second; });
  }

  u32 roll() {
    std::mt19937 gen(42);  // VIOLATION: randomness outside support/rng streams
    return static_cast<u32>(gen());
  }
};

}  // namespace selftest
