// amm_analyze --self-test corpus: disciplined locking — a consistent
// global order, simultaneous scoped_lock acquisition, and the sanctioned
// condition-variable wait that releases its lock (expected: no findings).
#include <condition_variable>
#include <functional>
#include <mutex>
#include <vector>

namespace selftest {

class Queue {
 public:
  void push(int v) {
    {
      std::scoped_lock lk(m_);
      items_.push_back(v);
    }
    cv_.notify_one();
  }

  int wait_pop() {
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk, [&] { return !items_.empty(); });  // wait releases m_
    const int v = items_.back();
    items_.pop_back();
    return v;
  }

  void on_drain(std::function<void()> cb) {
    {
      std::scoped_lock lk(m_);
      drained_ = std::move(cb);
    }
    drained_();  // callback invoked after the lock is released
  }

  void transfer() {
    std::scoped_lock lk(a_, b_);  // simultaneous: no ordering edge
    ++moves_;
  }

  void sweep() {
    std::scoped_lock la(a_);
    std::scoped_lock lb(b_);  // same a_ -> b_ order everywhere: acyclic
    ++moves_;
  }

 private:
  std::mutex m_;
  std::mutex a_;
  std::mutex b_;
  std::condition_variable cv_;
  std::vector<int> items_;
  std::function<void()> drained_;
  int moves_ = 0;
};

}  // namespace selftest
