// amm_analyze --self-test corpus: encode_point/decode_point disagree on
// the wire layout (expected: codec-consistency).
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace selftest {

using u8 = std::uint8_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using usize = std::size_t;

class Encoder {
 public:
  void put_u8(u8 v) { buf_.push_back(v); }
  void put_u32(u32 v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<u8>(v >> (8 * i)));
  }
  void put_u64(u64 v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<u8>(v >> (8 * i)));
  }

 private:
  std::vector<u8> buf_;
};

class Decoder {
 public:
  explicit Decoder(std::span<const u8> bytes) : bytes_(bytes) {}

  std::optional<u32> get_u32() {
    if (!ok_ || remaining() < 4) {
      ok_ = false;
      return std::nullopt;
    }
    u32 v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<u32>(bytes_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }
  std::optional<u64> get_u64() {
    if (!ok_ || remaining() < 8) {
      ok_ = false;
      return std::nullopt;
    }
    u64 v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<u64>(bytes_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }
  bool ok() const { return ok_; }
  usize remaining() const { return bytes_.size() - pos_; }

 private:
  std::span<const u8> bytes_;
  usize pos_ = 0;
  bool ok_ = true;
};

struct Point {
  u32 x = 0;
  u64 y = 0;
};

void encode_point(Encoder& enc, const Point& p) {
  enc.put_u32(p.x);
  enc.put_u64(p.y);  // writes 8 bytes for y ...
}

std::optional<Point> decode_point(Decoder& dec) {
  const auto x = dec.get_u32();
  const auto y = dec.get_u32();  // VIOLATION: ... but reads only 4 back
  if (!dec.ok()) return std::nullopt;
  return Point{*x, *y};
}

}  // namespace selftest
