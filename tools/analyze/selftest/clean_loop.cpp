// Clean twin of bad_loop.cpp: the same reactor shape with every data-plane
// syscall nonblocking, plus a deliberately *blocking* client helper that is
// not reachable from any loop entry point (the rule must not flag code off
// the reactor path — amm_ctl's request/reply helpers are exactly this).
#include <cstddef>

#ifndef MSG_DONTWAIT
#define MSG_DONTWAIT 0x40
#endif

struct ReadyEvent {
  unsigned long token = 0;
};

struct Loop {
  int wait(int timeout_ms, ReadyEvent* out);
};

long drain_socket(int fd, char* buf, std::size_t len) {
  return ::recv(fd, buf, len, MSG_DONTWAIT);  // nonblocking: EAGAIN = resume later
}

void poll_once(int fd, char* buf) {
  drain_socket(fd, buf, 64);
}

int pump(Loop& loop, int fd, const char* msg, std::size_t len) {
  ReadyEvent event;
  if (loop.wait(10, &event) <= 0) return 0;
  return static_cast<int>(::send(fd, msg, len, MSG_DONTWAIT));
}

// A blocking operator-CLI helper: never called from the loop, so plain
// blocking ::recv is fine here.
long client_fetch_reply(int fd, char* buf, std::size_t len) {
  return ::recv(fd, buf, len, 0);
}
