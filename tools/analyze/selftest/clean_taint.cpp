// amm_analyze --self-test corpus: determinism-clean patterns — ordered
// iteration, the sorted-copy idiom, and an annotated order-insensitive
// fold (expected: no findings).
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace selftest {

using u32 = std::uint32_t;
using u64 = std::uint64_t;

struct Tracker {
  std::unordered_map<u32, u64> seen;
  std::vector<u32> order;

  u64 checkpoint() const {
    // Sorted-copy idiom: canonicalize before iterating.
    std::vector<std::pair<u32, u64>> sorted(seen.begin(), seen.end());
    std::sort(sorted.begin(), sorted.end());
    u64 h = 0;
    for (const auto& [node, seq] : sorted) {
      h = h * 31 + node + seq;
    }
    return h;
  }

  u64 total() const {
    u64 sum = 0;
    // analyze:allow(determinism-taint): commutative sum — order cannot matter
    for (const auto& [node, seq] : seen) {
      sum += seq;
    }
    return sum;
  }

  u64 walk() const {
    u64 h = 0;
    for (const u32 node : order) {
      h = h * 31 + node;
    }
    return h;
  }
};

}  // namespace selftest
