// amm_analyze --self-test corpus: the bounds-clean twin of
// bad_codec_frame.cpp — the storage frame scanner done right, the way
// src/storage/log_format.cpp does it: every raw read guarded for exactly
// the bytes it consumes, every optional tested before dereference, the
// frame length validated against the bytes actually remaining
// (expected: no findings).
#include <cstdint>
#include <optional>
#include <span>

namespace selftest {

using u8 = std::uint8_t;
using u32 = std::uint32_t;
using usize = std::size_t;

class FrameReader {
 public:
  explicit FrameReader(std::span<const u8> bytes) : bytes_(bytes) {}

  std::optional<u32> get_u32() {
    if (!ok_ || remaining() < 4) {
      ok_ = false;
      return std::nullopt;
    }
    u32 v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<u32>(bytes_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }

  bool ok() const { return ok_; }
  usize remaining() const { return bytes_.size() - pos_; }

 private:
  std::span<const u8> bytes_;
  usize pos_ = 0;
  bool ok_ = true;
};

struct Frame {
  u32 len = 0;
  u32 crc = 0;
};

std::optional<Frame> decode_frame(FrameReader& dec) {
  const auto len = dec.get_u32();
  const auto crc = dec.get_u32();
  if (!len || !crc) return std::nullopt;
  // A declared length the tail cannot hold is a torn frame, not a read.
  if (dec.remaining() < *len) return std::nullopt;
  Frame frame;
  frame.len = *len;
  frame.crc = *crc;
  return frame;
}

}  // namespace selftest
