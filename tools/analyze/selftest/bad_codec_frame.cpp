// amm_analyze --self-test corpus: seeded codec-bounds violations in a
// storage-style length+CRC frame scanner (src/storage/log_format.cpp's
// shape). This file is NEVER compiled or linked — it pins that the
// bounds-discipline rules cover on-disk framing, not just the wire codec
// (expected: codec-bounds).
#include <cstdint>
#include <optional>
#include <span>

namespace selftest {

using u8 = std::uint8_t;
using u32 = std::uint32_t;
using usize = std::size_t;

class FrameReader {
 public:
  explicit FrameReader(std::span<const u8> bytes) : bytes_(bytes) {}

  std::optional<u32> get_u32() {
    // VIOLATION: guards 2 bytes but consumes 4 — a torn tail walks off
    // the end of the mapped segment.
    if (remaining() < 2) return std::nullopt;
    u32 v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<u32>(bytes_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }

  bool ok() const { return ok_; }
  usize remaining() const { return bytes_.size() - pos_; }

 private:
  std::span<const u8> bytes_;
  usize pos_ = 0;
  bool ok_ = true;
};

struct Frame {
  u32 len = 0;
  u32 crc = 0;
};

std::optional<Frame> decode_frame(FrameReader& dec) {
  const auto len = dec.get_u32();
  const auto crc = dec.get_u32();
  Frame frame;
  frame.len = *len;  // VIOLATION: dereferenced before testing the optional
  frame.crc = *crc;  // VIOLATION: a truncated header yields nullopt -> UB
  return frame;
}

}  // namespace selftest
