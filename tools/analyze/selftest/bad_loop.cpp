// Seeded violations for the loop-blocking rule: blocking syscalls inside
// functions reachable from a reactor entry point. Expected findings:
//   * ::recv without MSG_DONTWAIT in drain_socket() (reached via poll_once)
//   * ::write in log_progress() (no per-call nonblocking flag)
//   * ::send without MSG_DONTWAIT in pump() (an EventLoop-driving function:
//     declares ReadyEvent storage and calls wait())
#include <cstddef>

struct ReadyEvent {
  unsigned long token = 0;
};

struct Loop {
  int wait(int timeout_ms, ReadyEvent* out);
};

long drain_socket(int fd, char* buf, std::size_t len) {
  return ::recv(fd, buf, len, 0);  // blocking: readiness is not a guarantee
}

void log_progress(int fd) {
  ::write(fd, "tick\n", 5);  // ::write cannot be made nonblocking per call
}

void poll_once(int fd, char* buf) {
  if (drain_socket(fd, buf, 64) > 0) log_progress(fd);
}

int pump(Loop& loop, int fd, const char* msg, std::size_t len) {
  ReadyEvent event;
  if (loop.wait(10, &event) <= 0) return 0;
  return static_cast<int>(::send(fd, msg, len, 0));  // blocking send in a loop driver
}
