// Seeded violation for the unbounded-growth rule: a member container that a
// message handler inserts into with no erase/compaction site anywhere.
// Expected finding:
//   * Relay::seen_ — push_back in handle() (the handler entry itself),
//     never erased, cleared or compacted; a peer drives it without bound.
// Relay::peers_ must NOT fire: it grows only in add_peer(), which is not
// reachable from a handler entry (operator-driven setup, not message path).
#include <cstdint>
#include <vector>

struct Record {
  std::uint32_t author = 0;
  std::uint32_t seq = 0;
};

class Relay {
 public:
  void add_peer(std::uint32_t id) { peers_.push_back(id); }

  void handle(const Record& rec) {
    admit(rec);
  }

 private:
  void admit(const Record& rec) {
    seen_.push_back(rec);  // grows per message, never shrunk anywhere
  }

  std::vector<std::uint32_t> peers_;
  std::vector<Record> seen_;
};
