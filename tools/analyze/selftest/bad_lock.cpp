// amm_analyze --self-test corpus: an AB/BA lock-order cycle plus blocking
// operations under a held lock (expected: lock-cycle and lock-blocking).
#include <functional>
#include <mutex>
#include <sys/socket.h>

namespace selftest {

class Channel {
 public:
  void forward() {
    std::scoped_lock la(a_);
    std::scoped_lock lb(b_);  // acquisition order a_ -> b_ ...
    ++depth_;
  }

  void backward() {
    std::scoped_lock lb(b_);
    std::scoped_lock la(a_);  // VIOLATION: ... and b_ -> a_ elsewhere: cycle
    --depth_;
  }

  void push(const void* data) {
    std::scoped_lock la(a_);
    ::send(3, data, 8, 0);  // VIOLATION: blocking syscall while holding a_
  }

  void notify() {
    std::scoped_lock lb(b_);
    done_();  // VIOLATION: user callback invoked while holding b_
  }

 private:
  std::mutex a_;
  std::mutex b_;
  int depth_ = 0;
  std::function<void()> done_;
};

}  // namespace selftest
