// amm_analyze --self-test corpus: the bounds-clean twin of
// bad_codec_bounds.cpp (expected: no findings).
#include <cstdint>
#include <optional>
#include <span>

namespace selftest {

using u8 = std::uint8_t;
using u32 = std::uint32_t;
using usize = std::size_t;

class Reader {
 public:
  explicit Reader(std::span<const u8> bytes) : bytes_(bytes) {}

  std::optional<u8> get_u8() {
    if (!ok_ || remaining() < 1) {
      ok_ = false;
      return std::nullopt;
    }
    return bytes_[pos_++];
  }

  std::optional<u32> get_u32() {
    if (!ok_ || remaining() < 4) {
      ok_ = false;
      return std::nullopt;
    }
    u32 v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<u32>(bytes_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }

  bool ok() const { return ok_; }
  usize remaining() const { return bytes_.size() - pos_; }

 private:
  std::span<const u8> bytes_;
  usize pos_ = 0;
  bool ok_ = true;
};

std::optional<u32> decode_sum(Reader& dec) {
  const auto a = dec.get_u32();
  const auto b = dec.get_u32();
  if (!dec.ok()) return std::nullopt;
  return *a + *b;
}

}  // namespace selftest
