// Clean twin of bad_growth.cpp: the same handler shapes, each with a
// legitimate bound. The rule must stay silent on all four patterns:
//   * log_ — grows in handle() but is compacted via std::erase_if;
//   * parked_ — subscripted insert with a matching subscripted erase;
//   * inbox_ — completion erase (erase on ack), the pending-map pattern;
//   * scratch_ — a *local* vector inside an inline method body shares the
//     class scope path and must not be mistaken for a member;
//   * allowed_ — grows with no shrink, but carries an analyze:allow with a
//     reason (bounded by the fixed cluster size).
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Record {
  std::uint32_t author = 0;
  std::uint32_t seq = 0;
};

class Relay {
 public:
  void handle(const Record& rec) {
    log_.push_back(rec);
    parked_[rec.author].insert(rec.seq);
    inbox_.insert({rec.seq, rec});
    allowed_.push_back(rec.author);
    std::vector<Record> scratch_;
    scratch_.push_back(rec);
  }

  void on_ack(std::uint32_t seq) { inbox_.erase(seq); }

  void compact_below(std::uint32_t cut) {
    std::erase_if(log_, [cut](const Record& r) { return r.seq < cut; });
    parked_[0].erase(cut);
  }

 private:
  std::vector<Record> log_;
  std::unordered_map<std::uint32_t, std::unordered_set<std::uint32_t>> parked_;
  std::unordered_map<std::uint32_t, Record> inbox_;
  // analyze:allow(unbounded-growth): one entry per cluster member, fixed at startup
  std::vector<std::uint32_t> allowed_;
};
