// amm_analyze --self-test corpus: a handler switch that misses message
// kinds and hides behind a silent default (expected: switch-exhaustive
// and switch-default).
namespace selftest {

enum class MsgK { kPing, kPong, kData };

struct Stats {
  int pings = 0;
  int other = 0;
};

void handle(MsgK kind, Stats& stats) {
  switch (kind) {  // VIOLATION: kPong and kData are not handled
    case MsgK::kPing:
      ++stats.pings;
      break;
    default:  // VIOLATION: a new enumerator would be silently dropped here
      ++stats.other;
      break;
  }
}

}  // namespace selftest
