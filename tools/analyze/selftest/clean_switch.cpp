// amm_analyze --self-test corpus: exhaustive handler dispatch with no
// default, plus a char switch the enum rules must ignore (expected: no
// findings).
namespace selftest {

enum class MsgK { kPing, kPong, kData };

struct Stats {
  int pings = 0;
  int pongs = 0;
  int datas = 0;
  int dashes = 0;
};

void handle(MsgK kind, Stats& stats) {
  switch (kind) {
    case MsgK::kPing:
      ++stats.pings;
      break;
    case MsgK::kPong:
      ++stats.pongs;
      break;
    case MsgK::kData:
      ++stats.datas;
      break;
  }
}

// A switch over a plain char is not enum dispatch: default is fine here.
void classify(char c, Stats& stats) {
  switch (c) {
    case '-':
      ++stats.dashes;
      break;
    default:
      break;
  }
}

}  // namespace selftest
