// amm_analyze --self-test corpus: a tagged-union codec whose wire_size()
// disagrees with the encoder/decoder for kA, and whose kB count guard
// multiplies by the wrong per-element width (expected: codec-consistency
// and codec-bounds).
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace selftest {

using u8 = std::uint8_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using usize = std::size_t;

inline constexpr usize kPKindBytes = 1;
inline constexpr usize kPCountBytes = 4;
inline constexpr usize kPEntryBytes = 8;

class Encoder {
 public:
  void put_u8(u8 v) { buf_.push_back(v); }
  void put_u32(u32 v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<u8>(v >> (8 * i)));
  }
  void put_u64(u64 v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<u8>(v >> (8 * i)));
  }

 private:
  std::vector<u8> buf_;
};

class Decoder {
 public:
  explicit Decoder(std::span<const u8> bytes) : bytes_(bytes) {}

  std::optional<u8> get_u8() {
    if (!ok_ || remaining() < 1) {
      ok_ = false;
      return std::nullopt;
    }
    return bytes_[pos_++];
  }
  std::optional<u32> get_u32() {
    if (!ok_ || remaining() < 4) {
      ok_ = false;
      return std::nullopt;
    }
    u32 v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<u32>(bytes_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }
  std::optional<u64> get_u64() {
    if (!ok_ || remaining() < 8) {
      ok_ = false;
      return std::nullopt;
    }
    u64 v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<u64>(bytes_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }
  bool ok() const { return ok_; }
  usize remaining() const { return bytes_.size() - pos_; }

 private:
  std::span<const u8> bytes_;
  usize pos_ = 0;
  bool ok_ = true;
};

enum class PKind : u8 { kA, kB };

struct Packet {
  PKind kind = PKind::kA;
  u32 a = 0;
  u64 b = 0;
  std::vector<u32> items;

  usize wire_size() const {
    switch (kind) {
      case PKind::kA:
        return kPKindBytes + 8;  // VIOLATION: the encoder writes 4 bytes for `a`
      case PKind::kB:
        return kPKindBytes + 8 + kPCountBytes + items.size() * kPEntryBytes;
    }
    return kPKindBytes;
  }
};

void encode_packet(Encoder& enc, const Packet& p) {
  enc.put_u8(static_cast<u8>(p.kind));
  switch (p.kind) {
    case PKind::kA:
      enc.put_u32(p.a);
      break;
    case PKind::kB:
      enc.put_u64(p.b);
      enc.put_u32(static_cast<u32>(p.items.size()));
      for (const u32 item : p.items) enc.put_u32(item);
      break;
  }
}

std::optional<Packet> decode_packet(std::span<const u8> payload) {
  Decoder dec(payload);
  const auto kind = dec.get_u8();
  if (!kind) return std::nullopt;
  Packet p;
  p.kind = static_cast<PKind>(*kind);
  switch (p.kind) {
    case PKind::kA: {
      const auto a = dec.get_u32();
      if (!a) return std::nullopt;
      p.a = *a;
      break;
    }
    case PKind::kB: {
      const auto b = dec.get_u64();
      const auto n = dec.get_u32();
      if (!b || !n) return std::nullopt;
      // VIOLATION: guard multiplies by kPEntryBytes (8) but the loop below
      // consumes 4 bytes per element.
      if (dec.remaining() != static_cast<usize>(*n) * kPEntryBytes) {
        return std::nullopt;
      }
      p.b = *b;
      p.items.reserve(*n);
      for (u32 i = 0; i < *n; ++i) {
        const auto item = dec.get_u32();
        if (!item) return std::nullopt;
        p.items.push_back(*item);
      }
      break;
    }
  }
  if (dec.remaining() != 0) return std::nullopt;
  return p;
}

}  // namespace selftest
