"""Check registry for amm_analyze. One module per check (docs/ANALYSIS.md §5)."""

from checks import codec_bounds, determinism, exhaustive, growth, lockorder, loopblock

#: Every check module, in report order. Each exposes NAME, RULES (rule-id ->
#: one-line description) and run(model) -> List[Finding].
CHECKS = [codec_bounds, exhaustive, determinism, lockorder, loopblock, growth]

ALL_RULES = {rule: desc for mod in CHECKS for rule, desc in mod.RULES.items()}
