"""determinism-taint — nondeterministic value sources feeding protocol code.

The paper's randomized-access results (Thms 5.4/5.6) and every experiment
table are only reproducible if a trial is a pure function of its seed
(docs/ANALYSIS.md §3, `check::audit_determinism`). Three value sources
break that silently:

  * iteration order of `std::unordered_*` containers (implementation-
    defined, and in practice varies with libstdc++ version, allocator
    state, and rehash history);
  * pointer identity used as a key or ordering (ASLR makes address order
    differ per run);
  * randomness that does not come from `support/rng.hpp` streams
    (`std::mt19937`, `std::random_device`, ... are unseeded or globally
    seeded and escape the (master seed, stream) discipline).

This check supersedes the old regex `unordered-iter` lint rule with
structural reach: direct and member range-fors (including structured
bindings), iterator loops (`for (auto it = m.begin(); ...)`), order-
sensitive `<algorithm>` calls fed from `unordered begin()`, and local
references aliasing an unordered container. Building a *sorted or
otherwise canonicalized copy* before iterating is the sanctioned pattern;
a deliberately order-insensitive fold is annotated
`// analyze:allow(determinism-taint): <why order cannot matter>`.
"""

from __future__ import annotations

import re
from typing import List, Sequence, Set

from analysis import AnalysisModel, Finding
from cpp_model import SourceFile, match_forward

NAME = "determinism"
RULES = {
    "determinism-taint": "no unordered iteration order, pointer order, or non-support/rng "
                         "randomness may feed protocol decisions",
}

UNORDERED_RE = r"^unordered_(map|set|multimap|multiset)$"
#: Order-sensitive algorithms: feeding them unordered begin()/end() bakes the
#: bucket order into the result. Container *construction* from begin()/end()
#: is deliberately not listed — building a set/sorted vector is the fix.
ORDER_SENSITIVE_ALGOS = {
    "for_each", "transform", "accumulate", "reduce", "partial_sum",
    "inclusive_scan", "exclusive_scan", "adjacent_difference", "copy", "copy_if",
}
FOREIGN_RNG = {
    "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0", "random_device",
    "default_random_engine", "knuth_b", "ranlux24", "ranlux48",
    "uniform_int_distribution", "uniform_real_distribution",
    "normal_distribution", "bernoulli_distribution", "poisson_distribution",
}
#: The one home randomness is allowed to have.
RNG_HOME = re.compile(r"(^|/)support/rng\.(hpp|cpp)$")


def _unordered_names(model: AnalysisModel) -> Set[str]:
    names: Set[str] = set()
    aliases: List[str] = []
    for sf in model.files:
        toks = sf.tokens
        for i, t in enumerate(toks):  # using Alias = std::unordered_map<...>;
            if t.kind == "id" and t.value == "using" and i + 2 < len(toks) \
                    and toks[i + 1].kind == "id" and toks[i + 2].value == "=":
                j = i + 3
                while j < len(toks) and toks[j].value != ";":
                    if toks[j].kind == "id" and re.match(UNORDERED_RE, toks[j].value):
                        aliases.append(toks[i + 1].value)
                        break
                    j += 1
    type_res = [UNORDERED_RE] + [rf"^{re.escape(a)}$" for a in aliases]
    for sf in model.files:
        for d in sf.var_decls(type_res):
            names.add(d.name)
    if model.clang:
        names |= model.clang.unordered_names
    return names


def _last_id(tokens: Sequence[str]) -> str:
    for v in reversed(tokens):
        if v and (v[0].isalpha() or v[0] == "_"):
            return v
    return ""


def run(model: AnalysisModel) -> List[Finding]:
    unordered = _unordered_names(model)
    findings: List[Finding] = []
    for sf in model.files:
        _scan_file(sf, unordered, findings)
    return findings


def _scan_file(sf: SourceFile, unordered: Set[str], findings: List[Finding]) -> None:
    toks = sf.tokens
    rng_home = RNG_HOME.search(sf.display.replace("\\", "/")) is not None

    # Local references aliasing an unordered container: `auto& a = m;`
    local_unordered = set(unordered)
    for i, t in enumerate(toks):
        if t.kind == "id" and t.value == "auto":
            j = i + 1
            while j < len(toks) and toks[j].value in ("&", "&&", "const"):
                j += 1
            if j + 1 < len(toks) and toks[j].kind == "id" and toks[j + 1].value == "=":
                k = j + 2
                rhs: List[str] = []
                while k < len(toks) and toks[k].value != ";":
                    rhs.append(toks[k].value)
                    k += 1
                if rhs and "(" not in rhs and _last_id(rhs) in unordered:
                    local_unordered.add(toks[j].value)

    def report(line: int, what: str) -> None:
        if not sf.allowed(line, "determinism-taint"):
            findings.append(Finding(
                sf.display, line, "determinism-taint",
                f"{what} — iteration/identity order is not a function of the seed, "
                "so any protocol decision fed from it breaks reproducible schedules "
                "(Thm 5.4/5.6 experiments, check::audit_determinism); iterate a "
                "sorted or append-ordered copy, use support/rng.hpp streams, or "
                "annotate an order-insensitive fold with "
                "// analyze:allow(determinism-taint): <why>"))

    # (1) Range-fors (covers structured bindings) over unordered containers.
    for idx, rng_expr, _body in sf.range_fors(0, len(toks)):
        if rng_expr and rng_expr[-1] == ")":
            continue  # call expression: return type unresolvable here
        name = _last_id(rng_expr)
        if name in local_unordered:
            report(toks[idx].line, f"range-for over unordered container '{name}'")

    # (2) Iterator loops: for (auto it = m.begin(); ...).
    for idx, head, _body in sf.counted_fors(0, len(toks)):
        for k in range(len(head) - 3):
            if head[k] in local_unordered and head[k + 1] == "." \
                    and head[k + 2] in ("begin", "cbegin", "rbegin", "crbegin"):
                report(toks[idx].line, f"iterator loop over unordered container '{head[k]}'")
                break

    # (3) Order-sensitive algorithms fed from unordered begin().
    i = 0
    while i + 1 < len(toks):
        t = toks[i]
        if t.kind == "id" and t.value in ORDER_SENSITIVE_ALGOS and toks[i + 1].value == "(":
            close = match_forward(toks, i + 1, "(", ")")
            args = [tok.value for tok in toks[i + 2 : close]]
            for k in range(len(args) - 3):
                if args[k] in local_unordered and args[k + 1] == "." \
                        and args[k + 2] in ("begin", "cbegin", "rbegin", "crbegin"):
                    report(t.line, f"std::{t.value} over unordered container '{args[k]}'")
                    break
            i = close
        i += 1

    # (4) Pointer-keyed ordered containers: std::map<T*, ...> / std::set<T*>.
    for i, t in enumerate(toks):
        if t.kind == "id" and t.value in ("map", "set", "multimap", "multiset") \
                and i + 1 < len(toks) and toks[i + 1].value == "<" \
                and i >= 2 and toks[i - 1].value == "::" and toks[i - 2].value == "std":
            close = match_forward(toks, i + 1, "<", ">")
            depth = 0
            key_end = close
            for j in range(i + 2, close):
                v = toks[j].value
                if v in "(<[":
                    depth += 1
                elif v in ")>]":
                    depth -= 1
                elif depth == 0 and v == ",":
                    key_end = j
                    break
            if key_end > i + 2 and toks[key_end - 1].value == "*":
                report(t.line, f"std::{t.value} keyed by raw pointer")

    # (5) Randomness outside support/rng.hpp streams.
    if not rng_home:
        for t in toks:
            if t.kind == "id" and t.value in FOREIGN_RNG:
                report(t.line, f"std::{t.value} outside support/rng — draws escape the "
                               "(master seed, stream) discipline")
