"""switch-exhaustive / switch-default — handler and dispatch completeness.

Every switch over a protocol enum (`MsgKind`/`WireMessage::Kind`, session
and frame states, `CtlOp`, outcome/vote enums, ...) must name every
enumerator, and must not carry a `default:` label. A silent default is how
a newly added message kind compiles clean and then vanishes at dispatch —
the exact class of bug the paper's message-interpretation layer (§4) must
exclude by construction. `-Wswitch` alone does not catch it: the warning is
suppressed by the very `default:` this rule rejects.

A deliberate catch-all (e.g. a Byzantine node that ignores unknown
traffic) is annotated `// analyze:allow(switch-default): <why>` on the
default label's line.
"""

from __future__ import annotations

from typing import List

from analysis import AnalysisModel, Finding

NAME = "exhaustive"
RULES = {
    "switch-exhaustive": "every enumerator of a protocol enum is handled in every switch",
    "switch-default": "no silent default: in a switch over a protocol enum",
}


def run(model: AnalysisModel) -> List[Finding]:
    findings: List[Finding] = []
    for sf in model.files:
        clang_switches = model.clang.switches.get(sf.display) if model.clang else None
        if clang_switches is not None:
            for cs in clang_switches:
                enum = model.enums.get(cs.enum_path)
                if enum is None:
                    continue
                _judge(findings, sf, enum.enumerators, set(cs.handled), cs.has_default,
                       cs.line, cs.line, "::".join(enum.path))
            continue
        for sw in sf.switches:
            if not sw.cases:
                continue
            enum = model.resolve_switch_enum(sw.cases)
            if enum is None:
                continue  # not an enum switch (char / integer dispatch)
            handled = {
                [p for p in label if p != "::"][-1]
                for label in sw.cases
                if [p for p in label if p != "::"]
            }
            _judge(findings, sf, enum.enumerators, handled, sw.has_default,
                   sw.line, sw.default_line or sw.line, "::".join(enum.path))
    return findings


def _judge(findings, sf, enumerators, handled, has_default, line, default_line, enum_name):
    missing = [e for e in enumerators if e not in handled]
    if missing and not sf.allowed(line, "switch-exhaustive"):
        findings.append(Finding(
            sf.display, line, "switch-exhaustive",
            f"switch over {enum_name} does not handle: {', '.join(missing)} — "
            "every message kind / protocol state must have an explicit handler "
            "(add the case, or // analyze:allow(switch-exhaustive): <why>)"))
    if has_default and not sf.allowed(default_line, "switch-default"):
        findings.append(Finding(
            sf.display, default_line, "switch-default",
            f"silent default: in a switch over {enum_name} — a new enumerator "
            "would compile and be dropped at dispatch; enumerate the remaining "
            "cases explicitly, or // analyze:allow(switch-default): <why>"))
