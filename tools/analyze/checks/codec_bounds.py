"""codec-bounds / codec-consistency — wire-codec byte accounting and
bounds discipline.

The TCP transport moves exactly the §4 ABD message kinds; the complexity
numbers (bytes on the wire, Thm 5.1 / E10) are only meaningful if
`encode_X`, `decode_X` and `wire_size()` agree byte-for-byte, and the
decoder stays *total* — any truncated or hostile input must yield nullopt,
never an out-of-bounds read (the codec is the one place attacker-
controlled bytes meet raw buffers).

Three analyses, all byte-accounting over the put_*/get_* primitive widths
(u8=1, u32=4, u64/i64=8):

  * pair consistency — for every switch-free encode_X/decode_X pair, the
    fixed byte count and the per-element byte count of every loop must be
    equal on both sides (calls to other encode_*/decode_* helpers are
    resolved recursively);
  * kind-switch consistency — for a tagged-union codec (an encoder, a
    decoder and a `wire_size()` switching over the same enum), the
    per-enumerator totals of all three must agree, and a decoder count
    guard `remaining() != n * kPerElem` must multiply by exactly what the
    following loop consumes;
  * bounds discipline — inside get_*/peek_*/extract_* primitives, every
    raw subscript into a byte buffer must be dominated by a
    `remaining() <` / `.size() <` guard, and the guarded width must cover
    the bytes actually consumed (`pos_ += n`); in decode_* functions every
    optional produced by a getter must be tested (`!v` or `!dec.ok()`)
    before it is dereferenced.
"""

from __future__ import annotations

import re
from typing import Dict, List, NamedTuple, Optional, Sequence, Set, Tuple

from analysis import AnalysisModel, Finding
from cpp_model import Function, SourceFile, eval_const, match_forward

NAME = "codec_bounds"
RULES = {
    "codec-bounds": "decoders are total: every raw read is guarded, counts cover "
                    "consumption, optionals are tested before dereference",
    "codec-consistency": "encode_X / decode_X / wire_size agree byte-for-byte "
                         "for every message kind",
}

ENC_PRIMS = {"put_u8": 1, "put_u32": 4, "put_u64": 8, "put_i64": 8}
DEC_PRIMS = {"get_u8": 1, "get_u32": 4, "get_u64": 8, "get_i64": 8}
GETTER_NAMES = set(DEC_PRIMS)


class Summary(NamedTuple):
    fixed: int
    loops: Tuple[int, ...]  # sorted per-element byte counts, one per loop
    unknown: bool  # accounting gave up (nested variable loops, ...)

    def describe(self) -> str:
        s = f"{self.fixed} fixed"
        if self.loops:
            s += " + " + " + ".join(f"{n}/elem" for n in self.loops)
        return s


def _strip_quals(expr: Sequence[str]) -> List[str]:
    """Drops `ns::` qualifier chains so eval_const sees bare constant names."""
    out: List[str] = []
    for i, v in enumerate(expr):
        if v == "::":
            continue
        if i + 1 < len(expr) and expr[i + 1] == "::" and v and (v[0].isalpha() or v[0] == "_"):
            continue
        out.append(v)
    return out


class _Accountant:
    """Byte accounting over encode_*/decode_* function bodies."""

    def __init__(self, model: AnalysisModel):
        self.model = model
        self.memo: Dict[Tuple[str, str], Summary] = {}

    def of(self, name: str, side: str) -> Optional[Summary]:
        key = (name, side)
        if key in self.memo:
            return self.memo[key]
        defs = self.model.functions.get(name, [])
        if not defs:
            return None
        self.memo[key] = Summary(0, (), True)  # recursion guard
        sf, fn = defs[0]
        s = self.region(sf, fn.body[0] + 1, fn.body[1], side, fn)
        self.memo[key] = s
        return s

    def region(self, sf: SourceFile, lo: int, hi: int, side: str,
               fn: Function) -> Summary:
        prims = ENC_PRIMS if side == "enc" else DEC_PRIMS
        prefix = "encode_" if side == "enc" else "decode_"
        nested = sorted(g.body for g in sf.functions
                        if g is not fn and fn.body[0] < g.body[0] and g.body[1] <= fn.body[1])
        toks = sf.tokens
        fixed, loops, unknown = 0, [], False
        j = lo
        while j < hi:
            skipped = False
            for s, e in nested:
                if s == j:
                    j = e + 1
                    skipped = True
                    break
            if skipped:
                unknown = True  # bytes moved inside a lambda defeat accounting
                continue
            t = toks[j]
            if t.kind == "id" and t.value in ("for", "while") and j + 1 < hi \
                    and toks[j + 1].value == "(":
                head_close = match_forward(toks, j + 1, "(", ")")
                body_lo, body_hi = sf._stmt_body(head_close + 1)
                if toks[body_lo].value == "{":
                    body_lo += 1
                inner = self.region(sf, body_lo, body_hi, side, fn)
                if inner.loops or inner.unknown:
                    unknown = True
                if inner.fixed:
                    loops.append(inner.fixed)
                j = body_hi + 1
                continue
            if t.kind == "id" and j + 1 < hi and toks[j + 1].value == "(":
                if t.value in prims:
                    fixed += prims[t.value]
                elif t.value.startswith(prefix) and t.value != fn.name \
                        and t.value in self.model.functions:
                    sub = self.of(t.value, side)
                    if sub is None or sub.unknown:
                        unknown = True
                    else:
                        fixed += sub.fixed
                        loops.extend(sub.loops)
            j += 1
        return Summary(fixed, tuple(sorted(loops)), unknown)


# ---- the three analyses ----


def run(model: AnalysisModel) -> List[Finding]:
    findings: List[Finding] = []
    acct = _Accountant(model)
    _check_pairs(model, acct, findings)
    _check_kind_switches(model, acct, findings)
    for sf in model.files:
        _check_bounds(sf, findings)
        _check_optional_derefs(sf, findings)
    return findings


def _check_pairs(model: AnalysisModel, acct: _Accountant, findings: List[Finding]) -> None:
    for name, defs in sorted(model.functions.items()):
        if not name.startswith("encode_"):
            continue
        base = name[len("encode_"):]
        dec_name = "decode_" + base
        if dec_name not in model.functions:
            continue
        enc_sf, enc_fn = defs[0]
        dec_sf, dec_fn = model.functions[dec_name][0]
        if _has_switch(enc_sf, enc_fn) or _has_switch(dec_sf, dec_fn):
            continue  # tagged-union codec: handled per-enumerator below
        enc = acct.of(name, "enc")
        dec = acct.of(dec_name, "dec")
        if enc is None or dec is None or enc.unknown or dec.unknown:
            continue
        if (enc.fixed, enc.loops) != (dec.fixed, dec.loops):
            if not dec_sf.allowed(dec_fn.line, "codec-consistency"):
                findings.append(Finding(
                    dec_sf.display, dec_fn.line, "codec-consistency",
                    f"{name}() writes {enc.describe()} but {dec_name}() reads "
                    f"{dec.describe()} — the wire layout must be identical on both "
                    "sides or round-trips silently shear (kMsg frames, §4 message "
                    "complexity accounting)"))


def _has_switch(sf: SourceFile, fn: Function) -> bool:
    return any(fn.body[0] < sw.body[0] and sw.body[1] <= fn.body[1] for sw in sf.switches)


class _CaseSeg(NamedTuple):
    enumerator: str
    lo: int  # token index after the label colon
    hi: int
    line: int


def _case_segments(sf: SourceFile, sw) -> List[_CaseSeg]:
    toks = sf.tokens
    open_, close = sw.body
    marks: List[Tuple[str, int, int, int]] = []  # (enumerator, kw idx, colon idx, line)
    j = open_ + 1
    while j < close:
        t = toks[j]
        if t.kind == "id" and t.value == "case":
            k = j + 1
            last_id = ""
            while k < close and toks[k].value != ":":
                if toks[k].kind == "id":
                    last_id = toks[k].value
                k += 1
            marks.append((last_id, j, k, t.line))
            j = k
        elif t.kind == "id" and t.value == "default" and j + 1 < close \
                and toks[j + 1].value == ":" and toks[j - 1].value != "=":
            marks.append(("<default>", j, j + 1, t.line))
            j += 1
        j += 1
    segs: List[_CaseSeg] = []
    for i, (name, _kw, colon, line) in enumerate(marks):
        end = marks[i + 1][1] if i + 1 < len(marks) else close
        segs.append(_CaseSeg(name, colon + 1, end, line))
    return segs


def _guard_per_elem(sf: SourceFile, lo: int, hi: int, consts) -> Optional[int]:
    """Per-element byte width a `remaining() != <count> * kBytes` guard
    checks against, if the segment has one."""
    toks = sf.tokens
    for j in range(lo, hi - 4):
        if toks[j].kind == "id" and toks[j].value == "remaining" \
                and toks[j + 1].value == "(" and toks[j + 2].value == ")" \
                and toks[j + 3].value == "!=":
            expr: List[str] = []
            depth = 0
            for k in range(j + 4, hi):
                v = toks[k].value
                if v in "([":
                    depth += 1
                elif v in ")]":
                    if depth == 0:
                        break
                    depth -= 1
                elif v == "{" or v == ";":
                    break
                expr.append(v)
            star = None
            depth = 0
            for k, v in enumerate(expr):
                if v in "([":
                    depth += 1
                elif v in ")]":
                    depth -= 1
                elif v == "*" and depth == 0 and k > 0:
                    star = k
            if star is not None:
                return eval_const(_strip_quals(expr[star + 1:]), consts)
    return None


def _wire_size_case(sf: SourceFile, lo: int, hi: int, consts) -> Optional[Summary]:
    """Accounts a `return a + b + x.size() * k;` wire_size case."""
    toks = sf.tokens
    for j in range(lo, hi):
        if toks[j].kind == "id" and toks[j].value == "return":
            expr: List[str] = []
            for k in range(j + 1, hi):
                if toks[k].value == ";":
                    break
                expr.append(toks[k].value)
            terms: List[List[str]] = [[]]
            depth = 0
            for v in expr:
                if v in "([":
                    depth += 1
                elif v in ")]":
                    depth -= 1
                elif v == "+" and depth == 0:
                    terms.append([])
                    continue
                terms[-1].append(v)
            fixed, loops = 0, []
            for term in terms:
                if not term:
                    continue
                star = None
                depth = 0
                for k, v in enumerate(term):
                    if v in "([":
                        depth += 1
                    elif v in ")]":
                        depth -= 1
                    elif v == "*" and depth == 0:
                        star = k
                if star is not None and "size" in term:
                    left, right = term[:star], term[star + 1:]
                    const_side = right if "size" in left else left
                    per = eval_const(_strip_quals(const_side), consts)
                    if per is None:
                        return None
                    loops.append(per)
                    continue
                v = eval_const(_strip_quals(term), consts)
                if v is None:
                    return None
                fixed += v
            return Summary(fixed, tuple(sorted(loops)), False)
    return None


def _check_kind_switches(model: AnalysisModel, acct: _Accountant,
                         findings: List[Finding]) -> None:
    # enum path -> role -> (sf, fn, sw)
    codecs: Dict[Tuple[str, ...], Dict[str, Tuple[SourceFile, Function, object]]] = {}
    for sf in model.files:
        for fn in sf.functions:
            for sw in sf.switches:
                if not (fn.body[0] < sw.body[0] and sw.body[1] <= fn.body[1]):
                    continue
                enum = model.resolve_switch_enum(sw.cases)
                if enum is None:
                    continue
                body_ids = {t.value for t in sf.tokens[fn.body[0]:fn.body[1]] if t.kind == "id"}
                if fn.name == "wire_size":
                    role = "size"
                elif body_ids & set(ENC_PRIMS):
                    role = "enc"
                elif body_ids & set(DEC_PRIMS):
                    role = "dec"
                else:
                    continue  # a dispatch switch, not a codec
                codecs.setdefault(enum.path, {}).setdefault(role, (sf, fn, sw))

    for enum_path, roles in sorted(codecs.items()):
        if len(roles) < 2:
            continue
        per_enum: Dict[str, Dict[str, Summary]] = {}
        anchor: Optional[Tuple[SourceFile, int]] = None
        for role, (sf, fn, sw) in roles.items():
            if role == "dec":
                anchor = (sf, fn.line)
            prefix = (Summary(0, (), False) if role == "size"
                      else acct.region(sf, fn.body[0] + 1, sw.body[0], role, fn))
            for seg in _case_segments(sf, sw):
                if seg.enumerator == "<default>":
                    continue
                if role == "size":
                    s = _wire_size_case(sf, seg.lo, seg.hi, model.consts)
                else:
                    s = acct.region(sf, seg.lo, seg.hi, role, fn)
                    guard = _guard_per_elem(sf, seg.lo, seg.hi, model.consts)
                    if role == "dec" and guard is not None and s.loops \
                            and guard not in s.loops \
                            and not sf.allowed(seg.line, "codec-bounds"):
                        findings.append(Finding(
                            sf.display, seg.line, "codec-bounds",
                            f"case {seg.enumerator}: count guard checks "
                            f"remaining() against {guard} bytes/element but the "
                            f"loop consumes {', '.join(map(str, s.loops))} — a "
                            "lying count would pass the guard and truncate "
                            "mid-record"))
                if s is None or s.unknown or prefix.unknown:
                    continue
                total = Summary(prefix.fixed + s.fixed,
                                tuple(sorted(prefix.loops + s.loops)), False)
                per_enum.setdefault(seg.enumerator, {})[role] = total
        if anchor is None:
            sf, fn, _sw = next(iter(roles.values()))
            anchor = (sf, fn.line)
        role_names = {"enc": "encoder", "dec": "decoder", "size": "wire_size()"}
        for enumerator, by_role in sorted(per_enum.items()):
            if len(by_role) < 2:
                continue
            shapes = {(s.fixed, s.loops) for s in by_role.values()}
            if len(shapes) > 1 and not anchor[0].allowed(anchor[1], "codec-consistency"):
                detail = "; ".join(f"{role_names[r]}: {s.describe()}"
                                   for r, s in sorted(by_role.items()))
                findings.append(Finding(
                    anchor[0].display, anchor[1], "codec-consistency",
                    f"{'::'.join(enum_path)}::{enumerator} disagrees across the "
                    f"codec ({detail}) — encode/decode/wire_size must account "
                    "identical bytes for every kind (pinned by the §4/E10 "
                    "byte-complexity numbers)"))


BUFFER_TYPE_RE = r"^(span|vector|array)$"
TARGET_FN_RE = re.compile(r"^(get_|peek_|extract_)")
DECODE_FN_RE = re.compile(r"^(decode_|get_|peek_)")


def _buffer_names(sf: SourceFile) -> Set[str]:
    names: Set[str] = set()
    for d in sf.var_decls([BUFFER_TYPE_RE]):
        if "u8" in d.type_text or "uint8_t" in d.type_text or "char" in d.type_text \
                or "byte" in d.type_text:
            names.add(d.name)
    return names


def _check_bounds(sf: SourceFile, findings: List[Finding]) -> None:
    buffers = _buffer_names(sf)
    if not buffers:
        return
    toks = sf.tokens
    for fn in sf.functions:
        if not TARGET_FN_RE.match(fn.name):
            continue
        lo, hi = fn.body[0] + 1, fn.body[1]
        guard_widths: List[Optional[int]] = []
        guarded_from: Optional[int] = None  # first guard's token index
        consumed = 0
        consumed_known = True
        for j in range(lo, hi):
            t = toks[j]
            # remaining() < N  /  buf.size() < N
            if t.value in ("<", "<=", ">", ">=") and j >= 3 \
                    and toks[j - 1].value == ")" and toks[j - 2].value == "(" \
                    and toks[j - 3].kind == "id" and toks[j - 3].value in ("remaining", "size"):
                if guarded_from is None:
                    guarded_from = j
                expr: List[str] = []
                depth = 0
                for k in range(j + 1, hi):
                    v = toks[k].value
                    if v in "([":
                        depth += 1
                    elif v in ")]":
                        if depth == 0:
                            break
                        depth -= 1
                    elif v in ("{", ";", "||", "&&"):
                        break
                    expr.append(v)
                guard_widths.append(eval_const(_strip_quals(expr), {}))
            # consumption: pos_ += N / pos_++ / ++pos_
            if t.kind == "id" and t.value.startswith("pos"):
                if j + 1 < hi and toks[j + 1].value == "+=":
                    expr = []
                    for k in range(j + 2, hi):
                        if toks[k].value == ";":
                            break
                        expr.append(toks[k].value)
                    w = eval_const(_strip_quals(expr), {})
                    if w is None:
                        consumed_known = False
                    else:
                        consumed += w
                elif (j + 1 < hi and toks[j + 1].value == "++") \
                        or (j >= 1 and toks[j - 1].value == "++"):
                    consumed += 1
            # raw subscript into a byte buffer
            if t.kind == "id" and t.value in buffers and j + 1 < hi \
                    and toks[j + 1].value == "[":
                if guarded_from is None or j < guarded_from:
                    if not sf.allowed(t.line, "codec-bounds"):
                        findings.append(Finding(
                            sf.display, t.line, "codec-bounds",
                            f"raw read {t.value}[...] in {fn.key()}() is not "
                            "dominated by a remaining()/size() bounds guard — on "
                            "truncated input this is an out-of-bounds read; "
                            "decode paths must be total (nullopt, never UB)"))
        widths = [w for w in guard_widths if w is not None]
        if widths and consumed_known and consumed > max(widths):
            if not sf.allowed(toks[fn.body[0]].line, "codec-bounds"):
                findings.append(Finding(
                    sf.display, fn.line, "codec-bounds",
                    f"{fn.key()}() guards remaining() against {max(widths)} "
                    f"byte(s) but consumes {consumed} — the tail of the read is "
                    "unguarded on short input"))


def _check_optional_derefs(sf: SourceFile, findings: List[Finding]) -> None:
    """Linear scan: every optional produced by a getter must be tested
    (`!v`, or `!dec.ok()` for everything read from `dec`) before `*v`."""
    toks = sf.tokens
    for fn in sf.functions:
        if not DECODE_FN_RE.match(fn.name):
            continue
        lo, hi = fn.body[0] + 1, fn.body[1]
        pending: Dict[str, str] = {}  # var -> receiver ("" = implicit this)
        j = lo
        while j < hi:
            t = toks[j]
            # `name = ... get_*/decode_*(...)` introduces a pending optional.
            if t.kind == "id" and j + 1 < hi and toks[j + 1].value == "=" \
                    and toks[j].value not in ("if", "while"):
                var = t.value
                k = j + 2
                recv: Optional[str] = None
                depth = 0
                while k < hi and not (depth == 0 and toks[k].value in (";", ",")):
                    v = toks[k].value
                    if v in "([{":
                        depth += 1
                    elif v in ")]}":
                        depth -= 1
                    if toks[k].kind == "id" and k + 1 < hi and toks[k + 1].value == "(" \
                            and (v in GETTER_NAMES or v.startswith("decode_")):
                        if v in GETTER_NAMES and k >= 2 and toks[k - 1].value == ".":
                            recv = toks[k - 2].value
                        elif v in GETTER_NAMES:
                            recv = ""
                        else:  # decode_x(dec): the decoder is the argument
                            close = match_forward(toks, k + 1, "(", ")")
                            recv = next((toks[a].value for a in range(k + 2, close)
                                         if toks[a].kind == "id"), "")
                    k += 1
                if recv is not None:
                    pending[var] = recv
                j = k
                continue
            # `!name` clears it; `!dec.ok()` clears everything read from dec.
            if t.value == "!" and j + 1 < hi and toks[j + 1].kind == "id":
                name = toks[j + 1].value
                if name in pending:
                    del pending[name]
                elif (name == "ok" and j + 2 < hi and toks[j + 2].value == "(") \
                        or (j + 3 < hi and toks[j + 2].value == "."
                            and toks[j + 3].value == "ok"):
                    recv = "" if name == "ok" else name
                    for var in [v for v, r in pending.items() if r == recv]:
                        del pending[var]
            # unary `*name` on a still-pending optional.
            if t.value == "*" and j + 1 < hi and toks[j + 1].kind == "id" \
                    and toks[j + 1].value in pending:
                prev = toks[j - 1]
                binary = (prev.kind == "num" or prev.value in (")", "]")
                          or (prev.kind == "id" and prev.value not in ("return", "case", "else")))
                if not binary:
                    if not sf.allowed(t.line, "codec-bounds"):
                        findings.append(Finding(
                            sf.display, t.line, "codec-bounds",
                            f"*{toks[j + 1].value} dereferenced before testing the "
                            f"optional in {fn.key()}() — on truncated input the "
                            "getter returned nullopt and this is UB; check "
                            f"!{toks[j + 1].value} or !ok() first"))
                    del pending[toks[j + 1].value]
            j += 1
