"""unbounded-growth — message-path member containers need a shrink path.

The append memory's history is logically unbounded, but a *node's* resident
state must not be: PR-7's decided-prefix compaction (DESIGN.md §8) exists
precisely because a container that grows on every admitted message and is
never erased is a slow-motion out-of-memory — and, on the wire-facing path,
a remote-triggerable one (a peer can drive the insertions). This check makes
that invariant structural: every member container that some message handler
inserts into must have *a* shrink site somewhere in the tree.

The check:

  * Handler classes — classes with a member function named ``handle``,
    ``handle_*`` or ``on_*`` (the repo's protocol/transport handler naming:
    ``AbdNode::handle``, ``TcpTransport::handle_frame`` ...). Only their
    members are in scope; value types like ``Checkpoint`` or builders that
    grow under an explicit caller-driven fold are not message handlers.
  * Reachability — a name-level transitive closure over direct calls from
    the handler entries, restricted to functions of the same class (the
    same approximation loopblock.py uses), so helpers like ``admit()`` are
    covered.
  * Insertion — ``member.push_back/emplace_back/push_front/emplace_front/
    insert/emplace/try_emplace(`` inside a reachable function, with one
    optional ``[...]`` subscript between member and method
    (``parked_[a].insert(...)``).
  * Shrink — anywhere in the analyzed tree: ``member.erase/clear/pop_front/
    pop_back/resize/assign/swap/extract(``, a free ``erase_if(member, ...)``
    / ``std::erase_if(member, ...)``, or a wholesale ``member = ...``
    reassignment. If no shrink site exists, the member's declaration is
    flagged.

Suppress with ``// analyze:allow(unbounded-growth): <why bounded>`` on the
declaration when the growth is bounded by construction (e.g. keyed by the
fixed cluster size) — the reason is mandatory by convention.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from analysis import AnalysisModel, Finding
from cpp_model import Function, SourceFile, VarDecl, match_forward

NAME = "growth"
RULES = {
    "unbounded-growth": "a member container inserted on a message-handler path "
                        "must have an erase/compaction path somewhere in the tree",
}

#: Bare type tokens that declare a growable std container (the tokenizer
#: splits ``std::vector`` into ``std`` ``::`` ``vector``, so the type regex
#: sees the unqualified name).
CONTAINER_RE = [r"^(vector|deque|list|map|multimap|set|multiset|unordered_map|"
                r"unordered_multimap|unordered_set|unordered_multiset)$"]

INSERT_METHODS = {"push_back", "emplace_back", "push_front", "emplace_front",
                  "insert", "emplace", "try_emplace"}
SHRINK_METHODS = {"erase", "clear", "pop_front", "pop_back", "resize",
                  "shrink_to_fit", "assign", "swap", "extract"}


def _is_entry(fn: Function) -> bool:
    return fn.name == "handle" or fn.name.startswith("handle_") \
        or fn.name.startswith("on_")


def _owner_class(fn: Function) -> str:
    if fn.qual:
        return fn.qual[-1]
    if fn.scope:
        return fn.scope[-1]
    return ""


def _class_functions(model: AnalysisModel) -> Dict[str, List[Tuple[SourceFile, Function]]]:
    by_class: Dict[str, List[Tuple[SourceFile, Function]]] = {}
    for sf in model.files:
        for fn in sf.functions:
            cls = _owner_class(fn)
            if cls:
                by_class.setdefault(cls, []).append((sf, fn))
    return by_class


def _reachable(fns: List[Tuple[SourceFile, Function]]) -> List[Tuple[SourceFile, Function]]:
    """Functions of one class reachable from its handler entries (by name)."""
    names = {fn.name for _, fn in fns}
    calls: Dict[str, Set[str]] = {}
    for sf, fn in fns:
        toks = sf.tokens
        callees: Set[str] = set()
        for j in range(fn.body[0] + 1, fn.body[1]):
            t = toks[j]
            if t.kind == "id" and t.value != fn.name and t.value in names \
                    and j + 1 < fn.body[1] and toks[j + 1].value == "(":
                callees.add(t.value)
        calls.setdefault(fn.name, set()).update(callees)
    live: Set[str] = {fn.name for _, fn in fns if _is_entry(fn)}
    frontier = list(live)
    while frontier:
        for callee in calls.get(frontier.pop(), ()):
            if callee not in live:
                live.add(callee)
                frontier.append(callee)
    return [(sf, fn) for sf, fn in fns if fn.name in live]


def _member_refs(sf: SourceFile, lo: int, hi: int, member: str,
                 methods: Set[str]) -> bool:
    """True iff tokens[lo, hi) contain ``member[...optional...].method(``."""
    toks = sf.tokens
    for j in range(lo, hi):
        if toks[j].kind != "id" or toks[j].value != member:
            continue
        k = j + 1
        if k < hi and toks[k].value == "[":
            k = match_forward(toks, k, "[", "]") + 1
        if k + 2 < hi and toks[k].value == "." and toks[k + 1].value in methods \
                and toks[k + 2].value == "(":
            return True
    return False


def _has_shrink(model: AnalysisModel, member: str) -> bool:
    for sf in model.files:
        toks = sf.tokens
        n = len(toks)
        if _member_refs(sf, 0, n, member, SHRINK_METHODS):
            return True
        for j in range(n - 1):
            t = toks[j]
            if t.kind != "id":
                continue
            # std::erase_if(member, ...) / erase_if(member, ...)
            if t.value == "erase_if" and toks[j + 1].value == "(":
                end = match_forward(toks, j + 1, "(", ")")
                if any(toks[k].kind == "id" and toks[k].value == member
                       for k in range(j + 2, end)):
                    return True
            # Wholesale reassignment replaces the contents.
            elif t.value == member and toks[j + 1].value == "=":
                return True
    return False


def _member_decls(sf: SourceFile) -> List[VarDecl]:
    """Container declarations at class scope (locals inside inline method
    bodies share the class scope path, so they are filtered by line)."""
    body_lines: List[Tuple[int, int]] = []
    for fn in sf.functions:
        body_lines.append((sf.tokens[fn.body[0]].line, sf.tokens[fn.body[1]].line))
    out = []
    for decl in sf.var_decls(CONTAINER_RE):
        if not decl.owner:
            continue
        if any(lo <= decl.line <= hi for lo, hi in body_lines):
            continue
        out.append(decl)
    return out


def run(model: AnalysisModel) -> List[Finding]:
    by_class = _class_functions(model)
    findings: List[Finding] = []
    for sf in model.files:
        for decl in _member_decls(sf):
            cls = decl.owner[-1]
            fns = by_class.get(cls)
            if not fns or not any(_is_entry(fn) for _, fn in fns):
                continue
            inserted_at = None
            for rsf, rfn in _reachable(fns):
                if _member_refs(rsf, rfn.body[0] + 1, rfn.body[1], decl.name,
                                INSERT_METHODS):
                    inserted_at = f"{rfn.key()}()"
                    break
            if inserted_at is None:
                continue
            if _has_shrink(model, decl.name):
                continue
            if not sf.allowed(decl.line, "unbounded-growth"):
                findings.append(Finding(
                    sf.display, decl.line, "unbounded-growth",
                    f"member container {cls}::{decl.name} grows in {inserted_at} "
                    "on a message-handler path but no erase/clear/compaction "
                    "site exists anywhere — a peer can drive it without bound. "
                    "Add a shrink path (compaction, cap + refusal, completion "
                    "erase), or // analyze:allow(unbounded-growth): <why bounded>"))
    return findings
