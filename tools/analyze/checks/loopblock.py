"""loop-blocking — no blocking syscall on the reactor's event-loop path.

The TCP transport (src/net) is a single-threaded reactor: one thread runs
poll_once(), and every session's I/O, every protocol handler, and every
reconnect timer shares it. A single blocking syscall anywhere on that path
stalls *every* connection — the high-fanout numbers (tools/amm_swarm)
collapse and, worse, a peer that stops reading can wedge the whole node,
which the append-memory liveness argument (§4: correct nodes keep making
progress) does not admit.

Readiness does not make a syscall safe: level-triggered readiness says the
fd *was* ready, but a racing consumer (or a full send buffer after a
partial write) can still block a plain ::send/::recv. The repo's
convention is therefore MSG_DONTWAIT on every data-plane syscall the loop
can reach, with EAGAIN handled as "resume on the next event".

The check:

  * Entry points — functions named ``poll_once`` / ``run_for`` /
    ``run_once`` (the reactor's pump methods), plus any function that
    drives an EventLoop directly: its body mentions ``ReadyEvent`` and
    calls ``wait(`` (tools/amm_swarm's rung driver has this shape).
  * Reachability — a name-level transitive closure over direct calls, so
    helpers like ``read_session()`` / ``flush_session_buffers()`` are
    covered wherever they live.
  * Rule — inside a reachable function, ``::send``/``::sendto``/
    ``::sendmsg``/``::recv``/``::recvfrom``/``::recvmsg`` must pass
    ``MSG_DONTWAIT``; ``::read``/``::write`` are flagged unconditionally
    (they have no per-call nonblocking flag, so the loop cannot locally
    prove they return).

Intentionally blocking client code (amm_ctl's request/reply helpers) is
not reachable from any entry point and is untouched. The loop's own timed
wait primitives (::poll, ::epoll_wait) are the sanctioned blocking point
and are not in the flagged set.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from analysis import AnalysisModel, Finding
from cpp_model import Function, SourceFile, match_forward

NAME = "loopblock"
RULES = {
    "loop-blocking": "no blocking syscall inside a function reachable from the "
                     "event loop; data-plane send/recv must pass MSG_DONTWAIT",
}

ENTRY_NAMES = {"poll_once", "run_for", "run_once"}
#: Keywords that may precede a statement-position `::name(` — they do not
#: make the `::` a scope qualifier the way `std::` would.
NON_QUALIFIER_KEYWORDS = {"return", "co_return", "co_yield", "else", "do", "case"}
#: msg-flag syscalls: safe iff the call site passes MSG_DONTWAIT.
MSG_SYSCALLS = {"send", "sendto", "sendmsg", "recv", "recvfrom", "recvmsg"}
#: no per-call nonblocking flag exists: always a blocking hazard on a socket.
ALWAYS_SYSCALLS = {"read", "write"}


def _is_entry(sf: SourceFile, fn: Function) -> bool:
    if fn.name in ENTRY_NAMES:
        return True
    toks = sf.tokens
    mentions_ready = False
    calls_wait = False
    for j in range(fn.body[0] + 1, fn.body[1]):
        t = toks[j]
        if t.kind != "id":
            continue
        if t.value == "ReadyEvent":
            mentions_ready = True
        elif t.value == "wait" and j + 1 < fn.body[1] and toks[j + 1].value == "(":
            calls_wait = True
        if mentions_ready and calls_wait:
            return True
    return False


def _direct_callees(model: AnalysisModel, sf: SourceFile, fn: Function) -> Set[str]:
    callees: Set[str] = set()
    toks = sf.tokens
    for j in range(fn.body[0] + 1, fn.body[1]):
        t = toks[j]
        if t.kind == "id" and t.value != fn.name and t.value in model.functions \
                and j + 1 < fn.body[1] and toks[j + 1].value == "(":
            callees.add(t.value)
    return callees


def _reachable_names(model: AnalysisModel) -> Set[str]:
    calls: Dict[str, Set[str]] = {}
    entries: Set[str] = set()
    for sf in model.files:
        for fn in sf.functions:
            calls.setdefault(fn.name, set()).update(_direct_callees(model, sf, fn))
            if _is_entry(sf, fn):
                entries.add(fn.name)
    reachable = set(entries)
    frontier = list(entries)
    while frontier:
        name = frontier.pop()
        for callee in calls.get(name, ()):
            if callee not in reachable:
                reachable.add(callee)
                frontier.append(callee)
    return reachable


def _scan_function(sf: SourceFile, fn: Function, findings: List[Finding]) -> None:
    toks = sf.tokens
    for j in range(fn.body[0] + 1, fn.body[1] - 2):
        # The repo writes raw syscalls as ::name( — anything else (method
        # calls, std:: wrappers) is not a raw syscall. An identifier before
        # the :: makes it a scope qualifier, unless it is a statement
        # keyword like `return ::recv(...)`.
        if toks[j].value != "::":
            continue
        if j > 0 and toks[j - 1].kind == "id" \
                and toks[j - 1].value not in NON_QUALIFIER_KEYWORDS:
            continue
        name = toks[j + 1].value
        if toks[j + 1].kind != "id" or toks[j + 2].value != "(":
            continue
        line = toks[j + 1].line
        if name in MSG_SYSCALLS:
            end = match_forward(toks, j + 2, "(", ")")
            if any(toks[k].value == "MSG_DONTWAIT" for k in range(j + 3, end)):
                continue
            what = (f"::{name}() without MSG_DONTWAIT on the event-loop path in "
                    f"{fn.key()}() — readiness is level-triggered advice, not a "
                    "guarantee; a racing peer or full buffer blocks the reactor "
                    "and every session with it. Pass MSG_DONTWAIT and treat "
                    "EAGAIN as \"resume on the next event\"")
        elif name in ALWAYS_SYSCALLS:
            what = (f"::{name}() on the event-loop path in {fn.key()}() — it has "
                    "no per-call nonblocking flag, so the reactor cannot prove it "
                    "returns; use ::recv/::send with MSG_DONTWAIT on a "
                    "nonblocking fd")
        else:
            continue
        if not sf.allowed(line, "loop-blocking"):
            findings.append(Finding(
                sf.display, line, "loop-blocking",
                what + ", or // analyze:allow(loop-blocking): <why it cannot block>"))


def run(model: AnalysisModel) -> List[Finding]:
    reachable = _reachable_names(model)
    findings: List[Finding] = []
    for sf in model.files:
        for fn in sf.functions:
            if fn.name in reachable:
                _scan_function(sf, fn, findings)
    return findings
