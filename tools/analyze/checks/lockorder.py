"""lock-cycle / lock-blocking — lock discipline in the runtime layers.

The multi-process runtime (src/net reactor, src/mp node logic,
support/thread_pool) mixes mutexes with a single-threaded event loop. Two
properties keep the ABD append/read quorum machinery (§4) live:

  * the lock-acquisition graph is acyclic — if thread 1 takes A then B
    while thread 2 takes B then A, the cluster wedges and every in-flight
    append misses its quorum forever;
  * no lock is held across a *blocking* boundary — a blocking syscall
    (`::send`, `::poll`, ...), an unbounded `wait()`, or a user callback
    (any `std::function` member) that may re-enter and try to take the
    same lock. Either stalls every other thread needing the lock for an
    unbounded time, which the paper's latency model (Thm 5.1 pipelining)
    does not admit.

The check builds a per-function lock-region model (guard objects to end
of enclosing block, truncated at `.unlock()`; manual `lock()`/`unlock()`
pairs), derives acquisition-order edges — including interprocedural ones
through direct calls — and rejects cycles and blocking operations inside
a region. `cv.wait(lk)` / `cv.wait(lk, pred)` where `lk` is the held
guard is the sanctioned condition-variable pattern (the wait releases the
lock) and is not flagged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from analysis import AnalysisModel, Finding
from cpp_model import Function, SourceFile, Token, match_forward

NAME = "lockorder"
RULES = {
    "lock-cycle": "the global lock-acquisition graph must be acyclic",
    "lock-blocking": "no lock may be held across a blocking syscall, an unbounded "
                     "wait, or a user-supplied callback",
}

MUTEX_TYPE_RE = r"^(mutex|timed_mutex|recursive_mutex|shared_mutex|recursive_timed_mutex)$"
GUARD_TYPES = {"scoped_lock", "lock_guard", "unique_lock", "shared_lock"}
#: Blocking POSIX calls the reactor/transport layer uses (matched only when
#: written `::name(` — the repo's convention for raw syscalls).
SYSCALLS = {
    "poll", "ppoll", "select", "epoll_wait", "accept", "accept4", "connect",
    "recv", "recvfrom", "recvmsg", "send", "sendto", "sendmsg", "read", "write",
    "sleep", "usleep", "nanosleep",
}
WAIT_METHODS = {"wait", "wait_for", "wait_until"}


class _Acq(object):
    """One held lock region: the guard variable (if any) and the mutexes it
    covers."""

    __slots__ = ("guard", "mutexes")

    def __init__(self, guard: Optional[str], mutexes: Tuple[str, ...]):
        self.guard = guard
        self.mutexes = mutexes


class _CallSite(object):
    __slots__ = ("callee", "held", "sf", "line")

    def __init__(self, callee: str, held: Tuple[str, ...], sf: SourceFile, line: int):
        self.callee = callee
        self.held = held
        self.sf = sf
        self.line = line


def _last_id(values: Sequence[str]) -> str:
    for v in reversed(values):
        if v and (v[0].isalpha() or v[0] == "_"):
            return v
    return ""


def _split_args(toks: Sequence[Token], lo: int, hi: int) -> List[List[str]]:
    args: List[List[str]] = [[]]
    depth = 0
    for j in range(lo, hi):
        v = toks[j].value
        if v in "(<[{":
            depth += 1
        elif v in ")>]}":
            depth -= 1
        elif depth == 0 and v == ",":
            args.append([])
            continue
        args[-1].append(v)
    return [a for a in args if a]


def _function_typed_names(model: AnalysisModel) -> Set[str]:
    """Names of std::function-typed members/locals/params: invoking one under
    a lock hands control to arbitrary user code."""
    aliases: List[str] = []
    for sf in model.files:
        toks = sf.tokens
        for i, t in enumerate(toks):
            if t.kind == "id" and t.value == "using" and i + 2 < len(toks) \
                    and toks[i + 1].kind == "id" and toks[i + 2].value == "=":
                j = i + 3
                while j < len(toks) and toks[j].value != ";":
                    if toks[j].kind == "id" and toks[j].value == "function":
                        aliases.append(toks[i + 1].value)
                        break
                    j += 1
    import re
    type_res = [r"^function$"] + [rf"^{re.escape(a)}$" for a in aliases]
    names: Set[str] = set()
    for sf in model.files:
        for d in sf.var_decls(type_res):
            names.add(d.name)
    if model.clang:
        names |= model.clang.function_typed_names
    return names


class _MutexRegistry(object):
    def __init__(self, model: AnalysisModel):
        self.decls: Dict[str, List[Tuple[str, ...]]] = {}  # name -> owner paths
        for sf in model.files:
            for d in sf.var_decls([MUTEX_TYPE_RE]):
                owners = self.decls.setdefault(d.name, [])
                if d.owner not in owners:
                    owners.append(d.owner)

    def resolve(self, name: str, fn: Function) -> Optional[str]:
        """Canonical identity of mutex `name` as seen from `fn`, or None if
        no declaration with that name exists anywhere."""
        owners = self.decls.get(name)
        if owners is None:
            return None
        if len(owners) == 1:
            return "::".join(owners[0] + (name,)) if owners[0] else name
        ctx = set(fn.qual) | set(fn.scope)
        for owner in owners:
            if owner and owner[-1] in ctx:
                return "::".join(owner + (name,))
        return name


class _Analyzer(object):
    def __init__(self, model: AnalysisModel):
        self.model = model
        self.mutexes = _MutexRegistry(model)
        self.fn_typed = _function_typed_names(model)
        self.findings: List[Finding] = []
        # (from, to) -> (sf, line, human context); first site wins.
        self.edges: Dict[Tuple[str, str], Tuple[SourceFile, int, str]] = {}
        self.direct: Dict[str, Set[str]] = {}  # callable name -> mutexes acquired
        self.call_sites: List[_CallSite] = []

    # ---- per-function walk ----

    def analyze_function(self, sf: SourceFile, fn: Function) -> None:
        nested = sorted(
            g.body for g in sf.functions
            if g is not fn and fn.body[0] < g.body[0] and g.body[1] <= fn.body[1]
        )
        self.direct.setdefault(fn.name, set())
        self._walk(sf, fn, fn.body[0] + 1, fn.body[1], [], nested)

    def _walk(self, sf: SourceFile, fn: Function, lo: int, hi: int,
              held: List[_Acq], nested: Sequence[Tuple[int, int]]) -> None:
        toks = sf.tokens
        j = lo
        while j < hi:
            skipped = False
            for s, e in nested:  # lambda bodies run later, not under this lock
                if s == j:
                    j = e + 1
                    skipped = True
                    break
            if skipped:
                continue
            t = toks[j]
            v = t.value

            if v == "{":
                end = match_forward(toks, j, "{", "}")
                self._walk(sf, fn, j + 1, end, list(held), nested)
                j = end + 1
                continue

            # Guard-object acquisition: scoped_lock [<...>] name (args)
            if t.kind == "id" and v in GUARD_TYPES:
                consumed = self._acquire_guard(sf, fn, j, held)
                if consumed is not None:
                    j = consumed
                    continue

            if t.kind == "id" and j + 2 < hi and toks[j + 1].value == ".":
                meth = toks[j + 2].value
                # Manual m.lock() / m.unlock(); guard.unlock() truncation.
                if meth in ("lock", "lock_shared") and j + 3 < hi and toks[j + 3].value == "(":
                    mid = self.mutexes.resolve(v, fn)
                    if mid is not None:
                        self._note_acquire(sf, fn, t.line, held, (mid,), None)
                        j += 4
                        continue
                if meth in ("unlock", "unlock_shared") and j + 3 < hi and toks[j + 3].value == "(":
                    mid = self.mutexes.resolve(v, fn)
                    for k in range(len(held) - 1, -1, -1):
                        if held[k].guard == v or (mid is not None and mid in held[k].mutexes):
                            del held[k]
                            break
                    j += 4
                    continue

            if held:
                self._check_blocking(sf, fn, j, hi, held)

            # Direct call to a known function: record for the interprocedural
            # pass. `submit` hands the task to another thread, so the callee's
            # locks are not taken under ours.
            if t.kind == "id" and j + 1 < hi and toks[j + 1].value == "(" \
                    and v in self.model.functions and v != fn.name and v != "submit" \
                    and v not in GUARD_TYPES:
                held_ids = tuple(m for a in held for m in a.mutexes)
                if held_ids:
                    self.call_sites.append(_CallSite(v, held_ids, sf, t.line))

            j += 1

    def _acquire_guard(self, sf: SourceFile, fn: Function, j: int,
                       held: List[_Acq]) -> Optional[int]:
        toks = sf.tokens
        k = j + 1
        if k < len(toks) and toks[k].value == "<":
            k = match_forward(toks, k, "<", ">") + 1
        if k + 1 >= len(toks) or toks[k].kind != "id" or toks[k + 1].value not in ("(", "{"):
            return None
        var = toks[k].value
        open_, close_ = (("(", ")") if toks[k + 1].value == "(" else ("{", "}"))
        end = match_forward(toks, k + 1, open_, close_)
        args = _split_args(toks, k + 2, end)
        if any("defer_lock" in a for a in args):
            return end + 1  # locks are taken later via .lock(); modelled there
        mids: List[str] = []
        for a in args:
            name = _last_id(a)
            if not name or name in ("try_to_lock", "adopt_lock"):
                continue
            mids.append(self.mutexes.resolve(name, fn) or name)
        if mids:
            self._note_acquire(sf, fn, toks[j].line, held, tuple(mids), var)
        return end + 1

    def _note_acquire(self, sf: SourceFile, fn: Function, line: int,
                      held: List[_Acq], mids: Tuple[str, ...], guard: Optional[str]) -> None:
        already = {m for a in held for m in a.mutexes}
        for m in mids:
            for h in already:
                if h != m and (h, m) not in self.edges:
                    self.edges[(h, m)] = (sf, line, f"in {fn.key()}()")
        self.direct.setdefault(fn.name, set()).update(mids)
        held.append(_Acq(guard, mids))

    def _check_blocking(self, sf: SourceFile, fn: Function, j: int, hi: int,
                        held: List[_Acq]) -> None:
        toks = sf.tokens
        t = toks[j]
        v = t.value
        held_desc = ", ".join(sorted({m for a in held for m in a.mutexes}))

        def report(what: str) -> None:
            if not sf.allowed(t.line, "lock-blocking"):
                self.findings.append(Finding(
                    sf.display, t.line, "lock-blocking",
                    f"{what} while holding {{{held_desc}}} in {fn.key()}() — a lock "
                    "held across a blocking boundary stalls every thread contending "
                    "for it and can deadlock the append/read quorum path; release "
                    "the lock first (copy state out), or "
                    "// analyze:allow(lock-blocking): <why it cannot block>"))

        # ::syscall( — raw blocking POSIX call.
        if v == "::" and j + 2 < hi and toks[j + 1].kind == "id" \
                and toks[j + 1].value in SYSCALLS and toks[j + 2].value == "(" \
                and (j == 0 or toks[j - 1].kind != "id"):
            report(f"blocking syscall ::{toks[j + 1].value}()")
            return

        # cv.wait(lk[, pred]) is fine when lk is the held guard (the wait
        # releases it); any other unbounded wait under a lock is not.
        if t.kind == "id" and v in WAIT_METHODS and j >= 2 and toks[j - 1].value == "." \
                and j + 1 < hi and toks[j + 1].value == "(":
            end = match_forward(toks, j + 1, "(", ")")
            args = _split_args(toks, j + 2, end)
            guards = {a.guard for a in held if a.guard}
            if not (args and _last_id(args[0]) in guards):
                report(f".{v}() that does not release the held lock")
            return

        if t.kind == "id" and v == "wait_idle" and j + 1 < hi and toks[j + 1].value == "(":
            report("wait_idle()")
            return

        # Invoking a std::function member hands control to arbitrary user code
        # (which may block, or re-enter and retake the lock).
        if t.kind == "id" and v in self.fn_typed and j + 1 < hi \
                and toks[j + 1].value == "(" \
                and (j == 0 or (toks[j - 1].kind != "id" and toks[j - 1].value != ">")):
            report(f"user callback {v}() invoked")

    # ---- interprocedural closure + cycles ----

    def finish(self) -> List[Finding]:
        trans: Dict[str, Set[str]] = {k: set(v) for k, v in self.direct.items()}
        changed = True
        while changed:
            changed = False
            for sf in self.model.files:
                for fn in sf.functions:
                    mine = trans.setdefault(fn.name, set())
                    body = sf.tokens[fn.body[0] + 1 : fn.body[1]]
                    for i, tok in enumerate(body):
                        if tok.kind == "id" and tok.value in trans and tok.value != fn.name \
                                and i + 1 < len(body) and body[i + 1].value == "(":
                            add = trans[tok.value] - mine
                            if add:
                                mine |= add
                                changed = True
        for site in self.call_sites:
            callee_locks = trans.get(site.callee, set())
            for h in site.held:
                for m in callee_locks:
                    if m != h and (h, m) not in self.edges:
                        self.edges[(h, m)] = (site.sf, site.line,
                                              f"via call to {site.callee}()")
        self._find_cycles()
        return self.findings

    def _find_cycles(self) -> None:
        adj: Dict[str, List[str]] = {}
        for (a, b) in self.edges:
            adj.setdefault(a, []).append(b)
        seen_cycles: Set[frozenset] = set()
        for start in sorted(adj):
            stack = [(start, [start])]
            while stack:
                node, path = stack.pop()
                for nxt in sorted(adj.get(node, [])):
                    if nxt == start:
                        cyc = frozenset(path)
                        if cyc in seen_cycles:
                            continue
                        seen_cycles.add(cyc)
                        self._report_cycle(path + [start])
                    elif nxt not in path and len(path) < 8:
                        stack.append((nxt, path + [nxt]))

    def _report_cycle(self, cycle: List[str]) -> None:
        hops = []
        site: Optional[Tuple[SourceFile, int, str]] = None
        for a, b in zip(cycle, cycle[1:]):
            sf, line, ctx = self.edges[(a, b)]
            hops.append(f"{a} -> {b} ({ctx}, {sf.display}:{line})")
            if site is None:
                site = (sf, line, ctx)
        assert site is not None
        sf, line, _ = site
        if not sf.allowed(line, "lock-cycle"):
            self.findings.append(Finding(
                sf.display, line, "lock-cycle",
                "cyclic lock-acquisition order: " + "; ".join(hops) + " — two "
                "threads taking these locks in opposite orders deadlock the "
                "runtime and every in-flight append loses its quorum; impose a "
                "single global order (or std::scoped_lock both at once)"))


def run(model: AnalysisModel) -> List[Finding]:
    az = _Analyzer(model)
    for sf in model.files:
        for fn in sf.functions:
            az.analyze_function(sf, fn)
    return az.finish()
